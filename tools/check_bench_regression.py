#!/usr/bin/env python3
"""Compare bench JSON rows against a committed baseline.

The bench harnesses emit one flat JSON object per result row (see
bench/bench_common.h). This tool either captures those rows into a
baseline file, or compares a fresh run against the committed baseline and
exits non-zero on regression:

  # Capture: row file(s) -> BENCH_BASELINE.json (sorted JSON array).
  # Multiple inputs (jsonl or a prior baseline array) are merged, so a new
  # bench's rows can be folded into an existing baseline.
  tools/check_bench_regression.py --capture bench-rows.jsonl \
      --out BENCH_BASELINE.json

  # Check: exit 1 if any timing metric regressed beyond --max-ratio or
  # any quality metric drifted beyond --metric-rtol.
  tools/check_bench_regression.py --baseline BENCH_BASELINE.json \
      --fresh bench-rows.jsonl --max-ratio 5 --metric-rtol 0.05

Timing metrics (wall-clock fields) are machine-dependent, so they are
gated by a generous fresh/baseline *ratio*. Quality metrics (mae, kl,
...) are pure functions of the seeds, so they are gated by a tight
relative tolerance; a drift there means the algorithms changed behavior,
not that the machine was slow.

--inject-slowdown N multiplies every fresh timing metric by N before the
comparison. CI uses it to prove the gate actually trips: comparing a
baseline against itself with --inject-slowdown 5 --max-ratio 4 must fail
on any machine.
"""

import argparse
import json
import math
import sys

# Fields that identify a row rather than measure it.
ID_FIELDS = {
    "bench", "type", "fig", "dataset", "algo", "score", "strategy",
    "n", "threads", "reps", "k", "length", "bins", "epsilon", "ratio",
    # bench_serve identity fields: which sweep, and which cell of it.
    "mode", "batches", "distinct_releases", "batch_size", "shards",
    "records",
    # bench_serve_net identity fields: concurrency, wire codec, and
    # whether the serve-path fast lane (pre-encoded frame cache) was on —
    # the on/off rows are separate A/B cells gated against their own
    # baselines.
    "clients", "codec", "encoded_cache", "pipeline",
    # bench_micro noise-model sweep: which sampling construction the row
    # measured. A baseline captured without this field can never match a
    # fresh row that has it — the per-bench empty-intersection check below
    # turns that into a hard, explained failure instead of a silent pass.
    "noise_model",
    # bench_sparse identity field: the 64-bit sparse domain size (distinct
    # from "n", which is the record count there).
    "domain",
}

# Measured wall-clock fields: machine-dependent, ratio-gated.
TIMING_SUFFIX = "_ms"

# Derived-from-timing fields that would double-count a slowdown, plus
# absolute throughput (qps): pure machine properties, not gateable —
# the *_ms latencies on the same rows carry the regression signal.
IGNORED_FIELDS = {"speedup", "qps"}


def is_timing(field):
    return field.endswith(TIMING_SUFFIX)


class RowsError(Exception):
    """A row file that cannot be read or parsed — reported as a clear
    one-line failure instead of a traceback."""


def load_rows(path):
    """Loads rows from a JSON array file or a JSON-lines file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise RowsError(f"cannot read rows file {path}: {error}") from error
    stripped = text.lstrip()
    if not stripped:
        return []
    try:
        if stripped.startswith("["):
            rows = json.loads(text)
        else:
            rows = [json.loads(line)
                    for line in text.splitlines() if line.strip()]
    except json.JSONDecodeError as error:
        raise RowsError(f"malformed JSON in {path}: {error}") from error
    # Obs snapshot lines share the stream when DPHIST_OBS_OUT points at the
    # same file; keep only bench result rows.
    return [r for r in rows if r.get("type") == "row"]


def load_rows_multi(paths):
    rows = []
    for path in paths:
        rows.extend(load_rows(path))
    return rows


def row_key(row):
    """Stable identity of a row: its id fields, sorted."""
    return json.dumps(
        {k: v for k, v in row.items() if k in ID_FIELDS}, sort_keys=True)


def metrics_of(row):
    return {
        k: v
        for k, v in row.items()
        if k not in ID_FIELDS and k not in IGNORED_FIELDS
        and isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def validate_rows(rows, label):
    """Every measured field must be a finite number. A NaN, Infinity,
    bool, or string where a metric belongs means the capture (or a hand
    edit) corrupted the file; comparing against it would silently pass —
    NaN fails every > comparison — so it is a hard error instead."""
    problems = []
    for row in rows:
        bench = row.get("bench", "?")
        for field, value in row.items():
            if field in ID_FIELDS or field in IGNORED_FIELDS:
                continue
            if (isinstance(value, bool)
                    or not isinstance(value, (int, float))):
                problems.append(
                    f"{label} bench '{bench}': metric '{field}' is "
                    f"non-numeric ({value!r})")
            elif not math.isfinite(value):
                problems.append(
                    f"{label} bench '{bench}': metric '{field}' is "
                    f"{value} — not a finite number")
    return problems


def capture(args):
    rows = load_rows_multi(args.capture)
    if not rows:
        print("capture: no rows found in", ", ".join(args.capture),
              file=sys.stderr)
        return 1
    corrupt = validate_rows(rows, "capture")
    if corrupt:
        for problem in corrupt:
            print("CORRUPT:", problem, file=sys.stderr)
        print("capture refused: a baseline with non-finite metrics would "
              "make every future comparison meaningless", file=sys.stderr)
        return 1
    rows.sort(key=row_key)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(rows, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"captured {len(rows)} rows -> {args.out}")
    return 0


def check(args):
    baseline_rows = load_rows(args.baseline)
    fresh_rows = load_rows_multi(args.fresh)
    corrupt = (validate_rows(baseline_rows, "baseline")
               + validate_rows(fresh_rows, "fresh"))
    if corrupt:
        for problem in corrupt:
            print("CORRUPT:", problem, file=sys.stderr)
        print(f"FAIL: {len(corrupt)} corrupt metric value(s); fix the "
              f"rows file before comparing", file=sys.stderr)
        return 1
    baseline = {row_key(r): r for r in baseline_rows}
    fresh = {row_key(r): r for r in fresh_rows}
    if not baseline:
        print("check: baseline is empty:", args.baseline, file=sys.stderr)
        return 1

    failures = []
    missing = sorted(set(baseline) - set(fresh))
    # When a whole bench family is absent from the fresh capture, say so
    # once, by name — that means the binary never ran (or its rows went to
    # another file), which is a different problem than one changed row.
    baseline_benches = {r.get("bench", "?") for r in baseline.values()}
    fresh_benches = {r.get("bench", "?") for r in fresh.values()}
    for bench in sorted(baseline_benches - fresh_benches):
        failures.append(
            f"bench '{bench}' has baseline rows but no fresh rows — "
            f"did its binary run and write to the captured file(s)?")
    absent = baseline_benches - fresh_benches
    for key in missing:
        if json.loads(key).get("bench") in absent:
            continue  # already reported at the bench level
        failures.append(f"row missing from fresh run: {key}")
    # The reverse direction must be a hard error too: a bench that ran and
    # produced fresh rows but matches ZERO baseline rows is completely
    # ungated, and "exit 0 with a new-coverage note" reads as a pass. Two
    # ways to get there: the bench has no baseline rows at all, or its
    # identity fields changed (e.g. a baseline captured before a new
    # ID_FIELDS entry existed) so no key can ever match.
    for bench in sorted(fresh_benches - baseline_benches):
        failures.append(
            f"bench '{bench}' has fresh rows but zero baseline rows — "
            f"empty intersection; fold it into the baseline with "
            f"--capture before gating on it")
    for bench in sorted(fresh_benches & baseline_benches):
        bench_fresh = {k for k, r in fresh.items()
                       if r.get("bench") == bench}
        bench_base = {k for k, r in baseline.items()
                      if r.get("bench") == bench}
        if bench_fresh and bench_base and not (bench_fresh & bench_base):
            failures.append(
                f"bench '{bench}': baseline and fresh share zero row keys "
                f"— did an identity field change (or is the baseline "
                f"missing one, e.g. noise_model)? re-capture the baseline")
    extra = len(set(fresh) - set(baseline))
    if extra:
        print(f"note: {extra} fresh row(s) not in baseline (new coverage)")

    compared = 0
    for key, base_row in baseline.items():
        fresh_row = fresh.get(key)
        if fresh_row is None:
            continue
        base_metrics = metrics_of(base_row)
        fresh_metrics = metrics_of(fresh_row)
        for field, base_value in base_metrics.items():
            if field not in fresh_metrics:
                failures.append(f"{key}: metric '{field}' missing from fresh")
                continue
            fresh_value = fresh_metrics[field]
            compared += 1
            if is_timing(field):
                fresh_value *= args.inject_slowdown
                # Guard with an absolute floor: sub-ms timings are noise.
                if (fresh_value > args.timing_floor_ms
                        and fresh_value > base_value * args.max_ratio
                        and fresh_value > base_value + args.timing_floor_ms):
                    failures.append(
                        f"{key}: {field} {fresh_value:.4g} > "
                        f"{args.max_ratio}x baseline {base_value:.4g}")
            else:
                tolerance = args.metric_rtol * max(abs(base_value), 1e-12)
                if abs(fresh_value - base_value) > tolerance:
                    failures.append(
                        f"{key}: {field} {fresh_value:.17g} != baseline "
                        f"{base_value:.17g} (rtol {args.metric_rtol})")

    for failure in failures:
        print("REGRESSION:", failure, file=sys.stderr)
    status = "FAIL" if failures else "OK"
    print(f"{status}: {compared} metrics compared across "
          f"{len(baseline) - len(missing)}/{len(baseline)} baseline rows, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--capture", metavar="ROWS", nargs="+",
                        help="capture ROWS file(s) (jsonl or array), "
                             "merged, into --out")
    parser.add_argument("--out", default="BENCH_BASELINE.json",
                        help="output path for --capture")
    parser.add_argument("--baseline", help="committed baseline file")
    parser.add_argument("--fresh", nargs="+",
                        help="fresh bench rows file(s) to check")
    parser.add_argument("--max-ratio", type=float, default=5.0,
                        help="max fresh/baseline ratio for *_ms metrics")
    parser.add_argument("--metric-rtol", type=float, default=0.05,
                        help="relative tolerance for quality metrics")
    parser.add_argument("--timing-floor-ms", type=float, default=5.0,
                        help="ignore timing metrics below this many ms")
    parser.add_argument("--inject-slowdown", type=float, default=1.0,
                        help="multiply fresh timings by N (gate self-test)")
    args = parser.parse_args()

    try:
        if args.capture:
            return capture(args)
        if not args.baseline or not args.fresh:
            parser.error("need --capture, or both --baseline and --fresh")
        return check(args)
    except RowsError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
