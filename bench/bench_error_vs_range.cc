// Experiment F2 — mean absolute error vs query length (the crossover
// figure: NoiseFirst favours short queries, StructureFirst long ones, with
// the regime shifting with epsilon).
//
// Each algorithm publishes once per repetition; every length-workload is
// then evaluated against the same release, exactly as the paper evaluates
// one noisy histogram across query sizes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dphist/algorithms/registry.h"
#include "dphist/bench_util/table.h"
#include "dphist/metrics/metrics.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"

int main() {
  const std::size_t reps = dphist_bench::Repetitions();
  const auto publishers = dphist::PublisherRegistry::MakePaperSuite();
  dphist_bench::BenchJsonWriter json("error_vs_range");
  // The network trace shows the crossover most clearly.
  const dphist::Dataset dataset = dphist_bench::Suite()[1];
  const std::size_t n = dataset.histogram.size();

  std::vector<std::size_t> lengths;
  for (std::size_t len = 1; len <= n / 2; len *= 4) {
    lengths.push_back(len);
  }
  lengths.push_back(n / 2);

  // Pre-generate one fixed workload per length.
  dphist::Rng workload_rng(11);
  std::vector<std::vector<dphist::RangeQuery>> workloads;
  for (std::size_t len : lengths) {
    auto queries = dphist::FixedLengthWorkload(n, len, 300, workload_rng);
    if (!queries.ok()) {
      std::fprintf(stderr, "workload failed\n");
      return 1;
    }
    workloads.push_back(std::move(queries).value());
  }

  std::printf("== F2: MAE vs query length on %s (n=%zu, reps=%zu) ==\n",
              dataset.name.c_str(), n, reps);
  for (double epsilon : {0.01, 0.1}) {
    std::printf("\n-- epsilon = %g --\n", epsilon);
    std::vector<std::string> headers = {"length"};
    for (const auto& publisher : publishers) {
      headers.push_back(publisher->name());
    }
    dphist::TablePrinter table(headers);

    // errors[algo][length_index] accumulated over repetitions.
    std::vector<std::vector<double>> errors(
        publishers.size(), std::vector<double>(lengths.size(), 0.0));
    for (std::size_t a = 0; a < publishers.size(); ++a) {
      dphist::Rng rng(2000 + a + static_cast<std::uint64_t>(epsilon * 1e4));
      for (std::size_t rep = 0; rep < reps; ++rep) {
        dphist::Rng run = rng.Fork();
        auto released =
            publishers[a]->Publish(dataset.histogram, epsilon, run);
        if (!released.ok()) {
          std::fprintf(stderr, "publish failed: %s\n",
                       released.status().ToString().c_str());
          return 1;
        }
        for (std::size_t l = 0; l < lengths.size(); ++l) {
          auto error = dphist::EvaluateWorkload(
              dataset.histogram, released.value(), workloads[l]);
          if (!error.ok()) {
            std::fprintf(stderr, "evaluate failed\n");
            return 1;
          }
          errors[a][l] += error.value().mean_absolute;
        }
      }
    }
    for (std::size_t l = 0; l < lengths.size(); ++l) {
      std::vector<std::string> row = {std::to_string(lengths[l])};
      for (std::size_t a = 0; a < publishers.size(); ++a) {
        const double mae = errors[a][l] / static_cast<double>(reps);
        row.push_back(dphist::TablePrinter::FormatDouble(mae, 4));
        json.AddRow(json.Row()
                        .Str("dataset", dataset.name)
                        .Str("algo", publishers[a]->name())
                        .Num("epsilon", epsilon)
                        .Int("length", lengths[l])
                        .Int("reps", reps)
                        .Num("mae", mae));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  json.Finish();
  return 0;
}
