// Experiment T1 — dataset statistics table (the evaluation-setup table of
// the paper, regenerated for the synthetic stand-in suite).

#include <cstdio>

#include "bench_common.h"
#include "dphist/bench_util/table.h"
#include "dphist/data/dataset.h"

int main() {
  std::printf("== T1: dataset statistics (synthetic stand-ins, seed %llu) ==\n\n",
              static_cast<unsigned long long>(dphist_bench::kSuiteSeed));
  dphist_bench::BenchJsonWriter json("datasets_table");
  dphist::TablePrinter table(
      {"dataset", "bins", "records", "nonzero", "max", "mean"});
  for (const dphist::Dataset& dataset : dphist_bench::Suite()) {
    const dphist::DatasetStats stats = dphist::ComputeStats(dataset);
    table.AddRow({dataset.name, std::to_string(stats.domain_size),
                  dphist::TablePrinter::FormatDouble(stats.total_records, 6),
                  std::to_string(stats.nonzero_bins),
                  dphist::TablePrinter::FormatDouble(stats.max_count, 6),
                  dphist::TablePrinter::FormatDouble(stats.mean_count, 4)});
    json.AddRow(json.Row()
                    .Str("dataset", dataset.name)
                    .Int("bins", stats.domain_size)
                    .Num("records", stats.total_records)
                    .Int("nonzero", stats.nonzero_bins)
                    .Num("max", stats.max_count)
                    .Num("mean", stats.mean_count));
  }
  table.Print();
  std::printf("\nProvenance:\n");
  for (const dphist::Dataset& dataset : dphist_bench::Suite()) {
    std::printf("  %-11s %s\n", dataset.name.c_str(),
                dataset.description.c_str());
  }
  json.Finish();
  return 0;
}
