// Experiment F6 — publication wall time vs domain size for every
// algorithm, plus the exact-vs-grid-coarsened dynamic-program ablation.
//
// Expected shape: Dwork/Privelet/Boost are (near-)linear in n; the
// DP-based algorithms are quadratic in the number of boundary candidates,
// so the grid-coarsened mode (the default beyond 2048 bins) restores
// near-linear scaling at a small accuracy cost.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/registry.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/bench_util/table.h"
#include "dphist/data/generators.h"
#include "dphist/random/rng.h"

namespace {

double TimePublishMs(const dphist::HistogramPublisher& publisher,
                     const dphist::Histogram& truth, double epsilon,
                     std::size_t reps, std::uint64_t seed) {
  dphist::Rng rng(seed);
  double total_ms = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    dphist::Rng run = rng.Fork();
    const auto start = std::chrono::steady_clock::now();
    auto released = publisher.Publish(truth, epsilon, run);
    const auto stop = std::chrono::steady_clock::now();
    if (!released.ok()) {
      std::fprintf(stderr, "publish failed: %s\n",
                   released.status().ToString().c_str());
      std::exit(1);
    }
    total_ms +=
        std::chrono::duration<double, std::milli>(stop - start).count();
  }
  return total_ms / static_cast<double>(reps);
}

}  // namespace

int main() {
  const std::size_t reps = dphist_bench::Repetitions(3);
  const double epsilon = 0.1;
  const std::vector<std::size_t> sizes = {256, 512, 1024, 2048, 4096};
  const auto publishers = dphist::PublisherRegistry::MakeAll();

  std::printf("== F6: publish wall time (ms) vs domain size "
              "(eps=%g, reps=%zu) ==\n\n", epsilon, reps);
  std::vector<std::string> headers = {"n"};
  for (const auto& publisher : publishers) {
    headers.push_back(publisher->name());
  }
  dphist::TablePrinter table(headers);
  for (std::size_t n : sizes) {
    const dphist::Dataset dataset = dphist::MakeNetTrace(n, 21);
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto& publisher : publishers) {
      row.push_back(dphist::TablePrinter::FormatDouble(
          TimePublishMs(*publisher, dataset.histogram, epsilon, reps,
                        9000 + n),
          4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\n== F6b: exact vs grid-coarsened structure search "
              "(NoiseFirst / StructureFirst, ms) ==\n\n");
  dphist::TablePrinter ablation(
      {"n", "nf exact", "nf grid8", "sf exact", "sf grid8"});
  for (std::size_t n : {256, 512, 1024, 2048}) {
    const dphist::Dataset dataset = dphist::MakeNetTrace(n, 22);
    dphist::NoiseFirst::Options nf_exact;
    nf_exact.grid_step = 1;
    dphist::NoiseFirst::Options nf_grid;
    nf_grid.grid_step = 8;
    dphist::StructureFirst::Options sf_exact;
    sf_exact.grid_step = 1;
    dphist::StructureFirst::Options sf_grid;
    sf_grid.grid_step = 8;
    ablation.AddRow(
        {std::to_string(n),
         dphist::TablePrinter::FormatDouble(
             TimePublishMs(dphist::NoiseFirst(nf_exact), dataset.histogram,
                           epsilon, reps, 9100 + n),
             4),
         dphist::TablePrinter::FormatDouble(
             TimePublishMs(dphist::NoiseFirst(nf_grid), dataset.histogram,
                           epsilon, reps, 9200 + n),
             4),
         dphist::TablePrinter::FormatDouble(
             TimePublishMs(dphist::StructureFirst(sf_exact),
                           dataset.histogram, epsilon, reps, 9300 + n),
             4),
         dphist::TablePrinter::FormatDouble(
             TimePublishMs(dphist::StructureFirst(sf_grid), dataset.histogram,
                           epsilon, reps, 9400 + n),
             4)});
  }
  ablation.Print();
  return 0;
}
