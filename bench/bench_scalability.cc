// Experiment F6 — publication wall time vs domain size for every
// algorithm, plus the exact-vs-grid-coarsened dynamic-program ablation.
//
// Expected shape: Dwork/Privelet/Boost are (near-)linear in n; the
// DP-based algorithms are quadratic in the number of boundary candidates,
// so the grid-coarsened mode (the default beyond 2048 bins) restores
// near-linear scaling at a small accuracy cost.

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/registry.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/bench_util/experiment.h"
#include "dphist/bench_util/table.h"
#include "dphist/common/thread_pool.h"
#include "dphist/data/generators.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"

namespace {

double TimePublishMs(const dphist::HistogramPublisher& publisher,
                     const dphist::Histogram& truth, double epsilon,
                     std::size_t reps, std::uint64_t seed) {
  dphist::Rng rng(seed);
  double total_ms = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    dphist::Rng run = rng.Fork();
    const auto start = std::chrono::steady_clock::now();
    auto released = publisher.Publish(truth, epsilon, run);
    const auto stop = std::chrono::steady_clock::now();
    if (!released.ok()) {
      std::fprintf(stderr, "publish failed: %s\n",
                   released.status().ToString().c_str());
      std::exit(1);
    }
    total_ms +=
        std::chrono::duration<double, std::milli>(stop - start).count();
  }
  return total_ms / static_cast<double>(reps);
}

}  // namespace

int main() {
  const std::size_t reps = dphist_bench::Repetitions(3);
  const double epsilon = 0.1;
  const std::vector<std::size_t> sizes = {256, 512, 1024, 2048, 4096};
  const auto publishers = dphist::PublisherRegistry::MakeAll();
  dphist_bench::BenchJsonWriter json("scalability");

  std::printf("== F6: publish wall time (ms) vs domain size "
              "(eps=%g, reps=%zu) ==\n\n", epsilon, reps);
  std::vector<std::string> headers = {"n"};
  for (const auto& publisher : publishers) {
    headers.push_back(publisher->name());
  }
  dphist::TablePrinter table(headers);
  for (std::size_t n : sizes) {
    const dphist::Dataset dataset = dphist::MakeNetTrace(n, 21);
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto& publisher : publishers) {
      const double wall_ms = TimePublishMs(*publisher, dataset.histogram,
                                           epsilon, reps, 9000 + n);
      row.push_back(dphist::TablePrinter::FormatDouble(wall_ms, 4));
      json.AddRow(json.Row()
                      .Str("fig", "f6")
                      .Str("algo", publisher->name())
                      .Int("n", n)
                      .Num("epsilon", epsilon)
                      .Int("reps", reps)
                      .Num("wall_ms", wall_ms));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\n== F6b: exact vs grid-coarsened structure search "
              "(NoiseFirst / StructureFirst, ms) ==\n\n");
  dphist::TablePrinter ablation(
      {"n", "nf exact", "nf grid8", "sf exact", "sf grid8"});
  for (std::size_t n : {256, 512, 1024, 2048}) {
    const dphist::Dataset dataset = dphist::MakeNetTrace(n, 22);
    dphist::NoiseFirst::Options nf_exact;
    nf_exact.grid_step = 1;
    dphist::NoiseFirst::Options nf_grid;
    nf_grid.grid_step = 8;
    dphist::StructureFirst::Options sf_exact;
    sf_exact.grid_step = 1;
    dphist::StructureFirst::Options sf_grid;
    sf_grid.grid_step = 8;
    const double nf_exact_ms = TimePublishMs(
        dphist::NoiseFirst(nf_exact), dataset.histogram, epsilon, reps,
        9100 + n);
    const double nf_grid_ms = TimePublishMs(
        dphist::NoiseFirst(nf_grid), dataset.histogram, epsilon, reps,
        9200 + n);
    const double sf_exact_ms = TimePublishMs(
        dphist::StructureFirst(sf_exact), dataset.histogram, epsilon, reps,
        9300 + n);
    const double sf_grid_ms = TimePublishMs(
        dphist::StructureFirst(sf_grid), dataset.histogram, epsilon, reps,
        9400 + n);
    ablation.AddRow(
        {std::to_string(n),
         dphist::TablePrinter::FormatDouble(nf_exact_ms, 4),
         dphist::TablePrinter::FormatDouble(nf_grid_ms, 4),
         dphist::TablePrinter::FormatDouble(sf_exact_ms, 4),
         dphist::TablePrinter::FormatDouble(sf_grid_ms, 4)});
    json.AddRow(json.Row()
                    .Str("fig", "f6b")
                    .Int("n", n)
                    .Num("epsilon", epsilon)
                    .Int("reps", reps)
                    .Num("nf_exact_ms", nf_exact_ms)
                    .Num("nf_grid_ms", nf_grid_ms)
                    .Num("sf_exact_ms", sf_exact_ms)
                    .Num("sf_grid_ms", sf_grid_ms));
  }
  ablation.Print();

  // F6c — the parallel execution engine: one RunCell cell (repetitions
  // fanned across an explicit pool) timed at increasing thread counts.
  // The error aggregates must be bit-identical at every thread count —
  // the engine's determinism contract, enforced here at bench scale —
  // so only the wall clock may move. Rows go through BenchJsonWriter and
  // the determinism check below reads them back through obs::ParseFlatJson,
  // so it also proves the emitted JSON round-trips the mae exactly.
  const std::size_t sweep_reps = dphist_bench::Repetitions(8);
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  std::printf("\n== F6c: RunCell wall time vs threads "
              "(eps=%g, reps=%zu, hardware=%zu) ==\n\n",
              epsilon, sweep_reps, dphist::ThreadPool::DefaultThreadCount());
  dphist::TablePrinter sweep(
      {"algo", "n", "threads", "cell ms", "speedup", "mae"});
  for (std::size_t n : {std::size_t{1024}, std::size_t{4096}}) {
    const dphist::Dataset dataset = dphist::MakeNetTrace(n, 23);
    dphist::Rng workload_rng(77);
    auto queries = dphist::RandomRangeWorkload(n, 200, workload_rng);
    if (!queries.ok()) {
      std::fprintf(stderr, "workload failed: %s\n",
                   queries.status().ToString().c_str());
      return 1;
    }
    std::vector<std::unique_ptr<dphist::HistogramPublisher>> subjects;
    subjects.push_back(std::make_unique<dphist::NoiseFirst>());
    subjects.push_back(std::make_unique<dphist::StructureFirst>());
    for (const auto& publisher : subjects) {
      double base_ms = 0.0;
      for (std::size_t threads : thread_counts) {
        dphist::ThreadPool pool(threads);
        dphist::RunCellOptions options;
        options.pool = &pool;
        const auto start = std::chrono::steady_clock::now();
        auto cell = dphist::RunCell(*publisher, dataset.histogram,
                                    queries.value(), epsilon, sweep_reps,
                                    /*seed=*/9500 + n, options);
        const auto stop = std::chrono::steady_clock::now();
        if (!cell.ok()) {
          std::fprintf(stderr, "cell failed: %s\n",
                       cell.status().ToString().c_str());
          return 1;
        }
        const double wall_ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        const double mae = cell.value().workload_mae.mean;
        if (threads == thread_counts.front()) {
          base_ms = wall_ms;
        }
        const double speedup = wall_ms > 0.0 ? base_ms / wall_ms : 0.0;
        sweep.AddRow({publisher->name(), std::to_string(n),
                      std::to_string(threads),
                      dphist::TablePrinter::FormatDouble(wall_ms, 2),
                      dphist::TablePrinter::FormatDouble(speedup, 2),
                      dphist::TablePrinter::FormatDouble(mae, 6)});
        json.AddRow(json.Row()
                        .Str("fig", "f6c")
                        .Str("algo", publisher->name())
                        .Int("n", n)
                        .Int("threads", threads)
                        .Int("reps", sweep_reps)
                        .Num("wall_ms", wall_ms)
                        .Num("speedup", speedup)
                        .Num("mae", mae));
      }
    }
  }
  sweep.Print();

  // Determinism check over the emitted rows: parse every f6c line back
  // (writer and reader share one schema definition) and require the mae of
  // each (algo, n) group to be identical across thread counts. %.17g
  // output makes the comparison exact, not approximate.
  bool deterministic = true;
  std::map<std::string, double> group_mae;
  for (const std::string& line : json.lines()) {
    auto parsed = dphist::obs::ParseFlatJson(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "emitted row failed to parse back: %s\n  %s\n",
                   parsed.status().ToString().c_str(), line.c_str());
      return 1;
    }
    const dphist::obs::JsonObject& row = parsed.value();
    const auto fig = row.find("fig");
    if (fig == row.end() || fig->second.string_value != "f6c") {
      continue;
    }
    const std::string key = row.at("algo").string_value + "/n=" +
                            std::to_string(static_cast<std::size_t>(
                                row.at("n").number_value));
    const double mae = row.at("mae").number_value;
    const auto [it, inserted] = group_mae.emplace(key, mae);
    if (!inserted && it->second != mae) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %s threads=%g mae %.17g != "
                   "single-thread mae %.17g\n",
                   key.c_str(), row.at("threads").number_value, mae,
                   it->second);
      deterministic = false;
    }
  }
  json.Finish();
  if (!deterministic) {
    return 1;
  }
  return 0;
}
