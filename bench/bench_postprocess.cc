// Experiment F8 (library extension) — how much free accuracy does
// post-processing with public knowledge buy? Clamping at zero, rescaling
// to a public total, and isotonic projection (for the monotone degree
// distribution) are all privacy-free, and the paper's discussion of
// exploiting constraints motivates quantifying them.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dphist/algorithms/postprocess.h"
#include "dphist/algorithms/registry.h"
#include "dphist/bench_util/table.h"
#include "dphist/metrics/metrics.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"

namespace {

double UnitMae(const dphist::Histogram& truth,
               const dphist::Histogram& released) {
  auto error = dphist::MeanAbsoluteError(truth.counts(), released.counts());
  return error.ok() ? error.value() : -1.0;
}

}  // namespace

int main() {
  const std::size_t reps = dphist_bench::Repetitions(10);
  // Social network: non-negative, monotone(ish) tail, public total — the
  // dataset where every post-processing step applies.
  const dphist::Dataset dataset = dphist_bench::Suite()[3];
  const dphist::Histogram& truth = dataset.histogram;
  const double total = truth.Total();

  std::printf("== F8: post-processing gains on %s (unit-bin MAE, "
              "reps=%zu) ==\n\n", dataset.name.c_str(), reps);
  dphist_bench::BenchJsonWriter json("postprocess");
  dphist::TablePrinter table(
      {"epsilon", "algorithm", "raw", "+clamp", "+normalize", "+isotonic"});
  for (double epsilon : {0.01, 0.1}) {
    for (const char* name : {"dwork", "noise_first"}) {
      auto publisher = dphist::PublisherRegistry::Make(name);
      if (!publisher.ok()) {
        return 1;
      }
      double raw = 0.0;
      double clamped = 0.0;
      double normalized = 0.0;
      double isotonic = 0.0;
      dphist::Rng rng(12000 + static_cast<std::uint64_t>(epsilon * 1e4));
      for (std::size_t rep = 0; rep < reps; ++rep) {
        dphist::Rng run = rng.Fork();
        auto released = publisher.value()->Publish(truth, epsilon, run);
        if (!released.ok()) {
          return 1;
        }
        const dphist::Histogram clamp =
            dphist::ClampNonNegative(released.value());
        const dphist::Histogram norm =
            dphist::NormalizeTotal(released.value(), total);
        const dphist::Histogram iso = dphist::IsotonicNonIncreasing(clamp);
        raw += UnitMae(truth, released.value());
        clamped += UnitMae(truth, clamp);
        normalized += UnitMae(truth, norm);
        isotonic += UnitMae(truth, iso);
      }
      const double r = static_cast<double>(reps);
      table.AddRow({dphist::TablePrinter::FormatDouble(epsilon, 3), name,
                    dphist::TablePrinter::FormatDouble(raw / r, 4),
                    dphist::TablePrinter::FormatDouble(clamped / r, 4),
                    dphist::TablePrinter::FormatDouble(normalized / r, 4),
                    dphist::TablePrinter::FormatDouble(isotonic / r, 4)});
      json.AddRow(json.Row()
                      .Str("dataset", dataset.name)
                      .Str("algo", name)
                      .Num("epsilon", epsilon)
                      .Int("reps", reps)
                      .Num("raw", raw / r)
                      .Num("clamp", clamped / r)
                      .Num("normalize", normalized / r)
                      .Num("isotonic", isotonic / r));
    }
  }
  table.Print();
  std::printf("\nNote: the isotonic column applies the non-increasing\n"
              "projection, valid only because this degree distribution is\n"
              "publicly known to be (near-)monotone; it is free accuracy\n"
              "where the prior holds and a modeling error where it does\n"
              "not.\n");
  json.Finish();
  return 0;
}
