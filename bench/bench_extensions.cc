// Experiment F7 (library extension) — the paper suite compared against the
// related algorithms added by this library (geometric baseline, EFPA,
// MWEM) on two contrasting datasets.
//
// Expected shape: the geometric baseline tracks Dwork (slightly better
// variance at equal epsilon); EFPA wins on smooth/periodic data and loses
// on spiky data; MWEM only pays off when the workload is narrow relative
// to the domain.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dphist/algorithms/registry.h"
#include "dphist/bench_util/experiment.h"
#include "dphist/bench_util/table.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"

int main() {
  const std::size_t reps = dphist_bench::Repetitions();
  const std::vector<double> epsilons = {0.01, 0.1, 1.0};
  const auto publishers = dphist::PublisherRegistry::MakeAll();
  dphist_bench::BenchJsonWriter json("extensions");

  // Age (smooth: EFPA's home turf) and NetTrace (spiky: its worst case).
  std::vector<dphist::Dataset> datasets;
  datasets.push_back(dphist_bench::Suite()[0]);
  datasets.push_back(dphist_bench::Suite()[1]);

  std::printf("== F7: extended algorithm comparison, MAE of 500 random "
              "ranges (reps=%zu, threads=%zu) ==\n",
              reps, dphist_bench::Threads());
  for (const dphist::Dataset& dataset : datasets) {
    dphist::Rng workload_rng(31);
    auto queries = dphist::RandomRangeWorkload(dataset.histogram.size(), 500,
                                               workload_rng);
    if (!queries.ok()) {
      std::fprintf(stderr, "workload failed\n");
      return 1;
    }
    std::printf("\n-- dataset: %s (n=%zu) --\n", dataset.name.c_str(),
                dataset.histogram.size());
    std::vector<std::string> headers = {"epsilon"};
    for (const auto& publisher : publishers) {
      headers.push_back(publisher->name());
    }
    dphist::TablePrinter table(headers);
    for (double epsilon : epsilons) {
      std::vector<std::string> row = {
          dphist::TablePrinter::FormatDouble(epsilon, 3)};
      for (const auto& publisher : publishers) {
        auto cell = dphist::RunCell(
            *publisher, dataset.histogram, queries.value(), epsilon, reps,
            /*seed=*/11000 + static_cast<std::uint64_t>(epsilon * 1e4));
        if (!cell.ok()) {
          std::fprintf(stderr, "cell failed: %s\n",
                       cell.status().ToString().c_str());
          return 1;
        }
        row.push_back(dphist::TablePrinter::FormatDouble(
            cell.value().workload_mae.mean, 4));
        json.AddRow(json.Row()
                        .Str("dataset", dataset.name)
                        .Str("algo", publisher->name())
                        .Num("epsilon", epsilon)
                        .Int("reps", reps)
                        .Num("mae", cell.value().workload_mae.mean)
                        .Num("wall_ms", cell.value().publish_ms.mean));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  json.Finish();
  return 0;
}
