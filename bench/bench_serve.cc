// Serving-layer benchmark: (a) hit-rate sweep — end-to-end batch latency
// as the fraction of requests answered from the release cache rises from
// 0% to ~99% (the cache's entire value proposition: a hit skips the
// publisher, the ledger, and the noise sampling entirely); (b) batch-size
// scaling — per-query cost of AnswerBatch as batches grow past the
// parallel fan-out threshold; (c) stale-degradation path — batch latency
// once the budget is exhausted and every request degrades to the newest
// cached release (a refused charge + a cache scan instead of a publish).
//
// Expected shape: (a) mean batch latency collapses as hit rate rises,
// since only misses pay the publish; (b) per-query nanoseconds flat or
// falling with batch size (each answer is one prefix-sum subtraction;
// large batches amortize fan-out overhead across the pool); (c) stale
// batches cost about as much as cache hits — degradation must not be
// meaningfully slower than the happy path, or overload makes itself
// worse; (d) shard sweep — concurrent cache-hit serving across many
// tenants at 1/4/16 cache shards (one shard serializes every tenant on a
// single mutex; sharding should flatten that); (e) journal replay —
// records/ms through ReplayJournalBytes, the recovery-time cost of the
// write-ahead journal.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dphist/bench_util/table.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"
#include "dphist/serve/journal.h"
#include "dphist/serve/release_server.h"

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  const std::size_t reps = dphist_bench::Repetitions(3);
  const dphist::Dataset dataset = dphist_bench::Suite()[1];  // nettrace
  const std::size_t n = dataset.histogram.size();
  dphist_bench::BenchJsonWriter json("serve");

  std::printf("== Serve: release cache + batched range queries on %s "
              "(n=%zu, reps=%zu, threads=%zu) ==\n\n",
              dataset.name.c_str(), n, reps, dphist_bench::Threads());

  // -- (a) hit-rate sweep ------------------------------------------------
  // `kBatches` batches cycle through `distinct` seeds; after the first
  // pass every repeat is a cache hit, so the long-run hit rate is
  // 1 - distinct/kBatches.
  constexpr std::size_t kBatches = 64;
  dphist::Rng workload_rng(21);
  auto sweep_queries = dphist::RandomRangeWorkload(n, 256, workload_rng);
  if (!sweep_queries.ok()) {
    std::fprintf(stderr, "workload failed\n");
    return 1;
  }
  dphist::TablePrinter sweep_table(
      {"distinct", "hit_rate", "mean_batch_ms", "cache_entries"});
  for (std::size_t distinct : {64, 32, 8, 1}) {
    double total_ms = 0.0;
    std::size_t entries = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      dphist::serve::ReleaseServer server(dataset.histogram,
                                          /*total_epsilon=*/1.0e9);
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t b = 0; b < kBatches; ++b) {
        dphist::serve::ServeRequest request;
        request.publisher = "noise_first";
        request.epsilon = 0.1;
        request.seed = 100 + b % distinct;
        auto batch = server.AnswerBatch(sweep_queries.value(), request);
        if (!batch.ok()) {
          std::fprintf(stderr, "batch failed: %s\n",
                       batch.status().ToString().c_str());
          return 1;
        }
      }
      const auto stop = std::chrono::steady_clock::now();
      total_ms += ElapsedMs(start, stop);
      entries = server.cache().size();
    }
    const double hit_rate =
        1.0 - static_cast<double>(distinct) / static_cast<double>(kBatches);
    const double mean_batch_ms =
        total_ms / static_cast<double>(reps * kBatches);
    sweep_table.AddRow(
        {std::to_string(distinct),
         dphist::TablePrinter::FormatDouble(hit_rate, 3),
         dphist::TablePrinter::FormatDouble(mean_batch_ms, 4),
         std::to_string(entries)});
    json.AddRow(json.Row()
                    .Str("dataset", dataset.name)
                    .Str("mode", "hit_rate_sweep")
                    .Int("n", n)
                    .Int("batches", kBatches)
                    .Int("distinct_releases", distinct)
                    .Num("hit_rate", hit_rate)
                    .Int("cache_entries", entries)
                    .Int("reps", reps)
                    .Num("mean_batch_ms", mean_batch_ms));
  }
  sweep_table.Print();

  // -- (b) batch-size scaling --------------------------------------------
  // One cached release; batches below the fan-out threshold answer
  // inline, larger ones fan across the pool.
  std::printf("\n");
  dphist::TablePrinter scale_table(
      {"batch_size", "mean_batch_ms", "ns_per_query"});
  for (std::size_t batch_size : {64, 256, 1024, 4096, 16384}) {
    dphist::Rng scale_rng(33);
    auto queries = dphist::RandomRangeWorkload(n, batch_size, scale_rng);
    if (!queries.ok()) {
      std::fprintf(stderr, "workload failed\n");
      return 1;
    }
    dphist::serve::ReleaseServer server(dataset.histogram,
                                        /*total_epsilon=*/1.0);
    dphist::serve::ServeRequest request;
    request.publisher = "noise_first";
    request.epsilon = 0.1;
    request.seed = 7;
    // Warm the cache so the loop measures pure cached serving.
    auto warm = server.AnswerBatch(queries.value(), request);
    if (!warm.ok()) {
      std::fprintf(stderr, "warm-up failed\n");
      return 1;
    }
    const std::size_t iters = reps * 20;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      auto batch = server.AnswerBatch(queries.value(), request);
      if (!batch.ok()) {
        std::fprintf(stderr, "batch failed\n");
        return 1;
      }
    }
    const auto stop = std::chrono::steady_clock::now();
    const double mean_batch_ms =
        ElapsedMs(start, stop) / static_cast<double>(iters);
    const double ns_per_query =
        mean_batch_ms * 1.0e6 / static_cast<double>(batch_size);
    scale_table.AddRow(
        {std::to_string(batch_size),
         dphist::TablePrinter::FormatDouble(mean_batch_ms, 4),
         dphist::TablePrinter::FormatDouble(ns_per_query, 1)});
    json.AddRow(json.Row()
                    .Str("dataset", dataset.name)
                    .Str("mode", "batch_scaling")
                    .Int("n", n)
                    .Int("batch_size", batch_size)
                    .Int("reps", reps)
                    .Num("mean_batch_ms", mean_batch_ms));
  }
  scale_table.Print();

  // -- (c) stale-degradation path ----------------------------------------
  // Budget covers exactly one publish; every later batch asks for a fresh
  // seed, gets refused by the ledger, and is served stale from the one
  // cached release. Measures the refusal + degrade path that chaos tests
  // exercise for correctness (every answer must come back stale).
  std::printf("\n");
  dphist::TablePrinter stale_table(
      {"batches", "stale_frac", "mean_batch_ms"});
  {
    double total_ms = 0.0;
    std::size_t stale_count = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      dphist::serve::ReleaseServer server(dataset.histogram,
                                          /*total_epsilon=*/0.1);
      dphist::serve::ServeRequest request;
      request.publisher = "noise_first";
      request.epsilon = 0.1;
      request.seed = 1;
      // The only publish the budget allows; cached from here on.
      auto warm = server.AnswerBatch(sweep_queries.value(), request);
      if (!warm.ok() || warm.value().stale) {
        std::fprintf(stderr, "stale warm-up failed\n");
        return 1;
      }
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t b = 0; b < kBatches; ++b) {
        request.seed = 1000 + b;  // never published: forces the refusal
        auto batch = server.AnswerBatch(sweep_queries.value(), request);
        if (!batch.ok()) {
          std::fprintf(stderr, "stale batch failed: %s\n",
                       batch.status().ToString().c_str());
          return 1;
        }
        if (batch.value().stale) ++stale_count;
      }
      const auto stop = std::chrono::steady_clock::now();
      total_ms += ElapsedMs(start, stop);
    }
    const double stale_frac =
        static_cast<double>(stale_count) / static_cast<double>(reps * kBatches);
    const double mean_batch_ms =
        total_ms / static_cast<double>(reps * kBatches);
    if (stale_frac != 1.0) {
      std::fprintf(stderr, "expected every batch stale, got %.3f\n",
                   stale_frac);
      return 1;
    }
    stale_table.AddRow(
        {std::to_string(kBatches),
         dphist::TablePrinter::FormatDouble(stale_frac, 3),
         dphist::TablePrinter::FormatDouble(mean_batch_ms, 4)});
    json.AddRow(json.Row()
                    .Str("dataset", dataset.name)
                    .Str("mode", "stale_degraded")
                    .Int("n", n)
                    .Int("batches", kBatches)
                    .Num("stale_frac", stale_frac)
                    .Int("reps", reps)
                    .Num("mean_batch_ms", mean_batch_ms));
  }
  stale_table.Print();

  // -- (d) shard sweep -----------------------------------------------------
  // Many tenants, pure cache-hit serving from several threads. With one
  // shard every tenant contends on one mutex; the sweep shows how much of
  // that the sharded layout buys back. Identity: (mode, shards, threads).
  std::printf("\n");
  constexpr std::size_t kSweepThreads = 4;
  constexpr std::size_t kSweepTenants = 8;
  constexpr std::size_t kOpsPerThread = 20000;
  dphist::TablePrinter shard_table({"shards", "threads", "elapsed_ms"});
  for (std::size_t shards : {1, 4, 16}) {
    double total_ms = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      dphist::serve::ReleaseServerOptions options;
      options.cache_shards = shards;
      dphist::serve::ReleaseServer server(options);
      dphist::serve::ServeRequest request;
      request.publisher = "noise_first";
      request.epsilon = 0.1;
      request.seed = 7;
      for (std::size_t t = 0; t < kSweepTenants; ++t) {
        const dphist::serve::TenantKey key{"tenant" + std::to_string(t),
                                           "data"};
        if (!server.AddDataset(key, dataset.histogram, 1.0).ok() ||
            !server.GetRelease(key, request).ok()) {
          std::fprintf(stderr, "shard sweep warm-up failed\n");
          return 1;
        }
      }
      const auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> threads;
      threads.reserve(kSweepThreads);
      for (std::size_t w = 0; w < kSweepThreads; ++w) {
        threads.emplace_back([&, w]() {
          for (std::size_t op = 0; op < kOpsPerThread; ++op) {
            const dphist::serve::TenantKey key{
                "tenant" + std::to_string((w + op) % kSweepTenants), "data"};
            auto release = server.GetRelease(key, request);
            if (!release.ok()) {
              std::fprintf(stderr, "shard sweep op failed\n");
              std::abort();
            }
          }
        });
      }
      for (std::thread& thread : threads) {
        thread.join();
      }
      const auto stop = std::chrono::steady_clock::now();
      total_ms += ElapsedMs(start, stop);
    }
    const double elapsed_ms = total_ms / static_cast<double>(reps);
    shard_table.AddRow({std::to_string(shards),
                        std::to_string(kSweepThreads),
                        dphist::TablePrinter::FormatDouble(elapsed_ms, 3)});
    json.AddRow(json.Row()
                    .Str("dataset", dataset.name)
                    .Str("mode", "shard_sweep")
                    .Int("n", n)
                    .Int("shards", shards)
                    .Int("threads", kSweepThreads)
                    .Int("reps", reps)
                    .Num("elapsed_ms", elapsed_ms));
  }
  shard_table.Print();

  // -- (e) journal replay (BM_JournalReplay) -------------------------------
  // Startup cost of recovery: decode + CRC-check a realistic record mix
  // (one charge per publish, 64-bin releases) entirely in memory.
  std::printf("\n");
  dphist::TablePrinter replay_table(
      {"records", "replay_ms", "records_per_ms"});
  for (std::size_t records : {1024, 8192}) {
    std::string bytes(dphist::serve::JournalMagic());
    for (std::size_t i = 0; i < records; i += 2) {
      dphist::serve::JournalRecord charge;
      charge.type = dphist::serve::JournalRecord::Type::kCharge;
      charge.key = {"tenant" + std::to_string(i % 7), "data"};
      charge.epsilon = 0.1;
      charge.label = "noise_first:seed=" + std::to_string(i);
      bytes += dphist::serve::EncodeJournalRecord(charge);
      dphist::serve::JournalRecord publish;
      publish.type = dphist::serve::JournalRecord::Type::kPublish;
      publish.key = charge.key;
      publish.fingerprint = 0x9E3779B97F4A7C15ULL + i;
      publish.publisher = "noise_first";
      publish.epsilon = 0.1;
      publish.seed = i;
      publish.counts.assign(64, static_cast<double>(i));
      bytes += dphist::serve::EncodeJournalRecord(publish);
    }
    const std::size_t iters = reps * 5;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      auto replay = dphist::serve::ReplayJournalBytes(bytes);
      if (!replay.ok() || replay.value().records.size() != records) {
        std::fprintf(stderr, "journal replay failed\n");
        return 1;
      }
    }
    const auto stop = std::chrono::steady_clock::now();
    const double replay_ms =
        ElapsedMs(start, stop) / static_cast<double>(iters);
    replay_table.AddRow(
        {std::to_string(records),
         dphist::TablePrinter::FormatDouble(replay_ms, 4),
         dphist::TablePrinter::FormatDouble(
             static_cast<double>(records) / replay_ms, 1)});
    json.AddRow(json.Row()
                    .Str("dataset", dataset.name)
                    .Str("mode", "journal_replay")
                    .Int("records", records)
                    .Int("reps", reps)
                    .Num("replay_ms", replay_ms));
  }
  replay_table.Print();
  json.Finish();
  return 0;
}
