// Experiment F5 — StructureFirst's budget split between structure (eps_s)
// and counts (eps_c), for both exponential-mechanism score functions.
//
// Expected shape: an interior optimum — too little structure budget yields
// random cuts (approximation error), too much starves the bucket counts
// (noise error). The absolute-cost score (sensitivity 2) tolerates small
// structure budgets far better than the capped-squared score (sensitivity
// 2C+1), which is the ablation motivating the default.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/bench_util/experiment.h"
#include "dphist/bench_util/table.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"

int main() {
  const std::size_t reps = dphist_bench::Repetitions(8);
  const dphist::Dataset dataset = dphist_bench::Suite()[1];  // nettrace
  const std::size_t n = dataset.histogram.size();
  const double epsilon = 0.05;

  dphist::Rng workload_rng(13);
  auto queries = dphist::RandomRangeWorkload(n, 400, workload_rng);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload failed\n");
    return 1;
  }
  dphist_bench::BenchJsonWriter json("budget_split");

  std::printf("== F5: SF budget split on %s "
              "(n=%zu, eps=%g, reps=%zu, threads=%zu) ==\n\n",
              dataset.name.c_str(), n, epsilon, reps,
              dphist_bench::Threads());
  dphist::TablePrinter table(
      {"eps_s/eps", "mae(absolute)", "mae(squared,cap=1e4)"});
  for (double ratio : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    dphist::StructureFirst::Options abs_options;
    abs_options.structure_budget_ratio = ratio;
    dphist::StructureFirst::Options sq_options;
    sq_options.structure_budget_ratio = ratio;
    sq_options.cost_kind = dphist::CostKind::kSquared;
    sq_options.count_cap = 1.0e4;
    auto abs_cell = dphist::RunCell(dphist::StructureFirst(abs_options),
                                    dataset.histogram, queries.value(),
                                    epsilon, reps,
                                    7000 + static_cast<std::uint64_t>(
                                               ratio * 100));
    auto sq_cell = dphist::RunCell(dphist::StructureFirst(sq_options),
                                   dataset.histogram, queries.value(),
                                   epsilon, reps,
                                   8000 + static_cast<std::uint64_t>(
                                              ratio * 100));
    if (!abs_cell.ok() || !sq_cell.ok()) {
      std::fprintf(stderr, "cell failed\n");
      return 1;
    }
    table.AddRow({dphist::TablePrinter::FormatDouble(ratio, 2),
                  dphist::TablePrinter::FormatDouble(
                      abs_cell.value().workload_mae.mean, 4),
                  dphist::TablePrinter::FormatDouble(
                      sq_cell.value().workload_mae.mean, 4)});
    json.AddRow(json.Row()
                    .Str("dataset", dataset.name)
                    .Str("score", "absolute")
                    .Num("ratio", ratio)
                    .Num("epsilon", epsilon)
                    .Int("reps", reps)
                    .Num("mae", abs_cell.value().workload_mae.mean)
                    .Num("wall_ms", abs_cell.value().publish_ms.mean));
    json.AddRow(json.Row()
                    .Str("dataset", dataset.name)
                    .Str("score", "squared")
                    .Num("ratio", ratio)
                    .Num("epsilon", epsilon)
                    .Int("reps", reps)
                    .Num("mae", sq_cell.value().workload_mae.mean)
                    .Num("wall_ms", sq_cell.value().publish_ms.mean));
  }
  table.Print();
  json.Finish();
  return 0;
}
