// Experiment F3 — Kullback-Leibler divergence between the true and the
// released histogram (as distributions) vs epsilon: the paper's
// distribution-approximation figure.
//
// Expected shape: KL falls monotonically with epsilon for every algorithm;
// the merging algorithms (NF/SF) dominate at small epsilon because the
// per-bin noise that dominates KL is averaged away inside buckets.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dphist/algorithms/registry.h"
#include "dphist/bench_util/experiment.h"
#include "dphist/bench_util/table.h"
#include "dphist/query/workload.h"

int main() {
  const std::size_t reps = dphist_bench::Repetitions();
  const std::vector<double> epsilons = {0.01, 0.05, 0.1, 0.5, 1.0};
  const auto publishers = dphist::PublisherRegistry::MakePaperSuite();
  dphist_bench::BenchJsonWriter json("kl_vs_epsilon");

  std::printf("== F3: KL(true || released) vs epsilon "
              "(reps=%zu, threads=%zu) ==\n",
              reps, dphist_bench::Threads());
  for (const dphist::Dataset& dataset : dphist_bench::Suite()) {
    std::printf("\n-- dataset: %s (n=%zu) --\n", dataset.name.c_str(),
                dataset.histogram.size());
    std::vector<std::string> headers = {"epsilon"};
    for (const auto& publisher : publishers) {
      headers.push_back(publisher->name());
    }
    dphist::TablePrinter table(headers);
    // RunCell computes KL alongside workload error; reuse it with a
    // minimal unit workload.
    const std::vector<dphist::RangeQuery> unit = {{0, 1}};
    for (double epsilon : epsilons) {
      std::vector<std::string> row = {
          dphist::TablePrinter::FormatDouble(epsilon, 3)};
      for (const auto& publisher : publishers) {
        auto cell = dphist::RunCell(
            *publisher, dataset.histogram, unit, epsilon, reps,
            /*seed=*/3000 + static_cast<std::uint64_t>(epsilon * 1e4));
        if (!cell.ok()) {
          std::fprintf(stderr, "cell failed: %s\n",
                       cell.status().ToString().c_str());
          return 1;
        }
        row.push_back(dphist::TablePrinter::FormatDouble(
            cell.value().kl_divergence.mean, 4));
        json.AddRow(json.Row()
                        .Str("dataset", dataset.name)
                        .Str("algo", publisher->name())
                        .Num("epsilon", epsilon)
                        .Int("reps", reps)
                        .Num("kl", cell.value().kl_divergence.mean)
                        .Num("wall_ms", cell.value().publish_ms.mean));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  json.Finish();
  return 0;
}
