// Experiment M1 — microbenchmarks of the mechanisms and transforms
// (google-benchmark). These are throughput sanity checks for the
// substrates, not paper figures.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "dphist/hist/fenwick.h"
#include "dphist/obs/export.h"
#include "dphist/hist/interval_cost.h"
#include "dphist/hist/vopt_dp.h"
#include "dphist/privacy/budget.h"
#include "dphist/privacy/exponential_mechanism.h"
#include "dphist/random/distributions.h"
#include "dphist/random/noise_batch.h"
#include "dphist/random/rng.h"
#include "dphist/transform/haar_wavelet.h"
#include "dphist/transform/interval_tree.h"

namespace {

std::vector<double> RandomCounts(std::size_t n) {
  dphist::Rng rng(1);
  std::vector<double> counts(n);
  for (double& c : counts) {
    c = static_cast<double>(dphist::SampleUniformInt(rng, 0, 1000));
  }
  return counts;
}

void BM_SampleLaplace(benchmark::State& state) {
  dphist::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dphist::SampleLaplace(rng, 1.0));
  }
}
BENCHMARK(BM_SampleLaplace);

void BM_SampleTwoSidedGeometric(benchmark::State& state) {
  dphist::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dphist::SampleTwoSidedGeometric(rng, 0.9));
  }
}
BENCHMARK(BM_SampleTwoSidedGeometric);

void BM_ExponentialMechanismSelect(benchmark::State& state) {
  const std::size_t candidates = static_cast<std::size_t>(state.range(0));
  auto em = dphist::ExponentialMechanism::Create(0.1, 2.0);
  dphist::Rng rng(4);
  std::vector<double> utilities(candidates);
  for (std::size_t i = 0; i < candidates; ++i) {
    utilities[i] = -static_cast<double>(i % 97);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(em.value().Select(utilities, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(candidates));
}
BENCHMARK(BM_ExponentialMechanismSelect)->Arg(64)->Arg(1024)->Arg(8192);

void BM_HaarForwardInverse(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomCounts(n);
  for (auto _ : state) {
    auto c = dphist::HaarWavelet::Forward(x);
    auto back = dphist::HaarWavelet::Inverse(c.value());
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HaarForwardInverse)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_TreeConstrainedInference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto tree = dphist::IntervalTree::Create(n, 2);
  auto sums = tree.value().NodeSums(RandomCounts(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.value().ConstrainedInference(sums.value()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TreeConstrainedInference)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FenwickInsertQuery(benchmark::State& state) {
  const std::size_t ranks = 4096;
  dphist::RankedFenwick tree(ranks);
  dphist::Rng rng(5);
  std::size_t i = 0;
  for (auto _ : state) {
    tree.Insert(i % ranks, 1.0);
    benchmark::DoNotOptimize(tree.SumUpTo((i * 7) % ranks));
    ++i;
  }
}
BENCHMARK(BM_FenwickInsertQuery);

void BM_BudgetChargeSequential(benchmark::State& state) {
  // Per-charge cost must stay flat as the ledger grows: spent_epsilon is
  // maintained incrementally, not recomputed over all prior charges (the
  // historical O(n) per charge made long-lived accountants quadratic).
  const std::size_t charges = static_cast<std::size_t>(state.range(0));
  const double total = static_cast<double>(charges);
  for (auto _ : state) {
    dphist::BudgetAccountant budget(total);
    for (std::size_t i = 0; i < charges; ++i) {
      benchmark::DoNotOptimize(budget.ChargeSequential(0.5, "q"));
    }
    benchmark::DoNotOptimize(budget.spent_epsilon());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(charges));
}
BENCHMARK(BM_BudgetChargeSequential)->Arg(256)->Arg(4096)->Arg(65536);

void BM_IntervalCostBuildAbsolute(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> counts = RandomCounts(n);
  dphist::IntervalCostTable::Options options;
  options.kind = dphist::CostKind::kAbsolute;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dphist::IntervalCostTable::Create(counts, options));
  }
}
BENCHMARK(BM_IntervalCostBuildAbsolute)->Arg(256)->Arg(1024);

// Arg 0: domain size; arg 1: row strategy (0 = naive, 1 = monotone). The
// strategy is set explicitly so a DPHIST_VOPT_STRATEGY override cannot
// collapse the comparison into measuring one path twice.
void BM_VOptSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> counts = RandomCounts(n);
  dphist::IntervalCostTable::Options options;
  auto table = dphist::IntervalCostTable::Create(counts, options);
  dphist::VOptSolver::SolveOptions solve_options;
  solve_options.strategy = state.range(1) == 0
                               ? dphist::VOptStrategy::kNaive
                               : dphist::VOptStrategy::kMonotone;
  state.SetLabel(dphist::VOptStrategyName(solve_options.strategy));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dphist::VOptSolver::Solve(table.value(), 64, solve_options));
  }
}
BENCHMARK(BM_VOptSolve)->ArgsProduct({{256, 1024, 4096}, {0, 1}});

// Arg 0: vector length; arg 1: noise model (0 = textbook, 1 = batched,
// 2 = snapped, 3 = discrete). The model is set explicitly so a
// DPHIST_NOISE_MODEL override cannot collapse the comparison.
constexpr dphist::NoiseModel kBenchNoiseModels[] = {
    dphist::NoiseModel::kTextbook, dphist::NoiseModel::kBatched,
    dphist::NoiseModel::kSnapped, dphist::NoiseModel::kDiscrete};

void BM_NoiseBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const dphist::NoiseModel model = kBenchNoiseModels[state.range(1)];
  state.SetLabel(dphist::NoiseModelName(model));
  const std::vector<double> values = RandomCounts(n);
  std::vector<double> out(n);
  dphist::Rng rng(6);
  for (auto _ : state) {
    dphist::noise_batch::AddContinuousNoise(model, 1.0, values.data(),
                                            out.data(), n, rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NoiseBatch)
    ->ArgsProduct({{4096, 65536, 1048576}, {0, 1, 2, 3}});

// The M1 noise-model table: per (model, n), the median wall time of one
// full-vector perturbation, with each non-textbook model's speedup over
// the textbook scalar per-draw sampler at the same n. The noise_model
// column is a regression-gate identity field, so rows never cross-match
// between models.
void RunNoiseBatchTable(dphist_bench::BenchJsonWriter& json) {
  const std::size_t reps = dphist_bench::Repetitions();
  for (const std::size_t n : {std::size_t{4096}, std::size_t{65536},
                              std::size_t{1048576}}) {
    const std::vector<double> values = RandomCounts(n);
    std::vector<double> out(n);
    double textbook_ms = 0.0;
    for (const dphist::NoiseModel model : kBenchNoiseModels) {
      dphist::Rng rng(6);
      std::vector<double> wall_ms;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        dphist::noise_batch::AddContinuousNoise(model, 1.0, values.data(),
                                                out.data(), n, rng);
        wall_ms.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
      }
      std::sort(wall_ms.begin(), wall_ms.end());
      const double median = wall_ms[wall_ms.size() / 2];
      auto row = json.Row()
                     .Str("fig", "m1_noise")
                     .Str("algo", "noise_batch")
                     .Str("noise_model", dphist::NoiseModelName(model))
                     .Num("n", static_cast<double>(n))
                     .Num("sample_ms", median);
      if (model == dphist::NoiseModel::kTextbook) {
        textbook_ms = median;
      } else {
        row.Num("speedup", textbook_ms / median);
      }
      json.AddRow(row);
    }
  }
}

// The M1 strategy table: per (n, strategy), the median wall time of a
// 64-bucket solve over the uniform worst-case counts, plus the solver's
// deterministic work counters. Emitted as bench JSON so the regression
// gate holds both the timing ratio and — tightly — the pruning behavior
// (a jump in cost_lookups means the bound or the skip rules changed).
void RunVOptStrategyTable(dphist_bench::BenchJsonWriter& json) {
  const std::size_t reps = dphist_bench::Repetitions();
  for (const std::size_t n : {std::size_t{256}, std::size_t{1024},
                              std::size_t{4096}}) {
    const std::vector<double> counts = RandomCounts(n);
    dphist::IntervalCostTable::Options options;
    auto table = dphist::IntervalCostTable::Create(counts, options);
    double naive_ms = 0.0;
    for (const dphist::VOptStrategy strategy :
         {dphist::VOptStrategy::kNaive, dphist::VOptStrategy::kMonotone}) {
      dphist::VOptSolver::SolveOptions solve_options;
      solve_options.strategy = strategy;
      dphist::VOptSolver::SolveStats stats;
      std::vector<double> wall_ms;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        auto solver =
            dphist::VOptSolver::Solve(table.value(), 64, solve_options);
        wall_ms.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
        stats = solver.value().stats();
      }
      std::sort(wall_ms.begin(), wall_ms.end());
      const double median = wall_ms[wall_ms.size() / 2];
      auto row = json.Row()
                     .Str("fig", "m1_vopt")
                     .Str("algo", "vopt_solve")
                     .Str("strategy", dphist::VOptStrategyName(strategy))
                     .Num("n", static_cast<double>(n))
                     .Num("k", 64.0)
                     .Num("solve_ms", median)
                     .Num("cost_lookups",
                          static_cast<double>(stats.cost_lookups))
                     .Num("bound_scans",
                          static_cast<double>(stats.bound_scans));
      if (strategy == dphist::VOptStrategy::kNaive) {
        naive_ms = median;
      } else {
        row.Num("speedup", naive_ms / median);
      }
      json.AddRow(row);
    }
  }
}

}  // namespace

// Custom main (instead of benchmark_main) so the strategy table runs and
// the obs registry snapshot — solver counters, interval-cost build stats,
// draw counts — is exported after the benchmarks (BenchJsonWriter::Finish
// handles the DPHIST_OBS_OUT export).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dphist_bench::BenchJsonWriter json("micro");
  RunVOptStrategyTable(json);
  RunNoiseBatchTable(json);
  json.Finish();
  return 0;
}
