// Experiment M1 — microbenchmarks of the mechanisms and transforms
// (google-benchmark). These are throughput sanity checks for the
// substrates, not paper figures.

#include <cstddef>
#include <vector>

#include <benchmark/benchmark.h>

#include "dphist/hist/fenwick.h"
#include "dphist/obs/export.h"
#include "dphist/hist/interval_cost.h"
#include "dphist/hist/vopt_dp.h"
#include "dphist/privacy/budget.h"
#include "dphist/privacy/exponential_mechanism.h"
#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"
#include "dphist/transform/haar_wavelet.h"
#include "dphist/transform/interval_tree.h"

namespace {

std::vector<double> RandomCounts(std::size_t n) {
  dphist::Rng rng(1);
  std::vector<double> counts(n);
  for (double& c : counts) {
    c = static_cast<double>(dphist::SampleUniformInt(rng, 0, 1000));
  }
  return counts;
}

void BM_SampleLaplace(benchmark::State& state) {
  dphist::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dphist::SampleLaplace(rng, 1.0));
  }
}
BENCHMARK(BM_SampleLaplace);

void BM_SampleTwoSidedGeometric(benchmark::State& state) {
  dphist::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dphist::SampleTwoSidedGeometric(rng, 0.9));
  }
}
BENCHMARK(BM_SampleTwoSidedGeometric);

void BM_ExponentialMechanismSelect(benchmark::State& state) {
  const std::size_t candidates = static_cast<std::size_t>(state.range(0));
  auto em = dphist::ExponentialMechanism::Create(0.1, 2.0);
  dphist::Rng rng(4);
  std::vector<double> utilities(candidates);
  for (std::size_t i = 0; i < candidates; ++i) {
    utilities[i] = -static_cast<double>(i % 97);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(em.value().Select(utilities, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(candidates));
}
BENCHMARK(BM_ExponentialMechanismSelect)->Arg(64)->Arg(1024)->Arg(8192);

void BM_HaarForwardInverse(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomCounts(n);
  for (auto _ : state) {
    auto c = dphist::HaarWavelet::Forward(x);
    auto back = dphist::HaarWavelet::Inverse(c.value());
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HaarForwardInverse)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_TreeConstrainedInference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto tree = dphist::IntervalTree::Create(n, 2);
  auto sums = tree.value().NodeSums(RandomCounts(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.value().ConstrainedInference(sums.value()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TreeConstrainedInference)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FenwickInsertQuery(benchmark::State& state) {
  const std::size_t ranks = 4096;
  dphist::RankedFenwick tree(ranks);
  dphist::Rng rng(5);
  std::size_t i = 0;
  for (auto _ : state) {
    tree.Insert(i % ranks, 1.0);
    benchmark::DoNotOptimize(tree.SumUpTo((i * 7) % ranks));
    ++i;
  }
}
BENCHMARK(BM_FenwickInsertQuery);

void BM_BudgetChargeSequential(benchmark::State& state) {
  // Per-charge cost must stay flat as the ledger grows: spent_epsilon is
  // maintained incrementally, not recomputed over all prior charges (the
  // historical O(n) per charge made long-lived accountants quadratic).
  const std::size_t charges = static_cast<std::size_t>(state.range(0));
  const double total = static_cast<double>(charges);
  for (auto _ : state) {
    dphist::BudgetAccountant budget(total);
    for (std::size_t i = 0; i < charges; ++i) {
      benchmark::DoNotOptimize(budget.ChargeSequential(0.5, "q"));
    }
    benchmark::DoNotOptimize(budget.spent_epsilon());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(charges));
}
BENCHMARK(BM_BudgetChargeSequential)->Arg(256)->Arg(4096)->Arg(65536);

void BM_IntervalCostBuildAbsolute(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> counts = RandomCounts(n);
  dphist::IntervalCostTable::Options options;
  options.kind = dphist::CostKind::kAbsolute;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dphist::IntervalCostTable::Create(counts, options));
  }
}
BENCHMARK(BM_IntervalCostBuildAbsolute)->Arg(256)->Arg(1024);

void BM_VOptSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> counts = RandomCounts(n);
  dphist::IntervalCostTable::Options options;
  auto table = dphist::IntervalCostTable::Create(counts, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dphist::VOptSolver::Solve(table.value(), 64));
  }
}
BENCHMARK(BM_VOptSolve)->Arg(256)->Arg(1024);

}  // namespace

// Custom main (instead of benchmark_main) so the obs registry snapshot —
// solver counters, interval-cost build stats, draw counts — is exported
// after the benchmarks run when DPHIST_OBS_OUT is set.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dphist::obs::ExportToEnv("micro");
  return 0;
}
