// Network front-end benchmark: end-to-end loopback latency and throughput
// of the HTTP/1.1 query server at 1/4/16/64 concurrent keep-alive
// clients, plus a JSON-codec row to price the fallback against the binary
// wire format and an `encoded_cache=off` row to price the serve-path
// overhaul (sealed snapshots + inline fast lane + pre-encoded frames +
// writev) against the dispatch-everything path it replaced. The cache is
// warmed first, so every request is a cached-release answer — the bench
// measures the wire path (framing, parse, fast lane or dispatch, codec)
// rather than the publisher.
//
// Expected shape: single-client binary QPS well above 10k on loopback
// (one round trip is a frame decode plus a handful of prefix-sum
// subtractions); p99 a small multiple of p50; JSON slower than binary by
// the number-formatting cost; the fast lane (encoded_cache=on) several
// times faster than the dispatch path at every client count; QPS rising
// with client count until the single event loop saturates. qps is
// reported for the human table and the JSON rows but excluded from the
// regression gate (IGNORED_FIELDS) — absolute throughput is a machine
// property, the gated *_ms latencies already catch regressions.
// `encoded_cache` is an ID field: on- and off-rows gate against their own
// baselines.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dphist/bench_util/table.h"
#include "dphist/common/thread_pool.h"
#include "dphist/net/client.h"
#include "dphist/net/server.h"
#include "dphist/net/wire_codec.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"
#include "dphist/serve/release_server.h"

namespace {

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) {
    return 0.0;
  }
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[index];
}

}  // namespace

int main() {
  const std::size_t reps = dphist_bench::Repetitions(3);
  const dphist::Dataset dataset = dphist_bench::Suite()[1];  // nettrace
  const std::size_t n = dataset.histogram.size();
  constexpr std::size_t kBatchSize = 64;
  const std::size_t requests_per_client = 500 * reps;
  dphist_bench::BenchJsonWriter json("serve_net");

  std::printf("== Serve/net: loopback HTTP query latency on %s "
              "(n=%zu, batch=%zu, reps=%zu, threads=%zu) ==\n\n",
              dataset.name.c_str(), n, kBatchSize, reps,
              dphist_bench::Threads());

  // Two servers over independent release stores: the fast-lane
  // configuration under measurement and the pre-overhaul dispatch path as
  // the A/B control. Both serve the same deterministic release.
  dphist::serve::ReleaseServer server(dataset.histogram,
                                      /*total_epsilon=*/1.0e9);
  dphist::serve::ReleaseServer server_uncached(dataset.histogram,
                                               /*total_epsilon=*/1.0e9);
  dphist::net::NetServerOptions cached_options;
  cached_options.encoded_cache = true;
  dphist::net::NetServerOptions uncached_options;
  uncached_options.encoded_cache = false;
  dphist::net::NetServer net_server(&server, cached_options);
  dphist::net::NetServer net_server_uncached(&server_uncached,
                                             uncached_options);
  for (dphist::net::NetServer* srv :
       {&net_server, &net_server_uncached}) {
    const dphist::Status started = srv->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
  }

  dphist::Rng workload_rng(21);
  auto queries =
      dphist::RandomRangeWorkload(n, kBatchSize, workload_rng);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload failed\n");
    return 1;
  }
  dphist::net::WireQueryRequest query;
  query.request.publisher = "noise_first";
  query.request.epsilon = 0.1;
  query.request.seed = 7;
  query.queries = queries.value();

  // Publish once on each store so the measured loop is pure cached
  // serving.
  for (dphist::net::NetServer* srv :
       {&net_server, &net_server_uncached}) {
    dphist::net::NetClient warm;
    if (!warm.Connect("127.0.0.1", srv->port()).ok() ||
        !warm.Query(query, /*binary=*/true).ok()) {
      std::fprintf(stderr, "warm-up failed\n");
      return 1;
    }
  }

  dphist::TablePrinter table({"clients", "codec", "encoded_cache",
                              "pipeline", "requests", "p50_ms", "p99_ms",
                              "qps"});
  struct Cell {
    std::size_t clients;
    bool binary;
    bool encoded_cache;
    /// Requests in flight per connection: 0 = synchronous ping-pong
    /// (measures round-trip latency), >0 = HTTP/1.1 pipelined bursts of
    /// that depth (amortizes the loopback syscall floor and measures
    /// server-side capacity — the fast-lane vs dispatch-path comparison
    /// only shows up here, since a lone in-flight request is bounded by
    /// kernel wakeup latency either way).
    std::size_t pipeline;
  };
  constexpr std::size_t kPipelineDepth = 32;
  const Cell cells[] = {{1, true, true, 0},
                        {4, true, true, 0},
                        {16, true, true, 0},
                        {64, true, true, 0},
                        {1, false, true, 0},
                        {1, true, false, 0},
                        {4, true, false, 0},
                        {4, true, true, kPipelineDepth},
                        {4, true, false, kPipelineDepth}};
  for (const Cell& cell : cells) {
    dphist::net::NetServer& target =
        cell.encoded_cache ? net_server : net_server_uncached;
    std::vector<std::vector<double>> latencies(cell.clients);
    std::vector<std::thread> clients;
    clients.reserve(cell.clients);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < cell.clients; ++c) {
      clients.emplace_back([&, c]() {
        dphist::net::NetClient client;
        if (!client.Connect("127.0.0.1", target.port()).ok()) {
          std::fprintf(stderr, "connect failed\n");
          std::abort();
        }
        latencies[c].reserve(requests_per_client);
        if (cell.pipeline > 0) {
          // Pipelined bursts; per-request latency is burst wall time
          // divided by depth (the gateable per-request cost).
          const std::size_t bursts =
              (requests_per_client + cell.pipeline - 1) / cell.pipeline;
          for (std::size_t b = 0; b < bursts; ++b) {
            const auto before = std::chrono::steady_clock::now();
            auto burst =
                client.QueryPipelined(query, cell.binary, cell.pipeline);
            const auto after = std::chrono::steady_clock::now();
            if (!burst.ok() || burst.value().size() != cell.pipeline) {
              std::fprintf(stderr, "pipelined query failed: %s\n",
                           burst.status().ToString().c_str());
              std::abort();
            }
            const double per_request_ms =
                std::chrono::duration<double, std::milli>(after - before)
                    .count() /
                static_cast<double>(cell.pipeline);
            for (std::size_t i = 0; i < cell.pipeline; ++i) {
              latencies[c].push_back(per_request_ms);
            }
          }
          return;
        }
        for (std::size_t i = 0; i < requests_per_client; ++i) {
          const auto before = std::chrono::steady_clock::now();
          auto answer = client.Query(query, cell.binary);
          const auto after = std::chrono::steady_clock::now();
          if (!answer.ok() ||
              answer.value().answers.size() != kBatchSize) {
            std::fprintf(stderr, "query failed: %s\n",
                         answer.status().ToString().c_str());
            std::abort();
          }
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(after - before)
                  .count());
        }
      });
    }
    for (std::thread& thread : clients) {
      thread.join();
    }
    const auto stop = std::chrono::steady_clock::now();
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    std::vector<double> merged;
    merged.reserve(cell.clients * requests_per_client);
    for (const std::vector<double>& per_client : latencies) {
      merged.insert(merged.end(), per_client.begin(), per_client.end());
    }
    std::sort(merged.begin(), merged.end());
    const double p50 = Percentile(merged, 0.50);
    const double p99 = Percentile(merged, 0.99);
    const double qps =
        static_cast<double>(merged.size()) / (elapsed_ms / 1000.0);
    const char* codec = cell.binary ? "binary" : "json";
    const char* encoded_cache = cell.encoded_cache ? "on" : "off";
    const char* mode =
        cell.pipeline > 0 ? "loopback_pipelined" : "loopback_latency";
    table.AddRow({std::to_string(cell.clients), codec, encoded_cache,
                  std::to_string(cell.pipeline),
                  std::to_string(merged.size()),
                  dphist::TablePrinter::FormatDouble(p50, 4),
                  dphist::TablePrinter::FormatDouble(p99, 4),
                  std::to_string(static_cast<long long>(qps))});
    json.AddRow(json.Row()
                    .Str("dataset", dataset.name)
                    .Str("mode", mode)
                    .Str("codec", codec)
                    .Str("encoded_cache", encoded_cache)
                    .Int("pipeline", cell.pipeline)
                    .Int("clients", cell.clients)
                    .Int("n", n)
                    .Int("batch_size", kBatchSize)
                    .Int("reps", reps)
                    .Num("p50_ms", p50)
                    .Num("p99_ms", p99)
                    .Num("qps", qps));
  }
  table.Print();
  net_server.Stop();
  net_server_uncached.Stop();
  json.Finish();
  return 0;
}
