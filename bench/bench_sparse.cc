// Sparse-publisher benchmark — accuracy and publish latency of the sparse
// mechanisms at domains far past what a dense histogram can materialize,
// with the dense identity-Laplace baseline at the one domain small enough
// to materialize.
//
// Expected shape: SparsePure publish time depends on the number of stored
// keys (and the expected spurious releases), not the domain — d = 2^40
// costs the same as d = 10^6 at equal key counts, the paper's near-linear
// claim. The dense dwork row at d = 10^6 anchors what materializing costs.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dphist/algorithms/registry.h"
#include "dphist/hist/histogram.h"
#include "dphist/query/range_query.h"
#include "dphist/query/sparse_query.h"
#include "dphist/query/workload.h"
#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"
#include "dphist/sparse/sparse_histogram.h"
#include "dphist/bench_util/table.h"

namespace {

constexpr std::size_t kRecords = 100000;
constexpr std::size_t kHotKeys = 2000;
constexpr std::size_t kQueries = 400;
constexpr double kEpsilon = 1.0;

// A deterministic skewed key stream: 70% of records land on a fixed set of
// hot keys (expected count ~35 each — comfortably above the suppression
// thresholds at these domains), the rest spread uniformly, so the release
// has both surviving and suppressed keys.
dphist::sparse::SparseHistogram MakeTruth(std::uint64_t domain,
                                          std::uint64_t seed) {
  dphist::Rng rng(seed);
  std::vector<std::uint64_t> hot(kHotKeys);
  for (std::uint64_t& key : hot) {
    key = dphist::SampleIndex(rng, static_cast<std::size_t>(domain));
  }
  std::vector<std::uint64_t> records;
  records.reserve(kRecords);
  for (std::size_t i = 0; i < kRecords; ++i) {
    if (dphist::SampleIndex(rng, 10) < 7) {
      records.push_back(hot[dphist::SampleIndex(rng, kHotKeys)]);
    } else {
      records.push_back(
          dphist::SampleIndex(rng, static_cast<std::size_t>(domain)));
    }
  }
  auto truth = dphist::sparse::SparseHistogram::FromRecords(domain, records);
  if (!truth.ok()) {
    std::fprintf(stderr, "truth construction failed: %s\n",
                 truth.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(truth).value();
}

double MeanAbsoluteError(const dphist::sparse::SparseHistogram& truth,
                         const dphist::sparse::SparseHistogram& released,
                         const std::vector<dphist::RangeQuery>& queries) {
  double total = 0.0;
  for (const dphist::RangeQuery& query : queries) {
    total += std::abs(released.RangeSumUnchecked(query.begin, query.end) -
                      truth.RangeSumUnchecked(query.begin, query.end));
  }
  return total / static_cast<double>(queries.size());
}

}  // namespace

int main() {
  const std::size_t reps = dphist_bench::Repetitions(3);
  const std::vector<std::uint64_t> domains = {
      1000000ULL, 1000000000ULL, 1ULL << 40};
  dphist_bench::BenchJsonWriter json("sparse");

  std::printf("== sparse publishers: accuracy + latency vs domain "
              "(n=%zu records, eps=%g, reps=%zu) ==\n\n",
              kRecords, kEpsilon, reps);
  dphist::TablePrinter table({"algo", "domain", "stored", "released",
                              "publish ms", "mae"});
  for (const std::uint64_t domain : domains) {
    const dphist::sparse::SparseHistogram truth = MakeTruth(domain, 31);
    dphist::Rng workload_rng(77);
    auto queries = dphist::RandomRangeWorkload(
        static_cast<std::size_t>(domain), kQueries, workload_rng);
    if (!queries.ok()) {
      std::fprintf(stderr, "workload failed: %s\n",
                   queries.status().ToString().c_str());
      return 1;
    }
    for (const std::string& name :
         dphist::PublisherRegistry::SparseNames()) {
      auto publisher = dphist::PublisherRegistry::MakeSparse(name);
      if (!publisher.ok()) {
        std::fprintf(stderr, "%s\n", publisher.status().ToString().c_str());
        return 1;
      }
      // Timing loop: `reps` publishes on forked streams.
      dphist::Rng timing_rng(9000);
      double total_ms = 0.0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        dphist::Rng run = timing_rng.Fork();
        const auto start = std::chrono::steady_clock::now();
        auto released = publisher.value()->Publish(truth, kEpsilon, run);
        const auto stop = std::chrono::steady_clock::now();
        if (!released.ok()) {
          std::fprintf(stderr, "publish failed: %s\n",
                       released.status().ToString().c_str());
          return 1;
        }
        total_ms +=
            std::chrono::duration<double, std::milli>(stop - start).count();
      }
      const double publish_ms = total_ms / static_cast<double>(reps);
      // Quality metrics come from one dedicated fixed-seed publish so they
      // are independent of the timing repetition count.
      dphist::Rng quality_rng(4242);
      dphist::sparse::SparsePublishStats stats;
      auto released =
          publisher.value()->Publish(truth, kEpsilon, quality_rng, &stats);
      if (!released.ok()) {
        std::fprintf(stderr, "publish failed: %s\n",
                     released.status().ToString().c_str());
        return 1;
      }
      const double mae =
          MeanAbsoluteError(truth, released.value(), queries.value());
      table.AddRow({name, std::to_string(domain),
                    std::to_string(truth.entries().size()),
                    std::to_string(stats.released_keys),
                    dphist::TablePrinter::FormatDouble(publish_ms, 4),
                    dphist::TablePrinter::FormatDouble(mae, 4)});
      json.AddRow(json.Row()
                      .Str("algo", name)
                      .Int("domain", domain)
                      .Int("n", kRecords)
                      .Num("epsilon", kEpsilon)
                      .Int("reps", reps)
                      .Num("publish_ms", publish_ms)
                      .Num("mae", mae)
                      .Num("released_keys",
                           static_cast<double>(stats.released_keys)));
    }

    // Dense identity-Laplace anchor, only where the domain is small enough
    // to materialize a counts vector.
    if (domain <= 1000000ULL) {
      std::vector<double> counts(static_cast<std::size_t>(domain), 0.0);
      for (const dphist::sparse::SparseEntry& entry : truth.entries()) {
        counts[static_cast<std::size_t>(entry.key)] = entry.count;
      }
      dphist::Histogram dense(std::move(counts));
      auto dwork = dphist::PublisherRegistry::Make("dwork");
      if (!dwork.ok()) {
        std::fprintf(stderr, "%s\n", dwork.status().ToString().c_str());
        return 1;
      }
      dphist::Rng timing_rng(9000);
      double total_ms = 0.0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        dphist::Rng run = timing_rng.Fork();
        const auto start = std::chrono::steady_clock::now();
        auto released = dwork.value()->Publish(dense, kEpsilon, run);
        const auto stop = std::chrono::steady_clock::now();
        if (!released.ok()) {
          std::fprintf(stderr, "dense publish failed: %s\n",
                       released.status().ToString().c_str());
          return 1;
        }
        total_ms +=
            std::chrono::duration<double, std::milli>(stop - start).count();
      }
      const double publish_ms = total_ms / static_cast<double>(reps);
      dphist::Rng quality_rng(4242);
      auto released = dwork.value()->Publish(dense, kEpsilon, quality_rng);
      if (!released.ok()) {
        std::fprintf(stderr, "dense publish failed: %s\n",
                     released.status().ToString().c_str());
        return 1;
      }
      auto answers =
          dphist::AnswerQueries(released.value(), queries.value());
      if (!answers.ok()) {
        std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
        return 1;
      }
      double total = 0.0;
      for (std::size_t i = 0; i < queries.value().size(); ++i) {
        const dphist::RangeQuery& query = queries.value()[i];
        total += std::abs(answers.value()[i] -
                          truth.RangeSumUnchecked(query.begin, query.end));
      }
      const double mae = total / static_cast<double>(queries.value().size());
      table.AddRow({"dwork", std::to_string(domain),
                    std::to_string(truth.entries().size()),
                    std::to_string(domain),
                    dphist::TablePrinter::FormatDouble(publish_ms, 4),
                    dphist::TablePrinter::FormatDouble(mae, 4)});
      json.AddRow(json.Row()
                      .Str("algo", "dwork")
                      .Int("domain", domain)
                      .Int("n", kRecords)
                      .Num("epsilon", kEpsilon)
                      .Int("reps", reps)
                      .Num("publish_ms", publish_ms)
                      .Num("mae", mae)
                      .Num("released_keys", static_cast<double>(domain)));
    }
  }
  table.Print();
  json.Finish();
  return 0;
}
