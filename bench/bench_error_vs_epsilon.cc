// Experiment F1 — mean absolute error of random range queries vs epsilon,
// for the full algorithm suite on every dataset (the paper's headline
// accuracy figure).
//
// Expected shape: all errors fall ~1/epsilon; NF/SF dominate Dwork at
// small epsilon; Boost/Privelet sit between; orderings tighten (and can
// flip toward Dwork) as epsilon grows.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dphist/algorithms/registry.h"
#include "dphist/bench_util/experiment.h"
#include "dphist/bench_util/table.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"

int main() {
  const std::size_t reps = dphist_bench::Repetitions();
  const std::vector<double> epsilons = {0.01, 0.05, 0.1, 0.5, 1.0};
  const auto publishers = dphist::PublisherRegistry::MakePaperSuite();
  dphist_bench::BenchJsonWriter json("error_vs_epsilon");

  std::printf(
      "== F1: MAE of 500 random range queries vs epsilon "
      "(reps=%zu, threads=%zu) ==\n",
      reps, dphist_bench::Threads());
  for (const dphist::Dataset& dataset : dphist_bench::Suite()) {
    dphist::Rng workload_rng(7);
    auto queries =
        dphist::RandomRangeWorkload(dataset.histogram.size(), 500,
                                    workload_rng);
    if (!queries.ok()) {
      std::fprintf(stderr, "workload failed: %s\n",
                   queries.status().ToString().c_str());
      return 1;
    }
    std::printf("\n-- dataset: %s (n=%zu) --\n", dataset.name.c_str(),
                dataset.histogram.size());
    std::vector<std::string> headers = {"epsilon"};
    for (const auto& publisher : publishers) {
      headers.push_back(publisher->name());
    }
    dphist::TablePrinter table(headers);
    for (double epsilon : epsilons) {
      std::vector<std::string> row = {
          dphist::TablePrinter::FormatDouble(epsilon, 3)};
      for (const auto& publisher : publishers) {
        auto cell = dphist::RunCell(*publisher, dataset.histogram,
                                    queries.value(), epsilon, reps,
                                    /*seed=*/1000 + static_cast<std::uint64_t>(
                                                        epsilon * 1e4));
        if (!cell.ok()) {
          std::fprintf(stderr, "cell failed: %s\n",
                       cell.status().ToString().c_str());
          return 1;
        }
        row.push_back(dphist::TablePrinter::FormatDouble(
            cell.value().workload_mae.mean, 4));
        json.AddRow(json.Row()
                        .Str("dataset", dataset.name)
                        .Str("algo", publisher->name())
                        .Num("epsilon", epsilon)
                        .Int("reps", reps)
                        .Num("mae", cell.value().workload_mae.mean)
                        .Num("wall_ms", cell.value().publish_ms.mean));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  json.Finish();
  return 0;
}
