// Experiment F4 + T2 — the effect of the bucket count k.
//
// F4: unit-bin MAE of StructureFirst and NoiseFirst as k is fixed across a
// sweep: U-shape with an interior optimum (too few buckets = approximation
// error, too many = noise error / wasted structure budget).
//
// T2: quality of NoiseFirst's k* estimator — the estimator values versus
// the realized squared error across k, plus the chosen k* of the paper
// estimator and the bias-corrected extension.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/bench_util/experiment.h"
#include "dphist/bench_util/table.h"
#include "dphist/metrics/metrics.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"

int main() {
  const std::size_t reps = dphist_bench::Repetitions();
  // Search logs: bursty with real structure at several scales.
  const dphist::Dataset dataset = dphist_bench::Suite()[2];
  const std::size_t n = dataset.histogram.size();
  const double epsilon = 0.1;
  const std::vector<dphist::RangeQuery> unit = dphist::AllUnitWorkload(n);
  dphist_bench::BenchJsonWriter json("k_sweep");

  std::printf("== F4: unit-bin MAE vs fixed bucket count k on %s "
              "(n=%zu, eps=%g, reps=%zu, threads=%zu) ==\n\n",
              dataset.name.c_str(), n, epsilon, reps,
              dphist_bench::Threads());
  dphist::TablePrinter table({"k", "noise_first", "structure_first"});
  for (std::size_t k = 2; k <= n / 2; k *= 2) {
    dphist::NoiseFirst::Options nf_options;
    nf_options.fixed_buckets = k;
    dphist::NoiseFirst nf(nf_options);
    dphist::StructureFirst::Options sf_options;
    sf_options.num_buckets = k;
    dphist::StructureFirst sf(sf_options);
    auto nf_cell = dphist::RunCell(nf, dataset.histogram, unit, epsilon,
                                   reps, 4000 + k);
    auto sf_cell = dphist::RunCell(sf, dataset.histogram, unit, epsilon,
                                   reps, 5000 + k);
    if (!nf_cell.ok() || !sf_cell.ok()) {
      std::fprintf(stderr, "cell failed\n");
      return 1;
    }
    table.AddRow({std::to_string(k),
                  dphist::TablePrinter::FormatDouble(
                      nf_cell.value().workload_mae.mean, 4),
                  dphist::TablePrinter::FormatDouble(
                      sf_cell.value().workload_mae.mean, 4)});
    json.AddRow(json.Row()
                    .Str("dataset", dataset.name)
                    .Str("algo", "noise_first")
                    .Int("k", k)
                    .Num("epsilon", epsilon)
                    .Int("reps", reps)
                    .Num("mae", nf_cell.value().workload_mae.mean)
                    .Num("wall_ms", nf_cell.value().publish_ms.mean));
    json.AddRow(json.Row()
                    .Str("dataset", dataset.name)
                    .Str("algo", "structure_first")
                    .Int("k", k)
                    .Num("epsilon", epsilon)
                    .Int("reps", reps)
                    .Num("mae", sf_cell.value().workload_mae.mean)
                    .Num("wall_ms", sf_cell.value().publish_ms.mean));
  }
  table.Print();

  std::printf("\n== T2: NoiseFirst k* estimator vs realized error "
              "(eps=%g) ==\n\n", epsilon);
  dphist::NoiseFirst paper_nf;
  dphist::Rng rng(6000);
  dphist::NoiseFirst::Details details;
  auto released =
      paper_nf.PublishWithDetails(dataset.histogram, epsilon, rng, &details);
  if (!released.ok()) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }
  dphist::TablePrinter estimator_table({"k", "estimated_err", "realized_err"});
  // Realized error for each k on the same noisy counts (post-processing,
  // so this is a legitimate diagnostic).
  for (std::size_t k = 1; k <= details.estimated_errors.size(); k *= 2) {
    dphist::NoiseFirst::Options fixed;
    fixed.fixed_buckets = k;
    dphist::Rng replay(6000);  // same noise stream as the details run
    auto fixed_release = dphist::NoiseFirst(fixed).Publish(dataset.histogram,
                                                           epsilon, replay);
    if (!fixed_release.ok()) {
      std::fprintf(stderr, "publish failed\n");
      return 1;
    }
    double realized = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = fixed_release.value().count(i) -
                       dataset.histogram.count(i);
      realized += d * d;
    }
    estimator_table.AddRow(
        {std::to_string(k),
         dphist::TablePrinter::FormatDouble(details.estimated_errors[k - 1],
                                            5),
         dphist::TablePrinter::FormatDouble(realized, 5)});
  }
  estimator_table.Print();
  std::printf("\npaper estimator chose k* = %zu\n", details.chosen_buckets);

  dphist::NoiseFirst::Options corrected_options;
  corrected_options.bias_corrected_selection = true;
  dphist::Rng corrected_rng(6000);
  dphist::NoiseFirst::Details corrected_details;
  auto corrected = dphist::NoiseFirst(corrected_options)
                       .PublishWithDetails(dataset.histogram, epsilon,
                                           corrected_rng, &corrected_details);
  if (!corrected.ok()) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }
  std::printf("bias-corrected extension chose k* = %zu\n",
              corrected_details.chosen_buckets);

  // T2b: does the bias correction pay off end-to-end? Unit-bin MAE of the
  // paper's estimator vs the corrected one across the suite.
  std::printf("\n== T2b: NoiseFirst selection ablation "
              "(unit-bin MAE, reps=%zu) ==\n\n", reps);
  dphist::TablePrinter ablation(
      {"dataset", "epsilon", "paper k*", "corrected k*"});
  dphist::NoiseFirst::Options corrected_opts;
  corrected_opts.bias_corrected_selection = true;
  dphist::NoiseFirst nf_corrected(corrected_opts);
  for (const dphist::Dataset& suite_dataset : dphist_bench::Suite()) {
    const std::vector<dphist::RangeQuery> units =
        dphist::AllUnitWorkload(suite_dataset.histogram.size());
    for (double eps : {0.01, 0.1}) {
      auto paper_cell = dphist::RunCell(paper_nf, suite_dataset.histogram,
                                        units, eps, reps,
                                        13000 + static_cast<std::uint64_t>(
                                                    eps * 1e4));
      auto corrected_cell = dphist::RunCell(
          nf_corrected, suite_dataset.histogram, units, eps, reps,
          14000 + static_cast<std::uint64_t>(eps * 1e4));
      if (!paper_cell.ok() || !corrected_cell.ok()) {
        return 1;
      }
      ablation.AddRow(
          {suite_dataset.name, dphist::TablePrinter::FormatDouble(eps, 3),
           dphist::TablePrinter::FormatDouble(
               paper_cell.value().workload_mae.mean, 4),
           dphist::TablePrinter::FormatDouble(
               corrected_cell.value().workload_mae.mean, 4)});
    }
  }
  ablation.Print();
  json.Finish();
  return 0;
}
