#ifndef DPHIST_BENCH_BENCH_COMMON_H_
#define DPHIST_BENCH_BENCH_COMMON_H_

// Shared setup for the figure/table harnesses in bench/. Every harness
// uses the same dataset suite and seeds so results are comparable across
// binaries, and honors DPHIST_BENCH_REPS to trade runtime for variance.

#include <cstdlib>
#include <string>
#include <vector>

#include "dphist/common/thread_pool.h"
#include "dphist/data/generators.h"

namespace dphist_bench {

/// Trace-dataset domain size shared by the harnesses (Age is fixed at 100
/// bins by construction).
inline constexpr std::size_t kTraceDomain = 1024;

/// Root seed for the synthetic suite (fixed: the figures are reproducible).
inline constexpr std::uint64_t kSuiteSeed = 42;

/// Repetitions per cell; override with DPHIST_BENCH_REPS=<n>.
inline std::size_t Repetitions(std::size_t fallback = 5) {
  const char* env = std::getenv("DPHIST_BENCH_REPS");
  if (env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return fallback;
}

/// Worker threads RunCell fans repetitions across (the process-wide pool;
/// override with DPHIST_THREADS=<k>). Results are thread-count-invariant;
/// harnesses print this so wall times can be interpreted.
inline std::size_t Threads() {
  return dphist::ThreadPool::Global().thread_count();
}

/// The paper's dataset suite at the bench scale.
inline std::vector<dphist::Dataset> Suite() {
  return dphist::MakePaperSuite(kTraceDomain, kSuiteSeed);
}

}  // namespace dphist_bench

#endif  // DPHIST_BENCH_BENCH_COMMON_H_
