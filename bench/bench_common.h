#ifndef DPHIST_BENCH_BENCH_COMMON_H_
#define DPHIST_BENCH_BENCH_COMMON_H_

// Shared setup for the figure/table harnesses in bench/. Every harness
// uses the same dataset suite and seeds so results are comparable across
// binaries, and honors DPHIST_BENCH_REPS to trade runtime for variance.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dphist/common/env.h"
#include "dphist/common/thread_pool.h"
#include "dphist/data/generators.h"
#include "dphist/obs/export.h"

namespace dphist_bench {

/// Trace-dataset domain size shared by the harnesses (Age is fixed at 100
/// bins by construction).
inline constexpr std::size_t kTraceDomain = 1024;

/// Root seed for the synthetic suite (fixed: the figures are reproducible).
inline constexpr std::uint64_t kSuiteSeed = 42;

/// Repetitions per cell; override with DPHIST_BENCH_REPS=<n>. Range- and
/// garbage-checked (GetEnvPositiveInt), not raw strtol: a malformed or
/// absurd value falls back instead of saturating.
inline std::size_t Repetitions(std::size_t fallback = 5) {
  return dphist::GetEnvPositiveInt("DPHIST_BENCH_REPS").value_or(fallback);
}

/// Worker threads RunCell fans repetitions across (the process-wide pool;
/// override with DPHIST_THREADS=<k>). Results are thread-count-invariant;
/// harnesses print this so wall times can be interpreted.
inline std::size_t Threads() {
  return dphist::ThreadPool::Global().thread_count();
}

/// The paper's dataset suite at the bench scale.
inline std::vector<dphist::Dataset> Suite() {
  return dphist::MakePaperSuite(kTraceDomain, kSuiteSeed);
}

/// \brief The one JSON-lines emitter shared by every bench harness.
///
/// Each result row is a flat JSON object tagged
/// `{"bench":<name>,"type":"row",...}` built with obs::JsonObjectWriter, so
/// rows share a schema (and a parser: obs::ParseFlatJson) with the obs
/// snapshot exporter. Finish() prints the rows under a `-- bench json --`
/// stdout marker, appends them to the file named by `DPHIST_BENCH_JSON`
/// (if set; "-" is a stdout no-op since the marker section already covers
/// it), and exports the obs registry snapshot via `DPHIST_OBS_OUT`.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Starts a row pre-tagged with this bench's identity; chain fields onto
  /// the returned builder and pass it to AddRow.
  dphist::obs::JsonObjectWriter Row() const {
    dphist::obs::JsonObjectWriter row;
    row.Str("bench", bench_name_).Str("type", "row");
    return row;
  }

  void AddRow(const dphist::obs::JsonObjectWriter& row) {
    lines_.push_back(row.Finish());
  }

  const std::vector<std::string>& lines() const { return lines_; }

  /// Emits everything; returns the number of result rows written.
  std::size_t Finish() const {
    std::printf("\n-- bench json --\n");
    for (const std::string& line : lines_) {
      std::printf("%s\n", line.c_str());
    }
    const char* path = std::getenv("DPHIST_BENCH_JSON");
    if (path != nullptr && *path != '\0' &&
        std::string_view(path) != "-") {
      std::ofstream out(path, std::ios::app);
      for (const std::string& line : lines_) {
        out << line << '\n';
      }
    }
    dphist::obs::ExportToEnv(bench_name_);
    return lines_.size();
  }

 private:
  std::string bench_name_;
  std::vector<std::string> lines_;
};

}  // namespace dphist_bench

#endif  // DPHIST_BENCH_BENCH_COMMON_H_
