#include "dphist/common/status.h"

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "dphist/common/result.h"

namespace dphist {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("epsilon must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "epsilon must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: epsilon must be positive");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, DeadlineExceededCarriesMessage) {
  const Status s = Status::DeadlineExceeded("batch budget overrun");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "batch budget overrun");
  EXPECT_EQ(s.ToString(), "DeadlineExceeded: batch budget overrun");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("missing");
  Status t = s;
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.message(), "missing");
}

Status FailsThroughMacro(bool fail) {
  DPHIST_RETURN_IF_ERROR(fail ? Status::Internal("inner")
                              : Status::Ok());
  return Status::NotFound("after");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThroughMacro(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsThroughMacro(false).code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("histogram"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "histogram");
}

TEST(ResultTest, CopyableWhenValueCopyable) {
  Result<std::string> r(std::string("abc"));
  Result<std::string> copy = r;
  EXPECT_TRUE(copy.ok());
  EXPECT_EQ(copy.value(), "abc");
}

Result<int> Half(int v) {
  if (v % 2 != 0) {
    return Status::InvalidArgument("odd");
  }
  return v / 2;
}

Status UseAssignOrReturn(int v, int* out) {
  DPHIST_ASSIGN_OR_RETURN(int half, Half(v));
  *out = half;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(9, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dphist
