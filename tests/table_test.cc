#include "dphist/bench_util/table.h"

#include <string>

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(TablePrinterTest, HeaderOnly) {
  TablePrinter table({"a", "bb"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, RowsAlign) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer_name", "2"});
  const std::string out = table.ToString();
  // Every line must have the same length (fixed-width alignment).
  std::size_t expected = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    const std::size_t len = nl - pos;
    if (expected == std::string::npos) {
      expected = len;
    }
    EXPECT_EQ(len, expected);
    pos = nl + 1;
  }
}

TEST(TablePrinterTest, MissingCellsPrintEmpty) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only one"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("only one"), std::string::npos);
}

TEST(TablePrinterTest, ExtraCellsDropped) {
  TablePrinter table({"a"});
  table.AddRow({"x", "overflow"});
  const std::string out = table.ToString();
  EXPECT_EQ(out.find("overflow"), std::string::npos);
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.0), "1");
  EXPECT_EQ(TablePrinter::FormatDouble(0.123456, 3), "0.123");
  EXPECT_EQ(TablePrinter::FormatDouble(12345.678, 4), "1.235e+04");
}

}  // namespace
}  // namespace dphist
