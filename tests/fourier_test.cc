#include "dphist/transform/fourier.h"

#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

constexpr double kTwoPi = 6.283185307179586;

std::vector<double> RandomVector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) {
    v = static_cast<double>(SampleUniformInt(rng, -100, 100));
  }
  return x;
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(3, {1.0, 0.0});
  EXPECT_FALSE(Fft::Forward(data).ok());
  EXPECT_FALSE(Fft::Inverse(data).ok());
  EXPECT_FALSE(Fft::ForwardReal({1.0, 2.0, 3.0}).ok());
}

TEST(FftTest, DcComponentIsSum) {
  auto spectrum = Fft::ForwardReal({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(spectrum.ok());
  EXPECT_NEAR(spectrum.value()[0].real(), 10.0, 1e-12);
  EXPECT_NEAR(spectrum.value()[0].imag(), 0.0, 1e-12);
}

TEST(FftTest, MatchesNaiveDftSmall) {
  const std::vector<double> x = {3.0, -1.0, 4.0, 1.5, -5.0, 9.0, -2.0, 6.0};
  const std::size_t n = x.size();
  auto spectrum = Fft::ForwardReal(x);
  ASSERT_TRUE(spectrum.ok());
  for (std::size_t j = 0; j < n; ++j) {
    std::complex<double> naive(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -kTwoPi * static_cast<double>(j) *
                           static_cast<double>(t) / static_cast<double>(n);
      naive += x[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    EXPECT_NEAR(spectrum.value()[j].real(), naive.real(), 1e-9) << j;
    EXPECT_NEAR(spectrum.value()[j].imag(), naive.imag(), 1e-9) << j;
  }
}

TEST(FftTest, ConjugateSymmetryForRealInput) {
  const std::vector<double> x = RandomVector(64, 1);
  auto spectrum = Fft::ForwardReal(x);
  ASSERT_TRUE(spectrum.ok());
  for (std::size_t j = 1; j < 64; ++j) {
    EXPECT_NEAR(spectrum.value()[j].real(), spectrum.value()[64 - j].real(),
                1e-9);
    EXPECT_NEAR(spectrum.value()[j].imag(), -spectrum.value()[64 - j].imag(),
                1e-9);
  }
}

class FftRoundTripSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTripSweep, InverseUndoesForward) {
  const std::size_t n = GetParam();
  const std::vector<double> x = RandomVector(n, 10 + n);
  auto spectrum = Fft::ForwardReal(x);
  ASSERT_TRUE(spectrum.ok());
  auto back = Fft::InverseToReal(spectrum.value());
  ASSERT_TRUE(back.ok());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back.value()[i], x[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoSizes, FftRoundTripSweep,
                         ::testing::Values(1, 2, 4, 8, 32, 256, 1024, 4096));

TEST(FftTest, ParsevalHolds) {
  const std::size_t n = 128;
  const std::vector<double> x = RandomVector(n, 2);
  auto spectrum = Fft::ForwardReal(x);
  ASSERT_TRUE(spectrum.ok());
  double time_energy = 0.0;
  for (double v : x) {
    time_energy += v * v;
  }
  double freq_energy = 0.0;
  for (const std::complex<double>& c : spectrum.value()) {
    freq_energy += std::norm(c);
  }
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-6);
}

TEST(FftTest, FullPrefixReconstructionIsLossless) {
  const std::size_t n = 32;
  const std::vector<double> x = RandomVector(n, 3);
  auto spectrum = Fft::ForwardReal(x);
  ASSERT_TRUE(spectrum.ok());
  std::vector<std::complex<double>> prefix(
      spectrum.value().begin(), spectrum.value().begin() + n / 2 + 1);
  auto back = Fft::ReconstructFromPrefix(prefix, n);
  ASSERT_TRUE(back.ok());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back.value()[i], x[i], 1e-8);
  }
}

TEST(FftTest, PrefixReconstructionLowPassesSmoothSignal) {
  // A pure low-frequency cosine survives truncation exactly.
  const std::size_t n = 64;
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = 10.0 + 4.0 * std::cos(kTwoPi * 2.0 * static_cast<double>(t) /
                                 static_cast<double>(n));
  }
  auto spectrum = Fft::ForwardReal(x);
  ASSERT_TRUE(spectrum.ok());
  std::vector<std::complex<double>> prefix(spectrum.value().begin(),
                                           spectrum.value().begin() + 4);
  auto back = Fft::ReconstructFromPrefix(prefix, n);
  ASSERT_TRUE(back.ok());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back.value()[i], x[i], 1e-8);
  }
}

TEST(FftTest, PrefixReconstructionRejectsOversizedPrefix) {
  std::vector<std::complex<double>> prefix(10, {0.0, 0.0});
  EXPECT_FALSE(Fft::ReconstructFromPrefix(prefix, 16).ok());
  EXPECT_FALSE(Fft::ReconstructFromPrefix(prefix, 17).ok());
}

TEST(FftTest, SingleRecordSpectrumSensitivity) {
  // EFPA's privacy argument: adding one record changes every coefficient
  // by a unit phasor.
  const std::size_t n = 64;
  std::vector<double> x = RandomVector(n, 4);
  auto before = Fft::ForwardReal(x);
  ASSERT_TRUE(before.ok());
  x[17] += 1.0;
  auto after = Fft::ForwardReal(x);
  ASSERT_TRUE(after.ok());
  for (std::size_t j = 0; j < n; ++j) {
    const std::complex<double> delta =
        after.value()[j] - before.value()[j];
    EXPECT_NEAR(std::abs(delta), 1.0, 1e-9) << j;
  }
}

}  // namespace
}  // namespace dphist
