#include "dphist/algorithms/efpa.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

Histogram SmoothWave(std::size_t n) {
  std::vector<double> counts(n);
  for (std::size_t i = 0; i < n; ++i) {
    counts[i] =
        500.0 + 200.0 * std::sin(6.283185307179586 * static_cast<double>(i) /
                                 static_cast<double>(n));
  }
  return Histogram(std::move(counts));
}

TEST(EfpaTest, Name) { EXPECT_EQ(Efpa().name(), "efpa"); }

TEST(EfpaTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(Efpa().Publish(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(Efpa().Publish(Histogram({1.0}), 0.0, rng).ok());
  Efpa::Options options;
  options.selection_budget_ratio = 1.0;
  EXPECT_FALSE(
      Efpa(options).Publish(Histogram({1.0, 2.0}), 1.0, rng).ok());
}

TEST(EfpaTest, PreservesSizeEvenWhenPadded) {
  Efpa algo;
  const Histogram truth({1.0, 2.0, 3.0, 4.0, 5.0, 6.0});  // pads to 8
  Rng rng(2);
  auto out = algo.Publish(truth, 1.0, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 6u);
}

TEST(EfpaTest, DeterministicGivenSeed) {
  Efpa algo;
  const Histogram truth = SmoothWave(32);
  Rng a(3);
  Rng b(3);
  auto out_a = algo.Publish(truth, 0.5, a);
  auto out_b = algo.Publish(truth, 0.5, b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(out_a.value().counts(), out_b.value().counts());
}

TEST(EfpaTest, BudgetSplitReported) {
  Efpa algo;
  const Histogram truth = SmoothWave(32);
  Rng rng(4);
  Efpa::Details details;
  auto out = algo.PublishWithDetails(truth, 2.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(details.selection_epsilon, 1.0, 1e-12);
  EXPECT_NEAR(details.noise_epsilon, 1.0, 1e-12);
  EXPECT_GE(details.kept_coefficients, 1u);
  EXPECT_LE(details.kept_coefficients, 17u);  // n/2 + 1 for n = 32
}

TEST(EfpaTest, FixedCoefficientsHonoredAndFullBudgetToNoise) {
  Efpa::Options options;
  options.fixed_coefficients = 3;
  Efpa algo(options);
  const Histogram truth = SmoothWave(32);
  Rng rng(5);
  Efpa::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(details.kept_coefficients, 3u);
  EXPECT_DOUBLE_EQ(details.selection_epsilon, 0.0);
  EXPECT_DOUBLE_EQ(details.noise_epsilon, 1.0);
}

TEST(EfpaTest, FixedCoefficientsClampedToHalfSpectrum) {
  Efpa::Options options;
  options.fixed_coefficients = 1000;
  Efpa algo(options);
  const Histogram truth = SmoothWave(16);
  Rng rng(6);
  Efpa::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(details.kept_coefficients, 9u);  // 16/2 + 1
}

TEST(EfpaTest, KeepsFewCoefficientsOnSmoothData) {
  // A constant + single sinusoid concentrates all energy in 2 coefficient
  // magnitudes; with a strong budget EFPA should keep only a handful.
  Efpa algo;
  const Histogram truth = SmoothWave(128);
  Rng rng(7);
  Efpa::Details details;
  auto out = algo.PublishWithDetails(truth, 10.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(details.kept_coefficients, 8u);
}

TEST(EfpaTest, BeatsDworkOnSmoothDataAtSmallEpsilon) {
  Efpa algo;
  const Histogram truth = SmoothWave(256);
  const double epsilon = 0.02;
  Rng rng(8);
  double efpa_sq = 0.0;
  double dwork_var = 2.0 / (epsilon * epsilon);
  const int reps = 30;
  for (int rep = 0; rep < reps; ++rep) {
    auto out = algo.Publish(truth, epsilon, rng);
    ASSERT_TRUE(out.ok());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      const double d = out.value().count(i) - truth.count(i);
      efpa_sq += d * d;
    }
  }
  const double efpa_mse =
      efpa_sq / (reps * static_cast<double>(truth.size()));
  EXPECT_LT(efpa_mse, dwork_var * 0.5);
}

TEST(EfpaTest, ClampNonNegative) {
  Efpa::Options options;
  options.clamp_nonnegative = true;
  Efpa algo(options);
  const Histogram truth(std::vector<double>(64, 0.0));
  Rng rng(9);
  auto out = algo.Publish(truth, 0.1, rng);
  ASSERT_TRUE(out.ok());
  for (double v : out.value().counts()) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(EfpaTest, SingleBinHistogram) {
  Efpa algo;
  Rng rng(10);
  auto out = algo.Publish(Histogram({25.0}), 1.0, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 1u);
}

}  // namespace
}  // namespace dphist
