#include "dphist/algorithms/structure_first.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

Histogram Plateaus(std::size_t n) {
  std::vector<double> counts(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    counts[i] = (i < n / 3) ? 10.0 : (i < 2 * n / 3 ? 100.0 : 30.0);
  }
  return Histogram(std::move(counts));
}

TEST(StructureFirstTest, Name) {
  EXPECT_EQ(StructureFirst().name(), "structure_first");
}

TEST(StructureFirstTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(StructureFirst().Publish(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(StructureFirst().Publish(Histogram({1.0}), -1.0, rng).ok());

  StructureFirst::Options bad_ratio;
  bad_ratio.structure_budget_ratio = 0.0;
  EXPECT_FALSE(
      StructureFirst(bad_ratio).Publish(Histogram({1.0, 2.0}), 1.0, rng).ok());
  bad_ratio.structure_budget_ratio = 1.0;
  EXPECT_FALSE(
      StructureFirst(bad_ratio).Publish(Histogram({1.0, 2.0}), 1.0, rng).ok());

  StructureFirst::Options bad_cap;
  bad_cap.cost_kind = CostKind::kSquared;
  bad_cap.count_cap = 0.0;
  EXPECT_FALSE(
      StructureFirst(bad_cap).Publish(Histogram({1.0, 2.0}), 1.0, rng).ok());
}

TEST(StructureFirstTest, PreservesSizeAndDeterminism) {
  StructureFirst algo;
  const Histogram truth = Plateaus(48);
  Rng a(2);
  Rng b(2);
  auto out_a = algo.Publish(truth, 1.0, a);
  auto out_b = algo.Publish(truth, 1.0, b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(out_a.value().size(), truth.size());
  EXPECT_EQ(out_a.value().counts(), out_b.value().counts());
}

TEST(StructureFirstTest, BudgetSplitsSumToEpsilon) {
  StructureFirst::Options options;
  options.num_buckets = 6;
  options.structure_budget_ratio = 0.3;
  StructureFirst algo(options);
  const Histogram truth = Plateaus(60);
  Rng rng(3);
  StructureFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 2.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(details.structure_epsilon, 0.6, 1e-12);
  EXPECT_NEAR(details.count_epsilon, 1.4, 1e-12);
  EXPECT_NEAR(details.structure_epsilon + details.count_epsilon, 2.0, 1e-12);
  EXPECT_EQ(details.num_buckets, 6u);
  EXPECT_EQ(details.cuts.size(), 5u);
}

TEST(StructureFirstTest, SingleBucketUsesAllBudgetForCounts) {
  StructureFirst::Options options;
  options.num_buckets = 1;
  StructureFirst algo(options);
  const Histogram truth = Plateaus(30);
  Rng rng(4);
  StructureFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(details.structure_epsilon, 0.0);
  EXPECT_DOUBLE_EQ(details.count_epsilon, 1.0);
  EXPECT_EQ(details.num_buckets, 1u);
  // Single bucket: every published count equals the common mean.
  for (double v : out.value().counts()) {
    EXPECT_DOUBLE_EQ(v, out.value().count(0));
  }
}

TEST(StructureFirstTest, IdentityStructureUsesAllBudgetForCounts) {
  StructureFirst::Options options;
  options.num_buckets = 1000;  // clamped to the candidate count (= n here)
  StructureFirst algo(options);
  const Histogram truth = Plateaus(16);
  Rng rng(5);
  StructureFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(details.num_buckets, 16u);
  EXPECT_DOUBLE_EQ(details.structure_epsilon, 0.0);
}

TEST(StructureFirstTest, UtilitySensitivityPerCostKind) {
  const Histogram truth = Plateaus(30);
  Rng rng(6);

  StructureFirst::Options abs_options;
  abs_options.num_buckets = 4;
  StructureFirst::Details details;
  auto out =
      StructureFirst(abs_options).PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(details.utility_sensitivity, 2.0);

  StructureFirst::Options sq_options;
  sq_options.num_buckets = 4;
  sq_options.cost_kind = CostKind::kSquared;
  sq_options.count_cap = 500.0;
  auto out_sq =
      StructureFirst(sq_options).PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out_sq.ok());
  EXPECT_DOUBLE_EQ(details.utility_sensitivity, 1001.0);
}

TEST(StructureFirstTest, HighBudgetRecoversTruePlateaus) {
  // With a huge structure budget the exponential mechanism concentrates on
  // the v-opt optimum, which for clean plateaus is the true change points.
  StructureFirst::Options options;
  options.num_buckets = 3;
  options.structure_budget_ratio = 0.5;
  StructureFirst algo(options);
  const std::size_t n = 30;
  const Histogram truth = Plateaus(n);
  Rng rng(7);
  StructureFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 10000.0, rng, &details);
  ASSERT_TRUE(out.ok());
  const std::vector<std::size_t> expected = {n / 3, 2 * n / 3};
  EXPECT_EQ(details.cuts, expected);
}

TEST(StructureFirstTest, PublishedValuesConstantWithinBuckets) {
  StructureFirst::Options options;
  options.num_buckets = 5;
  StructureFirst algo(options);
  const Histogram truth = Plateaus(40);
  Rng rng(8);
  StructureFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  auto structure = Bucketization::FromCuts(truth.size(), details.cuts);
  ASSERT_TRUE(structure.ok());
  for (std::size_t b = 0; b < structure.value().num_buckets(); ++b) {
    const Bucket bucket = structure.value().bucket(b);
    for (std::size_t i = bucket.begin + 1; i < bucket.end; ++i) {
      EXPECT_DOUBLE_EQ(out.value().count(i),
                       out.value().count(bucket.begin));
    }
  }
}

TEST(StructureFirstTest, LongRangeQueriesBeatDworkOnPlateauData) {
  // SF's motivating property: big buckets average the count noise away, so
  // the total-sum query error is far below Dwork's sqrt(n)-scaled error.
  StructureFirst::Options options;
  options.num_buckets = 3;
  StructureFirst algo(options);
  const std::size_t n = 120;
  const Histogram truth = Plateaus(n);
  const double epsilon = 0.1;
  Rng rng(9);
  double sf_total_err = 0.0;
  const int reps = 60;
  for (int rep = 0; rep < reps; ++rep) {
    auto out = algo.Publish(truth, epsilon, rng);
    ASSERT_TRUE(out.ok());
    sf_total_err += std::abs(out.value().Total() - truth.Total());
  }
  sf_total_err /= reps;
  // Dwork's expected |total error| is ~ sqrt(2 n / eps^2 * ...) — compute
  // the exact expected absolute error of a sum of n Laplace(1/eps):
  // approx sqrt(2 * n) / eps * sqrt(2/pi).
  const double dwork_expected =
      std::sqrt(2.0 * static_cast<double>(n) / (epsilon * epsilon)) *
      std::sqrt(2.0 / 3.141592653589793);
  EXPECT_LT(sf_total_err, dwork_expected * 0.6);
}

TEST(StructureFirstTest, ClampNonNegative) {
  StructureFirst::Options options;
  options.num_buckets = 4;
  options.clamp_nonnegative = true;
  StructureFirst algo(options);
  const Histogram truth(std::vector<double>(64, 0.0));
  Rng rng(10);
  auto out = algo.Publish(truth, 0.05, rng);
  ASSERT_TRUE(out.ok());
  for (double v : out.value().counts()) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(StructureFirstTest, AdaptiveKRejectsBadRatio) {
  Rng rng(20);
  StructureFirst::Options options;
  options.k_selection_ratio = 0.0;
  EXPECT_FALSE(
      StructureFirst(options).Publish(Plateaus(16), 1.0, rng).ok());
  options.k_selection_ratio = 1.0;
  EXPECT_FALSE(
      StructureFirst(options).Publish(Plateaus(16), 1.0, rng).ok());
  // A fixed k ignores the ratio entirely.
  options.num_buckets = 3;
  EXPECT_TRUE(StructureFirst(options).Publish(Plateaus(16), 1.0, rng).ok());
}

TEST(StructureFirstTest, AdaptiveKBudgetAccounting) {
  StructureFirst algo;  // defaults: adaptive k
  const Histogram truth = Plateaus(60);
  Rng rng(21);
  StructureFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(details.adaptive_k);
  EXPECT_GT(details.structure_epsilon, 0.0);  // at least the k draw
  EXPECT_NEAR(details.structure_epsilon + details.count_epsilon, 1.0, 1e-12);
  // The k draw costs k_selection_ratio * eps_s = 0.2 * 0.5 = 0.1; if the
  // chosen structure was data-dependent the boundary draws consumed the
  // remaining 0.4 of structure budget.
  if (details.num_buckets > 1 && details.num_buckets < truth.size()) {
    EXPECT_NEAR(details.structure_epsilon, 0.5, 1e-12);
  } else {
    EXPECT_NEAR(details.structure_epsilon, 0.1, 1e-12);
  }
}

TEST(StructureFirstTest, AdaptiveKTracksDataStructure) {
  // Flat data: every merge is free, so the k/eps_c noise term pulls the
  // selection toward few buckets. A steep ramp: merging is expensive, so
  // large k wins. The draw is exponential-mechanism-noisy, so compare the
  // averages over repetitions rather than single draws.
  StructureFirst algo;
  const Histogram flat(std::vector<double>(64, 50.0));
  std::vector<double> ramp_counts(64, 0.0);
  for (std::size_t i = 0; i < ramp_counts.size(); ++i) {
    ramp_counts[i] = 1000.0 * static_cast<double>(i);
  }
  const Histogram ramp(ramp_counts);
  Rng rng(22);
  double flat_k = 0.0;
  double ramp_k = 0.0;
  const int reps = 20;
  for (int rep = 0; rep < reps; ++rep) {
    StructureFirst::Details details;
    Rng flat_rng = rng.Fork();
    Rng ramp_rng = rng.Fork();
    ASSERT_TRUE(algo.PublishWithDetails(flat, 1.0, flat_rng, &details).ok());
    flat_k += static_cast<double>(details.num_buckets);
    ASSERT_TRUE(algo.PublishWithDetails(ramp, 1.0, ramp_rng, &details).ok());
    ramp_k += static_cast<double>(details.num_buckets);
  }
  EXPECT_LT(flat_k / reps, 0.5 * ramp_k / reps);
}

TEST(StructureFirstTest, AdaptiveKPicksManyBucketsOnSteepData) {
  // A steep ramp cannot be merged without large cost: adaptive selection
  // should keep many buckets (degrading gracefully toward Dwork) rather
  // than flattening the data.
  std::vector<double> ramp(64, 0.0);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = 1000.0 * static_cast<double>(i);
  }
  StructureFirst algo;
  Rng rng(23);
  StructureFirst::Details details;
  auto out = algo.PublishWithDetails(Histogram(ramp), 100.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(details.num_buckets, 32u);
}

TEST(StructureFirstTest, MaxBucketsConsideredCapsAdaptiveK) {
  // The cap limits the *structured* candidates; the identity structure
  // (k = n, merge cost 0) always remains available so StructureFirst can
  // degrade to the Dwork baseline. On a steep ramp with a huge budget,
  // identity wins; nothing between 4 and n may be chosen.
  std::vector<double> ramp(64, 0.0);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = 1000.0 * static_cast<double>(i);
  }
  StructureFirst::Options options;
  options.max_buckets_considered = 4;
  StructureFirst algo(options);
  Rng rng(24);
  StructureFirst::Details details;
  auto out = algo.PublishWithDetails(Histogram(ramp), 100.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(details.num_buckets <= 4u || details.num_buckets == 64u)
      << details.num_buckets;
}

}  // namespace
}  // namespace dphist
