// The sharded release cache under contention: N threads x M tenants
// hammer publish/get/evict concurrently, then the surviving state is
// compared against a single-threaded reference executing the same
// operation sequence. Runs under TSan in CI — the shard-per-mutex layout
// is exactly the kind of code a data race hides in.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/serve/release_cache.h"
#include "dphist/serve/shard.h"
#include "dphist/serve/tenant.h"

namespace dphist {
namespace serve {
namespace {

// The deterministic "publisher": each key maps to one well-known
// histogram, so any thread publishing a key produces the same release —
// the invariant the real serving stack guarantees (deterministic
// publishers) and the one that makes cross-thread comparison meaningful.
Histogram CanonicalRelease(const ReleaseKey& key) {
  return Histogram({static_cast<double>(key.seed),
                    key.epsilon,
                    static_cast<double>(key.dataset_fingerprint)});
}

ReleaseKey KeyFor(std::size_t tenant, std::size_t dataset,
                  std::size_t seed) {
  return ReleaseKey{"tenant" + std::to_string(tenant),
                    "dataset" + std::to_string(dataset),
                    /*dataset_fingerprint=*/dataset + 1,
                    "nf",
                    0.5,
                    static_cast<std::uint64_t>(seed)};
}

TEST(ShardedCacheTest, ConcurrentMixedOpsMatchSingleThreadedReference) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kTenants = 4;
  constexpr std::size_t kDatasets = 3;
  constexpr std::size_t kSeeds = 5;
  constexpr std::size_t kOpsPerThread = 400;

  ReleaseCache cache(ReleaseCacheOptions{/*shards=*/4});
  ASSERT_EQ(cache.shard_count(), 4u);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      // Per-thread deterministic op stream (cheap LCG; no shared state).
      std::uint64_t state = 0x9E3779B97F4A7C15ULL * (t + 1);
      auto next = [&state]() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
      };
      for (std::size_t op = 0; op < kOpsPerThread; ++op) {
        const ReleaseKey key = KeyFor(next() % kTenants, next() % kDatasets,
                                      next() % kSeeds);
        switch (next() % 4) {
          case 0: {  // publish (or hit)
            auto release = cache.GetOrPublish(key, [&]() -> Result<Histogram> {
              return CanonicalRelease(key);
            });
            if (!release.ok() ||
                release.value()->histogram().counts() !=
                    CanonicalRelease(key).counts()) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case 1: {  // lookup: null or the canonical release, never junk
            auto release = cache.Lookup(key);
            if (release != nullptr &&
                release->histogram().counts() !=
                    CanonicalRelease(key).counts()) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case 2:  // evict
            cache.Evict(key);
            break;
          default: {  // namespace scan
            auto newest = cache.NewestFor(key.tenant_key(), "");
            if (newest != nullptr &&
                (newest->key().tenant != key.tenant ||
                 newest->key().dataset != key.dataset)) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Quiesced state vs a single-threaded reference: every key either holds
  // its canonical release or nothing. Then publish every key in both the
  // contended cache and a fresh reference cache — afterwards the two must
  // agree exactly (same keys, same counts), proving no slot was wedged by
  // the contention (e.g. an entry stuck "in flight" forever).
  ReleaseCache reference;
  for (std::size_t tenant = 0; tenant < kTenants; ++tenant) {
    for (std::size_t dataset = 0; dataset < kDatasets; ++dataset) {
      for (std::size_t seed = 0; seed < kSeeds; ++seed) {
        const ReleaseKey key = KeyFor(tenant, dataset, seed);
        auto contended = cache.GetOrPublish(key, [&]() -> Result<Histogram> {
          return CanonicalRelease(key);
        });
        auto fresh = reference.GetOrPublish(key, [&]() -> Result<Histogram> {
          return CanonicalRelease(key);
        });
        ASSERT_TRUE(contended.ok());
        ASSERT_TRUE(fresh.ok());
        EXPECT_EQ(contended.value()->histogram().counts(),
                  fresh.value()->histogram().counts())
            << FormatTenantKey(key.tenant_key()) << " seed " << seed;
      }
    }
  }
  EXPECT_EQ(cache.size(), kTenants * kDatasets * kSeeds);
  EXPECT_EQ(cache.size(), reference.size());
}

TEST(ShardedCacheTest, ShardCountsProduceIdenticalContents) {
  // The shard count is a pure performance knob: 1, 4, and 16 shards must
  // hold exactly the same releases for the same operations.
  std::vector<std::unique_ptr<ReleaseCache>> caches;
  for (const std::size_t shards : {1u, 4u, 16u}) {
    caches.push_back(
        std::make_unique<ReleaseCache>(ReleaseCacheOptions{shards}));
  }
  for (std::size_t tenant = 0; tenant < 5; ++tenant) {
    for (std::size_t seed = 0; seed < 7; ++seed) {
      const ReleaseKey key = KeyFor(tenant, tenant % 2, seed);
      for (auto& cache : caches) {
        ASSERT_TRUE(cache
                        ->GetOrPublish(key,
                                       [&]() -> Result<Histogram> {
                                         return CanonicalRelease(key);
                                       })
                        .ok());
      }
    }
  }
  for (auto& cache : caches) {
    EXPECT_EQ(cache->size(), 5u * 7u);
  }
  // Spot-check lookups and namespace scans agree across shard counts.
  for (std::size_t tenant = 0; tenant < 5; ++tenant) {
    const ReleaseKey key = KeyFor(tenant, tenant % 2, 3);
    auto baseline = caches[0]->Lookup(key);
    ASSERT_NE(baseline, nullptr);
    for (std::size_t i = 1; i < caches.size(); ++i) {
      auto other = caches[i]->Lookup(key);
      ASSERT_NE(other, nullptr);
      EXPECT_EQ(other->histogram().counts(), baseline->histogram().counts());
      auto newest = caches[i]->NewestFor(key.tenant_key(), "nf");
      ASSERT_NE(newest, nullptr);
      EXPECT_EQ(newest->key().tenant, key.tenant);
    }
  }
}

TEST(ShardedCacheTest, EvictRemovesOnlyReadyEntries) {
  ReleaseCache cache;
  const ReleaseKey key = KeyFor(0, 0, 0);
  EXPECT_FALSE(cache.Evict(key));  // nothing there
  ASSERT_TRUE(cache
                  .GetOrPublish(key,
                                [&]() -> Result<Histogram> {
                                  return CanonicalRelease(key);
                                })
                  .ok());
  EXPECT_TRUE(cache.Evict(key));
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_FALSE(cache.Evict(key));  // already gone
  EXPECT_EQ(cache.size(), 0u);

  // Publish-after-evict works (the retry contract).
  ASSERT_TRUE(cache
                  .GetOrPublish(key,
                                [&]() -> Result<Histogram> {
                                  return CanonicalRelease(key);
                                })
                  .ok());
  EXPECT_NE(cache.Lookup(key), nullptr);
}

TEST(ShardedCacheTest, RestorePublishedIsIdempotent) {
  ReleaseCache cache;
  const ReleaseKey key = KeyFor(1, 1, 1);
  auto first = cache.RestorePublished(key, CanonicalRelease(key));
  ASSERT_NE(first, nullptr);
  // Replaying the same record again must return the SAME release object
  // and not bump the size — replay-twice safety.
  auto second = cache.RestorePublished(key, CanonicalRelease(key));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);
  // And a normal GetOrPublish hits the restored entry without publishing.
  bool published = false;
  auto got = cache.GetOrPublish(key, [&]() -> Result<Histogram> {
    published = true;
    return CanonicalRelease(key);
  });
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(published);
  EXPECT_EQ(got.value().get(), first.get());
}

}  // namespace
}  // namespace serve
}  // namespace dphist
