// The sealed-snapshot serving fast path, end to end: encoded frames are
// memoized per release and byte-identical to a fresh encode in both
// codecs, republishing under a different epsilon/seed or recovering from
// the journal never serves a stale frame (a frame lives and dies with its
// SealedRelease), stale-degraded batches are answered from the degraded
// release itself, and the inline fast lane returns bit-identical answers
// to the dispatched path. Runs under TSan at DPHIST_THREADS 1/4 in CI
// (label `servefast`).

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/thread_pool.h"
#include "dphist/hist/histogram.h"
#include "dphist/net/client.h"
#include "dphist/net/http.h"
#include "dphist/net/server.h"
#include "dphist/net/wire_codec.h"
#include "dphist/obs/obs.h"
#include "dphist/query/range_query.h"
#include "dphist/serve/journal.h"
#include "dphist/serve/release_cache.h"
#include "dphist/serve/release_server.h"

namespace dphist {
namespace net {
namespace {

using serve::ReleaseKey;
using serve::ReleaseServer;
using serve::SealedRelease;
using serve::ServeRequest;

Histogram TestTruth(std::size_t bins = 64) {
  std::vector<double> counts(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    counts[i] = static_cast<double>((i * 13 + 5) % 31);
  }
  return Histogram(std::move(counts));
}

WireQueryRequest TestQuery(double epsilon = 0.5, std::uint64_t seed = 42) {
  WireQueryRequest query;
  query.request.publisher = "noise_first";
  query.request.epsilon = epsilon;
  query.request.seed = seed;
  query.queries = {{0, 8}, {3, 5}, {10, 64}, {0, 64}, {63, 64}};
  return query;
}

// A running NetServer over a fresh single-tenant ReleaseServer.
struct TestStack {
  explicit TestStack(std::size_t threads, NetServerOptions options = {},
                     double total_epsilon = 100.0,
                     serve::Journal* journal = nullptr)
      : pool(threads) {
    serve::ReleaseServerOptions serve_options;
    serve_options.pool = &pool;
    serve_options.journal = journal;
    release_server = std::make_unique<ReleaseServer>(serve_options);
    EXPECT_TRUE(release_server
                    ->AddDataset(serve::DefaultTenantKey(), TestTruth(),
                                 total_epsilon)
                    .ok());
    options.pool = &pool;
    server = std::make_unique<NetServer>(release_server.get(), options);
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~TestStack() { server->Stop(); }

  // Raw /v1/release round trip: the undecoded response body, so frames
  // can be compared byte for byte.
  Result<std::string> ReleaseBody(const WireQueryRequest& query,
                                  bool binary) {
    NetClient client;
    DPHIST_RETURN_IF_ERROR(client.Connect("127.0.0.1", server->port()));
    HttpMessage request;
    request.method = "POST";
    request.target = "/v1/release";
    request.headers["content-type"] =
        binary ? kContentTypeBinary : kContentTypeJson;
    request.body =
        binary ? EncodeQueryRequest(query) : EncodeQueryRequestJson(query);
    DPHIST_ASSIGN_OR_RETURN(HttpMessage response,
                            client.RoundTrip(request));
    if (response.status != 200) {
      return Status::Internal("release failed: HTTP " +
                              std::to_string(response.status) + " " +
                              response.body);
    }
    return response.body;
  }

  Result<WireBatchAnswer> Query(const WireQueryRequest& query, bool binary) {
    NetClient client;
    DPHIST_RETURN_IF_ERROR(client.Connect("127.0.0.1", server->port()));
    return client.Query(query, binary);
  }

  ThreadPool pool;
  std::unique_ptr<ReleaseServer> release_server;
  std::unique_ptr<NetServer> server;
};

// --- SealedRelease frame memo ---

TEST(SealedReleaseTest, EncodedFrameEncodesOnceAndShares) {
  SealedRelease release(ReleaseKey{"t", "d", 1, "noise_first", 0.5, 7},
                        TestTruth());
  std::atomic<int> encodes{0};
  auto encode = [&encodes] {
    encodes.fetch_add(1);
    return std::string("frame-bytes");
  };
  const auto first =
      release.EncodedFrame(SealedRelease::FrameCodec::kBinary, encode);
  const auto second =
      release.EncodedFrame(SealedRelease::FrameCodec::kBinary, encode);
  EXPECT_EQ(encodes.load(), 1);
  EXPECT_EQ(first.get(), second.get());  // the same shared bytes
  EXPECT_EQ(*first, "frame-bytes");
  // A different codec is a different slot.
  const auto json = release.EncodedFrame(SealedRelease::FrameCodec::kJson,
                                         [] { return std::string("{}"); });
  EXPECT_EQ(*json, "{}");
  EXPECT_EQ(encodes.load(), 1);
}

TEST(SealedReleaseTest, ConcurrentEncodedFrameCallersShareOneEncode) {
  SealedRelease release(ReleaseKey{"t", "d", 1, "noise_first", 0.5, 7},
                        TestTruth());
  std::atomic<int> encodes{0};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const std::string>> frames(8);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    threads.emplace_back([&, i] {
      frames[i] = release.EncodedFrame(
          SealedRelease::FrameCodec::kBinary, [&encodes] {
            encodes.fetch_add(1);
            return std::string("once");
          });
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(encodes.load(), 1);
  for (const auto& frame : frames) {
    ASSERT_NE(frame, nullptr);
    EXPECT_EQ(*frame, "once");
  }
}

TEST(SealedReleaseTest, RangeSumMatchesHistogramAfterSealing) {
  const Histogram truth = TestTruth();
  SealedRelease release(ReleaseKey{}, truth);
  for (std::size_t begin = 0; begin < truth.size(); begin += 7) {
    for (std::size_t end = begin + 1; end <= truth.size(); end += 5) {
      EXPECT_DOUBLE_EQ(release.RangeSum(begin, end),
                       truth.RangeSumUnchecked(begin, end));
    }
  }
}

// --- http head/body split invariant ---

TEST(HttpSerializeTest, ResponseHeadPlusBodyEqualsSerializeResponse) {
  HttpMessage message;
  message.status = 200;
  message.headers["content-type"] = kContentTypeBinary;
  message.headers["x-dphist-status"] = "OK";
  message.body = std::string("\x01\x02zero\x00copy", 11);
  EXPECT_EQ(SerializeResponseHead(message, message.body.size()) +
                message.body,
            SerializeResponse(message));
  message.body.clear();
  EXPECT_EQ(SerializeResponseHead(message, 0), SerializeResponse(message));
}

// --- frame identity and invalidation over the wire ---

TEST(ServeFastTest, CachedFrameBytesIdenticalToFreshEncodeBothCodecs) {
  // Same release requested from a frame-caching server (second answer is
  // the memoized frame) and from a cache-off server (every answer freshly
  // encoded): all bodies must be byte-identical — publishers are
  // deterministic in (histogram, epsilon, seed).
  NetServerOptions cached_options;
  cached_options.encoded_cache = true;
  NetServerOptions fresh_options;
  fresh_options.encoded_cache = false;
  TestStack cached(2, cached_options);
  TestStack fresh(2, fresh_options);
  const WireQueryRequest query = TestQuery();
  for (const bool binary : {true, false}) {
    auto cold = cached.ReleaseBody(query, binary);
    auto hot = cached.ReleaseBody(query, binary);
    auto uncached = fresh.ReleaseBody(query, binary);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    ASSERT_TRUE(hot.ok()) << hot.status().ToString();
    ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
    EXPECT_EQ(cold.value(), hot.value());
    EXPECT_EQ(cold.value(), uncached.value());
  }
}

TEST(ServeFastTest, RepublishUnderDifferentEpsilonOrSeedGetsFreshFrame) {
  // Frames are keyed to their sealed release: a different epsilon or seed
  // is a different release and must never surface another key's cached
  // bytes, in either codec.
  TestStack stack(2);
  for (const bool binary : {true, false}) {
    auto base = stack.ReleaseBody(TestQuery(0.5, 42), binary);
    auto other_epsilon = stack.ReleaseBody(TestQuery(0.9, 42), binary);
    auto other_seed = stack.ReleaseBody(TestQuery(0.5, 43), binary);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(other_epsilon.ok());
    ASSERT_TRUE(other_seed.ok());
    EXPECT_NE(base.value(), other_epsilon.value());
    EXPECT_NE(base.value(), other_seed.value());
    EXPECT_NE(other_epsilon.value(), other_seed.value());
    // And each key re-served hot still returns its own bytes.
    auto base_again = stack.ReleaseBody(TestQuery(0.5, 42), binary);
    ASSERT_TRUE(base_again.ok());
    EXPECT_EQ(base.value(), base_again.value());
  }
}

TEST(ServeFastTest, StaleDegradeAnswersFromDegradedReleaseNotStaleFrame) {
  // Budget allows exactly one publication. A later query at a different
  // epsilon degrades (stale=true, served = the old release's key), and
  // /v1/release for the refused key must fail typed — never hand back
  // the old release's cached frame under the new key. Both codecs.
  NetServerOptions options;
  TestStack stack(2, options, /*total_epsilon=*/1.0);
  const WireQueryRequest first = TestQuery(1.0, 42);
  const WireQueryRequest refused = TestQuery(3.0, 99);
  for (const bool binary : {true, false}) {
    auto seeded = stack.Query(first, binary);
    ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
    EXPECT_FALSE(seeded.value().stale);

    auto degraded = stack.Query(refused, binary);
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
    EXPECT_TRUE(degraded.value().stale);
    EXPECT_EQ(degraded.value().served.epsilon, 1.0);
    EXPECT_EQ(degraded.value().served.seed, 42u);
    // The stale answers are the OLD release's answers, not garbage from a
    // mismatched frame.
    EXPECT_EQ(degraded.value().answers, seeded.value().answers);

    auto release = stack.ReleaseBody(refused, binary);
    EXPECT_FALSE(release.ok());  // typed refusal, no stale frame
  }
}

TEST(ServeFastTest, RecoveredReleaseServesIdenticalFrameBytes) {
  char tmpl[] = "/tmp/dphist_servefast_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir(tmpl);
  const std::string path = dir + "/events.jnl";
  const WireQueryRequest query = TestQuery();

  std::string binary_before;
  std::string json_before;
  {
    auto journal = serve::Journal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    TestStack stack(2, {}, 100.0, journal.value().get());
    auto binary_body = stack.ReleaseBody(query, true);
    auto json_body = stack.ReleaseBody(query, false);
    ASSERT_TRUE(binary_body.ok());
    ASSERT_TRUE(json_body.ok());
    binary_before = std::move(binary_body).value();
    json_before = std::move(json_body).value();
  }

  // Crash-restart: a new server recovers the journal; the replayed
  // release gets a fresh SealedRelease whose lazily rebuilt frames must
  // be byte-identical to the pre-crash ones, and hot re-requests must
  // serve the memoized frame (hit counter moves).
  auto replayed = serve::ReplayJournalFile(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  TestStack stack(2);
  auto recovered = stack.release_server->Recover(replayed.value());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().releases_replayed, 1u);

  obs::Registry::Global().set_enabled(true);
  obs::Counter& frame_hits =
      obs::Registry::Global().GetCounter("serve/frame_cache_hits");
  obs::Counter& frame_misses =
      obs::Registry::Global().GetCounter("serve/frame_cache_misses");
  const std::uint64_t hits_before = frame_hits.value();
  const std::uint64_t misses_before = frame_misses.value();

  auto binary_after = stack.ReleaseBody(query, true);
  auto json_after = stack.ReleaseBody(query, false);
  auto binary_hot = stack.ReleaseBody(query, true);
  ASSERT_TRUE(binary_after.ok()) << binary_after.status().ToString();
  ASSERT_TRUE(json_after.ok()) << json_after.status().ToString();
  ASSERT_TRUE(binary_hot.ok()) << binary_hot.status().ToString();
  EXPECT_EQ(binary_before, binary_after.value());
  EXPECT_EQ(json_before, json_after.value());
  EXPECT_EQ(binary_before, binary_hot.value());
  EXPECT_EQ(frame_misses.value(), misses_before + 2);  // one per codec
  EXPECT_GE(frame_hits.value(), hits_before + 1);      // the hot re-request
  obs::Registry::Global().set_enabled(false);

  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

// --- fast lane vs dispatched path ---

TEST(ServeFastTest, FastLaneAnswersBitIdenticalToDispatchedPath) {
  NetServerOptions cached_options;
  cached_options.encoded_cache = true;
  NetServerOptions dispatch_options;
  dispatch_options.encoded_cache = false;
  TestStack cached(4, cached_options);
  TestStack dispatched(4, dispatch_options);
  const WireQueryRequest query = TestQuery();
  for (const bool binary : {true, false}) {
    auto cold = cached.Query(query, binary);     // publishes, dispatched
    auto hot = cached.Query(query, binary);      // inline fast lane
    auto reference = dispatched.Query(query, binary);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    ASSERT_TRUE(hot.ok()) << hot.status().ToString();
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EXPECT_EQ(cold.value().answers, hot.value().answers);
    EXPECT_EQ(cold.value().answers, reference.value().answers);
    EXPECT_TRUE(hot.value().cache_hit);
  }
}

TEST(ServeFastTest, FastLaneReportsOutOfDomainQueriesTyped) {
  TestStack stack(2);
  WireQueryRequest query = TestQuery();
  ASSERT_TRUE(stack.Query(query, true).ok());  // seal the release
  query.queries.push_back({0, 100000});        // beyond the 64-bin domain
  auto bad = stack.Query(query, true);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// --- serve-layer fast lane primitives ---

TEST(ServeFastTest, TryAnswerCachedMatchesAnswerBatchAfterSealing) {
  ReleaseServer server(TestTruth(), 100.0);
  const ServeRequest request{"noise_first", 0.5, 7};
  const std::vector<RangeQuery> queries = {{0, 8}, {3, 5}, {10, 64}};

  serve::BatchAnswer fast;
  auto miss = server.TryAnswerCached(serve::DefaultTenantKey(), queries,
                                     request, &fast);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value());  // nothing sealed yet — no publish, no charge
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.0);

  auto full = server.AnswerBatch(queries, request);
  ASSERT_TRUE(full.ok());
  auto hit = server.TryAnswerCached(serve::DefaultTenantKey(), queries,
                                    request, &fast);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit.value());
  EXPECT_TRUE(fast.cache_hit);
  EXPECT_FALSE(fast.stale);
  EXPECT_EQ(fast.answers, full.value().answers);
  EXPECT_EQ(fast.served, full.value().served);
}

TEST(ServeFastTest, TryGetCachedNeverPublishes) {
  ReleaseServer server(TestTruth(), 100.0);
  const ServeRequest request{"noise_first", 0.5, 7};
  EXPECT_EQ(server.TryGetCached(serve::DefaultTenantKey(), request),
            nullptr);
  EXPECT_EQ(server.cache().size(), 0u);
  ASSERT_TRUE(server.GetRelease(request).ok());
  const auto cached =
      server.TryGetCached(serve::DefaultTenantKey(), request);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->key().seed, 7u);
}

TEST(ServeFastTest, LookupServingCountsHitsButNeverMisses) {
  obs::Registry::Global().Reset();
  obs::Registry::Global().set_enabled(true);
  serve::ReleaseCache cache;
  const ReleaseKey key{"t", "d", 1, "noise_first", 0.5, 7};
  obs::Counter& hits = obs::Registry::Global().GetCounter("serve/cache/hits");
  obs::Counter& misses =
      obs::Registry::Global().GetCounter("serve/cache/misses");
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t misses0 = misses.value();
  EXPECT_EQ(cache.LookupServing(key), nullptr);
  EXPECT_EQ(hits.value(), hits0);    // a null lookup is not a hit
  EXPECT_EQ(misses.value(), misses0);  // ... and not a miss either
  auto published = cache.GetOrPublish(
      key, [] { return Result<Histogram>(TestTruth()); });
  ASSERT_TRUE(published.ok());
  const std::uint64_t misses1 = misses.value();
  EXPECT_NE(cache.LookupServing(key), nullptr);
  EXPECT_EQ(hits.value(), hits0 + 1);
  EXPECT_EQ(misses.value(), misses1);
  obs::Registry::Global().set_enabled(false);
  obs::Registry::Global().Reset();
}

// --- parallel AnswerQueries determinism ---

TEST(ServeFastTest, ParallelAnswerQueriesBitIdenticalAtAnyWidth) {
  const Histogram truth = TestTruth(4096);
  std::vector<RangeQuery> queries;
  for (std::size_t i = 0; i < 3000; ++i) {
    const std::size_t begin = (i * 37) % 4000;
    queries.push_back({begin, begin + 1 + (i % 91)});
  }
  auto serial = AnswerQueries(truth, queries,
                              AnswerQueriesOptions{nullptr, SIZE_MAX});
  ASSERT_TRUE(serial.ok());
  for (const std::size_t width : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(width);
    auto parallel =
        AnswerQueries(truth, queries, AnswerQueriesOptions{&pool, 1});
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial.value(), parallel.value()) << "width " << width;
  }
}

// --- loopback zero-copy accounting ---

TEST(ServeFastTest, ZeroCopyBytesAndFrameHitsRecordOnHotReleases) {
  obs::Registry::Global().set_enabled(true);
  obs::Counter& zero_copy =
      obs::Registry::Global().GetCounter("net/bytes_zero_copy");
  obs::Counter& frame_hits =
      obs::Registry::Global().GetCounter("serve/frame_cache_hits");
  const std::uint64_t zero_copy0 = zero_copy.value();
  const std::uint64_t frame_hits0 = frame_hits.value();
  TestStack stack(2);
  const WireQueryRequest query = TestQuery();
  ASSERT_TRUE(stack.ReleaseBody(query, true).ok());
  auto hot = stack.ReleaseBody(query, true);
  ASSERT_TRUE(hot.ok());
  EXPECT_GT(zero_copy.value(), zero_copy0);
  EXPECT_GT(frame_hits.value(), frame_hits0);
  obs::Registry::Global().set_enabled(false);
}

}  // namespace
}  // namespace net
}  // namespace dphist
