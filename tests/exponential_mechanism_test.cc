#include "dphist/privacy/exponential_mechanism.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(ExponentialMechanismTest, RejectsBadParameters) {
  EXPECT_FALSE(ExponentialMechanism::Create(0.0, 1.0).ok());
  EXPECT_FALSE(ExponentialMechanism::Create(1.0, 0.0).ok());
  EXPECT_FALSE(ExponentialMechanism::Create(-1.0, -1.0).ok());
}

TEST(ExponentialMechanismTest, EmptyCandidatesRejected) {
  auto em = ExponentialMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(em.ok());
  Rng rng(1);
  EXPECT_FALSE(em.value().Select({}, rng).ok());
  EXPECT_FALSE(em.value().SelectionProbabilities({}).ok());
}

TEST(ExponentialMechanismTest, SingleCandidateAlwaysSelected) {
  auto em = ExponentialMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(em.ok());
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    auto pick = em.value().Select({-5.0}, rng);
    ASSERT_TRUE(pick.ok());
    EXPECT_EQ(pick.value(), 0u);
  }
}

TEST(ExponentialMechanismTest, ProbabilitiesMatchDefinition) {
  auto em = ExponentialMechanism::Create(2.0, 1.0);
  ASSERT_TRUE(em.ok());
  const std::vector<double> utilities = {0.0, 1.0, 3.0};
  auto probs = em.value().SelectionProbabilities(utilities);
  ASSERT_TRUE(probs.ok());
  // p_i ∝ exp(eps * u_i / (2 * du)) = exp(u_i) here.
  const double z = std::exp(0.0) + std::exp(1.0) + std::exp(3.0);
  EXPECT_NEAR(probs.value()[0], std::exp(0.0) / z, 1e-12);
  EXPECT_NEAR(probs.value()[1], std::exp(1.0) / z, 1e-12);
  EXPECT_NEAR(probs.value()[2], std::exp(3.0) / z, 1e-12);
}

TEST(ExponentialMechanismTest, ProbabilitiesSumToOne) {
  auto em = ExponentialMechanism::Create(0.1, 2.0);
  ASSERT_TRUE(em.ok());
  auto probs =
      em.value().SelectionProbabilities({10.0, -3.0, 0.0, 8.5, 8.5});
  ASSERT_TRUE(probs.ok());
  double total = 0.0;
  for (double p : probs.value()) {
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ExponentialMechanismTest, LargeUtilitiesAreStable) {
  auto em = ExponentialMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(em.ok());
  auto probs = em.value().SelectionProbabilities({1.0e6, 1.0e6 - 2.0});
  ASSERT_TRUE(probs.ok());
  EXPECT_TRUE(std::isfinite(probs.value()[0]));
  const double expected_second = 1.0 / (1.0 + std::exp(1.0));
  EXPECT_NEAR(probs.value()[1], expected_second, 1e-9);
}

TEST(ExponentialMechanismTest, EmpiricalFrequenciesMatchProbabilities) {
  auto em = ExponentialMechanism::Create(1.5, 1.0);
  ASSERT_TRUE(em.ok());
  const std::vector<double> utilities = {0.0, 2.0, 4.0, 4.0};
  auto probs = em.value().SelectionProbabilities(utilities);
  ASSERT_TRUE(probs.ok());
  Rng rng(3);
  std::vector<int> counts(utilities.size(), 0);
  const int reps = 200000;
  for (int i = 0; i < reps; ++i) {
    auto pick = em.value().Select(utilities, rng);
    ASSERT_TRUE(pick.ok());
    ++counts[pick.value()];
  }
  for (std::size_t i = 0; i < utilities.size(); ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(reps), probs.value()[i],
                0.01);
  }
}

TEST(ExponentialMechanismTest, DpRatioAcrossNeighboringUtilities) {
  // The defining property: if two utility vectors differ by at most du per
  // entry (neighboring datasets), selection probabilities differ by at most
  // a factor e^eps.
  const double epsilon = 1.0;
  const double du = 1.0;
  auto em = ExponentialMechanism::Create(epsilon, du);
  ASSERT_TRUE(em.ok());
  const std::vector<double> u1 = {3.0, 0.0, 1.0, 2.0};
  std::vector<double> u2 = u1;
  for (std::size_t i = 0; i < u2.size(); ++i) {
    u2[i] += (i % 2 == 0) ? du : -du;  // worst-case +/- du wiggle
  }
  auto p1 = em.value().SelectionProbabilities(u1);
  auto p2 = em.value().SelectionProbabilities(u2);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  for (std::size_t i = 0; i < u1.size(); ++i) {
    const double ratio = p1.value()[i] / p2.value()[i];
    EXPECT_LE(ratio, std::exp(epsilon) + 1e-9);
    EXPECT_GE(ratio, std::exp(-epsilon) - 1e-9);
  }
}

TEST(ExponentialMechanismTest, HigherEpsilonConcentratesOnOptimum) {
  const std::vector<double> utilities = {0.0, 1.0};
  auto weak = ExponentialMechanism::Create(0.1, 1.0);
  auto strong = ExponentialMechanism::Create(10.0, 1.0);
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(strong.ok());
  auto p_weak = weak.value().SelectionProbabilities(utilities);
  auto p_strong = strong.value().SelectionProbabilities(utilities);
  ASSERT_TRUE(p_weak.ok());
  ASSERT_TRUE(p_strong.ok());
  EXPECT_GT(p_strong.value()[1], p_weak.value()[1]);
  EXPECT_GT(p_strong.value()[1], 0.99);
}

}  // namespace
}  // namespace dphist
