#include "dphist/common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/status.h"

namespace dphist {
namespace {

std::size_t HardwareDefault() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

// RAII guard so DPHIST_THREADS manipulation never leaks across tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      saved_ = old;
      had_value_ = true;
    }
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(ThreadPoolTest, ConstructionAndTeardownAcrossSizes) {
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
  }
  // Pools are destroyed at scope exit; reaching here without hanging is
  // the teardown assertion.
}

TEST(ThreadPoolTest, ZeroMeansDefaultThreadCount) {
  ScopedEnv env("DPHIST_THREADS", nullptr);
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), ThreadPool::DefaultThreadCount());
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  // Each index writes its own slot, so no synchronization is needed and a
  // double visit would show up as a count of 2.
  std::vector<int> visits(kN, 0);
  pool.ParallelFor(0, kN, [&visits](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHonorsNonZeroBegin) {
  ThreadPool pool(3);
  std::vector<int> visits(20, 0);
  pool.ParallelFor(5, 17, [&visits](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i], (i >= 5 && i < 17) ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(3, 3, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(7, 8, [&calls](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksPartitionsContiguously) {
  ThreadPool pool(4);
  std::vector<int> visits(100, 0);
  std::atomic<int> chunks{0};
  pool.ParallelForChunks(0, 100, /*min_chunk=*/10,
                         [&](std::size_t begin, std::size_t end) {
                           ASSERT_LT(begin, end);
                           ++chunks;
                           for (std::size_t i = begin; i < end; ++i) {
                             ++visits[i];
                           }
                         });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 100);
  EXPECT_GE(chunks.load(), 2);
  EXPECT_LE(chunks.load(), 4);
  for (int v : visits) {
    EXPECT_EQ(v, 1);
  }
}

TEST(ThreadPoolTest, SingleThreadFallbackRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.ParallelFor(0, seen.size(), [&seen](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) {
    EXPECT_EQ(id, caller);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [](std::size_t i) {
                         if (i == 57) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  // The pool must remain usable after a throwing batch.
  std::vector<int> visits(10, 0);
  pool.ParallelFor(0, 10, [&visits](std::size_t i) { ++visits[i]; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 10);
}

TEST(ThreadPoolTest, StatusPropagationPattern) {
  // The library's own convention: fallible per-index work writes a Status
  // into its slot; the caller scans in index order so the reported error is
  // deterministic regardless of scheduling.
  ThreadPool pool(4);
  std::vector<Status> statuses(64);
  pool.ParallelFor(0, statuses.size(), [&statuses](std::size_t i) {
    if (i % 17 == 3) {
      statuses[i] = Status::InvalidArgument("index " + std::to_string(i));
    }
  });
  Status first;
  for (const Status& status : statuses) {
    if (!status.ok()) {
      first = status;
      break;
    }
  }
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.message(), "index 3");
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<std::vector<int>> inner(8, std::vector<int>(32, 0));
  pool.ParallelFor(0, inner.size(), [&](std::size_t outer) {
    // Same pool from inside a worker: must fall back to inline execution
    // instead of blocking on the queue it is supposed to drain.
    pool.ParallelFor(0, inner[outer].size(),
                     [&inner, outer](std::size_t i) { ++inner[outer][i]; });
  });
  for (const auto& row : inner) {
    for (int v : row) {
      EXPECT_EQ(v, 1);
    }
  }
}

TEST(ThreadPoolTest, ConcurrentSubmittersShareOnePool) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  std::vector<long> sums(kSubmitters, 0);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &sums, s] {
      std::vector<long> slots(200, 0);
      pool.ParallelFor(0, slots.size(), [&slots](std::size_t i) {
        slots[i] = static_cast<long>(i);
      });
      long total = 0;
      for (long v : slots) {
        total += v;
      }
      sums[s] = total;
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  for (long total : sums) {
    EXPECT_EQ(total, 199L * 200L / 2);
  }
}

TEST(ThreadPoolTest, DefaultThreadCountParsesEnv) {
  {
    ScopedEnv env("DPHIST_THREADS", "3");
    EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3u);
  }
  {
    ScopedEnv env("DPHIST_THREADS", "1");
    EXPECT_EQ(ThreadPool::DefaultThreadCount(), 1u);
    ThreadPool pool(0);
    EXPECT_EQ(pool.thread_count(), 1u);
  }
  {
    ScopedEnv env("DPHIST_THREADS", nullptr);
    EXPECT_EQ(ThreadPool::DefaultThreadCount(), HardwareDefault());
  }
}

TEST(ThreadPoolTest, DefaultThreadCountRejectsInvalidEnv) {
  const std::size_t hardware = HardwareDefault();
  // "9999999999999999999" fits std::size_t (so the strict env parse
  // accepts it) but is far past any real thread count; the pool's own
  // sanity cap must send it to the hardware default, not try to honor it.
  for (const char* bad :
       {"0", "-4", "abc", "2x", "", "9999999999999999999", "65537"}) {
    ScopedEnv env("DPHIST_THREADS", bad);
    EXPECT_EQ(ThreadPool::DefaultThreadCount(), hardware)
        << "DPHIST_THREADS=\"" << bad << "\"";
  }
  {
    // The cap itself is still a legal (if unwise) configuration.
    ScopedEnv env("DPHIST_THREADS", "65536");
    EXPECT_EQ(ThreadPool::DefaultThreadCount(), 65536u);
  }
}

}  // namespace
}  // namespace dphist
