#include "dphist/hist/vopt_dp.h"

#include <cmath>
#include <cstddef>
#include <limits>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/thread_pool.h"
#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

std::vector<double> RandomCounts(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> counts(n, 0.0);
  for (double& c : counts) {
    c = static_cast<double>(SampleUniformInt(rng, 0, 50));
  }
  return counts;
}

double NaiveCost(const std::vector<double>& x, std::size_t b, std::size_t e,
                 CostKind kind) {
  double sum = 0.0;
  for (std::size_t i = b; i < e; ++i) {
    sum += x[i];
  }
  const double mu = sum / static_cast<double>(e - b);
  double cost = 0.0;
  for (std::size_t i = b; i < e; ++i) {
    cost += kind == CostKind::kSquared ? (x[i] - mu) * (x[i] - mu)
                                       : std::abs(x[i] - mu);
  }
  return cost;
}

// Exhaustively enumerates all partitions of [0, n) into exactly k buckets
// and returns the minimum total cost.
double BruteForceMin(const std::vector<double>& x, std::size_t k,
                     CostKind kind) {
  const std::size_t n = x.size();
  double best = std::numeric_limits<double>::infinity();
  // Choose k-1 cuts out of positions 1..n-1 via bitmask enumeration.
  const std::size_t interior = n - 1;
  for (std::size_t mask = 0; mask < (std::size_t{1} << interior); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) != k - 1) {
      continue;
    }
    double total = 0.0;
    std::size_t begin = 0;
    for (std::size_t cut = 1; cut <= interior; ++cut) {
      if (mask & (std::size_t{1} << (cut - 1))) {
        total += NaiveCost(x, begin, cut, kind);
        begin = cut;
      }
    }
    total += NaiveCost(x, begin, n, kind);
    best = std::min(best, total);
  }
  return best;
}

// Property sweep: for *every* domain size n <= 12, every bucket count
// k <= n, and several independent random count draws, the DP's SSE/SAE
// equals the exhaustive minimum over all C(n-1, k-1) partitions.
class VOptBruteForceSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, CostKind, std::uint64_t>> {};

TEST_P(VOptBruteForceSweep, MatchesExhaustiveSearch) {
  const auto [n, kind, draw] = GetParam();
  const std::vector<double> counts = RandomCounts(n, 100 + 1000 * draw + n);
  IntervalCostTable::Options options;
  options.kind = kind;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  auto solver = VOptSolver::Solve(table.value(), /*max_buckets=*/0);
  ASSERT_TRUE(solver.ok());
  for (std::size_t k = 1; k <= n; ++k) {
    EXPECT_NEAR(solver.value().MinCost(k), BruteForceMin(counts, k, kind),
                1e-6)
        << "n=" << n << " k=" << k << " draw=" << draw;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSmallDomains, VOptBruteForceSweep,
    ::testing::Combine(::testing::Range<std::size_t>(1, 13),
                       ::testing::Values(CostKind::kSquared,
                                         CostKind::kAbsolute),
                       ::testing::Values<std::uint64_t>(0, 1, 2)));

TEST(VOptSolverTest, CostIsNonIncreasingInK) {
  const std::vector<double> counts = RandomCounts(40, 7);
  IntervalCostTable::Options options;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  auto solver = VOptSolver::Solve(table.value(), 0);
  ASSERT_TRUE(solver.ok());
  for (std::size_t k = 2; k <= 40; ++k) {
    EXPECT_LE(solver.value().MinCost(k), solver.value().MinCost(k - 1) + 1e-9);
  }
  // Identity structure has zero cost.
  EXPECT_NEAR(solver.value().MinCost(40), 0.0, 1e-9);
}

TEST(VOptSolverTest, TracebackCostMatchesTableCost) {
  const std::vector<double> counts = RandomCounts(30, 8);
  IntervalCostTable::Options options;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  auto solver = VOptSolver::Solve(table.value(), 0);
  ASSERT_TRUE(solver.ok());
  for (std::size_t k = 1; k <= 10; ++k) {
    auto structure = solver.value().Traceback(k);
    ASSERT_TRUE(structure.ok());
    EXPECT_EQ(structure.value().num_buckets(), k);
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const Bucket b = structure.value().bucket(i);
      total += NaiveCost(counts, b.begin, b.end, CostKind::kSquared);
    }
    EXPECT_NEAR(total, solver.value().MinCost(k), 1e-6);
  }
}

TEST(VOptSolverTest, RecoversPiecewiseConstantStructure) {
  // Three exact plateaus: the 3-bucket solution has zero cost and the
  // recovered cuts are the true change points.
  std::vector<double> counts;
  for (int i = 0; i < 6; ++i) counts.push_back(10.0);
  for (int i = 0; i < 5; ++i) counts.push_back(40.0);
  for (int i = 0; i < 7; ++i) counts.push_back(5.0);
  IntervalCostTable::Options options;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  auto solver = VOptSolver::Solve(table.value(), 3);
  ASSERT_TRUE(solver.ok());
  EXPECT_NEAR(solver.value().MinCost(3), 0.0, 1e-9);
  auto structure = solver.value().Traceback(3);
  ASSERT_TRUE(structure.ok());
  const std::vector<std::size_t> expected = {6, 11};
  EXPECT_EQ(structure.value().cuts(), expected);
}

TEST(VOptSolverTest, MaxBucketsClampedToCandidates) {
  const std::vector<double> counts = RandomCounts(5, 9);
  IntervalCostTable::Options options;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  auto solver = VOptSolver::Solve(table.value(), 100);
  ASSERT_TRUE(solver.ok());
  EXPECT_EQ(solver.value().max_buckets(), 5u);
}

TEST(VOptSolverTest, InfeasibleCombinationsAreInfinite) {
  const std::vector<double> counts = RandomCounts(5, 10);
  IntervalCostTable::Options options;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  auto solver = VOptSolver::Solve(table.value(), 0);
  ASSERT_TRUE(solver.ok());
  EXPECT_TRUE(std::isinf(solver.value().PrefixCost(3, 2)));  // i < k
  EXPECT_TRUE(std::isinf(solver.value().PrefixCost(0, 3)));  // k = 0
  EXPECT_TRUE(std::isinf(solver.value().PrefixCost(6, 5)));  // k > max
}

TEST(VOptSolverTest, TracebackRejectsOutOfRangeK) {
  const std::vector<double> counts = RandomCounts(5, 11);
  IntervalCostTable::Options options;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  auto solver = VOptSolver::Solve(table.value(), 3);
  ASSERT_TRUE(solver.ok());
  EXPECT_FALSE(solver.value().Traceback(0).ok());
  EXPECT_FALSE(solver.value().Traceback(4).ok());
}

// Parallel-vs-sequential equivalence for the row-parallel dynamic program.
// The contract is bitwise: the full PrefixCost table and every Traceback
// must match exactly, for any thread count, because publishers must never
// release a different histogram just because more cores were available.
class VOptParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, CostKind>> {};

TEST_P(VOptParallelEquivalence, FullTableAndTracebacksMatchSequential) {
  const auto [n, kind] = GetParam();
  const std::vector<double> counts = RandomCounts(n, 500 + n);
  IntervalCostTable::Options options;
  options.kind = kind;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());

  ThreadPool sequential_pool(1);
  VOptSolver::SolveOptions sequential;
  sequential.pool = &sequential_pool;
  auto reference = VOptSolver::Solve(table.value(), 0, sequential);
  ASSERT_TRUE(reference.ok());

  ThreadPool parallel_pool(4);
  VOptSolver::SolveOptions parallel;
  parallel.pool = &parallel_pool;
  parallel.min_parallel_candidates = 1;  // force row parallelism even here
  auto solver = VOptSolver::Solve(table.value(), 0, parallel);
  ASSERT_TRUE(solver.ok());

  const std::size_t m = reference.value().num_candidates();
  ASSERT_EQ(solver.value().num_candidates(), m);
  for (std::size_t k = 1; k <= reference.value().max_buckets(); ++k) {
    for (std::size_t i = 0; i <= m; ++i) {
      // Exact equality, infinities included.
      EXPECT_EQ(reference.value().PrefixCost(k, i),
                solver.value().PrefixCost(k, i))
          << "k=" << k << " i=" << i;
    }
    auto expected = reference.value().Traceback(k);
    auto actual = solver.value().Traceback(k);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(expected.value().cuts(), actual.value().cuts()) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTables, VOptParallelEquivalence,
    ::testing::Combine(::testing::Values<std::size_t>(5, 33, 64, 130),
                       ::testing::Values(CostKind::kSquared,
                                         CostKind::kAbsolute)));

TEST(VOptSolverTest, ParallelCostTableBuildMatchesSequential) {
  // The absolute-cost matrix build fans endpoint sweeps across the pool;
  // the resulting costs feed the DP, so they must also be bit-identical.
  const std::vector<double> counts = RandomCounts(220, 77);
  IntervalCostTable::Options sequential_options;
  sequential_options.kind = CostKind::kAbsolute;
  ThreadPool sequential_pool(1);
  sequential_options.pool = &sequential_pool;
  auto reference = IntervalCostTable::Create(counts, sequential_options);
  ASSERT_TRUE(reference.ok());

  IntervalCostTable::Options parallel_options;
  parallel_options.kind = CostKind::kAbsolute;
  ThreadPool parallel_pool(4);
  parallel_options.pool = &parallel_pool;
  parallel_options.min_parallel_candidates = 1;  // force the parallel path
  auto parallel = IntervalCostTable::Create(counts, parallel_options);
  ASSERT_TRUE(parallel.ok());

  const std::size_t m = reference.value().num_candidates();
  ASSERT_EQ(parallel.value().num_candidates(), m);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b <= m; ++b) {
      EXPECT_EQ(reference.value().CostBetween(a, b),
                parallel.value().CostBetween(a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(VOptSolverTest, ThresholdKeepsSmallInputsSequentialButEquivalent) {
  // Below min_parallel_candidates the solver must stay on the sequential
  // path (no way to observe scheduling directly, but the result contract
  // is checkable: default options equal explicit sequential options).
  const std::vector<double> counts = RandomCounts(60, 13);
  IntervalCostTable::Options options;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  auto by_default = VOptSolver::Solve(table.value(), 0);
  ThreadPool pool(4);
  VOptSolver::SolveOptions huge_threshold;
  huge_threshold.pool = &pool;
  huge_threshold.min_parallel_candidates = 1'000'000;
  auto sequential = VOptSolver::Solve(table.value(), 0, huge_threshold);
  ASSERT_TRUE(by_default.ok());
  ASSERT_TRUE(sequential.ok());
  for (std::size_t k = 1; k <= 60; ++k) {
    EXPECT_EQ(by_default.value().MinCost(k), sequential.value().MinCost(k));
  }
}

TEST(VOptSolverTest, GridRestrictedSolveUsesOnlyGridCuts) {
  const std::vector<double> counts = RandomCounts(20, 12);
  IntervalCostTable::Options options;
  options.grid_step = 4;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  auto solver = VOptSolver::Solve(table.value(), 3);
  ASSERT_TRUE(solver.ok());
  auto structure = solver.value().Traceback(3);
  ASSERT_TRUE(structure.ok());
  for (std::size_t cut : structure.value().cuts()) {
    EXPECT_EQ(cut % 4, 0u);
  }
}

}  // namespace
}  // namespace dphist
