// Sparse range-query answering: equivalence with the dense path on a
// materializable domain, the dense validation contract carried over to
// 64-bit domains, and correctness at keys near the 2^63 domain cap.

#include "dphist/query/sparse_query.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/status.h"
#include "dphist/hist/histogram.h"
#include "dphist/query/range_query.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"
#include "dphist/sparse/sparse_histogram.h"

namespace dphist {
namespace {

sparse::SparseHistogram MustCreate(std::uint64_t domain,
                                   std::vector<sparse::SparseEntry> entries) {
  auto histogram = sparse::SparseHistogram::Create(domain, std::move(entries));
  EXPECT_TRUE(histogram.ok()) << histogram.status().ToString();
  return std::move(histogram).value();
}

TEST(SparseQueryTest, MatchesDenseAnswersOnMaterializableDomain) {
  const std::size_t kDomain = 512;
  const sparse::SparseHistogram sparse_histogram = MustCreate(
      kDomain, {{0, 3.0}, {17, -1.5}, {100, 7.0}, {255, 2.0}, {511, 4.5}});
  std::vector<double> counts(kDomain, 0.0);
  for (const sparse::SparseEntry& entry : sparse_histogram.entries()) {
    counts[static_cast<std::size_t>(entry.key)] = entry.count;
  }
  const Histogram dense(std::move(counts));

  Rng rng(13579);
  auto queries = RandomRangeWorkload(kDomain, 200, rng);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  auto dense_answers = AnswerQueries(dense, queries.value());
  auto sparse_answers = AnswerQueriesSparse(sparse_histogram, queries.value());
  ASSERT_TRUE(dense_answers.ok()) << dense_answers.status().ToString();
  ASSERT_TRUE(sparse_answers.ok()) << sparse_answers.status().ToString();
  ASSERT_EQ(dense_answers.value().size(), sparse_answers.value().size());
  for (std::size_t i = 0; i < queries.value().size(); ++i) {
    EXPECT_DOUBLE_EQ(sparse_answers.value()[i], dense_answers.value()[i])
        << "query " << i;
  }
}

TEST(SparseQueryTest, ValidationMirrorsDenseContract) {
  const sparse::SparseHistogram histogram = MustCreate(100, {{5, 1.0}});
  // Valid workload passes.
  EXPECT_TRUE(
      ValidateSparseQueries({{0, 100}, {5, 6}, {99, 100}}, 100).ok());
  // Empty, inverted, and out-of-domain queries fail loudly — never
  // clamped, never swapped, never dropped.
  for (const RangeQuery bad : {RangeQuery{5, 5},     // empty
                               RangeQuery{7, 3},     // inverted
                               RangeQuery{0, 101}})  // past the domain
  {
    const Status status = ValidateSparseQueries({bad}, 100);
    ASSERT_FALSE(status.ok()) << "[" << bad.begin << ", " << bad.end << ")";
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    auto answers = AnswerQueriesSparse(histogram, {bad});
    ASSERT_FALSE(answers.ok());
    EXPECT_EQ(answers.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SparseQueryTest, AnswersQueriesNearTheDomainCap) {
  const std::uint64_t kDomain = sparse::kMaxSparseDomain;
  const sparse::SparseHistogram histogram = MustCreate(
      kDomain, {{0, 1.0}, {kDomain / 2, 10.0}, {kDomain - 1, 100.0}});
  const std::vector<RangeQuery> queries = {
      {0, static_cast<std::size_t>(kDomain)},            // everything
      {1, static_cast<std::size_t>(kDomain - 1)},        // interior only
      {static_cast<std::size_t>(kDomain - 1),
       static_cast<std::size_t>(kDomain)},               // last key alone
  };
  auto answers = AnswerQueriesSparse(histogram, queries);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_DOUBLE_EQ(answers.value()[0], 111.0);
  EXPECT_DOUBLE_EQ(answers.value()[1], 10.0);
  EXPECT_DOUBLE_EQ(answers.value()[2], 100.0);
}

TEST(SparseQueryTest, EmptyWorkloadYieldsEmptyAnswers) {
  const sparse::SparseHistogram histogram = MustCreate(10, {});
  auto answers = AnswerQueriesSparse(histogram, {});
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers.value().empty());
}

}  // namespace
}  // namespace dphist
