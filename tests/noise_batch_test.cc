#include "dphist/random/noise_batch.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/algorithms/identity_geometric.h"
#include "dphist/algorithms/identity_laplace.h"
#include "dphist/hist/histogram.h"
#include "dphist/privacy/geometric_mechanism.h"
#include "dphist/privacy/laplace_mechanism.h"
#include "dphist/random/distributions.h"
#include "dphist/random/noise_kernel.h"
#include "dphist/random/rng.h"
#include "testing/statistical.h"

namespace dphist {
namespace {

// Scoped DPHIST_NOISE_MODEL override; restores "unset" on destruction so
// tests cannot leak a model into each other.
class ScopedNoiseModelEnv {
 public:
  explicit ScopedNoiseModelEnv(const char* value) {
    ::setenv("DPHIST_NOISE_MODEL", value, /*overwrite=*/1);
  }
  ~ScopedNoiseModelEnv() { ::unsetenv("DPHIST_NOISE_MODEL"); }
};

TEST(NoiseModelTest, NameParseRoundTrip) {
  const NoiseModel all[] = {NoiseModel::kAuto, NoiseModel::kTextbook,
                            NoiseModel::kBatched, NoiseModel::kSnapped,
                            NoiseModel::kDiscrete};
  for (NoiseModel model : all) {
    NoiseModel parsed = NoiseModel::kAuto;
    ASSERT_TRUE(ParseNoiseModel(NoiseModelName(model), &parsed))
        << NoiseModelName(model);
    EXPECT_EQ(parsed, model);
  }
  NoiseModel out = NoiseModel::kSnapped;
  EXPECT_FALSE(ParseNoiseModel("gaussian", &out));
  EXPECT_EQ(out, NoiseModel::kSnapped) << "failed parse must not write";
  EXPECT_FALSE(ParseNoiseModel("", &out));
}

TEST(NoiseModelTest, ResolveDefaultsToTextbook) {
  ::unsetenv("DPHIST_NOISE_MODEL");
  EXPECT_EQ(ResolveNoiseModel(NoiseModel::kAuto), NoiseModel::kTextbook);
  EXPECT_EQ(ResolveNoiseModel(NoiseModel::kSnapped), NoiseModel::kSnapped);
}

TEST(NoiseModelTest, ResolveHonorsEnvironment) {
  ScopedNoiseModelEnv env("batched");
  EXPECT_EQ(ResolveNoiseModel(NoiseModel::kAuto), NoiseModel::kBatched);
  // An explicit model always wins over the environment.
  EXPECT_EQ(ResolveNoiseModel(NoiseModel::kDiscrete), NoiseModel::kDiscrete);
}

TEST(NoiseModelTest, ResolveIgnoresGarbageEnvironment) {
  ScopedNoiseModelEnv env("gauss??");
  EXPECT_EQ(ResolveNoiseModel(NoiseModel::kAuto), NoiseModel::kTextbook);
}

TEST(SnappedParamsTest, SnapsScaleUpToPowerOfTwo) {
  EXPECT_DOUBLE_EQ(ComputeSnappedLaplaceParams(1.3).snapped_scale, 2.0);
  EXPECT_DOUBLE_EQ(ComputeSnappedLaplaceParams(2.0).snapped_scale, 2.0);
  EXPECT_DOUBLE_EQ(ComputeSnappedLaplaceParams(2.1).snapped_scale, 4.0);
  EXPECT_DOUBLE_EQ(ComputeSnappedLaplaceParams(0.3).snapped_scale, 0.5);
}

TEST(SnappedParamsTest, GranularityIsPowerOfTwoGrid) {
  const SnappedLaplaceParams params = ComputeSnappedLaplaceParams(1.3);
  EXPECT_DOUBLE_EQ(params.bound, kDefaultSnappedBound);
  EXPECT_DOUBLE_EQ(params.granularity, kDefaultSnappedBound * 0x1.0p-46);
  int exponent = 0;
  EXPECT_DOUBLE_EQ(std::frexp(params.granularity, &exponent), 0.5)
      << "granularity must be an exact power of two";
  // Huge scales push the grid up with the snapped scale.
  const SnappedLaplaceParams wide =
      ComputeSnappedLaplaceParams(3.0 * kDefaultSnappedBound);
  EXPECT_DOUBLE_EQ(wide.snapped_scale, 4.0 * kDefaultSnappedBound);
  EXPECT_DOUBLE_EQ(wide.granularity, 4.0 * kDefaultSnappedBound * 0x1.0p-46);
}

// --- The default model reproduces the historical draw sequence ---------

TEST(TextbookEquivalenceTest, LaplaceVectorMatchesLegacyLoop) {
  ::unsetenv("DPHIST_NOISE_MODEL");
  auto mechanism = LaplaceMechanism::Create(0.7, 1.0);
  ASSERT_TRUE(mechanism.ok());
  EXPECT_EQ(mechanism.value().noise_model(), NoiseModel::kTextbook);

  Rng rng_mechanism(1234);
  const std::vector<double> values = {0.0, 5.0, -3.0, 100.0, 0.25};
  const std::vector<double> out =
      mechanism.value().PerturbVector(values, rng_mechanism);

  Rng rng_legacy(1234);
  const double scale = mechanism.value().scale();
  ASSERT_EQ(out.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(out[i], values[i] + SampleLaplace(rng_legacy, scale)) << i;
  }
}

TEST(TextbookEquivalenceTest, GeometricVectorMatchesLegacyLoop) {
  ::unsetenv("DPHIST_NOISE_MODEL");
  auto mechanism = GeometricMechanism::Create(0.4, 1);
  ASSERT_TRUE(mechanism.ok());
  EXPECT_EQ(mechanism.value().noise_model(), NoiseModel::kTextbook);

  Rng rng_mechanism(99);
  const std::vector<std::int64_t> values = {0, 7, -2, 1000};
  const std::vector<std::int64_t> out =
      mechanism.value().PerturbVector(values, rng_mechanism);

  Rng rng_legacy(99);
  const double alpha = mechanism.value().alpha();
  ASSERT_EQ(out.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(out[i], values[i] + SampleTwoSidedGeometric(rng_legacy, alpha))
        << i;
  }
}

// --- Bitwise determinism of the batch kernel ---------------------------

// The batch kernels promise a pure per-element function of (seed, counter):
// any block decomposition — including n=1 slices, the scalar extreme —
// must reproduce the full batch bit for bit. This is what makes the
// non-textbook models independent of thread count and SIMD width.
TEST(KernelDeterminismTest, LaplaceBatchInvariantUnderBlockSplits) {
  const std::size_t n = 1003;  // deliberately not a vector multiple
  const std::uint64_t seed = 0xfeedfacecafebeefULL;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<double>(i % 17) - 8.0;
  }
  std::vector<double> whole(n);
  noise_kernel::AddLaplaceBatch(values.data(), whole.data(), n, seed, 0, 1.5);

  for (const std::size_t block : {std::size_t{1}, std::size_t{3},
                                  std::size_t{64}, std::size_t{1000}}) {
    std::vector<double> pieced(n);
    for (std::size_t base = 0; base < n; base += block) {
      const std::size_t len = std::min(block, n - base);
      noise_kernel::AddLaplaceBatch(values.data() + base,
                                    pieced.data() + base, len, seed, base,
                                    1.5);
    }
    EXPECT_EQ(whole, pieced) << "block=" << block;
  }
}

TEST(KernelDeterminismTest, SnappedAndDiscreteBatchesInvariantUnderSplits) {
  const std::size_t n = 517;
  const std::uint64_t seed = 77;
  const SnappedLaplaceParams params = ComputeSnappedLaplaceParams(2.0);

  std::vector<double> dvalues(n, 10.0);
  std::vector<double> dwhole(n);
  noise_kernel::AddSnappedLaplaceBatch(dvalues.data(), dwhole.data(), n, seed,
                                       0, params.snapped_scale,
                                       params.granularity, params.bound);
  std::vector<std::int64_t> ivalues(n, 4);
  std::vector<std::int64_t> iwhole(n);
  const double t = 0.5;
  noise_kernel::AddDiscreteLaplaceBatch(ivalues.data(), iwhole.data(), n,
                                        seed, 0, std::exp(-t), -1.0 / t);

  std::vector<double> dpieced(n);
  std::vector<std::int64_t> ipieced(n);
  for (std::size_t base = 0; base < n; ++base) {  // scalar n=1 slices
    noise_kernel::AddSnappedLaplaceBatch(dvalues.data() + base,
                                         dpieced.data() + base, 1, seed, base,
                                         params.snapped_scale,
                                         params.granularity, params.bound);
    noise_kernel::AddDiscreteLaplaceBatch(ivalues.data() + base,
                                          ipieced.data() + base, 1, seed,
                                          base, std::exp(-t), -1.0 / t);
  }
  EXPECT_EQ(dwhole, dpieced);
  EXPECT_EQ(iwhole, ipieced);
}

// The kernel's vectorized log stays within ~1 ulp of libm, so the batch
// output is recomputable from the documented draw scheme with std::log.
TEST(KernelDeterminismTest, LaplaceBatchMatchesDocumentedConstruction) {
  const std::size_t n = 4096;
  const std::uint64_t seed = 31337;
  const double scale = 2.25;
  std::vector<double> zeros(n, 0.0);
  std::vector<double> out(n);
  noise_kernel::AddLaplaceBatch(zeros.data(), out.data(), n, seed, 0, scale);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = noise_kernel::DrawBits(seed, i);
    const double u = noise_kernel::DrawUniform(bits);
    ASSERT_GT(u, 0.0);
    ASSERT_LT(u, 1.0);
    const double sign = (bits & 1ULL) != 0 ? -1.0 : 1.0;
    const double expected = sign * scale * -std::log(u);
    EXPECT_NEAR(out[i], expected,
                1e-12 * std::max(1.0, std::fabs(expected)))
        << i;
  }
}

// --- Statistical correctness of the new constructions ------------------

std::vector<double> TextbookLaplaceSamples(std::size_t n, double scale,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> samples(n);
  for (double& s : samples) {
    s = SampleLaplace(rng, scale);
  }
  return samples;
}

TEST(StatisticalTest, BatchedLaplaceMatchesTextbookDistribution) {
  const std::size_t n = 20000;
  Rng rng(2024);
  std::vector<double> zeros(n, 0.0);
  std::vector<double> batched(n);
  noise_batch::AddContinuousNoise(NoiseModel::kBatched, 1.7, zeros.data(),
                                  batched.data(), n, rng);
  EXPECT_TRUE(testing::KsSameDistribution(
      batched, TextbookLaplaceSamples(n, 1.7, 4242)));
}

// Snapping rounds the scale 1.3 up to 2.0 and the release onto a 2^-16
// grid — so the snapped release at requested scale 1.3 must match an
// *analytic* Laplace(2.0), and must NOT match Laplace(1.3).
TEST(StatisticalTest, SnappedLaplaceMatchesSnappedAnalyticScale) {
  const std::size_t n = 20000;
  Rng rng(515);
  std::vector<double> zeros(n, 0.0);
  std::vector<double> snapped(n);
  noise_batch::AddContinuousNoise(NoiseModel::kSnapped, 1.3, zeros.data(),
                                  snapped.data(), n, rng);
  EXPECT_TRUE(testing::KsSameDistribution(
      snapped, TextbookLaplaceSamples(n, 2.0, 616)));
  EXPECT_FALSE(testing::KsSameDistribution(
      snapped, TextbookLaplaceSamples(n, 1.3, 616)));
}

TEST(SnappedReleaseTest, OutputsLieOnGridAndClamp) {
  const std::size_t n = 1000;
  Rng rng(8);
  const SnappedLaplaceParams params = ComputeSnappedLaplaceParams(2.0);
  std::vector<double> values(n, 123.456);
  values[0] = 2.0 * kDefaultSnappedBound;   // must clamp to +B
  values[1] = -2.0 * kDefaultSnappedBound;  // must clamp to -B
  std::vector<double> out(n);
  noise_batch::AddContinuousNoise(NoiseModel::kSnapped, 2.0, values.data(),
                                  out.data(), n, rng);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(std::fabs(out[i]), params.bound) << i;
    const double steps = out[i] / params.granularity;
    EXPECT_EQ(steps, std::rint(steps))
        << "release off the snapping grid at " << i;
  }
}

TEST(StatisticalTest, DiscreteLaplacePmfIsExact) {
  const std::size_t n = 200000;
  const double t = 0.8;
  const double alpha = std::exp(-t);
  Rng rng(77);
  std::vector<std::int64_t> zeros(n, 0);
  std::vector<std::int64_t> out(n);
  noise_batch::AddIntegerNoise(NoiseModel::kDiscrete, t, zeros.data(),
                               out.data(), n, rng);
  // P[X = k] = (1-a)/(1+a) * a^|k|; four-sigma frequency bands.
  const double p0 = (1.0 - alpha) / (1.0 + alpha);
  for (int k = -3; k <= 3; ++k) {
    const double p = p0 * std::pow(alpha, std::abs(k));
    std::size_t hits = 0;
    for (std::int64_t v : out) {
      hits += (v == k) ? 1 : 0;
    }
    const double freq = static_cast<double>(hits) / static_cast<double>(n);
    const double sigma = std::sqrt(p * (1.0 - p) / static_cast<double>(n));
    EXPECT_NEAR(freq, p, 4.0 * sigma) << "k=" << k;
  }
}

TEST(StatisticalTest, BatchedGeometricMatchesTextbookDistribution) {
  const std::size_t n = 20000;
  const double epsilon = 0.5;
  auto textbook = GeometricMechanism::Create(epsilon, 1,
                                             NoiseModel::kTextbook);
  auto batched = GeometricMechanism::Create(epsilon, 1, NoiseModel::kBatched);
  ASSERT_TRUE(textbook.ok());
  ASSERT_TRUE(batched.ok());
  Rng rng_a(11);
  Rng rng_b(22);
  const std::vector<std::int64_t> zeros(n, 0);
  const std::vector<std::int64_t> a =
      textbook.value().PerturbVector(zeros, rng_a);
  const std::vector<std::int64_t> b =
      batched.value().PerturbVector(zeros, rng_b);
  std::vector<double> da(a.begin(), a.end());
  std::vector<double> db(b.begin(), b.end());
  EXPECT_TRUE(testing::KsSameDistribution(da, db));
}

// --- Mechanism- and publisher-level model plumbing ---------------------

TEST(MechanismModelTest, DiscreteContinuousReleaseIsIntegral) {
  auto mechanism = LaplaceMechanism::Create(1.0, 1.0, NoiseModel::kDiscrete);
  ASSERT_TRUE(mechanism.ok());
  Rng rng(5);
  const std::vector<double> values = {0.2, 7.9, -3.4, 1000.0};
  const std::vector<double> out = mechanism.value().PerturbVector(values, rng);
  for (double v : out) {
    EXPECT_EQ(v, std::rint(v)) << "discrete release must stay integral";
  }
}

TEST(MechanismModelTest, BatchModelsConsumeOneParentWordPerCall) {
  auto mechanism = LaplaceMechanism::Create(1.0, 1.0, NoiseModel::kBatched);
  ASSERT_TRUE(mechanism.ok());
  Rng rng(123);
  const std::vector<double> values(1000, 3.0);
  (void)mechanism.value().PerturbVector(values, rng);
  Rng expected(123);
  (void)expected.NextUint64();
  // After one vector call the parent stream has advanced by exactly one
  // word — the substream seed — regardless of n.
  EXPECT_EQ(rng.NextUint64(), expected.NextUint64());
}

// Publisher output under every model is a pure function of (options,
// epsilon, seed): recomputing with a fresh same-seed Rng must reproduce it
// bit for bit. CI runs this binary under DPHIST_THREADS=1 and =4, which
// together with this test proves the release is thread-count invariant.
TEST(PublisherModelTest, PublishIsPureFunctionOfSeedUnderEveryModel) {
  const Histogram histogram(std::vector<double>{5, 0, 12, 3, 3, 9, 1, 0});
  const NoiseModel models[] = {NoiseModel::kTextbook, NoiseModel::kBatched,
                               NoiseModel::kSnapped, NoiseModel::kDiscrete};
  for (NoiseModel model : models) {
    IdentityLaplace::Options options;
    options.noise_model = model;
    const IdentityLaplace publisher(options);
    Rng rng_a(42);
    Rng rng_b(42);
    auto a = publisher.Publish(histogram, 0.5, rng_a);
    auto b = publisher.Publish(histogram, 0.5, rng_b);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().counts(), b.value().counts())
        << NoiseModelName(model);
  }
}

TEST(PublisherModelTest, DefaultPublisherIsBitIdenticalToLegacySampler) {
  ::unsetenv("DPHIST_NOISE_MODEL");
  const Histogram histogram(std::vector<double>{1, 2, 3, 4, 5});
  const IdentityLaplace publisher;
  Rng rng(7);
  auto released = publisher.Publish(histogram, 0.8, rng);
  ASSERT_TRUE(released.ok());

  Rng legacy(7);
  const double scale = 1.0 / 0.8;
  for (std::size_t i = 0; i < histogram.size(); ++i) {
    EXPECT_EQ(released.value().counts()[i],
              histogram.counts()[i] + SampleLaplace(legacy, scale))
        << i;
  }
}

TEST(PublisherModelTest, EnvironmentSelectsModelForPublishers) {
  ScopedNoiseModelEnv env("batched");
  const Histogram histogram(std::vector<double>{4, 4, 4, 4});
  const IdentityLaplace publisher;  // kAuto -> env -> batched
  Rng rng(9);
  auto released = publisher.Publish(histogram, 1.0, rng);
  ASSERT_TRUE(released.ok());
  // The batched release is recomputable from the kernel directly.
  Rng parent(9);
  const std::uint64_t seed = parent.NextUint64();
  std::vector<double> expected(histogram.size());
  noise_kernel::AddLaplaceBatch(histogram.counts().data(), expected.data(),
                                histogram.size(), seed, 0, 1.0);
  EXPECT_EQ(released.value().counts(), expected);
}

TEST(PublisherModelTest, GeometricPublisherHonorsExplicitModel) {
  IdentityGeometric::Options options;
  options.noise_model = NoiseModel::kDiscrete;
  const IdentityGeometric publisher(options);
  const Histogram histogram(std::vector<double>{10, 20, 30});
  Rng rng(3);
  auto released = publisher.Publish(histogram, 1.0, rng);
  ASSERT_TRUE(released.ok());
  Rng parent(3);
  const std::uint64_t seed = parent.NextUint64();
  const std::vector<std::int64_t> truth = {10, 20, 30};
  std::vector<std::int64_t> expected(truth.size());
  noise_kernel::AddDiscreteLaplaceBatch(truth.data(), expected.data(),
                                        truth.size(), seed, 0,
                                        std::exp(-1.0), -1.0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(released.value().counts()[i],
              static_cast<double>(expected[i]))
        << i;
  }
}

}  // namespace
}  // namespace dphist
