#include "dphist/privacy/geometric_mechanism.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(GeometricMechanismTest, RejectsBadParameters) {
  EXPECT_FALSE(GeometricMechanism::Create(0.0, 1).ok());
  EXPECT_FALSE(GeometricMechanism::Create(-1.0, 1).ok());
  EXPECT_FALSE(GeometricMechanism::Create(1.0, 0).ok());
  EXPECT_FALSE(GeometricMechanism::Create(1.0, -1).ok());
}

TEST(GeometricMechanismTest, AlphaMatchesDefinition) {
  auto mech = GeometricMechanism::Create(2.0, 1);
  ASSERT_TRUE(mech.ok());
  EXPECT_DOUBLE_EQ(mech.value().alpha(), std::exp(-2.0));
  auto mech2 = GeometricMechanism::Create(2.0, 4);
  ASSERT_TRUE(mech2.ok());
  EXPECT_DOUBLE_EQ(mech2.value().alpha(), std::exp(-0.5));
}

TEST(GeometricMechanismTest, OutputsStayInteger) {
  auto mech = GeometricMechanism::Create(0.5, 1);
  ASSERT_TRUE(mech.ok());
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    // Perturb returns int64 by construction; verify values move.
    const std::int64_t out = mech.value().Perturb(10, rng);
    (void)out;
  }
  SUCCEED();
}

TEST(GeometricMechanismTest, UnbiasedAndVarianceMatches) {
  auto mech = GeometricMechanism::Create(1.0, 1);
  ASSERT_TRUE(mech.ok());
  Rng rng(2);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int reps = 300000;
  for (int i = 0; i < reps; ++i) {
    const double noise = static_cast<double>(mech.value().Perturb(0, rng));
    sum += noise;
    sum_sq += noise * noise;
  }
  const double mean = sum / reps;
  const double var = sum_sq / reps - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, mech.value().noise_variance(),
              0.05 * mech.value().noise_variance());
}

TEST(GeometricMechanismTest, VectorPerturbation) {
  auto mech = GeometricMechanism::Create(1.0, 1);
  ASSERT_TRUE(mech.ok());
  Rng rng(3);
  const std::vector<std::int64_t> values = {0, 5, 100, -3};
  const std::vector<std::int64_t> noisy =
      mech.value().PerturbVector(values, rng);
  ASSERT_EQ(noisy.size(), values.size());
}

TEST(GeometricMechanismTest, DpRatioOnPointMass) {
  // P[output = v] / P[output' = v] <= e^eps for neighbors differing by 1.
  const double epsilon = 1.0;
  auto mech = GeometricMechanism::Create(epsilon, 1);
  ASSERT_TRUE(mech.ok());
  Rng rng(4);
  const int reps = 400000;
  int exact_from_0 = 0;
  int exact_from_1 = 0;
  for (int i = 0; i < reps; ++i) {
    exact_from_0 += mech.value().Perturb(0, rng) == 0 ? 1 : 0;
    exact_from_1 += mech.value().Perturb(1, rng) == 0 ? 1 : 0;
  }
  const double ratio =
      static_cast<double>(exact_from_0) / static_cast<double>(exact_from_1);
  EXPECT_LT(ratio, std::exp(epsilon) * 1.05);
  EXPECT_GT(ratio, std::exp(epsilon) * 0.95);  // tight for the geometric
}

}  // namespace
}  // namespace dphist
