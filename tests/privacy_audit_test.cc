// Empirical differential-privacy audit.
//
// Differential privacy cannot be proven by testing, but gross violations
// can be caught: run a publisher many times on two neighboring datasets
// (one record added), estimate the probability of a set of output events,
// and check the ratio against e^epsilon with sampling slack. A correct
// epsilon-DP mechanism passes comfortably; an implementation that forgot a
// budget split, mis-scaled noise by 2x, or leaked the structure for free
// fails these checks with high probability.
//
// Events are chosen where the two output distributions differ most — the
// bin whose count changed — which is where a broken mechanism gives itself
// away. Sample counts and slack are sized so the tests are deterministic
// in practice for correct mechanisms (pinned seeds).

#include <cmath>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/algorithms/ahp.h"
#include "dphist/algorithms/efpa.h"
#include "dphist/algorithms/grouping_smoothing.h"
#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/p_hp.h"
#include "dphist/algorithms/registry.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

constexpr double kEpsilon = 1.0;
constexpr int kSamples = 30000;
// A second, stricter budget for the baseline mechanisms whose events keep
// enough mass to audit there (merging algorithms smear bin 0 too much at
// small epsilon for a meaningful point estimate).
constexpr double kStrictEpsilon = 0.4;
// Multiplicative slack over e^eps: covers sampling error at kSamples for
// event probabilities >= ~0.05 (binomial stderr ~ 0.3%).
constexpr double kSlack = 1.25;

// Estimates P[released bin0 count <= threshold] under the given dataset.
double EstimateEventProbability(const HistogramPublisher& publisher,
                                const Histogram& data, double threshold,
                                std::uint64_t seed,
                                double epsilon = kEpsilon) {
  Rng root(seed);
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    Rng rng = root.Fork();
    auto out = publisher.Publish(data, epsilon, rng);
    EXPECT_TRUE(out.ok());
    if (out.ok() && out.value().count(0) <= threshold) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / kSamples;
}

// Audits the publisher on neighboring histograms d1 = (5,8,3) and
// d2 = (6,8,3), over several event thresholds on bin 0.
void AuditPublisher(const HistogramPublisher& publisher,
                    std::uint64_t seed) {
  const Histogram d1({5.0, 8.0, 3.0});
  const Histogram d2({6.0, 8.0, 3.0});
  const double bound = std::exp(kEpsilon) * kSlack;
  for (double threshold : {4.0, 5.5, 7.0}) {
    const double p1 =
        EstimateEventProbability(publisher, d1, threshold, seed);
    const double p2 =
        EstimateEventProbability(publisher, d2, threshold, seed + 1);
    // Only test events with enough mass for a meaningful ratio estimate.
    if (p1 < 0.05 || p2 < 0.05) {
      continue;
    }
    EXPECT_LE(p1 / p2, bound)
        << publisher.name() << " threshold=" << threshold << " p1=" << p1
        << " p2=" << p2;
    EXPECT_LE(p2 / p1, bound)
        << publisher.name() << " threshold=" << threshold << " p1=" << p1
        << " p2=" << p2;
  }
}

TEST(PrivacyAuditTest, Dwork) {
  auto algo = PublisherRegistry::Make("dwork");
  ASSERT_TRUE(algo.ok());
  AuditPublisher(*algo.value(), 1);
}

TEST(PrivacyAuditTest, Geometric) {
  auto algo = PublisherRegistry::Make("geometric");
  ASSERT_TRUE(algo.ok());
  AuditPublisher(*algo.value(), 2);
}

TEST(PrivacyAuditTest, Boost) {
  auto algo = PublisherRegistry::Make("boost");
  ASSERT_TRUE(algo.ok());
  AuditPublisher(*algo.value(), 3);
}

TEST(PrivacyAuditTest, Privelet) {
  auto algo = PublisherRegistry::Make("privelet");
  ASSERT_TRUE(algo.ok());
  AuditPublisher(*algo.value(), 4);
}

TEST(PrivacyAuditTest, NoiseFirst) {
  NoiseFirst algo;  // defaults: full k* search on the noisy counts
  AuditPublisher(algo, 5);
}

TEST(PrivacyAuditTest, StructureFirstFixedK) {
  StructureFirst::Options options;
  options.num_buckets = 2;
  AuditPublisher(StructureFirst(options), 6);
}

TEST(PrivacyAuditTest, StructureFirstAdaptiveK) {
  AuditPublisher(StructureFirst(), 7);
}

TEST(PrivacyAuditTest, PHPartition) {
  PHPartition::Options options;
  options.num_buckets = 2;
  AuditPublisher(PHPartition(options), 8);
}

TEST(PrivacyAuditTest, Efpa) {
  AuditPublisher(Efpa(), 9);
}

TEST(PrivacyAuditTest, Ahp) {
  Ahp::Options options;
  options.threshold_small_counts = false;  // keep bin-0 events informative
  options.clamp_nonnegative = false;
  AuditPublisher(Ahp(options), 10);
}

TEST(PrivacyAuditTest, GroupingSmoothing) {
  GroupingSmoothing::Options options;
  options.group_size = 2;
  AuditPublisher(GroupingSmoothing(options), 11);
}

// Negative control: a deliberately broken mechanism (noise scaled for
// eps' = 4*eps) must FAIL the audit — proving the audit has teeth.
class OverconfidentLaplace final : public HistogramPublisher {
 public:
  std::string name() const override { return "broken"; }
  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override {
    auto inner = PublisherRegistry::Make("dwork");
    // Spends 4x the granted budget: 4*eps-DP, not eps-DP.
    return inner.value()->Publish(histogram, 4.0 * epsilon, rng);
  }
};

TEST(PrivacyAuditTest, BaselinesAtStrictEpsilon) {
  // The Laplace and geometric baselines keep auditable event mass at a
  // strict budget too; their ratio bound must scale down with epsilon.
  const Histogram d1({5.0, 8.0, 3.0});
  const Histogram d2({6.0, 8.0, 3.0});
  const double bound = std::exp(kStrictEpsilon) * kSlack;
  for (const char* name : {"dwork", "geometric"}) {
    auto algo = PublisherRegistry::Make(name);
    ASSERT_TRUE(algo.ok());
    for (double threshold : {4.0, 5.5, 7.0}) {
      const double p1 = EstimateEventProbability(*algo.value(), d1,
                                                 threshold, 50,
                                                 kStrictEpsilon);
      const double p2 = EstimateEventProbability(*algo.value(), d2,
                                                 threshold, 51,
                                                 kStrictEpsilon);
      if (p1 < 0.05 || p2 < 0.05) {
        continue;
      }
      EXPECT_LE(p1 / p2, bound) << name << " threshold=" << threshold;
      EXPECT_LE(p2 / p1, bound) << name << " threshold=" << threshold;
    }
  }
}

TEST(PrivacyAuditTest, NegativeControlCatchesBrokenMechanism) {
  OverconfidentLaplace broken;
  const Histogram d1({5.0, 8.0, 3.0});
  const Histogram d2({6.0, 8.0, 3.0});
  const double p1 = EstimateEventProbability(broken, d1, 5.5, 99);
  const double p2 = EstimateEventProbability(broken, d2, 5.5, 100);
  ASSERT_GE(p1, 0.05);
  ASSERT_GE(p2, 0.05);
  const double worst = std::max(p1 / p2, p2 / p1);
  EXPECT_GT(worst, std::exp(kEpsilon) * kSlack);
}

}  // namespace
}  // namespace dphist
