// Statistical verification battery for the sparse publishers.
//
// The load-bearing checks: per-key noise is Laplace at exactly scale
// 1/epsilon (KS against direct draws); SparsePure's sampled release agrees
// in distribution with the brute-force dense construction it claims to
// equal (exact cross-check on a materializable domain); the spurious
// release count matches the tail-bound calibration; the unknown-domain
// mechanism leaks a single-record key with probability exactly delta; and
// the release is bitwise identical regardless of thread count.
//
// Every test is deterministic (fixed seeds) with tolerances wide enough —
// 5 sigma on counts, alpha = 1e-3 on KS — that a correct implementation
// passes with overwhelming margin while the injected-bug failure modes
// (wrong noise scale, wrong threshold, mis-calibrated q) are far outside.

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/status.h"
#include "dphist/common/thread_pool.h"
#include "dphist/privacy/budget.h"
#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"
#include "dphist/sparse/sparse_histogram.h"
#include "dphist/sparse/sparse_pure.h"
#include "dphist/sparse/unknown_domain.h"
#include "testing/statistical.h"

namespace dphist {
namespace sparse {
namespace {

SparseHistogram MustCreate(std::uint64_t domain,
                           std::vector<SparseEntry> entries) {
  auto histogram = SparseHistogram::Create(domain, std::move(entries));
  EXPECT_TRUE(histogram.ok()) << histogram.status().ToString();
  return std::move(histogram).value();
}

TEST(SparsePureTest, ThresholdMatchesClosedForm) {
  SparsePurePublisher publisher;
  // tau = ln((d - k) / (2 s)) / eps with s = 1.
  EXPECT_NEAR(publisher.Threshold(46, 2, 1.0), std::log(22.0), 1e-12);
  EXPECT_NEAR(publisher.Threshold(1ULL << 40, 0, 2.0),
              std::log(static_cast<double>(1ULL << 40) / 2.0) / 2.0, 1e-9);
  // d - k < 2 s clamps at zero.
  EXPECT_DOUBLE_EQ(publisher.Threshold(3, 2, 1.0), 0.0);
}

TEST(SparsePureTest, PerKeyNoiseIsLaplaceAtScaleOneOverEpsilon) {
  // A key whose count towers over tau is released every time, so its
  // released values across repetitions are count + Lap(1/eps) draws with
  // no visible truncation; KS against direct Laplace draws pins the scale.
  const double kCount = 1000.0;
  const double kEpsilon = 0.5;
  const SparseHistogram truth =
      MustCreate(1000000, {{17, kCount}, {400000, 900.0}});
  SparsePurePublisher publisher;
  Rng publish_rng(314159);
  std::vector<double> released_values;
  // 1000 repetitions: the KS critical distance at alpha = 1e-3 is ~0.087,
  // safely below the 0.125 true distance to the scale-2x wrong noise and
  // far above the ~0 distance to the correct one.
  for (int rep = 0; rep < 1000; ++rep) {
    Rng run = publish_rng.Fork();
    auto released = publisher.Publish(truth, kEpsilon, run);
    ASSERT_TRUE(released.ok()) << released.status().ToString();
    const double value = released.value().CountFor(17);
    ASSERT_NE(value, 0.0) << "heavy key suppressed at rep " << rep;
    released_values.push_back(value);
  }
  Rng reference_rng(271828);
  std::vector<double> reference(released_values.size());
  for (double& x : reference) {
    x = kCount + SampleLaplace(reference_rng, 1.0 / kEpsilon);
  }
  EXPECT_TRUE(testing::KsSameDistribution(released_values, reference));
  // And the battery's teeth: noise at twice the scale (an epsilon halved
  // by mis-plumbing) is detected.
  Rng wrong_rng(161803);
  std::vector<double> wrong(released_values.size());
  for (double& x : wrong) {
    x = kCount + SampleLaplace(wrong_rng, 2.0 / kEpsilon);
  }
  EXPECT_FALSE(testing::KsSameDistribution(released_values, wrong));
}

// Brute-force cross-check on a materializable domain: the sampled release
// must agree IN DISTRIBUTION with adding Lap(1/eps) to every one of the d
// keys and thresholding at the same tau (the construction the paper
// derandomizes). Compared over 3000 repetitions on three statistics:
// released value at a heavy key (KS), mean released-set size, and mean
// spurious-zero-key count.
TEST(SparsePureTest, AgreesWithBruteForceDenseConstruction) {
  const std::uint64_t kDomain = 48;
  const double kEpsilon = 1.0;
  const int kReps = 3000;
  const SparseHistogram truth =
      MustCreate(kDomain, {{3, 30.0}, {11, 25.0}, {20, 40.0}, {47, 28.0}});
  SparsePurePublisher publisher;
  const double tau =
      publisher.Threshold(kDomain, truth.stored_keys(), kEpsilon);

  std::vector<double> sampled_heavy;
  double sampled_size = 0.0;
  double sampled_spurious = 0.0;
  Rng sampled_rng(90210);
  for (int rep = 0; rep < kReps; ++rep) {
    Rng run = sampled_rng.Fork();
    SparsePublishStats stats;
    auto released = publisher.Publish(truth, kEpsilon, run, &stats);
    ASSERT_TRUE(released.ok()) << released.status().ToString();
    EXPECT_NEAR(stats.threshold, tau, 1e-12);
    const double value = released.value().CountFor(20);
    if (value != 0.0) {
      sampled_heavy.push_back(value);
    }
    sampled_size += static_cast<double>(stats.released_keys);
    sampled_spurious += static_cast<double>(stats.spurious_keys);
    // Internal consistency: observed keys split into released and
    // suppressed; everything else released is spurious.
    EXPECT_EQ(stats.released_keys - stats.spurious_keys +
                  stats.suppressed_keys,
              truth.stored_keys());
  }

  std::vector<double> brute_heavy;
  double brute_size = 0.0;
  double brute_spurious = 0.0;
  Rng brute_rng(48151);
  for (int rep = 0; rep < kReps; ++rep) {
    Rng run = brute_rng.Fork();
    for (std::uint64_t key = 0; key < kDomain; ++key) {
      const double noisy =
          truth.CountFor(key) + SampleLaplace(run, 1.0 / kEpsilon);
      if (noisy > tau) {
        brute_size += 1.0;
        if (truth.CountFor(key) == 0.0) {
          brute_spurious += 1.0;
        }
        if (key == 20) {
          brute_heavy.push_back(noisy);
        }
      }
    }
  }

  // The heavy key (count 40, tau ~3.1) is essentially always released on
  // both sides; its value distributions must match.
  ASSERT_EQ(sampled_heavy.size(), static_cast<std::size_t>(kReps));
  ASSERT_EQ(brute_heavy.size(), static_cast<std::size_t>(kReps));
  EXPECT_TRUE(testing::KsSameDistribution(sampled_heavy, brute_heavy));

  // Released-set size: per-rep variance is dominated by the ~Binomial(44,
  // 1/44) spurious term, sigma ~1 per rep, so the difference of two
  // kReps-rep means has sigma ~ sqrt(2)/sqrt(kReps) ~ 0.026. 5 sigma.
  EXPECT_NEAR(sampled_size / kReps, brute_size / kReps, 0.13);
  EXPECT_NEAR(sampled_spurious / kReps, brute_spurious / kReps, 0.13);
}

TEST(SparsePureTest, SpuriousReleasesMatchTailBoundCalibration) {
  // d = 4096, k = 4, s = 1: each of the 4092 zero keys independently
  // clears tau with probability q = s / (d - k), so each publish releases
  // Binomial(4092, 1/4092) spurious keys — mean 1, variance ~1. Over
  // R = 2000 publishes the total is 2000 +- 5 * sqrt(2000) ~ 2000 +- 224.
  const std::uint64_t kDomain = 4096;
  const int kReps = 2000;
  const SparseHistogram truth =
      MustCreate(kDomain, {{1, 50.0}, {100, 60.0}, {2000, 55.0}, {4000, 70.0}});
  SparsePurePublisher publisher;
  Rng rng(55501);
  double total_spurious = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng run = rng.Fork();
    SparsePublishStats stats;
    auto released = publisher.Publish(truth, 1.0, run, &stats);
    ASSERT_TRUE(released.ok()) << released.status().ToString();
    total_spurious += static_cast<double>(stats.spurious_keys);
    // Every spuriously released value sits strictly above tau (it is
    // tau + Exp(eps)), and every released key is in-domain.
    for (const SparseEntry& entry : released.value().entries()) {
      ASSERT_LT(entry.key, kDomain);
      if (truth.CountFor(entry.key) == 0.0) {
        ASSERT_GT(entry.count, stats.threshold);
      }
    }
  }
  EXPECT_NEAR(total_spurious, static_cast<double>(kReps),
              5.0 * std::sqrt(static_cast<double>(kReps)));
}

TEST(SparsePureTest, ExpectedSpuriousOptionScalesTheThreshold) {
  SparsePurePublisher::Options options;
  options.expected_spurious = 8.0;
  SparsePurePublisher publisher(options);
  EXPECT_NEAR(publisher.Threshold(1016, 0, 1.0), std::log(1016.0 / 16.0),
              1e-12);
}

TEST(UnknownDomainTest, ThresholdMatchesClosedForm) {
  UnknownDomainPublisher publisher;  // delta = 1e-9
  EXPECT_NEAR(publisher.Threshold(1.0), 1.0 + std::log(5e8), 1e-9);
  UnknownDomainPublisher::Options options;
  options.delta = 0.05;
  EXPECT_NEAR(UnknownDomainPublisher(options).Threshold(2.0),
              1.0 + std::log(10.0) / 2.0, 1e-12);
}

TEST(UnknownDomainTest, NeverReleasesUnobservedKeys) {
  const SparseHistogram truth =
      MustCreate(1ULL << 40, {{5, 100.0}, {1ULL << 39, 200.0}});
  UnknownDomainPublisher::Options options;
  options.delta = 0.4;  // aggressive delta -> tiny tau, maximal releases
  UnknownDomainPublisher publisher(options);
  Rng rng(777);
  for (int rep = 0; rep < 200; ++rep) {
    Rng run = rng.Fork();
    SparsePublishStats stats;
    auto released = publisher.Publish(truth, 1.0, run, &stats);
    ASSERT_TRUE(released.ok()) << released.status().ToString();
    EXPECT_EQ(stats.spurious_keys, 0u);
    for (const SparseEntry& entry : released.value().entries()) {
      EXPECT_NE(truth.CountFor(entry.key), 0.0)
          << "unobserved key " << entry.key << " released";
    }
  }
}

TEST(UnknownDomainTest, SingleRecordKeyLeaksWithProbabilityDelta) {
  // The (eps, delta) guarantee made empirical: a key with true count 1
  // survives iff 1 + Lap(1/eps) > tau, which the threshold calibrates to
  // exactly delta. 20 single-record keys x 3000 reps = 60000 Bernoulli
  // trials at delta = 0.05: expect 3000 +- 5 * sqrt(60000 * .05 * .95)
  // ~ 3000 +- 267 releases.
  const int kKeys = 20;
  const int kReps = 3000;
  const double kDelta = 0.05;
  std::vector<SparseEntry> entries;
  for (int i = 0; i < kKeys; ++i) {
    entries.push_back({static_cast<std::uint64_t>(i * 1000), 1.0});
  }
  const SparseHistogram truth = MustCreate(1ULL << 30, std::move(entries));
  UnknownDomainPublisher::Options options;
  options.delta = kDelta;
  UnknownDomainPublisher publisher(options);
  Rng rng(424243);
  double leaked = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng run = rng.Fork();
    SparsePublishStats stats;
    auto released = publisher.Publish(truth, 1.0, run, &stats);
    ASSERT_TRUE(released.ok()) << released.status().ToString();
    leaked += static_cast<double>(stats.released_keys);
  }
  const double trials = static_cast<double>(kKeys) * kReps;
  const double expected = trials * kDelta;
  const double sigma = std::sqrt(trials * kDelta * (1.0 - kDelta));
  EXPECT_NEAR(leaked, expected, 5.0 * sigma);
}

TEST(UnknownDomainTest, HeavyKeysAreAlwaysReleased) {
  const SparseHistogram truth = MustCreate(1000, {{7, 500.0}});
  UnknownDomainPublisher publisher;  // tau ~ 21 at eps = 1, count 500
  Rng rng(31337);
  for (int rep = 0; rep < 500; ++rep) {
    Rng run = rng.Fork();
    auto released = publisher.Publish(truth, 1.0, run);
    ASSERT_TRUE(released.ok());
    EXPECT_NE(released.value().CountFor(7), 0.0) << "rep " << rep;
  }
}

TEST(UnknownDomainTest, AccountChargeTracksDelta) {
  UnknownDomainPublisher::Options options;
  options.delta = 1e-6;
  UnknownDomainPublisher publisher(options);
  BudgetAccountant accountant(1.0, 1e-5);
  ASSERT_TRUE(publisher.AccountCharge(accountant, 0.25, "release-1").ok());
  EXPECT_DOUBLE_EQ(accountant.spent_epsilon(), 0.25);
  EXPECT_DOUBLE_EQ(accountant.spent_delta(), 1e-6);
}

TEST(UnknownDomainTest, AccountChargeRefusedWithoutDeltaGrant) {
  UnknownDomainPublisher publisher;  // delta = 1e-9 > 0
  BudgetAccountant pure_only(1.0);   // no delta budget
  const Status status = publisher.AccountCharge(pure_only, 0.25, "release");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(SparsePublisherValidationTest, RejectsInvalidArguments) {
  SparsePurePublisher pure;
  UnknownDomainPublisher unknown;
  const SparseHistogram empty_domain;  // default: domain 0
  const SparseHistogram valid = MustCreate(100, {{1, 2.0}});
  Rng rng(1);
  for (const SparseHistogramPublisher* publisher :
       {static_cast<const SparseHistogramPublisher*>(&pure),
        static_cast<const SparseHistogramPublisher*>(&unknown)}) {
    auto no_domain = publisher->Publish(empty_domain, 1.0, rng);
    ASSERT_FALSE(no_domain.ok()) << publisher->name();
    EXPECT_EQ(no_domain.status().code(), StatusCode::kInvalidArgument);
    auto zero_eps = publisher->Publish(valid, 0.0, rng);
    ASSERT_FALSE(zero_eps.ok()) << publisher->name();
    EXPECT_EQ(zero_eps.status().code(), StatusCode::kInvalidArgument);
    auto negative_eps = publisher->Publish(valid, -1.0, rng);
    ASSERT_FALSE(negative_eps.ok()) << publisher->name();
    EXPECT_EQ(negative_eps.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(UnknownDomainTest, RejectsOutOfRangeDelta) {
  for (const double delta : {0.0, -0.1, 0.6, 1.0}) {
    UnknownDomainPublisher::Options options;
    options.delta = delta;
    UnknownDomainPublisher publisher(options);
    const SparseHistogram truth = MustCreate(100, {{1, 2.0}});
    Rng rng(2);
    auto released = publisher.Publish(truth, 1.0, rng);
    ASSERT_FALSE(released.ok()) << "delta " << delta;
    EXPECT_EQ(released.status().code(), StatusCode::kInvalidArgument);
  }
}

// The determinism contract: a publish with a given seed produces the exact
// same bytes whether it runs on the main thread or inside a worker of a
// wide pool, and whether DPHIST_THREADS is 1 or 4 — the sparse publishers
// draw from the caller's Rng alone, so thread count cannot perturb them.
TEST(SparseDeterminismTest, PublishIsBitwiseIdenticalAcrossThreadCounts) {
  const SparseHistogram truth = MustCreate(
      1ULL << 40, {{9, 35.0}, {1000, 40.0}, {1ULL << 35, 28.0}});
  SparsePurePublisher pure;
  UnknownDomainPublisher unknown;
  for (const SparseHistogramPublisher* publisher :
       {static_cast<const SparseHistogramPublisher*>(&pure),
        static_cast<const SparseHistogramPublisher*>(&unknown)}) {
    Rng reference_rng(6061);
    auto reference = publisher->Publish(truth, 1.0, reference_rng);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const std::uint64_t reference_fp =
        FingerprintSparseHistogram(reference.value());
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      ThreadPool pool(threads);
      std::vector<std::uint64_t> fingerprints(8, 0);
      pool.ParallelFor(0, fingerprints.size(), [&](std::size_t i) {
        Rng run(6061);
        auto released = publisher->Publish(truth, 1.0, run);
        fingerprints[i] =
            released.ok() ? FingerprintSparseHistogram(released.value()) : 0;
      });
      for (const std::uint64_t fp : fingerprints) {
        EXPECT_EQ(fp, reference_fp)
            << publisher->name() << " with " << threads << " threads";
      }
    }
  }
}

}  // namespace
}  // namespace sparse
}  // namespace dphist
