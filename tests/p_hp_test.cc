#include "dphist/algorithms/p_hp.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

Histogram TwoPlateaus(std::size_t n) {
  std::vector<double> counts(n, 5.0);
  for (std::size_t i = n / 2; i < n; ++i) {
    counts[i] = 500.0;
  }
  return Histogram(std::move(counts));
}

TEST(PHPartitionTest, Name) { EXPECT_EQ(PHPartition().name(), "p_hp"); }

TEST(PHPartitionTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(PHPartition().Publish(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(PHPartition().Publish(Histogram({1.0}), 0.0, rng).ok());
  PHPartition::Options options;
  options.structure_budget_ratio = 1.5;
  EXPECT_FALSE(
      PHPartition(options).Publish(Histogram({1.0, 2.0}), 1.0, rng).ok());
}

TEST(PHPartitionTest, PreservesSizeAndDeterminism) {
  PHPartition algo;
  const Histogram truth = TwoPlateaus(48);
  Rng a(2);
  Rng b(2);
  auto out_a = algo.Publish(truth, 1.0, a);
  auto out_b = algo.Publish(truth, 1.0, b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(out_a.value().size(), truth.size());
  EXPECT_EQ(out_a.value().counts(), out_b.value().counts());
}

TEST(PHPartitionTest, BucketCountIsPowerOfTwo) {
  PHPartition::Options options;
  options.num_buckets = 12;  // rounds down to 8
  PHPartition algo(options);
  const Histogram truth = TwoPlateaus(64);
  Rng rng(3);
  PHPartition::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(details.num_buckets, 8u);
  EXPECT_EQ(details.levels, 3u);
  EXPECT_EQ(details.cuts.size(), 7u);
}

TEST(PHPartitionTest, SingleBucketSpendsEverythingOnCounts) {
  PHPartition::Options options;
  options.num_buckets = 1;
  PHPartition algo(options);
  const Histogram truth = TwoPlateaus(16);
  Rng rng(4);
  PHPartition::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(details.num_buckets, 1u);
  EXPECT_DOUBLE_EQ(details.structure_epsilon, 0.0);
  EXPECT_DOUBLE_EQ(details.count_epsilon, 1.0);
}

TEST(PHPartitionTest, BudgetSplitsSumToEpsilon) {
  PHPartition::Options options;
  options.num_buckets = 8;
  options.structure_budget_ratio = 0.4;
  PHPartition algo(options);
  const Histogram truth = TwoPlateaus(64);
  Rng rng(5);
  PHPartition::Details details;
  auto out = algo.PublishWithDetails(truth, 2.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(details.structure_epsilon, 0.8, 1e-12);
  EXPECT_NEAR(details.count_epsilon, 1.2, 1e-12);
}

TEST(PHPartitionTest, HighBudgetFindsTheStep) {
  // With a huge budget, the first bisection must land exactly on the
  // plateau boundary (the only zero-cost split).
  PHPartition::Options options;
  options.num_buckets = 2;
  PHPartition algo(options);
  const std::size_t n = 32;
  const Histogram truth = TwoPlateaus(n);
  Rng rng(6);
  PHPartition::Details details;
  auto out = algo.PublishWithDetails(truth, 10000.0, rng, &details);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(details.cuts.size(), 1u);
  EXPECT_EQ(details.cuts[0], n / 2);
}

TEST(PHPartitionTest, HandlesTinyDomains) {
  PHPartition algo;
  Rng rng(7);
  for (std::size_t n : {1u, 2u, 3u}) {
    const Histogram truth(std::vector<double>(n, 4.0));
    auto out = algo.Publish(truth, 1.0, rng);
    ASSERT_TRUE(out.ok()) << n;
    EXPECT_EQ(out.value().size(), n);
  }
}

TEST(PHPartitionTest, BeatsDworkOnPlateauDataAtSmallEpsilon) {
  PHPartition::Options options;
  options.num_buckets = 4;
  PHPartition algo(options);
  const std::size_t n = 128;
  const Histogram truth = TwoPlateaus(n);
  const double epsilon = 0.02;
  Rng rng(8);
  double php_sq = 0.0;
  const int reps = 40;
  for (int rep = 0; rep < reps; ++rep) {
    auto out = algo.Publish(truth, epsilon, rng);
    ASSERT_TRUE(out.ok());
    for (std::size_t i = 0; i < n; ++i) {
      const double d = out.value().count(i) - truth.count(i);
      php_sq += d * d;
    }
  }
  const double php_mse = php_sq / (reps * static_cast<double>(n));
  const double dwork_mse = 2.0 / (epsilon * epsilon);
  EXPECT_LT(php_mse, dwork_mse * 0.5);
}

TEST(PHPartitionTest, ClampNonNegative) {
  PHPartition::Options options;
  options.clamp_nonnegative = true;
  options.num_buckets = 4;
  PHPartition algo(options);
  const Histogram truth(std::vector<double>(64, 0.0));
  Rng rng(9);
  auto out = algo.Publish(truth, 0.05, rng);
  ASSERT_TRUE(out.ok());
  for (double v : out.value().counts()) {
    EXPECT_GE(v, 0.0);
  }
}

}  // namespace
}  // namespace dphist
