// Publisher contract sweep: every built-in algorithm must satisfy the
// HistogramPublisher contract on every dataset shape — size preservation,
// determinism under a fixed seed, finite outputs, argument validation —
// regardless of its internal machinery. Parameterized over (publisher,
// dataset) so a new algorithm or generator is automatically covered.

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/algorithms/registry.h"
#include "dphist/data/generators.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

Dataset DatasetByName(const std::string& name) {
  if (name == "age") {
    return MakeAge(1);
  }
  if (name == "nettrace") {
    return MakeNetTrace(128, 2);
  }
  if (name == "searchlogs") {
    return MakeSearchLogs(128, 3);
  }
  if (name == "social") {
    return MakeSocialNetwork(128, 4);
  }
  if (name == "uniform") {
    return MakeUniform(64, 25.0, 5);
  }
  if (name == "piecewise") {
    return MakePiecewiseConstant(96, 4, 500.0, 6);
  }
  // Edge shapes.
  Dataset d;
  d.name = name;
  if (name == "single_bin") {
    d.histogram = Histogram({42.0});
  } else if (name == "all_zero") {
    d.histogram = Histogram(std::vector<double>(32, 0.0));
  } else if (name == "one_spike") {
    std::vector<double> counts(33, 0.0);  // non-power-of-two on purpose
    counts[17] = 100000.0;
    d.histogram = Histogram(std::move(counts));
  }
  return d;
}

class PublisherContract
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
 protected:
  std::unique_ptr<HistogramPublisher> MakePublisher() {
    auto made = PublisherRegistry::Make(std::get<0>(GetParam()));
    EXPECT_TRUE(made.ok());
    return std::move(made).value();
  }

  Histogram Truth() {
    return DatasetByName(std::get<1>(GetParam())).histogram;
  }
};

TEST_P(PublisherContract, PreservesDomainSize) {
  auto publisher = MakePublisher();
  const Histogram truth = Truth();
  Rng rng(100);
  auto out = publisher->Publish(truth, 0.5, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), truth.size());
}

TEST_P(PublisherContract, DeterministicUnderFixedSeed) {
  auto publisher = MakePublisher();
  const Histogram truth = Truth();
  Rng a(200);
  Rng b(200);
  auto out_a = publisher->Publish(truth, 0.3, a);
  auto out_b = publisher->Publish(truth, 0.3, b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(out_a.value().counts(), out_b.value().counts());
}

TEST_P(PublisherContract, OutputsAreFinite) {
  auto publisher = MakePublisher();
  const Histogram truth = Truth();
  for (double epsilon : {0.01, 1.0, 100.0}) {
    Rng rng(300 + static_cast<std::uint64_t>(epsilon * 10));
    auto out = publisher->Publish(truth, epsilon, rng);
    ASSERT_TRUE(out.ok());
    for (double v : out.value().counts()) {
      EXPECT_TRUE(std::isfinite(v)) << "epsilon=" << epsilon;
    }
  }
}

TEST_P(PublisherContract, RejectsInvalidArguments) {
  auto publisher = MakePublisher();
  Rng rng(400);
  EXPECT_FALSE(publisher->Publish(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(publisher->Publish(Truth(), 0.0, rng).ok());
  EXPECT_FALSE(publisher->Publish(Truth(), -1.0, rng).ok());
}

TEST_P(PublisherContract, ActuallyPerturbs) {
  // A DP release that returns the exact input at small epsilon is a red
  // flag; check the output differs from the truth in at least one of a
  // few runs. (A single run can legitimately coincide: e.g. AHP on the
  // all-zero histogram thresholds everything and clamps the one cluster
  // mean at zero about half the time.)
  auto publisher = MakePublisher();
  const Histogram truth = Truth();
  bool perturbed = false;
  for (std::uint64_t seed = 500; seed < 510 && !perturbed; ++seed) {
    Rng rng(seed);
    auto out = publisher->Publish(truth, 0.1, rng);
    ASSERT_TRUE(out.ok());
    perturbed = out.value().counts() != truth.counts();
  }
  EXPECT_TRUE(perturbed);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, PublisherContract,
    ::testing::Combine(
        ::testing::Values("dwork", "boost", "privelet", "noise_first",
                          "structure_first", "geometric", "efpa", "mwem",
                          "p_hp", "ahp", "gs"),
        ::testing::Values("age", "nettrace", "searchlogs", "social",
                          "uniform", "piecewise", "single_bin", "all_zero",
                          "one_spike")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) {
      return std::get<0>(info.param) + "_on_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace dphist
