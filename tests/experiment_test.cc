#include "dphist/bench_util/experiment.h"

#include <vector>

#include <gtest/gtest.h>

#include "dphist/algorithms/identity_laplace.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(AggregateTest, EmptySamples) {
  const Aggregate agg = ComputeAggregate({});
  EXPECT_EQ(agg.repetitions, 0u);
  EXPECT_DOUBLE_EQ(agg.mean, 0.0);
  EXPECT_DOUBLE_EQ(agg.std_error, 0.0);
}

TEST(AggregateTest, SingleSample) {
  const Aggregate agg = ComputeAggregate({4.0});
  EXPECT_EQ(agg.repetitions, 1u);
  EXPECT_DOUBLE_EQ(agg.mean, 4.0);
  EXPECT_DOUBLE_EQ(agg.std_error, 0.0);
}

TEST(AggregateTest, KnownMeanAndStdError) {
  const Aggregate agg = ComputeAggregate({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(agg.mean, 2.5);
  // Sample variance = 5/3; stderr = sqrt(5/3/4).
  EXPECT_NEAR(agg.std_error, 0.6454972244, 1e-9);
}

TEST(RunCellTest, RejectsZeroRepetitions) {
  IdentityLaplace algo;
  const Histogram truth({1.0, 2.0});
  auto cell = RunCell(algo, truth, {{0, 1}}, 1.0, 0, 1);
  EXPECT_FALSE(cell.ok());
}

TEST(RunCellTest, ProducesFiniteStatistics) {
  IdentityLaplace algo;
  const Histogram truth({10.0, 20.0, 30.0, 40.0});
  Rng rng(1);
  auto queries = RandomRangeWorkload(4, 50, rng);
  ASSERT_TRUE(queries.ok());
  auto cell = RunCell(algo, truth, queries.value(), 1.0, 20, 42);
  ASSERT_TRUE(cell.ok());
  EXPECT_EQ(cell.value().workload_mae.repetitions, 20u);
  EXPECT_GT(cell.value().workload_mae.mean, 0.0);
  EXPECT_GT(cell.value().workload_mse.mean, 0.0);
  EXPECT_GE(cell.value().kl_divergence.mean, 0.0);
  EXPECT_GT(cell.value().publish_ms.mean, 0.0);
}

TEST(RunCellTest, DeterministicGivenSeed) {
  IdentityLaplace algo;
  const Histogram truth({10.0, 20.0, 30.0, 40.0});
  Rng rng(2);
  auto queries = RandomRangeWorkload(4, 20, rng);
  ASSERT_TRUE(queries.ok());
  auto a = RunCell(algo, truth, queries.value(), 0.5, 10, 7);
  auto b = RunCell(algo, truth, queries.value(), 0.5, 10, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().workload_mae.mean, b.value().workload_mae.mean);
  EXPECT_DOUBLE_EQ(a.value().kl_divergence.mean,
                   b.value().kl_divergence.mean);
}

TEST(RunCellTest, ErrorShrinksWithEpsilon) {
  IdentityLaplace algo;
  const Histogram truth(std::vector<double>(64, 100.0));
  Rng rng(3);
  auto queries = RandomRangeWorkload(64, 100, rng);
  ASSERT_TRUE(queries.ok());
  auto weak = RunCell(algo, truth, queries.value(), 0.01, 20, 9);
  auto strong = RunCell(algo, truth, queries.value(), 1.0, 20, 9);
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(strong.ok());
  EXPECT_GT(weak.value().workload_mae.mean,
            strong.value().workload_mae.mean * 10.0);
}

}  // namespace
}  // namespace dphist
