// Options fuzzing: random (valid) option combinations on random data must
// never crash, always preserve the contract, and never emit non-finite
// values. This guards option interactions that the targeted tests do not
// enumerate (e.g. tiny domains with big grid steps, extreme ratios).

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/algorithms/ahp.h"
#include "dphist/algorithms/boost_tree.h"
#include "dphist/algorithms/efpa.h"
#include "dphist/algorithms/grouping_smoothing.h"
#include "dphist/algorithms/mwem.h"
#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/p_hp.h"
#include "dphist/algorithms/privelet.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

Histogram RandomHistogram(Rng& rng) {
  const std::size_t n =
      static_cast<std::size_t>(SampleUniformInt(rng, 1, 96));
  std::vector<double> counts(n);
  for (double& c : counts) {
    c = static_cast<double>(SampleUniformInt(rng, 0, 2000));
  }
  return Histogram(std::move(counts));
}

double RandomEpsilon(Rng& rng) {
  // Log-uniform over [1e-3, 10].
  const double u = SampleUniformDouble(rng);
  return std::pow(10.0, -3.0 + 4.0 * u);
}

void CheckRelease(const HistogramPublisher& publisher,
                  const Histogram& truth, double epsilon, Rng& rng) {
  auto out = publisher.Publish(truth, epsilon, rng);
  ASSERT_TRUE(out.ok()) << publisher.name() << " n=" << truth.size()
                        << " eps=" << epsilon << ": "
                        << out.status().ToString();
  ASSERT_EQ(out.value().size(), truth.size()) << publisher.name();
  for (double v : out.value().counts()) {
    ASSERT_TRUE(std::isfinite(v)) << publisher.name();
  }
}

TEST(OptionsFuzzTest, NoiseFirst) {
  Rng rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    const Histogram truth = RandomHistogram(rng);
    NoiseFirst::Options options;
    options.max_buckets =
        static_cast<std::size_t>(SampleUniformInt(rng, 0, 200));
    options.fixed_buckets =
        static_cast<std::size_t>(SampleUniformInt(rng, 0, 150));
    options.grid_step =
        static_cast<std::size_t>(SampleUniformInt(rng, 0, 16));
    options.clamp_nonnegative = (rng.NextUint64() & 1) != 0;
    options.bias_corrected_selection = (rng.NextUint64() & 1) != 0;
    CheckRelease(NoiseFirst(options), truth, RandomEpsilon(rng), rng);
  }
}

TEST(OptionsFuzzTest, StructureFirst) {
  Rng rng(102);
  for (int trial = 0; trial < 60; ++trial) {
    const Histogram truth = RandomHistogram(rng);
    StructureFirst::Options options;
    options.num_buckets =
        static_cast<std::size_t>(SampleUniformInt(rng, 0, 150));
    options.max_buckets_considered =
        static_cast<std::size_t>(SampleUniformInt(rng, 0, 64));
    options.k_selection_ratio = 0.05 + 0.9 * SampleUniformDouble(rng);
    options.structure_budget_ratio = 0.05 + 0.9 * SampleUniformDouble(rng);
    options.cost_kind = (rng.NextUint64() & 1) != 0 ? CostKind::kAbsolute
                                                    : CostKind::kSquared;
    options.count_cap =
        static_cast<double>(SampleUniformInt(rng, 1, 5000));
    options.grid_step =
        static_cast<std::size_t>(SampleUniformInt(rng, 0, 16));
    options.clamp_nonnegative = (rng.NextUint64() & 1) != 0;
    CheckRelease(StructureFirst(options), truth, RandomEpsilon(rng), rng);
  }
}

TEST(OptionsFuzzTest, BoostTree) {
  Rng rng(103);
  for (int trial = 0; trial < 60; ++trial) {
    const Histogram truth = RandomHistogram(rng);
    BoostTree::Options options;
    options.fanout = static_cast<std::size_t>(SampleUniformInt(rng, 2, 17));
    options.clamp_nonnegative = (rng.NextUint64() & 1) != 0;
    CheckRelease(BoostTree(options), truth, RandomEpsilon(rng), rng);
  }
}

TEST(OptionsFuzzTest, PriveletAndGs) {
  Rng rng(104);
  for (int trial = 0; trial < 60; ++trial) {
    const Histogram truth = RandomHistogram(rng);
    Privelet::Options wavelet_options;
    wavelet_options.clamp_nonnegative = (rng.NextUint64() & 1) != 0;
    CheckRelease(Privelet(wavelet_options), truth, RandomEpsilon(rng), rng);

    GroupingSmoothing::Options gs_options;
    gs_options.group_size =
        static_cast<std::size_t>(SampleUniformInt(rng, 1, 128));
    CheckRelease(GroupingSmoothing(gs_options), truth, RandomEpsilon(rng),
                 rng);
  }
}

TEST(OptionsFuzzTest, EfpaAndPhp) {
  Rng rng(105);
  for (int trial = 0; trial < 60; ++trial) {
    const Histogram truth = RandomHistogram(rng);
    Efpa::Options efpa_options;
    efpa_options.fixed_coefficients =
        static_cast<std::size_t>(SampleUniformInt(rng, 0, 80));
    efpa_options.selection_budget_ratio =
        0.05 + 0.9 * SampleUniformDouble(rng);
    CheckRelease(Efpa(efpa_options), truth, RandomEpsilon(rng), rng);

    PHPartition::Options php_options;
    php_options.num_buckets =
        static_cast<std::size_t>(SampleUniformInt(rng, 0, 128));
    php_options.structure_budget_ratio =
        0.05 + 0.9 * SampleUniformDouble(rng);
    CheckRelease(PHPartition(php_options), truth, RandomEpsilon(rng), rng);
  }
}

TEST(OptionsFuzzTest, MwemAndAhp) {
  Rng rng(106);
  for (int trial = 0; trial < 40; ++trial) {
    const Histogram truth = RandomHistogram(rng);
    Mwem::Options mwem_options;
    mwem_options.iterations =
        static_cast<std::size_t>(SampleUniformInt(rng, 1, 25));
    mwem_options.default_workload_size =
        static_cast<std::size_t>(SampleUniformInt(rng, 1, 100));
    mwem_options.total_budget_ratio =
        0.05 + 0.9 * SampleUniformDouble(rng);
    CheckRelease(Mwem(mwem_options), truth, RandomEpsilon(rng), rng);

    Ahp::Options ahp_options;
    ahp_options.structure_budget_ratio =
        0.05 + 0.9 * SampleUniformDouble(rng);
    ahp_options.cluster_tolerance_scale =
        0.1 + 10.0 * SampleUniformDouble(rng);
    ahp_options.threshold_small_counts = (rng.NextUint64() & 1) != 0;
    CheckRelease(Ahp(ahp_options), truth, RandomEpsilon(rng), rng);
  }
}

}  // namespace
}  // namespace dphist
