#include "dphist/algorithms/identity_geometric.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(IdentityGeometricTest, Name) {
  EXPECT_EQ(IdentityGeometric().name(), "geometric");
}

TEST(IdentityGeometricTest, RejectsBadArguments) {
  IdentityGeometric algo;
  Rng rng(1);
  EXPECT_FALSE(algo.Publish(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(algo.Publish(Histogram({1.0}), 0.0, rng).ok());
}

TEST(IdentityGeometricTest, OutputsAreIntegers) {
  IdentityGeometric algo;
  const Histogram truth({10.0, 20.5, 30.2, 0.0});  // fractional rounded
  Rng rng(2);
  auto out = algo.Publish(truth, 0.5, rng);
  ASSERT_TRUE(out.ok());
  for (double v : out.value().counts()) {
    EXPECT_DOUBLE_EQ(v, std::nearbyint(v));
  }
}

TEST(IdentityGeometricTest, DeterministicGivenSeed) {
  IdentityGeometric algo;
  const Histogram truth({5.0, 10.0, 15.0});
  Rng a(3);
  Rng b(3);
  auto out_a = algo.Publish(truth, 1.0, a);
  auto out_b = algo.Publish(truth, 1.0, b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(out_a.value().counts(), out_b.value().counts());
}

TEST(IdentityGeometricTest, VarianceMatchesMechanism) {
  IdentityGeometric algo;
  const double epsilon = 1.0;
  const Histogram truth(std::vector<double>(32, 100.0));
  Rng rng(4);
  double sq = 0.0;
  const int reps = 3000;
  for (int rep = 0; rep < reps; ++rep) {
    auto out = algo.Publish(truth, epsilon, rng);
    ASSERT_TRUE(out.ok());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      const double d = out.value().count(i) - 100.0;
      sq += d * d;
    }
  }
  const double mse = sq / (reps * 32.0);
  const double alpha = std::exp(-epsilon);
  const double expected = 2.0 * alpha / ((1 - alpha) * (1 - alpha));
  EXPECT_NEAR(mse, expected, 0.05 * expected);
}

TEST(IdentityGeometricTest, ComparableAccuracyToLaplace) {
  // The geometric mechanism's variance 2a/(1-a)^2 is slightly below the
  // Laplace 2/eps^2 at the same epsilon.
  const double epsilon = 0.5;
  const double alpha = std::exp(-epsilon);
  const double geometric_var = 2.0 * alpha / ((1 - alpha) * (1 - alpha));
  const double laplace_var = 2.0 / (epsilon * epsilon);
  EXPECT_LT(geometric_var, laplace_var);
  EXPECT_GT(geometric_var, laplace_var * 0.8);
}

}  // namespace
}  // namespace dphist
