#include "dphist/algorithms/mwem.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/metrics/metrics.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

Histogram TwoBlocks(std::size_t n) {
  std::vector<double> counts(n, 0.0);
  for (std::size_t i = 0; i < n / 2; ++i) {
    counts[i] = 100.0;
  }
  for (std::size_t i = n / 2; i < n; ++i) {
    counts[i] = 10.0;
  }
  return Histogram(std::move(counts));
}

TEST(MwemTest, Name) { EXPECT_EQ(Mwem().name(), "mwem"); }

TEST(MwemTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(Mwem().Publish(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(Mwem().Publish(Histogram({1.0}), 0.0, rng).ok());
  Mwem::Options zero_iters;
  zero_iters.iterations = 0;
  EXPECT_FALSE(
      Mwem(zero_iters).Publish(Histogram({1.0, 2.0}), 1.0, rng).ok());
  Mwem::Options bad_ratio;
  bad_ratio.total_budget_ratio = 0.0;
  EXPECT_FALSE(
      Mwem(bad_ratio).Publish(Histogram({1.0, 2.0}), 1.0, rng).ok());
  Mwem::Options bad_workload;
  bad_workload.workload = {{0, 100}};
  EXPECT_FALSE(
      Mwem(bad_workload).Publish(Histogram({1.0, 2.0}), 1.0, rng).ok());
}

TEST(MwemTest, PreservesSizeAndDeterminism) {
  Mwem algo;
  const Histogram truth = TwoBlocks(32);
  Rng a(2);
  Rng b(2);
  auto out_a = algo.Publish(truth, 1.0, a);
  auto out_b = algo.Publish(truth, 1.0, b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(out_a.value().size(), truth.size());
  EXPECT_EQ(out_a.value().counts(), out_b.value().counts());
}

TEST(MwemTest, OutputIsNonNegativeAndMassMatchesNoisyTotal) {
  Mwem algo;
  const Histogram truth = TwoBlocks(64);
  Rng rng(3);
  Mwem::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  double mass = 0.0;
  for (double v : out.value().counts()) {
    EXPECT_GE(v, 0.0);
    mass += v;
  }
  EXPECT_NEAR(mass, details.noisy_total, 1e-6);
  EXPECT_NEAR(details.noisy_total, truth.Total(), 100.0);
}

TEST(MwemTest, RunsOneSelectionPerIteration) {
  Mwem::Options options;
  options.iterations = 7;
  Mwem algo(options);
  const Histogram truth = TwoBlocks(32);
  Rng rng(4);
  Mwem::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(details.selected_queries.size(), 7u);
}

TEST(MwemTest, ImprovesOverUniformOnItsWorkload) {
  // MWEM's contract: after T rounds the synthetic histogram answers the
  // workload better than the uniform initialization it started from.
  const std::size_t n = 64;
  const Histogram truth = TwoBlocks(n);
  Rng workload_rng(5);
  auto queries = RandomRangeWorkload(n, 100, workload_rng);
  ASSERT_TRUE(queries.ok());
  Mwem::Options options;
  options.workload = queries.value();
  options.iterations = 20;
  Mwem algo(options);

  const Histogram uniform(
      std::vector<double>(n, truth.Total() / static_cast<double>(n)));
  auto uniform_error = EvaluateWorkload(truth, uniform, queries.value());
  ASSERT_TRUE(uniform_error.ok());

  Rng rng(6);
  double mwem_mae = 0.0;
  const int reps = 10;
  for (int rep = 0; rep < reps; ++rep) {
    Rng run = rng.Fork();
    auto out = algo.Publish(truth, 1.0, run);
    ASSERT_TRUE(out.ok());
    auto error = EvaluateWorkload(truth, out.value(), queries.value());
    ASSERT_TRUE(error.ok());
    mwem_mae += error.value().mean_absolute;
  }
  mwem_mae /= reps;
  EXPECT_LT(mwem_mae, uniform_error.value().mean_absolute * 0.8);
}

TEST(MwemTest, GeneratesWorkloadWhenNoneProvided) {
  Mwem::Options options;
  options.default_workload_size = 50;
  Mwem algo(options);
  const Histogram truth = TwoBlocks(16);
  Rng rng(7);
  auto out = algo.Publish(truth, 1.0, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 16u);
}

TEST(MwemTest, MoreIterationsHelpOnStructuredData) {
  const std::size_t n = 64;
  const Histogram truth = TwoBlocks(n);
  Rng workload_rng(8);
  auto queries = RandomRangeWorkload(n, 100, workload_rng);
  ASSERT_TRUE(queries.ok());

  auto run_mwem = [&](std::size_t iterations) {
    Mwem::Options options;
    options.workload = queries.value();
    options.iterations = iterations;
    Mwem algo(options);
    Rng rng(9);
    double total_mae = 0.0;
    const int reps = 10;
    for (int rep = 0; rep < reps; ++rep) {
      Rng run = rng.Fork();
      auto out = algo.Publish(truth, 2.0, run);
      EXPECT_TRUE(out.ok());
      auto error = EvaluateWorkload(truth, out.value(), queries.value());
      EXPECT_TRUE(error.ok());
      total_mae += error.value().mean_absolute;
    }
    return total_mae / reps;
  };
  // One round barely moves the uniform start; twenty rounds should.
  EXPECT_LT(run_mwem(20), run_mwem(1));
}

}  // namespace
}  // namespace dphist
