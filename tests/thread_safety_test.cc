// Concurrency contract: publishers are immutable after construction
// (Publish is const and all randomness flows through the caller's Rng), so
// one instance may be shared across threads, each with its own generator.
// These tests run the same publisher concurrently and check the results
// are exactly the ones sequential execution produces.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/registry.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/common/thread_pool.h"
#include "dphist/data/generators.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(ThreadSafetyTest, SharedPublisherConcurrentPublishes) {
  const Dataset dataset = MakeSearchLogs(128, 1);
  const auto publishers = PublisherRegistry::MakeAll();
  constexpr int kThreads = 8;

  for (const auto& publisher : publishers) {
    // Sequential reference: one release per seed.
    std::vector<std::vector<double>> expected(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      auto out = publisher->Publish(dataset.histogram, 0.5, rng);
      ASSERT_TRUE(out.ok()) << publisher->name();
      expected[t] = out.value().counts();
    }
    // Concurrent: same seeds, shared publisher instance.
    std::vector<std::vector<double>> actual(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        Rng rng(1000 + static_cast<std::uint64_t>(t));
        auto out = publisher->Publish(dataset.histogram, 0.5, rng);
        if (out.ok()) {
          actual[t] = out.value().counts();
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(actual[t], expected[t])
          << publisher->name() << " thread " << t;
    }
  }
}

TEST(ThreadSafetyTest, SharedPublisherConcurrentWithInternalPool) {
  // The concurrency contract must survive publishers that themselves use
  // the global ThreadPool: at n=512 with grid_step 1 the v-opt rows
  // exceed the parallel threshold, so every Publish below fans row work
  // into the shared pool while eight external threads submit concurrently
  // (and, when the global pool has workers, nested ParallelFor calls run
  // inline on them). Results must still be exactly the sequential ones.
  const Dataset dataset = MakeSearchLogs(512, 3);
  NoiseFirst::Options nf_options;
  nf_options.grid_step = 1;
  const NoiseFirst noise_first(nf_options);
  StructureFirst::Options sf_options;
  sf_options.grid_step = 1;
  const StructureFirst structure_first(sf_options);
  const std::vector<const HistogramPublisher*> publishers = {
      &noise_first, &structure_first};
  constexpr int kThreads = 8;

  for (const HistogramPublisher* publisher : publishers) {
    std::vector<std::vector<double>> expected(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      Rng rng(4000 + static_cast<std::uint64_t>(t));
      auto out = publisher->Publish(dataset.histogram, 0.5, rng);
      ASSERT_TRUE(out.ok()) << publisher->name();
      expected[t] = out.value().counts();
    }
    std::vector<std::vector<double>> actual(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        Rng rng(4000 + static_cast<std::uint64_t>(t));
        auto out = publisher->Publish(dataset.histogram, 0.5, rng);
        if (out.ok()) {
          actual[t] = out.value().counts();
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(actual[t], expected[t])
          << publisher->name() << " thread " << t;
    }
  }
}

TEST(ThreadSafetyTest, GlobalPoolServesConcurrentSubmitters) {
  // Many threads driving ThreadPool::Global() at once models the parallel
  // RunCell + parallel publisher composition; each submitter's loop must
  // see exactly its own work completed.
  constexpr int kSubmitters = 8;
  std::vector<double> totals(kSubmitters, 0.0);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&totals, s]() {
      std::vector<double> slots(500, 0.0);
      ThreadPool::Global().ParallelFor(0, slots.size(),
                                       [&slots](std::size_t i) {
                                         slots[i] = static_cast<double>(i);
                                       });
      double total = 0.0;
      for (double v : slots) {
        total += v;
      }
      totals[s] = total;
    });
  }
  for (std::thread& thread : submitters) {
    thread.join();
  }
  for (double total : totals) {
    EXPECT_DOUBLE_EQ(total, 499.0 * 500.0 / 2.0);
  }
}

TEST(ThreadSafetyTest, ConstHistogramSharedAcrossThreads) {
  // Histogram's lazy prefix table is mutable; hammer RangeSum from many
  // threads after a single-threaded warm-up (the documented safe pattern:
  // warm the prefix before sharing, or share only after const use began).
  const Dataset dataset = MakeAge(2);
  const Histogram& histogram = dataset.histogram;
  const double expected_total = histogram.Total();  // warm the prefix
  std::vector<std::thread> threads;
  std::vector<double> totals(8, 0.0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      double local = 0.0;
      for (int rep = 0; rep < 1000; ++rep) {
        local = histogram.RangeSumUnchecked(0, histogram.size());
      }
      totals[t] = local;
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (double total : totals) {
    EXPECT_DOUBLE_EQ(total, expected_total);
  }
}

}  // namespace
}  // namespace dphist
