// Concurrency contract: publishers are immutable after construction
// (Publish is const and all randomness flows through the caller's Rng), so
// one instance may be shared across threads, each with its own generator.
// These tests run the same publisher concurrently and check the results
// are exactly the ones sequential execution produces.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/registry.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/common/thread_pool.h"
#include "dphist/data/generators.h"
#include "dphist/hist/histogram.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"
#include "dphist/serve/budget_ledger.h"
#include "dphist/serve/release_cache.h"
#include "dphist/serve/release_server.h"

namespace dphist {
namespace {

TEST(ThreadSafetyTest, SharedPublisherConcurrentPublishes) {
  const Dataset dataset = MakeSearchLogs(128, 1);
  const auto publishers = PublisherRegistry::MakeAll();
  constexpr int kThreads = 8;

  for (const auto& publisher : publishers) {
    // Sequential reference: one release per seed.
    std::vector<std::vector<double>> expected(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      auto out = publisher->Publish(dataset.histogram, 0.5, rng);
      ASSERT_TRUE(out.ok()) << publisher->name();
      expected[t] = out.value().counts();
    }
    // Concurrent: same seeds, shared publisher instance.
    std::vector<std::vector<double>> actual(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        Rng rng(1000 + static_cast<std::uint64_t>(t));
        auto out = publisher->Publish(dataset.histogram, 0.5, rng);
        if (out.ok()) {
          actual[t] = out.value().counts();
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(actual[t], expected[t])
          << publisher->name() << " thread " << t;
    }
  }
}

TEST(ThreadSafetyTest, SharedPublisherConcurrentWithInternalPool) {
  // The concurrency contract must survive publishers that themselves use
  // the global ThreadPool: at n=512 with grid_step 1 the v-opt rows
  // exceed the parallel threshold, so every Publish below fans row work
  // into the shared pool while eight external threads submit concurrently
  // (and, when the global pool has workers, nested ParallelFor calls run
  // inline on them). Results must still be exactly the sequential ones.
  const Dataset dataset = MakeSearchLogs(512, 3);
  NoiseFirst::Options nf_options;
  nf_options.grid_step = 1;
  const NoiseFirst noise_first(nf_options);
  StructureFirst::Options sf_options;
  sf_options.grid_step = 1;
  const StructureFirst structure_first(sf_options);
  const std::vector<const HistogramPublisher*> publishers = {
      &noise_first, &structure_first};
  constexpr int kThreads = 8;

  for (const HistogramPublisher* publisher : publishers) {
    std::vector<std::vector<double>> expected(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      Rng rng(4000 + static_cast<std::uint64_t>(t));
      auto out = publisher->Publish(dataset.histogram, 0.5, rng);
      ASSERT_TRUE(out.ok()) << publisher->name();
      expected[t] = out.value().counts();
    }
    std::vector<std::vector<double>> actual(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        Rng rng(4000 + static_cast<std::uint64_t>(t));
        auto out = publisher->Publish(dataset.histogram, 0.5, rng);
        if (out.ok()) {
          actual[t] = out.value().counts();
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(actual[t], expected[t])
          << publisher->name() << " thread " << t;
    }
  }
}

TEST(ThreadSafetyTest, GlobalPoolServesConcurrentSubmitters) {
  // Many threads driving ThreadPool::Global() at once models the parallel
  // RunCell + parallel publisher composition; each submitter's loop must
  // see exactly its own work completed.
  constexpr int kSubmitters = 8;
  std::vector<double> totals(kSubmitters, 0.0);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&totals, s]() {
      std::vector<double> slots(500, 0.0);
      ThreadPool::Global().ParallelFor(0, slots.size(),
                                       [&slots](std::size_t i) {
                                         slots[i] = static_cast<double>(i);
                                       });
      double total = 0.0;
      for (double v : slots) {
        total += v;
      }
      totals[s] = total;
    });
  }
  for (std::thread& thread : submitters) {
    thread.join();
  }
  for (double total : totals) {
    EXPECT_DOUBLE_EQ(total, 499.0 * 500.0 / 2.0);
  }
}

TEST(ThreadSafetyTest, ConstHistogramSharedAcrossThreads) {
  // Histogram's lazy prefix table is mutable; hammer RangeSum from many
  // threads after a single-threaded warm-up (the documented safe pattern:
  // warm the prefix before sharing, or share only after const use began).
  const Dataset dataset = MakeAge(2);
  const Histogram& histogram = dataset.histogram;
  const double expected_total = histogram.Total();  // warm the prefix
  std::vector<std::thread> threads;
  std::vector<double> totals(8, 0.0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      double local = 0.0;
      for (int rep = 0; rep < 1000; ++rep) {
        local = histogram.RangeSumUnchecked(0, histogram.size());
      }
      totals[t] = local;
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (double total : totals) {
    EXPECT_DOUBLE_EQ(total, expected_total);
  }
}

TEST(ThreadSafetyTest, ReleaseCachePublishesExactlyOnceUnderContention) {
  // N threads race GetOrPublish on the same key: the publish callback must
  // run exactly once and every thread must receive the same release.
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    serve::ReleaseCache cache;
    const serve::ReleaseKey key{"default", "default",
                                static_cast<std::uint64_t>(round), "nf", 0.5,
                                1};
    std::atomic<int> publishes{0};
    std::vector<std::shared_ptr<const serve::CachedRelease>> got(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        auto release = cache.GetOrPublish(key, [&]() -> Result<Histogram> {
          publishes.fetch_add(1, std::memory_order_relaxed);
          return Histogram({1, 2, 3});
        });
        if (release.ok()) {
          got[t] = release.value();
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    EXPECT_EQ(publishes.load(), 1) << "round " << round;
    ASSERT_NE(got[0], nullptr);
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(got[t].get(), got[0].get()) << "round " << round;
    }
  }
}

TEST(ThreadSafetyTest, BudgetLedgerNeverOverspendsUnderContention) {
  // Equal-size charges from many threads: exactly floor-many fit, every
  // other charge gets the typed refusal, and the final spend never
  // exceeds the budget. 8 threads x 100 charges of 0.03 against 1.0:
  // 33 fit (0.99), the 34th (1.02) must be refused.
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 100;
  serve::BudgetLedger ledger(1.0);
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kChargesPerThread; ++i) {
        std::string label = "t";
        label += std::to_string(t);
        const Status status = ledger.Charge(0.03, label);
        if (status.ok()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(accepted.load(), 33);
  EXPECT_EQ(ledger.charge_count(), 33u);
  EXPECT_LE(ledger.spent_epsilon(), ledger.total_epsilon() * (1.0 + 1e-9));
  EXPECT_NEAR(ledger.spent_epsilon(), 0.99, 1e-12);
}

TEST(ThreadSafetyTest, ReleaseServerConcurrentBatchesChargeOnce) {
  // Many threads batch-query the same release concurrently: the racing
  // cache misses must coalesce onto one publication and one ledger
  // charge, and every thread's answers must be identical.
  constexpr int kThreads = 8;
  const Dataset dataset = MakeSearchLogs(128, 11);
  serve::ReleaseServer server(dataset.histogram, /*total_epsilon=*/1.0);
  const serve::ServeRequest request{"noise_first", 0.5, 9};
  Rng workload_rng(13);
  auto queries = RandomRangeWorkload(dataset.histogram.size(), 64,
                                     workload_rng);
  ASSERT_TRUE(queries.ok());

  std::vector<std::vector<double>> answers(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto batch = server.AnswerBatch(queries.value(), request);
      if (batch.ok() && !batch.value().stale) {
        answers[t] = batch.value().answers;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(server.ledger().charge_count(), 1u);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.5);
  EXPECT_EQ(server.cache().size(), 1u);
  ASSERT_FALSE(answers[0].empty());
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(answers[t], answers[0]) << "thread " << t;
  }
}

TEST(ThreadSafetyTest, ConcurrentRangeSumsBuildPrefixOnce) {
  // Regression test for the lazy prefix-table race: many threads call
  // RangeSumUnchecked on a SHARED histogram whose prefix table has never
  // been built. The once-init must let exactly one thread build it while
  // the rest wait (TSan catches the old unsynchronized mutable fill), and
  // every thread must read the same sealed table.
  constexpr int kThreads = 8;
  constexpr int kRounds = 16;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<double> counts(512);
    for (std::size_t i = 0; i < counts.size(); ++i) {
      counts[i] = static_cast<double>((i * 31 + round) % 97);
    }
    const Histogram shared(counts);
    Histogram sealed_reference(counts);
    sealed_reference.SealPrefix();

    std::vector<std::vector<double>> sums(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        std::vector<double>& out = sums[t];
        for (std::size_t begin = static_cast<std::size_t>(t); begin < 512;
             begin += 17) {
          out.push_back(shared.RangeSumUnchecked(begin, 512));
          out.push_back(shared.RangeSumUnchecked(0, begin + 1));
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      std::vector<double> expected;
      for (std::size_t begin = static_cast<std::size_t>(t); begin < 512;
           begin += 17) {
        expected.push_back(sealed_reference.RangeSumUnchecked(begin, 512));
        expected.push_back(sealed_reference.RangeSumUnchecked(0, begin + 1));
      }
      EXPECT_EQ(sums[t], expected) << "thread " << t << " round " << round;
    }
  }
}

}  // namespace
}  // namespace dphist
