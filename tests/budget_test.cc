#include "dphist/privacy/budget.h"

#include <string>

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(BudgetTest, StartsEmpty) {
  BudgetAccountant budget(1.0);
  EXPECT_DOUBLE_EQ(budget.total_epsilon(), 1.0);
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.0);
  EXPECT_DOUBLE_EQ(budget.remaining_epsilon(), 1.0);
  EXPECT_TRUE(budget.charges().empty());
}

TEST(BudgetTest, SequentialChargesAccumulate) {
  BudgetAccountant budget(1.0);
  EXPECT_TRUE(budget.ChargeSequential(0.3, "structure").ok());
  EXPECT_TRUE(budget.ChargeSequential(0.5, "counts").ok());
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.8);
  EXPECT_NEAR(budget.remaining_epsilon(), 0.2, 1e-12);
}

TEST(BudgetTest, RejectsOverspend) {
  BudgetAccountant budget(1.0);
  EXPECT_TRUE(budget.ChargeSequential(0.9, "a").ok());
  const Status s = budget.ChargeSequential(0.2, "b");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Failed charge must not be recorded.
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.9);
}

TEST(BudgetTest, RejectsNonPositiveCharge) {
  BudgetAccountant budget(1.0);
  EXPECT_FALSE(budget.ChargeSequential(0.0, "zero").ok());
  EXPECT_FALSE(budget.ChargeSequential(-0.1, "neg").ok());
}

TEST(BudgetTest, ExactSplitIntoManyPartsFits) {
  // epsilon/k charged k times must not trip the budget due to rounding.
  BudgetAccountant budget(1.0);
  const int k = 37;
  for (int i = 0; i < k; ++i) {
    EXPECT_TRUE(budget.ChargeSequential(1.0 / k, "part").ok());
  }
  EXPECT_NEAR(budget.spent_epsilon(), 1.0, 1e-9);
}

TEST(BudgetTest, ParallelChargesCountOnceAtMax) {
  BudgetAccountant budget(1.0);
  EXPECT_TRUE(budget.ChargeParallel(0.4, "bins", "bin 0").ok());
  EXPECT_TRUE(budget.ChargeParallel(0.4, "bins", "bin 1").ok());
  EXPECT_TRUE(budget.ChargeParallel(0.6, "bins", "bin 2").ok());
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.6);
}

TEST(BudgetTest, DistinctParallelGroupsAdd) {
  BudgetAccountant budget(1.0);
  EXPECT_TRUE(budget.ChargeParallel(0.4, "bins", "b").ok());
  EXPECT_TRUE(budget.ChargeParallel(0.5, "tree", "t").ok());
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.9);
}

TEST(BudgetTest, ParallelOverspendRollsBack) {
  BudgetAccountant budget(1.0);
  EXPECT_TRUE(budget.ChargeSequential(0.7, "counts").ok());
  EXPECT_FALSE(budget.ChargeParallel(0.5, "bins", "bin").ok());
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.7);
  EXPECT_EQ(budget.charges().size(), 1u);
}

TEST(BudgetTest, MixedCompositionMatchesTheory) {
  // StructureFirst-style ledger: k-1 EM draws (sequential) + one parallel
  // group of bucket counts.
  BudgetAccountant budget(1.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        budget.ChargeSequential(0.5 / 4, "em boundary " + std::to_string(i))
            .ok());
  }
  for (int b = 0; b < 5; ++b) {
    EXPECT_TRUE(
        budget.ChargeParallel(0.5, "buckets", "bucket " + std::to_string(b))
            .ok());
  }
  EXPECT_NEAR(budget.spent_epsilon(), 1.0, 1e-9);
  EXPECT_NEAR(budget.remaining_epsilon(), 0.0, 1e-9);
}

TEST(BudgetTest, NonPositiveTotalMeansNothingFits) {
  BudgetAccountant budget(-1.0);
  EXPECT_DOUBLE_EQ(budget.total_epsilon(), 0.0);
  EXPECT_FALSE(budget.ChargeSequential(0.1, "x").ok());
}

TEST(BudgetTest, ToStringListsCharges) {
  BudgetAccountant budget(2.0);
  ASSERT_TRUE(budget.ChargeSequential(1.0, "laplace:counts").ok());
  ASSERT_TRUE(budget.ChargeParallel(0.5, "bins", "bin 0").ok());
  const std::string ledger = budget.ToString();
  EXPECT_NE(ledger.find("laplace:counts"), std::string::npos);
  EXPECT_NE(ledger.find("parallel:bins"), std::string::npos);
}

}  // namespace
}  // namespace dphist
