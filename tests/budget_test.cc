#include "dphist/privacy/budget.h"

#include <algorithm>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "dphist/common/math_util.h"
#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(BudgetTest, StartsEmpty) {
  BudgetAccountant budget(1.0);
  EXPECT_DOUBLE_EQ(budget.total_epsilon(), 1.0);
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.0);
  EXPECT_DOUBLE_EQ(budget.remaining_epsilon(), 1.0);
  EXPECT_TRUE(budget.charges().empty());
}

TEST(BudgetTest, SequentialChargesAccumulate) {
  BudgetAccountant budget(1.0);
  EXPECT_TRUE(budget.ChargeSequential(0.3, "structure").ok());
  EXPECT_TRUE(budget.ChargeSequential(0.5, "counts").ok());
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.8);
  EXPECT_NEAR(budget.remaining_epsilon(), 0.2, 1e-12);
}

TEST(BudgetTest, RejectsOverspend) {
  BudgetAccountant budget(1.0);
  EXPECT_TRUE(budget.ChargeSequential(0.9, "a").ok());
  const Status s = budget.ChargeSequential(0.2, "b");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // Failed charge must not be recorded.
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.9);
}

TEST(BudgetTest, RejectsNonPositiveCharge) {
  BudgetAccountant budget(1.0);
  EXPECT_FALSE(budget.ChargeSequential(0.0, "zero").ok());
  EXPECT_FALSE(budget.ChargeSequential(-0.1, "neg").ok());
}

TEST(BudgetTest, ExactSplitIntoManyPartsFits) {
  // epsilon/k charged k times must not trip the budget due to rounding.
  BudgetAccountant budget(1.0);
  const int k = 37;
  for (int i = 0; i < k; ++i) {
    EXPECT_TRUE(budget.ChargeSequential(1.0 / k, "part").ok());
  }
  EXPECT_NEAR(budget.spent_epsilon(), 1.0, 1e-9);
}

TEST(BudgetTest, ParallelChargesCountOnceAtMax) {
  BudgetAccountant budget(1.0);
  EXPECT_TRUE(budget.ChargeParallel(0.4, "bins", "bin 0").ok());
  EXPECT_TRUE(budget.ChargeParallel(0.4, "bins", "bin 1").ok());
  EXPECT_TRUE(budget.ChargeParallel(0.6, "bins", "bin 2").ok());
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.6);
}

TEST(BudgetTest, DistinctParallelGroupsAdd) {
  BudgetAccountant budget(1.0);
  EXPECT_TRUE(budget.ChargeParallel(0.4, "bins", "b").ok());
  EXPECT_TRUE(budget.ChargeParallel(0.5, "tree", "t").ok());
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.9);
}

TEST(BudgetTest, ParallelOverspendRollsBack) {
  BudgetAccountant budget(1.0);
  EXPECT_TRUE(budget.ChargeSequential(0.7, "counts").ok());
  EXPECT_FALSE(budget.ChargeParallel(0.5, "bins", "bin").ok());
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.7);
  EXPECT_EQ(budget.charges().size(), 1u);
}

TEST(BudgetTest, MixedCompositionMatchesTheory) {
  // StructureFirst-style ledger: k-1 EM draws (sequential) + one parallel
  // group of bucket counts.
  BudgetAccountant budget(1.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        budget.ChargeSequential(0.5 / 4, "em boundary " + std::to_string(i))
            .ok());
  }
  for (int b = 0; b < 5; ++b) {
    EXPECT_TRUE(
        budget.ChargeParallel(0.5, "buckets", "bucket " + std::to_string(b))
            .ok());
  }
  EXPECT_NEAR(budget.spent_epsilon(), 1.0, 1e-9);
  EXPECT_NEAR(budget.remaining_epsilon(), 0.0, 1e-9);
}

TEST(BudgetTest, NonPositiveTotalMeansNothingFits) {
  BudgetAccountant budget(-1.0);
  EXPECT_DOUBLE_EQ(budget.total_epsilon(), 0.0);
  EXPECT_FALSE(budget.ChargeSequential(0.1, "x").ok());
}

// From-scratch recomputation of the spend over the recorded charges,
// kept here as the reference the incremental running totals must match
// bit-for-bit: compensated sum of sequential charges in charge order,
// then per-group maxima folded in group-key order.
double RecomputeSpent(const BudgetAccountant& budget) {
  KahanSum sequential;
  std::map<std::string, double> group_max;
  for (const BudgetCharge& charge : budget.charges()) {
    if (charge.parallel) {
      double& current = group_max[charge.parallel_group];
      current = std::max(current, charge.epsilon);
    } else {
      sequential.Add(charge.epsilon);
    }
  }
  for (const auto& [group, eps] : group_max) {
    sequential.Add(eps);
  }
  return sequential.Total();
}

TEST(BudgetTest, IncrementalSpendMatchesRecomputationExactly) {
  // Random mixed charge traces, including refusals near exhaustion: the
  // incrementally maintained spend must equal the from-scratch
  // recomputation bit-for-bit after every charge, and the accept/reject
  // decision must match what the recomputed value implies. This is the
  // regression test for the O(n^2) accounting fix: identical semantics,
  // linear cost.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    BudgetAccountant budget(1.0);
    for (int op = 0; op < 200; ++op) {
      const double epsilon =
          static_cast<double>(SampleUniformInt(rng, 1, 40)) / 1000.0;
      const double before = budget.spent_epsilon();
      ASSERT_EQ(before, RecomputeSpent(budget));
      Status status;
      double prospective = 0.0;
      if (SampleUniformDouble(rng) < 0.5) {
        prospective = before + epsilon;
        status = budget.ChargeSequential(epsilon, "seq");
      } else {
        std::string group = "g";
        group += std::to_string(SampleUniformInt(rng, 0, 5));
        // A parallel charge only raises the spend by the increase of its
        // group's max.
        double old_max = 0.0;
        for (const BudgetCharge& charge : budget.charges()) {
          if (charge.parallel && charge.parallel_group == group) {
            old_max = std::max(old_max, charge.epsilon);
          }
        }
        prospective = before - old_max + std::max(old_max, epsilon);
        status = budget.ChargeParallel(epsilon, group, "par");
      }
      const bool should_accept =
          prospective <= budget.total_epsilon() * (1.0 + 1e-9) + 1e-9;
      EXPECT_EQ(status.ok(), should_accept)
          << "trial " << trial << " op " << op << " prospective "
          << prospective;
      EXPECT_EQ(budget.spent_epsilon(), RecomputeSpent(budget));
      if (!status.ok()) {
        // A refused charge must leave the ledger untouched.
        EXPECT_EQ(budget.spent_epsilon(), before);
      }
    }
  }
}

TEST(BudgetTest, ExactFractionalChargesConsumeExactly) {
  // Regression: with naive `+=` accumulation, ten charges of 0.1 against a
  // total of 1.0 sum to 0.9999999999999999, leaving phantom remaining
  // budget after the grant was exactly consumed (and, with the inequality
  // flipped the other way, a drift upward could refuse the final
  // legitimate charge). Compensated summation makes the running spend the
  // correctly-rounded sum, so "exactly spent" is exact.
  BudgetAccountant budget(1.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(budget.ChargeSequential(0.1, "slice " + std::to_string(i)).ok())
        << "charge " << i;
  }
  EXPECT_EQ(budget.spent_epsilon(), 1.0);
  EXPECT_EQ(budget.remaining_epsilon(), 0.0);
  // An 11th charge beyond the slack must be refused.
  const Status s = budget.ChargeSequential(0.1, "over");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.spent_epsilon(), 1.0);
}

TEST(BudgetTest, ToStringListsCharges) {
  BudgetAccountant budget(2.0);
  ASSERT_TRUE(budget.ChargeSequential(1.0, "laplace:counts").ok());
  ASSERT_TRUE(budget.ChargeParallel(0.5, "bins", "bin 0").ok());
  const std::string ledger = budget.ToString();
  EXPECT_NE(ledger.find("laplace:counts"), std::string::npos);
  EXPECT_NE(ledger.find("parallel:bins"), std::string::npos);
}

}  // namespace
}  // namespace dphist
