#include "dphist/hist/bucketization.h"

#include <vector>

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(BucketizationTest, SingleBucket) {
  auto b = Bucketization::SingleBucket(10);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().num_buckets(), 1u);
  EXPECT_EQ(b.value().bucket(0).begin, 0u);
  EXPECT_EQ(b.value().bucket(0).end, 10u);
}

TEST(BucketizationTest, Identity) {
  auto b = Bucketization::Identity(4);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().num_buckets(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(b.value().bucket(i).begin, i);
    EXPECT_EQ(b.value().bucket(i).end, i + 1);
  }
}

TEST(BucketizationTest, RejectsEmptyDomain) {
  EXPECT_FALSE(Bucketization::SingleBucket(0).ok());
  EXPECT_FALSE(Bucketization::FromCuts(0, {}).ok());
}

TEST(BucketizationTest, RejectsBadCuts) {
  EXPECT_FALSE(Bucketization::FromCuts(10, {0}).ok());     // at start
  EXPECT_FALSE(Bucketization::FromCuts(10, {10}).ok());    // at end
  EXPECT_FALSE(Bucketization::FromCuts(10, {11}).ok());    // beyond end
  EXPECT_FALSE(Bucketization::FromCuts(10, {3, 3}).ok());  // duplicate
  EXPECT_FALSE(Bucketization::FromCuts(10, {5, 3}).ok());  // decreasing
}

TEST(BucketizationTest, BucketsTileDomain) {
  auto b = Bucketization::FromCuts(10, {3, 7});
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(b.value().num_buckets(), 3u);
  EXPECT_EQ(b.value().bucket(0).begin, 0u);
  EXPECT_EQ(b.value().bucket(0).end, 3u);
  EXPECT_EQ(b.value().bucket(1).begin, 3u);
  EXPECT_EQ(b.value().bucket(1).end, 7u);
  EXPECT_EQ(b.value().bucket(2).begin, 7u);
  EXPECT_EQ(b.value().bucket(2).end, 10u);
}

TEST(BucketizationTest, EquiWidth) {
  auto b = Bucketization::EquiWidth(10, 3);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().num_buckets(), 3u);
  // Last bucket absorbs the remainder.
  EXPECT_EQ(b.value().bucket(2).end, 10u);
  EXPECT_FALSE(Bucketization::EquiWidth(4, 5).ok());
  EXPECT_FALSE(Bucketization::EquiWidth(4, 0).ok());
}

TEST(BucketizationTest, BucketOf) {
  auto b = Bucketization::FromCuts(10, {3, 7});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().BucketOf(0), 0u);
  EXPECT_EQ(b.value().BucketOf(2), 0u);
  EXPECT_EQ(b.value().BucketOf(3), 1u);
  EXPECT_EQ(b.value().BucketOf(6), 1u);
  EXPECT_EQ(b.value().BucketOf(7), 2u);
  EXPECT_EQ(b.value().BucketOf(9), 2u);
}

TEST(BucketizationTest, ApplyComputesMeans) {
  auto b = Bucketization::FromCuts(6, {2});
  ASSERT_TRUE(b.ok());
  auto buckets = b.value().Apply({1.0, 3.0, 4.0, 4.0, 4.0, 8.0});
  ASSERT_TRUE(buckets.ok());
  ASSERT_EQ(buckets.value().size(), 2u);
  EXPECT_DOUBLE_EQ(buckets.value()[0].mean, 2.0);
  EXPECT_DOUBLE_EQ(buckets.value()[1].mean, 5.0);
}

TEST(BucketizationTest, ApplyRejectsSizeMismatch) {
  auto b = Bucketization::SingleBucket(4);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b.value().Apply({1.0, 2.0}).ok());
}

TEST(BucketizationTest, ExpandRoundTripsConstantBuckets) {
  auto b = Bucketization::FromCuts(5, {2});
  ASSERT_TRUE(b.ok());
  auto unit = b.value().Expand({7.0, -1.0});
  ASSERT_TRUE(unit.ok());
  const std::vector<double> expected = {7.0, 7.0, -1.0, -1.0, -1.0};
  EXPECT_EQ(unit.value(), expected);
}

TEST(BucketizationTest, ExpandRejectsWrongMeanCount) {
  auto b = Bucketization::FromCuts(5, {2});
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b.value().Expand({1.0}).ok());
  EXPECT_FALSE(b.value().Expand({1.0, 2.0, 3.0}).ok());
}

TEST(BucketizationTest, ApplyThenExpandIsProjection) {
  // Expanding bucket means is idempotent: applying again yields the same
  // means.
  auto b = Bucketization::FromCuts(6, {1, 4});
  ASSERT_TRUE(b.ok());
  const std::vector<double> counts = {5.0, 1.0, 2.0, 3.0, 10.0, 20.0};
  auto buckets = b.value().Apply(counts);
  ASSERT_TRUE(buckets.ok());
  std::vector<double> means;
  for (const Bucket& bucket : buckets.value()) {
    means.push_back(bucket.mean);
  }
  auto expanded = b.value().Expand(means);
  ASSERT_TRUE(expanded.ok());
  auto again = b.value().Apply(expanded.value());
  ASSERT_TRUE(again.ok());
  for (std::size_t i = 0; i < means.size(); ++i) {
    EXPECT_DOUBLE_EQ(again.value()[i].mean, means[i]);
  }
}

TEST(BucketizationTest, ToString) {
  auto b = Bucketization::FromCuts(10, {3, 7});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().ToString(), "{[0,3) [3,7) [7,10)}");
}

}  // namespace
}  // namespace dphist
