// Mechanics of the failpoint registry: arming, triggers, deterministic
// seeded schedules, delay-on-fake-clock, stats, and RAII scoping. The
// registry is compiled into every build, so this whole file runs whether or
// not the site macros are enabled; only the macro-expansion tests branch on
// DPHIST_FAILPOINTS.

#include "dphist/testing/failpoint.h"

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/clock.h"
#include "dphist/common/status.h"

namespace dphist {
namespace testing {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Global().DisarmAll();
    FailpointRegistry::Global().set_clock(nullptr);
  }
  void TearDown() override {
    FailpointRegistry::Global().DisarmAll();
    FailpointRegistry::Global().set_clock(nullptr);
  }
};

TEST_F(FailpointTest, UnarmedEvaluatesOk) {
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(FailpointRegistry::Global().Evaluate("no/such/point").ok());
  const FailpointStats stats =
      FailpointRegistry::Global().Stats("no/such/point");
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.fires, 0u);
}

TEST_F(FailpointTest, ArmReturnsConfiguredStatus) {
  FailpointConfig config;
  config.status = Status::ResourceExhausted("injected refusal");
  FailpointRegistry::Global().Arm("test/point", config);
  EXPECT_TRUE(FailpointRegistry::AnyArmed());

  const Status s = FailpointRegistry::Global().Evaluate("test/point");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "injected refusal");
  // Another name stays a no-op.
  EXPECT_TRUE(FailpointRegistry::Global().Evaluate("other/point").ok());
}

TEST_F(FailpointTest, DisarmRestoresNoOp) {
  FailpointRegistry::Global().Arm("test/point", FailpointConfig{});
  ASSERT_FALSE(FailpointRegistry::Global().Evaluate("test/point").ok());
  FailpointRegistry::Global().Disarm("test/point");
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(FailpointRegistry::Global().Evaluate("test/point").ok());
  // Disarming an unknown or already-disarmed name is fine.
  FailpointRegistry::Global().Disarm("test/point");
  FailpointRegistry::Global().Disarm("never/armed");
}

TEST_F(FailpointTest, ArmedCountTracksEveryArmAndDisarm) {
  FailpointRegistry::Global().Arm("a", FailpointConfig{});
  FailpointRegistry::Global().Arm("b", FailpointConfig{});
  // Re-arming the same point must not double-count.
  FailpointRegistry::Global().Arm("a", FailpointConfig{});
  EXPECT_TRUE(FailpointRegistry::AnyArmed());
  FailpointRegistry::Global().Disarm("a");
  EXPECT_TRUE(FailpointRegistry::AnyArmed());
  FailpointRegistry::Global().Disarm("b");
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
}

TEST_F(FailpointTest, DisarmAllClearsEverything) {
  FailpointRegistry::Global().Arm("a", FailpointConfig{});
  FailpointRegistry::Global().Arm("b", FailpointConfig{});
  FailpointRegistry::Global().DisarmAll();
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(FailpointRegistry::Global().Evaluate("a").ok());
  EXPECT_TRUE(FailpointRegistry::Global().Evaluate("b").ok());
}

TEST_F(FailpointTest, TriggerOnceFiresExactlyOnce) {
  FailpointConfig config;
  config.trigger = FailpointTrigger::kOnce;
  FailpointRegistry::Global().Arm("test/once", config);
  EXPECT_FALSE(FailpointRegistry::Global().Evaluate("test/once").ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(FailpointRegistry::Global().Evaluate("test/once").ok());
  }
  const FailpointStats stats = FailpointRegistry::Global().Stats("test/once");
  EXPECT_EQ(stats.hits, 11u);
  EXPECT_EQ(stats.fires, 1u);
}

TEST_F(FailpointTest, TriggerEveryNthFiresPeriodically) {
  FailpointConfig config;
  config.trigger = FailpointTrigger::kEveryNth;
  config.every_nth = 3;
  FailpointRegistry::Global().Arm("test/nth", config);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(!FailpointRegistry::Global().Evaluate("test/nth").ok());
  }
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(FailpointRegistry::Global().Stats("test/nth").fires, 3u);
}

TEST_F(FailpointTest, EveryNthZeroPinsToEveryHit) {
  FailpointConfig config;
  config.trigger = FailpointTrigger::kEveryNth;
  config.every_nth = 0;
  FailpointRegistry::Global().Arm("test/nth0", config);
  EXPECT_FALSE(FailpointRegistry::Global().Evaluate("test/nth0").ok());
  EXPECT_FALSE(FailpointRegistry::Global().Evaluate("test/nth0").ok());
}

TEST_F(FailpointTest, ProbabilityExtremes) {
  FailpointConfig never;
  never.trigger = FailpointTrigger::kProbability;
  never.probability = 0.0;
  FailpointRegistry::Global().Arm("test/p0", never);
  FailpointConfig always;
  always.trigger = FailpointTrigger::kProbability;
  always.probability = 1.0;
  FailpointRegistry::Global().Arm("test/p1", always);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(FailpointRegistry::Global().Evaluate("test/p0").ok());
    EXPECT_FALSE(FailpointRegistry::Global().Evaluate("test/p1").ok());
  }
}

std::vector<bool> DrawPattern(const char* name, int draws) {
  std::vector<bool> pattern;
  pattern.reserve(draws);
  for (int i = 0; i < draws; ++i) {
    pattern.push_back(!FailpointRegistry::Global().Evaluate(name).ok());
  }
  return pattern;
}

TEST_F(FailpointTest, ProbabilityScheduleReplaysFromSeed) {
  FailpointConfig config;
  config.trigger = FailpointTrigger::kProbability;
  config.probability = 0.4;
  FailpointRegistry::Global().SeedSchedule(1234);
  FailpointRegistry::Global().Arm("test/prob", config);
  const std::vector<bool> first = DrawPattern("test/prob", 200);

  // Same seed: bit-identical fault pattern, fresh stats.
  FailpointRegistry::Global().SeedSchedule(1234);
  EXPECT_EQ(DrawPattern("test/prob", 200), first);
  EXPECT_EQ(FailpointRegistry::Global().Stats("test/prob").hits, 200u);

  // Different seed: a different pattern (200 draws at p=0.4 collide with
  // probability 2^-200 — astronomically unlikely).
  FailpointRegistry::Global().SeedSchedule(99);
  EXPECT_NE(DrawPattern("test/prob", 200), first);

  // The schedule roughly honors the probability.
  int fires = 0;
  for (const bool f : first) {
    fires += f ? 1 : 0;
  }
  EXPECT_GT(fires, 40);   // p=0.4, n=200: far outside chance
  EXPECT_LT(fires, 140);
}

TEST_F(FailpointTest, ScheduleIndependentOfArmingOrder) {
  FailpointConfig config;
  config.trigger = FailpointTrigger::kProbability;
  config.probability = 0.5;

  FailpointRegistry::Global().SeedSchedule(7);
  FailpointRegistry::Global().Arm("test/a", config);
  FailpointRegistry::Global().Arm("test/b", config);
  const std::vector<bool> a_first = DrawPattern("test/a", 64);
  const std::vector<bool> b_first = DrawPattern("test/b", 64);

  // Re-arm in the opposite order under the same seed: streams are a
  // function of (seed, name), so the patterns must not move.
  FailpointRegistry::Global().DisarmAll();
  FailpointRegistry::Global().SeedSchedule(7);
  FailpointRegistry::Global().Arm("test/b", config);
  FailpointRegistry::Global().Arm("test/a", config);
  EXPECT_EQ(DrawPattern("test/a", 64), a_first);
  EXPECT_EQ(DrawPattern("test/b", 64), b_first);

  // Distinct names draw distinct streams.
  EXPECT_NE(a_first, b_first);
}

TEST_F(FailpointTest, DelaySleepsOnInjectedClockOnly) {
  FakeClock clock;
  FailpointRegistry::Global().set_clock(&clock);
  FailpointConfig config;
  config.action = FailpointConfig::Action::kDelay;
  config.delay = milliseconds(500);
  FailpointRegistry::Global().Arm("test/slow", config);

  // A delay action returns OK (the operation succeeds, just late) and all
  // the "sleeping" lands on the fake clock — this test finishing at all is
  // the no-wall-sleep assertion.
  EXPECT_TRUE(FailpointRegistry::Global().Evaluate("test/slow").ok());
  EXPECT_TRUE(FailpointRegistry::Global().Evaluate("test/slow").ok());
  EXPECT_EQ(clock.total_slept(), nanoseconds(milliseconds(1000)));
  EXPECT_EQ(FailpointRegistry::Global().Stats("test/slow").fires, 2u);
}

TEST_F(FailpointTest, StatsCountHitsWhileArmedOnly) {
  FailpointConfig config;
  config.trigger = FailpointTrigger::kEveryNth;
  config.every_nth = 2;
  FailpointRegistry::Global().Arm("test/stats", config);
  for (int i = 0; i < 6; ++i) {
    (void)FailpointRegistry::Global().Evaluate("test/stats");
  }
  FailpointStats stats = FailpointRegistry::Global().Stats("test/stats");
  EXPECT_EQ(stats.hits, 6u);
  EXPECT_EQ(stats.fires, 3u);

  // Re-arming resets the counters.
  FailpointRegistry::Global().Arm("test/stats", config);
  stats = FailpointRegistry::Global().Stats("test/stats");
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.fires, 0u);
}

TEST_F(FailpointTest, ConcurrentEvaluationsNeverLoseHits) {
  FailpointConfig config;
  config.trigger = FailpointTrigger::kEveryNth;
  config.every_nth = 3;
  FailpointRegistry::Global().Arm("test/mt", config);
  constexpr int kThreads = 4;
  constexpr int kEvalsPerThread = 3000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kEvalsPerThread; ++i) {
        (void)FailpointRegistry::Global().Evaluate("test/mt");
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const FailpointStats stats = FailpointRegistry::Global().Stats("test/mt");
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads) *
                            kEvalsPerThread);
  // Which thread observes each firing hit varies, but the trigger decision
  // is made on the atomic hit count under the lock, so the total is exact.
  EXPECT_EQ(stats.fires, stats.hits / 3);
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    ScopedFailpoint scoped("test/scoped", FailpointConfig{});
    EXPECT_TRUE(FailpointRegistry::AnyArmed());
    EXPECT_FALSE(FailpointRegistry::Global().Evaluate("test/scoped").ok());
  }
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(FailpointRegistry::Global().Evaluate("test/scoped").ok());
}

TEST_F(FailpointTest, AbortActionDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        FailpointConfig config;
        config.action = FailpointConfig::Action::kAbort;
        FailpointRegistry::Global().Arm("test/abort", config);
        (void)FailpointRegistry::Global().Evaluate("test/abort");
      },
      "failpoint 'test/abort'");
}

// --- Site-macro behavior (differs by build flavor) ---

Status GuardedOperation() {
  DPHIST_FAILPOINT_RETURN_IF_SET("test/macro/guarded");
  return Status::NotFound("reached the real body");
}

int side_effect_site_calls = 0;

Status SideEffectOperation() {
  DPHIST_FAILPOINT("test/macro/side_effect");
  ++side_effect_site_calls;
  return Status::Ok();
}

#if defined(DPHIST_FAILPOINTS)

TEST_F(FailpointTest, ReturnIfSetMacroPropagatesInjectedStatus) {
  EXPECT_EQ(GuardedOperation().code(), StatusCode::kNotFound);
  FailpointConfig config;
  config.status = Status::Internal("injected by macro test");
  ScopedFailpoint scoped("test/macro/guarded", config);
  const Status s = GuardedOperation();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "injected by macro test");
}

TEST_F(FailpointTest, SideEffectMacroSwallowsStatusButCountsFire) {
  ScopedFailpoint scoped("test/macro/side_effect", FailpointConfig{});
  side_effect_site_calls = 0;
  EXPECT_TRUE(SideEffectOperation().ok());  // status swallowed by design
  EXPECT_EQ(side_effect_site_calls, 1);
  EXPECT_EQ(
      FailpointRegistry::Global().Stats("test/macro/side_effect").fires, 1u);
}

TEST_F(FailpointTest, FailpointFiresHelperReflectsArming) {
  EXPECT_FALSE(FailpointFires("test/macro/fires"));
  ScopedFailpoint scoped("test/macro/fires", FailpointConfig{});
  EXPECT_TRUE(FailpointFires("test/macro/fires"));
}

#else  // !DPHIST_FAILPOINTS

TEST_F(FailpointTest, SiteMacrosCompileToNothingWhenDisabled) {
  // Even with the registry armed, compiled-out sites never observe it.
  FailpointConfig config;
  config.status = Status::Internal("must never surface");
  ScopedFailpoint scoped("test/macro/guarded", config);
  ScopedFailpoint scoped2("test/macro/side_effect", config);
  ScopedFailpoint scoped3("test/macro/fires", config);
  EXPECT_EQ(GuardedOperation().code(), StatusCode::kNotFound);
  side_effect_site_calls = 0;
  EXPECT_TRUE(SideEffectOperation().ok());
  EXPECT_EQ(side_effect_site_calls, 1);
  EXPECT_FALSE(FailpointFires("test/macro/fires"));
  EXPECT_EQ(FailpointRegistry::Global().Stats("test/macro/guarded").hits, 0u);
}

#endif  // DPHIST_FAILPOINTS

}  // namespace
}  // namespace testing
}  // namespace dphist
