// Chaos suite: seeded fault schedules driven through the failpoint sites in
// the serve/, privacy/, common/, and data/ layers. The invariants under
// fault injection:
//   * publication stays exactly-once even when a publisher fails mid-flight
//     and racing callers retry,
//   * the budget ledger never overspends, even when charges fail after
//     their commit point,
//   * induced budget refusal degrades to stale answers without spending,
//   * retries follow the deterministic backoff schedule and respect the
//     per-batch deadline (all on a FakeClock — no wall sleeping),
//   * the same schedule seed produces bit-identical outcomes at any
//     DPHIST_THREADS / pool width.
//
// Requires a -DDPHIST_FAILPOINTS=ON build; otherwise the sites are compiled
// out and the suite skips (the plain build still runs failpoint_test.cc,
// which covers the registry mechanics).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/clock.h"
#include "dphist/common/status.h"
#include "dphist/common/thread_pool.h"
#include "dphist/data/csv.h"
#include "dphist/data/generators.h"
#include "dphist/obs/obs.h"
#include "dphist/query/range_query.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"
#include "dphist/serve/release_server.h"
#include "dphist/sparse/sparse_histogram.h"
#include "dphist/testing/failpoint.h"

namespace dphist {
namespace serve {
namespace {

#if !defined(DPHIST_FAILPOINTS)

TEST(ChaosTest, RequiresFailpointBuild) {
  GTEST_SKIP() << "failpoint sites are compiled out; configure with "
                  "-DDPHIST_FAILPOINTS=ON to run the chaos suite";
}

#else  // DPHIST_FAILPOINTS

using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using ::dphist::testing::FailpointConfig;
using ::dphist::testing::FailpointRegistry;
using ::dphist::testing::FailpointTrigger;
using ::dphist::testing::ScopedFailpoint;

Histogram ChaosTruth(std::size_t n = 64) {
  return MakeSearchLogs(n, /*seed=*/5).histogram;
}

std::uint64_t CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name).value();
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Global().DisarmAll();
    FailpointRegistry::Global().set_clock(nullptr);
    obs::Registry::Global().Reset();
    obs::Registry::Global().set_enabled(true);
  }
  void TearDown() override {
    FailpointRegistry::Global().DisarmAll();
    FailpointRegistry::Global().set_clock(nullptr);
    obs::Registry::Global().set_enabled(false);
    obs::Registry::Global().Reset();
  }
};

TEST_F(ChaosTest, ExactlyOncePublicationSurvivesInducedPublisherFailure) {
  // One of four racing callers is handed an injected publisher failure in
  // the cache's publish slot. Its retry (or a racing caller) publishes; the
  // invariant is exactly one successful publication, exactly one charge,
  // and identical answers for everyone.
  const Histogram truth = ChaosTruth();
  FakeClock clock;
  ReleaseServerOptions options;
  options.clock = &clock;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff = milliseconds(1);
  ReleaseServer server(truth, /*total_epsilon=*/10.0, options);
  const ServeRequest request{"noise_first", 0.5, 21};
  Rng workload_rng(11);
  auto queries = RandomRangeWorkload(truth.size(), 40, workload_rng);
  ASSERT_TRUE(queries.ok());

  FailpointConfig fail_once;
  fail_once.status = Status::Internal("injected publisher failure");
  fail_once.trigger = FailpointTrigger::kOnce;
  FailpointRegistry::Global().Arm("serve/cache/publish", fail_once);

  constexpr int kCallers = 4;
  std::vector<Result<BatchAnswer>> results(
      kCallers, Result<BatchAnswer>(Status::Internal("unset")));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      results[t] = server.AnswerBatch(queries.value(), request);
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }

  EXPECT_EQ(FailpointRegistry::Global().Stats("serve/cache/publish").fires,
            1u);
  for (int t = 0; t < kCallers; ++t) {
    ASSERT_TRUE(results[t].ok()) << "caller " << t << ": "
                                 << results[t].status().ToString();
    EXPECT_FALSE(results[t].value().stale);
    EXPECT_EQ(results[t].value().answers, results[0].value().answers);
  }
  // Exactly-once: one publisher run, one ledger charge, one cache entry.
  EXPECT_EQ(CounterValue("publisher/noise_first/runs"), 1u);
  EXPECT_EQ(server.ledger().charge_count(), 1u);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.5);
  EXPECT_EQ(server.cache().size(), 1u);
}

TEST_F(ChaosTest, SparseExactlyOncePublicationSurvivesInducedFailure) {
  // The sparse twin of the exactly-once invariant: racing callers against a
  // sparse dataset, one injected failure in the shared publish slot. The
  // sparse path reuses the same cache slot machinery, so the contract is
  // identical — one publisher run, one charge, identical released bytes.
  auto truth = sparse::SparseHistogram::Create(
      1ULL << 40, {{7, 40.0}, {1000, 35.0}, {1ULL << 39, 50.0}});
  ASSERT_TRUE(truth.ok());
  FakeClock clock;
  ReleaseServerOptions options;
  options.clock = &clock;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff = milliseconds(1);
  ReleaseServer server(options);
  ASSERT_TRUE(
      server.AddSparseDataset({"default", "default"}, truth.value(), 10.0)
          .ok());
  const ServeRequest request{"sparse_pure", 0.5, 21};
  const std::vector<RangeQuery> queries = {
      {0, 1ULL << 40}, {0, 1001}, {1ULL << 39, (1ULL << 39) + 1}};

  FailpointConfig fail_once;
  fail_once.status = Status::Internal("injected publisher failure");
  fail_once.trigger = FailpointTrigger::kOnce;
  FailpointRegistry::Global().Arm("serve/cache/publish", fail_once);

  constexpr int kCallers = 4;
  std::vector<Result<BatchAnswer>> results(
      kCallers, Result<BatchAnswer>(Status::Internal("unset")));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      results[t] = server.AnswerBatch({"default", "default"}, queries,
                                      request);
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }

  EXPECT_EQ(FailpointRegistry::Global().Stats("serve/cache/publish").fires,
            1u);
  for (int t = 0; t < kCallers; ++t) {
    ASSERT_TRUE(results[t].ok()) << "caller " << t << ": "
                                 << results[t].status().ToString();
    EXPECT_FALSE(results[t].value().stale);
    EXPECT_EQ(results[t].value().answers, results[0].value().answers);
  }
  EXPECT_EQ(CounterValue("publisher/sparse_pure/runs"), 1u);
  EXPECT_EQ(server.ledger().charge_count(), 1u);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.5);
  EXPECT_EQ(server.cache().size(), 1u);
  // All callers saw the SAME release: publish again at the same key and
  // confirm the cached sparse release is reused bit-for-bit.
  auto release = server.GetRelease(request);
  ASSERT_TRUE(release.ok());
  ASSERT_TRUE(release.value()->is_sparse());
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.5);
}

TEST_F(ChaosTest, LedgerNeverOverspendsWhenChargesFailAfterCommit) {
  // The after-commit failpoint makes every sequential charge fail *after*
  // recording its epsilon — the conservative failure direction. The spend
  // trajectory must stay monotone and never exceed the total, and once the
  // remaining budget cannot cover a charge the refusal must arrive typed,
  // before the commit point (the failpoint does not even get hit).
  const Histogram truth = ChaosTruth();
  ReleaseServer server(truth, /*total_epsilon=*/1.0);
  Rng workload_rng(13);
  auto queries = RandomRangeWorkload(truth.size(), 10, workload_rng);
  ASSERT_TRUE(queries.ok());

  FailpointConfig after_commit;
  after_commit.status = Status::Internal("injected post-commit failure");
  FailpointRegistry::Global().Arm("privacy/budget/after_commit", after_commit);

  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    auto batch = server.AnswerBatch(queries.value(), {"dwork", 0.4, seed});
    ASSERT_FALSE(batch.ok());
    EXPECT_EQ(batch.status().code(), StatusCode::kInternal);
    EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(),
                     0.4 * static_cast<double>(seed));
    EXPECT_LE(server.ledger().spent_epsilon(), 1.0);
  }
  EXPECT_EQ(server.ledger().charge_count(), 2u);

  // 0.2 remains; a 0.4 charge must refuse pre-commit: spend unchanged, no
  // new hit on the after-commit failpoint, typed status (empty cache, so
  // the batch fails rather than degrading).
  const std::uint64_t hits_before =
      FailpointRegistry::Global().Stats("privacy/budget/after_commit").hits;
  auto refused = server.AnswerBatch(queries.value(), {"dwork", 0.4, 3});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.8);
  EXPECT_EQ(
      FailpointRegistry::Global().Stats("privacy/budget/after_commit").hits,
      hits_before);

  // With the fault gone the surviving 0.2 is still spendable.
  FailpointRegistry::Global().Disarm("privacy/budget/after_commit");
  auto recovered = server.AnswerBatch(queries.value(), {"dwork", 0.15, 4});
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered.value().stale);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.95);
  EXPECT_LE(server.ledger().spent_epsilon(), 1.0);
}

TEST_F(ChaosTest, InducedRefusalDegradesToStaleWithoutSpending) {
  // A ledger made to refuse (without being exhausted) must take the same
  // degradation path as a real refusal: newest cached release, stale flag,
  // stale counter, zero spend movement.
  const Histogram truth = ChaosTruth();
  ReleaseServer server(truth, /*total_epsilon=*/10.0);
  Rng workload_rng(17);
  auto queries = RandomRangeWorkload(truth.size(), 25, workload_rng);
  ASSERT_TRUE(queries.ok());

  auto fresh = server.AnswerBatch(queries.value(), {"noise_first", 0.3, 1});
  ASSERT_TRUE(fresh.ok());
  ASSERT_FALSE(fresh.value().stale);
  const double spent_before = server.ledger().spent_epsilon();
  const std::uint64_t stale_before = CounterValue("serve/batches_stale");

  FailpointConfig refuse;
  refuse.status = Status::ResourceExhausted("injected ledger refusal");
  FailpointRegistry::Global().Arm("serve/ledger/charge", refuse);

  auto degraded = server.AnswerBatch(queries.value(), {"noise_first", 0.3, 2});
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded.value().stale);
  EXPECT_EQ(degraded.value().served.seed, 1u);
  EXPECT_EQ(degraded.value().answers, fresh.value().answers);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), spent_before);
  EXPECT_EQ(CounterValue("serve/batches_stale"), stale_before + 1);
  // GetRelease keeps the typed refusal (degradation is batch policy only).
  auto direct = server.GetRelease({"noise_first", 0.3, 2});
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kResourceExhausted);

  // Disarmed, the same request publishes for real.
  FailpointRegistry::Global().Disarm("serve/ledger/charge");
  auto recovered = server.AnswerBatch(queries.value(), {"noise_first", 0.3, 2});
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered.value().stale);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), spent_before + 0.3);
}

TEST_F(ChaosTest, RetryRecoversFromTransientFailureOnSchedule) {
  // One transient failure, then success: exactly one backoff sleep of
  // initial_backoff, one retry counted, one charge, one publisher run.
  const Histogram truth = ChaosTruth();
  FakeClock clock;
  ReleaseServerOptions options;
  options.clock = &clock;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = milliseconds(2);
  ReleaseServer server(truth, 10.0, options);
  Rng workload_rng(19);
  auto queries = RandomRangeWorkload(truth.size(), 10, workload_rng);
  ASSERT_TRUE(queries.ok());

  FailpointConfig fail_once;
  fail_once.status = Status::Internal("injected transient failure");
  fail_once.trigger = FailpointTrigger::kOnce;
  FailpointRegistry::Global().Arm("serve/cache/publish", fail_once);

  auto batch = server.AnswerBatch(queries.value(), {"noise_first", 0.4, 9});
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch.value().stale);
  EXPECT_EQ(FailpointRegistry::Global().Stats("serve/cache/publish").fires,
            1u);
  EXPECT_EQ(clock.total_slept(), nanoseconds(milliseconds(2)));
  EXPECT_EQ(CounterValue("serve/retries"), 1u);
  EXPECT_EQ(CounterValue("serve/deadline_exceeded"), 0u);
  EXPECT_EQ(server.ledger().charge_count(), 1u);
  EXPECT_EQ(CounterValue("publisher/noise_first/runs"), 1u);
}

TEST_F(ChaosTest, RetriesExhaustedReturnLastTransientError) {
  // A permanently failing publish burns exactly max_attempts attempts with
  // the exponential schedule, then surfaces the underlying kInternal. The
  // failpoint fires before the charge, so no budget is spent.
  const Histogram truth = ChaosTruth();
  FakeClock clock;
  ReleaseServerOptions options;
  options.clock = &clock;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = milliseconds(1);
  options.retry.backoff_multiplier = 2.0;
  ReleaseServer server(truth, 10.0, options);
  Rng workload_rng(23);
  auto queries = RandomRangeWorkload(truth.size(), 10, workload_rng);
  ASSERT_TRUE(queries.ok());

  FailpointConfig always_fail;
  always_fail.status = Status::Internal("injected persistent failure");
  FailpointRegistry::Global().Arm("serve/cache/publish", always_fail);

  auto batch = server.AnswerBatch(queries.value(), {"noise_first", 0.4, 5});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInternal);
  EXPECT_EQ(FailpointRegistry::Global().Stats("serve/cache/publish").fires,
            3u);
  // Sleeps: 1ms before attempt 2, 2ms before attempt 3.
  EXPECT_EQ(clock.total_slept(), nanoseconds(milliseconds(3)));
  EXPECT_EQ(CounterValue("serve/retries"), 2u);
  EXPECT_EQ(server.ledger().charge_count(), 0u);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.0);
}

TEST_F(ChaosTest, RetryRespectsBatchDeadline) {
  // deadline = 100ms, backoffs 10/20/40/80 capped at 80: attempts run at
  // t = 0, 10, 30, 70; the next sleep (80ms) would land at 150ms > 100ms,
  // so the batch gives up typed after exactly 4 attempts and 70ms of
  // simulated sleeping — and no wall time.
  const Histogram truth = ChaosTruth();
  FakeClock clock;
  ReleaseServerOptions options;
  options.clock = &clock;
  options.retry.max_attempts = 10;
  options.retry.initial_backoff = milliseconds(10);
  options.retry.backoff_multiplier = 2.0;
  options.retry.max_backoff = milliseconds(80);
  options.retry.deadline = milliseconds(100);
  ReleaseServer server(truth, 10.0, options);
  Rng workload_rng(29);
  auto queries = RandomRangeWorkload(truth.size(), 10, workload_rng);
  ASSERT_TRUE(queries.ok());

  FailpointConfig always_fail;
  always_fail.status = Status::Internal("injected persistent failure");
  FailpointRegistry::Global().Arm("serve/cache/publish", always_fail);

  auto batch = server.AnswerBatch(queries.value(), {"noise_first", 0.4, 6});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(batch.status().message().find("injected persistent failure"),
            std::string::npos);
  EXPECT_EQ(FailpointRegistry::Global().Stats("serve/cache/publish").fires,
            4u);
  EXPECT_EQ(clock.total_slept(), nanoseconds(milliseconds(70)));
  EXPECT_EQ(CounterValue("serve/retries"), 3u);
  EXPECT_EQ(CounterValue("serve/deadline_exceeded"), 1u);
}

TEST_F(ChaosTest, InjectedLatencyAndDispatchFailureNeverChangeAnswers) {
  // Latency everywhere (batch front door, per query, thread-pool queue) and
  // an induced pool-dispatch failure must only cost (simulated) time: the
  // answers are bit-identical to the calm run, and the dispatch failure
  // falls back to inline answering instead of failing the batch.
  const Histogram truth = ChaosTruth(256);
  ThreadPool pool(4);
  ReleaseServerOptions options;
  options.pool = &pool;
  options.min_parallel_batch = 1;
  ReleaseServer server(truth, 10.0, options);
  const ServeRequest request{"dwork", 0.5, 3};
  Rng workload_rng(31);
  auto queries = RandomRangeWorkload(truth.size(), 512, workload_rng);
  ASSERT_TRUE(queries.ok());

  auto calm = server.AnswerBatch(queries.value(), request);
  ASSERT_TRUE(calm.ok());

  FakeClock clock;
  FailpointRegistry::Global().set_clock(&clock);
  FailpointConfig batch_delay;
  batch_delay.action = FailpointConfig::Action::kDelay;
  batch_delay.delay = milliseconds(3);
  FailpointRegistry::Global().Arm("serve/answer_batch", batch_delay);
  FailpointConfig query_delay;
  query_delay.action = FailpointConfig::Action::kDelay;
  query_delay.delay = milliseconds(1);
  query_delay.trigger = FailpointTrigger::kEveryNth;
  query_delay.every_nth = 5;
  FailpointRegistry::Global().Arm("serve/answer_query", query_delay);
  FailpointConfig dispatch_fail;
  dispatch_fail.status = Status::Internal("injected dispatch failure");
  FailpointRegistry::Global().Arm("serve/pool_dispatch", dispatch_fail);

  auto chaotic = server.AnswerBatch(queries.value(), request);
  ASSERT_TRUE(chaotic.ok());
  EXPECT_FALSE(chaotic.value().stale);
  EXPECT_TRUE(chaotic.value().cache_hit);
  EXPECT_EQ(chaotic.value().answers, calm.value().answers);
  EXPECT_EQ(FailpointRegistry::Global().Stats("serve/pool_dispatch").fires,
            1u);
  // Dispatch fell back to inline: every query evaluated on the caller, so
  // the per-query site saw all 512 hits and slept floor(512/5) = 102 ms
  // plus the 3ms front-door delay — all on the fake clock.
  EXPECT_EQ(FailpointRegistry::Global().Stats("serve/answer_query").hits,
            512u);
  EXPECT_EQ(clock.total_slept(), nanoseconds(milliseconds(105)));
}

TEST_F(ChaosTest, ThreadPoolQueueDelayNeverChangesParallelForResults) {
  ThreadPool pool(4);
  FakeClock clock;
  FailpointRegistry::Global().set_clock(&clock);
  FailpointConfig task_delay;
  task_delay.action = FailpointConfig::Action::kDelay;
  task_delay.delay = milliseconds(1);
  FailpointRegistry::Global().Arm("threadpool/task_queue", task_delay);

  std::vector<std::uint64_t> out(1000, 0);
  pool.ParallelFor(0, out.size(), [&out](std::size_t i) {
    out[i] = static_cast<std::uint64_t>(i) * i;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<std::uint64_t>(i) * i) << i;
  }
  // 4 workers, 4 chunk tasks, one dequeue-delay each — all simulated.
  EXPECT_EQ(clock.total_slept(), nanoseconds(milliseconds(4)));
}

TEST_F(ChaosTest, TruncatedCsvReadSurfacesTypedError) {
  const std::string path = ::testing::TempDir() + "chaos_truncated.csv";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    for (int i = 0; i < 100; ++i) {
      out << i << "," << (i * 3 + 1) << "\n";
    }
  }

  FailpointConfig truncate;
  truncate.status = Status::ParseError("injected truncated read");
  truncate.trigger = FailpointTrigger::kEveryNth;
  truncate.every_nth = 40;
  FailpointRegistry::Global().Arm("data/csv/read_line", truncate);

  auto loaded = LoadHistogramCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("injected truncated read"),
            std::string::npos);

  // Disarmed, the same file loads completely — the failure was injected,
  // never a silently short histogram.
  FailpointRegistry::Global().Disarm("data/csv/read_line");
  auto recovered = LoadHistogramCsv(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().size(), 100u);
}

// --- Seeded whole-schedule determinism across thread counts ---

struct ChaosOutcome {
  // Per batch, in request order.
  std::vector<int> codes;
  std::vector<bool> stale;
  std::vector<bool> cache_hit;
  std::vector<std::uint64_t> served_seeds;
  std::vector<std::vector<double>> answers;  // empty for failed batches
  // Final server state.
  double spent = 0.0;
  std::size_t charge_count = 0;
  std::size_t cache_size = 0;
  // Serve-layer observability (all incremented on serial control paths).
  std::uint64_t batches = 0;
  std::uint64_t batches_stale = 0;
  std::uint64_t retries = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t ledger_charges = 0;
  std::uint64_t ledger_refusals = 0;
  std::uint64_t publisher_runs_nf = 0;
  std::uint64_t publisher_runs_dwork = 0;
  // Fault-schedule fingerprint (how often each injected fault actually
  // fired) — also replayed exactly by the seed.
  std::uint64_t publish_fires = 0;
  std::uint64_t charge_fires = 0;

  friend bool operator==(const ChaosOutcome&, const ChaosOutcome&) = default;
};

// Drives one fixed request sequence against a fresh server under a seeded
// fault schedule: induced publisher failures and ledger refusals
// (probability triggers, drawn on the serial driver path so the draw order
// is the batch order), plus pure-latency injection on the per-query and
// thread-pool sites (which may interleave freely across threads without
// affecting any recorded outcome).
ChaosOutcome RunSeededSchedule(std::size_t num_threads, std::uint64_t seed) {
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  obs::Registry::Global().Reset();

  FakeClock clock;
  registry.set_clock(&clock);
  registry.SeedSchedule(seed);

  FailpointConfig publish_fail;
  publish_fail.status = Status::Internal("injected publisher failure");
  publish_fail.trigger = FailpointTrigger::kProbability;
  publish_fail.probability = 0.3;
  registry.Arm("serve/cache/publish", publish_fail);

  FailpointConfig charge_refuse;
  charge_refuse.status = Status::ResourceExhausted("injected refusal");
  charge_refuse.trigger = FailpointTrigger::kProbability;
  charge_refuse.probability = 0.25;
  registry.Arm("serve/ledger/charge", charge_refuse);

  FailpointConfig query_delay;
  query_delay.action = FailpointConfig::Action::kDelay;
  query_delay.delay = std::chrono::microseconds(50);
  query_delay.trigger = FailpointTrigger::kEveryNth;
  query_delay.every_nth = 7;
  registry.Arm("serve/answer_query", query_delay);

  FailpointConfig task_delay;
  task_delay.action = FailpointConfig::Action::kDelay;
  task_delay.delay = std::chrono::microseconds(20);
  task_delay.trigger = FailpointTrigger::kEveryNth;
  task_delay.every_nth = 3;
  registry.Arm("threadpool/task_queue", task_delay);

  const Histogram truth = ChaosTruth();
  ThreadPool pool(num_threads);
  ReleaseServerOptions options;
  options.pool = &pool;
  options.min_parallel_batch = 1;  // fan out even these small batches
  options.clock = &clock;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = milliseconds(1);
  ReleaseServer server(truth, /*total_epsilon=*/1.2, options);

  Rng workload_rng(17);
  auto queries = RandomRangeWorkload(truth.size(), 96, workload_rng);
  EXPECT_TRUE(queries.ok());

  ChaosOutcome outcome;
  constexpr std::size_t kBatches = 32;
  for (std::size_t b = 0; b < kBatches; ++b) {
    ServeRequest request;
    request.publisher = (b % 2 == 0) ? "noise_first" : "dwork";
    request.epsilon = 0.1;
    request.seed = b % 6;
    auto batch = server.AnswerBatch(queries.value(), request);
    outcome.codes.push_back(static_cast<int>(batch.status().code()));
    outcome.stale.push_back(batch.ok() && batch.value().stale);
    outcome.cache_hit.push_back(batch.ok() && batch.value().cache_hit);
    outcome.served_seeds.push_back(batch.ok() ? batch.value().served.seed
                                              : 0);
    outcome.answers.push_back(batch.ok() ? batch.value().answers
                                         : std::vector<double>{});
  }

  outcome.spent = server.ledger().spent_epsilon();
  outcome.charge_count = server.ledger().charge_count();
  outcome.cache_size = server.cache().size();
  outcome.batches = CounterValue("serve/batches");
  outcome.batches_stale = CounterValue("serve/batches_stale");
  outcome.retries = CounterValue("serve/retries");
  outcome.deadline_exceeded = CounterValue("serve/deadline_exceeded");
  outcome.cache_hits = CounterValue("serve/cache/hits");
  outcome.cache_misses = CounterValue("serve/cache/misses");
  outcome.ledger_charges = CounterValue("serve/ledger/charges");
  outcome.ledger_refusals = CounterValue("serve/ledger/refusals");
  outcome.publisher_runs_nf = CounterValue("publisher/noise_first/runs");
  outcome.publisher_runs_dwork = CounterValue("publisher/dwork/runs");
  outcome.publish_fires = registry.Stats("serve/cache/publish").fires;
  outcome.charge_fires = registry.Stats("serve/ledger/charge").fires;

  registry.DisarmAll();
  registry.set_clock(nullptr);
  return outcome;
}

TEST_F(ChaosTest, SameScheduleSeedIsBitIdenticalAtAnyThreadCount) {
  // The determinism contract: a chaos schedule is a pure function of its
  // seed. Pool width changes who sleeps when, never what anyone computes.
  constexpr std::uint64_t kScheduleSeed = 20120412;  // pinned in EXPERIMENTS.md
  const ChaosOutcome serial = RunSeededSchedule(1, kScheduleSeed);
  const ChaosOutcome wide = RunSeededSchedule(4, kScheduleSeed);
  EXPECT_EQ(serial, wide);
  const ChaosOutcome replay = RunSeededSchedule(4, kScheduleSeed);
  EXPECT_EQ(wide, replay);

  // The schedule actually bit: faults fired and left visible scars.
  EXPECT_GT(serial.publish_fires + serial.charge_fires, 0u);
  EXPECT_EQ(serial.batches, 32u);
  // Spend never exceeded the grant, fault storm or not.
  EXPECT_LE(serial.spent, 1.2 + 1e-9);

  // A different seed is a different storm.
  const ChaosOutcome other = RunSeededSchedule(1, kScheduleSeed + 1);
  EXPECT_NE(serial, other);
}

#endif  // DPHIST_FAILPOINTS

}  // namespace
}  // namespace serve
}  // namespace dphist
