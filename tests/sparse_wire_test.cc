// Property/fuzz battery for the sparse wire frames: binary round-trips at
// every size, JSON decodes to the identical message (bit-exact doubles,
// full-precision u64 keys), adversarial inputs (duplicates, disorder,
// truncation, bit flips) are typed rejections, and a checked-in golden
// file pins the byte layout across hosts and endiannesses.

#include "dphist/net/wire_codec.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dphist {
namespace net {
namespace {

WireSparseHistogram SampleSparse(std::size_t entries) {
  WireSparseHistogram histogram;
  histogram.key = serve::ReleaseKey{"acme", "clicks", 0xFEDCBA9876543210ull,
                                    "sparse_pure", 0.25, 11};
  histogram.domain_size = 1ULL << 40;
  for (std::size_t i = 0; i < entries; ++i) {
    // Strictly increasing keys spread across the domain; counts are exactly
    // representable so the bytes are identical on every host.
    histogram.keys.push_back(static_cast<std::uint64_t>(i) * 0x10000001ULL);
    histogram.counts.push_back(static_cast<double>(i) * 1.5 - 7.25);
  }
  return histogram;
}

TEST(SparseWireTest, BinaryRoundTripsAtEverySize) {
  for (const std::size_t size : {0u, 1u, 2u, 37u, 1000u}) {
    const WireSparseHistogram histogram = SampleSparse(size);
    auto decoded = DecodeFrame(EncodeSparseHistogram(histogram));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded.value().type, WireType::kSparseHistogram);
    EXPECT_TRUE(decoded.value().sparse_histogram == histogram)
        << "size " << size;
  }
}

TEST(SparseWireTest, JsonRoundTripsToIdenticalMessage) {
  for (const std::size_t size : {0u, 1u, 2u, 37u, 1000u}) {
    WireSparseHistogram histogram = SampleSparse(size);
    if (size > 0) {
      histogram.counts[0] = 0.1 + 0.2;  // not exactly representable
    }
    auto decoded = DecodeJson(EncodeSparseHistogramJson(histogram));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded.value().type, WireType::kSparseHistogram);
    EXPECT_TRUE(decoded.value().sparse_histogram == histogram)
        << "size " << size;
    // The codecs are interchangeable: re-encoding the JSON-decoded message
    // in binary must reproduce the direct binary bytes exactly.
    EXPECT_EQ(EncodeSparseHistogram(decoded.value().sparse_histogram),
              EncodeSparseHistogram(histogram))
        << "size " << size;
  }
}

TEST(SparseWireTest, MaxU64KeysSurviveBothCodecs) {
  // The codec carries the full u64 key range — the 2^63 domain cap is a
  // SparseHistogram invariant, not a framing rule — so keys near 2^64 - 1
  // (> 2^53: breaks if anything routes through double) must round-trip.
  WireSparseHistogram histogram;
  histogram.key = serve::ReleaseKey{"t", "d", 1, "sparse_pure", 1.0, 2};
  histogram.domain_size = 0xFFFFFFFFFFFFFFFFull;
  histogram.keys = {0, 1, 0xFFFFFFFFFFFFFFFEull, 0xFFFFFFFFFFFFFFFFull};
  histogram.counts = {1.0, 2.0, 3.0, 4.0};
  auto binary = DecodeFrame(EncodeSparseHistogram(histogram));
  ASSERT_TRUE(binary.ok()) << binary.status().ToString();
  EXPECT_TRUE(binary.value().sparse_histogram == histogram);
  auto json = DecodeJson(EncodeSparseHistogramJson(histogram));
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_TRUE(json.value().sparse_histogram == histogram);
}

TEST(SparseWireTest, DuplicateKeysAreRejected) {
  // The encoder writes whatever it is given; the decoder owns the
  // strictly-increasing invariant on both codecs.
  WireSparseHistogram histogram = SampleSparse(3);
  histogram.keys[1] = histogram.keys[0];  // duplicate
  EXPECT_FALSE(DecodeFrame(EncodeSparseHistogram(histogram)).ok());
  EXPECT_FALSE(DecodeJson(EncodeSparseHistogramJson(histogram)).ok());
}

TEST(SparseWireTest, OutOfOrderKeysAreRejected) {
  WireSparseHistogram histogram = SampleSparse(3);
  std::swap(histogram.keys[0], histogram.keys[2]);
  EXPECT_FALSE(DecodeFrame(EncodeSparseHistogram(histogram)).ok());
  EXPECT_FALSE(DecodeJson(EncodeSparseHistogramJson(histogram)).ok());
}

TEST(SparseWireTest, JsonKeyCountArityMismatchIsRejected) {
  WireSparseHistogram histogram = SampleSparse(2);
  histogram.counts.pop_back();  // 2 keys, 1 count
  EXPECT_FALSE(DecodeJson(EncodeSparseHistogramJson(histogram)).ok());
}

TEST(SparseWireTest, EveryTruncationIsRejected) {
  const std::string frame = EncodeSparseHistogram(SampleSparse(3));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(DecodeFrame(frame.substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(SparseWireTest, EveryBitFlipIsRejected) {
  const std::string frame = EncodeSparseHistogram(SampleSparse(1));
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = frame;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      EXPECT_FALSE(DecodeFrame(corrupt).ok())
          << "bit " << bit << " of byte " << byte << " flipped undetected";
    }
  }
}

TEST(SparseWireTest, GoldenFileRoundTrips) {
  // The checked-in golden frame: encoding the reference message must
  // reproduce the file byte for byte on ANY host (the cross-endian
  // guarantee), and the file must decode back to the reference message.
  const std::string path =
      std::string(DPHIST_TESTDATA_DIR) + "/wire_sparse_histogram_v1.bin";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::ostringstream bytes;
  bytes << in.rdbuf();
  const std::string golden = bytes.str();
  ASSERT_FALSE(golden.empty());

  const WireSparseHistogram reference = SampleSparse(3);
  EXPECT_EQ(EncodeSparseHistogram(reference), golden);
  auto decoded = DecodeFrame(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value().sparse_histogram == reference);
}

}  // namespace
}  // namespace net
}  // namespace dphist
