// The observability subsystem's contracts: counters are exact under
// concurrent writers, recording is a no-op when disabled, P-square
// quantiles track known distributions, timer spans nest into slash paths,
// snapshots are stable and name-sorted, and the JSON-lines export round-
// trips through its own parser. This binary also runs under TSan in CI —
// the concurrency tests below are the racy surface.

#include "dphist/obs/obs.h"

#include <clocale>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/obs/export.h"
#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace obs {
namespace {

// Every test runs with recording enabled and restores the prior flag so
// the rest of the suite (which expects the DPHIST_OBS_OUT-derived default)
// is unaffected. Metric names are unique per test: the registry never
// erases, so reuse across tests would alias state.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = Enabled();
    Registry::Global().set_enabled(true);
  }

  void TearDown() override {
    Registry::Global().set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(ObsTest, CounterExactUnderConcurrentWriters) {
  Counter& counter = Registry::Global().GetCounter("test/concurrent_adds");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        counter.Increment();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST_F(ObsTest, DistributionCountExactUnderConcurrentWriters) {
  Distribution& dist =
      Registry::Global().GetDistribution("test/concurrent_records");
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dist, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        dist.Record(static_cast<double>(t * kRecordsPerThread + i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const DistributionSnapshot snapshot = dist.Snapshot();
  EXPECT_EQ(snapshot.count,
            static_cast<std::uint64_t>(kThreads) * kRecordsPerThread);
  EXPECT_EQ(snapshot.min, 0.0);
  EXPECT_EQ(snapshot.max, kThreads * kRecordsPerThread - 1.0);
}

TEST_F(ObsTest, RegistryLookupRaceReturnsOneInstance) {
  // Concurrent first-touch of the same name must converge on a single
  // counter (and never invalidate previously returned references).
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, t] {
      Counter& counter =
          Registry::Global().GetCounter("test/lookup_race");
      counter.Increment();
      seen[t] = &counter;
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);
  }
  EXPECT_EQ(seen[0]->value(), static_cast<std::uint64_t>(kThreads));
}

TEST_F(ObsTest, DisabledRecordingIsNoOp) {
  Counter& counter = Registry::Global().GetCounter("test/disabled_counter");
  Distribution& dist =
      Registry::Global().GetDistribution("test/disabled_dist");
  Registry::Global().set_enabled(false);
  counter.Add(41);
  dist.Record(1.5);
  {
    ScopedTimer timer("test/disabled_span");
    EXPECT_EQ(timer.path(), "");
    EXPECT_EQ(timer.elapsed_ms(), 0.0);
  }
  Registry::Global().set_enabled(true);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(dist.Snapshot().count, 0u);
}

TEST_F(ObsTest, DistributionExactStatsForSmallSamples) {
  Distribution& dist = Registry::Global().GetDistribution("test/small_dist");
  for (double v : {4.0, 1.0, 3.0}) {
    dist.Record(v);
  }
  const DistributionSnapshot s = dist.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 3.0);
  // Below five samples the quantiles are exact (interpolated) order
  // statistics of the buffer.
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.p95, 3.9, 1e-12);
}

TEST_F(ObsTest, P2QuantileTracksUniformStream) {
  P2Quantile p50(0.5);
  P2Quantile p95(0.95);
  Rng rng(123);
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = SampleUniformDouble(rng);
    p50.Add(x);
    p95.Add(x);
  }
  // Streaming estimates, so a few percent of slack — the contract is
  // "dashboard-accurate", not exact order statistics.
  EXPECT_NEAR(p50.Estimate(), 0.5, 0.03);
  EXPECT_NEAR(p95.Estimate(), 0.95, 0.03);
}

TEST_F(ObsTest, P2QuantileEstimateBeforeAnySample) {
  EXPECT_EQ(P2Quantile(0.5).Estimate(), 0.0);
}

TEST_F(ObsTest, ScopedTimerNestsIntoSlashPaths) {
  {
    ScopedTimer outer("test_span/publish");
    EXPECT_EQ(outer.path(), "test_span/publish");
    {
      ScopedTimer inner("solve");
      EXPECT_EQ(inner.path(), "test_span/publish/solve");
    }
    // Sibling after the first child: the parent must be restored.
    ScopedTimer sibling("export");
    EXPECT_EQ(sibling.path(), "test_span/publish/export");
  }
  // A fresh root after everything unwound.
  ScopedTimer root("test_span/root");
  EXPECT_EQ(root.path(), "test_span/root");

  const RegistrySnapshot snapshot = Registry::Global().Snapshot();
  bool found_child = false;
  for (const DistributionSnapshot& dist : snapshot.distributions) {
    if (dist.name == "test_span/publish/solve") {
      found_child = true;
      EXPECT_EQ(dist.count, 1u);
      EXPECT_GE(dist.min, 0.0);
    }
  }
  EXPECT_TRUE(found_child);
}

TEST_F(ObsTest, SnapshotIsStableAndNameSorted) {
  Registry::Global().GetCounter("test/stable_b").Add(2);
  Registry::Global().GetCounter("test/stable_a").Add(1);
  Registry::Global().GetDistribution("test/stable_d").Record(1.0);

  const RegistrySnapshot first = Registry::Global().Snapshot();
  const RegistrySnapshot second = Registry::Global().Snapshot();

  ASSERT_FALSE(first.counters.empty());
  EXPECT_EQ(first.counters, second.counters);
  ASSERT_EQ(first.distributions.size(), second.distributions.size());
  for (std::size_t i = 0; i < first.distributions.size(); ++i) {
    EXPECT_EQ(first.distributions[i].name, second.distributions[i].name);
    EXPECT_EQ(first.distributions[i].count, second.distributions[i].count);
  }
  for (std::size_t i = 1; i < first.counters.size(); ++i) {
    EXPECT_LT(first.counters[i - 1].first, first.counters[i].first);
  }
  for (std::size_t i = 1; i < first.distributions.size(); ++i) {
    EXPECT_LT(first.distributions[i - 1].name, first.distributions[i].name);
  }
}

TEST_F(ObsTest, DrawCountsRouteThroughAttributionScope) {
  Counter& global = Registry::Global().GetCounter("rng/laplace_draws");
  Counter& mine = Registry::Global().GetCounter("test/attr_laplace");
  Counter& geo = Registry::Global().GetCounter("test/attr_geometric");
  const std::uint64_t global_before = global.value();
  {
    DrawAttributionScope scope(&mine, &geo);
    CountLaplaceDraws(3);
    {
      // Nested scope temporarily re-routes, then restores.
      Counter& other = Registry::Global().GetCounter("test/attr_other");
      DrawAttributionScope nested(&other, nullptr);
      CountLaplaceDraws(5);
      EXPECT_EQ(other.value(), 5u);
    }
    CountLaplaceDraws(4);
    CountGeometricDraws(2);
  }
  CountLaplaceDraws(1);  // outside any scope: global only
  EXPECT_EQ(mine.value(), 7u);
  EXPECT_EQ(geo.value(), 2u);
  EXPECT_EQ(global.value(), global_before + 13);
}

TEST_F(ObsTest, SamplersCountTheirDraws) {
  Counter& laplace = Registry::Global().GetCounter("rng/laplace_draws");
  Counter& geometric = Registry::Global().GetCounter("rng/geometric_draws");
  const std::uint64_t laplace_before = laplace.value();
  const std::uint64_t geometric_before = geometric.value();
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    SampleLaplace(rng, 1.0);
  }
  SampleTwoSidedGeometric(rng, 0.5);
  EXPECT_EQ(laplace.value(), laplace_before + 10);
  EXPECT_EQ(geometric.value(), geometric_before + 1);
}

TEST_F(ObsTest, JsonLinesRoundTripThroughParser) {
  Registry::Global().GetCounter("test/json_counter").Add(42);
  Distribution& dist = Registry::Global().GetDistribution("test/json_dist");
  for (double v : {0.5, 1.25, 2.0, 4.75, 8.5, 16.0}) {
    dist.Record(v);
  }
  const RegistrySnapshot snapshot = Registry::Global().Snapshot();
  std::ostringstream out;
  WriteSnapshotLines(out, snapshot, "obs_test");

  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  bool saw_counter = false;
  bool saw_dist = false;
  while (std::getline(in, line)) {
    ++lines;
    auto parsed = ParseFlatJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const JsonObject& object = parsed.value();
    ASSERT_TRUE(object.count("type")) << line;
    EXPECT_EQ(object.at("bench").string_value, "obs_test");
    if (object.at("name").string_value == "test/json_counter") {
      saw_counter = true;
      EXPECT_EQ(object.at("type").string_value, "counter");
      EXPECT_EQ(object.at("value").number_value, 42.0);
    }
    if (object.at("name").string_value == "test/json_dist") {
      saw_dist = true;
      EXPECT_EQ(object.at("type").string_value, "distribution");
      EXPECT_EQ(object.at("count").number_value, 6.0);
      EXPECT_EQ(object.at("min").number_value, 0.5);
      EXPECT_EQ(object.at("max").number_value, 16.0);
      // %.17g output round-trips doubles exactly.
      EXPECT_EQ(object.at("mean").number_value,
                (0.5 + 1.25 + 2.0 + 4.75 + 8.5 + 16.0) / 6.0);
    }
  }
  EXPECT_EQ(lines,
            snapshot.counters.size() + snapshot.distributions.size());
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_dist);
}

TEST_F(ObsTest, JsonWriterEscapesAndFormats) {
  JsonObjectWriter writer;
  writer.Str("quote", "a\"b\\c\nd")
      .Num("pi", 3.5)
      .Num("nan", std::nan(""))
      .Int("big", 1234567890123ull)
      .Bool("flag", true);
  const std::string line = writer.Finish();
  auto parsed = ParseFlatJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  const JsonObject& object = parsed.value();
  EXPECT_EQ(object.at("quote").string_value, "a\"b\\c\nd");
  EXPECT_EQ(object.at("pi").number_value, 3.5);
  EXPECT_EQ(object.at("nan").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(object.at("big").number_value, 1234567890123.0);
  EXPECT_TRUE(object.at("flag").bool_value);
}

TEST_F(ObsTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseFlatJson("").ok());
  EXPECT_FALSE(ParseFlatJson("not json").ok());
  EXPECT_FALSE(ParseFlatJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseFlatJson("{\"a\":1").ok());
  EXPECT_FALSE(ParseFlatJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseFlatJson("{\"a\":{\"nested\":1}}").ok());
  EXPECT_FALSE(ParseFlatJson("{\"a\":[1,2]}").ok());
  EXPECT_TRUE(ParseFlatJson("{}").ok());
  EXPECT_TRUE(ParseFlatJson("  {\"a\": -1.5e3, \"b\": null}  ").ok());
}

// Pins a comma-decimal C locale (if the host ships one) for the lifetime
// of a test, restoring the prior locale on destruction.
class ScopedCommaLocale {
 public:
  ScopedCommaLocale() {
    const char* current = std::setlocale(LC_ALL, nullptr);
    saved_ = current != nullptr ? current : "C";
    for (const char* name :
         {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR.utf8",
          "fr_FR", "es_ES.UTF-8", "it_IT.UTF-8", "nl_NL.UTF-8"}) {
      if (std::setlocale(LC_ALL, name) != nullptr) {
        // Confirm the locale really uses ',' as the decimal point —
        // some hosts alias unknown names to "C".
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "%.1f", 0.5);
        if (buffer[1] == ',') {
          active_ = true;
          return;
        }
      }
    }
    std::setlocale(LC_ALL, saved_.c_str());
  }
  ~ScopedCommaLocale() { std::setlocale(LC_ALL, saved_.c_str()); }

  bool active() const { return active_; }

 private:
  std::string saved_;
  bool active_ = false;
};

TEST_F(ObsTest, JsonRoundTripIsLocaleIndependent) {
  // Regression for the strtod/snprintf locale bug: under a comma-decimal
  // locale the old writer emitted "0,5" (not JSON) and the old parser
  // stopped at the '.' in "0.5", so bench-JSON round-trips — and the
  // regression gate comparing them — silently processed garbage. The
  // from_chars/to_chars paths must be byte-identical in any locale.
  const std::string expected_line =
      JsonObjectWriter().Num("v", 0.5).Num("w", -1.25e-3).Finish();
  ScopedCommaLocale comma;
  if (!comma.active()) {
    GTEST_SKIP() << "no comma-decimal locale installed on this host";
  }
  const std::string line =
      JsonObjectWriter().Num("v", 0.5).Num("w", -1.25e-3).Finish();
  EXPECT_EQ(line, expected_line);
  EXPECT_NE(line.find("0.5"), std::string::npos) << line;
  auto parsed = ParseFlatJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(parsed.value().at("v").number_value, 0.5);
  EXPECT_EQ(parsed.value().at("w").number_value, -1.25e-3);
}

TEST_F(ObsTest, ResetZeroesEverything) {
  Counter& counter = Registry::Global().GetCounter("test/reset_counter");
  Distribution& dist = Registry::Global().GetDistribution("test/reset_dist");
  counter.Add(5);
  dist.Record(2.5);
  Registry::Global().Reset();
  EXPECT_EQ(counter.value(), 0u);
  const DistributionSnapshot snapshot = dist.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.mean, 0.0);
  EXPECT_EQ(snapshot.p95, 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace dphist
