// The injectable time source: FakeClock advances simulated time instantly
// and deterministically; the real clock is monotone. Everything here must
// finish in microseconds — no wall sleeping.

#include "dphist/common/clock.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dphist {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

TEST(FakeClockTest, StartsAtEpochAndAdvancesOnSleep) {
  FakeClock clock;
  const auto start = clock.Now();
  clock.SleepFor(milliseconds(250));
  EXPECT_EQ(clock.Now() - start, nanoseconds(milliseconds(250)));
  EXPECT_EQ(clock.total_slept(), nanoseconds(milliseconds(250)));
}

TEST(FakeClockTest, AdvanceMovesTimeWithoutCountingAsSleep) {
  FakeClock clock;
  const auto start = clock.Now();
  clock.Advance(milliseconds(10));
  EXPECT_EQ(clock.Now() - start, nanoseconds(milliseconds(10)));
  EXPECT_EQ(clock.total_slept(), nanoseconds(0));
}

TEST(FakeClockTest, CustomEpoch) {
  const auto epoch =
      std::chrono::steady_clock::time_point(std::chrono::hours(100));
  FakeClock clock(epoch);
  EXPECT_EQ(clock.Now(), epoch);
}

TEST(FakeClockTest, SleepsAccumulate) {
  FakeClock clock;
  clock.SleepFor(milliseconds(1));
  clock.SleepFor(milliseconds(2));
  clock.SleepFor(milliseconds(4));
  EXPECT_EQ(clock.total_slept(), nanoseconds(milliseconds(7)));
}

TEST(FakeClockTest, ConcurrentSleepsNeverLoseTime) {
  // Total slept is the sum of every SleepFor regardless of interleaving —
  // the property retry tests rely on when several batches back off at once.
  FakeClock clock;
  constexpr int kThreads = 4;
  constexpr int kSleepsPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < kSleepsPerThread; ++i) {
        clock.SleepFor(nanoseconds(3));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(clock.total_slept(),
            nanoseconds(3 * kThreads * kSleepsPerThread));
}

TEST(RealClockTest, NowIsMonotone) {
  Clock& real = Clock::Real();
  const auto a = real.Now();
  const auto b = real.Now();
  EXPECT_LE(a, b);
  // Same singleton every time.
  EXPECT_EQ(&Clock::Real(), &real);
}

TEST(RealClockTest, SleepForZeroReturnsImmediately) {
  Clock::Real().SleepFor(nanoseconds(0));
}

}  // namespace
}  // namespace dphist
