// Verifies the umbrella header is self-contained and the advertised
// one-liner workflow compiles and runs.

#include "dphist/dphist.h"

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(UmbrellaTest, OneLinerWorkflow) {
  Histogram truth({3.0, 1.0, 4.0, 1.0, 5.0});
  Rng rng(42);
  auto released = NoiseFirst().Publish(truth, 0.5, rng);
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(released.value().size(), truth.size());
}

TEST(UmbrellaTest, EveryMajorTypeIsVisible) {
  // Spot-check one symbol per subsystem.
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(PublisherRegistry::PaperNames().size(), 5u);
  EXPECT_TRUE(Bucketization::SingleBucket(4).ok());
  EXPECT_TRUE(LaplaceMechanism::Create(1.0, 1.0).ok());
  EXPECT_EQ(AllUnitWorkload(3).size(), 3u);
  EXPECT_EQ(MakeAge(1).histogram.size(), 100u);
  EXPECT_DOUBLE_EQ(HaarWavelet::GeneralizedSensitivity(8), 4.0);
}

}  // namespace
}  // namespace dphist
