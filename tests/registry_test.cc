#include "dphist/algorithms/registry.h"

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(RegistryTest, PaperNamesStable) {
  const std::vector<std::string> names = PublisherRegistry::PaperNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "dwork");
  EXPECT_EQ(names[1], "boost");
  EXPECT_EQ(names[2], "privelet");
  EXPECT_EQ(names[3], "noise_first");
  EXPECT_EQ(names[4], "structure_first");
}

TEST(RegistryTest, BuiltinNamesExtendPaperNames) {
  const std::vector<std::string> paper = PublisherRegistry::PaperNames();
  const std::vector<std::string> all = PublisherRegistry::BuiltinNames();
  ASSERT_EQ(all.size(), 11u);
  for (std::size_t i = 0; i < paper.size(); ++i) {
    EXPECT_EQ(all[i], paper[i]);
  }
  EXPECT_EQ(all[5], "geometric");
  EXPECT_EQ(all[6], "efpa");
  EXPECT_EQ(all[7], "mwem");
  EXPECT_EQ(all[8], "p_hp");
  EXPECT_EQ(all[9], "ahp");
  EXPECT_EQ(all[10], "gs");
}

TEST(RegistryTest, MakeEveryBuiltin) {
  for (const std::string& name : PublisherRegistry::BuiltinNames()) {
    auto made = PublisherRegistry::Make(name);
    ASSERT_TRUE(made.ok()) << name;
    EXPECT_EQ(made.value()->name(), name);
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto made = PublisherRegistry::Make("dawa");
  EXPECT_FALSE(made.ok());
  EXPECT_EQ(made.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, MakePaperSuiteSize) {
  EXPECT_EQ(PublisherRegistry::MakePaperSuite().size(), 5u);
}

TEST(RegistryTest, MakeAllReturnsWorkingPublishers) {
  const Histogram truth({10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0});
  Rng rng(1);
  auto all = PublisherRegistry::MakeAll();
  ASSERT_EQ(all.size(), 11u);
  for (const auto& publisher : all) {
    Rng local = rng.Fork();
    auto out = publisher->Publish(truth, 1.0, local);
    ASSERT_TRUE(out.ok()) << publisher->name();
    EXPECT_EQ(out.value().size(), truth.size()) << publisher->name();
  }
}

}  // namespace
}  // namespace dphist
