// Crash-recovery battery for the durable release store. The invariants:
//
//   * NO OVERSPEND: after any crash + replay, a namespace's replayed spend
//     never exceeds what the pre-crash ledger had committed, and never
//     exceeds the grant.
//   * EXACTLY-ONCE PUBLISH: every release that was acknowledged to a
//     caller before the crash is present after replay (acked => durable),
//     and replaying a journal reconstructs each release at most once.
//   * DETERMINISM: the same schedule seed produces a bit-identical journal
//     and bit-identical recovered state at pool widths 1 and 4.
//
// The crash-point sweeps (replay every byte prefix / every ack boundary)
// run in every build; the fault-injection sweeps and the real
// kill-and-replay death test additionally need -DDPHIST_FAILPOINTS=ON.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/clock.h"
#include "dphist/common/status.h"
#include "dphist/common/thread_pool.h"
#include "dphist/data/generators.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"
#include "dphist/serve/journal.h"
#include "dphist/serve/release_server.h"
#include "dphist/sparse/sparse_histogram.h"
#include "dphist/testing/failpoint.h"

namespace dphist {
namespace serve {
namespace {

constexpr std::uint64_t kChaosSeed = 20120412;  // the paper's ICDE date

Histogram ChaosTruth(std::size_t n = 32, std::uint64_t seed = 5) {
  return MakeSearchLogs(n, seed).histogram;
}

// In-memory sink capturing exactly the bytes a real file would hold — a
// byte prefix of `bytes` is a crash at that point.
class CaptureSink final : public JournalSink {
 public:
  Status Append(const void* data, std::size_t size) override {
    bytes.append(static_cast<const char*>(data), size);
    return Status::Ok();
  }
  Status Sync() override { return Status::Ok(); }

  std::string bytes;
};

struct JournaledServer {
  std::unique_ptr<Journal> journal;
  std::unique_ptr<ReleaseServer> server;
  CaptureSink* sink = nullptr;  // owned by journal
};

JournaledServer MakeJournaledServer(double total_epsilon,
                                    ThreadPool* pool = nullptr) {
  JournaledServer js;
  auto sink = std::make_unique<CaptureSink>();
  js.sink = sink.get();
  auto journal = Journal::WithSink(std::move(sink));
  EXPECT_TRUE(journal.ok());
  js.journal = std::move(journal).value();
  ReleaseServerOptions options;
  options.journal = js.journal.get();
  options.pool = pool;
  js.server = std::make_unique<ReleaseServer>(options);
  EXPECT_TRUE(js.server
                  ->AddDataset({"acme", "clicks"}, ChaosTruth(32, 1),
                               total_epsilon)
                  .ok());
  EXPECT_TRUE(js.server
                  ->AddDataset({"zeta", "logs"}, ChaosTruth(32, 2),
                               total_epsilon)
                  .ok());
  return js;
}

// A fresh server with the same datasets, recovered from `bytes`.
struct RecoveredServer {
  std::unique_ptr<ReleaseServer> server;
  RecoveryStats stats;
};

RecoveredServer RecoverFromBytes(const std::string& bytes,
                                 double total_epsilon) {
  RecoveredServer rs;
  ReleaseServerOptions options;
  rs.server = std::make_unique<ReleaseServer>(options);
  EXPECT_TRUE(rs.server
                  ->AddDataset({"acme", "clicks"}, ChaosTruth(32, 1),
                               total_epsilon)
                  .ok());
  EXPECT_TRUE(rs.server
                  ->AddDataset({"zeta", "logs"}, ChaosTruth(32, 2),
                               total_epsilon)
                  .ok());
  auto replay = ReplayJournalBytes(bytes);
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  auto stats = rs.server->Recover(replay.value());
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  rs.stats = stats.value();
  return rs;
}

TEST(RecoveryTest, RecoverRebuildsLedgerSpendAndCacheContents) {
  auto live = MakeJournaledServer(/*total_epsilon=*/2.0);
  const TenantKey acme{"acme", "clicks"};
  const TenantKey zeta{"zeta", "logs"};
  std::vector<std::vector<double>> acked_counts;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto release = live.server->GetRelease(acme, {"noise_first", 0.3, seed});
    ASSERT_TRUE(release.ok());
    acked_counts.push_back(release.value()->histogram().counts());
  }
  ASSERT_TRUE(live.server->GetRelease(zeta, {"noise_first", 0.5, 9}).ok());
  const double acme_spent =
      live.server->LedgerFor(acme).value()->spent_epsilon();
  const double zeta_spent =
      live.server->LedgerFor(zeta).value()->spent_epsilon();

  auto recovered = RecoverFromBytes(live.sink->bytes, 2.0);
  EXPECT_EQ(recovered.stats.charges_replayed, 4u);
  EXPECT_EQ(recovered.stats.releases_replayed, 4u);
  EXPECT_EQ(recovered.stats.refusals, 0u);
  EXPECT_EQ(recovered.stats.skipped, 0u);

  // Ledger spend survives to the double's last bit.
  EXPECT_DOUBLE_EQ(
      recovered.server->LedgerFor(acme).value()->spent_epsilon(),
      acme_spent);
  EXPECT_DOUBLE_EQ(
      recovered.server->LedgerFor(zeta).value()->spent_epsilon(),
      zeta_spent);

  // Every acked release is present, bit-identical, and a cache hit — the
  // recovered server must not re-charge for it.
  EXPECT_EQ(recovered.server->cache().size(), 4u);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto release =
        recovered.server->GetRelease(acme, {"noise_first", 0.3, seed});
    ASSERT_TRUE(release.ok());
    EXPECT_EQ(release.value()->histogram().counts(),
              acked_counts[seed - 1]);
  }
  EXPECT_DOUBLE_EQ(
      recovered.server->LedgerFor(acme).value()->spent_epsilon(),
      acme_spent);
}

TEST(RecoveryTest, EveryBytePrefixRecoversWithoutOverspend) {
  // Crash ANYWHERE: for every byte prefix of the journal, recovery must
  // succeed and the replayed spend must never exceed what the live server
  // committed (and never the grant).
  constexpr double kGrant = 2.0;
  auto live = MakeJournaledServer(kGrant);
  const TenantKey acme{"acme", "clicks"};
  const TenantKey zeta{"zeta", "logs"};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ASSERT_TRUE(
        live.server->GetRelease(acme, {"noise_first", 0.4, seed}).ok());
    ASSERT_TRUE(live.server->GetRelease(zeta, {"dwork", 0.3, seed}).ok());
  }
  const std::string& bytes = live.sink->bytes;
  const double acme_committed =
      live.server->LedgerFor(acme).value()->spent_epsilon();
  const double zeta_committed =
      live.server->LedgerFor(zeta).value()->spent_epsilon();

  double prev_acme = 0.0;
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    auto recovered = RecoverFromBytes(bytes.substr(0, len), kGrant);
    const double acme_spent =
        recovered.server->LedgerFor(acme).value()->spent_epsilon();
    const double zeta_spent =
        recovered.server->LedgerFor(zeta).value()->spent_epsilon();
    EXPECT_LE(acme_spent, acme_committed) << "prefix " << len;
    EXPECT_LE(zeta_spent, zeta_committed) << "prefix " << len;
    EXPECT_LE(acme_spent, kGrant) << "prefix " << len;
    EXPECT_LE(zeta_spent, kGrant) << "prefix " << len;
    // Longer prefix, monotonically non-decreasing knowledge.
    EXPECT_GE(acme_spent, prev_acme) << "prefix " << len;
    prev_acme = acme_spent;
    // Exactly-once on replay: never more cached releases than charges
    // journaled (a publish record always follows its charge).
    EXPECT_LE(recovered.stats.releases_replayed,
              recovered.stats.charges_replayed)
        << "prefix " << len;
  }
}

TEST(RecoveryTest, EveryAckBoundaryKeepsAllAcknowledgedReleases) {
  // Crash immediately after the Nth acknowledgement: every release acked
  // by then must survive replay of the journal as it stood at that ack.
  auto live = MakeJournaledServer(/*total_epsilon=*/4.0);
  const TenantKey acme{"acme", "clicks"};
  struct Ack {
    std::uint64_t journal_bytes;  // sink size when the ack returned
    std::uint64_t seed;
    std::vector<double> counts;
  };
  std::vector<Ack> acks;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto release = live.server->GetRelease(acme, {"noise_first", 0.5, seed});
    ASSERT_TRUE(release.ok());
    acks.push_back({live.journal->bytes_written(), seed,
                    release.value()->histogram().counts()});
  }
  const std::uint64_t fp = FingerprintHistogram(ChaosTruth(32, 1));
  for (std::size_t n = 0; n < acks.size(); ++n) {
    auto recovered = RecoverFromBytes(
        live.sink->bytes.substr(0, acks[n].journal_bytes), 4.0);
    for (std::size_t i = 0; i <= n; ++i) {
      auto release = recovered.server->cache().Lookup(
          {"acme", "clicks", fp, "noise_first", 0.5, acks[i].seed});
      ASSERT_NE(release, nullptr)
          << "release acked at #" << i << " lost after crash at ack #" << n;
      EXPECT_EQ(release->histogram().counts(), acks[i].counts);
    }
  }
}

TEST(RecoveryTest, FingerprintMismatchSkipsStaleReleaseButKeepsSpend) {
  // The truth data changed across the restart: publish records no longer
  // match and must be skipped (serving them would answer for data the
  // server no longer holds) — but the charges still count; the epsilon
  // was genuinely spent against the old data.
  auto live = MakeJournaledServer(/*total_epsilon=*/2.0);
  const TenantKey acme{"acme", "clicks"};
  ASSERT_TRUE(live.server->GetRelease(acme, {"noise_first", 0.4, 1}).ok());
  ASSERT_TRUE(live.server->GetRelease(acme, {"noise_first", 0.4, 2}).ok());

  RecoveredServer rs;
  ReleaseServerOptions options;
  rs.server = std::make_unique<ReleaseServer>(options);
  // Different truth for acme; zeta's namespace is gone entirely.
  ASSERT_TRUE(rs.server
                  ->AddDataset({"acme", "clicks"}, ChaosTruth(32, 777), 2.0)
                  .ok());
  auto replay = ReplayJournalBytes(live.sink->bytes);
  ASSERT_TRUE(replay.ok());
  auto stats = rs.server->Recover(replay.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().charges_replayed, 2u);
  EXPECT_EQ(stats.value().releases_replayed, 0u);
  EXPECT_EQ(stats.value().skipped, 2u);  // two stale publish records
  EXPECT_EQ(rs.server->cache().size(), 0u);
  EXPECT_DOUBLE_EQ(
      rs.server->LedgerFor(acme).value()->spent_epsilon(), 0.8);
}

TEST(RecoveryTest, ShrunkGrantRefusesExcessWithoutOverspend) {
  // The journal holds 1.5 epsilon of charges but the restarted config only
  // grants 1.0: replay refuses the excess and the recovered ledger never
  // reports spend above its (new) total.
  auto live = MakeJournaledServer(/*total_epsilon=*/2.0);
  const TenantKey acme{"acme", "clicks"};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ASSERT_TRUE(
        live.server->GetRelease(acme, {"noise_first", 0.5, seed}).ok());
  }
  auto recovered = RecoverFromBytes(live.sink->bytes, /*total_epsilon=*/1.0);
  EXPECT_GT(recovered.stats.refusals, 0u);
  const auto* ledger = recovered.server->LedgerFor(acme).value();
  EXPECT_LE(ledger->spent_epsilon(), ledger->total_epsilon());
}

// --- sparse datasets through the same crash machinery ---

sparse::SparseHistogram SparseChaosTruth(std::uint64_t salt = 0) {
  std::vector<sparse::SparseEntry> entries;
  for (std::uint64_t i = 0; i < 16; ++i) {
    entries.push_back({i * (1ULL << 35) + salt,
                       40.0 + static_cast<double>((i * 7 + salt) % 11)});
  }
  auto truth =
      sparse::SparseHistogram::Create(1ULL << 40, std::move(entries));
  EXPECT_TRUE(truth.ok()) << truth.status().ToString();
  return std::move(truth).value();
}

JournaledServer MakeSparseJournaledServer(double total_epsilon,
                                          ThreadPool* pool = nullptr) {
  JournaledServer js;
  auto sink = std::make_unique<CaptureSink>();
  js.sink = sink.get();
  auto journal = Journal::WithSink(std::move(sink));
  EXPECT_TRUE(journal.ok());
  js.journal = std::move(journal).value();
  ReleaseServerOptions options;
  options.journal = js.journal.get();
  options.pool = pool;
  js.server = std::make_unique<ReleaseServer>(options);
  EXPECT_TRUE(js.server
                  ->AddSparseDataset({"acme", "urls"}, SparseChaosTruth(),
                                     total_epsilon)
                  .ok());
  return js;
}

RecoveredServer RecoverSparseFromBytes(const std::string& bytes,
                                       double total_epsilon) {
  RecoveredServer rs;
  rs.server = std::make_unique<ReleaseServer>(ReleaseServerOptions{});
  EXPECT_TRUE(rs.server
                  ->AddSparseDataset({"acme", "urls"}, SparseChaosTruth(),
                                     total_epsilon)
                  .ok());
  auto replay = ReplayJournalBytes(bytes);
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  auto stats = rs.server->Recover(replay.value());
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  rs.stats = stats.value();
  return rs;
}

TEST(SparseRecoveryTest, RecoverRebuildsSparseReleasesExactlyOnce) {
  auto live = MakeSparseJournaledServer(/*total_epsilon=*/2.0);
  const TenantKey acme{"acme", "urls"};
  std::vector<sparse::SparseHistogram> acked;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto release = live.server->GetRelease(acme, {"sparse_pure", 0.5, seed});
    ASSERT_TRUE(release.ok()) << release.status().ToString();
    ASSERT_TRUE(release.value()->is_sparse());
    acked.push_back(release.value()->sparse_histogram());
  }
  const double committed =
      live.server->LedgerFor(acme).value()->spent_epsilon();

  auto recovered = RecoverSparseFromBytes(live.sink->bytes, 2.0);
  EXPECT_EQ(recovered.stats.charges_replayed, 3u);
  EXPECT_EQ(recovered.stats.releases_replayed, 3u);
  EXPECT_EQ(recovered.stats.skipped, 0u);
  EXPECT_EQ(recovered.server->cache().size(), 3u);
  EXPECT_DOUBLE_EQ(
      recovered.server->LedgerFor(acme).value()->spent_epsilon(), committed);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto release =
        recovered.server->GetRelease(acme, {"sparse_pure", 0.5, seed});
    ASSERT_TRUE(release.ok());
    EXPECT_TRUE(release.value()->sparse_histogram() == acked[seed - 1])
        << "seed " << seed;
  }
  // The re-serves above were cache hits: spend did not move.
  EXPECT_DOUBLE_EQ(
      recovered.server->LedgerFor(acme).value()->spent_epsilon(), committed);
}

TEST(SparseRecoveryTest, EveryBytePrefixRecoversSparseWithoutOverspend) {
  constexpr double kGrant = 2.0;
  auto live = MakeSparseJournaledServer(kGrant);
  const TenantKey acme{"acme", "urls"};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ASSERT_TRUE(
        live.server->GetRelease(acme, {"sparse_pure", 0.4, seed}).ok());
    ASSERT_TRUE(
        live.server->GetRelease(acme, {"unknown_domain", 0.2, seed}).ok());
  }
  const std::string& bytes = live.sink->bytes;
  const double committed =
      live.server->LedgerFor(acme).value()->spent_epsilon();

  double prev_spent = 0.0;
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    auto recovered = RecoverSparseFromBytes(bytes.substr(0, len), kGrant);
    const double spent =
        recovered.server->LedgerFor(acme).value()->spent_epsilon();
    EXPECT_LE(spent, committed) << "prefix " << len;
    EXPECT_LE(spent, kGrant) << "prefix " << len;
    EXPECT_GE(spent, prev_spent) << "prefix " << len;
    prev_spent = spent;
    EXPECT_LE(recovered.stats.releases_replayed,
              recovered.stats.charges_replayed)
        << "prefix " << len;
  }
}

TEST(SparseRecoveryTest, SparseFingerprintMismatchSkipsStaleRelease) {
  auto live = MakeSparseJournaledServer(/*total_epsilon=*/2.0);
  const TenantKey acme{"acme", "urls"};
  ASSERT_TRUE(live.server->GetRelease(acme, {"sparse_pure", 0.5, 1}).ok());

  RecoveredServer rs;
  rs.server = std::make_unique<ReleaseServer>(ReleaseServerOptions{});
  // Same namespace, different sparse truth: the journaled release is about
  // data this server no longer holds.
  ASSERT_TRUE(rs.server
                  ->AddSparseDataset({"acme", "urls"}, SparseChaosTruth(3),
                                     2.0)
                  .ok());
  auto replay = ReplayJournalBytes(live.sink->bytes);
  ASSERT_TRUE(replay.ok());
  auto stats = rs.server->Recover(replay.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().charges_replayed, 1u);
  EXPECT_EQ(stats.value().releases_replayed, 0u);
  EXPECT_EQ(stats.value().skipped, 1u);
  EXPECT_EQ(rs.server->cache().size(), 0u);
}

#if defined(DPHIST_FAILPOINTS)

using ::dphist::testing::FailpointConfig;
using ::dphist::testing::FailpointRegistry;
using ::dphist::testing::FailpointTrigger;
using ::dphist::testing::ScopedFailpoint;

class RecoveryChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Global().DisarmAll();
    FailpointRegistry::Global().set_clock(nullptr);
  }
  void TearDown() override {
    FailpointRegistry::Global().DisarmAll();
    FailpointRegistry::Global().set_clock(nullptr);
  }
};

TEST_F(RecoveryChaosTest, JournalAppendFailureSpendsConservativelyAndAcksNothing) {
  auto live = MakeJournaledServer(/*total_epsilon=*/2.0);
  const TenantKey acme{"acme", "clicks"};

  FailpointConfig fail_once;
  fail_once.status = Status::Internal("injected journal append failure");
  fail_once.trigger = FailpointTrigger::kOnce;
  FailpointRegistry::Global().Arm("serve/journal/append", fail_once);

  // The charge commits in memory, the journal append fails: the caller
  // gets the error, nothing is cached, nothing is acked — but the epsilon
  // stays spent (the conservative direction).
  auto failed = live.server->GetRelease(acme, {"noise_first", 0.4, 1});
  ASSERT_FALSE(failed.ok());
  EXPECT_DOUBLE_EQ(
      live.server->LedgerFor(acme).value()->spent_epsilon(), 0.4);
  EXPECT_EQ(live.server->cache().size(), 0u);

  // A retry after the fault clears succeeds with a fresh charge.
  FailpointRegistry::Global().DisarmAll();
  auto retried = live.server->GetRelease(acme, {"noise_first", 0.4, 1});
  ASSERT_TRUE(retried.ok());
  EXPECT_DOUBLE_EQ(
      live.server->LedgerFor(acme).value()->spent_epsilon(), 0.8);

  // Replay sees only journaled state: at most the committed spend, and the
  // acked release is present.
  auto recovered = RecoverFromBytes(live.sink->bytes, 2.0);
  const double replayed =
      recovered.server->LedgerFor(acme).value()->spent_epsilon();
  EXPECT_LE(replayed, 0.8);
  EXPECT_EQ(recovered.server->cache().size(), 1u);
}

TEST_F(RecoveryChaosTest, SyncFailureAtPublishBoundaryNeverAcksALostRelease) {
  auto live = MakeJournaledServer(/*total_epsilon=*/2.0);
  const TenantKey acme{"acme", "clicks"};

  // Fail the first sync: with the default kEveryRecord policy that is the
  // charge record's own durability barrier.
  FailpointConfig fail_once;
  fail_once.status = Status::Internal("injected fsync failure");
  fail_once.trigger = FailpointTrigger::kOnce;
  FailpointRegistry::Global().Arm("serve/journal/sync", fail_once);

  auto failed = live.server->GetRelease(acme, {"noise_first", 0.4, 1});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(live.server->cache().size(), 0u);  // never acked

  FailpointRegistry::Global().DisarmAll();
  auto retried = live.server->GetRelease(acme, {"noise_first", 0.4, 2});
  ASSERT_TRUE(retried.ok());

  // Whatever the journal holds, recovery must not exceed committed spend
  // and must contain the one acked release.
  auto recovered = RecoverFromBytes(live.sink->bytes, 2.0);
  EXPECT_LE(recovered.server->LedgerFor(acme).value()->spent_epsilon(),
            live.server->LedgerFor(acme).value()->spent_epsilon());
  auto release = recovered.server->GetRelease(acme, {"noise_first", 0.4, 2});
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release.value()->histogram().counts(),
            retried.value()->histogram().counts());
}

TEST_F(RecoveryChaosTest, SparseAppendFailureAcksNothingAndReplaysClean) {
  auto live = MakeSparseJournaledServer(/*total_epsilon=*/2.0);
  const TenantKey acme{"acme", "urls"};

  FailpointConfig fail_once;
  fail_once.status = Status::Internal("injected journal append failure");
  fail_once.trigger = FailpointTrigger::kOnce;
  FailpointRegistry::Global().Arm("serve/journal/append", fail_once);

  // The charge commits, the sparse publish record fails to journal: the
  // caller must NOT be acked, nothing cached, epsilon conservatively spent.
  auto failed = live.server->GetRelease(acme, {"sparse_pure", 0.4, 1});
  ASSERT_FALSE(failed.ok());
  EXPECT_DOUBLE_EQ(
      live.server->LedgerFor(acme).value()->spent_epsilon(), 0.4);
  EXPECT_EQ(live.server->cache().size(), 0u);

  FailpointRegistry::Global().DisarmAll();
  auto retried = live.server->GetRelease(acme, {"sparse_pure", 0.4, 1});
  ASSERT_TRUE(retried.ok());

  // Replay: at most the committed spend, and exactly the acked release.
  auto recovered = RecoverSparseFromBytes(live.sink->bytes, 2.0);
  EXPECT_LE(recovered.server->LedgerFor(acme).value()->spent_epsilon(),
            live.server->LedgerFor(acme).value()->spent_epsilon());
  EXPECT_EQ(recovered.server->cache().size(), 1u);
  auto release = recovered.server->GetRelease(acme, {"sparse_pure", 0.4, 1});
  ASSERT_TRUE(release.ok());
  EXPECT_TRUE(release.value()->sparse_histogram() ==
              retried.value()->sparse_histogram());
}

TEST_F(RecoveryChaosTest, SparseSyncFailureNeverAcksALostRelease) {
  auto live = MakeSparseJournaledServer(/*total_epsilon=*/2.0);
  const TenantKey acme{"acme", "urls"};

  FailpointConfig fail_once;
  fail_once.status = Status::Internal("injected fsync failure");
  fail_once.trigger = FailpointTrigger::kOnce;
  FailpointRegistry::Global().Arm("serve/journal/sync", fail_once);

  auto failed = live.server->GetRelease(acme, {"sparse_pure", 0.4, 1});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(live.server->cache().size(), 0u);  // never acked

  FailpointRegistry::Global().DisarmAll();
  auto retried = live.server->GetRelease(acme, {"sparse_pure", 0.4, 2});
  ASSERT_TRUE(retried.ok());

  auto recovered = RecoverSparseFromBytes(live.sink->bytes, 2.0);
  EXPECT_LE(recovered.server->LedgerFor(acme).value()->spent_epsilon(),
            live.server->LedgerFor(acme).value()->spent_epsilon());
  auto release = recovered.server->GetRelease(acme, {"sparse_pure", 0.4, 2});
  ASSERT_TRUE(release.ok());
  EXPECT_TRUE(release.value()->sparse_histogram() ==
              retried.value()->sparse_histogram());
}

TEST_F(RecoveryChaosTest, SparseSeededScheduleJournalIsBitIdenticalAtPoolWidths1And4) {
  // Sparse publications journal through the same append path; the journal
  // bytes (64-bit keys, f64 counts and all) must be a pure function of the
  // schedule seed at any pool width.
  auto run = [&](std::size_t pool_width) -> std::string {
    ThreadPool pool(pool_width);
    FailpointRegistry::Global().DisarmAll();
    FailpointRegistry::Global().SeedSchedule(kChaosSeed);
    FailpointConfig flaky;
    flaky.status = Status::Internal("induced transient failure");
    flaky.trigger = FailpointTrigger::kProbability;
    flaky.probability = 0.3;
    FailpointRegistry::Global().Arm("serve/cache/publish", flaky);

    auto live = MakeSparseJournaledServer(/*total_epsilon=*/4.0, &pool);
    const TenantKey acme{"acme", "urls"};
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      for (int attempt = 0; attempt < 2; ++attempt) {
        if (live.server
                ->GetRelease(acme, {seed % 2 == 0 ? "sparse_pure"
                                                  : "unknown_domain",
                                    0.25, seed})
                .ok()) {
          break;
        }
      }
    }
    FailpointRegistry::Global().DisarmAll();
    return live.sink->bytes;
  };

  const std::string journal_1 = run(1);
  const std::string journal_4 = run(4);
  ASSERT_EQ(journal_1, journal_4);

  auto a = RecoverSparseFromBytes(journal_1, 4.0);
  auto b = RecoverSparseFromBytes(journal_4, 4.0);
  EXPECT_EQ(a.stats.charges_replayed, b.stats.charges_replayed);
  EXPECT_EQ(a.stats.releases_replayed, b.stats.releases_replayed);
  EXPECT_EQ(a.server->cache().size(), b.server->cache().size());
}

TEST_F(RecoveryChaosTest, InducedReplayFaultSurfacesTyped) {
  auto live = MakeJournaledServer(/*total_epsilon=*/2.0);
  ASSERT_TRUE(live.server
                  ->GetRelease({"acme", "clicks"}, {"noise_first", 0.4, 1})
                  .ok());
  FailpointConfig fail_once;
  fail_once.status = Status::Internal("injected replay fault");
  fail_once.trigger = FailpointTrigger::kOnce;
  FailpointRegistry::Global().Arm("serve/journal/replay_record", fail_once);
  auto replay = ReplayJournalBytes(live.sink->bytes);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kInternal);
}

TEST_F(RecoveryChaosTest, SeededScheduleRecoversIdenticallyAtPoolWidths1And4) {
  // The determinism contract: one schedule seed, two pool widths, the same
  // sequential request stream with induced faults — the journal must be
  // bit-identical and the recovered state equal.
  auto run = [&](std::size_t pool_width) -> std::string {
    ThreadPool pool(pool_width);
    FailpointRegistry::Global().DisarmAll();
    FailpointRegistry::Global().SeedSchedule(kChaosSeed);
    FailpointConfig flaky;
    flaky.status = Status::Internal("induced transient failure");
    flaky.trigger = FailpointTrigger::kProbability;
    flaky.probability = 0.3;
    FailpointRegistry::Global().Arm("serve/cache/publish", flaky);

    auto live = MakeJournaledServer(/*total_epsilon=*/4.0, &pool);
    const TenantKey acme{"acme", "clicks"};
    const TenantKey zeta{"zeta", "logs"};
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      // Some publishes fail (induced); callers retry once. Either way the
      // outcome sequence is a pure function of the schedule seed.
      for (int attempt = 0; attempt < 2; ++attempt) {
        if (live.server
                ->GetRelease(seed % 2 == 0 ? acme : zeta,
                             {"noise_first", 0.25, seed})
                .ok()) {
          break;
        }
      }
    }
    FailpointRegistry::Global().DisarmAll();
    return live.sink->bytes;
  };

  const std::string journal_1 = run(1);
  const std::string journal_4 = run(4);
  ASSERT_EQ(journal_1, journal_4);  // bit-identical journals

  auto a = RecoverFromBytes(journal_1, 4.0);
  auto b = RecoverFromBytes(journal_4, 4.0);
  EXPECT_EQ(a.stats.charges_replayed, b.stats.charges_replayed);
  EXPECT_EQ(a.stats.releases_replayed, b.stats.releases_replayed);
  EXPECT_EQ(a.server->cache().size(), b.server->cache().size());
  EXPECT_DOUBLE_EQ(
      a.server->LedgerFor({"acme", "clicks"}).value()->spent_epsilon(),
      b.server->LedgerFor({"acme", "clicks"}).value()->spent_epsilon());
  EXPECT_DOUBLE_EQ(
      a.server->LedgerFor({"zeta", "logs"}).value()->spent_epsilon(),
      b.server->LedgerFor({"zeta", "logs"}).value()->spent_epsilon());
}

// --- the real thing: kill the process, replay the file ---

// Child workload for the death test: serve against a file journal,
// fsyncing an "ack log" sidecar after every acknowledged release, with an
// abort failpoint armed inside the journal append path. The parent then
// replays the journal the dead process left behind and checks every acked
// seed survived.
void RunWorkloadUntilAbort(const std::string& dir) {
  const std::string journal_path = dir + "/events.jnl";
  const std::string ack_path = dir + "/acks.log";
  auto journal = Journal::Open(journal_path);
  ASSERT_TRUE(journal.ok());
  ReleaseServerOptions options;
  options.journal = journal.value().get();
  ReleaseServer server(options);
  ASSERT_TRUE(
      server.AddDataset({"acme", "clicks"}, ChaosTruth(32, 1), 16.0).ok());

  FailpointConfig abort_later;
  abort_later.action = FailpointConfig::Action::kAbort;
  abort_later.trigger = FailpointTrigger::kEveryNth;
  abort_later.every_nth = 9;  // dies mid-5th publish (2 appends each)
  FailpointRegistry::Global().Arm("serve/journal/append", abort_later);

  std::ofstream acks(ack_path, std::ios::trunc);
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    auto release = server.GetRelease({"acme", "clicks"},
                                     {"noise_first", 0.1, seed});
    if (release.ok()) {
      acks << seed << "\n";
      acks.flush();
    }
  }
  // Unreachable: the failpoint aborts first. Exit cleanly if not, so the
  // death test fails loudly instead of hanging.
  std::exit(0);
}

TEST_F(RecoveryChaosTest, KillAndReplayLosesNoAcknowledgedRelease) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The threadsafe death-test child re-executes this whole test body, so
  // the directory must be agreed on through the environment: only the
  // first process (the parent) creates it; the child inherits the value
  // and skips the mkdtemp.
  if (::getenv("DPHIST_KILL_DIR") == nullptr) {
    char tmpl[] = "/tmp/dphist_kill_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    ASSERT_EQ(::setenv("DPHIST_KILL_DIR", tmpl, 1), 0);
  }
  const std::string dir = ::getenv("DPHIST_KILL_DIR");

  EXPECT_DEATH(RunWorkloadUntilAbort(dir), "injected abort");

  // Parent: read the dead process's ack log and journal.
  std::vector<std::uint64_t> acked_seeds;
  {
    std::ifstream acks(dir + "/acks.log");
    std::uint64_t seed = 0;
    while (acks >> seed) {
      acked_seeds.push_back(seed);
    }
  }
  ASSERT_FALSE(acked_seeds.empty()) << "child acked nothing before dying";

  auto replay = ReplayJournalFile(dir + "/events.jnl");
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  ReleaseServerOptions options;
  ReleaseServer server(options);
  ASSERT_TRUE(
      server.AddDataset({"acme", "clicks"}, ChaosTruth(32, 1), 16.0).ok());
  auto stats = server.Recover(replay.value());
  ASSERT_TRUE(stats.ok());

  // Zero lost acknowledged releases.
  const std::uint64_t fp = FingerprintHistogram(ChaosTruth(32, 1));
  for (const std::uint64_t seed : acked_seeds) {
    EXPECT_NE(server.cache().Lookup(
                  {"acme", "clicks", fp, "noise_first", 0.1, seed}),
              nullptr)
        << "acked seed " << seed << " lost";
  }
  // Zero overspend: replayed spend covers at least the acked releases and
  // never exceeds the grant.
  const auto* ledger = server.LedgerFor({"acme", "clicks"}).value();
  EXPECT_GE(ledger->spent_epsilon(), 0.1 * acked_seeds.size() - 1e-9);
  EXPECT_LE(ledger->spent_epsilon(), ledger->total_epsilon());

  std::remove((dir + "/events.jnl").c_str());
  std::remove((dir + "/acks.log").c_str());
  ::rmdir(dir.c_str());
  ::unsetenv("DPHIST_KILL_DIR");
}

#else  // !DPHIST_FAILPOINTS

TEST(RecoveryChaosTest, RequiresFailpointBuild) {
  GTEST_SKIP() << "failpoint sites are compiled out; configure with "
                  "-DDPHIST_FAILPOINTS=ON to run the fault-injection half "
                  "of the recovery suite";
}

#endif  // DPHIST_FAILPOINTS

}  // namespace
}  // namespace serve
}  // namespace dphist
