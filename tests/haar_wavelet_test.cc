#include "dphist/transform/haar_wavelet.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

std::vector<double> RandomVector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n, 0.0);
  for (double& v : x) {
    v = static_cast<double>(SampleUniformInt(rng, -50, 50));
  }
  return x;
}

TEST(HaarWaveletTest, RejectsNonPowerOfTwo) {
  EXPECT_FALSE(HaarWavelet::Forward({1.0, 2.0, 3.0}).ok());
  EXPECT_FALSE(HaarWavelet::Inverse({1.0, 2.0, 3.0, 4.0, 5.0}).ok());
}

TEST(HaarWaveletTest, LengthOneIsIdentity) {
  auto c = HaarWavelet::Forward({5.5});
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.value().size(), 1u);
  EXPECT_DOUBLE_EQ(c.value()[0], 5.5);
  auto x = HaarWavelet::Inverse(c.value());
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(x.value()[0], 5.5);
}

TEST(HaarWaveletTest, KnownSmallTransform) {
  // x = (4, 2, 5, 5): overall mean 4; node1 = (mean(4,2)-mean(5,5))/2 = -1;
  // node2 = (4-2)/2 = 1; node3 = (5-5)/2 = 0.
  auto c = HaarWavelet::Forward({4.0, 2.0, 5.0, 5.0});
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c.value()[0], 4.0);
  EXPECT_DOUBLE_EQ(c.value()[1], -1.0);
  EXPECT_DOUBLE_EQ(c.value()[2], 1.0);
  EXPECT_DOUBLE_EQ(c.value()[3], 0.0);
}

class HaarRoundTripSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HaarRoundTripSweep, InverseUndoesForward) {
  const std::size_t n = GetParam();
  const std::vector<double> x = RandomVector(n, 50 + n);
  auto c = HaarWavelet::Forward(x);
  ASSERT_TRUE(c.ok());
  auto back = HaarWavelet::Inverse(c.value());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back.value()[i], x[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoSizes, HaarRoundTripSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

TEST(HaarWaveletTest, TransformIsLinear) {
  const std::size_t n = 16;
  const std::vector<double> x = RandomVector(n, 1);
  const std::vector<double> y = RandomVector(n, 2);
  std::vector<double> sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    sum[i] = 2.0 * x[i] - 3.0 * y[i];
  }
  auto cx = HaarWavelet::Forward(x);
  auto cy = HaarWavelet::Forward(y);
  auto cs = HaarWavelet::Forward(sum);
  ASSERT_TRUE(cx.ok());
  ASSERT_TRUE(cy.ok());
  ASSERT_TRUE(cs.ok());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(cs.value()[i], 2.0 * cx.value()[i] - 3.0 * cy.value()[i],
                1e-9);
  }
}

TEST(HaarWaveletTest, PadToPowerOfTwo) {
  const std::vector<double> padded =
      HaarWavelet::PadToPowerOfTwo({1.0, 2.0, 3.0});
  ASSERT_EQ(padded.size(), 4u);
  EXPECT_DOUBLE_EQ(padded[3], 0.0);
  // Already a power of two: unchanged.
  EXPECT_EQ(HaarWavelet::PadToPowerOfTwo({1.0, 2.0}).size(), 2u);
}

TEST(HaarWaveletTest, LevelsAndWeights) {
  EXPECT_EQ(HaarWavelet::LevelOf(1), 0u);
  EXPECT_EQ(HaarWavelet::LevelOf(2), 1u);
  EXPECT_EQ(HaarWavelet::LevelOf(3), 1u);
  EXPECT_EQ(HaarWavelet::LevelOf(4), 2u);
  EXPECT_EQ(HaarWavelet::LevelOf(7), 2u);
  const std::size_t n = 8;
  EXPECT_DOUBLE_EQ(HaarWavelet::WeightOf(0, n), 8.0);
  EXPECT_DOUBLE_EQ(HaarWavelet::WeightOf(1, n), 8.0);
  EXPECT_DOUBLE_EQ(HaarWavelet::WeightOf(2, n), 4.0);
  EXPECT_DOUBLE_EQ(HaarWavelet::WeightOf(4, n), 2.0);
  EXPECT_DOUBLE_EQ(HaarWavelet::GeneralizedSensitivity(n), 4.0);
}

// The DP-critical property behind Privelet: adding one record to any unit
// bin changes the weighted coefficient vector by exactly rho = 1 + log2 n
// in L1.
class HaarSensitivitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HaarSensitivitySweep, WeightedL1ChangeIsExactlyRho) {
  const std::size_t n = GetParam();
  const std::vector<double> x = RandomVector(n, 80 + n);
  auto cx = HaarWavelet::Forward(x);
  ASSERT_TRUE(cx.ok());
  const double rho = HaarWavelet::GeneralizedSensitivity(n);
  for (std::size_t bin = 0; bin < n; bin += (n / 8) + 1) {
    std::vector<double> y = x;
    y[bin] += 1.0;  // one extra record in this bin
    auto cy = HaarWavelet::Forward(y);
    ASSERT_TRUE(cy.ok());
    double weighted_l1 = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      weighted_l1 += HaarWavelet::WeightOf(t, n) *
                     std::abs(cy.value()[t] - cx.value()[t]);
    }
    EXPECT_NEAR(weighted_l1, rho, 1e-9) << "n=" << n << " bin=" << bin;
  }
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoSizes, HaarSensitivitySweep,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 512));

}  // namespace
}  // namespace dphist
