// Multi-tenant isolation: TenantKey/ShardMap basics, per-namespace ledgers,
// the typed kPermissionDenied contract for cross-tenant probes, and the
// regression for the pre-tenancy cache keying bug — two tenants serving
// identical data used to collide on the fingerprint-only ReleaseKey, which
// let one tenant's degraded request be answered from a release the other
// tenant paid for.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/data/generators.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"
#include "dphist/serve/release_server.h"
#include "dphist/serve/shard.h"
#include "dphist/serve/tenant.h"

namespace dphist {
namespace serve {
namespace {

Histogram TestTruth(std::size_t n = 64, std::uint64_t seed = 5) {
  return MakeSearchLogs(n, seed).histogram;
}

TEST(TenantKeyTest, EqualityOrderingAndFormat) {
  const TenantKey a{"acme", "clicks"};
  const TenantKey b{"acme", "clicks"};
  const TenantKey c{"acme", "views"};
  const TenantKey d{"zeta", "clicks"};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  TenantKeyLess less;
  EXPECT_TRUE(less(a, c));
  EXPECT_TRUE(less(a, d));
  EXPECT_FALSE(less(a, b));
  EXPECT_EQ(FormatTenantKey(a), "acme/clicks");
  EXPECT_EQ(DefaultTenantKey(), (TenantKey{"default", "default"}));
}

TEST(TenantKeyTest, HashSeparatesBoundaryAmbiguousNames) {
  // ("ab", "c") and ("a", "bc") must hash differently: the separator is
  // part of the stream, so moving a byte across the tenant/dataset
  // boundary changes the hash input.
  EXPECT_NE(HashTenantKey("ab", "c"), HashTenantKey("a", "bc"));
  EXPECT_EQ(HashTenantKey("ab", "c"), HashTenantKey(TenantKey{"ab", "c"}));
}

TEST(ShardMapTest, ResolvesCountAndRoutesStably) {
  const ShardMap map(4);
  EXPECT_EQ(map.count(), 4u);
  const TenantKey key{"acme", "clicks"};
  const std::size_t index = map.IndexFor(key);
  EXPECT_LT(index, 4u);
  // Routing is a pure function of the key.
  EXPECT_EQ(map.IndexFor(key), index);
  EXPECT_EQ(map.IndexFor("acme", "clicks"), index);
}

TEST(ShardMapTest, EnvKnobAndFloorOfOne) {
  ::setenv("DPHIST_SERVE_SHARDS", "3", 1);
  EXPECT_EQ(ShardMap(0).count(), 3u);
  // An explicit request wins over the environment.
  EXPECT_EQ(ShardMap(16).count(), 16u);
  ::unsetenv("DPHIST_SERVE_SHARDS");
  EXPECT_EQ(ShardMap(0).count(), kDefaultServeShards);
  EXPECT_GE(ResolveShardCount(0), 1u);
}

TEST(TenantServerTest, PerNamespaceLedgersAreIndependent) {
  ReleaseServer server;
  const TenantKey acme{"acme", "clicks"};
  const TenantKey zeta{"zeta", "logs"};
  ASSERT_TRUE(server.AddDataset(acme, TestTruth(64, 1), 1.0).ok());
  ASSERT_TRUE(server.AddDataset(zeta, TestTruth(64, 2), 0.5).ok());
  EXPECT_EQ(server.dataset_count(), 2u);

  ASSERT_TRUE(server.GetRelease(acme, {"noise_first", 0.8, 1}).ok());
  auto acme_ledger = server.LedgerFor(acme);
  auto zeta_ledger = server.LedgerFor(zeta);
  ASSERT_TRUE(acme_ledger.ok());
  ASSERT_TRUE(zeta_ledger.ok());
  // Spending acme's budget leaves zeta's untouched.
  EXPECT_DOUBLE_EQ(acme_ledger.value()->spent_epsilon(), 0.8);
  EXPECT_DOUBLE_EQ(zeta_ledger.value()->spent_epsilon(), 0.0);

  // zeta still has its full (smaller) grant.
  ASSERT_TRUE(server.GetRelease(zeta, {"noise_first", 0.5, 1}).ok());
  EXPECT_DOUBLE_EQ(zeta_ledger.value()->spent_epsilon(), 0.5);
}

TEST(TenantServerTest, CrossTenantProbeIsPermissionDeniedNotNotFound) {
  ReleaseServer server;
  ASSERT_TRUE(
      server.AddDataset({"acme", "clicks"}, TestTruth(), 1.0).ok());

  // Same dataset name, wrong tenant: typed isolation error.
  auto probe = server.GetRelease({"zeta", "clicks"}, {"noise_first", 0.1, 1});
  ASSERT_FALSE(probe.ok());
  EXPECT_EQ(probe.status().code(), StatusCode::kPermissionDenied);

  // A name nobody registered is an ordinary NotFound.
  auto missing =
      server.GetRelease({"zeta", "nonexistent"}, {"noise_first", 0.1, 1});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Same typing through the batch path and the ledger accessor.
  Rng workload_rng(3);
  auto queries = RandomRangeWorkload(64, 5, workload_rng);
  ASSERT_TRUE(queries.ok());
  auto batch = server.AnswerBatch({"zeta", "clicks"}, queries.value(),
                                  {"noise_first", 0.1, 1});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(server.LedgerFor({"zeta", "clicks"}).status().code(),
            StatusCode::kPermissionDenied);
}

TEST(TenantServerTest, DuplicateRegistrationRejected) {
  ReleaseServer server;
  ASSERT_TRUE(server.AddDataset({"acme", "clicks"}, TestTruth(), 1.0).ok());
  auto again = server.AddDataset({"acme", "clicks"}, TestTruth(), 2.0);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.dataset_count(), 1u);
}

TEST(TenantServerTest, IdenticalDataAcrossTenantsNoLongerCollides) {
  // THE regression test for the pre-tenancy keying bug. Both tenants serve
  // the byte-identical histogram, so their fingerprints are equal — the
  // old fingerprint-keyed cache would have coalesced them into one entry,
  // charging one tenant and serving the other for free (and leaking the
  // release across the boundary).
  const Histogram shared_truth = TestTruth(64, 9);
  ReleaseServer server;
  const TenantKey acme{"acme", "common"};
  const TenantKey zeta{"zeta", "common_mirror"};
  ASSERT_TRUE(server.AddDataset(acme, shared_truth, 1.0).ok());
  ASSERT_TRUE(server.AddDataset(zeta, shared_truth, 1.0).ok());

  const ServeRequest request{"noise_first", 0.3, 42};
  auto acme_release = server.GetRelease(acme, request);
  auto zeta_release = server.GetRelease(zeta, request);
  ASSERT_TRUE(acme_release.ok());
  ASSERT_TRUE(zeta_release.ok());

  // Identical inputs produce identical *counts* (deterministic publisher)
  // but the releases are distinct cache entries under distinct keys...
  EXPECT_NE(acme_release.value().get(), zeta_release.value().get());
  EXPECT_EQ(acme_release.value()->key().tenant, "acme");
  EXPECT_EQ(zeta_release.value()->key().tenant, "zeta");
  EXPECT_EQ(server.cache().size(), 2u);
  // ...and each tenant paid for its own: both ledgers moved.
  EXPECT_DOUBLE_EQ(server.LedgerFor(acme).value()->spent_epsilon(), 0.3);
  EXPECT_DOUBLE_EQ(server.LedgerFor(zeta).value()->spent_epsilon(), 0.3);
}

TEST(TenantServerTest, DegradedServingNeverCrossesTheBoundary) {
  // acme has a cached release; zeta exhausts its own budget with an empty
  // namespace cache. Degradation must FAIL for zeta rather than serve it
  // acme's release — even though the truths are identical.
  const Histogram shared_truth = TestTruth(64, 11);
  ReleaseServer server;
  const TenantKey acme{"acme", "common"};
  const TenantKey zeta{"zeta", "mirror"};
  ASSERT_TRUE(server.AddDataset(acme, shared_truth, 1.0).ok());
  ASSERT_TRUE(server.AddDataset(zeta, shared_truth, 0.05).ok());
  Rng workload_rng(13);
  auto queries = RandomRangeWorkload(64, 10, workload_rng);
  ASSERT_TRUE(queries.ok());

  ASSERT_TRUE(
      server.AnswerBatch(acme, queries.value(), {"noise_first", 0.3, 1})
          .ok());
  auto starved = server.AnswerBatch(zeta, queries.value(),
                                    {"noise_first", 0.3, 1});
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted);

  // Within its own namespace, degradation still works.
  ASSERT_TRUE(
      server.AnswerBatch(zeta, queries.value(), {"noise_first", 0.04, 1})
          .ok());
  auto degraded = server.AnswerBatch(zeta, queries.value(),
                                     {"noise_first", 0.3, 2});
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded.value().stale);
  EXPECT_EQ(degraded.value().served.tenant, "zeta");
}

TEST(TenantServerTest, LegacySingleTenantConstructorStillServes) {
  // The pre-tenancy constructor registers the default namespace; the
  // tenant-less overloads keep working unchanged.
  ReleaseServer server(TestTruth(), 1.0);
  EXPECT_EQ(server.dataset_count(), 1u);
  auto release = server.GetRelease({"noise_first", 0.2, 1});
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release.value()->key().tenant, "default");
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.2);
  EXPECT_EQ(server.fingerprint(), FingerprintHistogram(TestTruth()));
  EXPECT_EQ(server.domain_size(), 64u);
}

}  // namespace
}  // namespace serve
}  // namespace dphist
