#include "dphist/random/rng.h"

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SmallSeedsAreWellMixed) {
  // Seeds 0 and 1 should not produce correlated first outputs (SplitMix64
  // expansion).
  Rng a(0);
  Rng b(1);
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, CopyIsIndependentFromSource) {
  Rng a(99);
  Rng b = a;
  EXPECT_EQ(a.NextUint64(), b.NextUint64());  // identical state at copy time
  // Advancing one copy must not affect the other: replaying b from a fresh
  // copy of the original seed matches even after a advanced further.
  a.NextUint64();
  Rng c(99);
  c.NextUint64();  // align with b's position
  EXPECT_EQ(b.NextUint64(), c.NextUint64());
}

TEST(RngTest, ForkProducesDistinctStream) {
  Rng parent(7);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.NextUint64() == child.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng p1(7);
  Rng p2(7);
  Rng c1 = p1.Fork();
  Rng c2 = p2.Fork();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(c1.NextUint64(), c2.NextUint64());
  }
}

TEST(RngTest, BitsLookBalanced) {
  // Population count over many draws should be near 32 per word.
  Rng rng(42);
  double total_bits = 0.0;
  const int draws = 10000;
  for (int i = 0; i < draws; ++i) {
    total_bits += static_cast<double>(__builtin_popcountll(rng.NextUint64()));
  }
  const double mean_bits = total_bits / draws;
  EXPECT_NEAR(mean_bits, 32.0, 0.2);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(3);
  const std::uint64_t via_call = rng();
  (void)via_call;
}

TEST(RngTest, NoShortCycles) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(rng.NextUint64());
  }
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace dphist
