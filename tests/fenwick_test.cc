#include "dphist/hist/fenwick.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(FenwickTest, EmptyTree) {
  RankedFenwick tree(8);
  EXPECT_EQ(tree.TotalCount(), 0);
  EXPECT_DOUBLE_EQ(tree.TotalSum(), 0.0);
  EXPECT_EQ(tree.CountUpTo(7), 0);
}

TEST(FenwickTest, SingleInsert) {
  RankedFenwick tree(8);
  tree.Insert(3, 2.5);
  EXPECT_EQ(tree.CountUpTo(2), 0);
  EXPECT_EQ(tree.CountUpTo(3), 1);
  EXPECT_EQ(tree.CountUpTo(7), 1);
  EXPECT_DOUBLE_EQ(tree.SumUpTo(3), 2.5);
  EXPECT_DOUBLE_EQ(tree.SumUpTo(2), 0.0);
}

TEST(FenwickTest, InsertRemoveCancels) {
  RankedFenwick tree(4);
  tree.Insert(1, 5.0);
  tree.Insert(2, 7.0);
  tree.Remove(1, 5.0);
  EXPECT_EQ(tree.TotalCount(), 1);
  EXPECT_DOUBLE_EQ(tree.TotalSum(), 7.0);
  EXPECT_EQ(tree.CountUpTo(1), 0);
}

TEST(FenwickTest, ClearResets) {
  RankedFenwick tree(4);
  tree.Insert(0, 1.0);
  tree.Insert(3, 2.0);
  tree.Clear();
  EXPECT_EQ(tree.TotalCount(), 0);
  EXPECT_DOUBLE_EQ(tree.TotalSum(), 0.0);
  tree.Insert(2, 4.0);
  EXPECT_DOUBLE_EQ(tree.SumUpTo(2), 4.0);
}

// Regression: the seed implementation's Insert/Remove loops never executed
// for rank >= num_ranks(), silently dropping the value and leaving
// TotalCount/TotalSum quietly wrong. The contract is now a hard abort, so
// these death tests fail against the pre-fix code (which no-ops and
// returns normally).
TEST(FenwickDeathTest, InsertOutOfRangeAborts) {
  RankedFenwick tree(4);
  tree.Insert(3, 9.0);
  EXPECT_DEATH_IF_SUPPORTED(tree.Insert(4, 1.0), "Insert.*out of range");
  EXPECT_DEATH_IF_SUPPORTED(tree.Insert(100, 1.0), "Insert.*out of range");
}

TEST(FenwickDeathTest, RemoveOutOfRangeAborts) {
  RankedFenwick tree(4);
  tree.Insert(2, 5.0);
  EXPECT_DEATH_IF_SUPPORTED(tree.Remove(4, 5.0), "Remove.*out of range");
}

// Queries used to clamp an out-of-range rank to the last one, answering
// for a rank the caller never asked about; they now share the update
// contract.
TEST(FenwickDeathTest, QueryOutOfRangeAborts) {
  RankedFenwick tree(4);
  tree.Insert(3, 9.0);
  EXPECT_DEATH_IF_SUPPORTED(tree.CountUpTo(4), "CountUpTo.*out of range");
  EXPECT_DEATH_IF_SUPPORTED(tree.SumUpTo(100), "SumUpTo.*out of range");
}

TEST(FenwickTest, LastRankQueryStillReturnsTotals) {
  RankedFenwick tree(4);
  tree.Insert(3, 9.0);
  tree.Insert(0, 1.0);
  EXPECT_EQ(tree.CountUpTo(3), 2);
  EXPECT_DOUBLE_EQ(tree.SumUpTo(3), 10.0);
  EXPECT_EQ(tree.TotalCount(), 2);
  EXPECT_DOUBLE_EQ(tree.TotalSum(), 10.0);
}

// Property sweep: random insert/remove traces agree with a naive
// multiset implementation across sizes.
class FenwickPropertySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FenwickPropertySweep, MatchesNaiveReference) {
  const std::size_t ranks = GetParam();
  RankedFenwick tree(ranks);
  std::vector<std::int64_t> naive_count(ranks, 0);
  std::vector<double> naive_sum(ranks, 0.0);
  Rng rng(1000 + ranks);
  for (int op = 0; op < 500; ++op) {
    const std::size_t rank = SampleIndex(rng, ranks);
    const double value = static_cast<double>(SampleUniformInt(rng, -20, 20));
    if (naive_count[rank] > 0 && SampleUniformDouble(rng) < 0.3) {
      tree.Remove(rank, naive_sum[rank] / naive_count[rank]);
      naive_sum[rank] -= naive_sum[rank] / naive_count[rank];
      naive_count[rank] -= 1;
    } else {
      tree.Insert(rank, value);
      naive_count[rank] += 1;
      naive_sum[rank] += value;
    }
    // Check a few prefix queries.
    for (std::size_t q = 0; q < ranks; q += (ranks / 4) + 1) {
      std::int64_t want_count = 0;
      double want_sum = 0.0;
      for (std::size_t r = 0; r <= q; ++r) {
        want_count += naive_count[r];
        want_sum += naive_sum[r];
      }
      EXPECT_EQ(tree.CountUpTo(q), want_count);
      EXPECT_NEAR(tree.SumUpTo(q), want_sum, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FenwickPropertySweep,
                         ::testing::Values(1, 2, 3, 7, 8, 16, 33, 100));

}  // namespace
}  // namespace dphist
