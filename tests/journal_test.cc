// The write-ahead journal codec and replay: property-based round-trips
// over arbitrary record sequences, the every-prefix-length replay property
// (any crash point yields a clean prefix), a bit-flip corruption corpus,
// torn-tail truncation on reopen, and the fsync policy matrix on a fake
// clock. The journal is what makes budget spend survive a crash, so the
// codec gets the paranoid treatment: replay must never invent a record and
// never crash, no matter where the file stops or which bit rotted.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/clock.h"
#include "dphist/random/rng.h"
#include "dphist/serve/journal.h"

namespace dphist {
namespace serve {
namespace {

// --- generators: arbitrary-but-reproducible records from one Rng ---

std::string ArbitraryString(Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.NextUint64() % (max_len + 1);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    // Full byte range on purpose: tenant names are caller strings, and the
    // codec must not care about NUL, newline, or high bytes.
    s.push_back(static_cast<char>(rng.NextUint64() & 0xFF));
  }
  return s;
}

double ArbitraryDouble(Rng& rng) {
  switch (rng.NextUint64() % 6) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return 1e300;
    case 3:
      return -1e-300;
    default: {
      // A "normal" value with full mantissa entropy.
      const auto bits = rng.NextUint64();
      return static_cast<double>(bits) / 1e9 - 9e9;
    }
  }
}

JournalRecord ArbitraryRecord(Rng& rng) {
  JournalRecord record;
  record.key.tenant = ArbitraryString(rng, 12);
  record.key.dataset = ArbitraryString(rng, 12);
  record.epsilon = ArbitraryDouble(rng);
  if (rng.NextUint64() % 2 == 0) {
    record.type = JournalRecord::Type::kCharge;
    record.parallel = rng.NextUint64() % 2 == 0;
    record.group = ArbitraryString(rng, 8);
    record.label = ArbitraryString(rng, 24);
  } else {
    record.type = JournalRecord::Type::kPublish;
    record.fingerprint = rng.NextUint64();
    record.publisher = ArbitraryString(rng, 16);
    record.seed = rng.NextUint64();
    const std::size_t bins = rng.NextUint64() % 17;
    record.counts.reserve(bins);
    for (std::size_t i = 0; i < bins; ++i) {
      record.counts.push_back(ArbitraryDouble(rng));
    }
  }
  return record;
}

// A full journal byte stream: magic + one frame per record.
std::string EncodeStream(const std::vector<JournalRecord>& records) {
  std::string bytes(JournalMagic());
  for (const JournalRecord& record : records) {
    bytes += EncodeJournalRecord(record);
  }
  return bytes;
}

TEST(JournalCodecTest, RoundTripsArbitraryRecordSequences) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const std::size_t count = 1 + rng.NextUint64() % 40;
    std::vector<JournalRecord> records;
    records.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      records.push_back(ArbitraryRecord(rng));
    }
    auto replayed = ReplayJournalBytes(EncodeStream(records));
    ASSERT_TRUE(replayed.ok()) << "seed " << seed;
    EXPECT_FALSE(replayed.value().truncated()) << "seed " << seed;
    ASSERT_EQ(replayed.value().records.size(), records.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(replayed.value().records[i], records[i])
          << "seed " << seed << " record " << i;
    }
  }
}

TEST(JournalCodecTest, EveryPrefixLengthReplaysToACleanPrefix) {
  // The crash-point property: a crash can stop the file at ANY byte. For
  // every prefix length, replay must succeed and yield exactly the records
  // whose frames are fully contained — a prefix of the original sequence,
  // never a reordered, invented, or half-decoded record.
  Rng rng(20120412);
  std::vector<JournalRecord> records;
  for (std::size_t i = 0; i < 10; ++i) {
    records.push_back(ArbitraryRecord(rng));
  }
  const std::string bytes = EncodeStream(records);

  // Frame boundaries: byte offset after magic and after each frame.
  std::vector<std::size_t> boundaries = {JournalMagic().size()};
  for (const JournalRecord& record : records) {
    boundaries.push_back(boundaries.back() +
                         EncodeJournalRecord(record).size());
  }

  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    auto replayed = ReplayJournalBytes(bytes.substr(0, len));
    ASSERT_TRUE(replayed.ok()) << "prefix " << len;
    const ReplayResult& result = replayed.value();
    // Complete frames fully inside the prefix.
    std::size_t expected = 0;
    while (expected + 1 < boundaries.size() &&
           boundaries[expected + 1] <= len) {
      ++expected;
    }
    ASSERT_EQ(result.records.size(), expected) << "prefix " << len;
    for (std::size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(result.records[i], records[i]) << "prefix " << len;
    }
    EXPECT_EQ(result.valid_bytes + result.truncated_bytes, len)
        << "prefix " << len;
    if (len >= JournalMagic().size()) {
      EXPECT_EQ(result.valid_bytes, boundaries[expected])
          << "prefix " << len;
    }
  }
}

TEST(JournalCodecTest, BitFlipCorpusNeverInventsARecord) {
  // Flip every bit of a small stream, one at a time. A flip in the magic
  // is kDataLoss; a flip anywhere else must replay to a (possibly shorter)
  // prefix of the true sequence — single-bit errors are always caught by
  // CRC-32, so a corrupted frame can only truncate, never morph.
  Rng rng(7);
  std::vector<JournalRecord> records;
  for (std::size_t i = 0; i < 4; ++i) {
    records.push_back(ArbitraryRecord(rng));
  }
  const std::string bytes = EncodeStream(records);

  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::string corrupted = bytes;
    corrupted[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(corrupted[bit / 8]) ^ (1u << (bit % 8)));
    auto replayed = ReplayJournalBytes(corrupted);
    if (bit / 8 < JournalMagic().size()) {
      ASSERT_FALSE(replayed.ok()) << "bit " << bit;
      EXPECT_EQ(replayed.status().code(), StatusCode::kDataLoss)
          << "bit " << bit;
      continue;
    }
    ASSERT_TRUE(replayed.ok()) << "bit " << bit;
    const std::vector<JournalRecord>& got = replayed.value().records;
    ASSERT_LE(got.size(), records.size()) << "bit " << bit;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], records[i]) << "bit " << bit << " record " << i;
    }
  }
}

TEST(JournalCodecTest, EmptyAndMagicEdgeCases) {
  // Empty input: a journal that never existed.
  auto empty = ReplayJournalBytes("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().records.empty());
  EXPECT_FALSE(empty.value().truncated());

  // A strict prefix of the magic is a crash during journal creation.
  for (std::size_t len = 1; len < JournalMagic().size(); ++len) {
    auto torn = ReplayJournalBytes(std::string(JournalMagic().substr(0, len)));
    ASSERT_TRUE(torn.ok()) << len;
    EXPECT_TRUE(torn.value().records.empty());
    EXPECT_EQ(torn.value().truncated_bytes, len);
  }

  // Anything that is not this journal's magic is unrecoverable.
  auto garbage = ReplayJournalBytes("not a journal, definitely");
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), StatusCode::kDataLoss);

  // Exactly the magic: a journal that was created and never written.
  auto pristine = ReplayJournalBytes(std::string(JournalMagic()));
  ASSERT_TRUE(pristine.ok());
  EXPECT_TRUE(pristine.value().records.empty());
  EXPECT_FALSE(pristine.value().truncated());
}

// --- file-backed behavior ---

class JournalFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/dphist_journal_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    path_ = dir_ + "/events.jnl";
  }

  void TearDown() override {
    std::remove(path_.c_str());
    ::rmdir(dir_.c_str());
  }

  std::string ReadFile() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  std::string dir_;
  std::string path_;
};

TEST_F(JournalFileTest, OpenAppendReplayRoundTrip) {
  Rng rng(11);
  std::vector<JournalRecord> records;
  for (std::size_t i = 0; i < 6; ++i) {
    records.push_back(ArbitraryRecord(rng));
  }
  {
    auto journal = Journal::Open(path_);
    ASSERT_TRUE(journal.ok());
    for (const JournalRecord& record : records) {
      ASSERT_TRUE(journal.value()->Append(record).ok());
    }
    EXPECT_EQ(journal.value()->records_written(), records.size());
  }
  auto replayed = ReplayJournalFile(path_);
  ASSERT_TRUE(replayed.ok());
  EXPECT_FALSE(replayed.value().truncated());
  ASSERT_EQ(replayed.value().records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(replayed.value().records[i], records[i]) << i;
  }
}

TEST_F(JournalFileTest, OpenTruncatesTornTailAndAppendsAfterIt) {
  Rng rng(13);
  const JournalRecord first = ArbitraryRecord(rng);
  const JournalRecord second = ArbitraryRecord(rng);
  {
    auto journal = Journal::Open(path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->Append(first).ok());
  }
  // Crash mid-write: half a frame lands after the valid record.
  const std::string torn =
      EncodeJournalRecord(second).substr(0, 5);
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << torn;
  }
  auto before = ReplayJournalFile(path_);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before.value().truncated());

  // Reopen: the torn tail is cut, and a fresh append lands cleanly where
  // the garbage used to be.
  {
    auto journal = Journal::Open(path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->Append(second).ok());
  }
  auto after = ReplayJournalFile(path_);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().truncated());
  ASSERT_EQ(after.value().records.size(), 2u);
  EXPECT_EQ(after.value().records[0], first);
  EXPECT_EQ(after.value().records[1], second);
}

TEST_F(JournalFileTest, ReplayOfAbsentFileIsEmpty) {
  auto replayed = ReplayJournalFile(dir_ + "/never_created.jnl");
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed.value().records.empty());
}

TEST_F(JournalFileTest, OpenRejectsForeignFile) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "histogram,count\n1,2\n";
  }
  auto journal = Journal::Open(path_);
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), StatusCode::kDataLoss);
}

// --- fsync policy matrix on an instrumented sink + fake clock ---

class CountingSink final : public JournalSink {
 public:
  Status Append(const void* data, std::size_t size) override {
    bytes.append(static_cast<const char*>(data), size);
    ++appends;
    return Status::Ok();
  }
  Status Sync() override {
    ++syncs;
    return Status::Ok();
  }

  std::string bytes;
  int appends = 0;
  int syncs = 0;
};

TEST(JournalFsyncTest, EveryRecordPolicySyncsPerAppend) {
  auto sink = std::make_unique<CountingSink>();
  CountingSink* raw = sink.get();
  auto journal = Journal::WithSink(std::move(sink));
  ASSERT_TRUE(journal.ok());
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(journal.value()->Append(ArbitraryRecord(rng)).ok());
  }
  EXPECT_EQ(raw->syncs, 5);
}

TEST(JournalFsyncTest, IntervalPolicySyncsOnFakeClockSchedule) {
  FakeClock clock;
  JournalOptions options;
  options.fsync_policy = FsyncPolicy::kInterval;
  options.fsync_interval = std::chrono::milliseconds(100);
  options.clock = &clock;
  auto sink = std::make_unique<CountingSink>();
  CountingSink* raw = sink.get();
  auto journal = Journal::WithSink(std::move(sink), options);
  ASSERT_TRUE(journal.ok());
  Rng rng(5);

  // First append always syncs (nothing synced yet).
  ASSERT_TRUE(journal.value()->Append(ArbitraryRecord(rng)).ok());
  EXPECT_EQ(raw->syncs, 1);
  // Within the interval: no sync.
  clock.Advance(std::chrono::milliseconds(40));
  ASSERT_TRUE(journal.value()->Append(ArbitraryRecord(rng)).ok());
  EXPECT_EQ(raw->syncs, 1);
  // Interval elapsed: the next append syncs.
  clock.Advance(std::chrono::milliseconds(60));
  ASSERT_TRUE(journal.value()->Append(ArbitraryRecord(rng)).ok());
  EXPECT_EQ(raw->syncs, 2);
}

TEST(JournalFsyncTest, NeverPolicyOnlySyncsManually) {
  JournalOptions options;
  options.fsync_policy = FsyncPolicy::kNever;
  auto sink = std::make_unique<CountingSink>();
  CountingSink* raw = sink.get();
  auto journal = Journal::WithSink(std::move(sink), options);
  ASSERT_TRUE(journal.ok());
  Rng rng(9);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(journal.value()->Append(ArbitraryRecord(rng)).ok());
  }
  EXPECT_EQ(raw->syncs, 0);
  ASSERT_TRUE(journal.value()->Sync().ok());
  EXPECT_EQ(raw->syncs, 1);
}

TEST(JournalFsyncTest, SinkStreamReplaysIdenticallyToFileStream) {
  // The sink seam and the file path must produce byte-identical streams:
  // what the chaos tests capture through a sink is exactly what a real
  // crash would leave on disk.
  auto sink = std::make_unique<CountingSink>();
  CountingSink* raw = sink.get();
  auto journal = Journal::WithSink(std::move(sink));
  ASSERT_TRUE(journal.ok());
  Rng rng(21);
  std::vector<JournalRecord> records;
  for (int i = 0; i < 4; ++i) {
    records.push_back(ArbitraryRecord(rng));
    ASSERT_TRUE(journal.value()->Append(records.back()).ok());
  }
  EXPECT_EQ(journal.value()->bytes_written(), raw->bytes.size());
  auto replayed = ReplayJournalBytes(raw->bytes);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(replayed.value().records[i], records[i]) << i;
  }
}

TEST(JournalEnvTest, JournalDirFromEnvReadsVariable) {
  ::unsetenv("DPHIST_JOURNAL_DIR");
  EXPECT_FALSE(JournalDirFromEnv().has_value());
  ::setenv("DPHIST_JOURNAL_DIR", "/var/lib/dphist", 1);
  ASSERT_TRUE(JournalDirFromEnv().has_value());
  EXPECT_EQ(JournalDirFromEnv().value(), "/var/lib/dphist");
  ::unsetenv("DPHIST_JOURNAL_DIR");
}

}  // namespace
}  // namespace serve
}  // namespace dphist
