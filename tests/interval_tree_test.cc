#include "dphist/transform/interval_tree.h"

#include <cmath>
#include <cstddef>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

std::vector<double> RandomLeaves(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n, 0.0);
  for (double& v : x) {
    v = static_cast<double>(SampleUniformInt(rng, 0, 100));
  }
  return x;
}

TEST(IntervalTreeTest, RejectsBadShapes) {
  EXPECT_FALSE(IntervalTree::Create(0, 2).ok());
  EXPECT_FALSE(IntervalTree::Create(8, 1).ok());
  EXPECT_FALSE(IntervalTree::Create(6, 2).ok());   // not a power of 2
  EXPECT_FALSE(IntervalTree::Create(8, 3).ok());   // not a power of 3
  EXPECT_TRUE(IntervalTree::Create(9, 3).ok());
}

TEST(IntervalTreeTest, SingleLeafTree) {
  auto tree = IntervalTree::Create(1, 2);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().num_levels(), 1u);
  EXPECT_EQ(tree.value().num_nodes(), 1u);
  EXPECT_TRUE(tree.value().IsLeaf(0));
  auto sums = tree.value().NodeSums({42.0});
  ASSERT_TRUE(sums.ok());
  EXPECT_DOUBLE_EQ(sums.value()[0], 42.0);
  auto inferred = tree.value().ConstrainedInference({7.0});
  ASSERT_TRUE(inferred.ok());
  EXPECT_DOUBLE_EQ(inferred.value()[0], 7.0);
}

TEST(IntervalTreeTest, BinaryTreeStructure) {
  auto tree = IntervalTree::Create(4, 2);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().num_levels(), 3u);
  EXPECT_EQ(tree.value().num_nodes(), 7u);
  EXPECT_EQ(tree.value().LevelOf(0), 0u);
  EXPECT_EQ(tree.value().LevelOf(1), 1u);
  EXPECT_EQ(tree.value().LevelOf(2), 1u);
  EXPECT_EQ(tree.value().LevelOf(3), 2u);
  EXPECT_EQ(tree.value().FirstChild(0), 1u);
  EXPECT_EQ(tree.value().FirstChild(1), 3u);
  EXPECT_EQ(tree.value().FirstChild(2), 5u);
  EXPECT_EQ(tree.value().Parent(1), 0u);
  EXPECT_EQ(tree.value().Parent(6), 2u);
  EXPECT_EQ(tree.value().IntervalBegin(2), 2u);
  EXPECT_EQ(tree.value().IntervalEnd(2), 4u);
  EXPECT_EQ(tree.value().IntervalBegin(4), 1u);
  EXPECT_EQ(tree.value().IntervalEnd(4), 2u);
  EXPECT_FALSE(tree.value().IsLeaf(2));
  EXPECT_TRUE(tree.value().IsLeaf(3));
}

class TreeShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(TreeShapeSweep, NodeSumsMatchIntervalSums) {
  const auto [leaves, fanout] = GetParam();
  auto tree = IntervalTree::Create(leaves, fanout);
  ASSERT_TRUE(tree.ok());
  const std::vector<double> x = RandomLeaves(leaves, 7 * leaves + fanout);
  auto sums = tree.value().NodeSums(x);
  ASSERT_TRUE(sums.ok());
  for (std::size_t v = 0; v < tree.value().num_nodes(); ++v) {
    double want = 0.0;
    for (std::size_t i = tree.value().IntervalBegin(v);
         i < tree.value().IntervalEnd(v); ++i) {
      want += x[i];
    }
    EXPECT_NEAR(sums.value()[v], want, 1e-9) << "node " << v;
  }
}

TEST_P(TreeShapeSweep, ZeroNoiseInferenceIsIdentity) {
  const auto [leaves, fanout] = GetParam();
  auto tree = IntervalTree::Create(leaves, fanout);
  ASSERT_TRUE(tree.ok());
  const std::vector<double> x = RandomLeaves(leaves, 99 * leaves + fanout);
  auto sums = tree.value().NodeSums(x);
  ASSERT_TRUE(sums.ok());
  auto inferred = tree.value().ConstrainedInference(sums.value());
  ASSERT_TRUE(inferred.ok());
  for (std::size_t i = 0; i < leaves; ++i) {
    EXPECT_NEAR(inferred.value()[i], x[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeShapeSweep,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(2, 2),
                      std::make_tuple(8, 2), std::make_tuple(64, 2),
                      std::make_tuple(3, 3), std::make_tuple(27, 3),
                      std::make_tuple(16, 4), std::make_tuple(256, 16)));

TEST(IntervalTreeTest, InferenceOutputIsRootConsistent) {
  // The inferred leaves must sum to the (blended) root estimate; more
  // broadly, re-aggregating the leaves yields a fully consistent tree, so
  // summing leaves under any internal node reproduces that node's final
  // estimate. We verify the root here via the two-pass z/h values.
  auto tree = IntervalTree::Create(8, 2);
  ASSERT_TRUE(tree.ok());
  std::vector<double> noisy(tree.value().num_nodes(), 0.0);
  Rng rng(4);
  for (double& v : noisy) {
    v = static_cast<double>(SampleUniformInt(rng, 0, 100));
  }
  auto inferred = tree.value().ConstrainedInference(noisy);
  ASSERT_TRUE(inferred.ok());
  // Check: for every internal node, the top-down pass guarantees
  // sum(children h) == h(parent). Reconstruct h bottom-up from leaves and
  // confirm each level's totals telescope to the same grand total.
  double total = 0.0;
  for (double v : inferred.value()) {
    total += v;
  }
  // Recompute what the root blended estimate should be (z[root]).
  // ConstrainedInference sets h[root] = z[root] and preserves totals.
  // So the leaf total must be finite and reproducible on a second run.
  auto again = tree.value().ConstrainedInference(noisy);
  ASSERT_TRUE(again.ok());
  double total_again = 0.0;
  for (double v : again.value()) {
    total_again += v;
  }
  EXPECT_NEAR(total, total_again, 1e-9);
  EXPECT_TRUE(std::isfinite(total));
}

TEST(IntervalTreeTest, InferenceReducesLeafErrorOnAverage) {
  // With noise on all nodes, constrained inference should beat the raw
  // noisy leaves in mean squared error (that is its purpose).
  const std::size_t leaves = 64;
  auto tree = IntervalTree::Create(leaves, 2);
  ASSERT_TRUE(tree.ok());
  const std::vector<double> x = RandomLeaves(leaves, 5);
  auto sums = tree.value().NodeSums(x);
  ASSERT_TRUE(sums.ok());
  Rng rng(6);
  double mse_raw = 0.0;
  double mse_inferred = 0.0;
  const int reps = 200;
  const std::size_t leaf_base = tree.value().num_nodes() - leaves;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<double> noisy = sums.value();
    for (double& v : noisy) {
      v += SampleLaplace(rng, 3.0);
    }
    auto inferred = tree.value().ConstrainedInference(noisy);
    ASSERT_TRUE(inferred.ok());
    for (std::size_t i = 0; i < leaves; ++i) {
      const double raw_err = noisy[leaf_base + i] - x[i];
      const double inf_err = inferred.value()[i] - x[i];
      mse_raw += raw_err * raw_err;
      mse_inferred += inf_err * inf_err;
    }
  }
  EXPECT_LT(mse_inferred, mse_raw);
}

TEST(IntervalTreeTest, InferenceRejectsWrongSizes) {
  auto tree = IntervalTree::Create(4, 2);
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree.value().ConstrainedInference({1.0, 2.0}).ok());
  EXPECT_FALSE(tree.value().NodeSums({1.0, 2.0}).ok());
}

}  // namespace
}  // namespace dphist
