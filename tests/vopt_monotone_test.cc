// Randomized equivalence suite for the monotone v-opt row solver
// (DESIGN §7). The contract under test is bitwise: for every histogram,
// cost kind, grid step, and bucket count, kMonotone must produce the
// exact table_ and parent_ arrays kNaive produces — same doubles, same
// leftmost-argmin tie-breaking — at any thread count. The adversarial
// cases are tie plateaus (constant and piecewise-constant counts), where
// a single mis-ordered comparison in the pruning rules would silently
// move a published cut.

#include "dphist/hist/vopt_dp.h"

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/thread_pool.h"
#include "dphist/hist/interval_cost.h"
#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

std::vector<double> UniformCounts(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> counts(n);
  for (double& c : counts) {
    c = static_cast<double>(SampleUniformInt(rng, 0, 1000));
  }
  return counts;
}

std::vector<double> NoisyCounts(std::size_t n, std::uint64_t seed) {
  // Laplace-perturbed counts, as NoiseFirst feeds the solver: negative
  // values and irrational doubles included.
  Rng rng(seed);
  std::vector<double> counts(n);
  for (double& c : counts) {
    c = static_cast<double>(SampleUniformInt(rng, 0, 50)) +
        SampleLaplace(rng, 2.0);
  }
  return counts;
}

std::vector<double> PiecewiseConstantCounts(std::size_t n,
                                            std::uint64_t seed) {
  // Constant runs of random length/level: massive cost-tie plateaus, with
  // zero-cost intervals inside every run.
  Rng rng(seed);
  std::vector<double> counts;
  counts.reserve(n);
  while (counts.size() < n) {
    const double level = static_cast<double>(SampleUniformInt(rng, 0, 5));
    const std::size_t run =
        static_cast<std::size_t>(SampleUniformInt(rng, 1, 12));
    for (std::size_t i = 0; i < run && counts.size() < n; ++i) {
      counts.push_back(level);
    }
  }
  return counts;
}

// Solves with an explicit strategy/pool and max_buckets = 0 (the full
// table: every k up to m), min_parallel_candidates = 1 so a multi-thread
// pool genuinely parallelizes even tiny rows.
VOptSolver SolveWith(const IntervalCostTable& costs, VOptStrategy strategy,
                     ThreadPool* pool) {
  VOptSolver::SolveOptions options;
  options.strategy = strategy;
  options.pool = pool;
  options.min_parallel_candidates = 1;
  auto solver = VOptSolver::Solve(costs, 0, options);
  EXPECT_TRUE(solver.ok()) << solver.status().message();
  return solver.value();
}

void ExpectBitIdentical(const VOptSolver& naive, const VOptSolver& monotone,
                        const std::string& label) {
  ASSERT_EQ(naive.max_buckets(), monotone.max_buckets()) << label;
  ASSERT_EQ(naive.num_candidates(), monotone.num_candidates()) << label;
  const std::size_t m = naive.num_candidates();
  for (std::size_t k = 1; k <= naive.max_buckets(); ++k) {
    for (std::size_t i = k; i <= m; ++i) {
      // EXPECT_EQ on doubles is exact — bit-identical values, not close.
      EXPECT_EQ(naive.PrefixCost(k, i), monotone.PrefixCost(k, i))
          << label << " T[" << k << "][" << i << "]";
      EXPECT_EQ(naive.PrefixParent(k, i), monotone.PrefixParent(k, i))
          << label << " parent[" << k << "][" << i << "]";
    }
    auto expected = naive.Traceback(k);
    auto actual = monotone.Traceback(k);
    ASSERT_EQ(expected.ok(), actual.ok()) << label << " k=" << k;
    if (expected.ok()) {
      EXPECT_EQ(expected.value().cuts(), actual.value().cuts())
          << label << " k=" << k;
    }
  }
}

// The full cross-product: both cost kinds, grid steps 1 and 3, sequential
// and 4-thread monotone runs against a sequential naive reference.
void CheckAllConfigs(const std::vector<double>& counts,
                     const std::string& data_label) {
  ThreadPool sequential(1);
  ThreadPool parallel(4);
  for (const CostKind kind : {CostKind::kSquared, CostKind::kAbsolute}) {
    for (const std::size_t grid_step : {std::size_t{1}, std::size_t{3}}) {
      IntervalCostTable::Options options;
      options.kind = kind;
      options.grid_step = grid_step;
      auto costs = IntervalCostTable::Create(counts, options);
      ASSERT_TRUE(costs.ok());
      const std::string label = data_label + "/" + CostKindName(kind) +
                                "/grid" + std::to_string(grid_step);
      const VOptSolver naive =
          SolveWith(costs.value(), VOptStrategy::kNaive, &sequential);
      EXPECT_EQ(naive.stats().strategy, VOptStrategy::kNaive);
      EXPECT_EQ(naive.stats().bound_scans, 0u);
      const VOptSolver mono_seq =
          SolveWith(costs.value(), VOptStrategy::kMonotone, &sequential);
      EXPECT_EQ(mono_seq.stats().strategy, VOptStrategy::kMonotone);
      ExpectBitIdentical(naive, mono_seq, label + "/threads1");
      const VOptSolver mono_par =
          SolveWith(costs.value(), VOptStrategy::kMonotone, &parallel);
      ExpectBitIdentical(naive, mono_par, label + "/threads4");
      // The monotone work counters are part of the determinism contract:
      // identical at any thread count (chunking never changes which
      // candidates a cell scans or evaluates).
      EXPECT_EQ(mono_seq.stats().cost_lookups, mono_par.stats().cost_lookups)
          << label;
      EXPECT_EQ(mono_seq.stats().bound_scans, mono_par.stats().bound_scans)
          << label;
    }
  }
}

TEST(VOptMonotoneTest, UniformRandomCounts) {
  for (const std::size_t n :
       {std::size_t{31}, std::size_t{64}, std::size_t{65}, std::size_t{127},
        std::size_t{200}, std::size_t{300}}) {
    CheckAllConfigs(UniformCounts(n, 1000 + n), "uniform/n" +
                                                    std::to_string(n));
  }
}

TEST(VOptMonotoneTest, LaplaceNoisedCounts) {
  for (const std::size_t n :
       {std::size_t{33}, std::size_t{96}, std::size_t{129},
        std::size_t{257}}) {
    CheckAllConfigs(NoisyCounts(n, 2000 + n),
                    "noisy/n" + std::to_string(n));
  }
}

TEST(VOptMonotoneTest, TinyDomains) {
  // Below every tile/block/auto threshold: exercises the single-candidate
  // cells and the i = k edges.
  for (std::size_t n = 1; n <= 9; ++n) {
    CheckAllConfigs(UniformCounts(n, 3000 + n),
                    "tiny/n" + std::to_string(n));
  }
}

TEST(VOptMonotoneTest, ConstantCountsAdversarialTies) {
  // Every interval has zero cost: every candidate of every cell ties at
  // the row minimum, so any tie-unsafe skip rule changes parent_ here.
  CheckAllConfigs(std::vector<double>(150, 4.0), "constant/n150");
  CheckAllConfigs(std::vector<double>(64, 0.0), "zeros/n64");
}

TEST(VOptMonotoneTest, PiecewiseConstantAdversarialTies) {
  for (const std::size_t n : {std::size_t{80}, std::size_t{150},
                              std::size_t{288}}) {
    CheckAllConfigs(PiecewiseConstantCounts(n, 4000 + n),
                    "piecewise/n" + std::to_string(n));
  }
}

TEST(VOptMonotoneTest, MonotonePrunesLookups) {
  // Not just correct but *working*: on a sizable solve the monotone path
  // must evaluate a small fraction of the naive path's cost lookups.
  auto costs = IntervalCostTable::Create(UniformCounts(300, 7),
                                         IntervalCostTable::Options{});
  ASSERT_TRUE(costs.ok());
  ThreadPool sequential(1);
  const VOptSolver naive =
      SolveWith(costs.value(), VOptStrategy::kNaive, &sequential);
  const VOptSolver mono =
      SolveWith(costs.value(), VOptStrategy::kMonotone, &sequential);
  EXPECT_LT(mono.stats().cost_lookups, naive.stats().cost_lookups / 10);
  EXPECT_GT(mono.stats().bound_scans, 0u);
  EXPECT_EQ(naive.stats().cells, mono.stats().cells);
}

TEST(VOptMonotoneTest, AutoResolvesBySizeAndEnv) {
  auto large = IntervalCostTable::Create(UniformCounts(100, 8),
                                         IntervalCostTable::Options{});
  auto small = IntervalCostTable::Create(UniformCounts(8, 9),
                                         IntervalCostTable::Options{});
  ASSERT_TRUE(large.ok());
  ASSERT_TRUE(small.ok());
  auto resolved = [](const Result<VOptSolver>& solver) {
    return solver.value().stats().strategy;
  };
  // kAuto: monotone once rows are long enough to prune, naive below.
  EXPECT_EQ(resolved(VOptSolver::Solve(large.value(), 0)),
            VOptStrategy::kMonotone);
  EXPECT_EQ(resolved(VOptSolver::Solve(small.value(), 0)),
            VOptStrategy::kNaive);
  // DPHIST_VOPT_STRATEGY overrides kAuto in both directions...
  ASSERT_EQ(setenv("DPHIST_VOPT_STRATEGY", "naive", 1), 0);
  EXPECT_EQ(resolved(VOptSolver::Solve(large.value(), 0)),
            VOptStrategy::kNaive);
  ASSERT_EQ(setenv("DPHIST_VOPT_STRATEGY", "monotone", 1), 0);
  EXPECT_EQ(resolved(VOptSolver::Solve(small.value(), 0)),
            VOptStrategy::kMonotone);
  // ...an unknown value falls back to the kAuto policy...
  ASSERT_EQ(setenv("DPHIST_VOPT_STRATEGY", "warp-speed", 1), 0);
  EXPECT_EQ(resolved(VOptSolver::Solve(large.value(), 0)),
            VOptStrategy::kMonotone);
  // ...and an explicit SolveOptions strategy beats the environment.
  ASSERT_EQ(setenv("DPHIST_VOPT_STRATEGY", "monotone", 1), 0);
  VOptSolver::SolveOptions explicit_naive;
  explicit_naive.strategy = VOptStrategy::kNaive;
  EXPECT_EQ(
      resolved(VOptSolver::Solve(large.value(), 0, explicit_naive)),
      VOptStrategy::kNaive);
  ASSERT_EQ(unsetenv("DPHIST_VOPT_STRATEGY"), 0);
}

TEST(VOptMonotoneTest, StrategyNamesAndParsing) {
  EXPECT_STREQ(VOptStrategyName(VOptStrategy::kAuto), "auto");
  EXPECT_STREQ(VOptStrategyName(VOptStrategy::kNaive), "naive");
  EXPECT_STREQ(VOptStrategyName(VOptStrategy::kMonotone), "monotone");
  VOptStrategy out = VOptStrategy::kAuto;
  EXPECT_TRUE(ParseVOptStrategy("monotone", &out));
  EXPECT_EQ(out, VOptStrategy::kMonotone);
  EXPECT_TRUE(ParseVOptStrategy("naive", &out));
  EXPECT_EQ(out, VOptStrategy::kNaive);
  EXPECT_TRUE(ParseVOptStrategy("auto", &out));
  EXPECT_EQ(out, VOptStrategy::kAuto);
  out = VOptStrategy::kMonotone;
  EXPECT_FALSE(ParseVOptStrategy("Monotone", &out));
  EXPECT_FALSE(ParseVOptStrategy("", &out));
  EXPECT_EQ(out, VOptStrategy::kMonotone);  // failed parse leaves it alone
}

}  // namespace
}  // namespace dphist
