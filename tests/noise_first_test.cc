#include "dphist/algorithms/noise_first.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

Histogram Uniformish(std::size_t n, double level) {
  std::vector<double> counts(n, level);
  return Histogram(std::move(counts));
}

TEST(NoiseFirstTest, Name) { EXPECT_EQ(NoiseFirst().name(), "noise_first"); }

TEST(NoiseFirstTest, RejectsBadArguments) {
  NoiseFirst algo;
  Rng rng(1);
  EXPECT_FALSE(algo.Publish(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(algo.Publish(Histogram({1.0}), 0.0, rng).ok());
}

TEST(NoiseFirstTest, PreservesSizeAndIsDeterministic) {
  NoiseFirst algo;
  const Histogram truth({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
  Rng a(2);
  Rng b(2);
  auto out_a = algo.Publish(truth, 0.5, a);
  auto out_b = algo.Publish(truth, 0.5, b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(out_a.value().size(), truth.size());
  EXPECT_EQ(out_a.value().counts(), out_b.value().counts());
}

TEST(NoiseFirstTest, PublishedCountsAreBucketMeansOfNoisyCounts) {
  // Post-processing property: the output is exactly a bucket-mean merge of
  // the intermediate noisy counts reported in Details — the true counts
  // are touched only through the Laplace step.
  NoiseFirst algo;
  const Histogram truth({0.0, 0.0, 50.0, 50.0, 50.0, 0.0, 0.0, 0.0});
  Rng rng(3);
  NoiseFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(details.noisy_counts.size(), truth.size());
  auto structure =
      Bucketization::FromCuts(truth.size(), details.cuts);
  ASSERT_TRUE(structure.ok());
  auto buckets = structure.value().Apply(details.noisy_counts);
  ASSERT_TRUE(buckets.ok());
  for (std::size_t b = 0; b < buckets.value().size(); ++b) {
    const Bucket bucket = buckets.value()[b];
    for (std::size_t i = bucket.begin; i < bucket.end; ++i) {
      EXPECT_NEAR(out.value().count(i), bucket.mean, 1e-9);
    }
  }
}

TEST(NoiseFirstTest, KStarFarBelowDomainOnUniformData) {
  // On (near) uniform data merging is free, so the paper's estimator must
  // choose far fewer buckets than the domain size at small epsilon. (The
  // unbiased estimator still overfits Laplace noise somewhat — the DP can
  // always cut out the heaviest noise outliers — so k* lands well below n
  // but not at 1; see the bias-corrected variant below.)
  NoiseFirst algo;
  const Histogram truth = Uniformish(128, 100.0);
  Rng rng(4);
  NoiseFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 0.05, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(details.chosen_buckets, 48u);
}

TEST(NoiseFirstTest, BiasCorrectedKStarTinyOnUniformData) {
  // With the selection-bias correction enabled, structure-less data should
  // collapse to a handful of buckets.
  NoiseFirst::Options options;
  options.bias_corrected_selection = true;
  NoiseFirst algo(options);
  const Histogram truth = Uniformish(128, 100.0);
  Rng rng(4);
  NoiseFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 0.05, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(details.chosen_buckets, 6u);
}

TEST(NoiseFirstTest, EstimatorVectorCoversSearchRange) {
  NoiseFirst algo;
  const Histogram truth = Uniformish(32, 10.0);
  Rng rng(5);
  NoiseFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 0.5, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(details.estimated_errors.size(), 32u);
  // The chosen k must be the argmin of the estimator.
  const auto it = std::min_element(details.estimated_errors.begin(),
                                   details.estimated_errors.end());
  EXPECT_EQ(details.chosen_buckets,
            static_cast<std::size_t>(it - details.estimated_errors.begin()) +
                1);
}

TEST(NoiseFirstTest, FixedBucketsHonored) {
  NoiseFirst::Options options;
  options.fixed_buckets = 3;
  NoiseFirst algo(options);
  const Histogram truth = Uniformish(24, 5.0);
  Rng rng(6);
  NoiseFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(details.chosen_buckets, 3u);
  EXPECT_EQ(details.cuts.size(), 2u);
  EXPECT_TRUE(details.estimated_errors.empty());
}

TEST(NoiseFirstTest, FixedBucketsClampedToDomain) {
  NoiseFirst::Options options;
  options.fixed_buckets = 100;
  NoiseFirst algo(options);
  const Histogram truth = Uniformish(6, 5.0);
  Rng rng(7);
  NoiseFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(details.chosen_buckets, 6u);
}

TEST(NoiseFirstTest, ClampNonNegative) {
  NoiseFirst::Options options;
  options.clamp_nonnegative = true;
  NoiseFirst algo(options);
  const Histogram truth = Uniformish(64, 0.0);  // all zero: noise goes
                                                // negative half the time
  Rng rng(8);
  auto out = algo.Publish(truth, 0.1, rng);
  ASSERT_TRUE(out.ok());
  for (double v : out.value().counts()) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(NoiseFirstTest, GridStepRestrictsCuts) {
  NoiseFirst::Options options;
  options.grid_step = 4;
  options.fixed_buckets = 4;
  NoiseFirst algo(options);
  const Histogram truth = Uniformish(32, 20.0);
  Rng rng(9);
  NoiseFirst::Details details;
  auto out = algo.PublishWithDetails(truth, 1.0, rng, &details);
  ASSERT_TRUE(out.ok());
  for (std::size_t cut : details.cuts) {
    EXPECT_EQ(cut % 4, 0u);
  }
}

TEST(NoiseFirstTest, AutoGridStepRule) {
  EXPECT_EQ(NoiseFirst::AutoGridStep(10), 1u);
  EXPECT_EQ(NoiseFirst::AutoGridStep(2048), 1u);
  EXPECT_EQ(NoiseFirst::AutoGridStep(2049), 3u);
  EXPECT_EQ(NoiseFirst::AutoGridStep(4096), 4u);
}

TEST(NoiseFirstTest, BeatsDworkOnUniformDataUnitBins) {
  // The paper's headline property for NoiseFirst: on merge-friendly data
  // the published unit-bin counts are closer to the truth than the raw
  // Dwork noise (which is exactly the noisy_counts intermediate).
  NoiseFirst algo;
  NoiseFirst::Options corrected_options;
  corrected_options.bias_corrected_selection = true;
  NoiseFirst corrected(corrected_options);
  const Histogram truth = Uniformish(256, 80.0);
  const double epsilon = 0.05;
  Rng rng(10);
  double nf_sq = 0.0;
  double corrected_sq = 0.0;
  double dwork_sq = 0.0;
  for (int rep = 0; rep < 30; ++rep) {
    NoiseFirst::Details details;
    auto out = algo.PublishWithDetails(truth, epsilon, rng, &details);
    ASSERT_TRUE(out.ok());
    Rng rng_corrected = rng.Fork();
    auto out_corrected = corrected.Publish(truth, epsilon, rng_corrected);
    ASSERT_TRUE(out_corrected.ok());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      const double nf_err = out.value().count(i) - truth.count(i);
      const double co_err = out_corrected.value().count(i) - truth.count(i);
      const double dw_err = details.noisy_counts[i] - truth.count(i);
      nf_sq += nf_err * nf_err;
      corrected_sq += co_err * co_err;
      dwork_sq += dw_err * dw_err;
    }
  }
  // Paper's estimator: clear improvement over Dwork despite noise
  // overfitting; bias-corrected variant: near-total noise cancellation.
  EXPECT_LT(nf_sq, dwork_sq * 0.85);
  EXPECT_LT(corrected_sq, dwork_sq * 0.25);
}

}  // namespace
}  // namespace dphist
