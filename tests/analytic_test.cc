#include "dphist/metrics/analytic.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/algorithms/grouping_smoothing.h"
#include "dphist/algorithms/identity_laplace.h"
#include "dphist/algorithms/privelet.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

// Empirical variance of the error of `query` over many releases.
template <typename Publisher>
double EmpiricalQueryVariance(const Publisher& publisher,
                              const Histogram& truth, const RangeQuery& query,
                              double epsilon, int reps, std::uint64_t seed) {
  Rng root(seed);
  const double true_answer =
      Histogram(truth).RangeSumUnchecked(query.begin, query.end);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < reps; ++i) {
    Rng rng = root.Fork();
    auto out = publisher.Publish(truth, epsilon, rng);
    EXPECT_TRUE(out.ok());
    const double err =
        out.value().RangeSumUnchecked(query.begin, query.end) - true_answer;
    sum += err;
    sum_sq += err * err;
  }
  const double mean = sum / reps;
  return sum_sq / reps - mean * mean;
}

TEST(AnalyticTest, ValidatesArguments) {
  EXPECT_FALSE(DworkRangeVariance(5, 0.0).ok());
  EXPECT_FALSE(PriveletRangeVariance(12, {0, 4}, 1.0).ok());   // not pow2
  EXPECT_FALSE(PriveletRangeVariance(16, {4, 4}, 1.0).ok());   // empty
  EXPECT_FALSE(PriveletRangeVariance(16, {0, 17}, 1.0).ok());  // overflow
  EXPECT_FALSE(PriveletRangeVariance(16, {0, 4}, -1.0).ok());
  EXPECT_FALSE(GroupedBinVariance(0, 1.0).ok());
  EXPECT_FALSE(GroupedBinVariance(4, 0.0).ok());
}

TEST(AnalyticTest, DworkFormulaValues) {
  EXPECT_DOUBLE_EQ(DworkRangeVariance(1, 1.0).value(), 2.0);
  EXPECT_DOUBLE_EQ(DworkRangeVariance(50, 0.5).value(), 400.0);
}

TEST(AnalyticTest, GroupedFormulaValues) {
  EXPECT_DOUBLE_EQ(GroupedBinVariance(1, 1.0).value(), 2.0);
  EXPECT_DOUBLE_EQ(GroupedBinVariance(8, 0.1).value(), 200.0 / 64.0);
}

TEST(AnalyticTest, DworkEmpiricalMatches) {
  const Histogram truth(std::vector<double>(64, 100.0));
  IdentityLaplace algo;
  const double epsilon = 0.5;
  for (const RangeQuery query : {RangeQuery{0, 1}, RangeQuery{10, 40},
                                 RangeQuery{0, 64}}) {
    const double analytic =
        DworkRangeVariance(query.length(), epsilon).value();
    const double empirical =
        EmpiricalQueryVariance(algo, truth, query, epsilon, 4000, 11);
    EXPECT_NEAR(empirical, analytic, 0.12 * analytic)
        << "[" << query.begin << "," << query.end << ")";
  }
}

TEST(AnalyticTest, PriveletEmpiricalMatches) {
  const std::size_t n = 64;
  const Histogram truth(std::vector<double>(n, 100.0));
  Privelet algo;
  const double epsilon = 0.5;
  for (const RangeQuery query :
       {RangeQuery{0, 1}, RangeQuery{5, 23}, RangeQuery{0, 64},
        RangeQuery{31, 33}}) {
    const double analytic =
        PriveletRangeVariance(n, query, epsilon).value();
    const double empirical =
        EmpiricalQueryVariance(algo, truth, query, epsilon, 4000, 13);
    EXPECT_NEAR(empirical, analytic, 0.12 * analytic)
        << "[" << query.begin << "," << query.end << ")";
  }
}

TEST(AnalyticTest, GroupedEmpiricalMatches) {
  const std::size_t n = 64;
  const Histogram truth(std::vector<double>(n, 100.0));
  GroupingSmoothing::Options options;
  options.group_size = 8;
  GroupingSmoothing algo(options);
  const double epsilon = 0.5;
  // A unit query inside one group sees exactly the per-bin variance.
  const double analytic = GroupedBinVariance(8, epsilon).value();
  const double empirical = EmpiricalQueryVariance(
      algo, truth, RangeQuery{3, 4}, epsilon, 4000, 17);
  EXPECT_NEAR(empirical, analytic, 0.12 * analytic);
}

TEST(AnalyticTest, PriveletBeatsDworkOnLongRangesAnalytically) {
  // The polylog-vs-linear separation, straight from the formulas.
  const std::size_t n = 1024;
  const double epsilon = 1.0;
  const RangeQuery full{0, n};
  const double privelet = PriveletRangeVariance(n, full, epsilon).value();
  const double dwork = DworkRangeVariance(n, epsilon).value();
  EXPECT_LT(privelet, dwork / 4.0);
  // ... while unit bins pay the polylog overhead.
  const RangeQuery unit{n / 2, n / 2 + 1};
  EXPECT_GT(PriveletRangeVariance(n, unit, epsilon).value(),
            DworkRangeVariance(1, epsilon).value());
}

TEST(AnalyticTest, PriveletVarianceGrowsPolylogInLength) {
  const std::size_t n = 1024;
  const double epsilon = 1.0;
  // Doubling the range length from an aligned start must grow the
  // variance far slower than the 2x of Dwork.
  const double var_256 =
      PriveletRangeVariance(n, {0, 256}, epsilon).value();
  const double var_512 =
      PriveletRangeVariance(n, {0, 512}, epsilon).value();
  EXPECT_LT(var_512, var_256 * 1.8);
}

}  // namespace
}  // namespace dphist
