#include "dphist/privacy/laplace_mechanism.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(LaplaceMechanismTest, RejectsBadParameters) {
  EXPECT_FALSE(LaplaceMechanism::Create(0.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(-1.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(1.0, 0.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(1.0, -2.0).ok());
}

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  auto mech = LaplaceMechanism::Create(0.5, 2.0);
  ASSERT_TRUE(mech.ok());
  EXPECT_DOUBLE_EQ(mech.value().scale(), 4.0);
  EXPECT_DOUBLE_EQ(mech.value().epsilon(), 0.5);
  EXPECT_DOUBLE_EQ(mech.value().sensitivity(), 2.0);
  EXPECT_DOUBLE_EQ(mech.value().noise_variance(), 32.0);
}

TEST(LaplaceMechanismTest, PerturbIsUnbiased) {
  auto mech = LaplaceMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(mech.ok());
  Rng rng(1);
  const double truth = 100.0;
  double sum = 0.0;
  const int reps = 200000;
  for (int i = 0; i < reps; ++i) {
    sum += mech.value().Perturb(truth, rng);
  }
  EXPECT_NEAR(sum / reps, truth, 0.05);
}

TEST(LaplaceMechanismTest, EmpiricalVarianceMatches) {
  const double epsilon = 0.5;
  auto mech = LaplaceMechanism::Create(epsilon, 1.0);
  ASSERT_TRUE(mech.ok());
  Rng rng(2);
  double sum_sq = 0.0;
  const int reps = 200000;
  for (int i = 0; i < reps; ++i) {
    const double noise = mech.value().Perturb(0.0, rng);
    sum_sq += noise * noise;
  }
  EXPECT_NEAR(sum_sq / reps, mech.value().noise_variance(),
              0.05 * mech.value().noise_variance());
}

TEST(LaplaceMechanismTest, VectorPerturbationKeepsShape) {
  auto mech = LaplaceMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(mech.ok());
  Rng rng(3);
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> noisy = mech.value().PerturbVector(values, rng);
  ASSERT_EQ(noisy.size(), values.size());
  bool any_changed = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    any_changed |= noisy[i] != values[i];
  }
  EXPECT_TRUE(any_changed);
}

TEST(LaplaceMechanismTest, DeterministicGivenSeed) {
  auto mech = LaplaceMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(mech.ok());
  Rng rng_a(77);
  Rng rng_b(77);
  const std::vector<double> values(16, 5.0);
  EXPECT_EQ(mech.value().PerturbVector(values, rng_a),
            mech.value().PerturbVector(values, rng_b));
}

TEST(LaplaceMechanismTest, DpLikelihoodRatioHolds) {
  // Empirically check the defining inequality on an interval event:
  // for neighboring values v and v+1 (sensitivity 1), the probability of
  // landing in [v-0.5, v+0.5] differs by at most e^eps (with slack for
  // sampling error).
  const double epsilon = 1.0;
  auto mech = LaplaceMechanism::Create(epsilon, 1.0);
  ASSERT_TRUE(mech.ok());
  Rng rng(4);
  const int reps = 300000;
  int hits_v = 0;
  int hits_w = 0;
  for (int i = 0; i < reps; ++i) {
    if (std::abs(mech.value().Perturb(0.0, rng)) <= 0.5) {
      ++hits_v;
    }
    if (std::abs(mech.value().Perturb(1.0, rng)) <= 0.5) {
      ++hits_w;
    }
  }
  const double ratio = static_cast<double>(hits_v) / hits_w;
  EXPECT_LT(ratio, std::exp(epsilon) * 1.05);
  EXPECT_GT(ratio, 1.0);  // shifted distribution is strictly less likely
}

}  // namespace
}  // namespace dphist
