// SparseHistogram core invariants: construction validation, exact range
// sums against a naive loop, aggregation from raw records, fingerprint
// sensitivity, and the CSV round-trip with its typed parse failures.

#include "dphist/sparse/sparse_histogram.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/status.h"
#include "dphist/sparse/sparse_csv.h"

namespace dphist {
namespace sparse {
namespace {

std::vector<SparseEntry> SampleEntries() {
  return {{2, 1.5}, {5, -0.25}, {9, 4.0}, {1ULL << 40, 7.0}};
}

TEST(SparseHistogramTest, CreateAcceptsSortedInDomainEntries) {
  auto histogram = SparseHistogram::Create(1ULL << 41, SampleEntries());
  ASSERT_TRUE(histogram.ok()) << histogram.status().ToString();
  EXPECT_EQ(histogram.value().domain_size(), 1ULL << 41);
  EXPECT_EQ(histogram.value().stored_keys(), 4u);
}

TEST(SparseHistogramTest, CreateAcceptsEmptyEntries) {
  auto histogram = SparseHistogram::Create(10, {});
  ASSERT_TRUE(histogram.ok()) << histogram.status().ToString();
  EXPECT_EQ(histogram.value().stored_keys(), 0u);
  EXPECT_DOUBLE_EQ(histogram.value().Total(), 0.0);
}

TEST(SparseHistogramTest, CreateRejectsDuplicateKeys) {
  auto histogram = SparseHistogram::Create(10, {{3, 1.0}, {3, 2.0}});
  ASSERT_FALSE(histogram.ok());
  EXPECT_EQ(histogram.status().code(), StatusCode::kInvalidArgument);
}

TEST(SparseHistogramTest, CreateRejectsUnsortedKeys) {
  auto histogram = SparseHistogram::Create(10, {{5, 1.0}, {3, 2.0}});
  ASSERT_FALSE(histogram.ok());
  EXPECT_EQ(histogram.status().code(), StatusCode::kInvalidArgument);
}

TEST(SparseHistogramTest, CreateRejectsOutOfDomainKey) {
  auto histogram = SparseHistogram::Create(10, {{10, 1.0}});
  ASSERT_FALSE(histogram.ok());
  EXPECT_EQ(histogram.status().code(), StatusCode::kInvalidArgument);
}

TEST(SparseHistogramTest, CreateRejectsZeroDomain) {
  auto histogram = SparseHistogram::Create(0, {});
  ASSERT_FALSE(histogram.ok());
  EXPECT_EQ(histogram.status().code(), StatusCode::kInvalidArgument);
}

TEST(SparseHistogramTest, CreateRejectsDomainPastMaximum) {
  EXPECT_TRUE(SparseHistogram::Create(kMaxSparseDomain, {}).ok());
  auto histogram = SparseHistogram::Create(kMaxSparseDomain + 1, {});
  ASSERT_FALSE(histogram.ok());
  EXPECT_EQ(histogram.status().code(), StatusCode::kInvalidArgument);
}

TEST(SparseHistogramTest, CountForReadsStoredAndImplicitKeys) {
  auto histogram = SparseHistogram::Create(1ULL << 41, SampleEntries());
  ASSERT_TRUE(histogram.ok());
  EXPECT_DOUBLE_EQ(histogram.value().CountFor(2), 1.5);
  EXPECT_DOUBLE_EQ(histogram.value().CountFor(5), -0.25);
  EXPECT_DOUBLE_EQ(histogram.value().CountFor(1ULL << 40), 7.0);
  EXPECT_DOUBLE_EQ(histogram.value().CountFor(3), 0.0);
  EXPECT_DOUBLE_EQ(histogram.value().CountFor((1ULL << 41) - 1), 0.0);
  // Past the domain also reads 0.
  EXPECT_DOUBLE_EQ(histogram.value().CountFor(~0ULL), 0.0);
}

TEST(SparseHistogramTest, TotalSumsAllStoredCounts) {
  auto histogram = SparseHistogram::Create(1ULL << 41, SampleEntries());
  ASSERT_TRUE(histogram.ok());
  EXPECT_DOUBLE_EQ(histogram.value().Total(), 1.5 - 0.25 + 4.0 + 7.0);
}

TEST(SparseHistogramTest, RangeSumMatchesNaiveLoopOnSmallDomain) {
  auto histogram = SparseHistogram::Create(
      16, {{1, 2.0}, {3, -1.0}, {4, 0.5}, {9, 3.0}, {15, 1.0}});
  ASSERT_TRUE(histogram.ok());
  for (std::uint64_t begin = 0; begin <= 16; ++begin) {
    for (std::uint64_t end = begin; end <= 16; ++end) {
      double naive = 0.0;
      for (std::uint64_t key = begin; key < end; ++key) {
        naive += histogram.value().CountFor(key);
      }
      auto sum = histogram.value().RangeSum(begin, end);
      ASSERT_TRUE(sum.ok()) << "[" << begin << ", " << end << ")";
      EXPECT_DOUBLE_EQ(sum.value(), naive)
          << "[" << begin << ", " << end << ")";
      EXPECT_DOUBLE_EQ(histogram.value().RangeSumUnchecked(begin, end), naive);
    }
  }
}

TEST(SparseHistogramTest, RangeSumSpansHugeDomains) {
  auto histogram = SparseHistogram::Create(kMaxSparseDomain, SampleEntries());
  ASSERT_TRUE(histogram.ok());
  auto everything = histogram.value().RangeSum(0, kMaxSparseDomain);
  ASSERT_TRUE(everything.ok());
  EXPECT_DOUBLE_EQ(everything.value(), histogram.value().Total());
  auto tail = histogram.value().RangeSum(10, kMaxSparseDomain);
  ASSERT_TRUE(tail.ok());
  EXPECT_DOUBLE_EQ(tail.value(), 7.0);
}

TEST(SparseHistogramTest, RangeSumRejectsInvalidBounds) {
  auto histogram = SparseHistogram::Create(10, {{3, 1.0}});
  ASSERT_TRUE(histogram.ok());
  auto reversed = histogram.value().RangeSum(5, 2);
  ASSERT_FALSE(reversed.ok());
  EXPECT_EQ(reversed.status().code(), StatusCode::kInvalidArgument);
  auto past_domain = histogram.value().RangeSum(0, 11);
  ASSERT_FALSE(past_domain.ok());
  EXPECT_EQ(past_domain.status().code(), StatusCode::kInvalidArgument);
}

TEST(SparseHistogramTest, FromRecordsAggregatesMultiset) {
  auto histogram =
      SparseHistogram::FromRecords(100, {7, 3, 7, 99, 7, 3});
  ASSERT_TRUE(histogram.ok()) << histogram.status().ToString();
  const std::vector<SparseEntry> expected = {{3, 2.0}, {7, 3.0}, {99, 1.0}};
  EXPECT_EQ(histogram.value().entries(), expected);
}

TEST(SparseHistogramTest, FromRecordsRejectsOutOfDomainRecord) {
  auto histogram = SparseHistogram::FromRecords(100, {7, 100});
  ASSERT_FALSE(histogram.ok());
  EXPECT_EQ(histogram.status().code(), StatusCode::kInvalidArgument);
}

TEST(SparseFingerprintTest, SensitiveToDomainKeysAndCountBits) {
  auto base = SparseHistogram::Create(1000, {{1, 2.0}, {5, 3.0}});
  auto other_domain = SparseHistogram::Create(1001, {{1, 2.0}, {5, 3.0}});
  auto other_key = SparseHistogram::Create(1000, {{1, 2.0}, {6, 3.0}});
  // -0.0 == 0.0 as doubles but differs in bit pattern; the fingerprint
  // must see the bits, not the compare.
  auto plus_zero = SparseHistogram::Create(1000, {{1, 0.0}});
  auto minus_zero = SparseHistogram::Create(1000, {{1, -0.0}});
  ASSERT_TRUE(base.ok() && other_domain.ok() && other_key.ok() &&
              plus_zero.ok() && minus_zero.ok());
  const std::uint64_t fp = FingerprintSparseHistogram(base.value());
  EXPECT_EQ(fp, FingerprintSparseHistogram(base.value()));
  EXPECT_NE(fp, FingerprintSparseHistogram(other_domain.value()));
  EXPECT_NE(fp, FingerprintSparseHistogram(other_key.value()));
  EXPECT_NE(FingerprintSparseHistogram(plus_zero.value()),
            FingerprintSparseHistogram(minus_zero.value()));
}

class SparseCsvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) {
      std::remove(path_.c_str());
    }
  }

  const std::string& WriteFile(const std::string& contents) {
    path_ = ::testing::TempDir() + "/sparse_csv_test.csv";
    std::ofstream out(path_);
    out << contents;
    return path_;
  }

  std::string path_;
};

TEST_F(SparseCsvTest, SaveLoadRoundTripsExactly) {
  auto histogram = SparseHistogram::Create(
      kMaxSparseDomain,
      {{0, 1.5}, {42, -2.25}, {kMaxSparseDomain - 1, 0.125}});
  ASSERT_TRUE(histogram.ok());
  const std::string path = ::testing::TempDir() + "/sparse_roundtrip.csv";
  ASSERT_TRUE(SaveSparseHistogramCsv(histogram.value(), path).ok());
  auto loaded = LoadSparseHistogramCsv(path, kMaxSparseDomain);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value() == histogram.value());
}

TEST_F(SparseCsvTest, ParsesCommentsAndBlankLines) {
  const std::string& path = WriteFile(
      "# sparse histogram\n"
      "\n"
      "3,2.5\n"
      "  # indented comment\n"
      "17,4\n");
  auto loaded = LoadSparseHistogramCsv(path, 100);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<SparseEntry> expected = {{3, 2.5}, {17, 4.0}};
  EXPECT_EQ(loaded.value().entries(), expected);
}

TEST_F(SparseCsvTest, KeyOverflowingU64IsInvalidArgument) {
  // 2^64 = 18446744073709551616 does not fit a uint64; parsing through a
  // double would silently round instead of failing.
  const std::string& path = WriteFile("18446744073709551616,1\n");
  auto loaded = LoadSparseHistogramCsv(path, 100);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SparseCsvTest, MalformedLinesAreParseErrors) {
  for (const char* bad : {"nokey\n", "1;2\n", "1,\n", "1,notanumber\n",
                          "1,2,3trailing\n", "-1,2\n"}) {
    const std::string& path = WriteFile(bad);
    auto loaded = LoadSparseHistogramCsv(path, 100);
    ASSERT_FALSE(loaded.ok()) << "accepted: " << bad;
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError)
        << "line: " << bad << " -> " << loaded.status().ToString();
  }
}

TEST_F(SparseCsvTest, KeyPastDomainIsInvalidArgument) {
  const std::string& path = WriteFile("100,1\n");
  auto loaded = LoadSparseHistogramCsv(path, 100);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SparseCsvTest, MissingFileIsNotFound) {
  auto loaded =
      LoadSparseHistogramCsv(::testing::TempDir() + "/does_not_exist.csv", 10);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace sparse
}  // namespace dphist
