// The parallel execution engine's determinism contract, enforced per
// publisher: RunCell fans repetitions across a thread pool, but every
// error statistic it publishes must be bit-identical to the sequential
// run — parallelism may only change the wall clock. A two-sample
// Kolmogorov–Smirnov check on the raw per-repetition samples additionally
// guards against the failure mode bitwise equality cannot see from a
// *different* seed: accidental reuse of one Rng stream across threads
// would warp the sample distribution itself.

#include "dphist/bench_util/experiment.h"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/algorithms/identity_laplace.h"
#include "dphist/algorithms/registry.h"
#include "dphist/common/thread_pool.h"
#include "dphist/data/generators.h"
#include "dphist/obs/obs.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"
#include "testing/statistical.h"

namespace dphist {
namespace {

void ExpectBitIdentical(const CellResult& sequential,
                        const CellResult& parallel,
                        const std::string& label) {
  // EXPECT_EQ on doubles is exact equality — the contract is bitwise, not
  // within-epsilon. publish_ms is excluded: wall time is the one field
  // parallelism is allowed to change.
  EXPECT_EQ(sequential.workload_mae.mean, parallel.workload_mae.mean)
      << label;
  EXPECT_EQ(sequential.workload_mae.std_error, parallel.workload_mae.std_error)
      << label;
  EXPECT_EQ(sequential.workload_mse.mean, parallel.workload_mse.mean)
      << label;
  EXPECT_EQ(sequential.workload_mse.std_error, parallel.workload_mse.std_error)
      << label;
  EXPECT_EQ(sequential.kl_divergence.mean, parallel.kl_divergence.mean)
      << label;
  EXPECT_EQ(sequential.kl_divergence.std_error,
            parallel.kl_divergence.std_error)
      << label;
  EXPECT_EQ(sequential.workload_mae.repetitions,
            parallel.workload_mae.repetitions)
      << label;
}

TEST(ParallelExperimentTest, EveryPublisherBitIdenticalAcrossThreadCounts) {
  const Dataset dataset = MakeSearchLogs(64, 5);
  Rng workload_rng(17);
  auto queries = RandomRangeWorkload(dataset.histogram.size(), 30,
                                     workload_rng);
  ASSERT_TRUE(queries.ok());

  ThreadPool sequential_pool(1);
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  for (const auto& publisher : PublisherRegistry::MakeAll()) {
    RunCellOptions sequential;
    sequential.pool = &sequential_pool;
    auto reference = RunCell(*publisher, dataset.histogram, queries.value(),
                             0.5, /*repetitions=*/6, /*seed=*/321,
                             sequential);
    ASSERT_TRUE(reference.ok()) << publisher->name();
    for (ThreadPool* pool : {&pool2, &pool8}) {
      RunCellOptions options;
      options.pool = pool;
      auto cell = RunCell(*publisher, dataset.histogram, queries.value(),
                          0.5, /*repetitions=*/6, /*seed=*/321, options);
      ASSERT_TRUE(cell.ok()) << publisher->name();
      ExpectBitIdentical(reference.value(), cell.value(),
                         publisher->name() + " threads=" +
                             std::to_string(pool->thread_count()));
    }
  }
}

TEST(ParallelExperimentTest, RepetitionCountSweepIncludingDegenerate) {
  const Dataset dataset = MakeAge(3);
  Rng workload_rng(23);
  auto queries = RandomRangeWorkload(dataset.histogram.size(), 20,
                                     workload_rng);
  ASSERT_TRUE(queries.ok());
  IdentityLaplace publisher;

  ThreadPool sequential_pool(1);
  ThreadPool parallel_pool(4);
  for (std::size_t repetitions : {std::size_t{0}, std::size_t{1},
                                  std::size_t{2}, std::size_t{5},
                                  std::size_t{17}}) {
    RunCellOptions sequential;
    sequential.pool = &sequential_pool;
    RunCellOptions parallel;
    parallel.pool = &parallel_pool;
    auto a = RunCell(publisher, dataset.histogram, queries.value(), 0.1,
                     repetitions, /*seed=*/repetitions + 11, sequential);
    auto b = RunCell(publisher, dataset.histogram, queries.value(), 0.1,
                     repetitions, /*seed=*/repetitions + 11, parallel);
    if (repetitions == 0) {
      // Both paths must reject zero repetitions identically.
      EXPECT_FALSE(a.ok());
      EXPECT_FALSE(b.ok());
      EXPECT_EQ(a.status().code(), b.status().code());
      continue;
    }
    ASSERT_TRUE(a.ok()) << "reps=" << repetitions;
    ASSERT_TRUE(b.ok()) << "reps=" << repetitions;
    ExpectBitIdentical(a.value(), b.value(),
                       "reps=" + std::to_string(repetitions));
  }
}

TEST(ParallelExperimentTest, DefaultOverloadMatchesExplicitGlobalPool) {
  const Dataset dataset = MakeAge(4);
  Rng workload_rng(29);
  auto queries = RandomRangeWorkload(dataset.histogram.size(), 10,
                                     workload_rng);
  ASSERT_TRUE(queries.ok());
  IdentityLaplace publisher;
  auto implicit = RunCell(publisher, dataset.histogram, queries.value(), 0.5,
                          4, 99);
  RunCellOptions options;  // pool=nullptr → global
  auto explicit_global = RunCell(publisher, dataset.histogram,
                                 queries.value(), 0.5, 4, 99, options);
  ASSERT_TRUE(implicit.ok());
  ASSERT_TRUE(explicit_global.ok());
  ExpectBitIdentical(implicit.value(), explicit_global.value(), "global");
}

TEST(ParallelExperimentTest, ErrorStatusIsDeterministicAcrossThreadCounts) {
  // A negative epsilon makes every repetition fail; both paths must report
  // the same (lowest-repetition) failure.
  const Dataset dataset = MakeAge(6);
  IdentityLaplace publisher;
  const std::vector<RangeQuery> unit = {{0, 1}};
  ThreadPool sequential_pool(1);
  ThreadPool parallel_pool(4);
  RunCellOptions sequential;
  sequential.pool = &sequential_pool;
  RunCellOptions parallel;
  parallel.pool = &parallel_pool;
  auto a = RunCell(publisher, dataset.histogram, unit, -1.0, 8, 5,
                   sequential);
  auto b = RunCell(publisher, dataset.histogram, unit, -1.0, 8, 5, parallel);
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(a.status().code(), b.status().code());
  EXPECT_EQ(a.status().message(), b.status().message());
}

TEST(ParallelExperimentTest, ParallelSamplesMatchSequentialDistribution) {
  // Distribution-level guard: a parallel run and a sequential run with
  // *different* seeds are independent draws from the same per-repetition
  // MAE distribution. If forked streams were reused or correlated across
  // threads, the parallel sample would contain duplicated/degenerate
  // values and the KS test would reject. Seeds are fixed, so this test is
  // deterministic.
  const Dataset dataset = MakeAge(7);
  Rng workload_rng(41);
  auto queries = RandomRangeWorkload(dataset.histogram.size(), 25,
                                     workload_rng);
  ASSERT_TRUE(queries.ok());
  IdentityLaplace publisher;
  constexpr std::size_t kReps = 150;

  ThreadPool sequential_pool(1);
  ThreadPool parallel_pool(8);
  RunCellOptions sequential;
  sequential.pool = &sequential_pool;
  sequential.collect_samples = true;
  RunCellOptions parallel;
  parallel.pool = &parallel_pool;
  parallel.collect_samples = true;

  auto a = RunCell(publisher, dataset.histogram, queries.value(), 0.2, kReps,
                   /*seed=*/1001, sequential);
  auto b = RunCell(publisher, dataset.histogram, queries.value(), 0.2, kReps,
                   /*seed=*/2002, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().mae_samples.size(), kReps);
  ASSERT_EQ(b.value().mae_samples.size(), kReps);
  EXPECT_TRUE(testing::KsSameDistribution(a.value().mae_samples,
                                          b.value().mae_samples))
      << "KS distance "
      << testing::KsStatistic(a.value().mae_samples, b.value().mae_samples);

  // Power check: the same test must reject when the distributions truly
  // differ (quadrupling epsilon quarters the error scale).
  auto c = RunCell(publisher, dataset.histogram, queries.value(), 0.8, kReps,
                   /*seed=*/3003, parallel);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(testing::KsSameDistribution(a.value().mae_samples,
                                           c.value().mae_samples));

  // And the identical-seed parallel run reproduces the sequential samples
  // exactly, repetition by repetition.
  auto d = RunCell(publisher, dataset.histogram, queries.value(), 0.2, kReps,
                   /*seed=*/1001, parallel);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(a.value().mae_samples, d.value().mae_samples);
}

TEST(ParallelExperimentTest, ObsCountersIdenticalAcrossThreadCounts) {
  // The obs determinism split: work counters (draws consumed, DP cells
  // filled, publications run) are a pure function of the workload, so the
  // same RunCell at 1 and 4 threads must leave them bit-identical. Only
  // threadpool/* counters and wall-time distributions may differ — they
  // measure scheduling, not work.
  const Dataset dataset = MakeSearchLogs(64, 9);
  Rng workload_rng(53);
  auto queries = RandomRangeWorkload(dataset.histogram.size(), 20,
                                     workload_rng);
  ASSERT_TRUE(queries.ok());
  auto publisher = PublisherRegistry::Make("structure_first");
  ASSERT_TRUE(publisher.ok());

  const bool was_enabled = obs::Enabled();
  obs::Registry::Global().set_enabled(true);

  auto run_and_snapshot = [&](std::size_t threads) {
    obs::Registry::Global().Reset();
    ThreadPool pool(threads);
    RunCellOptions options;
    options.pool = &pool;
    auto cell = RunCell(*publisher.value(), dataset.histogram,
                        queries.value(), 0.5, /*repetitions=*/6,
                        /*seed=*/77, options);
    EXPECT_TRUE(cell.ok());
    // Scheduling-dependent metrics are excluded by name prefix; the rest
    // must match exactly.
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    for (const auto& [name, value] :
         obs::Registry::Global().Snapshot().counters) {
      if (name.rfind("threadpool/", 0) != 0) {
        counters.emplace_back(name, value);
      }
    }
    return counters;
  };

  const auto sequential = run_and_snapshot(1);
  const auto parallel = run_and_snapshot(4);
  obs::Registry::Global().Reset();
  obs::Registry::Global().set_enabled(was_enabled);

  EXPECT_EQ(sequential, parallel);
  // Sanity: the run actually recorded work (draws, solves, runcell).
  bool saw_nonzero = false;
  for (const auto& [name, value] : sequential) {
    saw_nonzero |= value > 0;
  }
  EXPECT_TRUE(saw_nonzero);
}

TEST(ParallelExperimentTest, SamplesOnlyCollectedWhenRequested) {
  const Dataset dataset = MakeAge(8);
  const std::vector<RangeQuery> unit = {{0, 1}};
  IdentityLaplace publisher;
  auto cell = RunCell(publisher, dataset.histogram, unit, 1.0, 3, 1);
  ASSERT_TRUE(cell.ok());
  EXPECT_TRUE(cell.value().mae_samples.empty());
}

}  // namespace
}  // namespace dphist
