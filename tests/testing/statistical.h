#ifndef DPHIST_TESTS_TESTING_STATISTICAL_H_
#define DPHIST_TESTS_TESTING_STATISTICAL_H_

// Statistical test helpers for dphist's own test suite (not part of the
// library API). The two-sample Kolmogorov–Smirnov test compares empirical
// distributions without assuming a parametric family, which is exactly what
// the parallel-execution tests need: if the engine ever reused one Rng
// stream across threads (or correlated streams), the per-repetition error
// samples would stop looking like independent draws from the sequential
// distribution, and the KS distance between a parallel run and a
// sequential run with a different seed would blow up.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace dphist {
namespace testing {

/// Two-sample Kolmogorov–Smirnov statistic sup_x |F_a(x) - F_b(x)| of the
/// empirical CDFs of `a` and `b`. Both samples must be non-empty. Takes
/// copies because it sorts.
inline double KsStatistic(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) {
      ++i;
    }
    while (j < b.size() && b[j] <= x) {
      ++j;
    }
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  return d;
}

/// Asymptotic two-sided p-value of the two-sample KS statistic `d` for
/// sample sizes `n1`, `n2`: the Kolmogorov Q function
///   Q(t) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 t^2)
/// with the Stephens small-sample correction
///   t = (sqrt(ne) + 0.12 + 0.11/sqrt(ne)) * d,  ne = n1*n2/(n1+n2).
inline double KsPValue(double d, std::size_t n1, std::size_t n2) {
  const double ne = static_cast<double>(n1) * static_cast<double>(n2) /
                    static_cast<double>(n1 + n2);
  const double sqrt_ne = std::sqrt(ne);
  const double t = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  if (t < 0.05) {
    // The alternating theta series converges too slowly below ~0.05, and
    // Q(t) is 1 to far more digits than any test cares about there.
    return 1.0;
  }
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * t * t * static_cast<double>(j) *
                                 static_cast<double>(j));
    sum += sign * term;
    if (term < 1e-12) {
      break;
    }
    sign = -sign;
  }
  const double p = 2.0 * sum;
  return std::min(1.0, std::max(0.0, p));
}

/// True when the KS test does NOT reject "same distribution" at level
/// `alpha`. Tests that use this with fixed seeds are deterministic; pick
/// seeds for which the (correct) implementation passes comfortably.
inline bool KsSameDistribution(const std::vector<double>& a,
                               const std::vector<double>& b,
                               double alpha = 1e-3) {
  return KsPValue(KsStatistic(a, b), a.size(), b.size()) > alpha;
}

}  // namespace testing
}  // namespace dphist

#endif  // DPHIST_TESTS_TESTING_STATISTICAL_H_
