#ifndef DPHIST_TESTS_TESTING_STATISTICAL_H_
#define DPHIST_TESTS_TESTING_STATISTICAL_H_

// Statistical test helpers for dphist's own test suite (not part of the
// library API). The two-sample Kolmogorov–Smirnov test compares empirical
// distributions without assuming a parametric family, which is exactly what
// the parallel-execution tests need: if the engine ever reused one Rng
// stream across threads (or correlated streams), the per-repetition error
// samples would stop looking like independent draws from the sequential
// distribution, and the KS distance between a parallel run and a
// sequential run with a different seed would blow up.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace dphist {
namespace testing {

/// Two-sample Kolmogorov–Smirnov statistic sup_x |F_a(x) - F_b(x)| of the
/// empirical CDFs of `a` and `b`. Both samples must be non-empty. Takes
/// copies because it sorts.
inline double KsStatistic(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) {
      ++i;
    }
    while (j < b.size() && b[j] <= x) {
      ++j;
    }
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  return d;
}

/// Asymptotic two-sided p-value of the two-sample KS statistic `d` for
/// sample sizes `n1`, `n2`: the Kolmogorov Q function
///   Q(t) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 t^2)
/// with the Stephens small-sample correction
///   t = (sqrt(ne) + 0.12 + 0.11/sqrt(ne)) * d,  ne = n1*n2/(n1+n2).
inline double KsPValue(double d, std::size_t n1, std::size_t n2) {
  const double ne = static_cast<double>(n1) * static_cast<double>(n2) /
                    static_cast<double>(n1 + n2);
  const double sqrt_ne = std::sqrt(ne);
  const double t = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  if (t < 0.05) {
    // The alternating theta series converges too slowly below ~0.05, and
    // Q(t) is 1 to far more digits than any test cares about there.
    return 1.0;
  }
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * t * t * static_cast<double>(j) *
                                 static_cast<double>(j));
    sum += sign * term;
    if (term < 1e-12) {
      break;
    }
    sign = -sign;
  }
  const double p = 2.0 * sum;
  return std::min(1.0, std::max(0.0, p));
}

/// Exact two-sided p-value P(D >= d) of the two-sample KS statistic for
/// sample sizes `n1`, `n2`, assuming no ties (continuous distributions).
///
/// Counts lattice paths: a random interleaving of the two sorted samples
/// is a monotone path from (0,0) to (n1,n2), and the KS distance is
/// max |i/n1 - j/n2| over the visited cells. The DP propagates the
/// probability of reaching (i,j) while staying strictly below d, with the
/// hypergeometric step weights (n1-i)/(n1+n2-i-j) for an a-step — never
/// forming the astronomically large path counts, only their normalized
/// probabilities. p = 1 - P(every cell stayed below d). O(n1*n2) time.
///
/// i*n2 - j*n1 is integral, and d from KsStatistic of the same samples
/// makes d*n1*n2 integral too, so the boundary test uses a half-unit
/// tolerance: float error in d can never shift which cells are excluded.
inline double KsExactPValue(double d, std::size_t n1, std::size_t n2) {
  const double c =
      std::round(d * static_cast<double>(n1) * static_cast<double>(n2));
  if (c <= 0.5) {
    return 1.0;  // D >= 0 always holds
  }
  const double total = static_cast<double>(n1 + n2);
  std::vector<double> prev(n2 + 1, 0.0);
  std::vector<double> cur(n2 + 1, 0.0);
  auto inside = [&](std::size_t i, std::size_t j) {
    const double deviation =
        std::fabs(static_cast<double>(i) * static_cast<double>(n2) -
                  static_cast<double>(j) * static_cast<double>(n1));
    return deviation < c - 0.5;
  };
  prev[0] = 1.0;
  for (std::size_t j = 1; j <= n2; ++j) {
    // First column: every step takes from sample b, with probability
    // (n2-(j-1)) / (n1+n2-(j-1)).
    prev[j] = inside(0, j)
                  ? prev[j - 1] * (static_cast<double>(n2 - (j - 1)) /
                                   (total - static_cast<double>(j - 1)))
                  : 0.0;
  }
  for (std::size_t i = 1; i <= n1; ++i) {
    for (std::size_t j = 0; j <= n2; ++j) {
      if (!inside(i, j)) {
        cur[j] = 0.0;
        continue;
      }
      const double remaining_before_a =
          total - static_cast<double>(i - 1) - static_cast<double>(j);
      double reach = prev[j] * (static_cast<double>(n1 - (i - 1)) /
                                remaining_before_a);
      if (j > 0) {
        const double remaining_before_b =
            total - static_cast<double>(i) - static_cast<double>(j - 1);
        reach += cur[j - 1] * (static_cast<double>(n2 - (j - 1)) /
                               remaining_before_b);
      }
      cur[j] = reach;
    }
    std::swap(prev, cur);
  }
  const double p = 1.0 - prev[n2];
  return std::min(1.0, std::max(0.0, p));
}

/// Product size below which KsSameDistribution prefers the exact p-value;
/// at 200x200 the O(n1*n2) DP is still microseconds, and the asymptotic
/// approximation is at its least trustworthy exactly there.
inline constexpr std::size_t kKsExactMaxProduct = 40000;

/// True when the KS test does NOT reject "same distribution" at level
/// `alpha`. Small samples (n1*n2 <= kKsExactMaxProduct) use the exact
/// lattice-path p-value; larger ones the asymptotic Kolmogorov Q. Tests
/// that use this with fixed seeds are deterministic; pick seeds for which
/// the (correct) implementation passes comfortably.
inline bool KsSameDistribution(const std::vector<double>& a,
                               const std::vector<double>& b,
                               double alpha = 1e-3) {
  const double d = KsStatistic(a, b);
  if (!a.empty() && !b.empty() && a.size() * b.size() <= kKsExactMaxProduct) {
    return KsExactPValue(d, a.size(), b.size()) > alpha;
  }
  return KsPValue(d, a.size(), b.size()) > alpha;
}

}  // namespace testing
}  // namespace dphist

#endif  // DPHIST_TESTS_TESTING_STATISTICAL_H_
