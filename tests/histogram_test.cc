#include "dphist/hist/histogram.h"

#include <vector>

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(HistogramTest, EmptyByDefault) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
}

TEST(HistogramTest, ZerosFactory) {
  Histogram h = Histogram::Zeros(5);
  EXPECT_EQ(h.size(), 5u);
  EXPECT_DOUBLE_EQ(h.Total(), 0.0);
}

TEST(HistogramTest, TotalAndAccess) {
  Histogram h({1.0, 2.0, 3.5});
  EXPECT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.Total(), 6.5);
}

TEST(HistogramTest, RangeSumMatchesNaive) {
  const std::vector<double> counts = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  Histogram h(counts);
  for (std::size_t b = 0; b <= counts.size(); ++b) {
    for (std::size_t e = b; e <= counts.size(); ++e) {
      double naive = 0.0;
      for (std::size_t i = b; i < e; ++i) {
        naive += counts[i];
      }
      auto sum = h.RangeSum(b, e);
      ASSERT_TRUE(sum.ok());
      EXPECT_DOUBLE_EQ(sum.value(), naive) << "[" << b << "," << e << ")";
    }
  }
}

TEST(HistogramTest, RangeSumRejectsBadBounds) {
  Histogram h({1.0, 2.0});
  EXPECT_FALSE(h.RangeSum(1, 3).ok());
  EXPECT_FALSE(h.RangeSum(2, 1).ok());
  EXPECT_TRUE(h.RangeSum(2, 2).ok());  // empty range at the end is fine
}

TEST(HistogramTest, MutationInvalidatesPrefix) {
  Histogram h({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(h.RangeSum(0, 3).value(), 6.0);
  h.set_count(0, 10.0);
  EXPECT_DOUBLE_EQ(h.RangeSum(0, 3).value(), 15.0);
  h.Add(2, -3.0);
  EXPECT_DOUBLE_EQ(h.RangeSum(0, 3).value(), 12.0);
  EXPECT_DOUBLE_EQ(h.count(2), 0.0);
}

TEST(HistogramTest, ToDistributionNormalizes) {
  Histogram h({1.0, 3.0, 0.0});
  const std::vector<double> d = h.ToDistribution();
  EXPECT_DOUBLE_EQ(d[0], 0.25);
  EXPECT_DOUBLE_EQ(d[1], 0.75);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(HistogramTest, ToDistributionClampsNegatives) {
  Histogram h({-5.0, 2.0, 2.0});
  const std::vector<double> d = h.ToDistribution();
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 0.5);
  EXPECT_DOUBLE_EQ(d[2], 0.5);
}

TEST(HistogramTest, ToDistributionAllZeroGivesUniform) {
  Histogram h({-1.0, 0.0, -2.0, 0.0});
  const std::vector<double> d = h.ToDistribution();
  for (double p : d) {
    EXPECT_DOUBLE_EQ(p, 0.25);
  }
}

}  // namespace
}  // namespace dphist
