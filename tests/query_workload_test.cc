#include "dphist/query/range_query.h"
#include "dphist/query/workload.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(RangeQueryTest, ValidateCatchesBadQueries) {
  EXPECT_TRUE(ValidateQueries({{0, 5}, {4, 10}}, 10).ok());
  EXPECT_FALSE(ValidateQueries({{0, 11}}, 10).ok());   // beyond end
  EXPECT_FALSE(ValidateQueries({{5, 5}}, 10).ok());    // empty
  EXPECT_FALSE(ValidateQueries({{6, 5}}, 10).ok());    // inverted
}

TEST(RangeQueryTest, AnswerMatchesNaive) {
  const std::vector<double> counts = {1.0, 2.0, 3.0, 4.0, 5.0};
  Histogram h(counts);
  const std::vector<RangeQuery> queries = {{0, 5}, {1, 3}, {4, 5}};
  auto answers = AnswerQueries(h, queries);
  ASSERT_TRUE(answers.ok());
  EXPECT_DOUBLE_EQ(answers.value()[0], 15.0);
  EXPECT_DOUBLE_EQ(answers.value()[1], 5.0);
  EXPECT_DOUBLE_EQ(answers.value()[2], 5.0);
}

TEST(RangeQueryTest, AnswerRejectsOutOfBounds) {
  Histogram h({1.0, 2.0});
  EXPECT_FALSE(AnswerQueries(h, {{0, 3}}).ok());
}

TEST(RandomRangeWorkloadTest, BoundsAndDeterminism) {
  Rng a(1);
  Rng b(1);
  auto qa = RandomRangeWorkload(100, 500, a);
  auto qb = RandomRangeWorkload(100, 500, b);
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  EXPECT_EQ(qa.value().size(), 500u);
  EXPECT_TRUE(ValidateQueries(qa.value(), 100).ok());
  EXPECT_EQ(qa.value(), qb.value());
}

TEST(RandomRangeWorkloadTest, RejectsDegenerateArguments) {
  Rng rng(2);
  EXPECT_FALSE(RandomRangeWorkload(0, 10, rng).ok());
  EXPECT_FALSE(RandomRangeWorkload(10, 0, rng).ok());
}

TEST(RandomRangeWorkloadTest, ProducesVariedLengths) {
  Rng rng(3);
  auto queries = RandomRangeWorkload(64, 1000, rng);
  ASSERT_TRUE(queries.ok());
  std::size_t min_len = 64;
  std::size_t max_len = 0;
  for (const RangeQuery& q : queries.value()) {
    min_len = std::min(min_len, q.length());
    max_len = std::max(max_len, q.length());
  }
  EXPECT_EQ(min_len, 1u);
  EXPECT_GT(max_len, 32u);
}

TEST(FixedLengthWorkloadTest, AllQueriesHaveRequestedLength) {
  Rng rng(4);
  auto queries = FixedLengthWorkload(50, 7, 200, rng);
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries.value().size(), 200u);
  for (const RangeQuery& q : queries.value()) {
    EXPECT_EQ(q.length(), 7u);
    EXPECT_LE(q.end, 50u);
  }
}

TEST(FixedLengthWorkloadTest, FullDomainLength) {
  Rng rng(5);
  auto queries = FixedLengthWorkload(50, 50, 10, rng);
  ASSERT_TRUE(queries.ok());
  for (const RangeQuery& q : queries.value()) {
    EXPECT_EQ(q.begin, 0u);
    EXPECT_EQ(q.end, 50u);
  }
}

TEST(FixedLengthWorkloadTest, RejectsBadLengths) {
  Rng rng(6);
  EXPECT_FALSE(FixedLengthWorkload(50, 0, 10, rng).ok());
  EXPECT_FALSE(FixedLengthWorkload(50, 51, 10, rng).ok());
}

TEST(AllUnitWorkloadTest, OneQueryPerBin) {
  const std::vector<RangeQuery> queries = AllUnitWorkload(4);
  ASSERT_EQ(queries.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(queries[i].begin, i);
    EXPECT_EQ(queries[i].end, i + 1);
  }
}

TEST(AllPrefixWorkloadTest, PrefixesGrow) {
  const std::vector<RangeQuery> queries = AllPrefixWorkload(4);
  ASSERT_EQ(queries.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(queries[i].begin, 0u);
    EXPECT_EQ(queries[i].end, i + 1);
  }
}

}  // namespace
}  // namespace dphist
