#include "dphist/query/range_query.h"
#include "dphist/query/workload.h"

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(RangeQueryTest, ValidateCatchesBadQueries) {
  EXPECT_TRUE(ValidateQueries({{0, 5}, {4, 10}}, 10).ok());
  EXPECT_FALSE(ValidateQueries({{0, 11}}, 10).ok());   // beyond end
  EXPECT_FALSE(ValidateQueries({{5, 5}}, 10).ok());    // empty
  EXPECT_FALSE(ValidateQueries({{6, 5}}, 10).ok());    // inverted
}

TEST(RangeQueryTest, ValidationErrorNamesTheOffendingQuery) {
  // The fail-loudly contract: the status pinpoints which query is bad and
  // why, so a 10k-query batch failure is debuggable from the message alone.
  const Status inverted = ValidateQueries({{0, 5}, {6, 5}}, 10);
  ASSERT_FALSE(inverted.ok());
  EXPECT_NE(inverted.message().find("query 1"), std::string::npos);
  EXPECT_NE(inverted.message().find("[6, 5)"), std::string::npos);
  EXPECT_NE(inverted.message().find("empty or inverted"), std::string::npos);

  const Status beyond = ValidateQueries({{2, 11}}, 10);
  ASSERT_FALSE(beyond.ok());
  EXPECT_NE(beyond.message().find("query 0"), std::string::npos);
  EXPECT_NE(beyond.message().find("out of domain"), std::string::npos);
  EXPECT_NE(beyond.message().find("domain size 10"), std::string::npos);
}

TEST(RangeQueryTest, BoundsPolicyNeverClampsOrSwaps) {
  // No silent repair anywhere on the spectrum of bad inputs: off-by-one
  // past the end, SIZE_MAX-adjacent extremes, inverted endpoints, and a
  // zero-size domain all fail typed instead of being clamped into range.
  constexpr std::size_t kMax = static_cast<std::size_t>(-1);
  EXPECT_TRUE(ValidateQueries({{9, 10}}, 10).ok());
  EXPECT_FALSE(ValidateQueries({{10, 11}}, 10).ok());
  EXPECT_FALSE(ValidateQueries({{0, kMax}}, 10).ok());
  EXPECT_FALSE(ValidateQueries({{kMax - 1, kMax}}, 10).ok());
  EXPECT_FALSE(ValidateQueries({{kMax, kMax}}, 10).ok());
  EXPECT_FALSE(ValidateQueries({{kMax, 0}}, 10).ok());
  EXPECT_FALSE(ValidateQueries({{0, 1}}, 0).ok());
  // An empty batch is vacuously valid, even over an empty domain.
  EXPECT_TRUE(ValidateQueries({}, 0).ok());

  for (const Status& s :
       {ValidateQueries({{10, 11}}, 10), ValidateQueries({{kMax, 0}}, 10)}) {
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
}

TEST(RangeQueryTest, AnswerNeverSilentlyRepairsBadQueries) {
  // AnswerQueries must reject the whole batch — a swapped or clamped
  // answer would be a silently wrong statistic, the worst failure mode for
  // a privacy tool.
  Histogram h({1.0, 2.0, 3.0});
  EXPECT_EQ(AnswerQueries(h, {{2, 1}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AnswerQueries(h, {{1, 1}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AnswerQueries(h, {{0, static_cast<std::size_t>(-1)}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // One bad query poisons the batch even when every other query is fine.
  auto mixed = AnswerQueries(h, {{0, 3}, {0, 4}, {1, 2}});
  EXPECT_FALSE(mixed.ok());
}

TEST(RangeQueryTest, AnswerMatchesNaive) {
  const std::vector<double> counts = {1.0, 2.0, 3.0, 4.0, 5.0};
  Histogram h(counts);
  const std::vector<RangeQuery> queries = {{0, 5}, {1, 3}, {4, 5}};
  auto answers = AnswerQueries(h, queries);
  ASSERT_TRUE(answers.ok());
  EXPECT_DOUBLE_EQ(answers.value()[0], 15.0);
  EXPECT_DOUBLE_EQ(answers.value()[1], 5.0);
  EXPECT_DOUBLE_EQ(answers.value()[2], 5.0);
}

TEST(RangeQueryTest, AnswerRejectsOutOfBounds) {
  Histogram h({1.0, 2.0});
  EXPECT_FALSE(AnswerQueries(h, {{0, 3}}).ok());
}

TEST(RandomRangeWorkloadTest, BoundsAndDeterminism) {
  Rng a(1);
  Rng b(1);
  auto qa = RandomRangeWorkload(100, 500, a);
  auto qb = RandomRangeWorkload(100, 500, b);
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  EXPECT_EQ(qa.value().size(), 500u);
  EXPECT_TRUE(ValidateQueries(qa.value(), 100).ok());
  EXPECT_EQ(qa.value(), qb.value());
}

TEST(RandomRangeWorkloadTest, RejectsDegenerateArguments) {
  Rng rng(2);
  EXPECT_FALSE(RandomRangeWorkload(0, 10, rng).ok());
  EXPECT_FALSE(RandomRangeWorkload(10, 0, rng).ok());
}

TEST(RandomRangeWorkloadTest, RejectsDomainsBeyondTheSparseCap) {
  // Regression: generators over a domain no histogram representation can
  // hold (above the sparse 2^63 cap) used to emit unanswerable queries via
  // a narrowing index sample. Now a typed error names the bound.
  Rng rng(7);
  const std::size_t too_big = (std::size_t{1} << 63) + 1;
  auto random = RandomRangeWorkload(too_big, 4, rng);
  ASSERT_FALSE(random.ok());
  EXPECT_EQ(random.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(random.status().message().find("exceeds the 2^63 maximum"),
            std::string::npos);
  auto fixed = FixedLengthWorkload(too_big, 5, 4, rng);
  ASSERT_FALSE(fixed.ok());
  EXPECT_EQ(fixed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(fixed.status().message().find("exceeds the 2^63 maximum"),
            std::string::npos);
}

TEST(RandomRangeWorkloadTest, DomainAtTheCapGeneratesValidQueries) {
  // Exactly 2^63 is the largest legal domain; every sampled endpoint must
  // stay inside it (the old int64 round-trip went undefined right here).
  Rng rng(8);
  const std::size_t cap = std::size_t{1} << 63;
  auto queries = RandomRangeWorkload(cap, 64, rng);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  EXPECT_TRUE(ValidateQueries(queries.value(), cap).ok());
  bool saw_upper_half = false;
  for (const RangeQuery& q : queries.value()) {
    ASSERT_LT(q.begin, q.end);
    ASSERT_LE(q.end, cap);
    saw_upper_half = saw_upper_half || q.end > cap / 2;
  }
  EXPECT_TRUE(saw_upper_half);
}

TEST(RandomRangeWorkloadTest, ProducesVariedLengths) {
  Rng rng(3);
  auto queries = RandomRangeWorkload(64, 1000, rng);
  ASSERT_TRUE(queries.ok());
  std::size_t min_len = 64;
  std::size_t max_len = 0;
  for (const RangeQuery& q : queries.value()) {
    min_len = std::min(min_len, q.length());
    max_len = std::max(max_len, q.length());
  }
  EXPECT_EQ(min_len, 1u);
  EXPECT_GT(max_len, 32u);
}

TEST(FixedLengthWorkloadTest, AllQueriesHaveRequestedLength) {
  Rng rng(4);
  auto queries = FixedLengthWorkload(50, 7, 200, rng);
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries.value().size(), 200u);
  for (const RangeQuery& q : queries.value()) {
    EXPECT_EQ(q.length(), 7u);
    EXPECT_LE(q.end, 50u);
  }
}

TEST(FixedLengthWorkloadTest, FullDomainLength) {
  Rng rng(5);
  auto queries = FixedLengthWorkload(50, 50, 10, rng);
  ASSERT_TRUE(queries.ok());
  for (const RangeQuery& q : queries.value()) {
    EXPECT_EQ(q.begin, 0u);
    EXPECT_EQ(q.end, 50u);
  }
}

TEST(FixedLengthWorkloadTest, RejectsBadLengths) {
  Rng rng(6);
  EXPECT_FALSE(FixedLengthWorkload(50, 0, 10, rng).ok());
  EXPECT_FALSE(FixedLengthWorkload(50, 51, 10, rng).ok());
}

TEST(WorkloadTest, DegenerateGeneratorArgumentsFailTyped) {
  // Generators follow the same no-silent-repair policy as validation: a
  // length that cannot fit is a typed error, never a clamped workload.
  constexpr std::size_t kMax = static_cast<std::size_t>(-1);
  Rng rng(7);
  EXPECT_EQ(RandomRangeWorkload(0, 10, rng).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RandomRangeWorkload(10, 0, rng).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FixedLengthWorkload(50, kMax, 10, rng).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FixedLengthWorkload(0, 1, 10, rng).status().code(),
            StatusCode::kInvalidArgument);
  // Every query a generator *does* emit validates against its own domain.
  auto ok = RandomRangeWorkload(33, 64, rng);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ValidateQueries(ok.value(), 33).ok());
  EXPECT_FALSE(ValidateQueries(ok.value(), 0).ok());
}

TEST(AllUnitWorkloadTest, OneQueryPerBin) {
  const std::vector<RangeQuery> queries = AllUnitWorkload(4);
  ASSERT_EQ(queries.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(queries[i].begin, i);
    EXPECT_EQ(queries[i].end, i + 1);
  }
}

TEST(AllPrefixWorkloadTest, PrefixesGrow) {
  const std::vector<RangeQuery> queries = AllPrefixWorkload(4);
  ASSERT_EQ(queries.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(queries[i].begin, 0u);
    EXPECT_EQ(queries[i].end, i + 1);
  }
}

}  // namespace
}  // namespace dphist
