#include "dphist/algorithms/boost_tree.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(BoostTreeTest, Name) { EXPECT_EQ(BoostTree().name(), "boost"); }

TEST(BoostTreeTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(BoostTree().Publish(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(BoostTree().Publish(Histogram({1.0}), 0.0, rng).ok());
  BoostTree::Options options;
  options.fanout = 1;
  EXPECT_FALSE(
      BoostTree(options).Publish(Histogram({1.0, 2.0}), 1.0, rng).ok());
}

TEST(BoostTreeTest, PreservesSizeEvenWhenPadded) {
  BoostTree algo;
  // 6 bins -> padded internally to 8, but the release must be 6 bins.
  const Histogram truth({1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  Rng rng(2);
  auto out = algo.Publish(truth, 1.0, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 6u);
}

TEST(BoostTreeTest, DeterministicGivenSeed) {
  BoostTree algo;
  const Histogram truth({5.0, 10.0, 15.0, 20.0});
  Rng a(3);
  Rng b(3);
  auto out_a = algo.Publish(truth, 0.5, a);
  auto out_b = algo.Publish(truth, 0.5, b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(out_a.value().counts(), out_b.value().counts());
}

TEST(BoostTreeTest, ApproximatelyUnbiasedPerBin) {
  BoostTree algo;
  const Histogram truth(std::vector<double>(16, 40.0));
  Rng rng(4);
  std::vector<double> sums(truth.size(), 0.0);
  const int reps = 4000;
  for (int rep = 0; rep < reps; ++rep) {
    auto out = algo.Publish(truth, 1.0, rng);
    ASSERT_TRUE(out.ok());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      sums[i] += out.value().count(i);
    }
  }
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(sums[i] / reps, 40.0, 2.0);
  }
}

TEST(BoostTreeTest, LongRangeVarianceBeatsDwork) {
  // The whole point of the hierarchy: the error of the total-sum query
  // grows polylogarithmically rather than linearly in n.
  BoostTree algo;
  const std::size_t n = 256;
  const Histogram truth(std::vector<double>(n, 10.0));
  const double epsilon = 1.0;
  Rng rng(5);
  double boost_sq = 0.0;
  const int reps = 400;
  for (int rep = 0; rep < reps; ++rep) {
    auto out = algo.Publish(truth, epsilon, rng);
    ASSERT_TRUE(out.ok());
    const double err = out.value().Total() - truth.Total();
    boost_sq += err * err;
  }
  boost_sq /= reps;
  // Dwork's total-sum variance is n * 2/eps^2 = 512.
  const double dwork_variance = static_cast<double>(n) * 2.0 / (epsilon * epsilon);
  EXPECT_LT(boost_sq, dwork_variance / 2.0);
}

TEST(BoostTreeTest, FanoutSixteenAlsoWorks) {
  BoostTree::Options options;
  options.fanout = 16;
  BoostTree algo(options);
  const Histogram truth(std::vector<double>(20, 7.0));  // pads to 256
  Rng rng(6);
  auto out = algo.Publish(truth, 1.0, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 20u);
}

TEST(BoostTreeTest, ClampNonNegative) {
  BoostTree::Options options;
  options.clamp_nonnegative = true;
  BoostTree algo(options);
  const Histogram truth(std::vector<double>(32, 0.0));
  Rng rng(7);
  auto out = algo.Publish(truth, 0.1, rng);
  ASSERT_TRUE(out.ok());
  for (double v : out.value().counts()) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(BoostTreeTest, SingleBinHistogram) {
  BoostTree algo;
  const Histogram truth({33.0});
  Rng rng(8);
  auto out = algo.Publish(truth, 1.0, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 1u);
}

}  // namespace
}  // namespace dphist
