// Self-tests for the test-only two-sample Kolmogorov–Smirnov helper.

#include "testing/statistical.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(KsStatisticTest, IdenticalSamplesHaveZeroDistance) {
  const std::vector<double> samples = {1.0, 2.0, 3.5, 3.5, 7.0};
  EXPECT_DOUBLE_EQ(testing::KsStatistic(samples, samples), 0.0);
}

TEST(KsStatisticTest, DisjointSupportsHaveDistanceOne) {
  const std::vector<double> low = {0.0, 0.1, 0.2, 0.3};
  const std::vector<double> high = {10.0, 10.1, 10.2};
  EXPECT_DOUBLE_EQ(testing::KsStatistic(low, high), 1.0);
  EXPECT_DOUBLE_EQ(testing::KsStatistic(high, low), 1.0);
}

TEST(KsStatisticTest, KnownSmallExample) {
  // F_a jumps at {1,2}, F_b jumps at {1.5,2}; at x=1 the gap is
  // |1/2 - 0| = 0.5, never exceeded later.
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.5, 2.0};
  EXPECT_DOUBLE_EQ(testing::KsStatistic(a, b), 0.5);
}

TEST(KsPValueTest, ZeroDistanceIsNotRejected) {
  EXPECT_GT(testing::KsPValue(0.0, 100, 100), 0.999);
}

TEST(KsPValueTest, FullDistanceIsRejected) {
  EXPECT_LT(testing::KsPValue(1.0, 100, 100), 1e-6);
}

TEST(KsPValueTest, MonotoneInDistance) {
  double previous = 1.1;
  for (double d : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    const double p = testing::KsPValue(d, 200, 200);
    EXPECT_LT(p, previous) << "d=" << d;
    previous = p;
  }
}

TEST(KsSameDistributionTest, AcceptsTwoLaplaceSamplesSameScale) {
  Rng rng(12345);
  std::vector<double> a(400);
  std::vector<double> b(400);
  for (double& x : a) {
    x = SampleLaplace(rng, /*scale=*/2.0);
  }
  for (double& x : b) {
    x = SampleLaplace(rng, /*scale=*/2.0);
  }
  EXPECT_TRUE(testing::KsSameDistribution(a, b));
}

TEST(KsSameDistributionTest, RejectsShiftedSample) {
  Rng rng(6789);
  std::vector<double> a(400);
  std::vector<double> b(400);
  for (double& x : a) {
    x = SampleLaplace(rng, 1.0);
  }
  for (double& x : b) {
    x = SampleLaplace(rng, 1.0) + 3.0;
  }
  EXPECT_FALSE(testing::KsSameDistribution(a, b));
}

TEST(KsSameDistributionTest, RejectsReusedStream) {
  // The failure mode the parallel-engine tests guard against: repetitions
  // that copy one Rng instead of forking fresh streams all reproduce the
  // same draw, collapsing the empirical CDF to a near-step function that
  // an independent sample immediately exposes.
  Rng rng(1357);
  std::vector<double> reused(400);
  for (double& x : reused) {
    Rng copy = rng;  // the bug: copying instead of forking
    x = SampleLaplace(copy, 1.0);
  }
  std::vector<double> independent(400);
  for (double& x : independent) {
    x = SampleLaplace(rng, 1.0);
  }
  EXPECT_FALSE(testing::KsSameDistribution(reused, independent));
}

}  // namespace
}  // namespace dphist
