// Self-tests for the test-only two-sample Kolmogorov–Smirnov helper.

#include "testing/statistical.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(KsStatisticTest, IdenticalSamplesHaveZeroDistance) {
  const std::vector<double> samples = {1.0, 2.0, 3.5, 3.5, 7.0};
  EXPECT_DOUBLE_EQ(testing::KsStatistic(samples, samples), 0.0);
}

TEST(KsStatisticTest, DisjointSupportsHaveDistanceOne) {
  const std::vector<double> low = {0.0, 0.1, 0.2, 0.3};
  const std::vector<double> high = {10.0, 10.1, 10.2};
  EXPECT_DOUBLE_EQ(testing::KsStatistic(low, high), 1.0);
  EXPECT_DOUBLE_EQ(testing::KsStatistic(high, low), 1.0);
}

TEST(KsStatisticTest, KnownSmallExample) {
  // F_a jumps at {1,2}, F_b jumps at {1.5,2}; at x=1 the gap is
  // |1/2 - 0| = 0.5, never exceeded later.
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.5, 2.0};
  EXPECT_DOUBLE_EQ(testing::KsStatistic(a, b), 0.5);
}

TEST(KsPValueTest, ZeroDistanceIsNotRejected) {
  EXPECT_GT(testing::KsPValue(0.0, 100, 100), 0.999);
}

TEST(KsPValueTest, FullDistanceIsRejected) {
  EXPECT_LT(testing::KsPValue(1.0, 100, 100), 1e-6);
}

TEST(KsPValueTest, MonotoneInDistance) {
  double previous = 1.1;
  for (double d : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    const double p = testing::KsPValue(d, 200, 200);
    EXPECT_LT(p, previous) << "d=" << d;
    previous = p;
  }
}

TEST(KsExactPValueTest, SingleObservationsAlwaysReachFullDistance) {
  // With one draw per sample, D = 1 with certainty (no ties), so
  // P(D >= 1) is exactly 1.
  EXPECT_DOUBLE_EQ(testing::KsExactPValue(1.0, 1, 1), 1.0);
}

TEST(KsExactPValueTest, ZeroDistanceIsCertain) {
  EXPECT_DOUBLE_EQ(testing::KsExactPValue(0.0, 10, 10), 1.0);
}

TEST(KsExactPValueTest, HandComputedTwoByOne) {
  // Samples of sizes 2 and 1, D >= 1 iff the lone b draw falls outside
  // the two a draws: orderings baa, aab out of the 3 interleavings, so
  // P(D >= 1) = 2/3.
  EXPECT_NEAR(testing::KsExactPValue(1.0, 2, 1), 2.0 / 3.0, 1e-12);
}

TEST(KsExactPValueTest, MonotoneInDistance) {
  double previous = 1.1;
  for (double d : {0.1, 0.2, 0.4, 0.6, 0.9}) {
    const double p = testing::KsExactPValue(d, 20, 20);
    EXPECT_LE(p, previous) << "d=" << d;
    previous = p;
  }
}

TEST(KsExactPValueTest, AgreesWithAsymptoticAtModerateSize) {
  // At n1 = n2 = 150 the Stephens-corrected asymptotic Q is accurate to a
  // few percent; the exact DP must land beside it across the interesting
  // range of the statistic.
  for (double d : {0.08, 0.12, 0.16, 0.2}) {
    const double exact = testing::KsExactPValue(d, 150, 150);
    const double asymptotic = testing::KsPValue(d, 150, 150);
    EXPECT_NEAR(exact, asymptotic, 0.02) << "d=" << d;
  }
}

TEST(KsSameDistributionTest, SmallSampleExactPathAcceptsSameScale) {
  Rng rng(2468);
  std::vector<double> a(150);
  std::vector<double> b(150);
  for (double& x : a) {
    x = SampleLaplace(rng, 1.0);
  }
  for (double& x : b) {
    x = SampleLaplace(rng, 1.0);
  }
  // 150*150 <= kKsExactMaxProduct, so this exercises the exact DP.
  ASSERT_LE(a.size() * b.size(), testing::kKsExactMaxProduct);
  EXPECT_TRUE(testing::KsSameDistribution(a, b));
}

TEST(KsSameDistributionTest, SmallSampleExactPathRejectsWrongScale) {
  // The injected bug the battery must catch: Laplace noise at the wrong
  // scale (1.6 instead of 1.0 — e.g. an epsilon mis-plumbed by a factor).
  Rng rng(9753);
  std::vector<double> correct(150);
  std::vector<double> wrong(150);
  for (double& x : correct) {
    x = SampleLaplace(rng, 1.0);
  }
  for (double& x : wrong) {
    x = SampleLaplace(rng, 1.6);
  }
  ASSERT_LE(correct.size() * wrong.size(), testing::kKsExactMaxProduct);
  EXPECT_FALSE(testing::KsSameDistribution(correct, wrong));
}

TEST(KsSameDistributionTest, AcceptsTwoLaplaceSamplesSameScale) {
  Rng rng(12345);
  std::vector<double> a(400);
  std::vector<double> b(400);
  for (double& x : a) {
    x = SampleLaplace(rng, /*scale=*/2.0);
  }
  for (double& x : b) {
    x = SampleLaplace(rng, /*scale=*/2.0);
  }
  EXPECT_TRUE(testing::KsSameDistribution(a, b));
}

TEST(KsSameDistributionTest, RejectsShiftedSample) {
  Rng rng(6789);
  std::vector<double> a(400);
  std::vector<double> b(400);
  for (double& x : a) {
    x = SampleLaplace(rng, 1.0);
  }
  for (double& x : b) {
    x = SampleLaplace(rng, 1.0) + 3.0;
  }
  EXPECT_FALSE(testing::KsSameDistribution(a, b));
}

TEST(KsSameDistributionTest, RejectsReusedStream) {
  // The failure mode the parallel-engine tests guard against: repetitions
  // that copy one Rng instead of forking fresh streams all reproduce the
  // same draw, collapsing the empirical CDF to a near-step function that
  // an independent sample immediately exposes.
  Rng rng(1357);
  std::vector<double> reused(400);
  for (double& x : reused) {
    Rng copy = rng;  // the bug: copying instead of forking
    x = SampleLaplace(copy, 1.0);
  }
  std::vector<double> independent(400);
  for (double& x : independent) {
    x = SampleLaplace(rng, 1.0);
  }
  EXPECT_FALSE(testing::KsSameDistribution(reused, independent));
}

}  // namespace
}  // namespace dphist
