#include "dphist/algorithms/postprocess.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(ClampNonNegativeTest, ClampsOnlyNegatives) {
  const Histogram clamped =
      ClampNonNegative(Histogram({-2.0, 0.0, 3.5, -0.1}));
  const std::vector<double> expected = {0.0, 0.0, 3.5, 0.0};
  EXPECT_EQ(clamped.counts(), expected);
}

TEST(ClampNonNegativeTest, NeverIncreasesErrorOnNonNegativeTruth) {
  // For any true count t >= 0 and estimate e, |max(e,0) - t| <= |e - t|.
  Rng rng(1);
  for (int trial = 0; trial < 1000; ++trial) {
    const double truth =
        static_cast<double>(SampleUniformInt(rng, 0, 100));
    const double estimate = truth + SampleLaplace(rng, 10.0);
    const double clamped = estimate < 0.0 ? 0.0 : estimate;
    EXPECT_LE(std::abs(clamped - truth), std::abs(estimate - truth) + 1e-12);
  }
}

TEST(RoundToIntegersTest, Rounds) {
  const Histogram rounded =
      RoundToIntegers(Histogram({1.4, 1.6, -0.4, -0.6, 2.5}));
  EXPECT_DOUBLE_EQ(rounded.count(0), 1.0);
  EXPECT_DOUBLE_EQ(rounded.count(1), 2.0);
  EXPECT_DOUBLE_EQ(rounded.count(2), 0.0);
  EXPECT_DOUBLE_EQ(rounded.count(3), -1.0);
  // Banker's rounding for .5 (nearbyint with default mode): 2.5 -> 2.
  EXPECT_DOUBLE_EQ(rounded.count(4), 2.0);
}

TEST(NormalizeTotalTest, RescalesToKnownTotal) {
  const Histogram normalized =
      NormalizeTotal(Histogram({1.0, 3.0}), 100.0);
  EXPECT_DOUBLE_EQ(normalized.count(0), 25.0);
  EXPECT_DOUBLE_EQ(normalized.count(1), 75.0);
}

TEST(NormalizeTotalTest, ClampsNegativesBeforeScaling) {
  const Histogram normalized =
      NormalizeTotal(Histogram({-5.0, 2.0, 2.0}), 8.0);
  EXPECT_DOUBLE_EQ(normalized.count(0), 0.0);
  EXPECT_DOUBLE_EQ(normalized.count(1), 4.0);
  EXPECT_DOUBLE_EQ(normalized.count(2), 4.0);
}

TEST(NormalizeTotalTest, AllNegativeSpreadsUniformly) {
  const Histogram normalized =
      NormalizeTotal(Histogram({-1.0, -2.0, -3.0, -4.0}), 20.0);
  for (double v : normalized.counts()) {
    EXPECT_DOUBLE_EQ(v, 5.0);
  }
}

TEST(NormalizeTotalTest, EmptyHistogram) {
  const Histogram normalized = NormalizeTotal(Histogram(), 10.0);
  EXPECT_TRUE(normalized.empty());
}

TEST(IsotonicTest, AlreadyMonotoneIsUnchanged) {
  const std::vector<double> decreasing = {9.0, 7.0, 7.0, 2.0, 0.0};
  EXPECT_EQ(IsotonicNonIncreasing(Histogram(decreasing)).counts(),
            decreasing);
  const std::vector<double> increasing = {0.0, 2.0, 7.0, 7.0, 9.0};
  EXPECT_EQ(IsotonicNonDecreasing(Histogram(increasing)).counts(),
            increasing);
}

TEST(IsotonicTest, PoolsAdjacentViolators) {
  // Classic PAV example: (1, 3, 2) -> (1, 2.5, 2.5) for non-decreasing.
  const Histogram fitted = IsotonicNonDecreasing(Histogram({1.0, 3.0, 2.0}));
  EXPECT_DOUBLE_EQ(fitted.count(0), 1.0);
  EXPECT_DOUBLE_EQ(fitted.count(1), 2.5);
  EXPECT_DOUBLE_EQ(fitted.count(2), 2.5);
}

TEST(IsotonicTest, OutputIsMonotone) {
  Rng rng(2);
  std::vector<double> noisy(50);
  for (double& v : noisy) {
    v = SampleLaplace(rng, 10.0);
  }
  const Histogram fitted = IsotonicNonIncreasing(Histogram(noisy));
  for (std::size_t i = 1; i < fitted.size(); ++i) {
    EXPECT_LE(fitted.count(i), fitted.count(i - 1) + 1e-9);
  }
  const Histogram fitted_up = IsotonicNonDecreasing(Histogram(noisy));
  for (std::size_t i = 1; i < fitted_up.size(); ++i) {
    EXPECT_GE(fitted_up.count(i), fitted_up.count(i - 1) - 1e-9);
  }
}

TEST(IsotonicTest, PreservesTotalMass) {
  // The L2 projection onto a monotone cone via PAV preserves the mean.
  Rng rng(3);
  std::vector<double> noisy(40);
  for (double& v : noisy) {
    v = SampleLaplace(rng, 5.0) + 10.0;
  }
  const Histogram original(noisy);
  const Histogram fitted = IsotonicNonIncreasing(original);
  EXPECT_NEAR(fitted.Total(), original.Total(), 1e-9);
}

TEST(IsotonicTest, NeverIncreasesErrorAgainstMonotoneTruth) {
  // Projection property: for truth in the monotone cone, the projection of
  // a noisy estimate is at least as close (L2) as the estimate itself.
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> truth(20);
    double level = 100.0;
    for (double& v : truth) {
      v = level;
      level -= static_cast<double>(SampleUniformInt(rng, 0, 5));
    }
    std::vector<double> noisy = truth;
    for (double& v : noisy) {
      v += SampleLaplace(rng, 8.0);
    }
    const Histogram fitted = IsotonicNonIncreasing(Histogram(noisy));
    double err_raw = 0.0;
    double err_fit = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      err_raw += (noisy[i] - truth[i]) * (noisy[i] - truth[i]);
      err_fit +=
          (fitted.count(i) - truth[i]) * (fitted.count(i) - truth[i]);
    }
    EXPECT_LE(err_fit, err_raw + 1e-9);
  }
}

TEST(IsotonicTest, EmptyAndSingleton) {
  EXPECT_TRUE(IsotonicNonIncreasing(Histogram()).empty());
  const Histogram one = IsotonicNonIncreasing(Histogram({5.0}));
  EXPECT_DOUBLE_EQ(one.count(0), 5.0);
}

}  // namespace
}  // namespace dphist
