#include "dphist/data/csv.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace dphist {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/dphist_csv_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, RoundTrip) {
  const std::string path = TempPath("roundtrip.csv");
  const Histogram original({1.0, 2.5, 0.0, 42.0});
  ASSERT_TRUE(SaveHistogramCsv(original, path).ok());
  auto loaded = LoadHistogramCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().counts(), original.counts());
  std::remove(path.c_str());
}

TEST_F(CsvTest, BareCountsFormat) {
  const std::string path = TempPath("bare.csv");
  WriteFile(path, "1\n2\n3.5\n");
  auto loaded = LoadHistogramCsv(path);
  ASSERT_TRUE(loaded.ok());
  const std::vector<double> expected = {1.0, 2.0, 3.5};
  EXPECT_EQ(loaded.value().counts(), expected);
  std::remove(path.c_str());
}

TEST_F(CsvTest, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.csv");
  WriteFile(path, "# header\n\n0,5\n1,6\n\n# trailing\n");
  auto loaded = LoadHistogramCsv(path);
  ASSERT_TRUE(loaded.ok());
  const std::vector<double> expected = {5.0, 6.0};
  EXPECT_EQ(loaded.value().counts(), expected);
  std::remove(path.c_str());
}

TEST_F(CsvTest, HandlesWhitespace) {
  const std::string path = TempPath("ws.csv");
  WriteFile(path, "  0 , 5 \r\n 1 , 6.5 \n");
  auto loaded = LoadHistogramCsv(path);
  ASSERT_TRUE(loaded.ok());
  const std::vector<double> expected = {5.0, 6.5};
  EXPECT_EQ(loaded.value().counts(), expected);
  std::remove(path.c_str());
}

TEST_F(CsvTest, MissingFileIsNotFound) {
  auto loaded = LoadHistogramCsv("/nonexistent/path/file.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CsvTest, GarbageIsParseError) {
  const std::string path = TempPath("garbage.csv");
  WriteFile(path, "0,hello\n");
  auto loaded = LoadHistogramCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST_F(CsvTest, OutOfOrderIndicesRejected) {
  const std::string path = TempPath("order.csv");
  WriteFile(path, "0,5\n2,6\n");
  auto loaded = LoadHistogramCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST_F(CsvTest, EmptyFileRejected) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "# only a comment\n");
  auto loaded = LoadHistogramCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, NegativeAndFractionalCountsRoundTrip) {
  // Noisy releases carry negative and fractional counts; CSV I/O must not
  // mangle them.
  const std::string path = TempPath("negative.csv");
  const Histogram original({-3.25, 0.0, 1e6, -0.0625});
  ASSERT_TRUE(SaveHistogramCsv(original, path).ok());
  auto loaded = LoadHistogramCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().counts(), original.counts());
  std::remove(path.c_str());
}

TEST_F(CsvTest, IndexOverflowingUint64IsInvalidArgument) {
  // Regression: indices used to be parsed through double, which silently
  // rounds above 2^53 and wraps on overflow. A numerically valid index too
  // large for uint64 is now a typed kInvalidArgument, distinct from the
  // kParseError used for corrupt text.
  const std::string path = TempPath("overflow.csv");
  WriteFile(path, "18446744073709551616,1\n");  // 2^64: one past uint64 max
  auto loaded = LoadHistogramCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("overflows uint64"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CsvTest, MalformedIndexIsParseErrorNotOverflow) {
  const std::string path = TempPath("badindex.csv");
  for (const char* bad : {"abc,1\n", "-1,1\n", "1.5,1\n", "0x7,1\n"}) {
    WriteFile(path, bad);
    auto loaded = LoadHistogramCsv(path);
    ASSERT_FALSE(loaded.ok()) << bad;
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError) << bad;
  }
  std::remove(path.c_str());
}

TEST_F(CsvTest, IndicesAboveTheDoubleMantissaParseExactly) {
  // 2^53 + 1 is not representable as a double; an exact uint64 parse must
  // still distinguish it from its neighbors. The index is out of order for
  // a one-line file, so the loader reports the dense-order error rather
  // than an overflow or rounding artifact.
  const std::string path = TempPath("mantissa.csv");
  WriteFile(path, "9007199254740993,1\n");  // 2^53 + 1
  auto loaded = LoadHistogramCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("dense and in order"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CsvTest, TrailingCharactersRejected) {
  const std::string path = TempPath("trailing.csv");
  WriteFile(path, "12abc\n");
  auto loaded = LoadHistogramCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dphist
