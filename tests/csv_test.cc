#include "dphist/data/csv.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace dphist {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/dphist_csv_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, RoundTrip) {
  const std::string path = TempPath("roundtrip.csv");
  const Histogram original({1.0, 2.5, 0.0, 42.0});
  ASSERT_TRUE(SaveHistogramCsv(original, path).ok());
  auto loaded = LoadHistogramCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().counts(), original.counts());
  std::remove(path.c_str());
}

TEST_F(CsvTest, BareCountsFormat) {
  const std::string path = TempPath("bare.csv");
  WriteFile(path, "1\n2\n3.5\n");
  auto loaded = LoadHistogramCsv(path);
  ASSERT_TRUE(loaded.ok());
  const std::vector<double> expected = {1.0, 2.0, 3.5};
  EXPECT_EQ(loaded.value().counts(), expected);
  std::remove(path.c_str());
}

TEST_F(CsvTest, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.csv");
  WriteFile(path, "# header\n\n0,5\n1,6\n\n# trailing\n");
  auto loaded = LoadHistogramCsv(path);
  ASSERT_TRUE(loaded.ok());
  const std::vector<double> expected = {5.0, 6.0};
  EXPECT_EQ(loaded.value().counts(), expected);
  std::remove(path.c_str());
}

TEST_F(CsvTest, HandlesWhitespace) {
  const std::string path = TempPath("ws.csv");
  WriteFile(path, "  0 , 5 \r\n 1 , 6.5 \n");
  auto loaded = LoadHistogramCsv(path);
  ASSERT_TRUE(loaded.ok());
  const std::vector<double> expected = {5.0, 6.5};
  EXPECT_EQ(loaded.value().counts(), expected);
  std::remove(path.c_str());
}

TEST_F(CsvTest, MissingFileIsNotFound) {
  auto loaded = LoadHistogramCsv("/nonexistent/path/file.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CsvTest, GarbageIsParseError) {
  const std::string path = TempPath("garbage.csv");
  WriteFile(path, "0,hello\n");
  auto loaded = LoadHistogramCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST_F(CsvTest, OutOfOrderIndicesRejected) {
  const std::string path = TempPath("order.csv");
  WriteFile(path, "0,5\n2,6\n");
  auto loaded = LoadHistogramCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST_F(CsvTest, EmptyFileRejected) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "# only a comment\n");
  auto loaded = LoadHistogramCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, NegativeAndFractionalCountsRoundTrip) {
  // Noisy releases carry negative and fractional counts; CSV I/O must not
  // mangle them.
  const std::string path = TempPath("negative.csv");
  const Histogram original({-3.25, 0.0, 1e6, -0.0625});
  ASSERT_TRUE(SaveHistogramCsv(original, path).ok());
  auto loaded = LoadHistogramCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().counts(), original.counts());
  std::remove(path.c_str());
}

TEST_F(CsvTest, TrailingCharactersRejected) {
  const std::string path = TempPath("trailing.csv");
  WriteFile(path, "12abc\n");
  auto loaded = LoadHistogramCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dphist
