#include "dphist/metrics/metrics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(MaeMseTest, KnownValues) {
  const std::vector<double> truth = {1.0, 2.0, 3.0};
  const std::vector<double> estimate = {2.0, 2.0, 1.0};
  auto mae = MeanAbsoluteError(truth, estimate);
  auto mse = MeanSquaredError(truth, estimate);
  ASSERT_TRUE(mae.ok());
  ASSERT_TRUE(mse.ok());
  EXPECT_DOUBLE_EQ(mae.value(), 1.0);
  EXPECT_DOUBLE_EQ(mse.value(), 5.0 / 3.0);
}

TEST(MaeMseTest, IdenticalVectorsGiveZero) {
  const std::vector<double> v = {5.0, -2.0, 0.0};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(v, v).value(), 0.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError(v, v).value(), 0.0);
}

TEST(MaeMseTest, RejectsMismatchedOrEmpty) {
  EXPECT_FALSE(MeanAbsoluteError({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(MeanSquaredError({}, {}).ok());
}

TEST(KlDivergenceTest, ZeroForIdenticalHistograms) {
  const Histogram h({10.0, 20.0, 30.0});
  auto kl = KlDivergence(h, h);
  ASSERT_TRUE(kl.ok());
  EXPECT_NEAR(kl.value(), 0.0, 1e-12);
}

TEST(KlDivergenceTest, PositiveForDifferentHistograms) {
  const Histogram p({10.0, 0.0, 0.0});
  const Histogram q({0.0, 0.0, 10.0});
  auto kl = KlDivergence(p, q);
  ASSERT_TRUE(kl.ok());
  EXPECT_GT(kl.value(), 1.0);
}

TEST(KlDivergenceTest, KnownTwoCellValue) {
  // P = (0.75, 0.25), Q = (0.25, 0.75) with negligible smoothing.
  const Histogram p({3.0, 1.0});
  const Histogram q({1.0, 3.0});
  auto kl = KlDivergence(p, q, 1e-12);
  ASSERT_TRUE(kl.ok());
  const double expected =
      0.75 * std::log(3.0) + 0.25 * std::log(1.0 / 3.0);
  EXPECT_NEAR(kl.value(), expected, 1e-6);
}

TEST(KlDivergenceTest, HandlesNegativeEstimates) {
  const Histogram p({5.0, 5.0});
  const Histogram q({-3.0, 5.0});  // noisy release went negative
  auto kl = KlDivergence(p, q);
  ASSERT_TRUE(kl.ok());
  EXPECT_TRUE(std::isfinite(kl.value()));
  EXPECT_GT(kl.value(), 0.0);
}

TEST(KlDivergenceTest, RejectsBadInputs) {
  EXPECT_FALSE(KlDivergence(Histogram({1.0}), Histogram({1.0, 2.0})).ok());
  EXPECT_FALSE(KlDivergence(Histogram(), Histogram()).ok());
  EXPECT_FALSE(
      KlDivergence(Histogram({1.0}), Histogram({1.0}), 0.0).ok());
}

TEST(KsDistanceTest, ZeroForIdentical) {
  const Histogram h({1.0, 2.0, 3.0});
  EXPECT_NEAR(KsDistance(h, h).value(), 0.0, 1e-12);
}

TEST(KsDistanceTest, OneForDisjointMass) {
  const Histogram p({10.0, 0.0});
  const Histogram q({0.0, 10.0});
  EXPECT_NEAR(KsDistance(p, q).value(), 1.0, 1e-12);
}

TEST(KsDistanceTest, KnownIntermediateValue) {
  const Histogram p({3.0, 1.0});
  const Histogram q({1.0, 3.0});
  // CDFs after first cell: 0.75 vs 0.25.
  EXPECT_NEAR(KsDistance(p, q).value(), 0.5, 1e-12);
}

TEST(EvaluateWorkloadTest, ComputesAllThreeStatistics) {
  const Histogram truth({10.0, 10.0, 10.0, 10.0});
  const Histogram estimate({11.0, 9.0, 13.0, 10.0});
  const std::vector<RangeQuery> queries = {{0, 4}, {0, 1}, {2, 3}};
  auto error = EvaluateWorkload(truth, estimate, queries);
  ASSERT_TRUE(error.ok());
  // Errors: |40-43| = 3, |10-11| = 1, |10-13| = 3.
  EXPECT_NEAR(error.value().mean_absolute, 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(error.value().mean_squared, 19.0 / 3.0, 1e-12);
  EXPECT_NEAR(error.value().max_absolute, 3.0, 1e-12);
}

TEST(EvaluateWorkloadTest, RejectsBadInputs) {
  const Histogram truth({1.0, 2.0});
  const Histogram estimate({1.0});
  EXPECT_FALSE(EvaluateWorkload(truth, estimate, {{0, 1}}).ok());
  EXPECT_FALSE(EvaluateWorkload(truth, truth, {}).ok());
  EXPECT_FALSE(EvaluateWorkload(truth, truth, {{0, 5}}).ok());
}

}  // namespace
}  // namespace dphist
