// The wire codec's contract: binary frames round-trip bit-exactly at any
// size, the JSON fallback round-trips to the identical message, and a
// frame that was truncated or bit-flipped is a typed rejection, never a
// garbled message (mirroring journal_test's torn-tail battery). Golden
// bytes checked into tests/testdata pin the format across hosts — a
// big-endian machine must produce byte-identical frames.

#include "dphist/net/wire_codec.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/binary_io.h"

namespace dphist {
namespace net {
namespace {

WireQueryRequest SampleQueryRequest(std::size_t queries) {
  WireQueryRequest request;
  request.tenant = "acme";
  request.dataset = "visits";
  request.request.publisher = "noise_first";
  request.request.epsilon = 0.5;
  request.request.seed = 7;
  for (std::size_t i = 0; i < queries; ++i) {
    request.queries.push_back(RangeQuery{i, i + 1 + (i % 13)});
  }
  return request;
}

WireBatchAnswer SampleBatchAnswer(std::size_t answers) {
  WireBatchAnswer answer;
  answer.stale = answers % 2 == 1;
  answer.cache_hit = true;
  answer.served = serve::ReleaseKey{"acme", "visits", 0x0123456789ABCDEFull,
                                    "noise_first", 0.5, 7};
  for (std::size_t i = 0; i < answers; ++i) {
    answer.answers.push_back(static_cast<double>(i) * 1.25 - 3.0);
  }
  return answer;
}

WireHistogram SampleHistogram(std::size_t bins) {
  WireHistogram histogram;
  histogram.key = serve::ReleaseKey{"acme", "visits", 42, "privelet", 1.0, 9};
  for (std::size_t i = 0; i < bins; ++i) {
    histogram.counts.push_back(static_cast<double>(i % 97) - 11.5);
  }
  return histogram;
}

// The acceptance sizes: empty, single, odd, and a million entries.
const std::size_t kSizes[] = {0, 1, 37, 1u << 20};

TEST(WireCodecTest, QueryRequestRoundTrips) {
  for (const std::size_t size : kSizes) {
    const WireQueryRequest request = SampleQueryRequest(size);
    auto decoded = DecodeFrame(EncodeQueryRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded.value().type, WireType::kQueryRequest);
    EXPECT_TRUE(decoded.value().query_request == request) << "size " << size;
  }
}

TEST(WireCodecTest, BatchAnswerRoundTrips) {
  for (const std::size_t size : kSizes) {
    const WireBatchAnswer answer = SampleBatchAnswer(size);
    auto decoded = DecodeFrame(EncodeBatchAnswer(answer));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded.value().type, WireType::kBatchAnswer);
    EXPECT_TRUE(decoded.value().batch_answer == answer) << "size " << size;
  }
}

TEST(WireCodecTest, HistogramRoundTrips) {
  for (const std::size_t size : kSizes) {
    const WireHistogram histogram = SampleHistogram(size);
    auto decoded = DecodeFrame(EncodeHistogram(histogram));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded.value().type, WireType::kHistogram);
    EXPECT_TRUE(decoded.value().histogram == histogram) << "size " << size;
  }
}

TEST(WireCodecTest, ErrorRoundTripsEveryCode) {
  const Status statuses[] = {
      Status::InvalidArgument("a"),    Status::Internal("b"),
      Status::NotFound("c"),           Status::ParseError("d"),
      Status::ResourceExhausted("e"),  Status::DeadlineExceeded("f"),
      Status::PermissionDenied("g"),   Status::DataLoss("h"),
  };
  for (const Status& status : statuses) {
    auto decoded = DecodeFrame(EncodeError(status));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().type, WireType::kError);
    EXPECT_EQ(decoded.value().error.code, status.code());
    EXPECT_EQ(decoded.value().error.message, status.message());
    const Status round = decoded.value().error.ToStatus();
    EXPECT_EQ(round.code(), status.code());
    EXPECT_EQ(round.message(), status.message());
  }
}

TEST(WireCodecTest, JsonRoundTripsMatchBinary) {
  // The JSON fallback must decode to the *identical* message the binary
  // path decodes to — including bit-exact doubles (round-trip formatting)
  // and full-precision u64 seeds/fingerprints (string-encoded in JSON).
  WireQueryRequest request = SampleQueryRequest(37);
  request.request.seed = 0xFFFFFFFFFFFFFFFFull;  // > 2^53: breaks if numeric
  auto decoded_request = DecodeJson(EncodeQueryRequestJson(request));
  ASSERT_TRUE(decoded_request.ok()) << decoded_request.status().ToString();
  EXPECT_TRUE(decoded_request.value().query_request == request);

  WireBatchAnswer answer = SampleBatchAnswer(37);
  answer.answers.push_back(0.1 + 0.2);  // not exactly representable
  auto decoded_answer = DecodeJson(EncodeBatchAnswerJson(answer));
  ASSERT_TRUE(decoded_answer.ok()) << decoded_answer.status().ToString();
  EXPECT_TRUE(decoded_answer.value().batch_answer == answer);

  const WireHistogram histogram = SampleHistogram(37);
  auto decoded_histogram = DecodeJson(EncodeHistogramJson(histogram));
  ASSERT_TRUE(decoded_histogram.ok());
  EXPECT_TRUE(decoded_histogram.value().histogram == histogram);

  auto decoded_error =
      DecodeJson(EncodeErrorJson(Status::ResourceExhausted("queue full")));
  ASSERT_TRUE(decoded_error.ok());
  EXPECT_EQ(decoded_error.value().error.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded_error.value().error.message, "queue full");
}

TEST(WireCodecTest, EveryTruncationIsRejected) {
  const std::string frame = EncodeBatchAnswer(SampleBatchAnswer(5));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    auto decoded = DecodeFrame(frame.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(WireCodecTest, EveryBitFlipIsRejected) {
  const std::string frame = EncodeError(Status::NotFound("missing"));
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = frame;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto decoded = DecodeFrame(corrupt);
      EXPECT_FALSE(decoded.ok())
          << "bit " << bit << " of byte " << byte << " flipped undetected";
    }
  }
}

TEST(WireCodecTest, TrailingBytesAreRejected) {
  std::string frame = EncodeError(Status::NotFound("x"));
  frame += '\0';
  EXPECT_FALSE(DecodeFrame(frame).ok());
}

TEST(WireCodecTest, UnknownTypeIsRejected) {
  // A well-framed payload with a bogus type tag: CRC passes, body fails.
  std::string payload(1, '\x9');
  std::string frame(kWireMagic, kWireMagicLen);
  binio::PutU32(frame, static_cast<std::uint32_t>(payload.size()));
  binio::PutU32(frame, binio::Crc32(payload));
  frame += payload;
  auto decoded = DecodeFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(WireCodecTest, HandBuiltGoldenErrorFrame) {
  // Independent byte-level construction (no binio on the encode side):
  // pins the frame layout and little-endian integer order.
  const std::string payload =
      std::string("\x04", 1) +               // type kError
      std::string("\x03\x00\x00\x00", 4) +   // code 3 = NotFound, u32 LE
      std::string("\x02\x00\x00\x00", 4) +   // message length 2, u32 LE
      "no";
  std::string expected = "DPHWIR1\n";
  expected += std::string("\x0b\x00\x00\x00", 4);  // payload_len 11, u32 LE
  const std::uint32_t crc = binio::Crc32(payload);
  for (int i = 0; i < 4; ++i) {
    expected += static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  expected += payload;
  EXPECT_EQ(EncodeError(Status::NotFound("no")), expected);
  auto decoded = DecodeFrame(expected);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().error.code, StatusCode::kNotFound);
  EXPECT_EQ(decoded.value().error.message, "no");
}

TEST(WireCodecTest, GoldenFileRoundTrips) {
  // The checked-in golden frame: encoding the reference message must
  // reproduce the file byte for byte on ANY host (the cross-endian
  // guarantee), and the file must decode back to the reference message.
  const std::string path =
      std::string(DPHIST_TESTDATA_DIR) + "/wire_batch_answer_v1.bin";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::ostringstream bytes;
  bytes << in.rdbuf();
  const std::string golden = bytes.str();
  ASSERT_FALSE(golden.empty());

  const WireBatchAnswer reference = SampleBatchAnswer(3);
  EXPECT_EQ(EncodeBatchAnswer(reference), golden);
  auto decoded = DecodeFrame(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value().batch_answer == reference);
}

TEST(WireCodecTest, MalformedJsonIsTyped) {
  EXPECT_FALSE(DecodeJson("").ok());
  EXPECT_FALSE(DecodeJson("{}").ok());                       // no type
  EXPECT_FALSE(DecodeJson("{\"type\":\"wat\"}").ok());       // unknown type
  EXPECT_FALSE(DecodeJson("{\"type\":\"query_request\"}").ok());  // fields
  // Bad queries string.
  WireQueryRequest request = SampleQueryRequest(1);
  std::string good = EncodeQueryRequestJson(request);
  const std::size_t at = good.find("\"queries\":\"");
  ASSERT_NE(at, std::string::npos);
  std::string bad = good;
  bad.replace(at, std::string("\"queries\":\"").size(),
              "\"queries\":\"zap");
  EXPECT_FALSE(DecodeJson(bad).ok());
}

}  // namespace
}  // namespace net
}  // namespace dphist
