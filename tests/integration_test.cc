// End-to-end tests across the full pipeline: datasets -> publishers ->
// workloads -> metrics. These check the *paper-level* claims (who beats
// whom, in which regime) with pinned seeds and generous margins, averaging
// over repetitions to keep them deterministic and non-flaky.

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/algorithms/mwem.h"
#include "dphist/algorithms/registry.h"
#include "dphist/bench_util/experiment.h"
#include "dphist/data/generators.h"
#include "dphist/privacy/budget.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

double MaeOf(const HistogramPublisher& publisher, const Histogram& truth,
             const std::vector<RangeQuery>& queries, double epsilon,
             std::size_t reps, std::uint64_t seed) {
  auto cell = RunCell(publisher, truth, queries, epsilon, reps, seed);
  EXPECT_TRUE(cell.ok());
  return cell.ok() ? cell.value().workload_mae.mean : 1.0e18;
}

TEST(IntegrationTest, AllPublishersRunOnAllPaperDatasets) {
  const std::vector<Dataset> suite = MakePaperSuite(256, 1);
  const auto publishers = PublisherRegistry::MakeAll();
  Rng rng(2);
  for (const Dataset& dataset : suite) {
    for (const auto& publisher : publishers) {
      Rng local = rng.Fork();
      auto out = publisher->Publish(dataset.histogram, 0.5, local);
      ASSERT_TRUE(out.ok()) << dataset.name << "/" << publisher->name();
      EXPECT_EQ(out.value().size(), dataset.histogram.size());
    }
  }
}

TEST(IntegrationTest, ErrorDecreasesWithEpsilonForEveryAlgorithm) {
  const Dataset age = MakeAge(3);
  Rng rng(4);
  auto queries = RandomRangeWorkload(age.histogram.size(), 200, rng);
  ASSERT_TRUE(queries.ok());
  for (const auto& publisher : PublisherRegistry::MakeAll()) {
    if (publisher->name() == "mwem") {
      // MWEM's error on this workload is approximation-bound (few rounds
      // of multiplicative weights), not noise-bound; it gets its own test
      // below.
      continue;
    }
    const double loose = MaeOf(*publisher, age.histogram, queries.value(),
                               0.01, 15, 100);
    const double tight = MaeOf(*publisher, age.histogram, queries.value(),
                               1.0, 15, 101);
    EXPECT_GT(loose, tight) << publisher->name();
  }
}

TEST(IntegrationTest, MwemImprovesWithEpsilonOnItsWorkload) {
  // Block-structured data: multiplicative weights can actually converge
  // within a handful of rounds, so the budget becomes the binding factor.
  // (On heavily concentrated data like the power-law degree distribution
  // MWEM is approximation-bound at any epsilon — its updates are damped by
  // 1/(2*total) — which is exactly why the histogram-specific algorithms
  // exist.)
  std::vector<double> counts(128, 10.0);
  for (std::size_t i = 0; i < 64; ++i) {
    counts[i] = 100.0;
  }
  const Histogram truth(counts);
  Rng rng(4);
  auto queries = RandomRangeWorkload(truth.size(), 100, rng);
  ASSERT_TRUE(queries.ok());
  Mwem::Options options;
  options.workload = queries.value();
  options.iterations = 20;
  Mwem mwem(options);
  const double loose = MaeOf(mwem, truth, queries.value(), 0.05, 15, 102);
  const double tight = MaeOf(mwem, truth, queries.value(), 5.0, 15, 103);
  EXPECT_GT(loose, tight);
}

TEST(IntegrationTest, NoiseFirstBeatsDworkOnUnitBins) {
  // The paper's NF claim: short (unit) queries improve over Dwork in the
  // noise-dominated regime (small epsilon). Checked on a bursty trace and
  // on the smooth age pyramid at the epsilon where noise dwarfs the
  // bin-to-bin variation.
  auto dwork = PublisherRegistry::Make("dwork");
  auto nf = PublisherRegistry::Make("noise_first");
  ASSERT_TRUE(dwork.ok());
  ASSERT_TRUE(nf.ok());

  const Dataset logs = MakeSearchLogs(256, 5);
  const std::vector<RangeQuery> unit = AllUnitWorkload(256);
  const double dwork_logs =
      MaeOf(*dwork.value(), logs.histogram, unit, 0.01, 25, 200);
  const double nf_logs =
      MaeOf(*nf.value(), logs.histogram, unit, 0.01, 25, 201);
  EXPECT_LT(nf_logs, dwork_logs * 0.85);

  const Dataset age = MakeAge(5);
  const std::vector<RangeQuery> unit_age =
      AllUnitWorkload(age.histogram.size());
  const double dwork_age =
      MaeOf(*dwork.value(), age.histogram, unit_age, 0.001, 25, 202);
  const double nf_age =
      MaeOf(*nf.value(), age.histogram, unit_age, 0.001, 25, 203);
  EXPECT_LT(nf_age, dwork_age * 0.9);
}

TEST(IntegrationTest, StructureFirstBeatsDworkOnLongRanges) {
  // The paper's SF claim: long-range queries improve over Dwork because
  // merged buckets carry little per-bin noise.
  const Dataset social = MakeSocialNetwork(256, 6);
  Rng rng(7);
  const std::size_t n = social.histogram.size();
  auto queries = FixedLengthWorkload(n, n / 2, 100, rng);
  ASSERT_TRUE(queries.ok());
  auto dwork = PublisherRegistry::Make("dwork");
  auto sf = PublisherRegistry::Make("structure_first");
  ASSERT_TRUE(dwork.ok());
  ASSERT_TRUE(sf.ok());
  const double eps = 0.1;
  const double dwork_mae =
      MaeOf(*dwork.value(), social.histogram, queries.value(), eps, 25, 300);
  const double sf_mae =
      MaeOf(*sf.value(), social.histogram, queries.value(), eps, 25, 301);
  EXPECT_LT(sf_mae, dwork_mae);
}

TEST(IntegrationTest, HierarchicalMethodsBeatDworkOnRandomRanges) {
  // Boost and Privelet exist because range queries under Dwork accumulate
  // linear noise; both must win clearly on uniform data at moderate eps.
  const Dataset uniform = MakeUniform(512, 100.0, 8);
  Rng rng(9);
  auto queries = RandomRangeWorkload(512, 200, rng);
  ASSERT_TRUE(queries.ok());
  auto dwork = PublisherRegistry::Make("dwork");
  ASSERT_TRUE(dwork.ok());
  const double dwork_mae = MaeOf(*dwork.value(), uniform.histogram,
                                 queries.value(), 0.1, 20, 400);
  for (const char* name : {"boost", "privelet"}) {
    auto algo = PublisherRegistry::Make(name);
    ASSERT_TRUE(algo.ok());
    const double mae = MaeOf(*algo.value(), uniform.histogram,
                             queries.value(), 0.1, 20, 401);
    EXPECT_LT(mae, dwork_mae) << name;
  }
}

TEST(IntegrationTest, KlDivergenceImprovesWithEpsilon) {
  const Dataset logs = MakeSearchLogs(256, 10);
  auto nf = PublisherRegistry::Make("noise_first");
  ASSERT_TRUE(nf.ok());
  const std::vector<RangeQuery> unit = AllUnitWorkload(256);
  auto weak = RunCell(*nf.value(), logs.histogram, unit, 0.01, 15, 500);
  auto strong = RunCell(*nf.value(), logs.histogram, unit, 1.0, 15, 501);
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(strong.ok());
  EXPECT_GT(weak.value().kl_divergence.mean,
            strong.value().kl_divergence.mean);
}

TEST(IntegrationTest, BudgetAccountantModelsStructureFirstLedger) {
  // Demonstrate (and pin down) the composition argument of SF as an
  // auditable ledger: k-1 sequential EM draws plus one parallel group of
  // bucket counts must exactly exhaust epsilon.
  const double epsilon = 1.0;
  const std::size_t k = 8;
  const double ratio = 0.5;
  BudgetAccountant budget(epsilon);
  const double eps_structure = ratio * epsilon;
  for (std::size_t t = 0; t + 1 < k; ++t) {
    ASSERT_TRUE(budget
                    .ChargeSequential(eps_structure / (k - 1),
                                      "em cut " + std::to_string(t))
                    .ok());
  }
  for (std::size_t b = 0; b < k; ++b) {
    ASSERT_TRUE(budget
                    .ChargeParallel(epsilon - eps_structure, "bucket sums",
                                    "bucket " + std::to_string(b))
                    .ok());
  }
  EXPECT_NEAR(budget.spent_epsilon(), epsilon, 1e-9);
  // No further query fits.
  EXPECT_FALSE(budget.ChargeSequential(0.01, "extra").ok());
}

TEST(IntegrationTest, NoiseFirstStructureFirstCrossover) {
  // The paper's figure-level claim: neither NF nor SF dominates — NF is
  // the better choice at larger epsilon / short queries, SF in the
  // noise-dominated small-epsilon regime, especially for long ranges. We
  // pin the two robust corners of that plane on the network trace.
  const Dataset trace = MakeNetTrace(1024, 2);
  const std::size_t n = trace.histogram.size();
  Rng rng(12);
  auto long_q = FixedLengthWorkload(n, n / 2, 100, rng);
  ASSERT_TRUE(long_q.ok());
  const std::vector<RangeQuery> unit = AllUnitWorkload(n);
  auto sf = PublisherRegistry::Make("structure_first");
  auto nf = PublisherRegistry::Make("noise_first");
  ASSERT_TRUE(sf.ok());
  ASSERT_TRUE(nf.ok());
  // Corner 1: small epsilon, long ranges -> SF wins clearly.
  const double sf_long =
      MaeOf(*sf.value(), trace.histogram, long_q.value(), 0.01, 15, 600);
  const double nf_long =
      MaeOf(*nf.value(), trace.histogram, long_q.value(), 0.01, 15, 601);
  EXPECT_LT(sf_long, nf_long * 0.7);
  // Corner 2: moderate epsilon, unit queries -> NF wins.
  const double sf_unit =
      MaeOf(*sf.value(), trace.histogram, unit, 0.1, 15, 602);
  const double nf_unit =
      MaeOf(*nf.value(), trace.histogram, unit, 0.1, 15, 603);
  EXPECT_LT(nf_unit, sf_unit);
}

}  // namespace
}  // namespace dphist
