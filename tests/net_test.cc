// The network front-end's contracts, driven over real loopback sockets:
// answers served over the wire are bit-identical to in-process
// AnswerBatch calls in either codec and at any worker-pool size, a
// saturated admission queue refuses with a typed kResourceExhausted (no
// hang, no drop — the refused client retries and succeeds), coalescing
// merges same-release queries into one serve-layer batch, and protocol
// errors come back typed. These tests also run under ASan/UBSan and TSan
// in CI (label `net`).

#include "dphist/net/server.h"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/common/thread_pool.h"
#include "dphist/hist/histogram.h"
#include "dphist/net/client.h"
#include "dphist/net/wire_codec.h"
#include "dphist/obs/obs.h"
#include "dphist/serve/release_server.h"

namespace dphist {
namespace net {
namespace {

Histogram TestTruth(std::size_t bins = 64) {
  std::vector<double> counts(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    counts[i] = static_cast<double>((i * 7 + 3) % 23);
  }
  return Histogram(std::move(counts));
}

WireQueryRequest TestQuery(std::uint64_t seed = 42) {
  WireQueryRequest query;
  query.request.publisher = "noise_first";
  query.request.epsilon = 0.5;
  query.request.seed = seed;
  query.queries = {{0, 8}, {3, 5}, {10, 64}, {0, 64}, {63, 64}};
  return query;
}

// A running server over a fresh single-tenant ReleaseServer.
struct TestStack {
  explicit TestStack(std::size_t threads, NetServerOptions options = {},
                     double total_epsilon = 100.0)
      : pool(threads),
        release_server(TestTruth(), total_epsilon) {
    options.pool = &pool;
    server = std::make_unique<NetServer>(&release_server, options);
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~TestStack() { server->Stop(); }

  Result<WireBatchAnswer> Query(const WireQueryRequest& query, bool binary) {
    NetClient client;
    const Status connected = client.Connect("127.0.0.1", server->port());
    EXPECT_TRUE(connected.ok()) << connected.ToString();
    return client.Query(query, binary);
  }

  ThreadPool pool;
  serve::ReleaseServer release_server;
  std::unique_ptr<NetServer> server;
};

TEST(NetTest, HealthzResponds) {
  TestStack stack(2);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());
  HttpMessage request;
  request.method = "GET";
  request.target = "/healthz";
  auto response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, "ok\n");
}

TEST(NetTest, MetaReportsDomain) {
  TestStack stack(2);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());
  HttpMessage request;
  request.method = "GET";
  request.target = "/v1/meta";
  auto response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response.value().body.find("\"domain_size\":64"),
            std::string::npos)
      << response.value().body;
}

TEST(NetTest, WireAnswersMatchInProcessBitForBit) {
  // The core correctness contract, at several pool sizes (the
  // "any DPHIST_THREADS" criterion): answers over the wire — binary AND
  // JSON codec — are bit-identical to calling AnswerBatch in-process.
  for (const std::size_t threads : {1u, 2u, 4u}) {
    TestStack stack(threads);
    const WireQueryRequest query = TestQuery();
    auto expected = stack.release_server.AnswerBatch(
        query.queries, query.request);
    ASSERT_TRUE(expected.ok());
    for (const bool binary : {true, false}) {
      auto answer = stack.Query(query, binary);
      ASSERT_TRUE(answer.ok())
          << answer.status().ToString() << " threads=" << threads;
      ASSERT_EQ(answer.value().answers.size(),
                expected.value().answers.size());
      for (std::size_t i = 0; i < expected.value().answers.size(); ++i) {
        // Bit-level equality, not EXPECT_DOUBLE_EQ: the wire carries raw
        // IEEE-754 bits (binary) / round-trip decimals (JSON).
        EXPECT_EQ(std::memcmp(&answer.value().answers[i],
                              &expected.value().answers[i], sizeof(double)),
                  0)
            << "answer " << i << " binary=" << binary
            << " threads=" << threads;
      }
      EXPECT_EQ(answer.value().served, expected.value().served);
      EXPECT_FALSE(answer.value().stale);
    }
  }
}

TEST(NetTest, LargeBatchCrossesReadBoundaries) {
  // ~160 KB request body and ~80 KB response: exercises partial reads,
  // partial writes, and Content-Length framing across poll rounds.
  TestStack stack(2);
  WireQueryRequest query = TestQuery();
  query.queries.clear();
  for (std::size_t i = 0; i < 10000; ++i) {
    query.queries.push_back({i % 60, i % 60 + 1 + i % 4});
  }
  auto expected =
      stack.release_server.AnswerBatch(query.queries, query.request);
  ASSERT_TRUE(expected.ok());
  auto answer = stack.Query(query, /*binary=*/true);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer.value().answers, expected.value().answers);
}

TEST(NetTest, ReleaseEndpointShipsFullHistogram) {
  TestStack stack(2);
  const WireQueryRequest query = TestQuery();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());
  auto released = client.Release(query, /*binary=*/true);
  ASSERT_TRUE(released.ok()) << released.status().ToString();
  auto expected = stack.release_server.GetRelease(query.request);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(released.value().counts, expected.value()->histogram().counts());
  EXPECT_EQ(released.value().key, expected.value()->key());
  // JSON path ships the identical bits.
  auto json = client.Release(query, /*binary=*/false);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json.value().counts, released.value().counts);
}

TEST(NetTest, ErrorsAreTyped) {
  TestStack stack(2);
  // Unknown dataset -> kNotFound over the wire.
  WireQueryRequest query = TestQuery();
  query.dataset = "nope";
  auto missing = stack.Query(query, /*binary=*/true);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // Same over JSON.
  auto missing_json = stack.Query(query, /*binary=*/false);
  ASSERT_FALSE(missing_json.ok());
  EXPECT_EQ(missing_json.status().code(), StatusCode::kNotFound);
  // A corrupt binary frame -> kDataLoss (HTTP 400), connection survives.
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());
  HttpMessage corrupt;
  corrupt.method = "POST";
  corrupt.target = "/v1/query";
  corrupt.headers["content-type"] = kContentTypeBinary;
  corrupt.body = "definitely not a frame";
  auto response = client.RoundTrip(corrupt);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 400);
  EXPECT_EQ(response.value().Header("x-dphist-status"), "DataLoss");
  // Unknown endpoint -> 404 typed.
  HttpMessage wrong;
  wrong.method = "GET";
  wrong.target = "/v2/everything";
  auto nf = client.RoundTrip(wrong);
  ASSERT_TRUE(nf.ok());
  EXPECT_EQ(nf.value().status, 404);
}

TEST(NetTest, BudgetExhaustionDegradesToStaleOverTheWire) {
  // Budget for exactly one publication: the second (different seed) is
  // refused by the ledger and AnswerBatch degrades to the cached release
  // — the stale flag must survive the wire.
  TestStack stack(2, {}, /*total_epsilon=*/0.5);
  auto fresh = stack.Query(TestQuery(/*seed=*/1), /*binary=*/true);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_FALSE(fresh.value().stale);
  auto degraded = stack.Query(TestQuery(/*seed=*/2), /*binary=*/true);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded.value().stale);
  EXPECT_EQ(degraded.value().served.seed, 1u);
}

TEST(NetTest, KeepAliveServesManyRequests) {
  TestStack stack(2);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());
  for (int i = 0; i < 20; ++i) {
    auto answer = client.Query(TestQuery(), i % 2 == 0);
    ASSERT_TRUE(answer.ok()) << "request " << i;
  }
  EXPECT_TRUE(client.connected());
}

// Blocks the first `blocked` handler invocations until released; later
// invocations pass straight through.
class HandlerGate {
 public:
  explicit HandlerGate(int blocked) : remaining_(blocked) {}

  void Enter() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (remaining_ <= 0) {
      return;
    }
    --remaining_;
    ++waiting_;
    entered_.notify_all();
    released_.wait(lock, [this] { return open_; });
    --waiting_;
  }

  void AwaitEntered(int count) {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_.wait(lock, [this, count] { return waiting_ >= count; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    released_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_;
  std::condition_variable released_;
  int remaining_;
  int waiting_ = 0;
  bool open_ = false;
};

TEST(NetTest, SaturatedAdmissionRefusesTypedThenRecovers) {
  HandlerGate gate(/*blocked=*/1);
  NetServerOptions options;
  options.max_inflight = 1;
  options.handler_hook = [&gate] { gate.Enter(); };
  TestStack stack(/*threads=*/2, options);

  // Connect the probing client FIRST: once admission saturates, accept()
  // pauses (backpressure), so only an already-accepted connection can
  // observe the typed refusal.
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());

  // Request 1 occupies the only admission slot, parked inside its handler.
  std::thread first([&stack] {
    auto answer = stack.Query(TestQuery(/*seed=*/1), /*binary=*/true);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
  });
  gate.AwaitEntered(1);

  // Request 2 (a different release) must be refused NOW — typed, no hang.
  auto refused = client.Query(TestQuery(/*seed=*/2), /*binary=*/true);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // The JSON path gets the same typed refusal.
  auto refused_json = client.Query(TestQuery(/*seed=*/2), /*binary=*/false);
  ASSERT_FALSE(refused_json.ok());
  EXPECT_EQ(refused_json.status().code(), StatusCode::kResourceExhausted);

  // No drop: once the queue drains, the refused client's retry succeeds
  // on the same connection.
  gate.Release();
  first.join();
  auto retry = client.Query(TestQuery(/*seed=*/2), /*binary=*/true);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(NetTest, SameReleaseQueriesCoalesceIntoOneBatch) {
  HandlerGate gate(/*blocked=*/1);
  NetServerOptions options;
  options.max_inflight = 16;
  options.handler_hook = [&gate] { gate.Enter(); };
  TestStack stack(/*threads=*/4, options);

  // Counters are recording no-ops while obs is disabled.
  obs::Registry::Global().set_enabled(true);
  obs::Counter& batches =
      obs::Registry::Global().GetCounter("net/coalesced_batches");
  obs::Counter& coalesced =
      obs::Registry::Global().GetCounter("net/coalesced_requests");
  const std::uint64_t batches_before = batches.value();
  const std::uint64_t coalesced_before = coalesced.value();

  // The leader (request A) blocks inside its first drained batch; B and C
  // for the SAME release arrive meanwhile and must ride the leader's next
  // drain as one serve-layer batch.
  std::vector<std::thread> clients;
  std::vector<Result<WireBatchAnswer>> answers(3, Status::Internal("unset"));
  clients.emplace_back([&stack, &answers] {
    answers[0] = stack.Query(TestQuery(), /*binary=*/true);
  });
  gate.AwaitEntered(1);
  for (int i = 1; i < 3; ++i) {
    clients.emplace_back([&stack, &answers, i] {
      answers[i] = stack.Query(TestQuery(), /*binary=*/true);
    });
  }
  // B and C are parked in the coalescing group (not refused — admission
  // has room); give their dispatches a moment to land, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  gate.Release();
  for (std::thread& t : clients) {
    t.join();
  }

  const auto expected = stack.release_server.AnswerBatch(
      TestQuery().queries, TestQuery().request);
  ASSERT_TRUE(expected.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(answers[i].ok()) << i << ": " << answers[i].status().ToString();
    EXPECT_EQ(answers[i].value().answers, expected.value().answers) << i;
  }
  // All three requests were coalesced-counted, in at most two serve-layer
  // drains (leader's first batch + one merged batch for the waiters; the
  // waiters may split only if they raced ahead of each other's dispatch).
  EXPECT_EQ(coalesced.value() - coalesced_before, 3u);
  EXPECT_LE(batches.value() - batches_before, 3u);
  EXPECT_GE(batches.value() - batches_before, 1u);
}

}  // namespace
}  // namespace net
}  // namespace dphist
