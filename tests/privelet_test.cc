#include "dphist/algorithms/privelet.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(PriveletTest, Name) { EXPECT_EQ(Privelet().name(), "privelet"); }

TEST(PriveletTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(Privelet().Publish(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(Privelet().Publish(Histogram({1.0}), 0.0, rng).ok());
}

TEST(PriveletTest, PreservesSizeEvenWhenPadded) {
  Privelet algo;
  const Histogram truth({1.0, 2.0, 3.0, 4.0, 5.0});  // pads to 8
  Rng rng(2);
  auto out = algo.Publish(truth, 1.0, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 5u);
}

TEST(PriveletTest, DeterministicGivenSeed) {
  Privelet algo;
  const Histogram truth({10.0, 20.0, 30.0, 40.0});
  Rng a(3);
  Rng b(3);
  auto out_a = algo.Publish(truth, 0.5, a);
  auto out_b = algo.Publish(truth, 0.5, b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(out_a.value().counts(), out_b.value().counts());
}

TEST(PriveletTest, ApproximatelyUnbiasedPerBin) {
  Privelet algo;
  const Histogram truth(std::vector<double>(16, 25.0));
  Rng rng(4);
  std::vector<double> sums(truth.size(), 0.0);
  const int reps = 4000;
  for (int rep = 0; rep < reps; ++rep) {
    auto out = algo.Publish(truth, 1.0, rng);
    ASSERT_TRUE(out.ok());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      sums[i] += out.value().count(i);
    }
  }
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(sums[i] / reps, 25.0, 2.0);
  }
}

TEST(PriveletTest, LongRangeVarianceBeatsDwork) {
  Privelet algo;
  const std::size_t n = 256;
  const Histogram truth(std::vector<double>(n, 10.0));
  const double epsilon = 1.0;
  Rng rng(5);
  double wavelet_sq = 0.0;
  const int reps = 400;
  for (int rep = 0; rep < reps; ++rep) {
    auto out = algo.Publish(truth, epsilon, rng);
    ASSERT_TRUE(out.ok());
    const double err = out.value().Total() - truth.Total();
    wavelet_sq += err * err;
  }
  wavelet_sq /= reps;
  const double dwork_variance =
      static_cast<double>(n) * 2.0 / (epsilon * epsilon);
  EXPECT_LT(wavelet_sq, dwork_variance / 2.0);
}

TEST(PriveletTest, SingleBinHistogram) {
  Privelet algo;
  const Histogram truth({12.0});
  Rng rng(6);
  auto out = algo.Publish(truth, 1.0, rng);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  // n = 1: rho = 1, weight = 1, so this reduces to plain Laplace.
  EXPECT_NE(out.value().count(0), 12.0);
}

TEST(PriveletTest, ClampNonNegative) {
  Privelet::Options options;
  options.clamp_nonnegative = true;
  Privelet algo(options);
  const Histogram truth(std::vector<double>(32, 0.0));
  Rng rng(7);
  auto out = algo.Publish(truth, 0.1, rng);
  ASSERT_TRUE(out.ok());
  for (double v : out.value().counts()) {
    EXPECT_GE(v, 0.0);
  }
}

}  // namespace
}  // namespace dphist
