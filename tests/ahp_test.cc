#include "dphist/algorithms/ahp.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

// Two value levels scattered (not contiguous!) across the domain: the
// regime AHP's value-clustering is built for and position-based merging
// cannot exploit.
Histogram ScatteredLevels(std::size_t n) {
  std::vector<double> counts(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    counts[i] = (i % 2 == 0) ? 400.0 : 20.0;
  }
  return Histogram(std::move(counts));
}

TEST(AhpTest, Name) { EXPECT_EQ(Ahp().name(), "ahp"); }

TEST(AhpTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(Ahp().Publish(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(Ahp().Publish(Histogram({1.0}), 0.0, rng).ok());
  Ahp::Options bad_ratio;
  bad_ratio.structure_budget_ratio = 0.0;
  EXPECT_FALSE(Ahp(bad_ratio).Publish(Histogram({1.0, 2.0}), 1.0, rng).ok());
  Ahp::Options bad_tolerance;
  bad_tolerance.cluster_tolerance_scale = 0.0;
  EXPECT_FALSE(
      Ahp(bad_tolerance).Publish(Histogram({1.0, 2.0}), 1.0, rng).ok());
}

TEST(AhpTest, PreservesSizeAndDeterminism) {
  Ahp algo;
  const Histogram truth = ScatteredLevels(48);
  Rng a(2);
  Rng b(2);
  auto out_a = algo.Publish(truth, 1.0, a);
  auto out_b = algo.Publish(truth, 1.0, b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(out_a.value().size(), truth.size());
  EXPECT_EQ(out_a.value().counts(), out_b.value().counts());
}

TEST(AhpTest, BudgetSplitsSumToEpsilon) {
  Ahp::Options options;
  options.structure_budget_ratio = 0.3;
  Ahp algo(options);
  const Histogram truth = ScatteredLevels(32);
  Rng rng(3);
  Ahp::Details details;
  auto out = algo.PublishWithDetails(truth, 2.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(details.structure_epsilon, 0.6, 1e-12);
  EXPECT_NEAR(details.count_epsilon, 1.4, 1e-12);
}

TEST(AhpTest, ClustersScatteredLevelsAtHighBudget) {
  // With plenty of budget the noisy sort is nearly exact, so the two value
  // levels collapse into very few clusters even though they interleave.
  Ahp algo;
  const Histogram truth = ScatteredLevels(64);
  Rng rng(4);
  Ahp::Details details;
  auto out = algo.PublishWithDetails(truth, 50.0, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(details.num_clusters, 8u);
  // And the published values are close to the two true levels.
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(out.value().count(i), truth.count(i), 30.0) << i;
  }
}

TEST(AhpTest, ThresholdZeroesNoiseDominatedBins) {
  Ahp algo;
  const Histogram truth(std::vector<double>(128, 0.0));
  Rng rng(5);
  Ahp::Details details;
  auto out = algo.PublishWithDetails(truth, 0.5, rng, &details);
  ASSERT_TRUE(out.ok());
  // theta = ln(128)/0.25 ~ 19.4: nearly all noisy zero-counts fall below.
  EXPECT_GT(details.thresholded_bins, 100u);
}

TEST(AhpTest, ThresholdCanBeDisabled) {
  Ahp::Options options;
  options.threshold_small_counts = false;
  Ahp algo(options);
  const Histogram truth(std::vector<double>(64, 0.0));
  Rng rng(6);
  Ahp::Details details;
  auto out = algo.PublishWithDetails(truth, 0.5, rng, &details);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(details.thresholded_bins, 0u);
}

TEST(AhpTest, BeatsDworkOnScatteredLevelsAtSmallEpsilon) {
  // The value-clustering advantage: interleaved levels merge into two big
  // clusters whose means carry almost no noise.
  Ahp algo;
  const std::size_t n = 128;
  const Histogram truth = ScatteredLevels(n);
  const double epsilon = 0.05;
  Rng rng(7);
  double ahp_sq = 0.0;
  const int reps = 40;
  for (int rep = 0; rep < reps; ++rep) {
    auto out = algo.Publish(truth, epsilon, rng);
    ASSERT_TRUE(out.ok());
    for (std::size_t i = 0; i < n; ++i) {
      const double d = out.value().count(i) - truth.count(i);
      ahp_sq += d * d;
    }
  }
  const double ahp_mse = ahp_sq / (reps * static_cast<double>(n));
  const double dwork_mse = 2.0 / (epsilon * epsilon);
  EXPECT_LT(ahp_mse, dwork_mse * 0.75);
}

TEST(AhpTest, ClampOffAllowsNegatives) {
  Ahp::Options options;
  options.clamp_nonnegative = false;
  options.threshold_small_counts = false;
  Ahp algo(options);
  const Histogram truth(std::vector<double>(64, 0.0));
  Rng rng(8);
  bool saw_negative = false;
  for (int rep = 0; rep < 10 && !saw_negative; ++rep) {
    auto out = algo.Publish(truth, 0.05, rng);
    ASSERT_TRUE(out.ok());
    for (double v : out.value().counts()) {
      saw_negative |= v < 0.0;
    }
  }
  EXPECT_TRUE(saw_negative);
}

}  // namespace
}  // namespace dphist
