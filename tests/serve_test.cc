// The release-serving subsystem: cache identity and O(1) answering,
// exactly-once publication, typed budget refusal, and the degradation
// contract (budget exhausted -> newest cached release, flagged stale).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/algorithms/registry.h"
#include "dphist/data/generators.h"
#include "dphist/obs/obs.h"
#include "dphist/query/range_query.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"
#include "dphist/serve/budget_ledger.h"
#include "dphist/serve/release_cache.h"
#include "dphist/serve/release_server.h"

namespace dphist {
namespace serve {
namespace {

Histogram TestTruth(std::size_t n = 64, std::uint64_t seed = 5) {
  return MakeSearchLogs(n, seed).histogram;
}

// Default-namespace key (the shape most cache tests exercise; tenant
// isolation has its own suite in tenant_test.cc).
ReleaseKey Key(std::uint64_t fingerprint, std::string publisher,
               double epsilon, std::uint64_t seed) {
  return {"default", "default", fingerprint, std::move(publisher), epsilon,
          seed};
}

TEST(FingerprintTest, DistinguishesHistograms) {
  const Histogram a({1, 2, 3});
  const Histogram b({1, 2, 4});
  const Histogram c({1, 2, 3, 0});
  EXPECT_EQ(FingerprintHistogram(a),
            FingerprintHistogram(Histogram({1, 2, 3})));
  EXPECT_NE(FingerprintHistogram(a), FingerprintHistogram(b));
  EXPECT_NE(FingerprintHistogram(a), FingerprintHistogram(c));
}

TEST(CachedReleaseTest, RangeSumMatchesHistogram) {
  const Histogram truth = TestTruth(32);
  CachedRelease release(Key(1, "direct", 0.5, 7), truth);
  EXPECT_EQ(release.size(), truth.size());
  for (std::size_t begin = 0; begin < truth.size(); begin += 5) {
    for (std::size_t end = begin + 1; end <= truth.size(); end += 7) {
      EXPECT_NEAR(release.RangeSum(begin, end),
                  truth.RangeSumUnchecked(begin, end), 1e-9)
          << begin << ".." << end;
    }
  }
}

TEST(ReleaseCacheTest, GetOrPublishPublishesOncePerKey) {
  ReleaseCache cache;
  const ReleaseKey key = Key(42, "noise_first", 0.1, 1);
  int publishes = 0;
  auto publish = [&]() -> Result<Histogram> {
    ++publishes;
    return Histogram({1, 2, 3});
  };
  auto first = cache.GetOrPublish(key, publish);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrPublish(key, publish);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(publishes, 1);
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(cache.size(), 1u);

  // A different key publishes separately.
  auto other = cache.GetOrPublish(Key(42, "noise_first", 0.1, 2), publish);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(publishes, 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ReleaseCacheTest, FailedPublishCachesNothingAndAllowsRetry) {
  ReleaseCache cache;
  const ReleaseKey key = Key(7, "p", 0.1, 1);
  auto failing = [&]() -> Result<Histogram> {
    return Status::ResourceExhausted("no budget");
  };
  auto refused = cache.GetOrPublish(key, failing);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.size(), 0u);

  auto retried = cache.GetOrPublish(
      key, [&]() -> Result<Histogram> { return Histogram({9}); });
  ASSERT_TRUE(retried.ok());
  EXPECT_NE(cache.Lookup(key), nullptr);
}

TEST(ReleaseCacheTest, NewestForOrdersBySequenceAndFiltersPublisher) {
  ReleaseCache cache;
  auto publish = [](double v) {
    return [v]() -> Result<Histogram> { return Histogram({v}); };
  };
  const TenantKey ns{"default", "d1"};
  const TenantKey other_ns{"default", "d2"};
  auto key = [](const TenantKey& k, std::string publisher, double epsilon) {
    return ReleaseKey{k.tenant, k.dataset, 1, std::move(publisher), epsilon,
                      1};
  };
  ASSERT_TRUE(cache.GetOrPublish(key(ns, "nf", 0.1), publish(1)).ok());
  ASSERT_TRUE(cache.GetOrPublish(key(ns, "dwork", 0.1), publish(2)).ok());
  ASSERT_TRUE(cache.GetOrPublish(key(ns, "nf", 0.2), publish(3)).ok());
  ASSERT_TRUE(cache.GetOrPublish(key(other_ns, "nf", 0.1), publish(4)).ok());

  auto newest_nf = cache.NewestFor(ns, "nf");
  ASSERT_NE(newest_nf, nullptr);
  EXPECT_DOUBLE_EQ(newest_nf->histogram().count(0), 3.0);

  auto newest_any = cache.NewestFor(ns, "");
  ASSERT_NE(newest_any, nullptr);
  EXPECT_DOUBLE_EQ(newest_any->histogram().count(0), 3.0);

  EXPECT_EQ(cache.NewestFor(ns, "privelet"), nullptr);
  EXPECT_EQ(cache.NewestFor({"default", "absent"}, ""), nullptr);
}

TEST(BudgetLedgerTest, ChargesAndTypedRefusal) {
  BudgetLedger ledger(1.0);
  EXPECT_TRUE(ledger.Charge(0.6, "a").ok());
  EXPECT_DOUBLE_EQ(ledger.spent_epsilon(), 0.6);
  const Status refused = ledger.Charge(0.6, "b");
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(ledger.spent_epsilon(), 0.6);
  EXPECT_TRUE(ledger.ChargeParallel(0.4, "bins", "bin 0").ok());
  EXPECT_NEAR(ledger.remaining_epsilon(), 0.0, 1e-12);
  EXPECT_EQ(ledger.charge_count(), 2u);
  EXPECT_NE(ledger.ToString().find("bins"), std::string::npos);
}

TEST(ReleaseServerTest, ReleaseMatchesDirectPublish) {
  const Histogram truth = TestTruth();
  ReleaseServer server(truth, /*total_epsilon=*/10.0);
  const ServeRequest request{"noise_first", 0.5, 123};
  auto release = server.GetRelease(request);
  ASSERT_TRUE(release.ok());

  auto publisher = PublisherRegistry::Make("noise_first");
  ASSERT_TRUE(publisher.ok());
  Rng rng(123);
  auto direct = publisher.value()->Publish(truth, 0.5, rng);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(release.value()->histogram().counts(), direct.value().counts());
}

TEST(ReleaseServerTest, BatchAnswersMatchAnswerQueries) {
  const Histogram truth = TestTruth(128);
  ReleaseServer server(truth, 10.0);
  const ServeRequest request{"dwork", 0.5, 9};
  Rng workload_rng(17);
  auto queries = RandomRangeWorkload(truth.size(), 200, workload_rng);
  ASSERT_TRUE(queries.ok());

  auto batch = server.AnswerBatch(queries.value(), request);
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch.value().stale);

  auto release = server.GetRelease(request);
  ASSERT_TRUE(release.ok());
  auto expected = AnswerQueries(release.value()->histogram(),
                                queries.value());
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(batch.value().answers.size(), expected.value().size());
  for (std::size_t i = 0; i < expected.value().size(); ++i) {
    EXPECT_NEAR(batch.value().answers[i], expected.value()[i], 1e-9) << i;
  }
}

TEST(ReleaseServerTest, LargeBatchParallelMatchesInline) {
  const Histogram truth = TestTruth(256);
  // One server fans large batches across the global pool; the other is
  // forced inline by an unreachable threshold. Answers must be identical.
  ReleaseServer parallel_server(truth, 10.0);
  ReleaseServerOptions inline_options;
  inline_options.min_parallel_batch = static_cast<std::size_t>(-1);
  ReleaseServer inline_server(truth, 10.0, inline_options);
  const ServeRequest request{"dwork", 0.5, 3};
  Rng workload_rng(23);
  auto queries = RandomRangeWorkload(truth.size(), 2048, workload_rng);
  ASSERT_TRUE(queries.ok());

  auto a = parallel_server.AnswerBatch(queries.value(), request);
  auto b = inline_server.AnswerBatch(queries.value(), request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().answers, b.value().answers);
}

TEST(ReleaseServerTest, CacheHitAnswersWithZeroPublisherInvocations) {
  // The acceptance check: a second batch for the same (publisher, epsilon,
  // seed) must be answered entirely from cache — the instrumented
  // publisher run counter and the ledger must not move, and the serve
  // counters must record a hit.
  obs::Registry::Global().Reset();
  obs::Registry::Global().set_enabled(true);
  const Histogram truth = TestTruth();
  ReleaseServer server(truth, 10.0);
  const ServeRequest request{"noise_first", 0.5, 77};
  Rng workload_rng(31);
  auto queries = RandomRangeWorkload(truth.size(), 50, workload_rng);
  ASSERT_TRUE(queries.ok());

  auto first = server.AnswerBatch(queries.value(), request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);
  obs::Counter& runs =
      obs::Registry::Global().GetCounter("publisher/noise_first/runs");
  obs::Counter& hits = obs::Registry::Global().GetCounter("serve/cache/hits");
  obs::Counter& misses =
      obs::Registry::Global().GetCounter("serve/cache/misses");
  const std::uint64_t runs_after_first = runs.value();
  const std::uint64_t misses_after_first = misses.value();
  EXPECT_EQ(runs_after_first, 1u);
  EXPECT_EQ(misses_after_first, 1u);
  const double spent_after_first = server.ledger().spent_epsilon();
  const std::uint64_t hits_before = hits.value();

  auto second = server.AnswerBatch(queries.value(), request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(second.value().answers, first.value().answers);
  EXPECT_EQ(runs.value(), runs_after_first);       // zero new publisher runs
  EXPECT_EQ(misses.value(), misses_after_first);   // zero new misses
  EXPECT_GT(hits.value(), hits_before);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), spent_after_first);
  obs::Registry::Global().set_enabled(false);
  obs::Registry::Global().Reset();
}

TEST(ReleaseServerTest, BudgetRefusalDegradesToNewestCachedRelease) {
  const Histogram truth = TestTruth();
  ReleaseServer server(truth, /*total_epsilon=*/0.25);
  Rng workload_rng(41);
  auto queries = RandomRangeWorkload(truth.size(), 30, workload_rng);
  ASSERT_TRUE(queries.ok());

  const ServeRequest affordable{"noise_first", 0.2, 1};
  auto fresh = server.AnswerBatch(queries.value(), affordable);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value().stale);

  // A second distinct release does not fit in the remaining 0.05: the
  // batch must still succeed, served from the seed-1 release, flagged
  // stale, with no budget spent.
  const double spent_before = server.ledger().spent_epsilon();
  const ServeRequest unaffordable{"noise_first", 0.2, 2};
  auto degraded = server.AnswerBatch(queries.value(), unaffordable);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded.value().stale);
  EXPECT_EQ(degraded.value().served.seed, 1u);
  EXPECT_EQ(degraded.value().answers, fresh.value().answers);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), spent_before);

  // Direct GetRelease keeps the typed refusal (no degradation policy).
  auto refused = server.GetRelease(unaffordable);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

TEST(ReleaseServerTest, RefusalWithEmptyCacheFailsBatchTyped) {
  const Histogram truth = TestTruth();
  ReleaseServer server(truth, /*total_epsilon=*/0.05);
  Rng workload_rng(43);
  auto queries = RandomRangeWorkload(truth.size(), 10, workload_rng);
  ASSERT_TRUE(queries.ok());
  auto batch = server.AnswerBatch(queries.value(), {"dwork", 0.2, 1});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kResourceExhausted);
}

TEST(ReleaseServerTest, NeverPublishedDatasetFailsTypedAndNeverCountsStale) {
  // The degradation gap: with *nothing* ever published there is no stale
  // release to fall back to, so the batch must fail with the ledger's
  // typed refusal — and the stale counter must not move, because nothing
  // stale was served. (A counter bump here would make dashboards report a
  // degradation that never happened.)
  obs::Registry::Global().Reset();
  obs::Registry::Global().set_enabled(true);
  const Histogram truth = TestTruth();
  ReleaseServer server(truth, /*total_epsilon=*/0.05);
  Rng workload_rng(53);
  auto queries = RandomRangeWorkload(truth.size(), 10, workload_rng);
  ASSERT_TRUE(queries.ok());
  obs::Counter& stale =
      obs::Registry::Global().GetCounter("serve/batches_stale");
  obs::Counter& batches = obs::Registry::Global().GetCounter("serve/batches");
  const std::uint64_t stale_before = stale.value();
  const std::uint64_t batches_before = batches.value();

  auto refused = server.AnswerBatch(queries.value(), {"dwork", 0.2, 1});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stale.value(), stale_before);        // no phantom degradation
  EXPECT_EQ(batches.value(), batches_before + 1);  // the attempt counted
  EXPECT_EQ(server.cache().size(), 0u);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.0);
  obs::Registry::Global().set_enabled(false);
  obs::Registry::Global().Reset();
}

TEST(ReleaseServerTest, RetryPolicyDefaultsAreSingleShotAndDeadlineFree) {
  // Defaults must preserve the historical single-attempt behavior: a
  // non-transient failure surfaces immediately, and a deadline configured
  // alongside a successful first attempt never fires.
  const Histogram truth = TestTruth();
  FakeClock clock;
  ReleaseServerOptions options;
  options.clock = &clock;
  options.retry.deadline = std::chrono::milliseconds(1);
  ReleaseServer server(truth, 10.0, options);
  Rng workload_rng(59);
  auto queries = RandomRangeWorkload(truth.size(), 10, workload_rng);
  ASSERT_TRUE(queries.ok());

  auto ok = server.AnswerBatch(queries.value(), {"dwork", 0.2, 1});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(clock.total_slept(), std::chrono::nanoseconds(0));

  auto missing = server.AnswerBatch(queries.value(),
                                    {"no_such_algorithm", 0.2, 1});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(clock.total_slept(), std::chrono::nanoseconds(0));
}

TEST(ReleaseServerTest, StaleServePrefersSamePublisher) {
  const Histogram truth = TestTruth();
  ReleaseServer server(truth, /*total_epsilon=*/0.4);
  Rng workload_rng(47);
  auto queries = RandomRangeWorkload(truth.size(), 10, workload_rng);
  ASSERT_TRUE(queries.ok());

  ASSERT_TRUE(
      server.AnswerBatch(queries.value(), {"noise_first", 0.2, 1}).ok());
  ASSERT_TRUE(server.AnswerBatch(queries.value(), {"dwork", 0.2, 2}).ok());

  // noise_first is older than dwork, but a degraded noise_first request
  // must still prefer the noise_first release.
  auto same = server.AnswerBatch(queries.value(), {"noise_first", 0.2, 3});
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(same.value().stale);
  EXPECT_EQ(same.value().served.publisher, "noise_first");

  // A publisher with no cached release falls back to the newest of any.
  auto any = server.AnswerBatch(queries.value(), {"privelet", 0.2, 4});
  ASSERT_TRUE(any.ok());
  EXPECT_TRUE(any.value().stale);
  EXPECT_EQ(any.value().served.publisher, "dwork");
}

TEST(ReleaseServerTest, UnknownPublisherIsNotFound) {
  ReleaseServer server(TestTruth(), 1.0);
  auto release = server.GetRelease({"no_such_algorithm", 0.1, 1});
  ASSERT_FALSE(release.ok());
  EXPECT_EQ(release.status().code(), StatusCode::kNotFound);
  // An unknown publisher must not consume budget.
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.0);
}

TEST(ReleaseServerTest, OutOfDomainQueryRejected) {
  ReleaseServer server(TestTruth(16), 1.0);
  const std::vector<RangeQuery> bad = {{0, 17}};
  auto batch = server.AnswerBatch(bad, {"dwork", 0.1, 1});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReleaseServerTest, ChargesOncePerReleaseKey) {
  ReleaseServer server(TestTruth(), 10.0);
  const ServeRequest request{"dwork", 0.3, 5};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.GetRelease(request).ok());
  }
  EXPECT_EQ(server.ledger().charge_count(), 1u);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.3);
  // A different seed is a different release and a second charge.
  ASSERT_TRUE(server.GetRelease({"dwork", 0.3, 6}).ok());
  EXPECT_EQ(server.ledger().charge_count(), 2u);
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), 0.6);
}

}  // namespace
}  // namespace serve
}  // namespace dphist
