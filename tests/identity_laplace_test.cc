#include "dphist/algorithms/identity_laplace.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(IdentityLaplaceTest, Name) {
  EXPECT_EQ(IdentityLaplace().name(), "dwork");
}

TEST(IdentityLaplaceTest, RejectsBadArguments) {
  IdentityLaplace algo;
  Rng rng(1);
  EXPECT_FALSE(algo.Publish(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(algo.Publish(Histogram({1.0}), 0.0, rng).ok());
  EXPECT_FALSE(algo.Publish(Histogram({1.0}), -0.5, rng).ok());
}

TEST(IdentityLaplaceTest, PreservesSize) {
  IdentityLaplace algo;
  Rng rng(2);
  const Histogram truth({10.0, 20.0, 30.0, 40.0});
  auto out = algo.Publish(truth, 1.0, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), truth.size());
}

TEST(IdentityLaplaceTest, DeterministicGivenSeed) {
  IdentityLaplace algo;
  const Histogram truth({5.0, 5.0, 5.0});
  Rng rng_a(3);
  Rng rng_b(3);
  auto a = algo.Publish(truth, 0.5, rng_a);
  auto b = algo.Publish(truth, 0.5, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().counts(), b.value().counts());
}

TEST(IdentityLaplaceTest, PerBinErrorMatchesTheory) {
  // Mean squared per-bin error should approach 2/eps^2.
  IdentityLaplace algo;
  const double epsilon = 0.5;
  const Histogram truth(std::vector<double>(64, 100.0));
  Rng rng(4);
  double total_sq = 0.0;
  const int reps = 2000;
  for (int rep = 0; rep < reps; ++rep) {
    auto out = algo.Publish(truth, epsilon, rng);
    ASSERT_TRUE(out.ok());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      const double d = out.value().count(i) - truth.count(i);
      total_sq += d * d;
    }
  }
  const double mse = total_sq / (reps * static_cast<double>(truth.size()));
  const double expected = 2.0 / (epsilon * epsilon);
  EXPECT_NEAR(mse, expected, 0.05 * expected);
}

TEST(IdentityLaplaceTest, HigherEpsilonLessNoise) {
  IdentityLaplace algo;
  const Histogram truth(std::vector<double>(256, 50.0));
  Rng rng(5);
  double err_small_eps = 0.0;
  double err_large_eps = 0.0;
  for (int rep = 0; rep < 50; ++rep) {
    auto noisy_small = algo.Publish(truth, 0.01, rng);
    auto noisy_large = algo.Publish(truth, 1.0, rng);
    ASSERT_TRUE(noisy_small.ok());
    ASSERT_TRUE(noisy_large.ok());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      err_small_eps += std::abs(noisy_small.value().count(i) - 50.0);
      err_large_eps += std::abs(noisy_large.value().count(i) - 50.0);
    }
  }
  EXPECT_GT(err_small_eps, err_large_eps * 10);
}

}  // namespace
}  // namespace dphist
