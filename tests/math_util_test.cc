#include "dphist/common/math_util.h"

#include <cmath>
#include <cstddef>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(NextPowerOfTwoTest, SmallValues) {
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(4), 4u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(IsPowerOfTwoTest, Basics) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(1023));
}

// Property sweep: log2 helpers agree with the analytic definitions for all
// n up to 4096.
class Log2Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Log2Sweep, FloorAndCeilMatchMath) {
  const std::size_t n = GetParam();
  const double exact = std::log2(static_cast<double>(n));
  EXPECT_EQ(FloorLog2(n), static_cast<std::uint32_t>(std::floor(exact)));
  EXPECT_EQ(CeilLog2(n), static_cast<std::uint32_t>(std::ceil(exact)));
}

INSTANTIATE_TEST_SUITE_P(AllSmallSizes, Log2Sweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           31, 32, 33, 63, 64, 100, 127, 128,
                                           1000, 1023, 1024, 1025, 4095,
                                           4096));

TEST(Log2Test, ZeroEdgeCases) {
  EXPECT_EQ(FloorLog2(0), 0u);
  EXPECT_EQ(CeilLog2(0), 0u);
}

class CeilLogBaseSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(CeilLogBaseSweep, MatchesIteratedMultiplication) {
  const auto [n, base] = GetParam();
  const std::uint32_t levels = CeilLogBase(n, base);
  if (n <= 1) {
    EXPECT_EQ(levels, 0u);
    return;
  }
  // base^(levels-1) < n <= base^levels.
  double reach = 1.0;
  for (std::uint32_t i = 0; i < levels; ++i) {
    reach *= static_cast<double>(base);
  }
  EXPECT_GE(reach, static_cast<double>(n));
  EXPECT_LT(reach / static_cast<double>(base), static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Bases, CeilLogBaseSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 8, 9, 16, 27,
                                                      64, 100, 1000),
                       ::testing::Values<std::size_t>(2, 3, 4, 16)));

TEST(ClampTest, Basics) {
  EXPECT_EQ(Clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_EQ(Clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_EQ(Clamp(11.0, 0.0, 10.0), 10.0);
  EXPECT_EQ(Clamp(0.0, 0.0, 0.0), 0.0);
}

TEST(KahanSumTest, CompensatesSmallAdditions) {
  KahanSum acc;
  acc.Add(1.0e16);
  for (int i = 0; i < 10000; ++i) {
    acc.Add(1.0);
  }
  acc.Add(-1.0e16);
  EXPECT_NEAR(acc.Total(), 10000.0, 1.0);
}

TEST(PrefixSumsTest, MatchesNaive) {
  const std::vector<double> values = {1.0, -2.5, 3.0, 0.0, 10.25};
  const std::vector<double> prefix = PrefixSums(values);
  ASSERT_EQ(prefix.size(), values.size() + 1);
  EXPECT_EQ(prefix[0], 0.0);
  double running = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    running += values[i];
    EXPECT_DOUBLE_EQ(prefix[i + 1], running);
  }
}

TEST(PrefixSumsTest, EmptyInput) {
  const std::vector<double> prefix = PrefixSums({});
  ASSERT_EQ(prefix.size(), 1u);
  EXPECT_EQ(prefix[0], 0.0);
}

TEST(PrefixSumsOfSquaresTest, MatchesNaive) {
  const std::vector<double> values = {2.0, -3.0, 0.5};
  const std::vector<double> prefix = PrefixSumsOfSquares(values);
  EXPECT_DOUBLE_EQ(prefix[1], 4.0);
  EXPECT_DOUBLE_EQ(prefix[2], 13.0);
  EXPECT_DOUBLE_EQ(prefix[3], 13.25);
}

TEST(MeanVarianceTest, KnownValues) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_DOUBLE_EQ(Variance(values), 4.0);
}

TEST(MeanVarianceTest, DegenerateInputs) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({}), 0.0);
  EXPECT_EQ(Variance({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({3.0}), 3.0);
}

}  // namespace
}  // namespace dphist
