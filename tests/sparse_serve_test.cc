// Sparse datasets through the serving stack: registration, deterministic
// releases matching a direct publish, cache-hit coalescing with a single
// budget charge, batch answers equal to the sparse query path, budget
// refusal degrading to the newest cached release, journaled publications
// replaying exactly-once through Recover, and the sparse release frame
// served over a real loopback socket.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/algorithms/registry.h"
#include "dphist/common/status.h"
#include "dphist/common/thread_pool.h"
#include "dphist/net/client.h"
#include "dphist/net/server.h"
#include "dphist/net/wire_codec.h"
#include "dphist/query/sparse_query.h"
#include "dphist/random/rng.h"
#include "dphist/serve/journal.h"
#include "dphist/serve/release_server.h"
#include "dphist/sparse/sparse_histogram.h"

namespace dphist {
namespace serve {
namespace {

sparse::SparseHistogram TestTruth(std::uint64_t domain = 1ULL << 40) {
  std::vector<sparse::SparseEntry> entries;
  for (std::uint64_t i = 0; i < 24; ++i) {
    entries.push_back(
        {i * (domain / 32) + 7, 30.0 + static_cast<double>(i % 5) * 4.0});
  }
  auto truth = sparse::SparseHistogram::Create(domain, std::move(entries));
  EXPECT_TRUE(truth.ok()) << truth.status().ToString();
  return std::move(truth).value();
}

ServeRequest SparseRequest(std::uint64_t seed = 42) {
  ServeRequest request;
  request.publisher = "sparse_pure";
  request.epsilon = 1.0;
  request.seed = seed;
  return request;
}

TEST(SparseServeTest, ReleaseMatchesDirectPublish) {
  ReleaseServer server;
  ASSERT_TRUE(
      server.AddSparseDataset({"default", "default"}, TestTruth(), 10.0).ok());
  auto release = server.GetRelease(SparseRequest());
  ASSERT_TRUE(release.ok()) << release.status().ToString();
  ASSERT_TRUE(release.value()->is_sparse());

  auto publisher = PublisherRegistry::MakeSparse("sparse_pure");
  ASSERT_TRUE(publisher.ok());
  Rng rng(42);
  auto direct = publisher.value()->Publish(TestTruth(), 1.0, rng);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(release.value()->sparse_histogram() == direct.value());
}

TEST(SparseServeTest, CacheHitChargesOnce) {
  ReleaseServer server;
  ASSERT_TRUE(
      server.AddSparseDataset({"default", "default"}, TestTruth(), 10.0).ok());
  auto first = server.GetRelease(SparseRequest());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const double spent = server.ledger().spent_epsilon();
  EXPECT_DOUBLE_EQ(spent, 1.0);
  auto second = server.GetRelease(SparseRequest());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_DOUBLE_EQ(server.ledger().spent_epsilon(), spent);
}

TEST(SparseServeTest, BatchAnswersMatchSparseQueryPath) {
  const sparse::SparseHistogram truth = TestTruth();
  ReleaseServer server;
  ASSERT_TRUE(
      server.AddSparseDataset({"default", "default"}, truth, 10.0).ok());
  const std::vector<RangeQuery> queries = {
      {0, static_cast<std::size_t>(truth.domain_size())},
      {0, 1000},
      {static_cast<std::size_t>(truth.domain_size() / 2),
       static_cast<std::size_t>(truth.domain_size())}};
  auto batch = server.AnswerBatch(queries, SparseRequest());
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_FALSE(batch.value().stale);

  auto release = server.GetRelease(SparseRequest());
  ASSERT_TRUE(release.ok());
  auto expected =
      AnswerQueriesSparse(release.value()->sparse_histogram(), queries);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(batch.value().answers, expected.value());
}

TEST(SparseServeTest, OutOfDomainQueryRejected) {
  const sparse::SparseHistogram truth = TestTruth();
  ReleaseServer server;
  ASSERT_TRUE(
      server.AddSparseDataset({"default", "default"}, truth, 10.0).ok());
  const std::vector<RangeQuery> queries = {
      {0, static_cast<std::size_t>(truth.domain_size()) + 1}};
  auto batch = server.AnswerBatch(queries, SparseRequest());
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
}

TEST(SparseServeTest, DensePublisherOnSparseDatasetIsNotFound) {
  ReleaseServer server;
  ASSERT_TRUE(
      server.AddSparseDataset({"default", "default"}, TestTruth(), 10.0).ok());
  ServeRequest request = SparseRequest();
  request.publisher = "noise_first";
  auto release = server.GetRelease(request);
  ASSERT_FALSE(release.ok());
  EXPECT_EQ(release.status().code(), StatusCode::kNotFound);
}

TEST(SparseServeTest, BudgetRefusalDegradesToNewestCachedRelease) {
  ReleaseServer server;
  ASSERT_TRUE(
      server.AddSparseDataset({"default", "default"}, TestTruth(), 1.5).ok());
  const std::vector<RangeQuery> queries = {{0, 1000000}};
  auto first = server.AnswerBatch(queries, SparseRequest(1));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().stale);
  // Second distinct release (seed 2) would cost another 1.0 > remaining
  // 0.5: the batch degrades to the cached seed-1 release.
  auto degraded = server.AnswerBatch(queries, SparseRequest(2));
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded.value().stale);
  EXPECT_EQ(degraded.value().served.seed, 1u);
  EXPECT_EQ(degraded.value().answers, first.value().answers);
}

class SparseJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/sparse_serve_journal.jnl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(SparseJournalTest, PublicationsReplayExactlyOnceThroughRecover) {
  const sparse::SparseHistogram truth = TestTruth();
  sparse::SparseHistogram published;
  double spent_before_crash = 0.0;
  {
    auto journal = Journal::Open(path_);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    ReleaseServerOptions options;
    options.journal = journal.value().get();
    ReleaseServer server(options);
    ASSERT_TRUE(
        server.AddSparseDataset({"default", "default"}, truth, 10.0).ok());
    auto release = server.GetRelease(SparseRequest());
    ASSERT_TRUE(release.ok()) << release.status().ToString();
    published = release.value()->sparse_histogram();
    spent_before_crash = server.ledger().spent_epsilon();
  }  // "crash": server and journal handle dropped

  auto replay = ReplayJournalFile(path_);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ReleaseServer recovered;
  ASSERT_TRUE(
      recovered.AddSparseDataset({"default", "default"}, truth, 10.0).ok());
  auto stats = recovered.Recover(replay.value());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().releases_replayed, 1u);
  EXPECT_EQ(stats.value().charges_replayed, 1u);
  EXPECT_EQ(stats.value().skipped, 0u);
  EXPECT_DOUBLE_EQ(recovered.ledger().spent_epsilon(),
                   spent_before_crash);

  // The recovered release serves as a cache hit: identical bytes, no new
  // charge.
  auto release = recovered.GetRelease(SparseRequest());
  ASSERT_TRUE(release.ok()) << release.status().ToString();
  EXPECT_TRUE(release.value()->sparse_histogram() == published);
  EXPECT_DOUBLE_EQ(recovered.ledger().spent_epsilon(),
                   spent_before_crash);

  // Replaying the same journal again is idempotent: the insert is a no-op
  // and no spend is double-counted... except charges, which Recover
  // re-applies into the ledger by design — so recover into a fresh server
  // instead and observe identical results.
  ReleaseServer again;
  ASSERT_TRUE(
      again.AddSparseDataset({"default", "default"}, truth, 10.0).ok());
  auto stats_again = again.Recover(replay.value());
  ASSERT_TRUE(stats_again.ok());
  EXPECT_EQ(stats_again.value().releases_replayed, 1u);
  auto release_again = again.GetRelease(SparseRequest());
  ASSERT_TRUE(release_again.ok());
  EXPECT_TRUE(release_again.value()->sparse_histogram() == published);
}

TEST_F(SparseJournalTest, FingerprintMismatchSkipsReplay) {
  {
    auto journal = Journal::Open(path_);
    ASSERT_TRUE(journal.ok());
    ReleaseServerOptions options;
    options.journal = journal.value().get();
    ReleaseServer server(options);
    ASSERT_TRUE(
        server.AddSparseDataset({"default", "default"}, TestTruth(), 10.0)
            .ok());
    ASSERT_TRUE(server.GetRelease(SparseRequest()).ok());
  }
  auto replay = ReplayJournalFile(path_);
  ASSERT_TRUE(replay.ok());
  // Re-register with a DIFFERENT truth: the journaled release talks about
  // data this server does not hold, so it must be skipped, not served.
  ReleaseServer recovered;
  ASSERT_TRUE(recovered
                  .AddSparseDataset({"default", "default"},
                                    TestTruth(1ULL << 30), 10.0)
                  .ok());
  auto stats = recovered.Recover(replay.value());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().releases_replayed, 0u);
  EXPECT_GE(stats.value().skipped, 1u);
}

TEST(SparseNetTest, SparseReleaseShipsOverLoopbackInBothCodecs) {
  ThreadPool pool(2);
  ReleaseServer release_server;
  ASSERT_TRUE(
      release_server.AddSparseDataset({"default", "default"}, TestTruth(), 10.0)
          .ok());
  net::NetServerOptions options;
  options.pool = &pool;
  net::NetServer server(&release_server, options);
  ASSERT_TRUE(server.Start().ok());

  auto expected = release_server.GetRelease(SparseRequest());
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (const bool binary : {true, false}) {
    net::NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    net::WireQueryRequest query;
    query.request = SparseRequest();
    auto wire = client.SparseRelease(query, binary);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EXPECT_EQ(wire.value().domain_size,
              expected.value()->sparse_histogram().domain_size());
    const auto& entries = expected.value()->sparse_histogram().entries();
    ASSERT_EQ(wire.value().keys.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(wire.value().keys[i], entries[i].key);
      EXPECT_EQ(wire.value().counts[i], entries[i].count);
    }
  }
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace dphist
