#include "dphist/random/distributions.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

constexpr int kDraws = 200000;

TEST(UniformDoubleTest, InHalfOpenUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = SampleUniformDouble(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(UniformDoubleTest, MeanNearHalf) {
  Rng rng(2);
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum += SampleUniformDouble(rng);
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(UniformDoublePositiveTest, NeverZero) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_GT(SampleUniformDoublePositive(rng), 0.0);
  }
}

TEST(UniformIntTest, RespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = SampleUniformInt(rng, -5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(UniformIntTest, SingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleUniformInt(rng, 9, 9), 9);
  }
}

TEST(UniformIntTest, ApproximatelyUniform) {
  Rng rng(6);
  std::map<std::int64_t, int> counts;
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    ++counts[SampleUniformInt(rng, 0, 5)];
  }
  for (std::int64_t v = 0; v <= 5; ++v) {
    EXPECT_NEAR(counts[v], draws / 6.0, draws * 0.01);
  }
}

TEST(SampleIndexTest, CoversAllIndices) {
  Rng rng(7);
  std::vector<int> hit(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++hit[SampleIndex(rng, 8)];
  }
  for (int h : hit) {
    EXPECT_GT(h, 0);
  }
}

TEST(SampleIndexTest, HugeDomainsNeverProduceOutOfRangeIndices) {
  // Regression: the old implementation round-tripped n through int64, which
  // is undefined for n > 2^63 and could yield indices >= n. The rewrite
  // rejection-samples in unsigned space.
  Rng rng(12);
  const std::size_t huge = (std::size_t{1} << 63) + 1;
  bool saw_upper_half = false;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t v = SampleIndex(rng, huge);
    ASSERT_LT(v, huge);
    saw_upper_half = saw_upper_half || v >= huge / 2;
  }
  // A sign-confused implementation would be pinned to one half of the range.
  EXPECT_TRUE(saw_upper_half);
}

TEST(SampleIndexTest, NonPowerOfTwoHugeSpanCoversBothHalves) {
  Rng rng(13);
  const std::size_t n = (std::size_t{1} << 63) + (std::size_t{1} << 62);
  int low = 0;
  int high = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::size_t v = SampleIndex(rng, n);
    ASSERT_LT(v, n);
    (v < n / 2 ? low : high) += 1;
  }
  EXPECT_GT(low, 0);
  EXPECT_GT(high, 0);
}

TEST(SampleIndexTest, ZeroMeansFullUnsignedRange) {
  // n == 0 is the documented "whole uint64 range" convention.
  Rng a(14);
  Rng b(14);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(SampleIndex(a, 0), static_cast<std::size_t>(b.NextUint64()));
  }
}

TEST(SampleIndexTest, SmallDomainsRemainUnbiased) {
  // The rejection-sampling rewrite must not skew small domains: chi-square
  // against uniform over 7 buckets (non-power-of-two to exercise the
  // rejection path); 6 dof, alpha 1e-3 critical value 22.46.
  Rng rng(15);
  const int draws = 70000;
  std::vector<int> hits(7, 0);
  for (int i = 0; i < draws; ++i) {
    ++hits[SampleIndex(rng, 7)];
  }
  const double expected = draws / 7.0;
  double chi_sq = 0.0;
  for (int h : hits) {
    const double d = h - expected;
    chi_sq += d * d / expected;
  }
  EXPECT_LT(chi_sq, 22.46);
}

TEST(ExponentialTest, MeanMatchesRate) {
  Rng rng(8);
  const double rate = 2.5;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = SampleExponential(rng, rate);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 1.0 / rate, 0.01);
}

TEST(LaplaceTest, MeanZeroVarianceTwoScaleSquared) {
  Rng rng(9);
  const double scale = 3.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = SampleLaplace(rng, scale);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 2.0 * scale * scale, 0.5);
}

TEST(LaplaceTest, MedianAbsoluteDeviationMatches) {
  // P(|X| <= b ln 2) = 1/2 for Laplace(b).
  Rng rng(10);
  const double scale = 1.0;
  int inside = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (std::abs(SampleLaplace(rng, scale)) <= scale * std::log(2.0)) {
      ++inside;
    }
  }
  EXPECT_NEAR(static_cast<double>(inside) / kDraws, 0.5, 0.01);
}

TEST(GumbelTest, MeanIsEulerGamma) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum += SampleGumbel(rng);
  }
  EXPECT_NEAR(sum / kDraws, 0.5772156649, 0.02);
}

TEST(GeometricTest, MeanMatches) {
  Rng rng(12);
  const double p = 0.3;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const std::int64_t k = SampleGeometric(rng, p);
    EXPECT_GE(k, 0);
    sum += static_cast<double>(k);
  }
  // E[X] = (1-p)/p for support {0,1,...}.
  EXPECT_NEAR(sum / kDraws, (1.0 - p) / p, 0.05);
}

TEST(GeometricTest, PEqualOneIsAlwaysZero) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleGeometric(rng, 1.0), 0);
  }
}

TEST(TwoSidedGeometricTest, ZeroAlphaIsDeterministic) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleTwoSidedGeometric(rng, 0.0), 0);
  }
}

TEST(TwoSidedGeometricTest, SymmetricAndCorrectMass) {
  Rng rng(15);
  const double alpha = std::exp(-1.0);  // epsilon = 1, sensitivity = 1
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[SampleTwoSidedGeometric(rng, alpha)];
  }
  // P[X = k] = (1-alpha)/(1+alpha) * alpha^|k|.
  const double p0 = (1.0 - alpha) / (1.0 + alpha);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, p0, 0.01);
  for (std::int64_t k = 1; k <= 3; ++k) {
    const double expected = p0 * std::pow(alpha, static_cast<double>(k));
    EXPECT_NEAR(static_cast<double>(counts[k]) / kDraws, expected, 0.01);
    EXPECT_NEAR(static_cast<double>(counts[-k]) / kDraws, expected, 0.01);
  }
}

TEST(TwoSidedGeometricTest, VarianceMatchesFormula) {
  Rng rng(16);
  const double alpha = 0.5;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x =
        static_cast<double>(SampleTwoSidedGeometric(rng, alpha));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 2.0 * alpha / ((1 - alpha) * (1 - alpha)), 0.2);
}

TEST(SampleFromLogWeightsTest, MatchesSoftmaxFrequencies) {
  Rng rng(17);
  const std::vector<double> log_weights = {0.0, 1.0, 2.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[SampleFromLogWeights(rng, log_weights)];
  }
  const double z = 1.0 + std::exp(1.0) + std::exp(2.0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 1.0 / z, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), std::exp(1.0) / z,
              0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), std::exp(2.0) / z,
              0.01);
}

TEST(SampleFromLogWeightsTest, NeverPicksMinusInfinity) {
  Rng rng(18);
  const double neg_inf = -std::numeric_limits<double>::infinity();
  const std::vector<double> log_weights = {neg_inf, 0.0, neg_inf};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(SampleFromLogWeights(rng, log_weights), 1u);
  }
}

TEST(SampleFromLogWeightsTest, AllMinusInfinityFallsBackToZero) {
  Rng rng(19);
  const double neg_inf = -std::numeric_limits<double>::infinity();
  EXPECT_EQ(SampleFromLogWeights(rng, {neg_inf, neg_inf}), 0u);
}

TEST(SampleFromLogWeightsTest, HugeUtilitiesDoNotOverflow) {
  Rng rng(20);
  // Raw exp() of these would overflow; the Gumbel trick must not.
  const std::vector<double> log_weights = {1.0e8, 1.0e8 + 1.0};
  int picked_second = 0;
  for (int i = 0; i < 1000; ++i) {
    picked_second += SampleFromLogWeights(rng, log_weights) == 1 ? 1 : 0;
  }
  // Second option is e times likelier: expect clear majority.
  EXPECT_GT(picked_second, 600);
}

}  // namespace
}  // namespace dphist
