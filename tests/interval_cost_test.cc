#include "dphist/hist/interval_cost.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace {

double NaiveMean(const std::vector<double>& x, std::size_t b, std::size_t e) {
  double sum = 0.0;
  for (std::size_t i = b; i < e; ++i) {
    sum += x[i];
  }
  return sum / static_cast<double>(e - b);
}

double NaiveSse(const std::vector<double>& x, std::size_t b, std::size_t e) {
  const double mu = NaiveMean(x, b, e);
  double sse = 0.0;
  for (std::size_t i = b; i < e; ++i) {
    sse += (x[i] - mu) * (x[i] - mu);
  }
  return sse;
}

double NaiveSae(const std::vector<double>& x, std::size_t b, std::size_t e) {
  const double mu = NaiveMean(x, b, e);
  double sae = 0.0;
  for (std::size_t i = b; i < e; ++i) {
    sae += std::abs(x[i] - mu);
  }
  return sae;
}

std::vector<double> RandomCounts(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> counts(n, 0.0);
  for (double& c : counts) {
    c = static_cast<double>(SampleUniformInt(rng, 0, 100));
  }
  return counts;
}

TEST(IntervalCostTest, RejectsEmptyAndZeroGrid) {
  IntervalCostTable::Options options;
  EXPECT_FALSE(IntervalCostTable::Create({}, options).ok());
  options.grid_step = 0;
  EXPECT_FALSE(IntervalCostTable::Create({1.0}, options).ok());
}

TEST(IntervalCostTest, PositionsCoverDomain) {
  IntervalCostTable::Options options;
  options.grid_step = 3;
  auto table = IntervalCostTable::Create(RandomCounts(10, 1), options);
  ASSERT_TRUE(table.ok());
  const std::vector<std::size_t> expected = {0, 3, 6, 9, 10};
  EXPECT_EQ(table.value().positions(), expected);
  EXPECT_EQ(table.value().num_candidates(), 4u);
}

TEST(IntervalCostTest, PositionsWhenGridDividesDomain) {
  IntervalCostTable::Options options;
  options.grid_step = 5;
  auto table = IntervalCostTable::Create(RandomCounts(10, 2), options);
  ASSERT_TRUE(table.ok());
  const std::vector<std::size_t> expected = {0, 5, 10};
  EXPECT_EQ(table.value().positions(), expected);
}

TEST(IntervalCostTest, SquaredMatchesNaiveAllIntervals) {
  const std::vector<double> counts = RandomCounts(24, 3);
  IntervalCostTable::Options options;
  options.kind = CostKind::kSquared;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  const auto& positions = table.value().positions();
  for (std::size_t a = 0; a + 1 < positions.size(); ++a) {
    for (std::size_t b = a + 1; b < positions.size(); ++b) {
      EXPECT_NEAR(table.value().CostBetween(a, b),
                  NaiveSse(counts, positions[a], positions[b]), 1e-6)
          << "interval [" << positions[a] << "," << positions[b] << ")";
    }
  }
}

TEST(IntervalCostTest, AbsoluteMatchesNaiveAllIntervals) {
  const std::vector<double> counts = RandomCounts(24, 4);
  IntervalCostTable::Options options;
  options.kind = CostKind::kAbsolute;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  const auto& positions = table.value().positions();
  for (std::size_t a = 0; a + 1 < positions.size(); ++a) {
    for (std::size_t b = a + 1; b < positions.size(); ++b) {
      EXPECT_NEAR(table.value().CostBetween(a, b),
                  NaiveSae(counts, positions[a], positions[b]), 1e-6)
          << "interval [" << positions[a] << "," << positions[b] << ")";
    }
  }
}

TEST(IntervalCostTest, AbsoluteWithGridMatchesNaive) {
  const std::vector<double> counts = RandomCounts(30, 5);
  IntervalCostTable::Options options;
  options.kind = CostKind::kAbsolute;
  options.grid_step = 4;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  const auto& positions = table.value().positions();
  for (std::size_t a = 0; a + 1 < positions.size(); ++a) {
    for (std::size_t b = a + 1; b < positions.size(); ++b) {
      EXPECT_NEAR(table.value().CostBetween(a, b),
                  NaiveSae(counts, positions[a], positions[b]), 1e-6);
    }
  }
}

TEST(IntervalCostTest, NegativeCountsSupported) {
  // Noisy histograms have negative counts; both cost kinds must handle
  // them (NoiseFirst runs the DP on noisy data).
  std::vector<double> counts = {-3.5, 2.0, -1.0, 4.0, 0.0, -2.25};
  for (CostKind kind : {CostKind::kSquared, CostKind::kAbsolute}) {
    IntervalCostTable::Options options;
    options.kind = kind;
    auto table = IntervalCostTable::Create(counts, options);
    ASSERT_TRUE(table.ok());
    for (std::size_t a = 0; a < counts.size(); ++a) {
      for (std::size_t b = a + 1; b <= counts.size(); ++b) {
        const double want = kind == CostKind::kSquared
                                ? NaiveSse(counts, a, b)
                                : NaiveSae(counts, a, b);
        EXPECT_NEAR(table.value().CostBetween(a, b), want, 1e-9);
      }
    }
  }
}

TEST(IntervalCostTest, ConstantIntervalHasZeroCost) {
  const std::vector<double> counts(16, 7.0);
  for (CostKind kind : {CostKind::kSquared, CostKind::kAbsolute}) {
    IntervalCostTable::Options options;
    options.kind = kind;
    auto table = IntervalCostTable::Create(counts, options);
    ASSERT_TRUE(table.ok());
    EXPECT_DOUBLE_EQ(table.value().CostBetween(0, 16), 0.0);
    EXPECT_DOUBLE_EQ(table.value().CostBetween(3, 9), 0.0);
  }
}

TEST(IntervalCostTest, MeanOfMatchesNaive) {
  const std::vector<double> counts = RandomCounts(12, 6);
  IntervalCostTable::Options options;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(table.value().MeanOf(2, 9), NaiveMean(counts, 2, 9), 1e-9);
  EXPECT_NEAR(table.value().MeanOf(0, 12), NaiveMean(counts, 0, 12), 1e-9);
}

TEST(IntervalCostTest, SquaredCostOfAvailableForAbsoluteTables) {
  const std::vector<double> counts = RandomCounts(12, 7);
  IntervalCostTable::Options options;
  options.kind = CostKind::kAbsolute;
  auto table = IntervalCostTable::Create(counts, options);
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(table.value().SquaredCostOf(1, 10), NaiveSse(counts, 1, 10),
              1e-6);
}

TEST(IntervalCostTest, CellCapEnforced) {
  IntervalCostTable::Options options;
  options.kind = CostKind::kAbsolute;
  options.max_table_cells = 16;  // packed triangle m(m-1)/2 must fit
  auto table = IntervalCostTable::Create(RandomCounts(64, 8), options);
  EXPECT_FALSE(table.ok());
  options.grid_step = 32;  // m+1 == 3 candidates -> fits
  auto coarse = IntervalCostTable::Create(RandomCounts(64, 8), options);
  EXPECT_TRUE(coarse.ok());
}

TEST(IntervalCostTest, CellCapExactTriangleBoundary) {
  // The absolute store is the packed a < b triangle over the m positions:
  // exactly m(m-1)/2 doubles. The cap must bite at that exact count — one
  // cell under fails, the exact size passes — so this test breaks if the
  // storage ever silently grows back to the dense m^2 matrix.
  const std::vector<double> counts = RandomCounts(16, 14);
  IntervalCostTable::Options options;
  options.kind = CostKind::kAbsolute;
  const std::size_t positions = counts.size() + 1;  // grid_step 1
  const std::size_t triangle = positions * (positions - 1) / 2;
  options.max_table_cells = triangle;
  EXPECT_TRUE(IntervalCostTable::Create(counts, options).ok());
  options.max_table_cells = triangle - 1;
  EXPECT_FALSE(IntervalCostTable::Create(counts, options).ok());
}

TEST(IntervalCostTest, PackedTriangleMatchesRecomputationEverywhere) {
  // Regression guard for the packed layout: every stored cell, read both
  // through CostBetween and through the raw column pointer the DP kernels
  // use, must equal a from-scratch SAE recomputation. An off-by-one in the
  // b(b-1)/2 column offsets would corrupt neighboring intervals rather
  // than fail loudly, so the sweep covers the full triangle including the
  // a = 0 column starts and the b = m-1 last column.
  for (const std::size_t grid_step : {std::size_t{1}, std::size_t{3}}) {
    const std::vector<double> counts = RandomCounts(41, 15);
    IntervalCostTable::Options options;
    options.kind = CostKind::kAbsolute;
    options.grid_step = grid_step;
    auto table = IntervalCostTable::Create(counts, options);
    ASSERT_TRUE(table.ok());
    const auto& positions = table.value().positions();
    for (std::size_t b = 1; b < positions.size(); ++b) {
      const double* column = table.value().AbsoluteColumn(b);
      for (std::size_t a = 0; a < b; ++a) {
        const double want = NaiveSae(counts, positions[a], positions[b]);
        EXPECT_NEAR(table.value().CostBetween(a, b), want, 1e-9)
            << "grid=" << grid_step << " a=" << a << " b=" << b;
        // The packed column and the checked accessor must read the same
        // cell (bitwise — both index the same array).
        EXPECT_EQ(column[a], table.value().CostBetween(a, b))
            << "grid=" << grid_step << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(IntervalCostTest, CostKindNames) {
  EXPECT_STREQ(CostKindName(CostKind::kSquared), "squared");
  EXPECT_STREQ(CostKindName(CostKind::kAbsolute), "absolute");
}

}  // namespace
}  // namespace dphist
