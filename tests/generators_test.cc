#include "dphist/data/generators.h"

#include <cstddef>

#include <gtest/gtest.h>

#include "dphist/data/dataset.h"

namespace dphist {
namespace {

TEST(GeneratorsTest, AgeShape) {
  const Dataset age = MakeAge(1);
  EXPECT_EQ(age.name, "age");
  EXPECT_EQ(age.histogram.size(), 100u);
  const DatasetStats stats = ComputeStats(age);
  EXPECT_NEAR(stats.total_records, 1.0e6, 0.05e6);
  // Smooth pyramid: the bulk of mass sits in working ages.
  const double young = age.histogram.RangeSum(25, 65).value();
  const double old = age.histogram.RangeSum(85, 100).value();
  EXPECT_GT(young, old * 5.0);
}

TEST(GeneratorsTest, AgeIsDeterministic) {
  EXPECT_EQ(MakeAge(7).histogram.counts(), MakeAge(7).histogram.counts());
  EXPECT_NE(MakeAge(7).histogram.counts(), MakeAge(8).histogram.counts());
}

TEST(GeneratorsTest, NetTraceIsSparseAndSpiky) {
  const Dataset trace = MakeNetTrace(2048, 2);
  EXPECT_EQ(trace.histogram.size(), 2048u);
  const DatasetStats stats = ComputeStats(trace);
  // Sparse: far fewer than half the bins are occupied.
  EXPECT_LT(stats.nonzero_bins, trace.histogram.size() / 2);
  // Spiky: the max dwarfs the mean.
  EXPECT_GT(stats.max_count, 50.0 * stats.mean_count);
}

TEST(GeneratorsTest, SearchLogsIsBusy) {
  const Dataset logs = MakeSearchLogs(1024, 3);
  EXPECT_EQ(logs.histogram.size(), 1024u);
  const DatasetStats stats = ComputeStats(logs);
  // Bursty but dense: most bins have activity.
  EXPECT_GT(stats.nonzero_bins, logs.histogram.size() / 2);
  EXPECT_GT(stats.max_count, 4.0 * stats.mean_count);
}

TEST(GeneratorsTest, SocialNetworkHasDecayingTail) {
  const Dataset social = MakeSocialNetwork(512, 4);
  EXPECT_EQ(social.histogram.size(), 512u);
  // Power law: low degrees dominate, tail nearly empty.
  const double head = social.histogram.RangeSum(0, 8).value();
  const double tail = social.histogram.RangeSum(256, 512).value();
  EXPECT_GT(head, 100.0 * (tail + 1.0));
}

TEST(GeneratorsTest, UniformIsNearLevel) {
  const Dataset uniform = MakeUniform(100, 50.0, 5);
  for (double c : uniform.histogram.counts()) {
    EXPECT_GE(c, 48.0);
    EXPECT_LE(c, 52.0);
  }
}

TEST(GeneratorsTest, PiecewiseConstantHasPlateaus) {
  const Dataset pw = MakePiecewiseConstant(100, 5, 1000.0, 6);
  EXPECT_EQ(pw.histogram.size(), 100u);
  // Count distinct levels: at most num_segments + rounding.
  std::size_t changes = 0;
  for (std::size_t i = 1; i < pw.histogram.size(); ++i) {
    if (pw.histogram.count(i) != pw.histogram.count(i - 1)) {
      ++changes;
    }
  }
  EXPECT_LE(changes, 5u);
}

TEST(GeneratorsTest, AllCountsNonNegativeIntegers) {
  for (const Dataset& d : MakePaperSuite(512, 9)) {
    for (double c : d.histogram.counts()) {
      EXPECT_GE(c, 0.0) << d.name;
      EXPECT_DOUBLE_EQ(c, static_cast<double>(static_cast<long long>(c)))
          << d.name;
    }
  }
}

TEST(GeneratorsTest, PaperSuiteComposition) {
  const std::vector<Dataset> suite = MakePaperSuite(1024, 10);
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "age");
  EXPECT_EQ(suite[1].name, "nettrace");
  EXPECT_EQ(suite[2].name, "searchlogs");
  EXPECT_EQ(suite[3].name, "social");
  EXPECT_EQ(suite[1].histogram.size(), 1024u);
  EXPECT_EQ(suite[3].histogram.size(), 256u);
}

TEST(GeneratorsTest, ComputeStatsBasics) {
  Dataset d;
  d.name = "toy";
  d.histogram = Histogram({0.0, 2.0, 0.0, 6.0});
  const DatasetStats stats = ComputeStats(d);
  EXPECT_EQ(stats.domain_size, 4u);
  EXPECT_DOUBLE_EQ(stats.total_records, 8.0);
  EXPECT_EQ(stats.nonzero_bins, 2u);
  EXPECT_DOUBLE_EQ(stats.max_count, 6.0);
  EXPECT_DOUBLE_EQ(stats.mean_count, 2.0);
}

}  // namespace
}  // namespace dphist
