#include "dphist/common/env.h"

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace dphist {
namespace {

// Sets an environment variable for the lifetime of one test and restores
// the previous state (set-or-unset) on destruction, so tests cannot leak
// configuration into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

constexpr char kVar[] = "DPHIST_ENV_TEST_VAR";

TEST(EnvTest, GetEnvUnsetIsNullopt) {
  ScopedEnv env(kVar, nullptr);
  EXPECT_FALSE(GetEnv(kVar).has_value());
}

TEST(EnvTest, GetEnvEmptyIsNullopt) {
  ScopedEnv env(kVar, "");
  EXPECT_FALSE(GetEnv(kVar).has_value());
}

TEST(EnvTest, GetEnvReturnsValue) {
  ScopedEnv env(kVar, "hello");
  ASSERT_TRUE(GetEnv(kVar).has_value());
  EXPECT_EQ(*GetEnv(kVar), "hello");
}

TEST(EnvTest, PositiveIntParses) {
  ScopedEnv env(kVar, "8");
  ASSERT_TRUE(GetEnvPositiveInt(kVar).has_value());
  EXPECT_EQ(*GetEnvPositiveInt(kVar), 8u);
}

TEST(EnvTest, PositiveIntRejectsZeroAndNegative) {
  {
    ScopedEnv env(kVar, "0");
    EXPECT_FALSE(GetEnvPositiveInt(kVar).has_value());
  }
  {
    ScopedEnv env(kVar, "-4");
    EXPECT_FALSE(GetEnvPositiveInt(kVar).has_value());
  }
}

TEST(EnvTest, PositiveIntRejectsTrailingGarbage) {
  // strtol-style parsing would stop at the 'x' and accept 8; the strict
  // parse must refuse the whole value so the caller falls back to its
  // default instead of half-reading a typo.
  ScopedEnv env(kVar, "8x");
  EXPECT_FALSE(GetEnvPositiveInt(kVar).has_value());
  ScopedEnv env2(kVar, "8 ");
  EXPECT_FALSE(GetEnvPositiveInt(kVar).has_value());
}

TEST(EnvTest, PositiveIntRejectsLeadingJunk) {
  {
    ScopedEnv env(kVar, " 8");
    EXPECT_FALSE(GetEnvPositiveInt(kVar).has_value());
  }
  {
    ScopedEnv env(kVar, "+8");
    EXPECT_FALSE(GetEnvPositiveInt(kVar).has_value());
  }
  {
    ScopedEnv env(kVar, "0x10");
    EXPECT_FALSE(GetEnvPositiveInt(kVar).has_value());
  }
}

TEST(EnvTest, PositiveIntRejectsOutOfRange) {
  // Regression for the ERANGE bug: strtol saturates
  // 99999999999999999999 to LONG_MAX, and with errno unchecked the absurd
  // value was *accepted* as a thread count. Out-of-range must mean
  // "fall back to the default", i.e. nullopt.
  ScopedEnv env(kVar, "99999999999999999999");
  EXPECT_FALSE(GetEnvPositiveInt(kVar).has_value());
}

TEST(EnvTest, PositiveIntSizeMaxBoundary) {
  // SIZE_MAX itself is representable and accepted; one past it overflows
  // std::size_t and is rejected.
  const std::uint64_t size_max = std::numeric_limits<std::size_t>::max();
  {
    ScopedEnv env(kVar, std::to_string(size_max).c_str());
    ASSERT_TRUE(GetEnvPositiveInt(kVar).has_value());
    EXPECT_EQ(*GetEnvPositiveInt(kVar), size_max);
  }
  {
    // SIZE_MAX + 1 == 18446744073709551616 on 64-bit targets; build the
    // string by incrementing the decimal digits so the test does not
    // depend on 128-bit arithmetic.
    std::string over = std::to_string(size_max);
    int i = static_cast<int>(over.size()) - 1;
    for (; i >= 0; --i) {
      if (over[i] != '9') {
        ++over[i];
        break;
      }
      over[i] = '0';
    }
    if (i < 0) {
      over.insert(over.begin(), '1');
    }
    ScopedEnv env(kVar, over.c_str());
    EXPECT_FALSE(GetEnvPositiveInt(kVar).has_value());
  }
}

TEST(EnvTest, PositiveIntUnsetOrEmptyIsNullopt) {
  {
    ScopedEnv env(kVar, nullptr);
    EXPECT_FALSE(GetEnvPositiveInt(kVar).has_value());
  }
  {
    ScopedEnv env(kVar, "");
    EXPECT_FALSE(GetEnvPositiveInt(kVar).has_value());
  }
}

}  // namespace
}  // namespace dphist
