#include "dphist/algorithms/grouping_smoothing.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dphist/random/rng.h"

namespace dphist {
namespace {

TEST(GroupingSmoothingTest, Name) {
  EXPECT_EQ(GroupingSmoothing().name(), "gs");
}

TEST(GroupingSmoothingTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(GroupingSmoothing().Publish(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(GroupingSmoothing().Publish(Histogram({1.0}), 0.0, rng).ok());
  GroupingSmoothing::Options options;
  options.group_size = 0;
  EXPECT_FALSE(
      GroupingSmoothing(options).Publish(Histogram({1.0}), 1.0, rng).ok());
}

TEST(GroupingSmoothingTest, PreservesSizeAndDeterminism) {
  GroupingSmoothing algo;
  const Histogram truth(std::vector<double>(30, 7.0));
  Rng a(2);
  Rng b(2);
  auto out_a = algo.Publish(truth, 1.0, a);
  auto out_b = algo.Publish(truth, 1.0, b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(out_a.value().size(), 30u);
  EXPECT_EQ(out_a.value().counts(), out_b.value().counts());
}

TEST(GroupingSmoothingTest, ValuesConstantWithinGroups) {
  GroupingSmoothing::Options options;
  options.group_size = 4;
  GroupingSmoothing algo(options);
  const Histogram truth(std::vector<double>(16, 9.0));
  Rng rng(3);
  auto out = algo.Publish(truth, 1.0, rng);
  ASSERT_TRUE(out.ok());
  for (std::size_t g = 0; g < 4; ++g) {
    for (std::size_t i = 1; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(out.value().count(4 * g + i),
                       out.value().count(4 * g));
    }
  }
}

TEST(GroupingSmoothingTest, GroupSizeOneIsDworkLike) {
  GroupingSmoothing::Options options;
  options.group_size = 1;
  GroupingSmoothing algo(options);
  const Histogram truth({1.0, 2.0, 3.0, 4.0});
  Rng rng(4);
  auto out = algo.Publish(truth, 1.0, rng);
  ASSERT_TRUE(out.ok());
  // All bins perturbed independently: no two adjacent published values
  // should coincide (they would under grouping).
  EXPECT_NE(out.value().count(0), out.value().count(1));
}

TEST(GroupingSmoothingTest, GroupSizeLargerThanDomainIsSingleBucket) {
  GroupingSmoothing::Options options;
  options.group_size = 100;
  GroupingSmoothing algo(options);
  const Histogram truth({10.0, 20.0, 30.0});
  Rng rng(5);
  auto out = algo.Publish(truth, 1.0, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.value().count(0), out.value().count(1));
  EXPECT_DOUBLE_EQ(out.value().count(1), out.value().count(2));
}

TEST(GroupingSmoothingTest, SmoothingReducesUnitBinNoiseOnUniformData) {
  // Per-bin noise variance is 2/(w^2 eps^2): group size 8 should cut the
  // per-bin MSE by ~64x on uniform data (zero approximation error).
  GroupingSmoothing::Options options;
  options.group_size = 8;
  GroupingSmoothing algo(options);
  const std::size_t n = 128;
  const Histogram truth(std::vector<double>(n, 50.0));
  const double epsilon = 0.1;
  Rng rng(6);
  double gs_sq = 0.0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    auto out = algo.Publish(truth, epsilon, rng);
    ASSERT_TRUE(out.ok());
    for (std::size_t i = 0; i < n; ++i) {
      const double d = out.value().count(i) - 50.0;
      gs_sq += d * d;
    }
  }
  const double gs_mse = gs_sq / (reps * static_cast<double>(n));
  const double dwork_mse = 2.0 / (epsilon * epsilon);
  EXPECT_NEAR(gs_mse, dwork_mse / 64.0, dwork_mse / 64.0 * 0.3);
}

TEST(GroupingSmoothingTest, ClampNonNegative) {
  GroupingSmoothing::Options options;
  options.clamp_nonnegative = true;
  options.group_size = 4;
  GroupingSmoothing algo(options);
  const Histogram truth(std::vector<double>(32, 0.0));
  Rng rng(7);
  auto out = algo.Publish(truth, 0.05, rng);
  ASSERT_TRUE(out.ok());
  for (double v : out.value().counts()) {
    EXPECT_GE(v, 0.0);
  }
}

}  // namespace
}  // namespace dphist
