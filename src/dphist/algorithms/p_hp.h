#ifndef DPHIST_ALGORITHMS_P_HP_H_
#define DPHIST_ALGORITHMS_P_HP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dphist/algorithms/publisher.h"
#include "dphist/hist/bucketization.h"

namespace dphist {

/// \brief P-HP — private hierarchical partitioning (Acs, Castelluccia &
/// Chen, ICDM'12), the greedy top-down cousin of StructureFirst (library
/// extension; the follow-up literature compares NF/SF against it).
///
/// Pipeline, with budget split epsilon = eps_s + eps_c:
///   1. (eps_s) Recursive bisection to k = 2^L buckets. At each of the L
///      levels, every current interval picks a split point with the
///      exponential mechanism, utility
///        u(split) = -( cost(left) + cost(right) ),
///      where cost is the absolute merge cost (sum |x_i - mean|, with
///      per-record sensitivity 2, as in StructureFirst). Intervals at the
///      same level are disjoint, so their draws compose in parallel: one
///      level costs eps_s / L, not eps_s * (#intervals) / L.
///   2. (eps_c) Publish each bucket's mean with Lap(1/eps_c) noise on the
///      bucket sum, exactly as in StructureFirst.
///
/// Compared to StructureFirst's global dynamic program, bisection is
/// greedy (it cannot undo an early bad split) but much cheaper
/// (O(n log k) cost evaluations) and its per-draw budget shrinks with
/// log k instead of k, which helps at strict budgets.
class PHPartition final : public HistogramPublisher {
 public:
  struct Options {
    /// Number of buckets (rounded down to a power of two, clamped to the
    /// domain size). 0 means automatic: 2^floor(log2(max(2, n/16))).
    std::size_t num_buckets = 0;
    /// Fraction of epsilon spent on structure. Must lie in (0, 1).
    double structure_budget_ratio = 0.5;
    /// Clamp published counts at zero.
    bool clamp_nonnegative = false;
  };

  /// Diagnostics for tests and benches.
  struct Details {
    std::size_t num_buckets = 0;
    std::size_t levels = 0;
    std::vector<std::size_t> cuts;
    double structure_epsilon = 0.0;
    double count_epsilon = 0.0;
  };

  PHPartition();
  explicit PHPartition(Options options);

  std::string name() const override { return "p_hp"; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override;

  /// Like Publish, additionally filling `details` (may be null).
  Result<Histogram> PublishWithDetails(const Histogram& histogram,
                                       double epsilon, Rng& rng,
                                       Details* details) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_P_HP_H_
