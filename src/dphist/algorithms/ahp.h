#ifndef DPHIST_ALGORITHMS_AHP_H_
#define DPHIST_ALGORITHMS_AHP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dphist/algorithms/publisher.h"

namespace dphist {

/// \brief AHP — Accurate Histogram Publication (Zhang, Chen, Xu, Meng &
/// Xie, SDM'14), the direct successor of NoiseFirst/StructureFirst in the
/// literature (library extension).
///
/// AHP's twist on the NF/SF trade-off is to cluster bins by *value* rather
/// than by position, so far-apart bins with similar counts can share one
/// noisy estimate:
///
///   1. (eps_1 = ratio * eps) Perturb every count with Lap(1/eps_1).
///   2. Post-processing on the noisy counts (free): zero counts below the
///      threshold theta = ln(n)/eps_1 (noise-dominated bins), sort
///      descending, and greedily cut the sorted sequence into clusters —
///      a new cluster starts when the gap to the cluster's first value
///      exceeds the cluster tolerance (a small multiple of the phase-2
///      noise scale; see Options::cluster_tolerance_scale).
///   3. (eps_2 = eps - eps_1) For each cluster (a set of bins, disjoint
///      across clusters), query the *true* total of its bins with
///      Lap(1/eps_2) — parallel composition — and publish the cluster's
///      mean for each member bin.
///
/// Privacy: step 1 is eps_1-DP; step 2 consumes nothing; step 3 is
/// eps_2-DP by parallel composition over disjoint bin sets. Total
/// eps_1 + eps_2 = eps.
///
/// The exact threshold/tolerance constants of the original are
/// reconstruction choices here (documented inline); the structure —
/// value-clustering with two-phase budget — is the algorithm's substance.
class Ahp final : public HistogramPublisher {
 public:
  struct Options {
    /// Fraction of epsilon spent on the phase-1 noisy histogram.
    /// Must lie in (0, 1).
    double structure_budget_ratio = 0.5;
    /// Cluster tolerance, in units of the phase-2 noise scale 1/eps_2: a
    /// sorted run is clustered together while
    /// first - current <= tolerance_scale / eps_2.
    double cluster_tolerance_scale = 4.0;
    /// Disable the small-count thresholding (step 2a) — for ablation.
    bool threshold_small_counts = true;
    /// Clamp published counts at zero.
    bool clamp_nonnegative = true;
  };

  /// Diagnostics for tests and benches.
  struct Details {
    std::size_t num_clusters = 0;
    std::size_t thresholded_bins = 0;
    double structure_epsilon = 0.0;
    double count_epsilon = 0.0;
  };

  Ahp();
  explicit Ahp(Options options);

  std::string name() const override { return "ahp"; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override;

  /// Like Publish, additionally filling `details` (may be null).
  Result<Histogram> PublishWithDetails(const Histogram& histogram,
                                       double epsilon, Rng& rng,
                                       Details* details) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_AHP_H_
