#include "dphist/algorithms/grouping_smoothing.h"

#include <algorithm>

#include "dphist/common/math_util.h"
#include "dphist/hist/bucketization.h"
#include "dphist/privacy/laplace_mechanism.h"

namespace dphist {

GroupingSmoothing::GroupingSmoothing() : options_(Options()) {}

GroupingSmoothing::GroupingSmoothing(Options options) : options_(options) {}

Result<Histogram> GroupingSmoothing::Publish(const Histogram& histogram,
                                             double epsilon,
                                             Rng& rng) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(histogram, epsilon));
  if (options_.group_size == 0) {
    return Status::InvalidArgument("GroupingSmoothing: group_size must be >= 1");
  }
  const std::size_t n = histogram.size();
  const std::size_t width = std::min(options_.group_size, n);
  const std::size_t groups = std::max<std::size_t>(1, n / width);
  auto structure = Bucketization::EquiWidth(n, groups);
  if (!structure.ok()) {
    return structure.status();
  }
  auto laplace = LaplaceMechanism::Create(epsilon, /*sensitivity=*/1.0);
  if (!laplace.ok()) {
    return laplace.status();
  }
  const Bucketization& buckets = structure.value();
  std::vector<double> means;
  means.reserve(buckets.num_buckets());
  for (std::size_t i = 0; i < buckets.num_buckets(); ++i) {
    const Bucket b = buckets.bucket(i);
    KahanSum sum;
    for (std::size_t j = b.begin; j < b.end; ++j) {
      sum.Add(histogram.count(j));
    }
    const double noisy = laplace.value().Perturb(sum.Total(), rng);
    means.push_back(noisy / static_cast<double>(b.length()));
  }
  auto published = buckets.Expand(means);
  if (!published.ok()) {
    return published.status();
  }
  std::vector<double> out = std::move(published).value();
  if (options_.clamp_nonnegative) {
    for (double& v : out) {
      v = std::max(v, 0.0);
    }
  }
  return Histogram(std::move(out));
}

}  // namespace dphist
