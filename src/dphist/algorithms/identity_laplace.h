#ifndef DPHIST_ALGORITHMS_IDENTITY_LAPLACE_H_
#define DPHIST_ALGORITHMS_IDENTITY_LAPLACE_H_

#include <string>

#include "dphist/algorithms/publisher.h"
#include "dphist/random/noise_batch.h"

namespace dphist {

/// \brief The Dwork et al. baseline: add Lap(1/epsilon) noise to every
/// unit-bin count independently.
///
/// Privacy: one record changes exactly one unit-bin count by 1, so the
/// count vector has L1 sensitivity 1 and the release is epsilon-DP
/// (equivalently, the bins partition the data, so per-bin mechanisms
/// compose in parallel).
///
/// Error: every unit bin carries noise variance 2/epsilon^2; a range query
/// of length r accumulates variance 2r/epsilon^2. This data-independent
/// profile is the yardstick both of the paper's algorithms improve on.
class IdentityLaplace final : public HistogramPublisher {
 public:
  struct Options {
    /// Sampling construction for the per-bin noise (DESIGN §10). kAuto
    /// resolves DPHIST_NOISE_MODEL and falls back to the textbook scalar
    /// sampler; an explicit model here wins over the environment.
    NoiseModel noise_model = NoiseModel::kAuto;
  };

  IdentityLaplace() = default;
  explicit IdentityLaplace(Options options) : options_(options) {}

  std::string name() const override { return "dwork"; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_IDENTITY_LAPLACE_H_
