#include "dphist/algorithms/identity_geometric.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "dphist/privacy/geometric_mechanism.h"

namespace dphist {

Result<Histogram> IdentityGeometric::Publish(const Histogram& histogram,
                                             double epsilon,
                                             Rng& rng) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(histogram, epsilon));
  auto mechanism = GeometricMechanism::Create(epsilon, /*sensitivity=*/1,
                                              options_.noise_model);
  if (!mechanism.ok()) {
    return mechanism.status();
  }
  std::vector<std::int64_t> integral;
  integral.reserve(histogram.size());
  for (double count : histogram.counts()) {
    integral.push_back(static_cast<std::int64_t>(std::llround(count)));
  }
  const std::vector<std::int64_t> noisy =
      mechanism.value().PerturbVector(integral, rng);
  std::vector<double> out;
  out.reserve(noisy.size());
  for (std::int64_t v : noisy) {
    out.push_back(static_cast<double>(v));
  }
  return Histogram(std::move(out));
}

}  // namespace dphist
