#include "dphist/algorithms/identity_geometric.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "dphist/privacy/geometric_mechanism.h"

namespace dphist {

Result<Histogram> IdentityGeometric::Publish(const Histogram& histogram,
                                             double epsilon,
                                             Rng& rng) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(histogram, epsilon));
  auto mechanism = GeometricMechanism::Create(epsilon, /*sensitivity=*/1);
  if (!mechanism.ok()) {
    return mechanism.status();
  }
  std::vector<double> out;
  out.reserve(histogram.size());
  for (double count : histogram.counts()) {
    const std::int64_t integral =
        static_cast<std::int64_t>(std::llround(count));
    out.push_back(
        static_cast<double>(mechanism.value().Perturb(integral, rng)));
  }
  return Histogram(std::move(out));
}

}  // namespace dphist
