#include "dphist/algorithms/mwem.h"

#include <algorithm>
#include <cmath>

#include "dphist/common/math_util.h"
#include "dphist/privacy/exponential_mechanism.h"
#include "dphist/privacy/laplace_mechanism.h"
#include "dphist/query/workload.h"

namespace dphist {

Mwem::Mwem() : options_(Options()) {}

Mwem::Mwem(Options options) : options_(std::move(options)) {}

Result<Histogram> Mwem::Publish(const Histogram& histogram, double epsilon,
                                Rng& rng) const {
  return PublishWithDetails(histogram, epsilon, rng, nullptr);
}

Result<Histogram> Mwem::PublishWithDetails(const Histogram& histogram,
                                           double epsilon, Rng& rng,
                                           Details* details) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(histogram, epsilon));
  if (options_.iterations == 0) {
    return Status::InvalidArgument("Mwem: iterations must be >= 1");
  }
  if (!(options_.total_budget_ratio > 0.0) ||
      !(options_.total_budget_ratio < 1.0)) {
    return Status::InvalidArgument(
        "Mwem: total_budget_ratio must lie in (0, 1)");
  }
  const std::size_t n = histogram.size();

  std::vector<RangeQuery> workload = options_.workload;
  if (workload.empty()) {
    auto generated =
        RandomRangeWorkload(n, options_.default_workload_size, rng);
    if (!generated.ok()) {
      return generated.status();
    }
    workload = std::move(generated).value();
  } else {
    DPHIST_RETURN_IF_ERROR(ValidateQueries(workload, n));
  }
  const std::size_t T = options_.iterations;

  // Budget: total estimate + T (select, measure) pairs.
  const double eps_total = options_.total_budget_ratio * epsilon;
  const double eps_iterations = epsilon - eps_total;
  const double eps_select = eps_iterations / (2.0 * static_cast<double>(T));
  const double eps_measure = eps_iterations / (2.0 * static_cast<double>(T));

  auto total_mechanism = LaplaceMechanism::Create(eps_total, 1.0);
  if (!total_mechanism.ok()) {
    return total_mechanism.status();
  }
  double noisy_total =
      total_mechanism.value().Perturb(histogram.Total(), rng);
  // A distribution needs positive mass; floor the estimate at 1 record.
  noisy_total = std::max(noisy_total, 1.0);

  auto select_em = ExponentialMechanism::Create(eps_select,
                                                /*utility_sensitivity=*/1.0);
  if (!select_em.ok()) {
    return select_em.status();
  }
  auto measure_mechanism = LaplaceMechanism::Create(eps_measure, 1.0);
  if (!measure_mechanism.ok()) {
    return measure_mechanism.status();
  }

  // Synthetic distribution, initialized uniform; kept as counts scaled to
  // the noisy total so query errors are in count units.
  std::vector<double> synth(n, noisy_total / static_cast<double>(n));
  std::vector<std::size_t> selected;
  selected.reserve(T);

  auto query_answer = [](const std::vector<double>& counts,
                         const RangeQuery& q) {
    double sum = 0.0;
    for (std::size_t i = q.begin; i < q.end; ++i) {
      sum += counts[i];
    }
    return sum;
  };

  for (std::size_t t = 0; t < T; ++t) {
    // 1. Select the worst query (utility = current absolute error; one
    //    record changes a true answer by <= 1, so Delta_u = 1).
    std::vector<double> utilities;
    utilities.reserve(workload.size());
    for (const RangeQuery& q : workload) {
      const double true_answer =
          histogram.RangeSumUnchecked(q.begin, q.end);
      utilities.push_back(std::abs(true_answer - query_answer(synth, q)));
    }
    auto pick = select_em.value().Select(utilities, rng);
    if (!pick.ok()) {
      return pick.status();
    }
    const RangeQuery& q = workload[pick.value()];
    selected.push_back(pick.value());

    // 2. Measure it.
    const double measurement = measure_mechanism.value().Perturb(
        histogram.RangeSumUnchecked(q.begin, q.end), rng);

    // 3. Multiplicative-weights update toward the measurement.
    const double estimate = query_answer(synth, q);
    const double exponent =
        Clamp((measurement - estimate) / (2.0 * noisy_total), -20.0, 20.0);
    const double factor = std::exp(exponent);
    for (std::size_t i = q.begin; i < q.end; ++i) {
      synth[i] *= factor;
    }
    // Renormalize to the noisy total.
    KahanSum mass;
    for (double v : synth) {
      mass.Add(v);
    }
    const double scale = noisy_total / mass.Total();
    for (double& v : synth) {
      v *= scale;
    }
  }

  if (options_.clamp_nonnegative) {
    for (double& v : synth) {
      v = std::max(v, 0.0);
    }
  }
  if (details != nullptr) {
    details->noisy_total = noisy_total;
    details->selected_queries = std::move(selected);
  }
  return Histogram(std::move(synth));
}

}  // namespace dphist
