#include "dphist/algorithms/structure_first.h"

#include <algorithm>

#include "dphist/algorithms/noise_first.h"
#include "dphist/common/math_util.h"
#include "dphist/hist/vopt_dp.h"
#include "dphist/privacy/exponential_mechanism.h"
#include "dphist/privacy/laplace_mechanism.h"

namespace dphist {

namespace {

// Samples the k-1 cuts back-to-front from the DP tables (see header).
// Returns candidate-position indices in increasing order.
Result<std::vector<std::size_t>> SampleCutIndices(
    const VOptSolver& solver, const IntervalCostTable& costs, std::size_t k,
    double epsilon_per_draw, double utility_sensitivity, Rng& rng) {
  auto em = ExponentialMechanism::Create(epsilon_per_draw,
                                         utility_sensitivity);
  if (!em.ok()) {
    return em.status();
  }
  std::vector<std::size_t> cut_indices;
  cut_indices.reserve(k - 1);
  std::size_t end = costs.num_candidates();
  for (std::size_t t = k - 1; t >= 1; --t) {
    // Candidate cut j in [t, end-1]: prefix [0, j) must fit t buckets.
    std::vector<double> utilities;
    utilities.reserve(end - t);
    for (std::size_t j = t; j < end; ++j) {
      utilities.push_back(
          -(solver.PrefixCost(t, j) + costs.CostBetween(j, end)));
    }
    auto pick = em.value().Select(utilities, rng);
    if (!pick.ok()) {
      return pick.status();
    }
    const std::size_t j = t + pick.value();
    cut_indices.push_back(j);
    end = j;
  }
  std::reverse(cut_indices.begin(), cut_indices.end());
  return cut_indices;
}

}  // namespace

StructureFirst::StructureFirst() : options_(Options()) {}

StructureFirst::StructureFirst(Options options) : options_(options) {}

Result<Histogram> StructureFirst::Publish(const Histogram& histogram,
                                          double epsilon, Rng& rng) const {
  return PublishWithDetails(histogram, epsilon, rng, nullptr);
}

Result<Histogram> StructureFirst::PublishWithDetails(
    const Histogram& histogram, double epsilon, Rng& rng,
    Details* details) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(histogram, epsilon));
  if (!(options_.structure_budget_ratio > 0.0) ||
      !(options_.structure_budget_ratio < 1.0)) {
    return Status::InvalidArgument(
        "StructureFirst: structure_budget_ratio must lie in (0, 1)");
  }
  if (options_.num_buckets == 0 && (!(options_.k_selection_ratio > 0.0) ||
                                    !(options_.k_selection_ratio < 1.0))) {
    return Status::InvalidArgument(
        "StructureFirst: k_selection_ratio must lie in (0, 1)");
  }
  if (options_.cost_kind == CostKind::kSquared &&
      !(options_.count_cap > 0.0)) {
    return Status::InvalidArgument(
        "StructureFirst: count_cap must be > 0 for the squared cost");
  }
  const std::size_t n = histogram.size();

  // Scoring copy of the counts (clamped for the squared cost so the
  // exponential-mechanism sensitivity is a data-independent constant).
  std::vector<double> scoring = histogram.counts();
  double utility_sensitivity = 2.0;
  if (options_.cost_kind == CostKind::kSquared) {
    for (double& v : scoring) {
      v = Clamp(v, 0.0, options_.count_cap);
    }
    utility_sensitivity = 2.0 * options_.count_cap + 1.0;
  }

  IntervalCostTable::Options cost_options;
  cost_options.kind = options_.cost_kind;
  cost_options.grid_step = options_.grid_step == 0
                               ? NoiseFirst::AutoGridStep(n)
                               : options_.grid_step;
  auto cost_table = IntervalCostTable::Create(scoring, cost_options);
  if (!cost_table.ok()) {
    return cost_table.status();
  }
  const IntervalCostTable& costs = cost_table.value();
  const std::size_t m = costs.num_candidates();

  const double eps_s = options_.structure_budget_ratio * epsilon;
  std::size_t k = 0;
  double structure_spent = 0.0;  // accumulates as draws actually happen
  Result<VOptSolver> solver = Status::Internal("unset");

  VOptSolver::SolveOptions solve_options;
  solve_options.strategy = options_.vopt_strategy;
  if (options_.num_buckets != 0) {
    k = std::min(options_.num_buckets, m);
    if (k > 1 && k < m) {
      solver = VOptSolver::Solve(costs, k, solve_options);
      if (!solver.ok()) {
        return solver.status();
      }
    }
  } else {
    // Adaptive k: one exponential-mechanism draw over candidate bucket
    // counts, scored by the best achievable merge cost plus the expected
    // total absolute count noise (k buckets -> k * E|Lap(1/eps_c)|).
    const std::size_t k_cap =
        options_.max_buckets_considered == 0
            ? std::min<std::size_t>(m, 128)
            : std::min(options_.max_buckets_considered, m);
    solver = VOptSolver::Solve(costs, k_cap, solve_options);
    if (!solver.ok()) {
      return solver.status();
    }
    const double eps_k = options_.k_selection_ratio * eps_s;
    // Planned count budget (a constant; the realized one below can only
    // be larger, which only helps).
    const double planned_eps_c = epsilon - eps_s;
    auto em = ExponentialMechanism::Create(eps_k, utility_sensitivity);
    if (!em.ok()) {
      return em.status();
    }
    // Candidate bucket counts: a geometric grid up to the DP cap, plus the
    // identity structure m (merge cost exactly 0, no DP row needed). The
    // sparse grid keeps the single draw concentrated, and the identity
    // candidate lets StructureFirst degrade gracefully to the Dwork
    // baseline when the data resists merging.
    std::vector<std::size_t> candidates;
    for (std::size_t candidate = 1; candidate <= k_cap; candidate *= 2) {
      candidates.push_back(candidate);
    }
    if (candidates.back() != k_cap) {
      candidates.push_back(k_cap);
    }
    if (m > k_cap) {
      candidates.push_back(m);
    }
    std::vector<double> utilities;
    utilities.reserve(candidates.size());
    for (std::size_t candidate : candidates) {
      const double merge_cost =
          candidate == m ? 0.0 : solver.value().MinCost(candidate);
      utilities.push_back(
          -(merge_cost + static_cast<double>(candidate) / planned_eps_c));
    }
    auto pick = em.value().Select(utilities, rng);
    if (!pick.ok()) {
      return pick.status();
    }
    k = candidates[pick.value()];
    structure_spent += eps_k;
  }

  // Boundary draws (only for data-dependent structures).
  Result<Bucketization> structure = Status::Internal("unset");
  if (k == 1) {
    structure = Bucketization::SingleBucket(n);
  } else if (k == m) {
    std::vector<std::size_t> cuts(costs.positions().begin() + 1,
                                  costs.positions().end() - 1);
    structure = Bucketization::FromCuts(n, std::move(cuts));
  } else {
    const double eps_boundaries = eps_s - structure_spent;
    auto cut_indices = SampleCutIndices(
        solver.value(), costs, k,
        eps_boundaries / static_cast<double>(k - 1), utility_sensitivity,
        rng);
    if (!cut_indices.ok()) {
      return cut_indices.status();
    }
    structure_spent += eps_boundaries;
    std::vector<std::size_t> cuts;
    cuts.reserve(cut_indices.value().size());
    for (std::size_t idx : cut_indices.value()) {
      cuts.push_back(costs.positions()[idx]);
    }
    structure = Bucketization::FromCuts(n, std::move(cuts));
  }
  if (!structure.ok()) {
    return structure.status();
  }

  // Whatever structure budget was not consumed (data-independent
  // structures) flows back to the counts.
  const double eps_counts = epsilon - structure_spent;

  auto laplace = LaplaceMechanism::Create(eps_counts, /*sensitivity=*/1.0,
                                          options_.noise_model);
  if (!laplace.ok()) {
    return laplace.status();
  }
  const Bucketization& buckets = structure.value();
  std::vector<double> means;
  means.reserve(buckets.num_buckets());
  for (std::size_t i = 0; i < buckets.num_buckets(); ++i) {
    const Bucket b = buckets.bucket(i);
    KahanSum sum;
    for (std::size_t j = b.begin; j < b.end; ++j) {
      sum.Add(histogram.count(j));
    }
    const double noisy_sum = laplace.value().Perturb(sum.Total(), rng);
    means.push_back(noisy_sum / static_cast<double>(b.length()));
  }
  auto published = buckets.Expand(means);
  if (!published.ok()) {
    return published.status();
  }
  std::vector<double> out = std::move(published).value();
  if (options_.clamp_nonnegative) {
    for (double& v : out) {
      v = std::max(v, 0.0);
    }
  }

  if (details != nullptr) {
    details->num_buckets = buckets.num_buckets();
    details->adaptive_k = options_.num_buckets == 0;
    details->cuts = buckets.cuts();
    details->structure_epsilon = structure_spent;
    details->count_epsilon = eps_counts;
    details->utility_sensitivity = utility_sensitivity;
  }
  return Histogram(std::move(out));
}

}  // namespace dphist
