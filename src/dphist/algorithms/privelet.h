#ifndef DPHIST_ALGORITHMS_PRIVELET_H_
#define DPHIST_ALGORITHMS_PRIVELET_H_

#include <string>

#include "dphist/algorithms/publisher.h"

namespace dphist {

/// \brief Privelet — the wavelet baseline of Xiao, Wang & Gehrke (ICDE'10),
/// compared against in the paper's evaluation.
///
/// Pipeline:
///   1. Pad the counts with zero bins to a power of two and take the Haar
///      wavelet transform.
///   2. Add Lap(rho / (epsilon * W(c))) noise to each coefficient c, where
///      W is the Privelet weight (the coefficient's interval length; n for
///      the overall average) and rho = 1 + log2(n) is the generalized
///      sensitivity: one record changes the weighted coefficient vector by
///      exactly rho in L1, so the release is epsilon-DP (generalized
///      Laplace mechanism).
///   3. Invert the transform and truncate to the original domain.
///
/// Like Boost, Privelet trades slightly worse unit-bin accuracy for
/// polylogarithmic range-query noise: any range touches O(log n)
/// coefficients per level.
class Privelet final : public HistogramPublisher {
 public:
  struct Options {
    /// Clamp published counts at zero.
    bool clamp_nonnegative = false;
  };

  Privelet();
  explicit Privelet(Options options);

  std::string name() const override { return "privelet"; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_PRIVELET_H_
