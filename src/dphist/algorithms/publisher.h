#ifndef DPHIST_ALGORITHMS_PUBLISHER_H_
#define DPHIST_ALGORITHMS_PUBLISHER_H_

#include <string>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/hist/histogram.h"
#include "dphist/random/rng.h"

namespace dphist {

/// \brief Common interface of every differentially private histogram
/// publication algorithm in this library.
///
/// A publisher consumes the *true* unit-bin counts and a privacy budget
/// epsilon, and produces noisy unit-bin counts of the same length whose
/// release satisfies epsilon-differential privacy under the unbounded
/// neighbor relation (add/remove one record changes one count by 1).
///
/// Implementations: IdentityLaplace (Dwork), NoiseFirst, StructureFirst
/// (the paper's contributions), BoostTree (Hay et al.) and Privelet
/// (Xiao et al.) as the paper's baselines, plus the extensions listed in
/// PublisherRegistry.
///
/// Thread safety: publishers are immutable after construction and
/// Publish() is const, so one instance may be shared across threads as
/// long as each call uses its own Rng (see thread_safety_test.cc).
class HistogramPublisher {
 public:
  virtual ~HistogramPublisher() = default;

  /// Short stable identifier ("dwork", "noise_first", ...).
  virtual std::string name() const = 0;

  /// Publishes a noisy histogram. Fails with InvalidArgument for an empty
  /// histogram or epsilon <= 0, and propagates internal errors.
  virtual Result<Histogram> Publish(const Histogram& histogram,
                                    double epsilon, Rng& rng) const = 0;

 protected:
  /// Shared argument validation for implementations.
  static Status ValidatePublishArgs(const Histogram& histogram,
                                    double epsilon) {
    if (histogram.empty()) {
      return Status::InvalidArgument("Publish: histogram must be non-empty");
    }
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("Publish: epsilon must be > 0");
    }
    return Status::Ok();
  }
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_PUBLISHER_H_
