#ifndef DPHIST_ALGORITHMS_STRUCTURE_FIRST_H_
#define DPHIST_ALGORITHMS_STRUCTURE_FIRST_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dphist/algorithms/publisher.h"
#include "dphist/hist/bucketization.h"
#include "dphist/hist/interval_cost.h"
#include "dphist/hist/vopt_dp.h"
#include "dphist/random/noise_batch.h"

namespace dphist {

/// \brief StructureFirst — the paper's second algorithm.
///
/// Pipeline, with budget split epsilon = eps_s + eps_c:
///   1. (eps_s) Select a k-bucket structure privately. Run the v-optimal
///      dynamic program over the true counts, then sample the k-1 cut
///      positions back-to-front: the cut before the current suffix end `e`
///      is drawn by the exponential mechanism over candidates j with
///      utility u(j) = -( T[t][j] + cost(p_j, p_e) ), budget eps_s/(k-1)
///      per draw. T[t][j] is the optimal t-bucket cost of the prefix — so a
///      draw prefers cuts that extend to a low-total-cost structure, and at
///      zero temperature the procedure reduces to the exact v-opt optimum.
///   2. (eps_c) Publish each bucket's mean: one record changes exactly one
///      bucket's sum by 1, so bucket sums compose in parallel; add
///      Lap(1/eps_c) to each bucket sum and divide by the bucket length.
///      A bucket of length L thus carries per-unit-bin noise variance
///      2/(L^2 eps_c^2) — the source of StructureFirst's advantage on
///      long-range queries.
///
/// Privacy: each of the k-1 draws is an exponential mechanism with budget
/// eps_s/(k-1) and utility sensitivity Delta_u (below); sequential
/// composition gives eps_s. Step 2 is eps_c-DP by parallel composition.
/// Total: eps_s + eps_c = epsilon. When the structure is data-independent
/// (k == 1, or k equals the number of candidates), the full budget goes to
/// step 2.
///
/// Utility sensitivity. For a *fixed* structure the total merge cost
/// changes, between neighboring datasets, only in the single bucket
/// containing the changed record; and T[t][j] is a minimum of fixed-
/// structure costs, so it inherits the same bound. Per cost kind:
///   - kAbsolute (default): bucket cost sum|x_i - mean|. A unit change in
///     one count moves the mean by 1/L, each of the other L-1 terms by at
///     most 1/L and the changed term by at most 1 + 1/L: Delta_u <= 2,
///     with no assumption on the data.
///   - kSquared: the classical SSE changes by 2|x_i - mean| + 1 - 1/L,
///     which is unbounded in the counts. We therefore clamp the *scoring*
///     copy of the counts to [0, count_cap] (a data-independent constant;
///     clamping is 1-Lipschitz per record so neighbors stay neighbors) and
///     use Delta_u = 2 * count_cap + 1. The published counts are never
///     clamped. This mirrors the boundedness assumption required to
///     instantiate the original paper's SSE-based score.
class StructureFirst final : public HistogramPublisher {
 public:
  struct Options {
    /// Number of buckets k. 0 (the default) selects k privately with one
    /// extra exponential-mechanism draw over candidate bucket counts, with
    /// utility u(k) = -( T[k][m] + k/eps_c ): the best achievable k-bucket
    /// merge cost plus the expected total absolute count noise (each
    /// bucket sum carries Lap(1/eps_c) noise of mean magnitude 1/eps_c,
    /// a data-independent term). T[k][m] has the same per-record
    /// sensitivity as the boundary utilities, so the draw is budgeted and
    /// accounted exactly like one extra boundary draw.
    std::size_t num_buckets = 0;
    /// Upper bound on the k candidates considered by the adaptive
    /// selection; 0 means automatic (min(candidates, 128)).
    std::size_t max_buckets_considered = 0;
    /// Fraction of eps_s spent on the adaptive k draw (remainder goes to
    /// the boundary draws). Only used when num_buckets == 0.
    double k_selection_ratio = 0.2;
    /// Fraction of epsilon spent on structure selection (eps_s = ratio *
    /// epsilon). Must lie in (0, 1). The paper's default split is 0.5.
    double structure_budget_ratio = 0.5;
    /// Merge-cost measure for structure scoring (see class comment).
    CostKind cost_kind = CostKind::kAbsolute;
    /// Count cap used only with CostKind::kSquared.
    double count_cap = 1000.0;
    /// Boundary-candidate grid step; 0 means automatic (same rule as
    /// NoiseFirst::AutoGridStep).
    std::size_t grid_step = 0;
    /// Clamp published counts at zero.
    bool clamp_nonnegative = false;
    /// Row-fill strategy for the v-opt dynamic program (pure execution
    /// knob: every strategy yields bit-identical tables, hence identical
    /// boundary-sampling utilities; see VOptSolver::SolveOptions).
    VOptStrategy vopt_strategy = VOptStrategy::kAuto;
    /// Sampling construction for the step-2 bucket-sum noise (DESIGN
    /// §10). kAuto resolves DPHIST_NOISE_MODEL and falls back to the
    /// textbook scalar sampler. The step-1 exponential-mechanism draws
    /// are unaffected (they add no additive noise to snap or batch).
    NoiseModel noise_model = NoiseModel::kAuto;
  };

  /// Diagnostic output of a publication run.
  struct Details {
    /// Number of buckets actually used.
    std::size_t num_buckets = 0;
    /// True when k was selected adaptively (Options::num_buckets == 0).
    bool adaptive_k = false;
    /// The selected cuts (unit-bin positions).
    std::vector<std::size_t> cuts;
    /// Budget actually spent on structure (0 when the structure was
    /// data-independent).
    double structure_epsilon = 0.0;
    /// Budget spent on the bucket counts.
    double count_epsilon = 0.0;
    /// Utility sensitivity used for the exponential mechanism.
    double utility_sensitivity = 0.0;
  };

  StructureFirst();
  explicit StructureFirst(Options options);

  std::string name() const override { return "structure_first"; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override;

  /// Like Publish, additionally filling `details` (may be null).
  Result<Histogram> PublishWithDetails(const Histogram& histogram,
                                       double epsilon, Rng& rng,
                                       Details* details) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_STRUCTURE_FIRST_H_
