#ifndef DPHIST_ALGORITHMS_EFPA_H_
#define DPHIST_ALGORITHMS_EFPA_H_

#include <cstddef>
#include <string>

#include "dphist/algorithms/publisher.h"

namespace dphist {

/// \brief EFPA — Enhanced Fourier Perturbation Algorithm (Acs,
/// Castelluccia & Chen, ICDM'12), the lossy-compression relative of the
/// paper's algorithms (library extension; the follow-up literature
/// benchmarks NF/SF against it).
///
/// Pipeline, with budget split epsilon = eps_1 + eps_2 (default halves):
///   1. (eps_1) Choose the number k of retained (lowest-frequency) Fourier
///      coefficients with the exponential mechanism. Utility is the
///      negated estimated total L2 error
///        u(k) = -( ||tail(k)||_2 / sqrt(n)  +  noise(k) ),
///      where, by Parseval, ||tail(k)||_2 / sqrt(n) is exactly the
///      time-domain L2 error of dropping all but the first k coefficients,
///      and noise(k) = sqrt(8 k) * lambda_k / sqrt(n) is the expected L2
///      norm of the reconstruction noise below. One record changes every
///      |F_j| by at most 1, hence the tail norm by at most
///      sqrt(n)/sqrt(n) = 1, and noise(k) is data-independent: Delta_u = 1.
///   2. (eps_2) Perturb the real and imaginary parts of the k retained
///      coefficients with Lap(lambda_k), lambda_k = sqrt(2) k / eps_2:
///      one record moves each complex coefficient by a unit phasor, so
///      |d re| + |d im| <= sqrt(2) per coefficient and the L1 sensitivity
///      of the 2k released reals is sqrt(2) k.
///   3. Reconstruct by zero-padding the spectrum (conjugate symmetry
///      restored), inverse FFT, truncate to the original domain.
///
/// EFPA excels on smooth/periodic histograms whose energy concentrates in
/// few frequencies, and degrades on spiky data (spectral leakage).
class Efpa final : public HistogramPublisher {
 public:
  struct Options {
    /// If non-zero, skip the private k selection and keep exactly this
    /// many coefficients (clamped to n/2 + 1).
    std::size_t fixed_coefficients = 0;
    /// Fraction of epsilon spent selecting k. Must lie in (0, 1); ignored
    /// when fixed_coefficients != 0 (everything then goes to noise).
    double selection_budget_ratio = 0.5;
    /// Clamp published counts at zero.
    bool clamp_nonnegative = false;
  };

  /// Diagnostics for tests and benches.
  struct Details {
    /// Number of retained coefficients.
    std::size_t kept_coefficients = 0;
    /// Budget spent on the k selection (0 when fixed).
    double selection_epsilon = 0.0;
    /// Budget spent on coefficient noise.
    double noise_epsilon = 0.0;
  };

  Efpa();
  explicit Efpa(Options options);

  std::string name() const override { return "efpa"; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override;

  /// Like Publish, additionally filling `details` (may be null).
  Result<Histogram> PublishWithDetails(const Histogram& histogram,
                                       double epsilon, Rng& rng,
                                       Details* details) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_EFPA_H_
