#ifndef DPHIST_ALGORITHMS_NOISE_FIRST_H_
#define DPHIST_ALGORITHMS_NOISE_FIRST_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dphist/algorithms/publisher.h"
#include "dphist/hist/bucketization.h"
#include "dphist/hist/vopt_dp.h"
#include "dphist/random/noise_batch.h"

namespace dphist {

/// \brief NoiseFirst — the paper's first algorithm.
///
/// Pipeline:
///   1. Perturb every unit-bin count with Lap(1/epsilon) (the full budget:
///      this is the only access to the sensitive data).
///   2. Run the v-optimal dynamic program *on the noisy counts* to merge
///      them into k buckets, publishing each bucket's mean of the noisy
///      counts.
///   3. Choose k = k* minimizing an estimate of the true error.
///
/// Privacy: step 1 is the Dwork mechanism (epsilon-DP); steps 2-3 are
/// deterministic functions of its output, i.e. post-processing, and cost
/// nothing. NoiseFirst is therefore epsilon-DP for free structure.
///
/// The k* estimator. Let sigma^2 = 2/epsilon^2 be the per-bin noise
/// variance and SSE~(k) the DP-optimal squared cost of merging the *noisy*
/// counts into k buckets. For a bucket of length L,
///   E[SSE~(bucket)]  = SSE_true(bucket) + (L-1) sigma^2, and
///   E[err(bucket)]   = SSE_true(bucket) + sigma^2
/// (err = squared distance of the published bucket mean to the true unit
/// counts). Summing over a k-bucket structure:
///   E[err(k)] ~= SSE~(k) - (n - k) sigma^2 + k sigma^2
///              = SSE~(k) - (n - 2k) sigma^2,
/// so NoiseFirst picks k* = argmin_k [ SSE~(k) - (n - 2k) sigma^2 ].
/// With k = n the algorithm degenerates to the Dwork baseline, which is why
/// NoiseFirst never does worse than Dwork by much and typically much better
/// on short-range queries.
class NoiseFirst final : public HistogramPublisher {
 public:
  struct Options {
    /// Largest k considered by the k* search; 0 means automatic
    /// (min(candidates, 256)). Ignored when fixed_buckets != 0.
    std::size_t max_buckets = 0;
    /// If non-zero, skip the k* search and use exactly this many buckets
    /// (clamped to the number of candidates).
    std::size_t fixed_buckets = 0;
    /// Boundary-candidate grid step; 0 means automatic (1 for domains up to
    /// 2048 bins, ~n/1024 beyond). The paper's exact algorithm is step 1.
    std::size_t grid_step = 0;
    /// Clamp published counts at zero (post-processing; never hurts when
    /// the true counts are non-negative).
    bool clamp_nonnegative = false;
    /// Counteract selection bias in the k* search (library extension, off
    /// by default to match the paper). The unbiased estimator assumes a
    /// fixed structure, but the dynamic program *minimizes* over
    /// structures, so on pure noise it can cut out the largest deviations
    /// — Laplace noise is heavy-tailed and the j-th largest |noise| is
    /// roughly b*ln(n/j), inflating k*. When enabled, the estimator adds
    /// the expected cumulative overfit gain sum_{j<k} b^2 ln^2(n/j) to the
    /// k-bucket score, which restores small k* on structure-less data.
    bool bias_corrected_selection = false;
    /// Row-fill strategy for the v-opt dynamic program (pure execution
    /// knob: every strategy yields bit-identical structures; see
    /// VOptSolver::SolveOptions::strategy).
    VOptStrategy vopt_strategy = VOptStrategy::kAuto;
    /// Sampling construction for the step-1 per-bin noise (DESIGN §10).
    /// kAuto resolves DPHIST_NOISE_MODEL and falls back to the textbook
    /// scalar sampler; an explicit model here wins over the environment.
    /// Steps 2-3 post-process whatever step 1 released, so the model
    /// never changes the structure-selection logic itself.
    NoiseModel noise_model = NoiseModel::kAuto;
  };

  /// Diagnostic output of a publication run, for tests and benches.
  struct Details {
    /// The chosen number of buckets.
    std::size_t chosen_buckets = 0;
    /// The merged structure.
    std::vector<std::size_t> cuts;
    /// estimator[k-1] = estimated error of the k-bucket structure,
    /// for k = 1..max considered.
    std::vector<double> estimated_errors;
    /// The intermediate noisy counts (the Dwork release NoiseFirst
    /// post-processes).
    std::vector<double> noisy_counts;
  };

  NoiseFirst();
  explicit NoiseFirst(Options options);

  std::string name() const override { return "noise_first"; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override;

  /// Like Publish, additionally filling `details` (may be null).
  Result<Histogram> PublishWithDetails(const Histogram& histogram,
                                       double epsilon, Rng& rng,
                                       Details* details) const;

  const Options& options() const { return options_; }

  /// The automatic grid step used for a domain of `n` unit bins.
  static std::size_t AutoGridStep(std::size_t n);

 private:
  Options options_;
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_NOISE_FIRST_H_
