#ifndef DPHIST_ALGORITHMS_GROUPING_SMOOTHING_H_
#define DPHIST_ALGORITHMS_GROUPING_SMOOTHING_H_

#include <cstddef>
#include <string>

#include "dphist/algorithms/publisher.h"

namespace dphist {

/// \brief GS — Grouping & Smoothing (Kellaris & Papadopoulos, VLDB'13), the
/// simplest structural baseline: a *data-independent* equi-width merge
/// (library extension).
///
/// Partition the domain into consecutive groups of `group_size` bins, add
/// Lap(1/epsilon) to each group's sum (groups are disjoint -> parallel
/// composition, so the full budget goes to every group), and publish each
/// group's mean. Because the structure is fixed a priori, no budget is
/// spent learning it — GS isolates exactly how much of NoiseFirst's and
/// StructureFirst's gain comes from *data-dependent* structure versus mere
/// smoothing: per-unit-bin noise variance drops to 2/(w^2 eps^2), but the
/// approximation error is whatever the fixed grid happens to cut through.
class GroupingSmoothing final : public HistogramPublisher {
 public:
  struct Options {
    /// Consecutive bins per group (>= 1); the last group absorbs the
    /// remainder. 1 reduces GS to the Dwork baseline.
    std::size_t group_size = 8;
    /// Clamp published counts at zero.
    bool clamp_nonnegative = false;
  };

  GroupingSmoothing();
  explicit GroupingSmoothing(Options options);

  std::string name() const override { return "gs"; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_GROUPING_SMOOTHING_H_
