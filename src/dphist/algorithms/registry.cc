#include "dphist/algorithms/registry.h"

#include <chrono>
#include <utility>

#include "dphist/algorithms/ahp.h"
#include "dphist/algorithms/boost_tree.h"
#include "dphist/algorithms/efpa.h"
#include "dphist/algorithms/grouping_smoothing.h"
#include "dphist/algorithms/identity_geometric.h"
#include "dphist/algorithms/identity_laplace.h"
#include "dphist/algorithms/mwem.h"
#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/p_hp.h"
#include "dphist/algorithms/privelet.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/obs/obs.h"

namespace dphist {

namespace {

/// Decorator recording per-publisher metrics; see PublisherRegistry docs.
/// All metric handles are resolved once at construction, so the enabled
/// Publish path touches no registry locks, and the disabled path is a
/// single branch plus the virtual dispatch.
class InstrumentedPublisher : public HistogramPublisher {
 public:
  explicit InstrumentedPublisher(std::unique_ptr<HistogramPublisher> inner)
      : inner_(std::move(inner)),
        name_(inner_->name()),
        runs_(obs::Registry::Global().GetCounter("publisher/" + name_ +
                                                 "/runs")),
        laplace_draws_(obs::Registry::Global().GetCounter(
            "publisher/" + name_ + "/laplace_draws")),
        geometric_draws_(obs::Registry::Global().GetCounter(
            "publisher/" + name_ + "/geometric_draws")),
        wall_ms_(
            obs::Registry::Global().GetDistribution("publisher/" + name_)),
        epsilon_(obs::Registry::Global().GetDistribution("publisher/" +
                                                         name_ + "/epsilon")) {
  }

  std::string name() const override { return name_; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override {
    if (!obs::Enabled()) {
      return inner_->Publish(histogram, epsilon, rng);
    }
    runs_.Increment();
    epsilon_.Record(epsilon);
    // Draws happen on this thread (samplers are never parallelized), so a
    // thread-local attribution scope routes them to this publisher even
    // when RunCell publishes several cells concurrently.
    obs::DrawAttributionScope attribution(&laplace_draws_, &geometric_draws_);
    const auto start = std::chrono::steady_clock::now();
    auto released = inner_->Publish(histogram, epsilon, rng);
    wall_ms_.Record(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count());
    return released;
  }

 private:
  std::unique_ptr<HistogramPublisher> inner_;
  std::string name_;
  obs::Counter& runs_;
  obs::Counter& laplace_draws_;
  obs::Counter& geometric_draws_;
  obs::Distribution& wall_ms_;
  obs::Distribution& epsilon_;
};

}  // namespace

std::vector<std::string> PublisherRegistry::PaperNames() {
  return {"dwork", "boost", "privelet", "noise_first", "structure_first"};
}

std::vector<std::string> PublisherRegistry::BuiltinNames() {
  std::vector<std::string> names = PaperNames();
  names.push_back("geometric");
  names.push_back("efpa");
  names.push_back("mwem");
  names.push_back("p_hp");
  names.push_back("ahp");
  names.push_back("gs");
  return names;
}

namespace {

std::unique_ptr<HistogramPublisher> MakeRaw(std::string_view name) {
  if (name == "dwork") {
    return std::unique_ptr<HistogramPublisher>(new IdentityLaplace());
  }
  if (name == "boost") {
    return std::unique_ptr<HistogramPublisher>(new BoostTree());
  }
  if (name == "privelet") {
    return std::unique_ptr<HistogramPublisher>(new Privelet());
  }
  if (name == "noise_first") {
    return std::unique_ptr<HistogramPublisher>(new NoiseFirst());
  }
  if (name == "structure_first") {
    return std::unique_ptr<HistogramPublisher>(new StructureFirst());
  }
  if (name == "geometric") {
    return std::unique_ptr<HistogramPublisher>(new IdentityGeometric());
  }
  if (name == "efpa") {
    return std::unique_ptr<HistogramPublisher>(new Efpa());
  }
  if (name == "mwem") {
    return std::unique_ptr<HistogramPublisher>(new Mwem());
  }
  if (name == "p_hp") {
    return std::unique_ptr<HistogramPublisher>(new PHPartition());
  }
  if (name == "ahp") {
    return std::unique_ptr<HistogramPublisher>(new Ahp());
  }
  if (name == "gs") {
    return std::unique_ptr<HistogramPublisher>(new GroupingSmoothing());
  }
  return nullptr;
}

}  // namespace

Result<std::unique_ptr<HistogramPublisher>> PublisherRegistry::Make(
    std::string_view name) {
  auto publisher = MakeRaw(name);
  if (publisher == nullptr) {
    return Status::NotFound("unknown publisher: " + std::string(name));
  }
  return Instrument(std::move(publisher));
}

std::unique_ptr<HistogramPublisher> PublisherRegistry::Instrument(
    std::unique_ptr<HistogramPublisher> publisher) {
  if (publisher == nullptr) {
    return publisher;
  }
  return std::unique_ptr<HistogramPublisher>(
      new InstrumentedPublisher(std::move(publisher)));
}

namespace {

std::vector<std::unique_ptr<HistogramPublisher>> MakeSuite(
    const std::vector<std::string>& names) {
  std::vector<std::unique_ptr<HistogramPublisher>> suite;
  for (const std::string& name : names) {
    auto made = PublisherRegistry::Make(name);
    if (made.ok()) {
      suite.push_back(std::move(made).value());
    }
  }
  return suite;
}

}  // namespace

std::vector<std::unique_ptr<HistogramPublisher>>
PublisherRegistry::MakePaperSuite() {
  return MakeSuite(PaperNames());
}

std::vector<std::unique_ptr<HistogramPublisher>> PublisherRegistry::MakeAll() {
  return MakeSuite(BuiltinNames());
}

}  // namespace dphist
