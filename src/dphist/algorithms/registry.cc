#include "dphist/algorithms/registry.h"

#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "dphist/algorithms/ahp.h"
#include "dphist/algorithms/boost_tree.h"
#include "dphist/algorithms/efpa.h"
#include "dphist/algorithms/grouping_smoothing.h"
#include "dphist/algorithms/identity_geometric.h"
#include "dphist/algorithms/identity_laplace.h"
#include "dphist/algorithms/mwem.h"
#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/p_hp.h"
#include "dphist/algorithms/privelet.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/common/env.h"
#include "dphist/obs/obs.h"
#include "dphist/sparse/sparse_pure.h"
#include "dphist/sparse/unknown_domain.h"

namespace dphist {

namespace {

/// Decorator recording per-publisher metrics; see PublisherRegistry docs.
/// All metric handles are resolved once at construction, so the enabled
/// Publish path touches no registry locks, and the disabled path is a
/// single branch plus the virtual dispatch.
class InstrumentedPublisher : public HistogramPublisher {
 public:
  explicit InstrumentedPublisher(std::unique_ptr<HistogramPublisher> inner)
      : inner_(std::move(inner)),
        name_(inner_->name()),
        runs_(obs::Registry::Global().GetCounter("publisher/" + name_ +
                                                 "/runs")),
        laplace_draws_(obs::Registry::Global().GetCounter(
            "publisher/" + name_ + "/laplace_draws")),
        geometric_draws_(obs::Registry::Global().GetCounter(
            "publisher/" + name_ + "/geometric_draws")),
        wall_ms_(
            obs::Registry::Global().GetDistribution("publisher/" + name_)),
        epsilon_(obs::Registry::Global().GetDistribution("publisher/" +
                                                         name_ + "/epsilon")) {
  }

  std::string name() const override { return name_; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override {
    if (!obs::Enabled()) {
      return inner_->Publish(histogram, epsilon, rng);
    }
    runs_.Increment();
    epsilon_.Record(epsilon);
    // Draws happen on this thread (samplers are never parallelized), so a
    // thread-local attribution scope routes them to this publisher even
    // when RunCell publishes several cells concurrently.
    obs::DrawAttributionScope attribution(&laplace_draws_, &geometric_draws_);
    const auto start = std::chrono::steady_clock::now();
    auto released = inner_->Publish(histogram, epsilon, rng);
    wall_ms_.Record(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count());
    return released;
  }

 private:
  std::unique_ptr<HistogramPublisher> inner_;
  std::string name_;
  obs::Counter& runs_;
  obs::Counter& laplace_draws_;
  obs::Counter& geometric_draws_;
  obs::Distribution& wall_ms_;
  obs::Distribution& epsilon_;
};

/// Sparse counterpart of InstrumentedPublisher. Sparse mechanisms report
/// release-shape observability (released / suppressed / spurious key
/// counts, the threshold) through SparsePublishStats, which only exists
/// once a run finishes — so the decorator, not the mechanism, owns the
/// counters; the mechanism stays obs-free.
class InstrumentedSparsePublisher : public sparse::SparseHistogramPublisher {
 public:
  explicit InstrumentedSparsePublisher(
      std::unique_ptr<sparse::SparseHistogramPublisher> inner)
      : inner_(std::move(inner)),
        name_(inner_->name()),
        runs_(obs::Registry::Global().GetCounter("publisher/" + name_ +
                                                 "/runs")),
        released_keys_(obs::Registry::Global().GetCounter(
            "publisher/" + name_ + "/released_keys")),
        suppressed_keys_(obs::Registry::Global().GetCounter(
            "publisher/" + name_ + "/suppressed_keys")),
        spurious_keys_(obs::Registry::Global().GetCounter(
            "publisher/" + name_ + "/spurious_keys")),
        laplace_draws_(obs::Registry::Global().GetCounter(
            "publisher/" + name_ + "/laplace_draws")),
        geometric_draws_(obs::Registry::Global().GetCounter(
            "publisher/" + name_ + "/geometric_draws")),
        wall_ms_(
            obs::Registry::Global().GetDistribution("publisher/" + name_)),
        epsilon_(obs::Registry::Global().GetDistribution("publisher/" + name_ +
                                                         "/epsilon")),
        threshold_(obs::Registry::Global().GetDistribution(
            "publisher/" + name_ + "/threshold")) {}

  std::string name() const override { return name_; }

  Result<sparse::SparseHistogram> Publish(
      const sparse::SparseHistogram& truth, double epsilon, Rng& rng,
      sparse::SparsePublishStats* stats) const override {
    if (!obs::Enabled()) {
      return inner_->Publish(truth, epsilon, rng, stats);
    }
    runs_.Increment();
    epsilon_.Record(epsilon);
    obs::DrawAttributionScope attribution(&laplace_draws_, &geometric_draws_);
    sparse::SparsePublishStats local;
    const auto start = std::chrono::steady_clock::now();
    auto released = inner_->Publish(truth, epsilon, rng, &local);
    wall_ms_.Record(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count());
    if (released.ok()) {
      released_keys_.Add(local.released_keys);
      suppressed_keys_.Add(local.suppressed_keys);
      spurious_keys_.Add(local.spurious_keys);
      threshold_.Record(local.threshold);
    }
    if (stats != nullptr) {
      *stats = local;
    }
    return released;
  }
  using sparse::SparseHistogramPublisher::Publish;

 private:
  std::unique_ptr<sparse::SparseHistogramPublisher> inner_;
  std::string name_;
  obs::Counter& runs_;
  obs::Counter& released_keys_;
  obs::Counter& suppressed_keys_;
  obs::Counter& spurious_keys_;
  obs::Counter& laplace_draws_;
  obs::Counter& geometric_draws_;
  obs::Distribution& wall_ms_;
  obs::Distribution& epsilon_;
  obs::Distribution& threshold_;
};

}  // namespace

std::vector<std::string> PublisherRegistry::PaperNames() {
  return {"dwork", "boost", "privelet", "noise_first", "structure_first"};
}

std::vector<std::string> PublisherRegistry::BuiltinNames() {
  std::vector<std::string> names = PaperNames();
  names.push_back("geometric");
  names.push_back("efpa");
  names.push_back("mwem");
  names.push_back("p_hp");
  names.push_back("ahp");
  names.push_back("gs");
  return names;
}

namespace {

std::unique_ptr<HistogramPublisher> MakeRaw(std::string_view name) {
  if (name == "dwork") {
    return std::unique_ptr<HistogramPublisher>(new IdentityLaplace());
  }
  if (name == "boost") {
    return std::unique_ptr<HistogramPublisher>(new BoostTree());
  }
  if (name == "privelet") {
    return std::unique_ptr<HistogramPublisher>(new Privelet());
  }
  if (name == "noise_first") {
    return std::unique_ptr<HistogramPublisher>(new NoiseFirst());
  }
  if (name == "structure_first") {
    return std::unique_ptr<HistogramPublisher>(new StructureFirst());
  }
  if (name == "geometric") {
    return std::unique_ptr<HistogramPublisher>(new IdentityGeometric());
  }
  if (name == "efpa") {
    return std::unique_ptr<HistogramPublisher>(new Efpa());
  }
  if (name == "mwem") {
    return std::unique_ptr<HistogramPublisher>(new Mwem());
  }
  if (name == "p_hp") {
    return std::unique_ptr<HistogramPublisher>(new PHPartition());
  }
  if (name == "ahp") {
    return std::unique_ptr<HistogramPublisher>(new Ahp());
  }
  if (name == "gs") {
    return std::unique_ptr<HistogramPublisher>(new GroupingSmoothing());
  }
  return nullptr;
}

}  // namespace

Result<std::unique_ptr<HistogramPublisher>> PublisherRegistry::Make(
    std::string_view name) {
  auto publisher = MakeRaw(name);
  if (publisher == nullptr) {
    return Status::NotFound("unknown publisher: " + std::string(name));
  }
  return Instrument(std::move(publisher));
}

std::unique_ptr<HistogramPublisher> PublisherRegistry::Instrument(
    std::unique_ptr<HistogramPublisher> publisher) {
  if (publisher == nullptr) {
    return publisher;
  }
  return std::unique_ptr<HistogramPublisher>(
      new InstrumentedPublisher(std::move(publisher)));
}

namespace {

std::vector<std::unique_ptr<HistogramPublisher>> MakeSuite(
    const std::vector<std::string>& names) {
  std::vector<std::unique_ptr<HistogramPublisher>> suite;
  for (const std::string& name : names) {
    auto made = PublisherRegistry::Make(name);
    if (made.ok()) {
      suite.push_back(std::move(made).value());
    }
  }
  return suite;
}

}  // namespace

std::vector<std::unique_ptr<HistogramPublisher>>
PublisherRegistry::MakePaperSuite() {
  return MakeSuite(PaperNames());
}

std::vector<std::unique_ptr<HistogramPublisher>> PublisherRegistry::MakeAll() {
  return MakeSuite(BuiltinNames());
}

std::vector<std::string> PublisherRegistry::SparseNames() {
  return {"sparse_pure", "unknown_domain"};
}

bool PublisherRegistry::IsSparse(std::string_view name) {
  return name == "sparse_pure" || name == "unknown_domain";
}

Result<std::unique_ptr<sparse::SparseHistogramPublisher>>
PublisherRegistry::MakeSparse(std::string_view name) {
  std::unique_ptr<sparse::SparseHistogramPublisher> publisher;
  if (name == "sparse_pure") {
    publisher = std::make_unique<sparse::SparsePurePublisher>();
  } else if (name == "unknown_domain") {
    publisher = std::make_unique<sparse::UnknownDomainPublisher>();
  } else {
    return Status::NotFound("unknown sparse publisher: " + std::string(name));
  }
  return InstrumentSparse(std::move(publisher));
}

std::unique_ptr<sparse::SparseHistogramPublisher>
PublisherRegistry::InstrumentSparse(
    std::unique_ptr<sparse::SparseHistogramPublisher> publisher) {
  if (publisher == nullptr) {
    return publisher;
  }
  return std::unique_ptr<sparse::SparseHistogramPublisher>(
      new InstrumentedSparsePublisher(std::move(publisher)));
}

std::string PublisherRegistry::NameFromEnv(std::string_view fallback) {
  const std::optional<std::string> value = GetEnv("DPHIST_PUBLISHER");
  if (value.has_value() && !value->empty()) {
    return *value;
  }
  return std::string(fallback);
}

}  // namespace dphist
