#include "dphist/algorithms/registry.h"

#include "dphist/algorithms/ahp.h"
#include "dphist/algorithms/boost_tree.h"
#include "dphist/algorithms/efpa.h"
#include "dphist/algorithms/grouping_smoothing.h"
#include "dphist/algorithms/identity_geometric.h"
#include "dphist/algorithms/identity_laplace.h"
#include "dphist/algorithms/mwem.h"
#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/p_hp.h"
#include "dphist/algorithms/privelet.h"
#include "dphist/algorithms/structure_first.h"

namespace dphist {

std::vector<std::string> PublisherRegistry::PaperNames() {
  return {"dwork", "boost", "privelet", "noise_first", "structure_first"};
}

std::vector<std::string> PublisherRegistry::BuiltinNames() {
  std::vector<std::string> names = PaperNames();
  names.push_back("geometric");
  names.push_back("efpa");
  names.push_back("mwem");
  names.push_back("p_hp");
  names.push_back("ahp");
  names.push_back("gs");
  return names;
}

Result<std::unique_ptr<HistogramPublisher>> PublisherRegistry::Make(
    std::string_view name) {
  if (name == "dwork") {
    return std::unique_ptr<HistogramPublisher>(new IdentityLaplace());
  }
  if (name == "boost") {
    return std::unique_ptr<HistogramPublisher>(new BoostTree());
  }
  if (name == "privelet") {
    return std::unique_ptr<HistogramPublisher>(new Privelet());
  }
  if (name == "noise_first") {
    return std::unique_ptr<HistogramPublisher>(new NoiseFirst());
  }
  if (name == "structure_first") {
    return std::unique_ptr<HistogramPublisher>(new StructureFirst());
  }
  if (name == "geometric") {
    return std::unique_ptr<HistogramPublisher>(new IdentityGeometric());
  }
  if (name == "efpa") {
    return std::unique_ptr<HistogramPublisher>(new Efpa());
  }
  if (name == "mwem") {
    return std::unique_ptr<HistogramPublisher>(new Mwem());
  }
  if (name == "p_hp") {
    return std::unique_ptr<HistogramPublisher>(new PHPartition());
  }
  if (name == "ahp") {
    return std::unique_ptr<HistogramPublisher>(new Ahp());
  }
  if (name == "gs") {
    return std::unique_ptr<HistogramPublisher>(new GroupingSmoothing());
  }
  return Status::NotFound("unknown publisher: " + std::string(name));
}

namespace {

std::vector<std::unique_ptr<HistogramPublisher>> MakeSuite(
    const std::vector<std::string>& names) {
  std::vector<std::unique_ptr<HistogramPublisher>> suite;
  for (const std::string& name : names) {
    auto made = PublisherRegistry::Make(name);
    if (made.ok()) {
      suite.push_back(std::move(made).value());
    }
  }
  return suite;
}

}  // namespace

std::vector<std::unique_ptr<HistogramPublisher>>
PublisherRegistry::MakePaperSuite() {
  return MakeSuite(PaperNames());
}

std::vector<std::unique_ptr<HistogramPublisher>> PublisherRegistry::MakeAll() {
  return MakeSuite(BuiltinNames());
}

}  // namespace dphist
