#ifndef DPHIST_ALGORITHMS_REGISTRY_H_
#define DPHIST_ALGORITHMS_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dphist/algorithms/publisher.h"
#include "dphist/common/result.h"

namespace dphist {

/// \brief Factory for the built-in publishers, so examples and benches can
/// enumerate the algorithm suites uniformly.
///
/// Paper suite (the algorithms in the ICDE'12 evaluation):
///   "dwork", "boost", "privelet", "noise_first", "structure_first".
/// Extensions (related algorithms added by this library):
///   "geometric", "efpa", "mwem", "p_hp", "ahp", "gs".
/// Each factory call returns a fresh instance with the library defaults
/// (customize by constructing the concrete class directly).
class PublisherRegistry {
 public:
  /// The paper's algorithm names, in presentation order.
  static std::vector<std::string> PaperNames();

  /// All built-in names: the paper suite followed by the extensions.
  static std::vector<std::string> BuiltinNames();

  /// Creates a publisher by name; NotFound for unknown names.
  static Result<std::unique_ptr<HistogramPublisher>> Make(
      std::string_view name);

  /// Creates the paper suite, in PaperNames() order.
  static std::vector<std::unique_ptr<HistogramPublisher>> MakePaperSuite();

  /// Creates every built-in publisher, in BuiltinNames() order.
  static std::vector<std::unique_ptr<HistogramPublisher>> MakeAll();
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_REGISTRY_H_
