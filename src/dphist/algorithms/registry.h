#ifndef DPHIST_ALGORITHMS_REGISTRY_H_
#define DPHIST_ALGORITHMS_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dphist/algorithms/publisher.h"
#include "dphist/common/result.h"
#include "dphist/sparse/sparse_publisher.h"

namespace dphist {

/// \brief Factory for the built-in publishers, so examples and benches can
/// enumerate the algorithm suites uniformly.
///
/// Paper suite (the algorithms in the ICDE'12 evaluation):
///   "dwork", "boost", "privelet", "noise_first", "structure_first".
/// Extensions (related algorithms added by this library):
///   "geometric", "efpa", "mwem", "p_hp", "ahp", "gs".
/// Each factory call returns a fresh instance with the library defaults
/// (customize by constructing the concrete class directly).
///
/// Every publisher the factory returns is wrapped in an observability
/// decorator (see `Instrument`) that records, per publisher name and only
/// while obs is enabled: publication count, per-run wall time, epsilon per
/// run, and Laplace/geometric draws consumed. The wrapper preserves
/// `name()` and the thread-safety contract, and forwards everything else
/// untouched — parallel_experiment_test proves the published histograms
/// are unchanged bit-for-bit.
class PublisherRegistry {
 public:
  /// The paper's algorithm names, in presentation order.
  static std::vector<std::string> PaperNames();

  /// All built-in names: the paper suite followed by the extensions.
  static std::vector<std::string> BuiltinNames();

  /// Creates a publisher by name; NotFound for unknown names.
  static Result<std::unique_ptr<HistogramPublisher>> Make(
      std::string_view name);

  /// Creates the paper suite, in PaperNames() order.
  static std::vector<std::unique_ptr<HistogramPublisher>> MakePaperSuite();

  /// Creates every built-in publisher, in BuiltinNames() order.
  static std::vector<std::unique_ptr<HistogramPublisher>> MakeAll();

  /// Wraps `publisher` in the timing/counting decorator the factory applies
  /// to every built-in. Exposed so directly constructed publishers (custom
  /// Options) can opt into the same per-publisher metrics:
  ///   `publisher/<name>/runs` (counter), `publisher/<name>` (wall-ms
  ///   distribution), `publisher/<name>/epsilon` (distribution),
  ///   `publisher/<name>/laplace_draws` / `geometric_draws` (counters).
  static std::unique_ptr<HistogramPublisher> Instrument(
      std::unique_ptr<HistogramPublisher> publisher);

  /// Sparse publisher names (`src/dphist/sparse/`), registered alongside
  /// the dense suite: "sparse_pure" (Kerschbaum-Lee-Wu pure-epsilon) and
  /// "unknown_domain" (Rogers stability threshold, (eps, delta)-DP).
  static std::vector<std::string> SparseNames();

  /// True iff `name` names a sparse publisher (see SparseNames()).
  static bool IsSparse(std::string_view name);

  /// Creates a sparse publisher by name with library-default Options,
  /// wrapped in the sparse observability decorator; NotFound for unknown
  /// names (including dense ones — the two families have distinct
  /// interfaces).
  static Result<std::unique_ptr<sparse::SparseHistogramPublisher>> MakeSparse(
      std::string_view name);

  /// Sparse counterpart of `Instrument`: wraps `publisher` so each run
  /// records `publisher/<name>/runs`, `/released_keys`, `/suppressed_keys`,
  /// `/spurious_keys` (counters), `publisher/<name>` (wall-ms
  /// distribution), `/epsilon` and `/threshold` (distributions).
  static std::unique_ptr<sparse::SparseHistogramPublisher> InstrumentSparse(
      std::unique_ptr<sparse::SparseHistogramPublisher> publisher);

  /// Resolves a publisher name from the `DPHIST_PUBLISHER` environment
  /// variable, falling back to `fallback` when unset or empty. The value
  /// is returned verbatim — a typo surfaces later as the factory's
  /// NotFound rather than being silently ignored.
  static std::string NameFromEnv(std::string_view fallback);
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_REGISTRY_H_
