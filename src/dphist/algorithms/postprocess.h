#ifndef DPHIST_ALGORITHMS_POSTPROCESS_H_
#define DPHIST_ALGORITHMS_POSTPROCESS_H_

#include <vector>

#include "dphist/hist/histogram.h"

namespace dphist {

/// \brief Privacy-free post-processing of released histograms.
///
/// Every function here consumes only already-published (noisy) data, so by
/// the post-processing property of differential privacy none of them affect
/// the privacy guarantee. They can, however, improve accuracy by folding in
/// public knowledge about the true data (non-negativity, integrality, a
/// known total).

/// Clamps every count at zero. When the true counts are non-negative this
/// never increases, and typically decreases, the L2 error.
Histogram ClampNonNegative(const Histogram& histogram);

/// Rounds every count to the nearest integer (true counts are integers).
Histogram RoundToIntegers(const Histogram& histogram);

/// Rescales the histogram so its total equals `known_total` (useful when
/// the dataset's cardinality is public). If the clamped counts sum to zero
/// the mass is spread uniformly.
Histogram NormalizeTotal(const Histogram& histogram, double known_total);

/// Projects the counts onto the closest (in L2) non-increasing sequence,
/// via the pool-adjacent-violators algorithm. When the true histogram is
/// known to be non-increasing (e.g. a degree distribution's tail), this is
/// free post-processing that never increases the L2 error.
Histogram IsotonicNonIncreasing(const Histogram& histogram);

/// Projects onto the closest non-decreasing sequence (mirror of the
/// above, e.g. for CDF-like releases).
Histogram IsotonicNonDecreasing(const Histogram& histogram);

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_POSTPROCESS_H_
