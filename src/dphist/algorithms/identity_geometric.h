#ifndef DPHIST_ALGORITHMS_IDENTITY_GEOMETRIC_H_
#define DPHIST_ALGORITHMS_IDENTITY_GEOMETRIC_H_

#include <string>

#include "dphist/algorithms/publisher.h"

namespace dphist {

/// \brief Integer-valued Dwork baseline: add two-sided geometric (discrete
/// Laplace) noise to every unit-bin count (library extension).
///
/// Same privacy argument as IdentityLaplace (sensitivity-1 counts,
/// parallel composition over disjoint bins), but the release stays
/// integral — useful when downstream consumers require genuine counts —
/// and the sampler involves no floating-point inverse CDF, avoiding the
/// Mironov-style side channel of textbook Laplace sampling. The geometric
/// mechanism is also universally utility-maximizing for count queries
/// (Ghosh, Roughgarden & Sundararajan).
///
/// Input counts are rounded to the nearest integer before perturbation
/// (true histograms are integral by definition).
class IdentityGeometric final : public HistogramPublisher {
 public:
  IdentityGeometric() = default;

  std::string name() const override { return "geometric"; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override;
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_IDENTITY_GEOMETRIC_H_
