#ifndef DPHIST_ALGORITHMS_IDENTITY_GEOMETRIC_H_
#define DPHIST_ALGORITHMS_IDENTITY_GEOMETRIC_H_

#include <string>

#include "dphist/algorithms/publisher.h"
#include "dphist/random/noise_batch.h"

namespace dphist {

/// \brief Integer-valued Dwork baseline: add two-sided geometric (discrete
/// Laplace) noise to every unit-bin count (library extension).
///
/// Same privacy argument as IdentityLaplace (sensitivity-1 counts,
/// parallel composition over disjoint bins), but the release stays
/// integral — useful when downstream consumers require genuine counts —
/// and the sampler involves no floating-point inverse CDF, avoiding the
/// Mironov-style side channel of textbook Laplace sampling. The geometric
/// mechanism is also universally utility-maximizing for count queries
/// (Ghosh, Roughgarden & Sundararajan).
///
/// Input counts are rounded to the nearest integer before perturbation
/// (true histograms are integral by definition).
class IdentityGeometric final : public HistogramPublisher {
 public:
  struct Options {
    /// Sampling construction for the per-bin noise (DESIGN §10): the
    /// textbook scalar sampler, or the exact batched CDF-inversion kernel
    /// (any non-textbook model). kAuto resolves DPHIST_NOISE_MODEL.
    NoiseModel noise_model = NoiseModel::kAuto;
  };

  IdentityGeometric() = default;
  explicit IdentityGeometric(Options options) : options_(options) {}

  std::string name() const override { return "geometric"; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_IDENTITY_GEOMETRIC_H_
