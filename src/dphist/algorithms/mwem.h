#ifndef DPHIST_ALGORITHMS_MWEM_H_
#define DPHIST_ALGORITHMS_MWEM_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dphist/algorithms/publisher.h"
#include "dphist/query/range_query.h"

namespace dphist {

/// \brief MWEM — Multiplicative Weights / Exponential Mechanism (Hardt,
/// Ligett & McSherry, NIPS'12), the classic workload-driven baseline the
/// DP-histogram literature measures against (library extension).
///
/// MWEM maintains a synthetic distribution over the unit bins,
/// initialized uniform, and iterates T times:
///   1. (eps/(2T) each) Exponential mechanism selects the workload query
///      on which the synthetic histogram errs most (utility
///      |q(true) - q(synth)|, per-record sensitivity 1).
///   2. (eps/(2T) each) Laplace-measure the selected query's true answer.
///   3. Multiplicative-weights update: bins inside the query are scaled by
///      exp( (measurement - q(synth)) / (2 * total) ), then renormalized.
///
/// A small slice of the budget (Options::total_budget_ratio) first
/// estimates the dataset cardinality, which scales the synthetic
/// distribution into counts; the remainder drives the T iterations.
///
/// Privacy: the total estimate, the T selections, and the T measurements
/// compose sequentially to exactly epsilon.
class Mwem final : public HistogramPublisher {
 public:
  struct Options {
    /// Number of MWEM iterations T.
    std::size_t iterations = 10;
    /// The workload to optimize for. When empty, Publish generates
    /// `default_workload_size` random ranges from its Rng (so the
    /// publisher is usable in generic harnesses).
    std::vector<RangeQuery> workload;
    /// Size of the generated workload when `workload` is empty.
    std::size_t default_workload_size = 200;
    /// Fraction of epsilon spent estimating the dataset cardinality.
    /// Must lie in (0, 1).
    double total_budget_ratio = 0.1;
    /// Clamp published counts at zero (MWEM's output is non-negative by
    /// construction unless the noisy total went negative).
    bool clamp_nonnegative = true;
  };

  /// Diagnostics for tests and benches.
  struct Details {
    /// The noisy cardinality estimate used to scale the distribution.
    double noisy_total = 0.0;
    /// Indices (into the workload) of the queries selected per iteration.
    std::vector<std::size_t> selected_queries;
  };

  Mwem();
  explicit Mwem(Options options);

  std::string name() const override { return "mwem"; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override;

  /// Like Publish, additionally filling `details` (may be null).
  Result<Histogram> PublishWithDetails(const Histogram& histogram,
                                       double epsilon, Rng& rng,
                                       Details* details) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_MWEM_H_
