#include "dphist/algorithms/boost_tree.h"

#include <algorithm>

#include "dphist/privacy/laplace_mechanism.h"
#include "dphist/transform/interval_tree.h"

namespace dphist {

BoostTree::BoostTree() : options_(Options()) {}

BoostTree::BoostTree(Options options) : options_(options) {}

Result<Histogram> BoostTree::Publish(const Histogram& histogram,
                                     double epsilon, Rng& rng) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(histogram, epsilon));
  if (options_.fanout < 2) {
    return Status::InvalidArgument("BoostTree: fanout must be >= 2");
  }
  const std::size_t n = histogram.size();

  // Pad to the next power of the fanout.
  std::size_t padded = 1;
  while (padded < n) {
    padded *= options_.fanout;
  }
  std::vector<double> leaves = histogram.counts();
  leaves.resize(padded, 0.0);

  auto tree = IntervalTree::Create(padded, options_.fanout);
  if (!tree.ok()) {
    return tree.status();
  }
  auto sums = tree.value().NodeSums(leaves);
  if (!sums.ok()) {
    return sums.status();
  }

  // One record touches one node per level: sensitivity = number of levels.
  const double levels = static_cast<double>(tree.value().num_levels());
  auto mechanism = LaplaceMechanism::Create(epsilon, levels);
  if (!mechanism.ok()) {
    return mechanism.status();
  }
  const std::vector<double> noisy =
      mechanism.value().PerturbVector(sums.value(), rng);

  auto inferred = tree.value().ConstrainedInference(noisy);
  if (!inferred.ok()) {
    return inferred.status();
  }

  std::vector<double> out(inferred.value().begin(),
                          inferred.value().begin() + static_cast<long>(n));
  if (options_.clamp_nonnegative) {
    for (double& v : out) {
      v = std::max(v, 0.0);
    }
  }
  return Histogram(std::move(out));
}

}  // namespace dphist
