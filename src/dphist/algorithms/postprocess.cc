#include "dphist/algorithms/postprocess.h"

#include <cmath>

#include "dphist/common/math_util.h"

namespace dphist {

Histogram ClampNonNegative(const Histogram& histogram) {
  std::vector<double> counts = histogram.counts();
  for (double& v : counts) {
    if (v < 0.0) {
      v = 0.0;
    }
  }
  return Histogram(std::move(counts));
}

Histogram RoundToIntegers(const Histogram& histogram) {
  std::vector<double> counts = histogram.counts();
  for (double& v : counts) {
    v = std::nearbyint(v);
  }
  return Histogram(std::move(counts));
}

Histogram NormalizeTotal(const Histogram& histogram, double known_total) {
  std::vector<double> counts = histogram.counts();
  KahanSum positive_total;
  for (double& v : counts) {
    if (v < 0.0) {
      v = 0.0;
    }
    positive_total.Add(v);
  }
  if (counts.empty()) {
    return Histogram(std::move(counts));
  }
  if (positive_total.Total() <= 0.0) {
    const double uniform = known_total / static_cast<double>(counts.size());
    for (double& v : counts) {
      v = uniform;
    }
    return Histogram(std::move(counts));
  }
  const double factor = known_total / positive_total.Total();
  for (double& v : counts) {
    v *= factor;
  }
  return Histogram(std::move(counts));
}

namespace {

// Pool-adjacent-violators for the non-decreasing case; the non-increasing
// case reverses the input, solves, and reverses back.
std::vector<double> PavNonDecreasing(const std::vector<double>& values) {
  struct Block {
    double sum;
    std::size_t count;
    double mean() const { return sum / static_cast<double>(count); }
  };
  std::vector<Block> blocks;
  blocks.reserve(values.size());
  for (double v : values) {
    blocks.push_back(Block{v, 1});
    // Merge backwards while the monotonicity constraint is violated.
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].mean() > blocks.back().mean()) {
      const Block last = blocks.back();
      blocks.pop_back();
      blocks.back().sum += last.sum;
      blocks.back().count += last.count;
    }
  }
  std::vector<double> out;
  out.reserve(values.size());
  for (const Block& block : blocks) {
    for (std::size_t i = 0; i < block.count; ++i) {
      out.push_back(block.mean());
    }
  }
  return out;
}

}  // namespace

Histogram IsotonicNonDecreasing(const Histogram& histogram) {
  return Histogram(PavNonDecreasing(histogram.counts()));
}

Histogram IsotonicNonIncreasing(const Histogram& histogram) {
  std::vector<double> reversed(histogram.counts().rbegin(),
                               histogram.counts().rend());
  std::vector<double> fitted = PavNonDecreasing(reversed);
  return Histogram(std::vector<double>(fitted.rbegin(), fitted.rend()));
}

}  // namespace dphist
