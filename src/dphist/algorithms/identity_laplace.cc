#include "dphist/algorithms/identity_laplace.h"

#include "dphist/privacy/laplace_mechanism.h"

namespace dphist {

Result<Histogram> IdentityLaplace::Publish(const Histogram& histogram,
                                           double epsilon, Rng& rng) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(histogram, epsilon));
  auto mechanism = LaplaceMechanism::Create(epsilon, /*sensitivity=*/1.0,
                                            options_.noise_model);
  if (!mechanism.ok()) {
    return mechanism.status();
  }
  return Histogram(mechanism.value().PerturbVector(histogram.counts(), rng));
}

}  // namespace dphist
