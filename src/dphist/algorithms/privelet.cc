#include "dphist/algorithms/privelet.h"

#include <algorithm>

#include "dphist/random/distributions.h"
#include "dphist/transform/haar_wavelet.h"

namespace dphist {

Privelet::Privelet() : options_(Options()) {}

Privelet::Privelet(Options options) : options_(options) {}

Result<Histogram> Privelet::Publish(const Histogram& histogram,
                                    double epsilon, Rng& rng) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(histogram, epsilon));
  const std::size_t n = histogram.size();

  const std::vector<double> padded =
      HaarWavelet::PadToPowerOfTwo(histogram.counts());
  auto coefficients = HaarWavelet::Forward(padded);
  if (!coefficients.ok()) {
    return coefficients.status();
  }
  std::vector<double> noisy = std::move(coefficients).value();

  const std::size_t padded_n = padded.size();
  const double rho = HaarWavelet::GeneralizedSensitivity(padded_n);
  for (std::size_t t = 0; t < noisy.size(); ++t) {
    const double weight = HaarWavelet::WeightOf(t, padded_n);
    const double scale = rho / (epsilon * weight);
    noisy[t] += SampleLaplace(rng, scale);
  }

  auto reconstructed = HaarWavelet::Inverse(noisy);
  if (!reconstructed.ok()) {
    return reconstructed.status();
  }
  std::vector<double> out(reconstructed.value().begin(),
                          reconstructed.value().begin() +
                              static_cast<long>(n));
  if (options_.clamp_nonnegative) {
    for (double& v : out) {
      v = std::max(v, 0.0);
    }
  }
  return Histogram(std::move(out));
}

}  // namespace dphist
