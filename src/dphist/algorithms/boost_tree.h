#ifndef DPHIST_ALGORITHMS_BOOST_TREE_H_
#define DPHIST_ALGORITHMS_BOOST_TREE_H_

#include <cstddef>
#include <string>

#include "dphist/algorithms/publisher.h"

namespace dphist {

/// \brief Boost — the hierarchical baseline of Hay, Rastogi, Miklau & Suciu
/// (VLDB'10), compared against in the paper's evaluation.
///
/// Pipeline:
///   1. Pad the domain with zero bins to a power of the fanout f, and build
///      the complete f-ary interval tree over the unit bins.
///   2. Add Lap(L/epsilon) noise to every node's interval sum, where L is
///      the number of tree levels: one record changes exactly one node per
///      level, so the full tree of sums has L1 sensitivity L.
///   3. Run constrained inference (two-pass least squares) to make the tree
///      consistent; publish the inferred leaves, truncated back to the
///      original domain.
///
/// The consistency step boosts accuracy for range queries: any range is
/// covered by O(f log_f n) nodes, so range-query noise grows
/// polylogarithmically instead of linearly in the range length.
class BoostTree final : public HistogramPublisher {
 public:
  struct Options {
    /// Tree fanout; Hay et al. found small fanouts near 2-16 effective.
    std::size_t fanout = 2;
    /// Clamp published counts at zero.
    bool clamp_nonnegative = false;
  };

  BoostTree();
  explicit BoostTree(Options options);

  std::string name() const override { return "boost"; }

  Result<Histogram> Publish(const Histogram& histogram, double epsilon,
                            Rng& rng) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dphist

#endif  // DPHIST_ALGORITHMS_BOOST_TREE_H_
