#include "dphist/algorithms/p_hp.h"

#include <algorithm>
#include <cmath>

#include "dphist/common/math_util.h"
#include "dphist/hist/interval_cost.h"
#include "dphist/privacy/exponential_mechanism.h"
#include "dphist/privacy/laplace_mechanism.h"

namespace dphist {

namespace {

// Sum of |x_i - mean| over [begin, end) from prefix tables would need the
// Fenwick machinery; bisection evaluates only O(n log k) interval costs, so
// a direct O(length) evaluation is cheaper overall and simpler.
double AbsoluteCost(const std::vector<double>& counts, std::size_t begin,
                    std::size_t end) {
  if (end - begin <= 1) {
    return 0.0;
  }
  KahanSum sum;
  for (std::size_t i = begin; i < end; ++i) {
    sum.Add(counts[i]);
  }
  const double mean = sum.Total() / static_cast<double>(end - begin);
  KahanSum cost;
  for (std::size_t i = begin; i < end; ++i) {
    cost.Add(std::abs(counts[i] - mean));
  }
  return cost.Total();
}

}  // namespace

PHPartition::PHPartition() : options_(Options()) {}

PHPartition::PHPartition(Options options) : options_(options) {}

Result<Histogram> PHPartition::Publish(const Histogram& histogram,
                                       double epsilon, Rng& rng) const {
  return PublishWithDetails(histogram, epsilon, rng, nullptr);
}

Result<Histogram> PHPartition::PublishWithDetails(const Histogram& histogram,
                                                  double epsilon, Rng& rng,
                                                  Details* details) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(histogram, epsilon));
  if (!(options_.structure_budget_ratio > 0.0) ||
      !(options_.structure_budget_ratio < 1.0)) {
    return Status::InvalidArgument(
        "PHPartition: structure_budget_ratio must lie in (0, 1)");
  }
  const std::size_t n = histogram.size();
  const std::vector<double>& counts = histogram.counts();

  // Resolve the bucket count to a power of two <= n.
  std::size_t requested = options_.num_buckets;
  if (requested == 0) {
    requested = std::max<std::size_t>(2, n / 16);
  }
  requested = std::min(requested, n);
  std::size_t k = 1;
  while (k * 2 <= requested) {
    k *= 2;
  }
  const std::size_t levels = FloorLog2(k);

  double eps_structure = 0.0;
  std::vector<std::size_t> cuts;
  if (levels > 0) {
    eps_structure = options_.structure_budget_ratio * epsilon;
    const double eps_level = eps_structure / static_cast<double>(levels);
    auto em =
        ExponentialMechanism::Create(eps_level, /*utility_sensitivity=*/2.0);
    if (!em.ok()) {
      return em.status();
    }
    // Frontier of intervals to split, as [begin, end) pairs.
    std::vector<std::pair<std::size_t, std::size_t>> frontier = {{0, n}};
    for (std::size_t level = 0; level < levels; ++level) {
      std::vector<std::pair<std::size_t, std::size_t>> next;
      next.reserve(frontier.size() * 2);
      for (const auto& [begin, end] : frontier) {
        if (end - begin <= 1) {
          next.push_back({begin, end});  // cannot split further
          continue;
        }
        std::vector<double> utilities;
        utilities.reserve(end - begin - 1);
        for (std::size_t split = begin + 1; split < end; ++split) {
          utilities.push_back(-(AbsoluteCost(counts, begin, split) +
                                AbsoluteCost(counts, split, end)));
        }
        auto pick = em.value().Select(utilities, rng);
        if (!pick.ok()) {
          return pick.status();
        }
        const std::size_t split = begin + 1 + pick.value();
        cuts.push_back(split);
        next.push_back({begin, split});
        next.push_back({split, end});
      }
      frontier = std::move(next);
    }
    std::sort(cuts.begin(), cuts.end());
  }

  const double eps_counts = epsilon - eps_structure;
  auto structure = Bucketization::FromCuts(n, cuts);
  if (!structure.ok()) {
    return structure.status();
  }
  auto laplace = LaplaceMechanism::Create(eps_counts, /*sensitivity=*/1.0);
  if (!laplace.ok()) {
    return laplace.status();
  }
  const Bucketization& buckets = structure.value();
  std::vector<double> means;
  means.reserve(buckets.num_buckets());
  for (std::size_t i = 0; i < buckets.num_buckets(); ++i) {
    const Bucket b = buckets.bucket(i);
    KahanSum sum;
    for (std::size_t j = b.begin; j < b.end; ++j) {
      sum.Add(counts[j]);
    }
    const double noisy_sum = laplace.value().Perturb(sum.Total(), rng);
    means.push_back(noisy_sum / static_cast<double>(b.length()));
  }
  auto published = buckets.Expand(means);
  if (!published.ok()) {
    return published.status();
  }
  std::vector<double> out = std::move(published).value();
  if (options_.clamp_nonnegative) {
    for (double& v : out) {
      v = std::max(v, 0.0);
    }
  }

  if (details != nullptr) {
    details->num_buckets = buckets.num_buckets();
    details->levels = levels;
    details->cuts = buckets.cuts();
    details->structure_epsilon = eps_structure;
    details->count_epsilon = eps_counts;
  }
  return Histogram(std::move(out));
}

}  // namespace dphist
