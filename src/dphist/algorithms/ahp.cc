#include "dphist/algorithms/ahp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dphist/common/math_util.h"
#include "dphist/privacy/laplace_mechanism.h"

namespace dphist {

Ahp::Ahp() : options_(Options()) {}

Ahp::Ahp(Options options) : options_(options) {}

Result<Histogram> Ahp::Publish(const Histogram& histogram, double epsilon,
                               Rng& rng) const {
  return PublishWithDetails(histogram, epsilon, rng, nullptr);
}

Result<Histogram> Ahp::PublishWithDetails(const Histogram& histogram,
                                          double epsilon, Rng& rng,
                                          Details* details) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(histogram, epsilon));
  if (!(options_.structure_budget_ratio > 0.0) ||
      !(options_.structure_budget_ratio < 1.0)) {
    return Status::InvalidArgument(
        "Ahp: structure_budget_ratio must lie in (0, 1)");
  }
  if (!(options_.cluster_tolerance_scale > 0.0)) {
    return Status::InvalidArgument(
        "Ahp: cluster_tolerance_scale must be > 0");
  }
  const std::size_t n = histogram.size();
  const double eps_structure = options_.structure_budget_ratio * epsilon;
  const double eps_counts = epsilon - eps_structure;

  // Phase 1: noisy histogram.
  auto phase1 = LaplaceMechanism::Create(eps_structure, /*sensitivity=*/1.0);
  if (!phase1.ok()) {
    return phase1.status();
  }
  std::vector<double> noisy =
      phase1.value().PerturbVector(histogram.counts(), rng);

  // Phase 2 (post-processing): threshold, sort, greedy value-clustering.
  std::size_t thresholded = 0;
  if (options_.threshold_small_counts) {
    const double theta =
        std::log(static_cast<double>(std::max<std::size_t>(n, 2))) /
        eps_structure;
    for (double& v : noisy) {
      if (v < theta) {
        v = 0.0;
        ++thresholded;
      }
    }
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return noisy[a] > noisy[b];
  });

  const double tolerance = options_.cluster_tolerance_scale / eps_counts;
  // clusters[i] = cluster id of the i-th bin in sorted order.
  std::vector<std::vector<std::size_t>> clusters;
  for (std::size_t rank = 0; rank < n; ++rank) {
    const std::size_t bin = order[rank];
    if (clusters.empty() ||
        noisy[clusters.back().front()] - noisy[bin] > tolerance) {
      clusters.push_back({bin});
    } else {
      clusters.back().push_back(bin);
    }
  }

  // Phase 3: noisy cluster totals over the TRUE counts (clusters are
  // disjoint bin sets -> parallel composition).
  auto phase3 = LaplaceMechanism::Create(eps_counts, /*sensitivity=*/1.0);
  if (!phase3.ok()) {
    return phase3.status();
  }
  std::vector<double> out(n, 0.0);
  for (const std::vector<std::size_t>& cluster : clusters) {
    KahanSum sum;
    for (std::size_t bin : cluster) {
      sum.Add(histogram.count(bin));
    }
    const double noisy_total = phase3.value().Perturb(sum.Total(), rng);
    const double mean =
        noisy_total / static_cast<double>(cluster.size());
    for (std::size_t bin : cluster) {
      out[bin] = mean;
    }
  }
  if (options_.clamp_nonnegative) {
    for (double& v : out) {
      v = std::max(v, 0.0);
    }
  }

  if (details != nullptr) {
    details->num_clusters = clusters.size();
    details->thresholded_bins = thresholded;
    details->structure_epsilon = eps_structure;
    details->count_epsilon = eps_counts;
  }
  return Histogram(std::move(out));
}

}  // namespace dphist
