#include "dphist/algorithms/noise_first.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dphist/hist/interval_cost.h"
#include "dphist/hist/vopt_dp.h"
#include "dphist/privacy/laplace_mechanism.h"

namespace dphist {

NoiseFirst::NoiseFirst() : options_(Options()) {}

NoiseFirst::NoiseFirst(Options options) : options_(options) {}

std::size_t NoiseFirst::AutoGridStep(std::size_t n) {
  if (n <= 2048) {
    return 1;
  }
  return (n + 1023) / 1024;
}

Result<Histogram> NoiseFirst::Publish(const Histogram& histogram,
                                      double epsilon, Rng& rng) const {
  return PublishWithDetails(histogram, epsilon, rng, nullptr);
}

Result<Histogram> NoiseFirst::PublishWithDetails(const Histogram& histogram,
                                                 double epsilon, Rng& rng,
                                                 Details* details) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(histogram, epsilon));
  const std::size_t n = histogram.size();

  // Step 1: spend the whole budget on per-bin Laplace noise.
  auto mechanism = LaplaceMechanism::Create(epsilon, /*sensitivity=*/1.0,
                                            options_.noise_model);
  if (!mechanism.ok()) {
    return mechanism.status();
  }
  const std::vector<double> noisy =
      mechanism.value().PerturbVector(histogram.counts(), rng);

  // Step 2: v-opt DP over the noisy counts (post-processing).
  IntervalCostTable::Options cost_options;
  cost_options.kind = CostKind::kSquared;
  cost_options.grid_step =
      options_.grid_step == 0 ? AutoGridStep(n) : options_.grid_step;
  auto cost_table = IntervalCostTable::Create(noisy, cost_options);
  if (!cost_table.ok()) {
    return cost_table.status();
  }
  const IntervalCostTable& costs = cost_table.value();
  const std::size_t m = costs.num_candidates();

  std::size_t max_k;
  if (options_.fixed_buckets != 0) {
    max_k = std::min(options_.fixed_buckets, m);
  } else if (options_.max_buckets != 0) {
    max_k = std::min(options_.max_buckets, m);
  } else {
    max_k = std::min<std::size_t>(m, 256);
  }
  VOptSolver::SolveOptions solve_options;
  solve_options.strategy = options_.vopt_strategy;
  auto solver = VOptSolver::Solve(costs, max_k, solve_options);
  if (!solver.ok()) {
    return solver.status();
  }

  // Step 3: pick k (fixed, or k* from the error estimator).
  const double sigma_sq = mechanism.value().noise_variance();
  std::vector<double> estimated;
  std::size_t chosen_k;
  if (options_.fixed_buckets != 0) {
    chosen_k = max_k;
  } else {
    chosen_k = 1;
    double best = std::numeric_limits<double>::infinity();
    estimated.reserve(max_k);
    // Optional selection-bias correction: cumulative expected overfit gain
    // of the DP on pure Laplace noise (see Options).
    const double b_sq = sigma_sq / 2.0;  // Laplace scale squared
    double overfit = 0.0;
    for (std::size_t k = 1; k <= max_k; ++k) {
      if (options_.bias_corrected_selection && k >= 2) {
        const double log_term =
            std::log(static_cast<double>(n) / static_cast<double>(k - 1));
        overfit += b_sq * log_term * log_term;
      }
      double estimate =
          solver.value().MinCost(k) -
          (static_cast<double>(n) - 2.0 * static_cast<double>(k)) * sigma_sq;
      if (options_.bias_corrected_selection) {
        estimate += overfit;
      }
      estimated.push_back(estimate);
      if (estimate < best) {
        best = estimate;
        chosen_k = k;
      }
    }
  }

  auto structure = solver.value().Traceback(chosen_k);
  if (!structure.ok()) {
    return structure.status();
  }

  // Publish the mean of the *noisy* counts in each bucket.
  auto buckets = structure.value().Apply(noisy);
  if (!buckets.ok()) {
    return buckets.status();
  }
  std::vector<double> means;
  means.reserve(buckets.value().size());
  for (const Bucket& b : buckets.value()) {
    means.push_back(b.mean);
  }
  auto published = structure.value().Expand(means);
  if (!published.ok()) {
    return published.status();
  }
  std::vector<double> out = std::move(published).value();
  if (options_.clamp_nonnegative) {
    for (double& v : out) {
      v = std::max(v, 0.0);
    }
  }

  if (details != nullptr) {
    details->chosen_buckets = chosen_k;
    details->cuts = structure.value().cuts();
    details->estimated_errors = std::move(estimated);
    details->noisy_counts = noisy;
  }
  return Histogram(std::move(out));
}

}  // namespace dphist
