#include "dphist/algorithms/efpa.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "dphist/common/math_util.h"
#include "dphist/privacy/exponential_mechanism.h"
#include "dphist/random/distributions.h"
#include "dphist/transform/fourier.h"
#include "dphist/transform/haar_wavelet.h"

namespace dphist {

namespace {

// Expected total L2 norm of the time-domain reconstruction noise when the
// first k coefficients carry Lap(lambda) on both components: the zero-
// padded spectrum has ~2 mirrored copies of each noisy coefficient, the
// inverse transform divides by n, and Parseval converts back:
// E||noise||_2^2 ~= (2k * 2 * 2 lambda^2) / n = 8 k lambda^2 / n.
double NoiseL2(std::size_t k, double lambda, std::size_t n) {
  return std::sqrt(8.0 * static_cast<double>(k) * lambda * lambda /
                   static_cast<double>(n));
}

}  // namespace

Efpa::Efpa() : options_(Options()) {}

Efpa::Efpa(Options options) : options_(options) {}

Result<Histogram> Efpa::Publish(const Histogram& histogram, double epsilon,
                                Rng& rng) const {
  return PublishWithDetails(histogram, epsilon, rng, nullptr);
}

Result<Histogram> Efpa::PublishWithDetails(const Histogram& histogram,
                                           double epsilon, Rng& rng,
                                           Details* details) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(histogram, epsilon));
  if (options_.fixed_coefficients == 0 &&
      (!(options_.selection_budget_ratio > 0.0) ||
       !(options_.selection_budget_ratio < 1.0))) {
    return Status::InvalidArgument(
        "Efpa: selection_budget_ratio must lie in (0, 1)");
  }
  const std::size_t n = histogram.size();
  const std::vector<double> padded =
      HaarWavelet::PadToPowerOfTwo(histogram.counts());
  const std::size_t padded_n = padded.size();
  const std::size_t max_kept = padded_n / 2 + 1;

  auto spectrum = Fft::ForwardReal(padded);
  if (!spectrum.ok()) {
    return spectrum.status();
  }

  // Energy of the "tail" beyond a prefix of k coefficients, counting the
  // mirrored half (|F_{n-j}| = |F_j|).
  std::vector<double> tail_energy(max_kept + 1, 0.0);
  for (std::size_t k = max_kept; k-- > 0;) {
    const std::size_t j = k;  // coefficient index being dropped at level k
    double energy = std::norm(spectrum.value()[j]);
    if (j != 0 && j != padded_n - j) {
      energy *= 2.0;  // mirrored coefficient drops with it
    }
    tail_energy[k] = tail_energy[k + 1] + energy;
  }

  std::size_t kept;
  double eps_selection = 0.0;
  double eps_noise;
  if (options_.fixed_coefficients != 0) {
    kept = std::min(options_.fixed_coefficients, max_kept);
    eps_noise = epsilon;
  } else {
    eps_selection = options_.selection_budget_ratio * epsilon;
    eps_noise = epsilon - eps_selection;
    auto em = ExponentialMechanism::Create(eps_selection,
                                           /*utility_sensitivity=*/1.0);
    if (!em.ok()) {
      return em.status();
    }
    std::vector<double> utilities;
    utilities.reserve(max_kept);
    const double sqrt_n = std::sqrt(static_cast<double>(padded_n));
    for (std::size_t k = 1; k <= max_kept; ++k) {
      const double approx = std::sqrt(tail_energy[k]) / sqrt_n;
      const double lambda =
          std::sqrt(2.0) * static_cast<double>(k) / eps_noise;
      utilities.push_back(-(approx + NoiseL2(k, lambda, padded_n)));
    }
    auto pick = em.value().Select(utilities, rng);
    if (!pick.ok()) {
      return pick.status();
    }
    kept = 1 + pick.value();
  }

  // Perturb the retained coefficients.
  const double lambda = std::sqrt(2.0) * static_cast<double>(kept) / eps_noise;
  std::vector<std::complex<double>> noisy(
      spectrum.value().begin(),
      spectrum.value().begin() + static_cast<long>(kept));
  for (std::complex<double>& c : noisy) {
    c += std::complex<double>(SampleLaplace(rng, lambda),
                              SampleLaplace(rng, lambda));
  }

  auto reconstructed = Fft::ReconstructFromPrefix(noisy, padded_n);
  if (!reconstructed.ok()) {
    return reconstructed.status();
  }
  std::vector<double> out(reconstructed.value().begin(),
                          reconstructed.value().begin() +
                              static_cast<long>(n));
  if (options_.clamp_nonnegative) {
    for (double& v : out) {
      v = std::max(v, 0.0);
    }
  }

  if (details != nullptr) {
    details->kept_coefficients = kept;
    details->selection_epsilon = eps_selection;
    details->noise_epsilon = eps_noise;
  }
  return Histogram(std::move(out));
}

}  // namespace dphist
