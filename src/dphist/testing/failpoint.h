#ifndef DPHIST_TESTING_FAILPOINT_H_
#define DPHIST_TESTING_FAILPOINT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "dphist/common/clock.h"
#include "dphist/common/status.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace testing {

/// \brief Deterministic fault injection ("failpoints").
///
/// A failpoint is a named hook compiled into a production code path
/// (`DPHIST_FAILPOINT*` macros below). Tests arm it with an action —
/// return a chosen error `Status`, inject latency, or abort — and a
/// trigger policy — always, exactly once, every Nth hit, or with a seeded
/// probability. Probability draws come from a per-failpoint `Rng` stream
/// derived from one schedule seed and the failpoint's name, so a whole
/// fault schedule is replayable from a single integer: same seed, same
/// hit order, same faults (the chaos suite's determinism contract).
///
/// Cost contract (enforced by the bench regression gate):
///  * Builds without the `DPHIST_FAILPOINTS` compile definition expand
///    every site macro to nothing — zero instructions on the hot path.
///  * Builds with it pay one relaxed atomic load and branch per site while
///    no failpoint is armed; the registry mutex is only taken once armed.
///
/// The registry itself is always compiled into the library so tests can
/// exercise its mechanics in any build; only the *sites* are gated.
///
/// Latency injection goes through the registry's `Clock` (default: the
/// real clock). Chaos tests install a `FakeClock` so injected delays
/// advance simulated time instantly — no wall-clock sleeping in tests.

/// How an armed failpoint decides whether a given hit fires.
enum class FailpointTrigger {
  /// Fires on every hit.
  kAlways,
  /// Fires on the first hit only, then never again (stays armed so hit
  /// counts keep accumulating).
  kOnce,
  /// Fires on every Nth hit (hits 1..N-1 pass, hit N fires, ...).
  kEveryNth,
  /// Fires when the failpoint's seeded Rng stream draws below
  /// `probability`.
  kProbability,
};

/// What an armed failpoint does when it fires.
struct FailpointConfig {
  enum class Action {
    /// `Evaluate` returns `status`; the site propagates it as if the real
    /// operation failed.
    kReturnStatus,
    /// `Evaluate` sleeps `delay` on the registry clock and returns OK.
    kDelay,
    /// The process aborts with a diagnostic (for death tests).
    kAbort,
  };

  Action action = Action::kReturnStatus;
  /// Returned by firing kReturnStatus evaluations. Must not be OK.
  Status status = Status::Internal("injected failure");
  /// Slept on the registry clock by firing kDelay evaluations.
  std::chrono::nanoseconds delay = std::chrono::nanoseconds::zero();

  FailpointTrigger trigger = FailpointTrigger::kAlways;
  /// Period for kEveryNth (0 is pinned to 1).
  std::uint64_t every_nth = 1;
  /// Fire probability in [0, 1] for kProbability.
  double probability = 0.0;
};

/// \brief Per-failpoint observation counters (for test assertions).
struct FailpointStats {
  /// Evaluations while armed.
  std::uint64_t hits = 0;
  /// Evaluations that fired the action.
  std::uint64_t fires = 0;
};

/// \brief The process-global, thread-safe failpoint registry.
class FailpointRegistry {
 public:
  /// The process-wide registry (leaked singleton, like obs::Registry).
  static FailpointRegistry& Global();

  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  /// True when at least one failpoint is armed anywhere in the process —
  /// one relaxed atomic load, the only cost a compiled-in site pays while
  /// fault injection is idle.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms (or re-arms, resetting counters and the probability stream)
  /// the failpoint `name` with `config`.
  void Arm(std::string_view name, FailpointConfig config);

  /// Disarms `name`; evaluations become no-ops again. Unknown names are
  /// ignored.
  void Disarm(std::string_view name);

  /// Disarms everything and resets the schedule seed to 0 — chaos tests
  /// call this in SetUp/TearDown so schedules never leak across tests.
  void DisarmAll();

  /// Sets the schedule seed. Every armed (and subsequently armed)
  /// probability trigger re-derives its stream as a function of
  /// (seed, failpoint name), so arming order never changes the schedule
  /// and the same seed replays the same fault sequence.
  void SeedSchedule(std::uint64_t seed);

  /// Clock used by kDelay actions; null restores the real clock.
  void set_clock(Clock* clock);

  /// Evaluates the failpoint: returns OK when `name` is not armed or the
  /// trigger does not fire; otherwise performs the configured action
  /// (returning its status for kReturnStatus, OK after sleeping for
  /// kDelay; kAbort does not return).
  Status Evaluate(std::string_view name);

  /// Hit/fire counters for `name` (zeroes for unknown names).
  FailpointStats Stats(std::string_view name) const;

 private:
  struct Point {
    FailpointConfig config;
    FailpointStats stats;
    Rng rng{0};
  };

  FailpointRegistry() = default;

  /// The per-failpoint probability stream: one seed, mixed with the name,
  /// so every failpoint draws independently and deterministically.
  static Rng StreamFor(std::uint64_t schedule_seed, std::string_view name);

  static std::atomic<int> armed_count_;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Point>, std::less<>> points_;
  std::uint64_t schedule_seed_ = 0;
  Clock* clock_ = nullptr;  // null means Clock::Real()
};

/// \brief RAII arm/disarm, so a test failure can never leave a failpoint
/// armed for the next test.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string_view name, FailpointConfig config)
      : name_(name) {
    FailpointRegistry::Global().Arm(name_, std::move(config));
  }
  ~ScopedFailpoint() { FailpointRegistry::Global().Disarm(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

/// True when the failpoint `name` fires with a non-OK status right now —
/// for sites that branch on injected failure instead of returning it
/// (e.g. the serve batch fan-out falling back to inline answering when
/// pool dispatch is made to fail). Constant false when failpoints are
/// compiled out.
inline bool FailpointFires(std::string_view name) {
#if defined(DPHIST_FAILPOINTS)
  return FailpointRegistry::AnyArmed() &&
         !FailpointRegistry::Global().Evaluate(name).ok();
#else
  (void)name;
  return false;
#endif
}

}  // namespace testing
}  // namespace dphist

/// Site macros. `DPHIST_FAILPOINT(name)` marks a site whose only effects
/// are side effects (delay, abort); a firing return-status action there is
/// swallowed. `DPHIST_FAILPOINT_RETURN_IF_SET(name)` additionally returns
/// the injected status from the enclosing function (which must return
/// `Status` or a `Result<T>`). Both compile to nothing without the
/// `DPHIST_FAILPOINTS` definition.
#if defined(DPHIST_FAILPOINTS)
#define DPHIST_FAILPOINT(name)                                               \
  do {                                                                       \
    if (::dphist::testing::FailpointRegistry::AnyArmed()) {                  \
      (void)::dphist::testing::FailpointRegistry::Global().Evaluate(name);   \
    }                                                                        \
  } while (false)
#define DPHIST_FAILPOINT_RETURN_IF_SET(name)                                 \
  do {                                                                       \
    if (::dphist::testing::FailpointRegistry::AnyArmed()) {                  \
      ::dphist::Status dphist_failpoint_status_ =                            \
          ::dphist::testing::FailpointRegistry::Global().Evaluate(name);     \
      if (!dphist_failpoint_status_.ok()) {                                  \
        return dphist_failpoint_status_;                                     \
      }                                                                      \
    }                                                                        \
  } while (false)
#else
#define DPHIST_FAILPOINT(name) \
  do {                         \
  } while (false)
#define DPHIST_FAILPOINT_RETURN_IF_SET(name) \
  do {                                       \
  } while (false)
#endif

#endif  // DPHIST_TESTING_FAILPOINT_H_
