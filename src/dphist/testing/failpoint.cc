#include "dphist/testing/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace dphist {
namespace testing {

std::atomic<int> FailpointRegistry::armed_count_{0};

FailpointRegistry& FailpointRegistry::Global() {
  // Leaked singleton: armed failpoints and their counters must survive
  // until process exit (same policy as obs::Registry).
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

Rng FailpointRegistry::StreamFor(std::uint64_t schedule_seed,
                                 std::string_view name) {
  // FNV-1a over the name, mixed into the schedule seed: each failpoint
  // gets its own stream, independent of arming order, so a schedule is a
  // pure function of (seed, name).
  constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t hash = kOffset;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kPrime;
  }
  return Rng(schedule_seed ^ hash);
}

void FailpointRegistry::Arm(std::string_view name, FailpointConfig config) {
  if (config.every_nth == 0) {
    config.every_nth = 1;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = points_.try_emplace(std::string(name));
  if (inserted || it->second == nullptr) {
    it->second = std::make_unique<Point>();
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  it->second->config = std::move(config);
  it->second->stats = FailpointStats{};
  it->second->rng = StreamFor(schedule_seed_, name);
}

void FailpointRegistry::Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  if (it != points_.end() && it->second != nullptr) {
    it->second = nullptr;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, point] : points_) {
    if (point != nullptr) {
      point = nullptr;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  schedule_seed_ = 0;
}

void FailpointRegistry::SeedSchedule(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  schedule_seed_ = seed;
  // Already-armed probability streams restart from the new seed; their
  // counters restart too, so a reseed is a full schedule replay.
  for (auto& [name, point] : points_) {
    if (point != nullptr) {
      point->rng = StreamFor(schedule_seed_, name);
      point->stats = FailpointStats{};
    }
  }
}

void FailpointRegistry::set_clock(Clock* clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = clock;
}

Status FailpointRegistry::Evaluate(std::string_view name) {
  FailpointConfig::Action action;
  Status injected;
  std::chrono::nanoseconds delay{0};
  Clock* clock = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(name);
    if (it == points_.end() || it->second == nullptr) {
      return Status::Ok();
    }
    Point& point = *it->second;
    ++point.stats.hits;
    bool fires = false;
    switch (point.config.trigger) {
      case FailpointTrigger::kAlways:
        fires = true;
        break;
      case FailpointTrigger::kOnce:
        fires = point.stats.fires == 0;
        break;
      case FailpointTrigger::kEveryNth:
        fires = point.stats.hits % point.config.every_nth == 0;
        break;
      case FailpointTrigger::kProbability: {
        // 53-bit uniform in [0, 1), the standard double construction.
        const double draw =
            static_cast<double>(point.rng.NextUint64() >> 11) * 0x1.0p-53;
        fires = draw < point.config.probability;
        break;
      }
    }
    if (!fires) {
      return Status::Ok();
    }
    ++point.stats.fires;
    action = point.config.action;
    injected = point.config.status;
    delay = point.config.delay;
    clock = clock_;
  }
  // Act outside the registry mutex so a delay (or an abort handler) never
  // blocks other failpoints.
  switch (action) {
    case FailpointConfig::Action::kReturnStatus:
      return injected.ok() ? Status::Internal("injected failure") : injected;
    case FailpointConfig::Action::kDelay:
      (clock != nullptr ? *clock : Clock::Real()).SleepFor(delay);
      return Status::Ok();
    case FailpointConfig::Action::kAbort:
      std::fprintf(stderr, "dphist failpoint '%.*s': injected abort\n",
                   static_cast<int>(name.size()), name.data());
      std::abort();
  }
  return Status::Ok();
}

FailpointStats FailpointRegistry::Stats(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  if (it == points_.end() || it->second == nullptr) {
    return FailpointStats{};
  }
  return it->second->stats;
}

}  // namespace testing
}  // namespace dphist
