#include "dphist/hist/interval_cost.h"

#include <algorithm>
#include <cmath>

#include "dphist/common/math_util.h"
#include "dphist/common/thread_pool.h"
#include "dphist/hist/fenwick.h"
#include "dphist/obs/obs.h"

namespace dphist {

const char* CostKindName(CostKind kind) {
  switch (kind) {
    case CostKind::kSquared:
      return "squared";
    case CostKind::kAbsolute:
      return "absolute";
  }
  return "unknown";
}

Result<IntervalCostTable> IntervalCostTable::Create(
    const std::vector<double>& counts, const Options& options) {
  if (counts.empty()) {
    return Status::InvalidArgument(
        "IntervalCostTable requires a non-empty histogram");
  }
  if (options.grid_step == 0) {
    return Status::InvalidArgument("grid_step must be >= 1");
  }
  obs::ScopedTimer build_timer("interval_cost/build");
  static obs::Counter& builds =
      obs::Registry::Global().GetCounter("interval_cost/builds");
  builds.Increment();
  IntervalCostTable table;
  table.domain_size_ = counts.size();
  table.kind_ = options.kind;
  table.grid_step_ = options.grid_step;
  for (std::size_t p = 0; p < counts.size(); p += options.grid_step) {
    table.positions_.push_back(p);
  }
  table.positions_.push_back(counts.size());
  table.sums_ = PrefixSums(counts);
  table.squares_ = PrefixSumsOfSquares(counts);
  if (options.kind == CostKind::kAbsolute) {
    const std::size_t m = table.positions_.size();
    // Stored cells of the packed a < b triangle.
    if (m * (m - 1) / 2 > options.max_table_cells) {
      return Status::InvalidArgument(
          "absolute-cost triangle would exceed max_table_cells; "
          "increase grid_step");
    }
    table.BuildAbsoluteMatrix(counts, options);
  }
  return table;
}

double IntervalCostTable::CostBetween(std::size_t a, std::size_t b) const {
  if (kind_ == CostKind::kAbsolute) {
    return AbsoluteAt(a, b);
  }
  return SquaredCostOf(positions_[a], positions_[b]);
}

double IntervalCostTable::MeanOf(std::size_t begin, std::size_t end) const {
  const double length = static_cast<double>(end - begin);
  return (sums_[end] - sums_[begin]) / length;
}

double IntervalCostTable::SquaredCostOf(std::size_t begin,
                                        std::size_t end) const {
  const double length = static_cast<double>(end - begin);
  const double sum = sums_[end] - sums_[begin];
  const double sum_sq = squares_[end] - squares_[begin];
  // SSE = sum of squares - (sum)^2 / L; clamp tiny negative values caused
  // by cancellation.
  const double sse = sum_sq - sum * sum / length;
  return sse > 0.0 ? sse : 0.0;
}

void IntervalCostTable::BuildAbsoluteMatrix(const std::vector<double>& counts,
                                            const Options& options) {
  const std::size_t m = positions_.size();
  absolute_costs_.assign(m * (m - 1) / 2, 0.0);
  // Bulk-counted (one Add per build): the cells the Fenwick sweeps fill.
  static obs::Counter& absolute_cells =
      obs::Registry::Global().GetCounter("interval_cost/absolute_cells");
  absolute_cells.Add(m * (m - 1) / 2);

  // Rank every distinct count value so a Fenwick tree over ranks can answer
  // "count and sum of inserted values <= mu" queries.
  std::vector<double> sorted = counts;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<std::size_t> rank_of(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    rank_of[i] = static_cast<std::size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), counts[i]) -
        sorted.begin());
  }

  // For each candidate end position, sweep the start leftwards, inserting
  // one unit bin at a time; at every candidate start, evaluate the cost of
  // the interval currently held in the Fenwick tree. Distinct end positions
  // touch disjoint cells (the packed column of b), so the sweeps fan out
  // across the pool with one scratch Fenwick tree per chunk; each column's
  // values are computed by exactly the sequential sweep, so the triangle is
  // bit-identical for any thread count.
  auto sweep_columns = [&](std::size_t b_begin, std::size_t b_end) {
    RankedFenwick fenwick(sorted.size());
    for (std::size_t b = b_begin; b < b_end; ++b) {
      fenwick.Clear();
      double* column = &absolute_costs_[b * (b - 1) / 2];
      const std::size_t end = positions_[b];
      std::size_t a = b;  // index of the next candidate start to the left
      for (std::size_t j = end; j-- > 0;) {
        fenwick.Insert(rank_of[j], counts[j]);
        if (a > 0 && positions_[a - 1] == j) {
          --a;
          const std::size_t begin = positions_[a];
          const double length = static_cast<double>(end - begin);
          const double total = fenwick.TotalSum();
          const double mu = total / length;
          // Largest rank whose value is <= mu.
          const auto it =
              std::upper_bound(sorted.begin(), sorted.end(), mu);
          double below_sum = 0.0;
          double below_count = 0.0;
          if (it != sorted.begin()) {
            const std::size_t rank =
                static_cast<std::size_t>(it - sorted.begin()) - 1;
            below_sum = fenwick.SumUpTo(rank);
            below_count = static_cast<double>(fenwick.CountUpTo(rank));
          }
          const double above_sum = total - below_sum;
          const double above_count = length - below_count;
          const double cost =
              (mu * below_count - below_sum) + (above_sum - mu * above_count);
          column[a] = cost > 0.0 ? cost : 0.0;
        }
      }
    }
  };

  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Global();
  if (pool.thread_count() > 1 && m >= options.min_parallel_candidates) {
    pool.ParallelForChunks(1, m, /*min_chunk=*/8, sweep_columns);
  } else {
    sweep_columns(1, m);
  }
}

}  // namespace dphist
