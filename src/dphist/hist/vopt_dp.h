#ifndef DPHIST_HIST_VOPT_DP_H_
#define DPHIST_HIST_VOPT_DP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dphist/common/parallel_defaults.h"
#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/hist/bucketization.h"
#include "dphist/hist/interval_cost.h"

namespace dphist {

class ThreadPool;

/// \brief The v-optimal histogram dynamic program (Jagadish et al.,
/// VLDB'98), generalized to an arbitrary interval-cost measure.
///
/// Given candidate cut positions p_0=0 < ... < p_m=n and an interval cost
/// `c`, the solver computes, for every k <= max_buckets and every candidate
/// prefix i,
///
///   T[k][i] = min over structures of [p_0, p_i) with exactly k buckets of
///             the total cost,
///
/// in O(max_buckets * m^2) time with O(1) cost lookups. The full table is
/// retained because both of the paper's algorithms consume it beyond the
/// optimum: NoiseFirst scans T[k][m] over k to pick k*, and StructureFirst
/// samples boundaries from the suffix costs T[k][j] + c(p_j, p_end).
class VOptSolver {
 public:
  /// \brief Execution knobs for Solve.
  ///
  /// Within one row k of the table, every cell T[k][i] depends only on the
  /// completed row k-1, so the i loop parallelizes with a barrier between
  /// rows. Cells are pure min-reductions over identical double arithmetic,
  /// so the table (and hence every Traceback) is **bit-identical** for any
  /// thread count — parallelism never changes a published structure.
  struct SolveOptions {
    /// Pool for row-level parallelism; nullptr means ThreadPool::Global().
    ThreadPool* pool = nullptr;
    /// Rows are only parallelized when the candidate count m is at least
    /// this large; below it the fork/join overhead dwarfs the row work and
    /// the solver stays on the sequential path. Shared with the
    /// absolute-cost build (common/parallel_defaults.h) so both stages of
    /// one solve cut over at the same size.
    std::size_t min_parallel_candidates = kDefaultMinParallelCandidates;
  };

  /// Runs the dynamic program for up to `max_buckets` buckets.
  /// `max_buckets` is clamped to the number of candidate intervals m;
  /// passing 0 means "up to m". Fails only on m == 0 (cannot happen for a
  /// valid cost table).
  static Result<VOptSolver> Solve(const IntervalCostTable& costs,
                                  std::size_t max_buckets);

  /// As above with explicit execution options (thread pool, sequential
  /// cut-over). The result is bit-identical across all option choices.
  static Result<VOptSolver> Solve(const IntervalCostTable& costs,
                                  std::size_t max_buckets,
                                  const SolveOptions& options);

  /// Largest bucket count the table covers.
  std::size_t max_buckets() const { return max_buckets_; }

  /// Number of candidate intervals m.
  std::size_t num_candidates() const { return num_candidates_; }

  /// Minimum total cost of a k-bucket structure over the whole domain.
  /// Requires 1 <= k <= max_buckets().
  double MinCost(std::size_t k) const {
    return PrefixCost(k, num_candidates_);
  }

  /// T[k][i]: minimum cost of splitting the candidate prefix [p_0, p_i)
  /// into exactly k buckets. Requires k <= max_buckets() and k <= i <= m;
  /// returns +infinity for infeasible (i < k) combinations.
  double PrefixCost(std::size_t k, std::size_t i) const;

  /// Reconstructs the optimal k-bucket structure over the whole domain.
  /// Requires 1 <= k <= max_buckets().
  Result<Bucketization> Traceback(std::size_t k) const;

  /// The candidate cut positions (copied from the cost table).
  const std::vector<std::size_t>& positions() const { return positions_; }

 private:
  VOptSolver() = default;

  std::size_t max_buckets_ = 0;
  std::size_t num_candidates_ = 0;
  std::size_t domain_size_ = 0;
  std::vector<std::size_t> positions_;
  // Row-major (max_buckets+1) x (m+1); row 0 unused.
  std::vector<double> table_;
  // Argmin predecessor index for traceback; same layout.
  std::vector<std::int32_t> parent_;
};

}  // namespace dphist

#endif  // DPHIST_HIST_VOPT_DP_H_
