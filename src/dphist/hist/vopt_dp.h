#ifndef DPHIST_HIST_VOPT_DP_H_
#define DPHIST_HIST_VOPT_DP_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "dphist/common/parallel_defaults.h"
#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/hist/bucketization.h"
#include "dphist/hist/interval_cost.h"

namespace dphist {

class ThreadPool;

/// \brief How VOptSolver fills each DP row (see DESIGN §7).
enum class VOptStrategy {
  /// Resolve from the DPHIST_VOPT_STRATEGY environment variable when set
  /// ("auto" / "naive" / "monotone"), otherwise pick from the decision
  /// table in DESIGN §7 (monotone whenever its preconditions hold and the
  /// row is long enough to prune).
  kAuto,
  /// The reference O(i) predecessor scan per cell.
  kNaive,
  /// Certified-lower-bound pruning with SIMD block scans. Produces
  /// bit-identical tables to kNaive (same values, same leftmost-argmin
  /// tie-breaking) at any thread count; only the work skipped differs.
  kMonotone,
};

/// Returns "auto", "naive", or "monotone".
const char* VOptStrategyName(VOptStrategy strategy);

/// Parses "auto" / "naive" / "monotone" into `out`; returns false (leaving
/// `out` untouched) on any other input.
bool ParseVOptStrategy(std::string_view text, VOptStrategy* out);

/// \brief The v-optimal histogram dynamic program (Jagadish et al.,
/// VLDB'98), generalized to an arbitrary interval-cost measure.
///
/// Given candidate cut positions p_0=0 < ... < p_m=n and an interval cost
/// `c`, the solver computes, for every k <= max_buckets and every candidate
/// prefix i,
///
///   T[k][i] = min over structures of [p_0, p_i) with exactly k buckets of
///             the total cost,
///
/// in O(max_buckets * m^2) cost lookups on the naive path — the monotone
/// path prunes most of them (DESIGN §7) without changing a single table
/// bit. The full table is retained because both of the paper's algorithms
/// consume it beyond the optimum: NoiseFirst scans T[k][m] over k to pick
/// k*, and StructureFirst samples boundaries from the suffix costs
/// T[k][j] + c(p_j, p_end).
class VOptSolver {
 public:
  /// \brief Execution knobs for Solve.
  ///
  /// Within one row k of the table, every cell T[k][i] depends only on the
  /// completed row k-1, so the i loop parallelizes with a barrier between
  /// rows. Cells are pure min-reductions over identical double arithmetic,
  /// so the table (and hence every Traceback) is **bit-identical** for any
  /// thread count — parallelism never changes a published structure.
  struct SolveOptions {
    /// Pool for row-level parallelism; nullptr means ThreadPool::Global().
    ThreadPool* pool = nullptr;
    /// Rows are only parallelized when the candidate count m is at least
    /// this large; below it the fork/join overhead dwarfs the row work and
    /// the solver stays on the sequential path. Shared with the
    /// absolute-cost build (common/parallel_defaults.h) so both stages of
    /// one solve cut over at the same size.
    std::size_t min_parallel_candidates = kDefaultMinParallelCandidates;
    /// Row-fill strategy. kAuto consults DPHIST_VOPT_STRATEGY and then the
    /// DESIGN §7 decision table; an explicit kNaive/kMonotone here wins
    /// over the environment (benchmark sweeps set it explicitly so an env
    /// override cannot silently collapse the comparison).
    VOptStrategy strategy = VOptStrategy::kAuto;
  };

  /// What one Solve actually did — resolved strategy plus deterministic
  /// work counts (bit-identical across thread counts; the monotone counts
  /// may differ across CPU generations because the pruning thresholds
  /// round differently under FMA variants, never across runs on one
  /// machine). Mirrored into the obs registry under vopt/*.
  struct SolveStats {
    /// The strategy the rows were actually filled with (never kAuto).
    VOptStrategy strategy = VOptStrategy::kNaive;
    /// DP rows filled, including the base row.
    std::uint64_t rows = 0;
    /// Table cells written.
    std::uint64_t cells = 0;
    /// Exact cost evaluations (CostBetween calls or packed-column reads).
    std::uint64_t cost_lookups = 0;
    /// Candidates scanned by the vectorized bound kernel (monotone only).
    std::uint64_t bound_scans = 0;
  };

  /// Runs the dynamic program for up to `max_buckets` buckets.
  /// `max_buckets` is clamped to the number of candidate intervals m;
  /// passing 0 means "up to m". Fails only on m == 0 (cannot happen for a
  /// valid cost table).
  static Result<VOptSolver> Solve(const IntervalCostTable& costs,
                                  std::size_t max_buckets);

  /// As above with explicit execution options (thread pool, sequential
  /// cut-over, row strategy). The result is bit-identical across all
  /// option choices.
  static Result<VOptSolver> Solve(const IntervalCostTable& costs,
                                  std::size_t max_buckets,
                                  const SolveOptions& options);

  /// Largest bucket count the table covers.
  std::size_t max_buckets() const { return max_buckets_; }

  /// Number of candidate intervals m.
  std::size_t num_candidates() const { return num_candidates_; }

  /// Minimum total cost of a k-bucket structure over the whole domain.
  /// Requires 1 <= k <= max_buckets().
  double MinCost(std::size_t k) const {
    return PrefixCost(k, num_candidates_);
  }

  /// T[k][i]: minimum cost of splitting the candidate prefix [p_0, p_i)
  /// into exactly k buckets. Requires k <= max_buckets() and k <= i <= m;
  /// returns +infinity for infeasible (i < k) combinations.
  double PrefixCost(std::size_t k, std::size_t i) const;

  /// The argmin predecessor of T[k][i] — the leftmost j achieving
  /// T[k-1][j] + c(p_j, p_i) — or -1 for out-of-range / infeasible (k, i).
  /// Exposed so the equivalence suite can compare whole parent tables, not
  /// just the tracebacks they imply.
  std::int32_t PrefixParent(std::size_t k, std::size_t i) const;

  /// Reconstructs the optimal k-bucket structure over the whole domain.
  /// Requires 1 <= k <= max_buckets().
  Result<Bucketization> Traceback(std::size_t k) const;

  /// The candidate cut positions (copied from the cost table).
  const std::vector<std::size_t>& positions() const { return positions_; }

  /// Work accounting for the Solve that produced this table.
  const SolveStats& stats() const { return stats_; }

 private:
  VOptSolver() = default;

  std::size_t max_buckets_ = 0;
  std::size_t num_candidates_ = 0;
  std::size_t domain_size_ = 0;
  std::vector<std::size_t> positions_;
  // Row-major (max_buckets+1) x (m+1); row 0 unused.
  std::vector<double> table_;
  // Argmin predecessor index for traceback; same layout.
  std::vector<std::int32_t> parent_;
  SolveStats stats_;
};

}  // namespace dphist

#endif  // DPHIST_HIST_VOPT_DP_H_
