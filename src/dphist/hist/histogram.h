#ifndef DPHIST_HIST_HISTOGRAM_H_
#define DPHIST_HIST_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"

namespace dphist {

/// \brief A one-dimensional histogram over an ordered domain of unit bins.
///
/// This is the object the paper publishes: `counts()[i]` is the (possibly
/// noisy) number of records whose attribute falls in the i-th unit bin of
/// the domain. Range sums are answered in O(1) from a prefix table, which
/// is built at most once after the last mutation.
///
/// Thread safety: const accessors (including the lazily-sealing
/// `RangeSum*`/`Total`) are safe to call concurrently from any number of
/// threads — the prefix table is built under an internal mutex and
/// published through an acquire/release flag, so exactly one caller builds
/// it and every other caller either sees the finished table or waits for
/// it (never a torn one). Mutators (`set_count`, `Add`, assignment)
/// require exclusive access, the usual C++ const-correctness contract.
/// Serving code seals the prefix eagerly at publish time (`SealPrefix`) so
/// the hot read path is a single relaxed-ish atomic load plus two array
/// reads, with no lock and no lazy state.
class Histogram {
 public:
  /// Creates an empty histogram (zero bins).
  Histogram() = default;

  /// Creates a histogram with the given unit-bin counts. Counts may be
  /// fractional or negative (noisy histograms are both).
  explicit Histogram(std::vector<double> counts);

  /// Copy/move preserve counts and any already-built prefix table; the
  /// internal synchronization state is fresh per object (a mutex is not
  /// copyable). Copying or moving FROM a histogram requires the same
  /// exclusive access as any other read racing no writer.
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);
  Histogram(Histogram&& other) noexcept;
  Histogram& operator=(Histogram&& other) noexcept;

  /// Creates a zeroed histogram with `num_bins` bins.
  static Histogram Zeros(std::size_t num_bins);

  /// Number of unit bins.
  std::size_t size() const { return counts_.size(); }
  /// True iff the histogram has no bins.
  bool empty() const { return counts_.empty(); }

  /// The unit-bin counts.
  const std::vector<double>& counts() const { return counts_; }

  /// The count of bin `i`. Requires i < size().
  double count(std::size_t i) const { return counts_[i]; }

  /// Sets the count of bin `i` and invalidates the prefix table.
  /// Requires exclusive access (see class comment).
  void set_count(std::size_t i, double value);

  /// Adds `delta` to bin `i` and invalidates the prefix table.
  /// Requires exclusive access (see class comment).
  void Add(std::size_t i, double delta);

  /// Builds the prefix table now if it is not already valid. Publishing
  /// paths call this once before a histogram becomes a shared immutable
  /// release, so every subsequent concurrent reader takes the lock-free
  /// fast path. Safe (and cheap) to call repeatedly or concurrently.
  void SealPrefix() const { EnsurePrefix(); }

  /// Sum of all counts.
  double Total() const;

  /// Sum of counts in the half-open range [begin, end).
  /// Returns InvalidArgument unless begin <= end <= size().
  Result<double> RangeSum(std::size_t begin, std::size_t end) const;

  /// Like RangeSum but with unchecked bounds (for hot loops where the
  /// workload was validated up front). Requires begin <= end <= size().
  double RangeSumUnchecked(std::size_t begin, std::size_t end) const;

  /// Returns counts normalized to sum to 1, after clamping negatives to 0.
  /// If every clamped count is zero, returns the uniform distribution.
  /// Useful for distribution-level metrics (KL divergence).
  std::vector<double> ToDistribution() const;

 private:
  void EnsurePrefix() const;

  std::vector<double> counts_;
  // Prefix sums, built at most once per mutation epoch:
  // prefix_[i] = sum of counts_[0..i). Guarded by the once-init protocol:
  // written under prefix_mutex_, published by the release-store of
  // prefix_valid_, and immutable while prefix_valid_ is true.
  mutable std::vector<double> prefix_;
  mutable std::atomic<bool> prefix_valid_{false};
  mutable std::mutex prefix_mutex_;
};

}  // namespace dphist

#endif  // DPHIST_HIST_HISTOGRAM_H_
