#ifndef DPHIST_HIST_HISTOGRAM_H_
#define DPHIST_HIST_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"

namespace dphist {

/// \brief A one-dimensional histogram over an ordered domain of unit bins.
///
/// This is the object the paper publishes: `counts()[i]` is the (possibly
/// noisy) number of records whose attribute falls in the i-th unit bin of
/// the domain. Range sums are answered in O(1) from a prefix table, which is
/// rebuilt lazily after mutation.
class Histogram {
 public:
  /// Creates an empty histogram (zero bins).
  Histogram() = default;

  /// Creates a histogram with the given unit-bin counts. Counts may be
  /// fractional or negative (noisy histograms are both).
  explicit Histogram(std::vector<double> counts);

  /// Creates a zeroed histogram with `num_bins` bins.
  static Histogram Zeros(std::size_t num_bins);

  /// Number of unit bins.
  std::size_t size() const { return counts_.size(); }
  /// True iff the histogram has no bins.
  bool empty() const { return counts_.empty(); }

  /// The unit-bin counts.
  const std::vector<double>& counts() const { return counts_; }

  /// The count of bin `i`. Requires i < size().
  double count(std::size_t i) const { return counts_[i]; }

  /// Sets the count of bin `i` and invalidates the prefix table.
  void set_count(std::size_t i, double value);

  /// Adds `delta` to bin `i` and invalidates the prefix table.
  void Add(std::size_t i, double delta);

  /// Sum of all counts.
  double Total() const;

  /// Sum of counts in the half-open range [begin, end).
  /// Returns InvalidArgument unless begin <= end <= size().
  Result<double> RangeSum(std::size_t begin, std::size_t end) const;

  /// Like RangeSum but with unchecked bounds (for hot loops where the
  /// workload was validated up front). Requires begin <= end <= size().
  double RangeSumUnchecked(std::size_t begin, std::size_t end) const;

  /// Returns counts normalized to sum to 1, after clamping negatives to 0.
  /// If every clamped count is zero, returns the uniform distribution.
  /// Useful for distribution-level metrics (KL divergence).
  std::vector<double> ToDistribution() const;

 private:
  void EnsurePrefix() const;

  std::vector<double> counts_;
  // Lazily built prefix sums: prefix_[i] = sum of counts_[0..i).
  mutable std::vector<double> prefix_;
  mutable bool prefix_valid_ = false;
};

}  // namespace dphist

#endif  // DPHIST_HIST_HISTOGRAM_H_
