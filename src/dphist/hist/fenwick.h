#ifndef DPHIST_HIST_FENWICK_H_
#define DPHIST_HIST_FENWICK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dphist {

/// \brief A Fenwick (binary indexed) tree over value ranks, tracking both
/// the number and the sum of inserted values per rank.
///
/// Used by the absolute-error interval-cost builder: while scanning an
/// interval we insert each count at its value rank, and can then answer
/// "how many inserted values are <= t, and what is their sum" in O(log R)
/// — exactly what evaluating sum_i |x_i - mu| around a mean mu needs.
class RankedFenwick {
 public:
  /// Creates a tree over `num_ranks` ranks (0 .. num_ranks-1).
  explicit RankedFenwick(std::size_t num_ranks);

  /// Number of ranks.
  std::size_t num_ranks() const { return size_; }

  /// Inserts one occurrence of `value` at `rank`. Requires rank < num_ranks.
  void Insert(std::size_t rank, double value);

  /// Removes one occurrence of `value` at `rank` (inverse of Insert).
  void Remove(std::size_t rank, double value);

  /// Resets the tree to empty without reallocating.
  void Clear();

  /// Number of inserted values with rank <= `rank`. A rank of
  /// num_ranks()-1 returns the total insert count.
  std::int64_t CountUpTo(std::size_t rank) const;

  /// Sum of inserted values with rank <= `rank`.
  double SumUpTo(std::size_t rank) const;

  /// Total number of inserted values.
  std::int64_t TotalCount() const;

  /// Total sum of inserted values.
  double TotalSum() const;

 private:
  std::size_t size_;
  std::vector<std::int64_t> count_;
  std::vector<double> sum_;
};

}  // namespace dphist

#endif  // DPHIST_HIST_FENWICK_H_
