#ifndef DPHIST_HIST_FENWICK_H_
#define DPHIST_HIST_FENWICK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dphist {

/// \brief A Fenwick (binary indexed) tree over value ranks, tracking both
/// the number and the sum of inserted values per rank.
///
/// Used by the absolute-error interval-cost builder: while scanning an
/// interval we insert each count at its value rank, and can then answer
/// "how many inserted values are <= t, and what is their sum" in O(log R)
/// — exactly what evaluating sum_i |x_i - mu| around a mean mu needs.
///
/// Rank contract: every rank argument must be < num_ranks(). A violation
/// aborts the process with a diagnostic (in every build type, not just
/// with assertions on): an out-of-range Insert/Remove would otherwise
/// silently drop the value — the update loop never executes — leaving
/// TotalCount/TotalSum quietly wrong, and an out-of-range query would
/// silently answer for a different rank than the caller asked about.
class RankedFenwick {
 public:
  /// Creates a tree over `num_ranks` ranks (0 .. num_ranks-1).
  explicit RankedFenwick(std::size_t num_ranks);

  /// Number of ranks.
  std::size_t num_ranks() const { return size_; }

  /// Inserts one occurrence of `value` at `rank`. Aborts unless
  /// rank < num_ranks().
  void Insert(std::size_t rank, double value);

  /// Removes one occurrence of `value` at `rank` (inverse of Insert).
  /// Aborts unless rank < num_ranks().
  void Remove(std::size_t rank, double value);

  /// Resets the tree to empty without reallocating.
  void Clear();

  /// Number of inserted values with rank <= `rank`. A rank of
  /// num_ranks()-1 returns the total insert count. Aborts unless
  /// rank < num_ranks().
  std::int64_t CountUpTo(std::size_t rank) const;

  /// Sum of inserted values with rank <= `rank`. Aborts unless
  /// rank < num_ranks().
  double SumUpTo(std::size_t rank) const;

  /// Total number of inserted values.
  std::int64_t TotalCount() const;

  /// Total sum of inserted values.
  double TotalSum() const;

 private:
  /// Aborts with a diagnostic naming `op` when rank >= num_ranks().
  void CheckRank(std::size_t rank, const char* op) const;

  std::size_t size_;
  std::vector<std::int64_t> count_;
  std::vector<double> sum_;
};

}  // namespace dphist

#endif  // DPHIST_HIST_FENWICK_H_
