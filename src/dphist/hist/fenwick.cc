#include "dphist/hist/fenwick.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dphist {

RankedFenwick::RankedFenwick(std::size_t num_ranks)
    : size_(num_ranks), count_(num_ranks + 1, 0), sum_(num_ranks + 1, 0.0) {}

void RankedFenwick::CheckRank(std::size_t rank, const char* op) const {
  if (rank < size_) {
    return;
  }
  // Not an assert(): an out-of-range update silently corrupts every
  // downstream absolute cost, so the check must survive NDEBUG builds.
  std::fprintf(stderr,
               "RankedFenwick::%s: rank %zu out of range (num_ranks %zu)\n",
               op, rank, size_);
  std::abort();
}

void RankedFenwick::Insert(std::size_t rank, double value) {
  CheckRank(rank, "Insert");
  for (std::size_t i = rank + 1; i <= size_; i += i & (~i + 1)) {
    count_[i] += 1;
    sum_[i] += value;
  }
}

void RankedFenwick::Remove(std::size_t rank, double value) {
  CheckRank(rank, "Remove");
  for (std::size_t i = rank + 1; i <= size_; i += i & (~i + 1)) {
    count_[i] -= 1;
    sum_[i] -= value;
  }
}

void RankedFenwick::Clear() {
  std::fill(count_.begin(), count_.end(), 0);
  std::fill(sum_.begin(), sum_.end(), 0.0);
}

std::int64_t RankedFenwick::CountUpTo(std::size_t rank) const {
  CheckRank(rank, "CountUpTo");
  std::int64_t total = 0;
  for (std::size_t i = rank + 1; i > 0; i -= i & (~i + 1)) {
    total += count_[i];
  }
  return total;
}

double RankedFenwick::SumUpTo(std::size_t rank) const {
  CheckRank(rank, "SumUpTo");
  double total = 0.0;
  for (std::size_t i = rank + 1; i > 0; i -= i & (~i + 1)) {
    total += sum_[i];
  }
  return total;
}

std::int64_t RankedFenwick::TotalCount() const {
  return size_ == 0 ? 0 : CountUpTo(size_ - 1);
}

double RankedFenwick::TotalSum() const {
  return size_ == 0 ? 0.0 : SumUpTo(size_ - 1);
}

}  // namespace dphist
