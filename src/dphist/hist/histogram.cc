#include "dphist/hist/histogram.h"

#include <utility>

#include "dphist/common/math_util.h"

namespace dphist {

Histogram::Histogram(std::vector<double> counts)
    : counts_(std::move(counts)) {}

Histogram Histogram::Zeros(std::size_t num_bins) {
  return Histogram(std::vector<double>(num_bins, 0.0));
}

void Histogram::set_count(std::size_t i, double value) {
  counts_[i] = value;
  prefix_valid_ = false;
}

void Histogram::Add(std::size_t i, double delta) {
  counts_[i] += delta;
  prefix_valid_ = false;
}

double Histogram::Total() const {
  EnsurePrefix();
  return prefix_.back();
}

Result<double> Histogram::RangeSum(std::size_t begin, std::size_t end) const {
  if (begin > end || end > counts_.size()) {
    return Status::InvalidArgument("RangeSum: invalid range");
  }
  return RangeSumUnchecked(begin, end);
}

double Histogram::RangeSumUnchecked(std::size_t begin,
                                    std::size_t end) const {
  EnsurePrefix();
  return prefix_[end] - prefix_[begin];
}

std::vector<double> Histogram::ToDistribution() const {
  std::vector<double> dist(counts_.size(), 0.0);
  KahanSum total;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    dist[i] = counts_[i] > 0.0 ? counts_[i] : 0.0;
    total.Add(dist[i]);
  }
  if (dist.empty()) {
    return dist;
  }
  if (total.Total() <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(dist.size());
    for (double& p : dist) {
      p = uniform;
    }
    return dist;
  }
  for (double& p : dist) {
    p /= total.Total();
  }
  return dist;
}

void Histogram::EnsurePrefix() const {
  if (prefix_valid_) {
    return;
  }
  prefix_ = PrefixSums(counts_);
  prefix_valid_ = true;
}

}  // namespace dphist
