#include "dphist/hist/histogram.h"

#include <utility>

#include "dphist/common/math_util.h"

namespace dphist {

Histogram::Histogram(std::vector<double> counts)
    : counts_(std::move(counts)) {}

Histogram::Histogram(const Histogram& other)
    : counts_(other.counts_),
      prefix_(other.prefix_),
      prefix_valid_(other.prefix_valid_.load(std::memory_order_acquire)) {}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this != &other) {
    counts_ = other.counts_;
    prefix_ = other.prefix_;
    prefix_valid_.store(other.prefix_valid_.load(std::memory_order_acquire),
                        std::memory_order_release);
  }
  return *this;
}

Histogram::Histogram(Histogram&& other) noexcept
    : counts_(std::move(other.counts_)),
      prefix_(std::move(other.prefix_)),
      prefix_valid_(other.prefix_valid_.load(std::memory_order_acquire)) {
  other.prefix_valid_.store(false, std::memory_order_release);
}

Histogram& Histogram::operator=(Histogram&& other) noexcept {
  if (this != &other) {
    counts_ = std::move(other.counts_);
    prefix_ = std::move(other.prefix_);
    prefix_valid_.store(other.prefix_valid_.load(std::memory_order_acquire),
                        std::memory_order_release);
    other.prefix_valid_.store(false, std::memory_order_release);
  }
  return *this;
}

Histogram Histogram::Zeros(std::size_t num_bins) {
  return Histogram(std::vector<double>(num_bins, 0.0));
}

void Histogram::set_count(std::size_t i, double value) {
  counts_[i] = value;
  prefix_valid_.store(false, std::memory_order_release);
}

void Histogram::Add(std::size_t i, double delta) {
  counts_[i] += delta;
  prefix_valid_.store(false, std::memory_order_release);
}

double Histogram::Total() const {
  EnsurePrefix();
  return prefix_.back();
}

Result<double> Histogram::RangeSum(std::size_t begin, std::size_t end) const {
  if (begin > end || end > counts_.size()) {
    return Status::InvalidArgument("RangeSum: invalid range");
  }
  return RangeSumUnchecked(begin, end);
}

double Histogram::RangeSumUnchecked(std::size_t begin,
                                    std::size_t end) const {
  EnsurePrefix();
  return prefix_[end] - prefix_[begin];
}

std::vector<double> Histogram::ToDistribution() const {
  std::vector<double> dist(counts_.size(), 0.0);
  KahanSum total;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    dist[i] = counts_[i] > 0.0 ? counts_[i] : 0.0;
    total.Add(dist[i]);
  }
  if (dist.empty()) {
    return dist;
  }
  if (total.Total() <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(dist.size());
    for (double& p : dist) {
      p = uniform;
    }
    return dist;
  }
  for (double& p : dist) {
    p /= total.Total();
  }
  return dist;
}

void Histogram::EnsurePrefix() const {
  // Once-init: the acquire load pairs with the release store below, so a
  // reader that sees `true` also sees the fully built table. Concurrent
  // first readers serialize on the mutex; exactly one builds.
  if (prefix_valid_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(prefix_mutex_);
  if (prefix_valid_.load(std::memory_order_relaxed)) {
    return;
  }
  prefix_ = PrefixSums(counts_);
  prefix_valid_.store(true, std::memory_order_release);
}

}  // namespace dphist
