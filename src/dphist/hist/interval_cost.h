#ifndef DPHIST_HIST_INTERVAL_COST_H_
#define DPHIST_HIST_INTERVAL_COST_H_

#include <cstddef>
#include <vector>

#include "dphist/common/parallel_defaults.h"
#include "dphist/common/result.h"
#include "dphist/common/status.h"

namespace dphist {

class ThreadPool;

/// \brief The merge-cost measure used when scoring a candidate bucket.
enum class CostKind {
  /// Sum of squared errors: sum_i (x_i - mean)^2 — the classical v-optimal
  /// objective. Its per-record sensitivity is data-dependent (see
  /// algorithms/structure_first.h), so StructureFirst only uses it with a
  /// documented count cap.
  kSquared,
  /// Sum of absolute errors: sum_i |x_i - mean| — per-record sensitivity 2
  /// regardless of the data, making it the privacy-safe default score for
  /// StructureFirst's exponential-mechanism boundary sampling.
  kAbsolute,
};

/// Returns "squared" or "absolute".
const char* CostKindName(CostKind kind);

/// \brief Precomputed interval merge costs over a histogram, restricted to
/// grid-aligned boundary candidates.
///
/// The v-optimal dynamic program and StructureFirst's boundary sampling both
/// consult costs of the form cost([p_a, p_b)) where p_0=0 < p_1 < ... <
/// p_m=n are the candidate cut positions (all multiples of `grid_step`,
/// plus the domain end). Squared costs are O(1) from prefix tables; absolute
/// costs are materialized into a packed a < b triangle built with a rank
/// Fenwick tree in O((n^2/g) log n).
class IntervalCostTable {
 public:
  struct Options {
    /// Which cost measure to evaluate.
    CostKind kind = CostKind::kSquared;
    /// Boundary candidates are multiples of grid_step (>= 1). A coarser
    /// grid trades structure quality for speed/memory — the paper's exact
    /// algorithm corresponds to grid_step = 1.
    std::size_t grid_step = 1;
    /// Safety cap on the absolute-cost triangle (number of stored cells).
    /// Create fails with InvalidArgument when (m+1)*m/2 would exceed it;
    /// increase grid_step in that case.
    std::size_t max_table_cells = 1ULL << 26;
    /// Pool for the absolute-cost matrix build (the per-endpoint Fenwick
    /// sweeps are independent); nullptr means ThreadPool::Global(). The
    /// resulting table is bit-identical for any thread count.
    ThreadPool* pool = nullptr;
    /// The matrix build only parallelizes when there are at least this
    /// many candidates; small tables stay on the sequential path. Shared
    /// with the v-opt solver (common/parallel_defaults.h) so both stages
    /// of one solve cut over at the same size.
    std::size_t min_parallel_candidates = kDefaultMinParallelCandidates;
  };

  /// Builds the table for `counts`. Fails for an empty histogram, a zero
  /// grid step, or an absolute-cost matrix exceeding the cell cap.
  static Result<IntervalCostTable> Create(const std::vector<double>& counts,
                                          const Options& options);

  /// Domain size n (unit bins).
  std::size_t domain_size() const { return domain_size_; }
  /// The cost measure.
  CostKind kind() const { return kind_; }
  /// The grid step.
  std::size_t grid_step() const { return grid_step_; }

  /// Candidate cut positions p_0=0 < ... < p_m=n (unit-bin indices).
  const std::vector<std::size_t>& positions() const { return positions_; }

  /// Number of candidate intervals m = positions().size() - 1; the finest
  /// expressible structure has m buckets.
  std::size_t num_candidates() const { return positions_.size() - 1; }

  /// Cost of merging [positions()[a], positions()[b]) into one bucket.
  /// Requires a < b < positions().size(). O(1).
  double CostBetween(std::size_t a, std::size_t b) const;

  /// Mean of counts over the arbitrary unit-bin interval [begin, end).
  /// Requires begin < end <= domain_size(). O(1).
  double MeanOf(std::size_t begin, std::size_t end) const;

  /// Squared-error cost of an arbitrary unit-bin interval (available for
  /// both kinds; used by NoiseFirst's error estimator). O(1).
  double SquaredCostOf(std::size_t begin, std::size_t end) const;

  /// Prefix sums over unit bins, sums()[i] = sum counts[0..i) (size
  /// domain_size()+1). Exposed for the monotone v-opt solver, whose bound
  /// kernel mirrors SquaredCostOf's arithmetic from these tables.
  const std::vector<double>& prefix_sums() const { return sums_; }

  /// Prefix sums of squares, same layout as prefix_sums().
  const std::vector<double>& prefix_squares() const { return squares_; }

  /// Pointer to the packed absolute-cost column of end candidate `b`:
  /// column[a] == cost of [positions()[a], positions()[b]) for a < b.
  /// Requires kind() == kAbsolute and 1 <= b < positions().size(). The
  /// contiguous column layout is what lets the monotone v-opt solver scan
  /// a fixed-end row of candidates with a vectorized block min.
  const double* AbsoluteColumn(std::size_t b) const {
    return absolute_costs_.data() + b * (b - 1) / 2;
  }

 private:
  IntervalCostTable() = default;

  void BuildAbsoluteMatrix(const std::vector<double>& counts,
                           const Options& options);

  // Packed triangular index: only a < b intervals exist, stored
  // column-major by end candidate b — column b occupies the contiguous
  // range [b*(b-1)/2, b*(b+1)/2). Half the memory of the historical full
  // (positions x positions) matrix, and fixed-b columns are contiguous.
  double AbsoluteAt(std::size_t a, std::size_t b) const {
    return absolute_costs_[b * (b - 1) / 2 + a];
  }

  std::size_t domain_size_ = 0;
  CostKind kind_ = CostKind::kSquared;
  std::size_t grid_step_ = 1;
  std::vector<std::size_t> positions_;
  // Prefix sums over unit bins: sums_[i] = sum counts[0..i).
  std::vector<double> sums_;
  std::vector<double> squares_;
  // Packed a < b triangle, column-major by end candidate (see AbsoluteAt).
  // Empty when kind == kSquared.
  std::vector<double> absolute_costs_;
};

}  // namespace dphist

#endif  // DPHIST_HIST_INTERVAL_COST_H_
