#ifndef DPHIST_HIST_BUCKETIZATION_H_
#define DPHIST_HIST_BUCKETIZATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"

namespace dphist {

/// \brief A contiguous bucket [begin, end) over unit bins, with the value
/// assigned to every unit bin inside it (the bucket's published mean).
struct Bucket {
  std::size_t begin = 0;
  std::size_t end = 0;
  double mean = 0.0;

  /// Number of unit bins covered.
  std::size_t length() const { return end - begin; }
};

/// \brief A partition of the domain [0, n) into contiguous buckets.
///
/// Both NoiseFirst and StructureFirst produce a `Bucketization`: the
/// "structure" of the merged histogram. Invariants (validated at
/// construction): boundaries are strictly increasing interior cut points in
/// (0, n); the implied buckets tile [0, n) exactly.
class Bucketization {
 public:
  /// Creates the trivial single-bucket structure over a domain of size n.
  /// Requires n >= 1 (returns InvalidArgument otherwise).
  static Result<Bucketization> SingleBucket(std::size_t domain_size);

  /// Creates the identity structure: every unit bin its own bucket.
  static Result<Bucketization> Identity(std::size_t domain_size);

  /// Creates a structure from interior cut points. `cuts` must be strictly
  /// increasing values in (0, domain_size); bucket i spans
  /// [cuts[i-1], cuts[i]) with cuts[-1] = 0 and cuts[k-1] = domain_size
  /// implied. An empty `cuts` yields the single-bucket structure.
  static Result<Bucketization> FromCuts(std::size_t domain_size,
                                        std::vector<std::size_t> cuts);

  /// Creates an equi-width structure with `num_buckets` buckets (the last
  /// bucket absorbs the remainder). Requires 1 <= num_buckets <= domain_size.
  static Result<Bucketization> EquiWidth(std::size_t domain_size,
                                         std::size_t num_buckets);

  /// Domain size n.
  std::size_t domain_size() const { return domain_size_; }

  /// Number of buckets (cuts.size() + 1).
  std::size_t num_buckets() const { return cuts_.size() + 1; }

  /// The interior cut points, strictly increasing, in (0, n).
  const std::vector<std::size_t>& cuts() const { return cuts_; }

  /// Returns bucket `i`'s [begin, end) span (mean is 0; use Apply to fill).
  Bucket bucket(std::size_t i) const;

  /// Returns the index of the bucket containing unit bin `bin`.
  /// Requires bin < domain_size().
  std::size_t BucketOf(std::size_t bin) const;

  /// Computes each bucket's mean of `unit_counts` and returns the filled
  /// buckets. Returns InvalidArgument if unit_counts.size() != domain_size.
  Result<std::vector<Bucket>> Apply(
      const std::vector<double>& unit_counts) const;

  /// Expands per-bucket means back to a unit-bin vector of length n:
  /// every unit bin receives its bucket's mean. `bucket_means` must have
  /// num_buckets() entries.
  Result<std::vector<double>> Expand(
      const std::vector<double>& bucket_means) const;

  /// Debug string like "{[0,3) [3,7) [7,10)}".
  std::string ToString() const;

 private:
  Bucketization(std::size_t domain_size, std::vector<std::size_t> cuts)
      : domain_size_(domain_size), cuts_(std::move(cuts)) {}

  std::size_t domain_size_ = 0;
  std::vector<std::size_t> cuts_;
};

}  // namespace dphist

#endif  // DPHIST_HIST_BUCKETIZATION_H_
