#include "dphist/hist/vopt_kernel.h"

#include <limits>

// Runtime multi-versioning: the default clone keeps the portable baseline
// ABI while x86-64-v3/v4 clones use AVX2/AVX-512 where the CPU has them.
// GCC's IFUNC-based dispatch interacts poorly with the sanitizer
// runtimes' early interceptors, and the sanitizer jobs don't measure
// performance anyway, so clones are disabled there.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define DPHIST_VOPT_KERNEL_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define DPHIST_VOPT_KERNEL_CLONES
#endif

namespace dphist {
namespace vopt_kernel {

// The min/max reductions are written as ternaries rather than std::min:
// under this TU's finite-math flags GCC vectorizes the ternary form but
// treats the std::min call as a memory clobber and gives up.

DPHIST_VOPT_KERNEL_CLONES
double SquaredLowerBoundBlockMin(const double* __restrict prev,
                                 const double* __restrict csum,
                                 const double* __restrict csq,
                                 const double* __restrict rr, double si,
                                 double qi, std::size_t b0, std::size_t e) {
  double mn = std::numeric_limits<double>::max();
  for (std::size_t j = b0; j < e; ++j) {
    const double sum = si - csum[j];
    double lb = prev[j] + ((qi - csq[j]) - (sum * sum) * rr[j]);
    const double p = prev[j];
    lb = lb > p ? lb : p;
    mn = lb < mn ? lb : mn;
  }
  return mn;
}

DPHIST_VOPT_KERNEL_CLONES
double AbsoluteCandidateBlockMin(const double* __restrict prev,
                                 const double* __restrict col, std::size_t b0,
                                 std::size_t e) {
  double mn = std::numeric_limits<double>::max();
  for (std::size_t j = b0; j < e; ++j) {
    const double cand = prev[j] + col[j];
    mn = cand < mn ? cand : mn;
  }
  return mn;
}

}  // namespace vopt_kernel
}  // namespace dphist
