#ifndef DPHIST_HIST_VOPT_KERNEL_H_
#define DPHIST_HIST_VOPT_KERNEL_H_

#include <cstddef>

namespace dphist {
namespace vopt_kernel {

// Block-min kernels for the monotone v-opt row solver (DESIGN §7).
//
// This translation unit is compiled with -ffinite-math-only
// -fno-signed-zeros (see src/CMakeLists.txt) so the compiler vectorizes
// the floating-point min reductions, with target_clones dispatching to
// AVX2/AVX-512 at runtime where available. The relaxed FP semantics are
// safe here because both functions produce *pruning thresholds only*:
// no value computed in this TU is ever written to the DP table, so the
// exact-tie-breaking contract of the solver cannot be perturbed.
//
// Preconditions: b0 < e, and every input in [b0, e) is finite (the solver
// only scans candidates whose previous-row cost is finite).

/// min over j in [b0, e) of
///   max(prev[j], prev[j] + ((qi - csq[j]) - (si - csum[j])^2 * rr[j]))
/// — the certified lower bound on the squared-cost DP candidate
/// prev[j] + CostBetween(j, i), where si/qi are the prefix sum/sum of
/// squares at candidate i and rr[j] is the *inflated* reciprocal of the
/// interval length (see kReciprocalInflate in vopt_dp.cc). The bound never
/// exceeds the exact candidate, for any rounding or FMA contraction of
/// this expression (DESIGN §7 gives the argument).
double SquaredLowerBoundBlockMin(const double* prev, const double* csum,
                                 const double* csq, const double* rr,
                                 double si, double qi, std::size_t b0,
                                 std::size_t e);

/// min over j in [b0, e) of prev[j] + col[j] — the *exact* candidate block
/// minimum for the absolute cost, where col is the packed triangular
/// column col[j] = AbsoluteAt(j, i) (IntervalCostTable::AbsoluteColumn).
double AbsoluteCandidateBlockMin(const double* prev, const double* col,
                                 std::size_t b0, std::size_t e);

}  // namespace vopt_kernel
}  // namespace dphist

#endif  // DPHIST_HIST_VOPT_KERNEL_H_
