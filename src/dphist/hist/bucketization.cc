#include "dphist/hist/bucketization.h"

#include <algorithm>
#include <sstream>

#include "dphist/common/math_util.h"

namespace dphist {

Result<Bucketization> Bucketization::SingleBucket(std::size_t domain_size) {
  return FromCuts(domain_size, {});
}

Result<Bucketization> Bucketization::Identity(std::size_t domain_size) {
  std::vector<std::size_t> cuts;
  cuts.reserve(domain_size > 0 ? domain_size - 1 : 0);
  for (std::size_t i = 1; i < domain_size; ++i) {
    cuts.push_back(i);
  }
  return FromCuts(domain_size, std::move(cuts));
}

Result<Bucketization> Bucketization::FromCuts(std::size_t domain_size,
                                              std::vector<std::size_t> cuts) {
  if (domain_size == 0) {
    return Status::InvalidArgument("Bucketization requires domain_size >= 1");
  }
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    if (cuts[i] == 0 || cuts[i] >= domain_size) {
      return Status::InvalidArgument(
          "Bucketization cuts must lie strictly inside (0, domain_size)");
    }
    if (i > 0 && cuts[i] <= cuts[i - 1]) {
      return Status::InvalidArgument(
          "Bucketization cuts must be strictly increasing");
    }
  }
  return Bucketization(domain_size, std::move(cuts));
}

Result<Bucketization> Bucketization::EquiWidth(std::size_t domain_size,
                                               std::size_t num_buckets) {
  if (num_buckets == 0 || num_buckets > domain_size) {
    return Status::InvalidArgument(
        "EquiWidth requires 1 <= num_buckets <= domain_size");
  }
  const std::size_t width = domain_size / num_buckets;
  std::vector<std::size_t> cuts;
  cuts.reserve(num_buckets - 1);
  for (std::size_t b = 1; b < num_buckets; ++b) {
    cuts.push_back(b * width);
  }
  return FromCuts(domain_size, std::move(cuts));
}

Bucket Bucketization::bucket(std::size_t i) const {
  Bucket b;
  b.begin = (i == 0) ? 0 : cuts_[i - 1];
  b.end = (i == cuts_.size()) ? domain_size_ : cuts_[i];
  return b;
}

std::size_t Bucketization::BucketOf(std::size_t bin) const {
  // First cut strictly greater than `bin` determines the bucket index.
  const auto it = std::upper_bound(cuts_.begin(), cuts_.end(), bin);
  return static_cast<std::size_t>(it - cuts_.begin());
}

Result<std::vector<Bucket>> Bucketization::Apply(
    const std::vector<double>& unit_counts) const {
  if (unit_counts.size() != domain_size_) {
    return Status::InvalidArgument(
        "Bucketization::Apply: counts size must equal domain size");
  }
  std::vector<Bucket> buckets;
  buckets.reserve(num_buckets());
  for (std::size_t i = 0; i < num_buckets(); ++i) {
    Bucket b = bucket(i);
    KahanSum sum;
    for (std::size_t j = b.begin; j < b.end; ++j) {
      sum.Add(unit_counts[j]);
    }
    b.mean = sum.Total() / static_cast<double>(b.length());
    buckets.push_back(b);
  }
  return buckets;
}

Result<std::vector<double>> Bucketization::Expand(
    const std::vector<double>& bucket_means) const {
  if (bucket_means.size() != num_buckets()) {
    return Status::InvalidArgument(
        "Bucketization::Expand: need one mean per bucket");
  }
  std::vector<double> unit(domain_size_, 0.0);
  for (std::size_t i = 0; i < num_buckets(); ++i) {
    const Bucket b = bucket(i);
    for (std::size_t j = b.begin; j < b.end; ++j) {
      unit[j] = bucket_means[i];
    }
  }
  return unit;
}

std::string Bucketization::ToString() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < num_buckets(); ++i) {
    const Bucket b = bucket(i);
    out << (i == 0 ? "" : " ") << "[" << b.begin << "," << b.end << ")";
  }
  out << "}";
  return out.str();
}

}  // namespace dphist
