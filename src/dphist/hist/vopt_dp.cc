#include "dphist/hist/vopt_dp.h"

#include <algorithm>
#include <limits>

#include "dphist/common/thread_pool.h"
#include "dphist/obs/obs.h"

namespace dphist {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Minimum indices per chunk when a row is parallelized: each cell already
// costs O(i) cost lookups, so modest chunks amortize dispatch fine while
// keeping the tail balanced.
constexpr std::size_t kRowMinChunk = 32;

}  // namespace

Result<VOptSolver> VOptSolver::Solve(const IntervalCostTable& costs,
                                     std::size_t max_buckets) {
  return Solve(costs, max_buckets, SolveOptions{});
}

Result<VOptSolver> VOptSolver::Solve(const IntervalCostTable& costs,
                                     std::size_t max_buckets,
                                     const SolveOptions& options) {
  const std::size_t m = costs.num_candidates();
  if (m == 0) {
    return Status::InvalidArgument("VOptSolver: no candidate intervals");
  }
  std::size_t cap = max_buckets == 0 ? m : std::min(max_buckets, m);

  // Whole-solve span plus bulk work counters. The counts are computed
  // arithmetically outside the DP loops, so the per-cell hot path carries
  // zero instrumentation; everything here is a pure function of (m, cap)
  // and therefore bit-identical across thread counts.
  obs::ScopedTimer solve_timer("vopt/solve");
  static obs::Counter& solves =
      obs::Registry::Global().GetCounter("vopt/solves");
  static obs::Counter& rows = obs::Registry::Global().GetCounter("vopt/rows");
  static obs::Counter& cells =
      obs::Registry::Global().GetCounter("vopt/cells");
  static obs::Counter& cost_lookups =
      obs::Registry::Global().GetCounter("vopt/cost_lookups");
  solves.Increment();
  if (obs::Enabled()) {
    std::uint64_t cell_count = m;  // base row
    std::uint64_t lookup_count = m;
    for (std::size_t k = 2; k <= cap; ++k) {
      // Row k has cells i in [k, m], and cell i scans i-k+1 predecessors.
      const std::uint64_t row_cells = m - k + 1;
      cell_count += row_cells;
      lookup_count += row_cells * (row_cells + 1) / 2;
    }
    rows.Add(cap);
    cells.Add(cell_count);
    cost_lookups.Add(lookup_count);
  }

  VOptSolver solver;
  solver.max_buckets_ = cap;
  solver.num_candidates_ = m;
  solver.domain_size_ = costs.domain_size();
  solver.positions_ = costs.positions();
  const std::size_t width = m + 1;
  solver.table_.assign((cap + 1) * width, kInfinity);
  solver.parent_.assign((cap + 1) * width, -1);

  {
    // Base row: one bucket covering the prefix.
    obs::ScopedTimer base_timer("base_row");  // -> vopt/solve/base_row
    for (std::size_t i = 1; i <= m; ++i) {
      solver.table_[1 * width + i] = costs.CostBetween(0, i);
      solver.parent_[1 * width + i] = 0;
    }
  }

  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Global();
  const bool parallel_rows =
      pool.thread_count() > 1 && m >= options.min_parallel_candidates;

  obs::ScopedTimer rows_timer("dp_rows");  // -> vopt/solve/dp_rows
  for (std::size_t k = 2; k <= cap; ++k) {
    const double* prev = &solver.table_[(k - 1) * width];
    double* curr = &solver.table_[k * width];
    std::int32_t* par = &solver.parent_[k * width];
    // Each cell i reads only the finished row k-1 and writes only its own
    // slots, so the row fans out with no synchronization; the ParallelFor
    // barrier between rows provides the k-1 -> k dependency.
    auto fill_cell = [&costs, prev, curr, par, k](std::size_t i) {
      double best = kInfinity;
      std::int32_t best_j = -1;
      for (std::size_t j = k - 1; j < i; ++j) {
        if (prev[j] == kInfinity) {
          continue;
        }
        const double candidate = prev[j] + costs.CostBetween(j, i);
        if (candidate < best) {
          best = candidate;
          best_j = static_cast<std::int32_t>(j);
        }
      }
      curr[i] = best;
      par[i] = best_j;
    };
    if (parallel_rows) {
      pool.ParallelForChunks(k, m + 1, kRowMinChunk,
                             [&fill_cell](std::size_t begin, std::size_t end) {
                               for (std::size_t i = begin; i < end; ++i) {
                                 fill_cell(i);
                               }
                             });
    } else {
      for (std::size_t i = k; i <= m; ++i) {
        fill_cell(i);
      }
    }
  }
  return solver;
}

double VOptSolver::PrefixCost(std::size_t k, std::size_t i) const {
  if (k == 0 || k > max_buckets_ || i > num_candidates_ || i < k) {
    return kInfinity;
  }
  return table_[k * (num_candidates_ + 1) + i];
}

Result<Bucketization> VOptSolver::Traceback(std::size_t k) const {
  if (k == 0 || k > max_buckets_) {
    return Status::InvalidArgument("Traceback: k out of range");
  }
  const std::size_t width = num_candidates_ + 1;
  std::vector<std::size_t> cuts;
  cuts.reserve(k - 1);
  std::size_t i = num_candidates_;
  for (std::size_t level = k; level > 1; --level) {
    const std::int32_t j = parent_[level * width + i];
    if (j <= 0) {
      return Status::Internal("Traceback: corrupt parent table");
    }
    cuts.push_back(positions_[static_cast<std::size_t>(j)]);
    i = static_cast<std::size_t>(j);
  }
  std::reverse(cuts.begin(), cuts.end());
  return Bucketization::FromCuts(domain_size_, std::move(cuts));
}

}  // namespace dphist
