#include "dphist/hist/vopt_dp.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <limits>

#include "dphist/common/env.h"
#include "dphist/common/thread_pool.h"
#include "dphist/hist/vopt_kernel.h"
#include "dphist/obs/obs.h"

namespace dphist {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Minimum indices per chunk when a row is parallelized: each cell already
// costs O(i) work, so modest chunks amortize dispatch fine while keeping
// the tail balanced.
constexpr std::size_t kRowMinChunk = 32;

// Monotone-path tuning (DESIGN §7): candidates are bound-scanned in blocks
// of kBoundBlock, and kCellTile cells of one row share each block sweep so
// the prev/csum/csq/reciprocal blocks stay L1-resident across the tile
// instead of being re-streamed from L2 once per cell.
constexpr std::size_t kBoundBlock = 64;
constexpr std::size_t kCellTile = 32;

// Interval-length reciprocals are inflated by 1 + 2^-40 so that
// (sum*sum) * rr >= fl((sum*sum) / length) under any rounding — including
// any FMA contraction of the kernel expression: the inflation dominates
// the relative rounding error of the reciprocal and of the product (each
// ~2^-53) by orders of magnitude, while remaining far too small to cost
// measurable pruning. This is what makes the kernel's lower bound
// *certified* — never above the exact candidate — rather than merely
// close (DESIGN §7 gives the full argument).
constexpr double kReciprocalInflate = 1.0 + 0x1p-40;

// Below this candidate count kAuto stays naive: the monotone path's
// per-row suffix minima and per-cell upper-bound seeding only pay for
// themselves once rows are long enough for pruning to bite.
constexpr std::size_t kAutoMonotoneMinCandidates = 32;

// Reference predecessor scan for one cell — also the fallback the
// monotone path uses for the rare cells its preconditions exclude.
// Returns the number of exact cost evaluations actually performed (the
// infinity guard skips a predecessor *before* its lookup, which is why
// the count cannot be derived from the closed-form triangle).
std::uint64_t NaiveCell(const IntervalCostTable& costs, const double* prev,
                        double* curr, std::int32_t* par, std::size_t k,
                        std::size_t i) {
  std::uint64_t lookups = 0;
  double best = kInfinity;
  std::int32_t best_j = -1;
  for (std::size_t j = k - 1; j < i; ++j) {
    if (prev[j] == kInfinity) {
      continue;
    }
    const double candidate = prev[j] + costs.CostBetween(j, i);
    ++lookups;
    if (candidate < best) {
      best = candidate;
      best_j = static_cast<std::int32_t>(j);
    }
  }
  curr[i] = best;
  par[i] = best_j;
  return lookups;
}

// Shared read-only inputs of the monotone squared path, valid for one row.
struct SquaredBoundTables {
  const double* csum;     // prefix sums gathered at candidate positions
  const double* csq;      // prefix sums of squares, same gather
  const double* rrev;     // rrev[m - d] = inflated 1/(d * grid_step)
  const double* suffmin;  // suffix minima of the previous row
  std::size_t m;
};

// Fills cells [begin, end) of row k with certified-lower-bound pruning.
//
// Tie-breaking contract: the only values ever written are exact
// candidates prev[j] + CostBetween(j, i), evaluated in ascending j with
// strict '<', and the skip rules provably never eliminate the leftmost
// argmin — `lb > ub` because the bound never exceeds the candidate and ub
// never drops below the row minimum; `lb >= best` because best's achiever
// lies at a smaller j. So curr/par match NaiveCell bit for bit, at any
// thread count, and only the amount of skipped work varies (DESIGN §7).
void MonotoneSquaredCells(const IntervalCostTable& costs,
                          const SquaredBoundTables& t, const double* prev,
                          double* curr, std::int32_t* par, std::size_t k,
                          std::size_t begin, std::size_t end,
                          std::uint64_t* lookups, std::uint64_t* scans) {
  struct Cell {
    std::size_t i;
    double si;         // prefix sum at i
    double qi;         // prefix sum of squares at i
    const double* rr;  // rr[j] = inflated reciprocal of length (i - j)
    double ub;         // certified upper bound on this cell's row minimum
    double best;       // min over candidates evaluated so far (ascending)
    std::int32_t bj;
    bool done;
  };
  std::array<Cell, kCellTile> tile;
  for (std::size_t i0 = begin; i0 < end; i0 += kCellTile) {
    const std::size_t tcount = std::min(kCellTile, end - i0);
    std::size_t active = tcount;
    for (std::size_t t_idx = 0; t_idx < tcount; ++t_idx) {
      Cell& c = tile[t_idx];
      c.i = i0 + t_idx;
      c.si = t.csum[c.i];
      c.qi = t.csq[c.i];
      c.rr = t.rrev + (t.m - c.i);
      // Seed the upper bound with the exact j = i-1 candidate, so every
      // later comparison starts against an attainable value instead of
      // infinity. The seed deliberately does NOT touch `best`: j = i-1 is
      // the *last* candidate, and crediting it early would let an
      // equal-valued smaller j be skipped — breaking the leftmost
      // tie-break that makes the table bit-identical to naive.
      c.ub = prev[c.i - 1] + costs.CostBetween(c.i - 1, c.i);
      ++*lookups;
      c.best = kInfinity;
      c.bj = -1;
      c.done = false;
    }
    for (std::size_t b0 = k - 1; b0 + 1 < i0 + tcount && active > 0;
         b0 += kBoundBlock) {
      for (std::size_t t_idx = 0; t_idx < tcount; ++t_idx) {
        Cell& c = tile[t_idx];
        if (c.done || b0 >= c.i) {
          continue;
        }
        // Every remaining candidate satisfies cand >= prev[j] >=
        // suffmin[b0]; once that floor clears both thresholds, no later
        // block can improve the cell.
        if (t.suffmin[b0] > c.ub || t.suffmin[b0] >= c.best) {
          c.done = true;
          --active;
          continue;
        }
        const std::size_t e = std::min(c.i, b0 + kBoundBlock);
        *scans += e - b0;
        const double bmin = vopt_kernel::SquaredLowerBoundBlockMin(
            prev, t.csum, t.csq, c.rr, c.si, c.qi, b0, e);
        if (bmin > c.ub || bmin >= c.best) {
          continue;  // no candidate in this block can improve the cell
        }
        // The block may hold an improvement: re-derive the per-candidate
        // bound scalar-side (every FP-contraction variant of the
        // expression is equally certified) and evaluate the survivors
        // exactly, in ascending j.
        for (std::size_t j = b0; j < e; ++j) {
          const double sum = c.si - t.csum[j];
          double lb = prev[j] + ((c.qi - t.csq[j]) - (sum * sum) * c.rr[j]);
          lb = lb > prev[j] ? lb : prev[j];
          if (lb > c.ub || lb >= c.best) {
            continue;
          }
          const double candidate = prev[j] + costs.CostBetween(j, c.i);
          ++*lookups;
          if (candidate < c.ub) {
            c.ub = candidate;
          }
          if (candidate < c.best) {
            c.best = candidate;
            c.bj = static_cast<std::int32_t>(j);
          }
        }
      }
    }
    for (std::size_t t_idx = 0; t_idx < tcount; ++t_idx) {
      Cell& c = tile[t_idx];
      if (c.bj < 0) {
        // Unreachable by the DESIGN §7 argument (the leftmost argmin
        // survives every skip rule); kept so a future bound regression
        // would degrade to a naive scan instead of corrupting the table.
        *lookups += NaiveCell(costs, prev, curr, par, k, c.i);
        continue;
      }
      curr[c.i] = c.best;
      par[c.i] = c.bj;
    }
  }
}

// Absolute-cost analogue: the packed triangular column of end candidate i
// is contiguous in j, so the kernel takes an *exact* block min over
// prev[j] + col[j] directly — no bound arithmetic, no reciprocals, and the
// same two skip rules and ascending strict-'<' rescan as above. Two
// sequential streams already saturate the reduction, so cells are not
// tiled here.
void MonotoneAbsoluteCells(const IntervalCostTable& costs,
                           const double* suffmin, const double* prev,
                           double* curr, std::int32_t* par, std::size_t k,
                           std::size_t begin, std::size_t end,
                           std::uint64_t* lookups, std::uint64_t* scans) {
  for (std::size_t i = begin; i < end; ++i) {
    const double* col = costs.AbsoluteColumn(i);
    double ub = prev[i - 1] + col[i - 1];  // exact seed; never fed to best
    ++*lookups;
    double best = kInfinity;
    std::int32_t bj = -1;
    for (std::size_t b0 = k - 1; b0 < i; b0 += kBoundBlock) {
      if (suffmin[b0] > ub || suffmin[b0] >= best) {
        break;
      }
      const std::size_t e = std::min(i, b0 + kBoundBlock);
      *scans += e - b0;
      const double bmin =
          vopt_kernel::AbsoluteCandidateBlockMin(prev, col, b0, e);
      if (bmin > ub || bmin >= best) {
        continue;
      }
      for (std::size_t j = b0; j < e; ++j) {
        const double candidate = prev[j] + col[j];
        ++*lookups;
        if (candidate < ub) {
          ub = candidate;
        }
        if (candidate < best) {
          best = candidate;
          bj = static_cast<std::int32_t>(j);
        }
      }
    }
    if (bj < 0) {
      *lookups += NaiveCell(costs, prev, curr, par, k, i);
      continue;
    }
    curr[i] = best;
    par[i] = bj;
  }
}

}  // namespace

const char* VOptStrategyName(VOptStrategy strategy) {
  switch (strategy) {
    case VOptStrategy::kAuto:
      return "auto";
    case VOptStrategy::kNaive:
      return "naive";
    case VOptStrategy::kMonotone:
      return "monotone";
  }
  return "unknown";
}

bool ParseVOptStrategy(std::string_view text, VOptStrategy* out) {
  if (text == "auto") {
    *out = VOptStrategy::kAuto;
    return true;
  }
  if (text == "naive") {
    *out = VOptStrategy::kNaive;
    return true;
  }
  if (text == "monotone") {
    *out = VOptStrategy::kMonotone;
    return true;
  }
  return false;
}

Result<VOptSolver> VOptSolver::Solve(const IntervalCostTable& costs,
                                     std::size_t max_buckets) {
  return Solve(costs, max_buckets, SolveOptions{});
}

Result<VOptSolver> VOptSolver::Solve(const IntervalCostTable& costs,
                                     std::size_t max_buckets,
                                     const SolveOptions& options) {
  const std::size_t m = costs.num_candidates();
  if (m == 0) {
    return Status::InvalidArgument("VOptSolver: no candidate intervals");
  }
  std::size_t cap = max_buckets == 0 ? m : std::min(max_buckets, m);

  // Monotone preconditions over the candidate geometry. Interior positions
  // are uniform multiples of grid_step by construction of the cost table;
  // re-derived defensively here because the bound kernel's reciprocal
  // table indexes interval lengths by (i - j). The final position is the
  // domain end and may break uniformity, in which case the last cell of
  // every row falls back to the naive scan.
  const std::vector<std::size_t>& positions = costs.positions();
  const std::size_t grid = costs.grid_step();
  bool interior_uniform = true;
  for (std::size_t j = 0; j < m; ++j) {
    if (positions[j] != j * grid) {
      interior_uniform = false;
      break;
    }
  }
  const bool endpoint_uniform = interior_uniform && positions[m] == m * grid;

  VOptStrategy strategy = options.strategy;
  if (strategy == VOptStrategy::kAuto) {
    if (const auto env = GetEnv("DPHIST_VOPT_STRATEGY")) {
      VOptStrategy parsed = VOptStrategy::kAuto;
      if (ParseVOptStrategy(*env, &parsed)) {
        strategy = parsed;
      }
      // Unknown values keep kAuto: a misspelled env var should fall back
      // to the default policy, not change results (it cannot — only work).
    }
  }
  if (strategy == VOptStrategy::kAuto) {
    // Decision table (DESIGN §7): monotone whenever its structural
    // preconditions hold and rows are long enough for pruning to pay.
    const bool applicable =
        costs.kind() == CostKind::kAbsolute || interior_uniform;
    strategy = applicable && m >= kAutoMonotoneMinCandidates
                   ? VOptStrategy::kMonotone
                   : VOptStrategy::kNaive;
  } else if (strategy == VOptStrategy::kMonotone &&
             costs.kind() == CostKind::kSquared && !interior_uniform) {
    // Without a uniform interior grid the reciprocal table cannot be
    // indexed; honoring the request would fall back cell-by-cell anyway.
    strategy = VOptStrategy::kNaive;
  }
  const bool monotone = strategy == VOptStrategy::kMonotone;
  const bool monotone_squared =
      monotone && costs.kind() == CostKind::kSquared;

  obs::ScopedTimer solve_timer("vopt/solve");
  static obs::Counter& solves =
      obs::Registry::Global().GetCounter("vopt/solves");
  static obs::Counter& strategy_naive =
      obs::Registry::Global().GetCounter("vopt/strategy/naive");
  static obs::Counter& strategy_monotone =
      obs::Registry::Global().GetCounter("vopt/strategy/monotone");
  solves.Increment();
  (monotone ? strategy_monotone : strategy_naive).Increment();

  VOptSolver solver;
  solver.max_buckets_ = cap;
  solver.num_candidates_ = m;
  solver.domain_size_ = costs.domain_size();
  solver.positions_ = positions;
  const std::size_t width = m + 1;
  solver.table_.assign((cap + 1) * width, kInfinity);
  solver.parent_.assign((cap + 1) * width, -1);

  // Work accounting: actual counts accumulated where the work happens (a
  // closed-form triangle is wrong for the monotone path, and even the
  // naive count must reflect predecessors skipped before their lookup),
  // summed per chunk so the totals stay bit-identical at any thread
  // count. The base row performs exactly m lookups.
  std::atomic<std::uint64_t> total_lookups{static_cast<std::uint64_t>(m)};
  std::atomic<std::uint64_t> total_scans{0};

  {
    // Base row: one bucket covering the prefix.
    obs::ScopedTimer base_timer("base_row");  // -> vopt/solve/base_row
    for (std::size_t i = 1; i <= m; ++i) {
      solver.table_[1 * width + i] = costs.CostBetween(0, i);
      solver.parent_[1 * width + i] = 0;
    }
  }

  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Global();
  const bool parallel_rows =
      pool.thread_count() > 1 && m >= options.min_parallel_candidates;

  // Per-solve tables for the monotone path. csum/csq gather the unit-bin
  // prefix tables at the candidate positions so the kernel streams them
  // contiguously; rrev holds inflated reciprocals addressed by
  // rr = rrev + (m - i), making rr[j] the reciprocal of length (i - j).
  std::vector<double> csum, csq, rrev, suffmin;
  if (monotone_squared) {
    const std::vector<double>& sums = costs.prefix_sums();
    const std::vector<double>& squares = costs.prefix_squares();
    csum.resize(m + 1);
    csq.resize(m + 1);
    for (std::size_t j = 0; j <= m; ++j) {
      csum[j] = sums[positions[j]];
      csq[j] = squares[positions[j]];
    }
    rrev.assign(m + 1, 0.0);
    for (std::size_t d = 1; d <= m; ++d) {
      rrev[m - d] =
          (1.0 / (static_cast<double>(d) * static_cast<double>(grid))) *
          kReciprocalInflate;
    }
  }
  if (monotone) {
    suffmin.resize(m + 1);
  }

  obs::ScopedTimer rows_timer("dp_rows");  // -> vopt/solve/dp_rows
  for (std::size_t k = 2; k <= cap; ++k) {
    const double* prev = &solver.table_[(k - 1) * width];
    double* curr = &solver.table_[k * width];
    std::int32_t* par = &solver.parent_[k * width];
    if (monotone) {
      // Suffix minima of the previous row over the candidate range: the
      // floor under every candidate a cell has left to scan. Computed
      // once per row by the submitting thread, read-only in the chunks.
      suffmin[m] = prev[m];
      for (std::size_t j = m; j-- > k - 1;) {
        suffmin[j] = std::min(prev[j], suffmin[j + 1]);
      }
    }
    // Cells the squared kernel covers; when the domain end is not
    // grid-aligned the final cell's last interval has an off-grid length,
    // so that one cell per row takes the naive scan instead.
    const std::size_t fast_end =
        monotone_squared && !endpoint_uniform ? m : m + 1;
    // Each cell i reads only the finished row k-1 and writes only its own
    // slots, so the row fans out with no synchronization; the chunk
    // barrier between rows provides the k-1 -> k dependency.
    auto fill_range = [&](std::size_t begin, std::size_t end) {
      std::uint64_t lookups = 0;
      std::uint64_t scans = 0;
      if (monotone_squared) {
        const SquaredBoundTables tables{csum.data(), csq.data(), rrev.data(),
                                        suffmin.data(), m};
        MonotoneSquaredCells(costs, tables, prev, curr, par, k, begin, end,
                             &lookups, &scans);
      } else if (monotone) {
        MonotoneAbsoluteCells(costs, suffmin.data(), prev, curr, par, k,
                              begin, end, &lookups, &scans);
      } else {
        for (std::size_t i = begin; i < end; ++i) {
          lookups += NaiveCell(costs, prev, curr, par, k, i);
        }
      }
      total_lookups.fetch_add(lookups, std::memory_order_relaxed);
      total_scans.fetch_add(scans, std::memory_order_relaxed);
    };
    if (parallel_rows) {
      pool.ParallelForChunks(k, fast_end, kRowMinChunk, fill_range);
    } else {
      fill_range(k, fast_end);
    }
    if (fast_end == m) {
      total_lookups.fetch_add(NaiveCell(costs, prev, curr, par, k, m),
                              std::memory_order_relaxed);
    }
  }

  solver.stats_.strategy = strategy;
  solver.stats_.rows = cap;
  std::uint64_t cell_count = m;  // base row
  for (std::size_t k = 2; k <= cap; ++k) {
    cell_count += m - k + 1;
  }
  solver.stats_.cells = cell_count;
  solver.stats_.cost_lookups =
      total_lookups.load(std::memory_order_relaxed);
  solver.stats_.bound_scans = total_scans.load(std::memory_order_relaxed);

  if (obs::Enabled()) {
    static obs::Counter& rows =
        obs::Registry::Global().GetCounter("vopt/rows");
    static obs::Counter& cells =
        obs::Registry::Global().GetCounter("vopt/cells");
    static obs::Counter& cost_lookups =
        obs::Registry::Global().GetCounter("vopt/cost_lookups");
    static obs::Counter& bound_scans =
        obs::Registry::Global().GetCounter("vopt/bound_scans");
    rows.Add(solver.stats_.rows);
    cells.Add(solver.stats_.cells);
    cost_lookups.Add(solver.stats_.cost_lookups);
    bound_scans.Add(solver.stats_.bound_scans);
  }
  return solver;
}

double VOptSolver::PrefixCost(std::size_t k, std::size_t i) const {
  if (k == 0 || k > max_buckets_ || i > num_candidates_ || i < k) {
    return kInfinity;
  }
  return table_[k * (num_candidates_ + 1) + i];
}

std::int32_t VOptSolver::PrefixParent(std::size_t k, std::size_t i) const {
  if (k == 0 || k > max_buckets_ || i > num_candidates_ || i < k) {
    return -1;
  }
  return parent_[k * (num_candidates_ + 1) + i];
}

Result<Bucketization> VOptSolver::Traceback(std::size_t k) const {
  if (k == 0 || k > max_buckets_) {
    return Status::InvalidArgument("Traceback: k out of range");
  }
  const std::size_t width = num_candidates_ + 1;
  std::vector<std::size_t> cuts;
  cuts.reserve(k - 1);
  std::size_t i = num_candidates_;
  for (std::size_t level = k; level > 1; --level) {
    const std::int32_t j = parent_[level * width + i];
    if (j <= 0) {
      return Status::Internal("Traceback: corrupt parent table");
    }
    cuts.push_back(positions_[static_cast<std::size_t>(j)]);
    i = static_cast<std::size_t>(j);
  }
  std::reverse(cuts.begin(), cuts.end());
  return Bucketization::FromCuts(domain_size_, std::move(cuts));
}

}  // namespace dphist
