#ifndef DPHIST_NET_HTTP_H_
#define DPHIST_NET_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

namespace dphist {
namespace net {

/// \brief A minimal HTTP/1.1 message layer: an incremental parser and a
/// serializer, no sockets. The server and the client both sit on it, and
/// it is the unit-testable surface (http parsing is where dependency-free
/// servers usually hide their bugs, so it must be drivable byte by byte).
///
/// Supported subset — deliberately small, enough for the query protocol
/// and curl: request line / status line, header fields, and bodies framed
/// by Content-Length. No chunked transfer encoding, no trailers, no
/// continuation lines. Header names are case-insensitive (stored
/// lower-cased); connections default to keep-alive per HTTP/1.1 unless
/// `Connection: close`.

/// Hard limits, enforced during parsing so a misbehaving peer cannot make
/// the server buffer unboundedly. Oversized input fails the parse with an
/// HTTP status the server echoes back (431/413).
inline constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t kMaxBodyBytes = 256u * 1024 * 1024;

/// \brief One parsed HTTP message (request or response).
struct HttpMessage {
  // Request side.
  std::string method;
  std::string target;
  // Response side.
  int status = 0;
  std::string reason;

  /// Header fields, names lower-cased; later duplicates overwrite.
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header lookup (lower-case `name`), empty string when absent.
  std::string_view Header(std::string_view name) const;

  /// True when the peer asked to close the connection after this message.
  bool WantsClose() const;
};

/// \brief Incremental parser: feed raw bytes as they arrive; it says when
/// a complete message is ready and how many bytes of the input it
/// consumed (the remainder belongs to the next pipelined message).
class HttpParser {
 public:
  enum class Kind { kRequest, kResponse };
  enum class State {
    kNeedMore,   ///< incomplete; feed more bytes
    kComplete,   ///< message() is ready
    kError,      ///< protocol violation; error_status()/error() describe it
  };

  explicit HttpParser(Kind kind) : kind_(kind) {}

  /// Consumes as much of `bytes` as this message needs. Returns the new
  /// state; `*consumed` is how many input bytes were used (always the full
  /// input while kNeedMore). After kComplete, call Reset() before feeding
  /// the next message's bytes.
  State Feed(std::string_view bytes, std::size_t* consumed);

  /// The parsed message; valid once Feed returned kComplete.
  const HttpMessage& message() const { return message_; }
  HttpMessage& message() { return message_; }

  /// On kError: the HTTP status a server should answer with (400, 413,
  /// 431) and a short reason.
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  /// Clears all state for the next message on the same connection.
  void Reset();

 private:
  State Fail(int status, std::string_view reason);
  /// Parses the buffered header block; returns false on protocol error.
  bool ParseHeaderBlock(std::string_view head);

  Kind kind_;
  std::string buffer_;       // bytes of the current message's head
  bool in_body_ = false;     // head parsed; accumulating body
  std::size_t body_needed_ = 0;
  HttpMessage message_;
  int error_status_ = 0;
  std::string error_;
};

/// Serializes a request: `method target HTTP/1.1` + headers + body.
/// Content-Length is always emitted (from `body`); `Host` must already be
/// in `headers` if the caller wants one.
std::string SerializeRequest(const HttpMessage& message);

/// Serializes a response: `HTTP/1.1 status reason` + headers + body, with
/// Content-Length emitted from `body`.
std::string SerializeResponse(const HttpMessage& message);

/// Serializes only the response head (status line + headers +
/// `content-length: body_len` + blank line), ignoring `message.body`.
/// Invariant: `SerializeResponse(m) == SerializeResponseHead(m,
/// m.body.size()) + m.body` byte for byte — what lets the server write a
/// cached body as a second scatter-gather segment without copying it into
/// the head buffer.
std::string SerializeResponseHead(const HttpMessage& message,
                                  std::size_t body_len);

/// Canonical reason phrase for the handful of statuses dphist emits.
std::string_view ReasonPhrase(int status);

}  // namespace net
}  // namespace dphist

#endif  // DPHIST_NET_HTTP_H_
