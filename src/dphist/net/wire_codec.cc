#include "dphist/net/wire_codec.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <system_error>
#include <utility>

#include "dphist/common/binary_io.h"
#include "dphist/obs/export.h"

namespace dphist {
namespace net {

namespace {

using binio::Crc32;
using binio::Cursor;
using binio::GetF64;
using binio::GetStr;
using binio::GetU32;
using binio::GetU64;
using binio::PutF64;
using binio::PutStr;
using binio::PutU32;
using binio::PutU64;

// Wraps an encoded payload into a complete frame.
std::string Frame(std::string payload) {
  std::string out;
  out.reserve(kWireMagicLen + 8 + payload.size());
  out.append(kWireMagic, kWireMagicLen);
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  out += payload;
  return out;
}

void PutKey(std::string& out, const serve::ReleaseKey& key) {
  PutStr(out, key.tenant);
  PutStr(out, key.dataset);
  PutU64(out, key.dataset_fingerprint);
  PutStr(out, key.publisher);
  PutF64(out, key.epsilon);
  PutU64(out, key.seed);
}

bool GetKey(Cursor& in, serve::ReleaseKey* key) {
  return GetStr(in, &key->tenant) && GetStr(in, &key->dataset) &&
         GetU64(in, &key->dataset_fingerprint) &&
         GetStr(in, &key->publisher) && GetF64(in, &key->epsilon) &&
         GetU64(in, &key->seed);
}

Status BodyError(std::string_view what) {
  return Status::ParseError("wire codec: " + std::string(what));
}

// Parses a status-code number back into the enum; unknown numbers map to
// kInternal so a newer peer's codes still surface as errors, not garbage.
StatusCode CodeFromInt(std::uint32_t raw) {
  switch (raw) {
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kInternal;
    case 3:
      return StatusCode::kNotFound;
    case 4:
      return StatusCode::kParseError;
    case 5:
      return StatusCode::kResourceExhausted;
    case 6:
      return StatusCode::kDeadlineExceeded;
    case 7:
      return StatusCode::kPermissionDenied;
    case 8:
      return StatusCode::kDataLoss;
    default:
      return StatusCode::kInternal;
  }
}

// --- comma-joined doubles / queries for the flat-JSON fallback ---

std::string JoinDoubles(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += obs::JsonDouble(values[i]);
  }
  return out;
}

bool SplitDoubles(std::string_view text, std::vector<double>* out) {
  out->clear();
  if (text.empty()) {
    return true;
  }
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view token = text.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || end != token.data() + token.size()) {
      return false;
    }
    out->push_back(value);
    if (comma == std::string_view::npos) {
      return true;
    }
    pos = comma + 1;
  }
  return true;
}

std::string JoinU64s(const std::vector<std::uint64_t>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(values[i]);
  }
  return out;
}

std::string JoinQueries(const std::vector<RangeQuery>& queries) {
  std::string out;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(queries[i].begin);
    out += '-';
    out += std::to_string(queries[i].end);
  }
  return out;
}

bool ParseU64(std::string_view token, std::uint64_t* out) {
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out, 10);
  return ec == std::errc{} && end == token.data() + token.size() &&
         !token.empty();
}

bool SplitU64s(std::string_view text, std::vector<std::uint64_t>* out) {
  out->clear();
  if (text.empty()) {
    return true;
  }
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view token = text.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    std::uint64_t value = 0;
    if (!ParseU64(token, &value)) {
      return false;
    }
    out->push_back(value);
    if (comma == std::string_view::npos) {
      return true;
    }
    pos = comma + 1;
  }
  return true;
}

// Released keys must arrive strictly increasing: duplicates or disorder
// would silently corrupt binary-searched range sums downstream, so both
// codecs reject them at the boundary.
bool KeysStrictlyIncreasing(const std::vector<std::uint64_t>& keys) {
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] <= keys[i - 1]) {
      return false;
    }
  }
  return true;
}

bool SplitQueries(std::string_view text, std::vector<RangeQuery>* out) {
  out->clear();
  if (text.empty()) {
    return true;
  }
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view token = text.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    const std::size_t dash = token.find('-');
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    if (dash == std::string_view::npos ||
        !ParseU64(token.substr(0, dash), &begin) ||
        !ParseU64(token.substr(dash + 1), &end)) {
      return false;
    }
    out->push_back(RangeQuery{static_cast<std::size_t>(begin),
                              static_cast<std::size_t>(end)});
    if (comma == std::string_view::npos) {
      return true;
    }
    pos = comma + 1;
  }
  return true;
}

// Field accessors over a parsed flat-JSON object.
bool JsonStr(const obs::JsonObject& object, const std::string& key,
             std::string* out) {
  const auto it = object.find(key);
  if (it == object.end() || it->second.kind != obs::JsonValue::Kind::kString) {
    return false;
  }
  *out = it->second.string_value;
  return true;
}

bool JsonNum(const obs::JsonObject& object, const std::string& key,
             double* out) {
  const auto it = object.find(key);
  if (it == object.end() || it->second.kind != obs::JsonValue::Kind::kNumber) {
    return false;
  }
  *out = it->second.number_value;
  return true;
}

bool JsonBool(const obs::JsonObject& object, const std::string& key,
              bool* out) {
  const auto it = object.find(key);
  if (it == object.end() || it->second.kind != obs::JsonValue::Kind::kBool) {
    return false;
  }
  *out = it->second.bool_value;
  return true;
}

// u64 fields (seed, fingerprint) travel as decimal strings in JSON —
// a JSON number round-trips through double and silently loses precision
// past 2^53, which would mis-key a release.
bool JsonU64(const obs::JsonObject& object, const std::string& key,
             std::uint64_t* out) {
  const auto it = object.find(key);
  if (it == object.end()) {
    return false;
  }
  if (it->second.kind == obs::JsonValue::Kind::kString) {
    return ParseU64(it->second.string_value, out);
  }
  if (it->second.kind == obs::JsonValue::Kind::kNumber &&
      it->second.number_value >= 0) {
    *out = static_cast<std::uint64_t>(it->second.number_value);
    return true;
  }
  return false;
}

void PutKeyJson(obs::JsonObjectWriter& writer, const serve::ReleaseKey& key) {
  writer.Str("tenant", key.tenant)
      .Str("dataset", key.dataset)
      .Str("fingerprint", std::to_string(key.dataset_fingerprint))
      .Str("publisher", key.publisher)
      .Num("epsilon", key.epsilon)
      .Str("seed", std::to_string(key.seed));
}

bool GetKeyJson(const obs::JsonObject& object, serve::ReleaseKey* key) {
  return JsonStr(object, "tenant", &key->tenant) &&
         JsonStr(object, "dataset", &key->dataset) &&
         JsonU64(object, "fingerprint", &key->dataset_fingerprint) &&
         JsonStr(object, "publisher", &key->publisher) &&
         JsonNum(object, "epsilon", &key->epsilon) &&
         JsonU64(object, "seed", &key->seed);
}

}  // namespace

Status WireError::ToStatus() const {
  switch (code) {
    case StatusCode::kOk:
      return Status::Ok();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kParseError:
      return Status::ParseError(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case StatusCode::kPermissionDenied:
      return Status::PermissionDenied(message);
    case StatusCode::kDataLoss:
      return Status::DataLoss(message);
    case StatusCode::kInternal:
    default:
      return Status::Internal(message);
  }
}

std::string EncodeQueryRequest(const WireQueryRequest& request) {
  std::string payload;
  payload.push_back(static_cast<char>(WireType::kQueryRequest));
  PutStr(payload, request.tenant);
  PutStr(payload, request.dataset);
  PutStr(payload, request.request.publisher);
  PutF64(payload, request.request.epsilon);
  PutU64(payload, request.request.seed);
  PutU32(payload, static_cast<std::uint32_t>(request.queries.size()));
  for (const RangeQuery& query : request.queries) {
    PutU64(payload, query.begin);
    PutU64(payload, query.end);
  }
  return Frame(std::move(payload));
}

std::string EncodeBatchAnswer(const WireBatchAnswer& answer) {
  std::string payload;
  payload.push_back(static_cast<char>(WireType::kBatchAnswer));
  payload.push_back(answer.stale ? 1 : 0);
  payload.push_back(answer.cache_hit ? 1 : 0);
  PutKey(payload, answer.served);
  PutU32(payload, static_cast<std::uint32_t>(answer.answers.size()));
  for (const double value : answer.answers) {
    PutF64(payload, value);
  }
  return Frame(std::move(payload));
}

std::string EncodeHistogram(const WireHistogram& histogram) {
  std::string payload;
  payload.push_back(static_cast<char>(WireType::kHistogram));
  PutKey(payload, histogram.key);
  PutU32(payload, static_cast<std::uint32_t>(histogram.counts.size()));
  for (const double value : histogram.counts) {
    PutF64(payload, value);
  }
  return Frame(std::move(payload));
}

std::string EncodeSparseHistogram(const WireSparseHistogram& histogram) {
  std::string payload;
  payload.push_back(static_cast<char>(WireType::kSparseHistogram));
  PutKey(payload, histogram.key);
  PutU64(payload, histogram.domain_size);
  const std::size_t entries =
      std::min(histogram.keys.size(), histogram.counts.size());
  PutU32(payload, static_cast<std::uint32_t>(entries));
  for (std::size_t i = 0; i < entries; ++i) {
    PutU64(payload, histogram.keys[i]);
    PutF64(payload, histogram.counts[i]);
  }
  return Frame(std::move(payload));
}

std::string EncodeError(const Status& status) {
  std::string payload;
  payload.push_back(static_cast<char>(WireType::kError));
  PutU32(payload, static_cast<std::uint32_t>(status.code()));
  PutStr(payload, status.message());
  return Frame(std::move(payload));
}

Result<WireMessage> DecodeFrame(std::string_view bytes) {
  if (bytes.size() < kWireMagicLen + 8 ||
      std::memcmp(bytes.data(), kWireMagic, kWireMagicLen) != 0) {
    return Status::DataLoss("wire codec: bad magic or truncated frame");
  }
  Cursor header{bytes, kWireMagicLen};
  std::uint32_t payload_len = 0;
  std::uint32_t expected_crc = 0;
  GetU32(header, &payload_len);
  GetU32(header, &expected_crc);
  if (bytes.size() - header.pos != payload_len) {
    return Status::DataLoss("wire codec: frame length mismatch");
  }
  const std::string_view payload = bytes.substr(header.pos, payload_len);
  if (Crc32(payload) != expected_crc) {
    return Status::DataLoss("wire codec: CRC mismatch");
  }
  if (payload.empty()) {
    return BodyError("empty payload");
  }
  Cursor in{payload, 1};
  WireMessage message;
  switch (static_cast<WireType>(static_cast<unsigned char>(payload[0]))) {
    case WireType::kQueryRequest: {
      message.type = WireType::kQueryRequest;
      WireQueryRequest& request = message.query_request;
      std::uint32_t count = 0;
      if (!GetStr(in, &request.tenant) || !GetStr(in, &request.dataset) ||
          !GetStr(in, &request.request.publisher) ||
          !GetF64(in, &request.request.epsilon) ||
          !GetU64(in, &request.request.seed) || !GetU32(in, &count)) {
        return BodyError("truncated query request");
      }
      // Cheap sanity bound before reserving: each query is 16 payload
      // bytes, so `count` beyond the remaining payload is corrupt (the
      // CRC already passed, but defense in depth costs one compare).
      if (!in.Remaining(static_cast<std::size_t>(count) * 16)) {
        return BodyError("query count exceeds payload");
      }
      request.queries.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t begin = 0;
        std::uint64_t end = 0;
        if (!GetU64(in, &begin) || !GetU64(in, &end)) {
          return BodyError("truncated query");
        }
        request.queries.push_back(RangeQuery{static_cast<std::size_t>(begin),
                                             static_cast<std::size_t>(end)});
      }
      break;
    }
    case WireType::kBatchAnswer: {
      message.type = WireType::kBatchAnswer;
      WireBatchAnswer& answer = message.batch_answer;
      if (!in.Remaining(2)) {
        return BodyError("truncated batch answer");
      }
      answer.stale = payload[in.pos++] != 0;
      answer.cache_hit = payload[in.pos++] != 0;
      std::uint32_t count = 0;
      if (!GetKey(in, &answer.served) || !GetU32(in, &count)) {
        return BodyError("truncated batch answer");
      }
      if (!in.Remaining(static_cast<std::size_t>(count) * 8)) {
        return BodyError("answer count exceeds payload");
      }
      answer.answers.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        double value = 0.0;
        if (!GetF64(in, &value)) {
          return BodyError("truncated answer");
        }
        answer.answers.push_back(value);
      }
      break;
    }
    case WireType::kHistogram: {
      message.type = WireType::kHistogram;
      WireHistogram& histogram = message.histogram;
      std::uint32_t count = 0;
      if (!GetKey(in, &histogram.key) || !GetU32(in, &count)) {
        return BodyError("truncated histogram");
      }
      if (!in.Remaining(static_cast<std::size_t>(count) * 8)) {
        return BodyError("bin count exceeds payload");
      }
      histogram.counts.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        double value = 0.0;
        if (!GetF64(in, &value)) {
          return BodyError("truncated bin");
        }
        histogram.counts.push_back(value);
      }
      break;
    }
    case WireType::kSparseHistogram: {
      message.type = WireType::kSparseHistogram;
      WireSparseHistogram& histogram = message.sparse_histogram;
      std::uint32_t count = 0;
      if (!GetKey(in, &histogram.key) ||
          !GetU64(in, &histogram.domain_size) || !GetU32(in, &count)) {
        return BodyError("truncated sparse histogram");
      }
      // 16 payload bytes per (key, count) entry.
      if (!in.Remaining(static_cast<std::size_t>(count) * 16)) {
        return BodyError("sparse entry count exceeds payload");
      }
      histogram.keys.reserve(count);
      histogram.counts.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t key = 0;
        double value = 0.0;
        if (!GetU64(in, &key) || !GetF64(in, &value)) {
          return BodyError("truncated sparse entry");
        }
        histogram.keys.push_back(key);
        histogram.counts.push_back(value);
      }
      if (!KeysStrictlyIncreasing(histogram.keys)) {
        return BodyError("sparse keys not strictly increasing");
      }
      break;
    }
    case WireType::kError: {
      message.type = WireType::kError;
      std::uint32_t code = 0;
      if (!GetU32(in, &code) || !GetStr(in, &message.error.message)) {
        return BodyError("truncated error");
      }
      message.error.code = CodeFromInt(code);
      break;
    }
    default:
      return BodyError("unknown message type");
  }
  if (in.pos != payload.size()) {
    return BodyError("trailing payload bytes");
  }
  return message;
}

// --- JSON fallback ---

std::string EncodeQueryRequestJson(const WireQueryRequest& request) {
  obs::JsonObjectWriter writer;
  writer.Str("type", "query_request")
      .Str("tenant", request.tenant)
      .Str("dataset", request.dataset)
      .Str("publisher", request.request.publisher)
      .Num("epsilon", request.request.epsilon)
      .Str("seed", std::to_string(request.request.seed))
      .Str("queries", JoinQueries(request.queries));
  return writer.Finish();
}

std::string EncodeBatchAnswerJson(const WireBatchAnswer& answer) {
  obs::JsonObjectWriter writer;
  writer.Str("type", "batch_answer")
      .Bool("stale", answer.stale)
      .Bool("cache_hit", answer.cache_hit);
  PutKeyJson(writer, answer.served);
  writer.Str("answers", JoinDoubles(answer.answers));
  return writer.Finish();
}

std::string EncodeHistogramJson(const WireHistogram& histogram) {
  obs::JsonObjectWriter writer;
  writer.Str("type", "histogram");
  PutKeyJson(writer, histogram.key);
  writer.Str("counts", JoinDoubles(histogram.counts));
  return writer.Finish();
}

std::string EncodeSparseHistogramJson(const WireSparseHistogram& histogram) {
  obs::JsonObjectWriter writer;
  writer.Str("type", "sparse_histogram");
  PutKeyJson(writer, histogram.key);
  writer.Str("domain", std::to_string(histogram.domain_size))
      .Str("keys", JoinU64s(histogram.keys))
      .Str("counts", JoinDoubles(histogram.counts));
  return writer.Finish();
}

std::string EncodeErrorJson(const Status& status) {
  obs::JsonObjectWriter writer;
  writer.Str("type", "error")
      .Int("code", static_cast<std::uint64_t>(status.code()))
      .Str("code_name", StatusCodeName(status.code()))
      .Str("message", status.message());
  return writer.Finish();
}

Result<WireMessage> DecodeJson(std::string_view text) {
  auto parsed = obs::ParseFlatJson(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const obs::JsonObject& object = parsed.value();
  std::string type;
  if (!JsonStr(object, "type", &type)) {
    return BodyError("json message missing \"type\"");
  }
  WireMessage message;
  if (type == "query_request") {
    message.type = WireType::kQueryRequest;
    WireQueryRequest& request = message.query_request;
    std::string queries;
    if (!JsonStr(object, "tenant", &request.tenant) ||
        !JsonStr(object, "dataset", &request.dataset) ||
        !JsonStr(object, "publisher", &request.request.publisher) ||
        !JsonNum(object, "epsilon", &request.request.epsilon) ||
        !JsonU64(object, "seed", &request.request.seed) ||
        !JsonStr(object, "queries", &queries) ||
        !SplitQueries(queries, &request.queries)) {
      return BodyError("malformed json query request");
    }
    return message;
  }
  if (type == "batch_answer") {
    message.type = WireType::kBatchAnswer;
    WireBatchAnswer& answer = message.batch_answer;
    std::string answers;
    if (!JsonBool(object, "stale", &answer.stale) ||
        !JsonBool(object, "cache_hit", &answer.cache_hit) ||
        !GetKeyJson(object, &answer.served) ||
        !JsonStr(object, "answers", &answers) ||
        !SplitDoubles(answers, &answer.answers)) {
      return BodyError("malformed json batch answer");
    }
    return message;
  }
  if (type == "histogram") {
    message.type = WireType::kHistogram;
    WireHistogram& histogram = message.histogram;
    std::string counts;
    if (!GetKeyJson(object, &histogram.key) ||
        !JsonStr(object, "counts", &counts) ||
        !SplitDoubles(counts, &histogram.counts)) {
      return BodyError("malformed json histogram");
    }
    return message;
  }
  if (type == "sparse_histogram") {
    message.type = WireType::kSparseHistogram;
    WireSparseHistogram& histogram = message.sparse_histogram;
    std::string keys;
    std::string counts;
    if (!GetKeyJson(object, &histogram.key) ||
        !JsonU64(object, "domain", &histogram.domain_size) ||
        !JsonStr(object, "keys", &keys) ||
        !SplitU64s(keys, &histogram.keys) ||
        !JsonStr(object, "counts", &counts) ||
        !SplitDoubles(counts, &histogram.counts) ||
        histogram.keys.size() != histogram.counts.size() ||
        !KeysStrictlyIncreasing(histogram.keys)) {
      return BodyError("malformed json sparse histogram");
    }
    return message;
  }
  if (type == "error") {
    message.type = WireType::kError;
    double code = 0.0;
    if (!JsonNum(object, "code", &code) ||
        !JsonStr(object, "message", &message.error.message)) {
      return BodyError("malformed json error");
    }
    message.error.code = CodeFromInt(static_cast<std::uint32_t>(code));
    return message;
  }
  return BodyError("unknown json message type \"" + type + "\"");
}

}  // namespace net
}  // namespace dphist
