#ifndef DPHIST_NET_WIRE_CODEC_H_
#define DPHIST_NET_WIRE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/query/range_query.h"
#include "dphist/serve/release_cache.h"
#include "dphist/serve/release_server.h"

namespace dphist {
namespace net {

/// \brief The compact binary wire format for query traffic and published
/// histograms, plus a flat-JSON fallback sharing the same message shapes.
///
/// Binary framing mirrors the journal's (and reuses its `binio`
/// primitives): a frame is
///
///   magic "DPHWIR1\n" (8 bytes)
///   payload_len : u32 little-endian
///   crc32       : u32 little-endian, IEEE CRC-32 of the payload bytes
///   payload     : type tag (u8) + type-specific body
///
/// All integers little-endian regardless of host; doubles as raw IEEE-754
/// bits; strings length-prefixed (u32). A frame decodes successfully only
/// when the magic matches, the length fits exactly, and the CRC verifies —
/// a truncated or bit-flipped frame is a typed kDataLoss, never a garbled
/// message (wire_codec_test's truncation/bit-flip battery).
///
/// The JSON fallback is one flat object per message (the obs
/// JsonObjectWriter/ParseFlatJson schema — no nesting), so any message is
/// inspectable with curl. Repeated values (queries, answers, counts)
/// travel as a single comma-separated string field; doubles are formatted
/// with round-trip precision, so the JSON path is answer-for-answer
/// byte-identical with the binary path.

/// First bytes of every binary frame.
inline constexpr char kWireMagic[] = "DPHWIR1\n";
inline constexpr std::size_t kWireMagicLen = 8;

/// Payload type tags.
enum class WireType : std::uint8_t {
  kQueryRequest = 1,
  kBatchAnswer = 2,
  kHistogram = 3,
  kError = 4,
  kSparseHistogram = 5,
};

/// MIME types selecting the codec on the HTTP surface.
inline constexpr char kContentTypeBinary[] = "application/x-dphist-wire";
inline constexpr char kContentTypeJson[] = "application/json";

/// \brief One query request: which namespace and release to answer from,
/// and the batch of range queries.
struct WireQueryRequest {
  std::string tenant = "default";
  std::string dataset = "default";
  serve::ServeRequest request;
  std::vector<RangeQuery> queries;

  friend bool operator==(const WireQueryRequest& a,
                         const WireQueryRequest& b) {
    return a.tenant == b.tenant && a.dataset == b.dataset &&
           a.request.publisher == b.request.publisher &&
           a.request.epsilon == b.request.epsilon &&
           a.request.seed == b.request.seed && a.queries == b.queries;
  }
};

/// \brief One batch of answers, mirroring serve::BatchAnswer plus the key
/// of the release that answered.
struct WireBatchAnswer {
  std::vector<double> answers;
  bool stale = false;
  bool cache_hit = false;
  serve::ReleaseKey served;

  friend bool operator==(const WireBatchAnswer&,
                         const WireBatchAnswer&) = default;
};

/// \brief One published histogram (the full released counts).
struct WireHistogram {
  serve::ReleaseKey key;
  std::vector<double> counts;

  friend bool operator==(const WireHistogram&, const WireHistogram&) = default;
};

/// \brief One published sparse histogram: only the released keys travel,
/// with the domain size alongside so the receiver can validate queries.
///
/// Binary body: key, domain (u64), entry count (u32), then one
/// (key u64, count f64) pair per entry. Keys must be strictly increasing;
/// duplicates or disorder are a decode error on both codecs. The codec
/// itself allows the full u64 key range (including 2^64 - 1) — the 2^63
/// domain cap is a `sparse::SparseHistogram` invariant enforced where a
/// frame is turned into one, not a framing rule.
///
/// JSON fallback: `"type": "sparse_histogram"`, the release-key fields,
/// and `"domain"` / `"keys"` as decimal strings (u64s must not round-trip
/// through JSON numbers — double loses precision past 2^53), with
/// `"keys"` / `"counts"` comma-joined.
struct WireSparseHistogram {
  serve::ReleaseKey key;
  std::uint64_t domain_size = 0;
  std::vector<std::uint64_t> keys;
  std::vector<double> counts;

  friend bool operator==(const WireSparseHistogram&,
                         const WireSparseHistogram&) = default;
};

/// \brief A typed error travelling the wire.
struct WireError {
  StatusCode code = StatusCode::kInternal;
  std::string message;

  /// Reconstructs the Status this error encodes.
  Status ToStatus() const;

  friend bool operator==(const WireError&, const WireError&) = default;
};

/// \brief One decoded message: `type` says which member is meaningful.
struct WireMessage {
  WireType type = WireType::kError;
  WireQueryRequest query_request;
  WireBatchAnswer batch_answer;
  WireHistogram histogram;
  WireSparseHistogram sparse_histogram;
  WireError error;
};

// --- binary codec ---

std::string EncodeQueryRequest(const WireQueryRequest& request);
std::string EncodeBatchAnswer(const WireBatchAnswer& answer);
std::string EncodeHistogram(const WireHistogram& histogram);
std::string EncodeSparseHistogram(const WireSparseHistogram& histogram);
std::string EncodeError(const Status& status);

/// Decodes one complete binary frame. kDataLoss on bad magic, a length
/// that does not match the buffer, or a CRC mismatch; kParseError on a
/// well-framed payload whose body does not decode.
Result<WireMessage> DecodeFrame(std::string_view bytes);

// --- JSON fallback (same message shapes, flat objects) ---

std::string EncodeQueryRequestJson(const WireQueryRequest& request);
std::string EncodeBatchAnswerJson(const WireBatchAnswer& answer);
std::string EncodeHistogramJson(const WireHistogram& histogram);
std::string EncodeSparseHistogramJson(const WireSparseHistogram& histogram);
std::string EncodeErrorJson(const Status& status);

/// Decodes one flat-JSON message; the `"type"` field selects the shape.
Result<WireMessage> DecodeJson(std::string_view text);

}  // namespace net
}  // namespace dphist

#endif  // DPHIST_NET_WIRE_CODEC_H_
