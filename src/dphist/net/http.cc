#include "dphist/net/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <system_error>

namespace dphist {
namespace net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string_view HttpMessage::Header(std::string_view name) const {
  const auto it = headers.find(std::string(name));
  return it == headers.end() ? std::string_view() : std::string_view(it->second);
}

bool HttpMessage::WantsClose() const {
  return ToLower(Header("connection")) == "close";
}

HttpParser::State HttpParser::Fail(int status, std::string_view reason) {
  error_status_ = status;
  error_ = reason;
  return State::kError;
}

bool HttpParser::ParseHeaderBlock(std::string_view head) {
  // First line: request line or status line.
  std::size_t line_end = head.find("\r\n");
  const std::string_view first = head.substr(0, line_end);
  if (kind_ == Kind::kRequest) {
    const std::size_t sp1 = first.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : first.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) {
      return false;
    }
    message_.method = std::string(first.substr(0, sp1));
    message_.target = std::string(first.substr(sp1 + 1, sp2 - sp1 - 1));
    const std::string_view version = first.substr(sp2 + 1);
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
      return false;
    }
  } else {
    // "HTTP/1.1 200 OK"
    const std::size_t sp1 = first.find(' ');
    if (sp1 == std::string_view::npos) {
      return false;
    }
    const std::string_view rest = first.substr(sp1 + 1);
    const std::size_t sp2 = rest.find(' ');
    const std::string_view code =
        sp2 == std::string_view::npos ? rest : rest.substr(0, sp2);
    int status = 0;
    const auto [end, ec] =
        std::from_chars(code.data(), code.data() + code.size(), status);
    if (ec != std::errc{} || end != code.data() + code.size()) {
      return false;
    }
    message_.status = status;
    if (sp2 != std::string_view::npos) {
      message_.reason = std::string(rest.substr(sp2 + 1));
    }
  }

  // Header fields.
  std::size_t pos = line_end + 2;
  while (pos < head.size()) {
    line_end = head.find("\r\n", pos);
    if (line_end == std::string_view::npos) {
      line_end = head.size();
    }
    const std::string_view line = head.substr(pos, line_end - pos);
    pos = line_end + 2;
    if (line.empty()) {
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return false;
    }
    message_.headers[ToLower(line.substr(0, colon))] =
        std::string(Trim(line.substr(colon + 1)));
  }
  return true;
}

HttpParser::State HttpParser::Feed(std::string_view bytes,
                                   std::size_t* consumed) {
  *consumed = 0;
  if (!in_body_) {
    // Accumulate until the blank line terminating the header block,
    // consuming only up to (and including) that terminator — anything
    // after it is body or the next pipelined message and stays with the
    // caller. The search restarts just before the previous tail so a
    // terminator spanning a read boundary is found without rescanning.
    const std::size_t previous = buffer_.size();
    const std::size_t search_from = previous < 3 ? 0 : previous - 3;
    buffer_.append(bytes.data(), bytes.size());
    const std::size_t head_end = buffer_.find("\r\n\r\n", search_from);
    if (head_end == std::string::npos) {
      *consumed = bytes.size();
      if (buffer_.size() > kMaxHeaderBytes) {
        return Fail(431, "header block too large");
      }
      return State::kNeedMore;
    }
    const std::size_t head_total = head_end + 4;
    *consumed = head_total - previous;
    buffer_.resize(head_total);  // return over-read bytes to the caller
    if (!ParseHeaderBlock(std::string_view(buffer_).substr(0, head_end + 2))) {
      return Fail(400, "malformed header block");
    }
    // Body framing: Content-Length only (no chunked support).
    if (!message_.Header("transfer-encoding").empty()) {
      return Fail(400, "transfer-encoding not supported");
    }
    const std::string_view cl = message_.Header("content-length");
    std::size_t length = 0;
    if (!cl.empty()) {
      const auto [end, ec] =
          std::from_chars(cl.data(), cl.data() + cl.size(), length, 10);
      if (ec != std::errc{} || end != cl.data() + cl.size()) {
        return Fail(400, "bad content-length");
      }
      if (length > kMaxBodyBytes) {
        return Fail(413, "body too large");
      }
    }
    in_body_ = true;
    body_needed_ = length;
    message_.body.reserve(length);
    bytes.remove_prefix(*consumed);
  }

  const std::size_t take = std::min(bytes.size(), body_needed_);
  message_.body.append(bytes.data(), take);
  body_needed_ -= take;
  *consumed += take;
  return body_needed_ == 0 ? State::kComplete : State::kNeedMore;
}

void HttpParser::Reset() {
  buffer_.clear();
  in_body_ = false;
  body_needed_ = 0;
  message_ = HttpMessage();
  error_status_ = 0;
  error_.clear();
}

namespace {

void AppendHeadersOnly(std::string& out, const HttpMessage& message,
                       std::size_t body_len) {
  for (const auto& [name, value] : message.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "content-length: " + std::to_string(body_len) + "\r\n";
  out += "\r\n";
}

void AppendHeaders(std::string& out, const HttpMessage& message) {
  AppendHeadersOnly(out, message, message.body.size());
  out += message.body;
}

std::string ResponseStatusLine(const HttpMessage& message) {
  return "HTTP/1.1 " + std::to_string(message.status) + " " +
         std::string(ReasonPhrase(message.status)) + "\r\n";
}

}  // namespace

std::string SerializeRequest(const HttpMessage& message) {
  std::string out = message.method + " " + message.target + " HTTP/1.1\r\n";
  AppendHeaders(out, message);
  return out;
}

std::string SerializeResponse(const HttpMessage& message) {
  std::string out = ResponseStatusLine(message);
  AppendHeaders(out, message);
  return out;
}

std::string SerializeResponseHead(const HttpMessage& message,
                                  std::size_t body_len) {
  std::string out = ResponseStatusLine(message);
  AppendHeadersOnly(out, message, body_len);
  return out;
}

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

}  // namespace net
}  // namespace dphist
