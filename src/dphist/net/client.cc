#include "dphist/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dphist {
namespace net {

namespace {

Status ErrnoStatus(std::string_view what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

// Builds the POST carrying one encoded query-request message.
HttpMessage BuildPost(const std::string& target, const WireQueryRequest& query,
                      bool binary) {
  HttpMessage request;
  request.method = "POST";
  request.target = target;
  request.headers["content-type"] =
      binary ? kContentTypeBinary : kContentTypeJson;
  request.body =
      binary ? EncodeQueryRequest(query) : EncodeQueryRequestJson(query);
  return request;
}

// Decodes a response body in the codec the response declares; a non-200
// (or an explicit error message) becomes its typed Status.
Result<WireMessage> DecodeResponse(const HttpMessage& response) {
  const bool binary = response.Header("content-type") == kContentTypeBinary;
  auto decoded =
      binary ? DecodeFrame(response.body) : DecodeJson(response.body);
  if (!decoded.ok()) {
    if (response.status != 200) {
      // Plain-text protocol errors (400/413/431 from the parser).
      return Status::Internal("server error " +
                              std::to_string(response.status) + ": " +
                              response.body);
    }
    return decoded.status();
  }
  if (decoded.value().type == WireType::kError) {
    return decoded.value().error.ToStatus();
  }
  return decoded;
}

}  // namespace

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status NetClient::Connect(const std::string& host, std::uint16_t port) {
  Close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + host);
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("socket");
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status =
        ErrnoStatus("connect " + host + ":" + std::to_string(port));
    close(fd);
    return status;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  host_ = host;
  port_ = port;
  return Status::Ok();
}

Result<HttpMessage> NetClient::RoundTrip(const HttpMessage& request) {
  if (fd_ < 0) {
    return Status::Internal("not connected");
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    const std::string bytes = SerializeRequest(request);
    std::size_t sent = 0;
    bool broken = false;
    while (sent < bytes.size()) {
      const ssize_t n =
          send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        broken = true;
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
    if (!broken) {
      HttpParser parser(HttpParser::Kind::kResponse);
      char buffer[65536];
      for (;;) {
        const ssize_t n = recv(fd_, buffer, sizeof(buffer), 0);
        if (n <= 0) {
          broken = true;
          break;
        }
        std::string_view chunk(buffer, static_cast<std::size_t>(n));
        while (!chunk.empty()) {
          std::size_t consumed = 0;
          const HttpParser::State state = parser.Feed(chunk, &consumed);
          chunk.remove_prefix(consumed);
          if (state == HttpParser::State::kError) {
            return Status::Internal("malformed response: " + parser.error());
          }
          if (state == HttpParser::State::kComplete) {
            if (parser.message().WantsClose()) {
              Close();
            }
            return std::move(parser.message());
          }
        }
      }
    }
    // The keep-alive connection died under us (server restarted, idle
    // timeout): reconnect once and retry. A second failure is real.
    const Status reconnected = Connect(host_, port_);
    if (!reconnected.ok()) {
      return reconnected;
    }
  }
  return Status::Internal("connection repeatedly broken");
}

Result<WireBatchAnswer> NetClient::Query(const WireQueryRequest& query,
                                         bool binary) {
  auto response = RoundTrip(BuildPost("/v1/query", query, binary));
  if (!response.ok()) {
    return response.status();
  }
  auto decoded = DecodeResponse(response.value());
  if (!decoded.ok()) {
    return decoded.status();
  }
  if (decoded.value().type != WireType::kBatchAnswer) {
    return Status::Internal("unexpected response message type");
  }
  return std::move(decoded.value().batch_answer);
}

Result<std::vector<WireBatchAnswer>> NetClient::QueryPipelined(
    const WireQueryRequest& query, bool binary, std::size_t depth) {
  if (fd_ < 0) {
    return Status::Internal("not connected");
  }
  std::vector<WireBatchAnswer> answers;
  if (depth == 0) {
    return answers;
  }
  const std::string one =
      SerializeRequest(BuildPost("/v1/query", query, binary));
  std::string bytes;
  bytes.reserve(one.size() * depth);
  for (std::size_t i = 0; i < depth; ++i) {
    bytes += one;
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return ErrnoStatus("pipelined send");
    }
    sent += static_cast<std::size_t>(n);
  }
  answers.reserve(depth);
  HttpParser parser(HttpParser::Kind::kResponse);
  char buffer[65536];
  while (answers.size() < depth) {
    const ssize_t n = recv(fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      return ErrnoStatus("pipelined recv");
    }
    std::string_view chunk(buffer, static_cast<std::size_t>(n));
    while (!chunk.empty() && answers.size() < depth) {
      std::size_t consumed = 0;
      const HttpParser::State state = parser.Feed(chunk, &consumed);
      chunk.remove_prefix(consumed);
      if (state == HttpParser::State::kError) {
        return Status::Internal("malformed response: " + parser.error());
      }
      if (state == HttpParser::State::kComplete) {
        auto decoded = DecodeResponse(parser.message());
        if (!decoded.ok()) {
          return decoded.status();
        }
        if (decoded.value().type != WireType::kBatchAnswer) {
          return Status::Internal("unexpected response message type");
        }
        answers.push_back(std::move(decoded.value().batch_answer));
        parser.Reset();
      }
    }
  }
  return answers;
}

Result<WireHistogram> NetClient::Release(const WireQueryRequest& query,
                                         bool binary) {
  auto response = RoundTrip(BuildPost("/v1/release", query, binary));
  if (!response.ok()) {
    return response.status();
  }
  auto decoded = DecodeResponse(response.value());
  if (!decoded.ok()) {
    return decoded.status();
  }
  if (decoded.value().type != WireType::kHistogram) {
    return Status::Internal("unexpected response message type");
  }
  return std::move(decoded.value().histogram);
}

Result<WireSparseHistogram> NetClient::SparseRelease(
    const WireQueryRequest& query, bool binary) {
  auto response = RoundTrip(BuildPost("/v1/release", query, binary));
  if (!response.ok()) {
    return response.status();
  }
  auto decoded = DecodeResponse(response.value());
  if (!decoded.ok()) {
    return decoded.status();
  }
  if (decoded.value().type != WireType::kSparseHistogram) {
    return Status::Internal("unexpected response message type");
  }
  return std::move(decoded.value().sparse_histogram);
}

}  // namespace net
}  // namespace dphist
