#include "dphist/net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dphist/common/env.h"
#include "dphist/net/http.h"
#include "dphist/net/wire_codec.h"
#include "dphist/obs/export.h"
#include "dphist/obs/obs.h"

namespace dphist {
namespace net {

namespace {

int MapStatusToHttp(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kDataLoss:  // corrupt frame from the client
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kPermissionDenied:
      return 403;
    case StatusCode::kResourceExhausted:
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kInternal:
    default:
      return 500;
  }
}

Status ErrnoStatus(std::string_view what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One response queued for write, as up to two scatter-gather segments:
/// `head` (serialized head, or the whole response when `body` is null) and
/// an optional shared immutable `body` — a pre-encoded release frame
/// written straight from the cache, never copied into per-connection
/// buffers.
struct Payload {
  std::string head;
  std::shared_ptr<const std::string> body;

  std::size_t size() const {
    return head.size() + (body != nullptr ? body->size() : 0);
  }
};

void FillResponseHeaders(HttpMessage& response, int http_status,
                         StatusCode code, bool binary, bool close) {
  response.status = http_status;
  response.headers["content-type"] =
      binary ? kContentTypeBinary : kContentTypeJson;
  response.headers["x-dphist-status"] = std::string(StatusCodeName(code));
  if (close) {
    response.headers["connection"] = "close";
  }
}

// Serializes an HTTP response carrying one codec-encoded message.
Payload BuildResponse(int http_status, StatusCode code, bool binary,
                      std::string body, bool close) {
  HttpMessage response;
  FillResponseHeaders(response, http_status, code, binary, close);
  response.body = std::move(body);
  return Payload{SerializeResponse(response), nullptr};
}

// Like BuildResponse, but the body stays a shared immutable frame: only
// the head is serialized, and the frame ships as the second writev
// segment. Byte-identical on the wire to BuildResponse with a copied
// body (the SerializeResponseHead invariant).
Payload BuildSharedResponse(int http_status, StatusCode code, bool binary,
                            std::shared_ptr<const std::string> body,
                            bool close) {
  HttpMessage response;
  FillResponseHeaders(response, http_status, code, binary, close);
  return Payload{SerializeResponseHead(response, body->size()),
                 std::move(body)};
}

Payload BuildErrorResponse(const Status& status, bool binary, bool close) {
  return BuildResponse(MapStatusToHttp(status.code()), status.code(), binary,
                       binary ? EncodeError(status) : EncodeErrorJson(status),
                       close);
}

Payload BuildTextResponse(int http_status, std::string body) {
  HttpMessage response;
  response.status = http_status;
  response.headers["content-type"] = "text/plain";
  response.body = std::move(body);
  return Payload{SerializeResponse(response), nullptr};
}

// The /v1/release response body for one sealed release, in one codec.
std::string EncodeReleaseBody(const serve::CachedRelease& release,
                              bool binary) {
  if (release.is_sparse()) {
    WireSparseHistogram sparse;
    sparse.key = release.key();
    const auto& histogram = release.sparse_histogram();
    sparse.domain_size = histogram.domain_size();
    sparse.keys.reserve(histogram.entries().size());
    sparse.counts.reserve(histogram.entries().size());
    for (const auto& entry : histogram.entries()) {
      sparse.keys.push_back(entry.key);
      sparse.counts.push_back(entry.count);
    }
    return binary ? EncodeSparseHistogram(sparse)
                  : EncodeSparseHistogramJson(sparse);
  }
  WireHistogram histogram;
  histogram.key = release.key();
  histogram.counts = release.histogram().counts();
  return binary ? EncodeHistogram(histogram) : EncodeHistogramJson(histogram);
}

// The release's encoded frame: memoized on the sealed release when the
// frame cache is on (first caller encodes, everyone after shares the
// bytes), freshly encoded otherwise.
std::shared_ptr<const std::string> ReleaseFrame(
    const serve::CachedRelease& release, bool binary, bool use_cache) {
  if (!use_cache) {
    return std::make_shared<const std::string>(
        EncodeReleaseBody(release, binary));
  }
  const auto codec = binary ? serve::SealedRelease::FrameCodec::kBinary
                            : serve::SealedRelease::FrameCodec::kJson;
  return release.EncodedFrame(
      codec, [&release, binary] { return EncodeReleaseBody(release, binary); });
}

// Identity of the release a query request resolves to — the coalescing
// group key. Epsilon joins by bit pattern: coalescing must only merge
// requests that are exactly the same release.
std::string GroupSignature(const WireQueryRequest& request) {
  std::uint64_t epsilon_bits = 0;
  std::memcpy(&epsilon_bits, &request.request.epsilon, sizeof(epsilon_bits));
  std::string sig = request.tenant;
  sig += '\0';
  sig += request.dataset;
  sig += '\0';
  sig += request.request.publisher;
  sig += '\0';
  sig += std::to_string(epsilon_bits);
  sig += '\0';
  sig += std::to_string(request.request.seed);
  return sig;
}

}  // namespace

struct NetServer::Impl {
  serve::ReleaseServer* server = nullptr;
  NetServerOptions options;
  ThreadPool* pool = nullptr;

  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
  std::thread loop_thread;
  std::atomic<bool> stopping{false};

  // --- connections (event-loop thread only) ---
  struct Conn {
    std::uint64_t id = 0;
    int fd = -1;
    HttpParser parser{HttpParser::Kind::kRequest};
    std::string inbuf;  // read but not yet consumed by the parser
    std::deque<Payload> outq;  // responses awaiting write, in order
    std::size_t out_pos = 0;   // bytes of outq.front() already written
    bool dispatched = false;   // a request is inside a handler
    bool close_after_write = false;
  };
  std::map<std::uint64_t, Conn> conns;  // keyed by id, not fd (fds recycle)
  std::uint64_t next_conn_id = 1;

  // --- admission + worker bookkeeping ---
  std::atomic<std::size_t> inflight{0};       // requests inside handlers
  std::atomic<std::size_t> pending_tasks{0};  // submitted, not yet finished

  // Completions: worker -> event loop, keyed by connection id.
  std::mutex done_mutex;
  std::vector<std::pair<std::uint64_t, Payload>> done;

  // --- query coalescing ---
  struct PendingQuery {
    std::uint64_t conn_id = 0;
    WireQueryRequest request;
    bool binary = true;
    bool close = false;
    std::chrono::steady_clock::time_point start;
  };
  struct Group {
    bool leader_active = false;
    std::vector<PendingQuery> waiting;
  };
  std::mutex groups_mutex;
  std::map<std::string, Group> groups;

  // Metrics, resolved once.
  obs::Counter& requests = obs::Registry::Global().GetCounter("net/requests");
  obs::Counter& refused =
      obs::Registry::Global().GetCounter("net/refused_admission");
  obs::Counter& errors = obs::Registry::Global().GetCounter("net/errors");
  obs::Counter& coalesced_batches =
      obs::Registry::Global().GetCounter("net/coalesced_batches");
  obs::Counter& coalesced_requests =
      obs::Registry::Global().GetCounter("net/coalesced_requests");
  obs::Counter& connections =
      obs::Registry::Global().GetCounter("net/connections");
  obs::Counter& bytes_zero_copy =
      obs::Registry::Global().GetCounter("net/bytes_zero_copy");
  obs::Distribution& request_ms =
      obs::Registry::Global().GetDistribution("net/request_ms");
  obs::Distribution& coalesce_group =
      obs::Registry::Global().GetDistribution("net/coalesce_group");

  void Wake() {
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t n = write(wake_write, &byte, 1);
  }

  void CompleteRequest(const PendingQuery& pending, Payload response) {
    if (obs::Enabled()) {
      request_ms.Record(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - pending.start)
                            .count());
    }
    inflight.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      done.emplace_back(pending.conn_id, std::move(response));
    }
    Wake();
  }

  // Leader loop for one coalescing group: drain waiters, answer them with
  // ONE serve-layer batch, repeat until the group is empty. Runs on a
  // worker (or inline on the loop thread for a single-threaded pool).
  void RunGroupLeader(const std::string& signature) {
    for (;;) {
      std::vector<PendingQuery> batch;
      {
        std::lock_guard<std::mutex> lock(groups_mutex);
        Group& group = groups[signature];
        batch.swap(group.waiting);
        if (batch.empty()) {
          groups.erase(signature);
          break;
        }
      }
      if (options.handler_hook) {
        options.handler_hook();
      }
      coalesced_batches.Increment();
      coalesced_requests.Add(batch.size());
      if (obs::Enabled()) {
        coalesce_group.Record(static_cast<double>(batch.size()));
      }

      std::vector<RangeQuery> all_queries;
      for (const PendingQuery& pending : batch) {
        all_queries.insert(all_queries.end(), pending.request.queries.begin(),
                           pending.request.queries.end());
      }
      const WireQueryRequest& head = batch.front().request;
      auto answered = server->AnswerBatch(
          serve::TenantKey{head.tenant, head.dataset}, all_queries,
          head.request);
      if (!answered.ok()) {
        errors.Add(batch.size());
        for (const PendingQuery& pending : batch) {
          CompleteRequest(pending,
                          BuildErrorResponse(answered.status(), pending.binary,
                                             pending.close));
        }
        continue;
      }
      const serve::BatchAnswer& result = answered.value();
      std::size_t offset = 0;
      for (const PendingQuery& pending : batch) {
        WireBatchAnswer answer;
        answer.stale = result.stale;
        answer.cache_hit = result.cache_hit;
        answer.served = result.served;
        answer.answers.assign(
            result.answers.begin() + static_cast<std::ptrdiff_t>(offset),
            result.answers.begin() +
                static_cast<std::ptrdiff_t>(offset +
                                            pending.request.queries.size()));
        offset += pending.request.queries.size();
        CompleteRequest(
            pending,
            BuildResponse(200, StatusCode::kOk, pending.binary,
                          pending.binary ? EncodeBatchAnswer(answer)
                                         : EncodeBatchAnswerJson(answer),
                          pending.close));
      }
    }
    // Wake BEFORE the decrement: the drain check in EventLoop exits (and
    // Stop() then closes the wake pipe) as soon as pending_tasks reads 0,
    // and the release/acquire pair on the counter is what orders this
    // thread's pipe write before that close. A wakeup consumed ahead of
    // the decrement only costs one poll timeout.
    Wake();
    pending_tasks.fetch_sub(1, std::memory_order_acq_rel);
  }

  // One /v1/release request: publish (or hit the cache) and ship the full
  // released histogram — from the release's encoded frame when the frame
  // cache is on, so the dispatched path both seeds and reuses the same
  // memo as the inline fast lane.
  void RunRelease(PendingQuery pending) {
    if (options.handler_hook) {
      options.handler_hook();
    }
    auto release = server->GetRelease(
        serve::TenantKey{pending.request.tenant, pending.request.dataset},
        pending.request.request);
    Payload response;
    if (!release.ok()) {
      errors.Increment();
      response =
          BuildErrorResponse(release.status(), pending.binary, pending.close);
    } else {
      response = BuildSharedResponse(
          200, StatusCode::kOk, pending.binary,
          ReleaseFrame(*release.value(), pending.binary,
                       options.encoded_cache),
          pending.close);
    }
    CompleteRequest(pending, std::move(response));
    // Same ordering contract as RunBatch: pipe write before the decrement
    // that lets shutdown close the pipe.
    Wake();
    pending_tasks.fetch_sub(1, std::memory_order_acq_rel);
  }

  // --- event-loop-side request handling ---

  void Respond(Conn& conn, Payload payload) {
    conn.outq.push_back(std::move(payload));
    requests.Increment();
  }

  // Routes one complete parsed request. Returns false when the connection
  // must close immediately (unrecoverable protocol state).
  void HandleRequest(Conn& conn) {
    const HttpMessage& request = conn.parser.message();
    const bool close = request.WantsClose();
    conn.close_after_write = conn.close_after_write || close;
    const std::string_view target_full = request.target;
    const std::size_t question = target_full.find('?');
    const std::string_view target = target_full.substr(0, question);
    const bool binary = request.Header("content-type") == kContentTypeBinary;

    if (target == "/healthz") {
      Respond(conn, BuildTextResponse(200, "ok\n"));
      return;
    }
    if (target == "/statsz") {
      std::ostringstream out;
      obs::WriteSnapshotLines(out, obs::Registry::Global().Snapshot(), "net");
      Respond(conn, BuildTextResponse(200, out.str()));
      return;
    }
    if (target == "/v1/meta") {
      obs::JsonObjectWriter writer;
      writer.Str("type", "meta")
          .Int("domain_size", server->domain_size())
          .Str("fingerprint", std::to_string(server->fingerprint()));
      Respond(conn, BuildResponse(200, StatusCode::kOk, /*binary=*/false,
                                  writer.Finish(), close));
      return;
    }
    if (target != "/v1/query" && target != "/v1/release") {
      errors.Increment();
      Respond(conn, BuildErrorResponse(
                        Status::NotFound("no such endpoint: " +
                                         std::string(target)),
                        binary, close));
      return;
    }
    if (request.method != "POST") {
      errors.Increment();
      Respond(conn,
              BuildErrorResponse(
                  Status::InvalidArgument("query endpoints require POST"),
                  binary, close));
      return;
    }
    auto decoded =
        binary ? DecodeFrame(request.body) : DecodeJson(request.body);
    if (!decoded.ok()) {
      errors.Increment();
      Respond(conn, BuildErrorResponse(decoded.status(), binary, close));
      return;
    }
    if (decoded.value().type != WireType::kQueryRequest) {
      errors.Increment();
      Respond(conn, BuildErrorResponse(
                        Status::InvalidArgument(
                            "endpoint expects a query_request message"),
                        binary, close));
      return;
    }

    // Fast lane: a release already sealed in the cache involves no
    // publisher, no budget charge, and no journal write — nothing that
    // can block or queue — so answer it inline on the event loop instead
    // of paying the worker handoff and the completion-queue round trip.
    // Sub-microsecond per request (O(1) prefix subtractions, pre-encoded
    // release frames), so loop occupancy stays negligible. Disabled by
    // `encoded_cache = false` (A/B benching) and by a handler_hook (tests
    // that must observe every request on a worker).
    if (options.encoded_cache && !options.handler_hook) {
      const WireQueryRequest& query_request = decoded.value().query_request;
      const serve::TenantKey tenant_key{query_request.tenant,
                                        query_request.dataset};
      const auto start = std::chrono::steady_clock::now();
      if (target == "/v1/query") {
        serve::BatchAnswer answered;
        auto hit = server->TryAnswerCached(tenant_key, query_request.queries,
                                           query_request.request, &answered);
        if (!hit.ok()) {
          // Same typed error the dispatched path would produce (bad
          // queries, cross-tenant probe); the fast lane never masks one.
          errors.Increment();
          Respond(conn, BuildErrorResponse(hit.status(), binary, close));
          return;
        }
        if (hit.value()) {
          WireBatchAnswer answer;
          answer.stale = answered.stale;
          answer.cache_hit = answered.cache_hit;
          answer.served = answered.served;
          answer.answers = std::move(answered.answers);
          Respond(conn,
                  BuildResponse(200, StatusCode::kOk, binary,
                                binary ? EncodeBatchAnswer(answer)
                                       : EncodeBatchAnswerJson(answer),
                                close));
          if (obs::Enabled()) {
            request_ms.Record(std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
          }
          return;
        }
      } else {  // /v1/release
        auto release =
            server->TryGetCached(tenant_key, query_request.request);
        if (release != nullptr) {
          Respond(conn, BuildSharedResponse(
                            200, StatusCode::kOk, binary,
                            ReleaseFrame(*release, binary, /*use_cache=*/true),
                            close));
          if (obs::Enabled()) {
            request_ms.Record(std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
          }
          return;
        }
      }
      // Not sealed yet: fall through to the dispatched path (coalescing,
      // admission control, publish) unchanged.
    }

    // Admission control: the bounded in-flight queue. Refusal is typed and
    // immediate — the client gets kResourceExhausted over 503, never an
    // unbounded queue or a dropped request.
    std::size_t current = inflight.load(std::memory_order_acquire);
    for (;;) {
      if (current >= std::max<std::size_t>(options.max_inflight, 1)) {
        refused.Increment();
        Respond(conn,
                BuildErrorResponse(
                    Status::ResourceExhausted(
                        "admission queue full (max_inflight=" +
                        std::to_string(options.max_inflight) + ")"),
                    binary, close));
        return;
      }
      if (inflight.compare_exchange_weak(current, current + 1,
                                         std::memory_order_acq_rel)) {
        break;
      }
    }

    PendingQuery pending;
    pending.conn_id = conn.id;
    pending.request = std::move(decoded.value().query_request);
    pending.binary = binary;
    pending.close = close;
    pending.start = std::chrono::steady_clock::now();
    conn.dispatched = true;
    requests.Increment();

    if (target == "/v1/release") {
      pending_tasks.fetch_add(1, std::memory_order_acq_rel);
      pool->Submit([this, p = std::move(pending)]() mutable {
        RunRelease(std::move(p));
      });
      return;
    }

    const std::string signature = GroupSignature(pending.request);
    bool need_leader = false;
    {
      std::lock_guard<std::mutex> lock(groups_mutex);
      Group& group = groups[signature];
      group.waiting.push_back(std::move(pending));
      if (!group.leader_active) {
        group.leader_active = true;
        need_leader = true;
      }
    }
    if (need_leader) {
      pending_tasks.fetch_add(1, std::memory_order_acq_rel);
      pool->Submit([this, signature] { RunGroupLeader(signature); });
    }
  }

  // Feeds buffered bytes to the connection's parser; dispatches or
  // responds as requests complete. Stops at a dispatched request (single
  // outstanding) or when bytes run out.
  void ProcessInbuf(Conn& conn) {
    while (!conn.dispatched && !conn.close_after_write && !conn.inbuf.empty()) {
      std::size_t consumed = 0;
      const HttpParser::State state = conn.parser.Feed(conn.inbuf, &consumed);
      conn.inbuf.erase(0, consumed);
      if (state == HttpParser::State::kNeedMore) {
        return;
      }
      if (state == HttpParser::State::kError) {
        errors.Increment();
        conn.outq.push_back(BuildTextResponse(conn.parser.error_status(),
                                              conn.parser.error() + "\n"));
        conn.close_after_write = true;
        return;
      }
      HandleRequest(conn);
      conn.parser.Reset();
    }
  }

  // Writes as much of the connection's output queue as the socket will
  // take, gathering MANY queued responses into one writev: each response
  // contributes its serialized head and (when cached) its shared
  // pre-encoded body as separate segments, so a pipelined burst of N
  // responses leaves in one syscall instead of N, and the body bytes go
  // from the cached frame to the kernel with no intermediate copy
  // (counted in `net/bytes_zero_copy`). Returns false on a fatal socket
  // error.
  bool FlushConn(Conn& conn) {
    // Segment budget per writev: two per response, comfortably under any
    // platform IOV_MAX (POSIX guarantees >= 16; Linux gives 1024).
    constexpr std::size_t kMaxIov = 64;
    while (!conn.outq.empty()) {
      iovec iov[kMaxIov];
      std::size_t iov_count = 0;
      std::size_t offered = 0;
      std::size_t resume = conn.out_pos;  // only the front can be partial
      for (const Payload& payload : conn.outq) {
        if (iov_count + 2 > kMaxIov) {
          break;
        }
        const std::size_t head_size = payload.head.size();
        if (resume < head_size) {
          iov[iov_count++] = {
              const_cast<char*>(payload.head.data()) + resume,
              head_size - resume};
          if (payload.body != nullptr && !payload.body->empty()) {
            iov[iov_count++] = {const_cast<char*>(payload.body->data()),
                                payload.body->size()};
          }
        } else {
          const std::size_t body_pos = resume - head_size;
          iov[iov_count++] = {
              const_cast<char*>(payload.body->data()) + body_pos,
              payload.body->size() - body_pos};
        }
        offered += payload.size() - resume;
        resume = 0;
      }
      const ssize_t n =
          writev(conn.fd, iov, static_cast<int>(iov_count));
      if (n < 0) {
        return errno == EAGAIN || errno == EWOULDBLOCK;
      }
      if (n == 0) {
        return true;
      }
      // Retire written bytes across the queue front.
      std::size_t remaining = static_cast<std::size_t>(n);
      while (remaining > 0) {
        Payload& payload = conn.outq.front();
        const std::size_t head_size = payload.head.size();
        const std::size_t take =
            std::min(payload.size() - conn.out_pos, remaining);
        if (payload.body != nullptr) {
          const std::size_t body_before =
              conn.out_pos > head_size ? conn.out_pos - head_size : 0;
          const std::size_t after_pos = conn.out_pos + take;
          const std::size_t body_after =
              after_pos > head_size ? after_pos - head_size : 0;
          if (body_after > body_before) {
            bytes_zero_copy.Add(body_after - body_before);
          }
        }
        conn.out_pos += take;
        remaining -= take;
        if (conn.out_pos == payload.size()) {
          conn.outq.pop_front();
          conn.out_pos = 0;
        }
      }
      if (static_cast<std::size_t>(n) < offered) {
        return true;  // kernel buffer full; resume on the next POLLOUT
      }
    }
    return true;
  }

  void CloseConn(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) {
      return;
    }
    close(it->second.fd);
    conns.erase(it);
  }

  void EventLoop() {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = none)
    char buffer[65536];

    for (;;) {
      const bool draining = stopping.load(std::memory_order_acquire);
      if (draining && pending_tasks.load(std::memory_order_acquire) == 0) {
        break;
      }
      const bool saturated =
          inflight.load(std::memory_order_acquire) >=
          std::max<std::size_t>(options.max_inflight, 1);

      fds.clear();
      fd_conn.clear();
      fds.push_back(pollfd{wake_read, POLLIN, 0});
      fd_conn.push_back(0);
      // Backpressure tier 1: accept() pauses while the connection table is
      // full or admission is saturated (pending connects wait in the
      // kernel backlog, they are not dropped).
      if (!draining && !saturated && conns.size() < options.max_connections) {
        fds.push_back(pollfd{listen_fd, POLLIN, 0});
        fd_conn.push_back(0);
      }
      for (auto& [id, conn] : conns) {
        short events = 0;
        // Backpressure tier 2: a connection is not read while its request
        // is in a handler or its response is still flushing.
        if (!draining && !conn.dispatched && conn.outq.empty() &&
            !conn.close_after_write) {
          events |= POLLIN;
        }
        if (!conn.outq.empty()) {
          events |= POLLOUT;
        }
        if (events == 0) {
          continue;
        }
        fds.push_back(pollfd{conn.fd, events, 0});
        fd_conn.push_back(id);
      }

      if (poll(fds.data(), fds.size(), /*timeout_ms=*/200) < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;
      }

      // Wakeups + completions.
      if ((fds[0].revents & POLLIN) != 0) {
        while (read(wake_read, buffer, sizeof(buffer)) > 0) {
        }
      }
      std::vector<std::pair<std::uint64_t, Payload>> completed;
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        completed.swap(done);
      }
      for (auto& [id, response] : completed) {
        const auto it = conns.find(id);
        if (it == conns.end()) {
          continue;  // client went away mid-request
        }
        it->second.outq.push_back(std::move(response));
        it->second.dispatched = false;
      }

      std::vector<std::uint64_t> to_close;
      for (std::size_t i = 1; i < fds.size(); ++i) {
        const pollfd& pfd = fds[i];
        if (pfd.revents == 0) {
          continue;
        }
        if (pfd.fd == listen_fd) {
          for (;;) {
            const int fd = accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
              break;
            }
            if (!SetNonBlocking(fd)) {
              close(fd);
              continue;
            }
            const int one = 1;
            setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            Conn conn;
            conn.id = next_conn_id++;
            conn.fd = fd;
            connections.Increment();
            conns.emplace(conn.id, std::move(conn));
          }
          continue;
        }
        const std::uint64_t id = fd_conn[i];
        const auto it = conns.find(id);
        if (it == conns.end()) {
          continue;
        }
        Conn& conn = it->second;
        if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (pfd.revents & (POLLIN | POLLOUT)) == 0) {
          to_close.push_back(id);
          continue;
        }
        if ((pfd.revents & POLLIN) != 0) {
          const ssize_t n = read(conn.fd, buffer, sizeof(buffer));
          if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
            to_close.push_back(id);
            continue;
          }
          if (n > 0) {
            conn.inbuf.append(buffer, static_cast<std::size_t>(n));
            ProcessInbuf(conn);
            // Fast-lane responses were built inline just now: flush them
            // before going back to poll, so a pipelined burst completes
            // in this round instead of waiting for a POLLOUT wakeup.
            if (!conn.outq.empty()) {
              if (!FlushConn(conn)) {
                to_close.push_back(id);
                continue;
              }
              if (conn.outq.empty() && conn.close_after_write) {
                to_close.push_back(id);
                continue;
              }
            }
          }
        }
        if ((pfd.revents & POLLOUT) != 0 && !conn.outq.empty()) {
          if (!FlushConn(conn)) {
            to_close.push_back(id);
            continue;
          }
          if (conn.outq.empty()) {
            if (conn.close_after_write) {
              to_close.push_back(id);
            } else {
              // Keep-alive: pick up any pipelined bytes already read.
              ProcessInbuf(conn);
            }
          }
        }
      }
      // Newly enqueued responses become writable next poll round; flushes
      // happen opportunistically here too for responses built inline.
      for (const std::uint64_t id : to_close) {
        CloseConn(id);
      }
    }

    for (auto& [id, conn] : conns) {
      close(conn.fd);
    }
    conns.clear();
  }
};

NetServer::NetServer(serve::ReleaseServer* release_server,
                     NetServerOptions options)
    : impl_(new Impl), release_server_(release_server),
      options_(std::move(options)) {
  // Deployment-time A/B switch; anything other than the recognized
  // spellings leaves the constructed option alone.
  if (const auto env = GetEnv("DPHIST_ENCODED_CACHE")) {
    if (*env == "0" || *env == "off" || *env == "false") {
      options_.encoded_cache = false;
    } else if (*env == "1" || *env == "on" || *env == "true") {
      options_.encoded_cache = true;
    }
  }
  impl_->server = release_server_;
  impl_->options = options_;
  impl_->pool = options_.pool != nullptr ? options_.pool
                                         : &ThreadPool::Global();
}

NetServer::~NetServer() {
  Stop();
  delete impl_;
}

Status NetServer::Start() {
  if (impl_->listen_fd >= 0) {
    return Status::InvalidArgument("NetServer already started");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("socket");
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = ErrnoStatus("bind " + address());
    close(fd);
    return status;
  }
  if (listen(fd, 128) != 0) {
    const Status status = ErrnoStatus("listen");
    close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status status = ErrnoStatus("getsockname");
    close(fd);
    return status;
  }
  port_ = ntohs(addr.sin_port);
  if (!SetNonBlocking(fd)) {
    close(fd);
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    close(fd);
    return ErrnoStatus("pipe");
  }
  SetNonBlocking(pipe_fds[0]);
  SetNonBlocking(pipe_fds[1]);

  impl_->listen_fd = fd;
  impl_->wake_read = pipe_fds[0];
  impl_->wake_write = pipe_fds[1];
  impl_->stopping.store(false, std::memory_order_release);
  impl_->loop_thread = std::thread([impl = impl_] { impl->EventLoop(); });
  return Status::Ok();
}

void NetServer::Stop() {
  if (impl_->listen_fd < 0) {
    return;
  }
  impl_->stopping.store(true, std::memory_order_release);
  impl_->Wake();
  if (impl_->loop_thread.joinable()) {
    impl_->loop_thread.join();
  }
  close(impl_->listen_fd);
  close(impl_->wake_read);
  close(impl_->wake_write);
  impl_->listen_fd = -1;
  impl_->wake_read = -1;
  impl_->wake_write = -1;
}

std::string NetServer::address() const {
  return options_.host + ":" + std::to_string(port_);
}

}  // namespace net
}  // namespace dphist
