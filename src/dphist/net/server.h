#ifndef DPHIST_NET_SERVER_H_
#define DPHIST_NET_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "dphist/common/status.h"
#include "dphist/common/thread_pool.h"
#include "dphist/serve/release_server.h"

namespace dphist {
namespace net {

/// \brief Knobs for the network front-end.
struct NetServerOptions {
  /// Interface to bind; loopback by default — the front-end carries noisy
  /// releases, but exposing it beyond the host is a deliberate act.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (tests, benches) —
  /// read the actual one back with `port()`.
  std::uint16_t port = 0;
  /// Worker pool answering requests; nullptr means ThreadPool::Global().
  /// With a single-threaded pool handlers run inline on the event thread —
  /// correct, just serial (the "any DPHIST_THREADS" contract).
  ThreadPool* pool = nullptr;
  /// Admission bound: maximum requests dispatched-but-unanswered. A
  /// request completing parse beyond this is refused with a typed
  /// kResourceExhausted (HTTP 503) instead of queueing unboundedly.
  /// Values of 0 are pinned to 1.
  std::size_t max_inflight = 64;
  /// Maximum simultaneous connections; accept() pauses at the bound.
  std::size_t max_connections = 256;
  /// Serve-path fast lane: answer requests whose release is already sealed
  /// in the cache inline on the event loop (no worker handoff, no
  /// admission charge — a sealed release cannot queue behind a publisher),
  /// and serve /v1/release from the release's pre-encoded frame as a
  /// zero-copy scatter-gather write. Off = every request takes the
  /// dispatch path and every response is freshly encoded (the pre-overhaul
  /// behavior, kept for A/B benching). Overridable with
  /// DPHIST_ENCODED_CACHE=0|off|false / 1|on|true at construction.
  bool encoded_cache = true;
  /// Test seam: runs on the worker at the start of every dispatched
  /// request, before the serve-layer call. Lets tests hold workers inside
  /// handlers to saturate the admission queue deterministically. Setting
  /// it also disables the inline fast lane (every request must reach a
  /// worker for the hook to see it).
  std::function<void()> handler_hook;
};

/// \brief The HTTP/1.1 query front-end over a `serve::ReleaseServer`.
///
/// One event-loop thread multiplexes all sockets with poll(); request
/// handling runs on the worker pool via `ThreadPool::Submit`, and
/// completed responses travel back to the loop through a queue plus a
/// self-pipe wakeup. Dependency-free: kernel sockets + the in-tree
/// thread pool, nothing else.
///
/// Connection state machine (per connection, single outstanding request —
/// HTTP/1.1 without speculative pipelining execution):
///
///   READ_HEAD --parsed--> DISPATCHED --response built--> WRITE --flushed--+
///      ^   \                                                             |
///      |    \--saturated at parse completion--> WRITE (typed 503)        |
///      +------------------------------------------------------------<---+
///
/// Admission control and backpressure are two distinct tiers:
///  * Admission: at most `max_inflight` requests are inside handlers at
///    once. A request that completes parsing while the bound is met gets
///    an immediate typed refusal — kResourceExhausted over HTTP 503 with
///    an `X-Dphist-Status` header and a codec-matched error body. No
///    hang, no silent drop: the client always receives an answer.
///  * Backpressure: a connection's socket is not read while its request
///    is dispatched or its response is being written (per-conn single
///    outstanding), and accept() pauses while the connection table is
///    full or the admission bound is met — unread bytes stay in kernel
///    buffers and TCP flow control pushes back on clients.
///
/// Query coalescing: concurrent /v1/query requests naming the same
/// release (tenant, dataset, publisher, epsilon, seed) are merged — the
/// first becomes the group leader, drains waiters, and issues ONE
/// `AnswerBatch` over the concatenated queries, then splits the answers
/// back per request. Answers are per-query O(1) prefix subtractions, so
/// coalescing is invisible in the results; it exists so a thundering herd
/// on a cold key costs one publisher invocation (and one budget charge)
/// end to end, even before the release cache's per-key publish slot.
///
/// Endpoints:
///   POST /v1/query    query request -> batch answer (codec by
///                     Content-Type: application/x-dphist-wire | json)
///   POST /v1/release  query request (queries ignored) -> full histogram
///   GET  /healthz     liveness probe, "ok"
///   GET  /statsz      obs registry snapshot, JSON lines
///   GET  /v1/meta     default-namespace domain size + fingerprint (JSON)
///
/// Fast lane (when `encoded_cache` is on and no handler_hook is set): a
/// request whose release is already sealed in the cache is answered
/// inline on the event loop — one counting cache lookup, O(1) prefix
/// subtractions per query, and for /v1/release the release's pre-encoded
/// frame shipped as a zero-copy second `writev` segment. No worker
/// handoff, no completion-queue round trip, no admission charge: the
/// admission bound exists to keep publisher work from queueing
/// unboundedly, and a sealed release involves no publisher work. Requests
/// whose release is NOT yet cached take the dispatched path unchanged
/// (coalescing included), so answers are byte-identical between lanes.
///
/// Obs: `net/requests`, `net/refused_admission`, `net/errors`,
/// `net/coalesced_batches`, `net/coalesced_requests`, `net/connections`,
/// `net/bytes_zero_copy` counters; `net/request_ms` and
/// `net/coalesce_group` distributions (plus `serve/frame_cache_hits|
/// misses` from the frame memo underneath).
class NetServer {
 public:
  /// `release_server` must outlive this object.
  explicit NetServer(serve::ReleaseServer* release_server,
                     NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the event thread. Fails with
  /// kInvalidArgument on a bad host and kInternal on socket errors (the
  /// message carries errno text).
  Status Start();

  /// Stops accepting, waits for in-flight handlers, closes every socket,
  /// and joins the event thread. Idempotent.
  void Stop();

  /// The bound port (after Start); the ephemeral-port answer.
  std::uint16_t port() const { return port_; }

  /// "host:port" of the listening socket (after Start).
  std::string address() const;

 private:
  struct Impl;
  Impl* impl_;  // pimpl: keeps poll/socket headers out of dphist's API

  serve::ReleaseServer* release_server_;
  NetServerOptions options_;
  std::uint16_t port_ = 0;
};

}  // namespace net
}  // namespace dphist

#endif  // DPHIST_NET_SERVER_H_
