#ifndef DPHIST_NET_CLIENT_H_
#define DPHIST_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/net/http.h"
#include "dphist/net/wire_codec.h"

namespace dphist {
namespace net {

/// \brief A small blocking HTTP/1.1 client with keep-alive, used by the
/// tool's `query` subcommand, the loopback tests, and the load harness.
/// One instance == one connection == one thread; it is not thread-safe.
class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Opens (or re-opens) the connection.
  Status Connect(const std::string& host, std::uint16_t port);

  /// True while the socket is open.
  bool connected() const { return fd_ >= 0; }

  void Close();

  /// Sends `request` and blocks for the full response. Reconnects once if
  /// the server closed the keep-alive connection. Transport failures are
  /// kInternal; an HTTP response — any status — is returned as a value.
  Result<HttpMessage> RoundTrip(const HttpMessage& request);

  /// Convenience: POSTs `query` to /v1/query in the chosen codec and
  /// decodes the answer. A server-side error (typed refusal, budget
  /// exhaustion, bad request) comes back as that error's Status.
  Result<WireBatchAnswer> Query(const WireQueryRequest& query, bool binary);

  /// HTTP/1.1 pipelining: writes `depth` copies of the /v1/query POST
  /// back-to-back, then reads the `depth` responses in order — one
  /// syscall-amortized burst instead of `depth` ping-pong round trips,
  /// which is what exposes server-side capacity on loopback (the load
  /// harness's throughput mode). The whole burst must fit in the kernel
  /// socket buffers (requests out, answers back), so keep `depth`
  /// moderate — tens, not thousands. No reconnect-and-retry: a broken
  /// pipe mid-burst is kInternal. Any response that decodes to an error
  /// fails the burst with that error's Status.
  Result<std::vector<WireBatchAnswer>> QueryPipelined(
      const WireQueryRequest& query, bool binary, std::size_t depth);

  /// Convenience: POSTs to /v1/release and decodes the full histogram.
  Result<WireHistogram> Release(const WireQueryRequest& query, bool binary);

  /// Convenience: POSTs to /v1/release against a sparse dataset and
  /// decodes the sparse frame (released keys + values over the 64-bit
  /// domain). kInternal if the server answered with a dense histogram.
  Result<WireSparseHistogram> SparseRelease(const WireQueryRequest& query,
                                            bool binary);

 private:
  int fd_ = -1;
  std::string host_;
  std::uint16_t port_ = 0;
};

}  // namespace net
}  // namespace dphist

#endif  // DPHIST_NET_CLIENT_H_
