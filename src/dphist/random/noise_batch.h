#ifndef DPHIST_RANDOM_NOISE_BATCH_H_
#define DPHIST_RANDOM_NOISE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "dphist/random/rng.h"

namespace dphist {

/// \brief How the DP mechanisms draw their noise (see DESIGN §10).
///
/// The model is a *sampling construction* knob: every model targets the
/// same nominal distribution family (Laplace(scale) for continuous noise,
/// two-sided geometric for integer noise) but draws it differently, with
/// different performance and side-channel properties. kTextbook is the
/// default and reproduces the repository's historical draw sequence
/// bit-for-bit; the other models consume exactly one parent Rng word per
/// mechanism call and expand it through a counter-based substream, so
/// their output is also independent of thread count and batch placement.
enum class NoiseModel {
  /// Resolve from the DPHIST_NOISE_MODEL environment variable when set
  /// ("textbook" / "batched" / "snapped" / "discrete"), otherwise
  /// kTextbook. Unset or unparseable values resolve to kTextbook so a
  /// stray variable can never silently change a published release to a
  /// different construction than the operator tested.
  kAuto,
  /// The historical scalar samplers (random/distributions.h), one draw at
  /// a time off the caller's Rng. Bit-identical to every release this
  /// repository has ever produced.
  kTextbook,
  /// The SIMD batch kernel (noise_kernel.cc): same Laplace distribution,
  /// sampled as sign * scale * -log(u) from one 52-bit uniform per
  /// element. ~4x faster than kTextbook at n=1M (BM_NoiseBatch).
  kBatched,
  /// Snapped Laplace (Mironov CCS'12): power-of-two scale snapping,
  /// release rounded onto a power-of-two grid and clamped to
  /// [-B, B] — closes the floating-point-artifact side channel of
  /// textbook inverse-CDF sampling. Continuous noise only; integer noise
  /// is already discrete and maps to the kDiscrete construction.
  kSnapped,
  /// Exact discrete Laplace (two-sided geometric) by CDF inversion in the
  /// batch kernel. For continuous mechanisms the input is rounded to an
  /// integer first and the release stays integral.
  kDiscrete,
};

/// Returns "auto", "textbook", "batched", "snapped", or "discrete".
const char* NoiseModelName(NoiseModel model);

/// Parses a NoiseModelName spelling into `out`; returns false (leaving
/// `out` untouched) on any other input.
bool ParseNoiseModel(std::string_view text, NoiseModel* out);

/// Resolves kAuto against DPHIST_NOISE_MODEL (falling back to kTextbook);
/// explicit models pass through unchanged. Never returns kAuto.
NoiseModel ResolveNoiseModel(NoiseModel requested);

/// The default clamp bound B of the snapped model: 2^30, comfortably above
/// any realistic histogram count while keeping the snapping grid B/L well
/// inside exact-integer double range.
inline constexpr double kDefaultSnappedBound = 0x1.0p30;

/// \brief The derived constants of one snapped-Laplace release.
struct SnappedLaplaceParams {
  /// lambda-hat = 2^ceil(log2(scale)) >= scale: snapping the scale *up*
  /// to a power of two only adds noise, so the release never exceeds the
  /// requested epsilon.
  double snapped_scale = 0.0;
  /// The output grid L = 2^ceil(log2(max(lambda-hat, bound))) * 2^-46:
  /// an exact power of two, so division and rint-rounding by it are
  /// exact, and bound/L <= 2^46 keeps every grid index an exact double.
  double granularity = 0.0;
  /// The clamp bound B.
  double bound = kDefaultSnappedBound;
};

/// Computes the snapping constants for a Laplace scale. Requires
/// scale > 0 and bound > 0.
SnappedLaplaceParams ComputeSnappedLaplaceParams(
    double scale, double bound = kDefaultSnappedBound);

namespace noise_batch {

/// Adds Laplace-family noise of the given scale to `values[0..n)` under a
/// *resolved* model (not kAuto), writing `out[0..n)` (`values` may alias
/// `out`). kTextbook consumes 2n+ parent draws through the historical
/// scalar sampler; every other model consumes exactly one parent draw and
/// derives n substream words, so the result is a pure function of the
/// mechanism parameters and that one word. Draw counts, batch sizes and
/// per-batch wall time are recorded through dphist::obs.
void AddContinuousNoise(NoiseModel model, double scale, const double* values,
                        double* out, std::size_t n, Rng& rng);

/// Single-value form of AddContinuousNoise (a batch of one).
double AddContinuousNoiseScalar(NoiseModel model, double scale, double value,
                                Rng& rng);

/// Adds two-sided geometric noise with decay alpha = exp(-t),
/// t = epsilon/sensitivity, to integer values under a resolved model.
/// kTextbook is the historical scalar sampler; kBatched/kSnapped/kDiscrete
/// all map to the exact batched CDF-inversion kernel (integer noise has no
/// floating-point release artifacts to snap away).
void AddIntegerNoise(NoiseModel model, double t, const std::int64_t* values,
                     std::int64_t* out, std::size_t n, Rng& rng);

/// Single-value form of AddIntegerNoise.
std::int64_t AddIntegerNoiseScalar(NoiseModel model, double t,
                                   std::int64_t value, Rng& rng);

}  // namespace noise_batch
}  // namespace dphist

#endif  // DPHIST_RANDOM_NOISE_BATCH_H_
