#ifndef DPHIST_RANDOM_NOISE_KERNEL_H_
#define DPHIST_RANDOM_NOISE_KERNEL_H_

#include <cstddef>
#include <cstdint>

namespace dphist {
namespace noise_kernel {

// Batch noise kernels for the NoiseModel subsystem (DESIGN §10).
//
// This translation unit is compiled with -ffp-contract=off (see
// src/CMakeLists.txt) so no expression is fused into an FMA: every lane
// performs the same rounding steps as every other, which is what makes the
// output a pure per-element function of (seed, counter) — bit-identical
// across SIMD widths, thread counts, and block decompositions. The
// target_clones dispatch (same pattern as hist/vopt_kernel.cc) only changes
// *how many* elements are processed per instruction, never their values.
//
// Draw scheme: element i consumes the 64-bit word
//   bits = SplitMix64(seed + (base + i) * golden_gamma),
// a counter-based substream keyed by one parent Rng draw (`seed`). The top
// 52 bits form the uniform, bit 0 the sign; there is no cross-element
// state, so any [base, base+n) range can be computed independently.

/// The per-element draw word; exposed so tests can recompute decisions.
std::uint64_t DrawBits(std::uint64_t seed, std::uint64_t counter);

/// The uniform u in (0, 1) derived from a draw word:
///   u = (2 * (bits >> 12) + 1) * 2^-53,
/// an odd 53-bit dyadic rational (52 random bits; never 0, never 1).
double DrawUniform(std::uint64_t bits);

/// out[i] = values[i] + s_i * scale * (-log(u_i)) where u_i = DrawUniform
/// and s_i = +/-1 from bit 0 of the draw — Laplace(0, scale) noise via a
/// single exponential with a random sign. `values` may alias `out`.
void AddLaplaceBatch(const double* values, double* out, std::size_t n,
                     std::uint64_t seed, std::uint64_t base, double scale);

/// The snapped-Laplace release of Mironov (CCS'12), batched:
///   out[i] = clamp_B( L * rint( (clamp_B(values[i]) + noise_i) / L ) )
/// with noise_i = s_i * snapped_scale * (-log(u_i)). Requires
/// `snapped_scale` and `granularity` (L) to be exact powers of two and
/// bound > 0 (noise_batch.cc computes them); rounding onto the L-grid and
/// clamping to [-bound, bound] erase the low-order mantissa artifacts that
/// leak the unsnapped sum.
void AddSnappedLaplaceBatch(const double* values, double* out, std::size_t n,
                            std::uint64_t seed, std::uint64_t base,
                            double snapped_scale, double granularity,
                            double bound);

/// Two-sided geometric (discrete Laplace) noise with decay alpha:
///   P[X = k] = (1-alpha)/(1+alpha) * alpha^|k|,
/// added to integer values. Inverts the CDF from the single uniform:
/// W = u/2 in (0, 1/2), magnitude m = floor(log(W*(1+alpha)) / log(alpha)),
/// sign from bit 0 (m = 0 keeps mass on both signs, so P[0] comes out
/// exactly (1-alpha)/(1+alpha)). Requires alpha in (0, 1);
/// `inv_log_alpha` = 1/log(alpha) is passed in so the kernel stays
/// division-free. `values` may alias `out`.
void AddDiscreteLaplaceBatch(const std::int64_t* values, std::int64_t* out,
                             std::size_t n, std::uint64_t seed,
                             std::uint64_t base, double alpha,
                             double inv_log_alpha);

}  // namespace noise_kernel
}  // namespace dphist

#endif  // DPHIST_RANDOM_NOISE_KERNEL_H_
