#include "dphist/random/rng.h"

namespace dphist {

namespace {

// SplitMix64: used only to expand the user seed into the xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Rng::NextUint64() {
  // xoshiro256++ step (Blackman & Vigna).
  const std::uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace dphist
