#ifndef DPHIST_RANDOM_DISTRIBUTIONS_H_
#define DPHIST_RANDOM_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dphist/random/rng.h"

namespace dphist {

/// \brief Samplers for the distributions used by the DP mechanisms.
///
/// All samplers take an explicit `Rng&` and are deterministic given the
/// generator state. Parameter contracts are enforced with early aborts in
/// debug builds and documented here; mechanisms validate user-facing
/// parameters (epsilon, sensitivity) and return `Status` — by the time a
/// sampler is called its parameters are trusted.
///
/// A note on floating-point side channels: textbook inverse-CDF Laplace
/// sampling over doubles is known to leak information through the float
/// representation (Mironov 2012). This repository reproduces the *accuracy*
/// behaviour of the ICDE'12 paper and uses the textbook samplers the paper's
/// experiments assume; `SampleTwoSidedGeometric` is provided as the
/// discrete, side-channel-robust alternative.

/// Returns a double uniformly distributed in [0, 1) with 53 random bits.
double SampleUniformDouble(Rng& rng);

/// Returns a double uniformly distributed in (0, 1] (never exactly zero,
/// safe to pass to log()).
double SampleUniformDoublePositive(Rng& rng);

/// Returns an integer uniformly distributed in [lo, hi]. Requires lo <= hi.
std::int64_t SampleUniformInt(Rng& rng, std::int64_t lo, std::int64_t hi);

/// Returns an index uniformly distributed in [0, n). Requires n >= 1.
std::size_t SampleIndex(Rng& rng, std::size_t n);

/// Samples Exponential(rate): density rate*exp(-rate*x), x >= 0.
/// Requires rate > 0.
double SampleExponential(Rng& rng, double rate);

/// Samples Laplace(0, scale): density exp(-|x|/scale) / (2*scale).
/// Requires scale > 0.
double SampleLaplace(Rng& rng, double scale);

/// Samples the standard Gumbel distribution: -log(-log(U)), U ~ U(0,1).
/// Used for exponential-mechanism selection via the Gumbel-max trick.
double SampleGumbel(Rng& rng);

/// Samples Geometric(p) with support {0, 1, 2, ...}:
/// P[X = k] = (1-p)^k * p. Requires p in (0, 1].
std::int64_t SampleGeometric(Rng& rng, double p);

/// Samples the two-sided geometric distribution with parameter
/// alpha = exp(-epsilon/sensitivity):
///   P[X = k] = (1-alpha)/(1+alpha) * alpha^{|k|},  k integer.
/// This is the noise of the discrete geometric mechanism
/// (Ghosh, Roughgarden & Sundararajan). Requires alpha in [0, 1).
std::int64_t SampleTwoSidedGeometric(Rng& rng, double alpha);

/// Samples an index from the categorical distribution whose unnormalized
/// log-probabilities are `log_weights` (the Gumbel-max trick). Requires a
/// non-empty vector; -infinity entries are allowed (never selected unless
/// all entries are -infinity, in which case index 0 is returned).
std::size_t SampleFromLogWeights(Rng& rng,
                                 const std::vector<double>& log_weights);

}  // namespace dphist

#endif  // DPHIST_RANDOM_DISTRIBUTIONS_H_
