#ifndef DPHIST_RANDOM_RNG_H_
#define DPHIST_RANDOM_RNG_H_

#include <cstdint>

namespace dphist {

/// \brief Deterministic 64-bit pseudo-random generator (xoshiro256++).
///
/// dphist never uses global or thread-local RNG state: every randomized API
/// takes an explicit `Rng&`, which makes experiments reproducible and lets
/// tests pin seeds. `Fork()` derives an independent child stream, so
/// parallel or per-repetition streams do not overlap in practice.
///
/// This generator is NOT a cryptographically secure source. That matches the
/// scope of the reproduced paper (statistical accuracy of DP mechanisms);
/// a production deployment of differential privacy should swap in a CSPRNG
/// behind the same interface, and should use a floating-point-attack-safe
/// Laplace sampler (see distributions.h for discussion).
class Rng {
 public:
  /// Seeds the generator. Two `Rng`s with the same seed produce identical
  /// streams. The seed is expanded with SplitMix64 so that small seeds
  /// (0, 1, 2, ...) still yield well-mixed initial states.
  explicit Rng(std::uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Returns the next 64 uniformly distributed bits.
  std::uint64_t NextUint64();

  /// Returns a child generator seeded from this stream. The child's stream
  /// is independent of subsequent draws from the parent.
  Rng Fork();

  /// Standard C++ UniformRandomBitGenerator interface, so `Rng` can drive
  /// `std::shuffle` and friends.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return NextUint64(); }

 private:
  std::uint64_t state_[4];
};

}  // namespace dphist

#endif  // DPHIST_RANDOM_RNG_H_
