#include "dphist/random/noise_batch.h"

#include <chrono>
#include <cmath>
#include <vector>

#include "dphist/common/env.h"
#include "dphist/obs/obs.h"
#include "dphist/random/distributions.h"
#include "dphist/random/noise_kernel.h"

namespace dphist {
namespace {

// Smallest power of two >= x (x > 0, finite).
double NextPowerOfTwo(double x) {
  int exponent = 0;
  const double mantissa = std::frexp(x, &exponent);
  return mantissa == 0.5 ? std::ldexp(1.0, exponent - 1)
                         : std::ldexp(1.0, exponent);
}

// Records the batch-path obs metrics around one kernel invocation. The
// registry lookups run once per mechanism call (per publication vector,
// not per element), matching the coarse-granularity contract in obs.h.
class BatchRecorder {
 public:
  explicit BatchRecorder(std::size_t n) : enabled_(obs::Enabled()), n_(n) {
    if (enabled_) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~BatchRecorder() {
    if (!enabled_) {
      return;
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    auto& registry = obs::Registry::Global();
    registry.GetCounter("noise/batches").Increment();
    registry.GetCounter("noise/batch_draws").Add(n_);
    registry.GetDistribution("noise/batch_size")
        .Record(static_cast<double>(n_));
    registry.GetDistribution("noise/batch_ms").Record(ms);
  }

 private:
  bool enabled_;
  std::size_t n_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

const char* NoiseModelName(NoiseModel model) {
  switch (model) {
    case NoiseModel::kAuto:
      return "auto";
    case NoiseModel::kTextbook:
      return "textbook";
    case NoiseModel::kBatched:
      return "batched";
    case NoiseModel::kSnapped:
      return "snapped";
    case NoiseModel::kDiscrete:
      return "discrete";
  }
  return "auto";
}

bool ParseNoiseModel(std::string_view text, NoiseModel* out) {
  if (text == "auto") {
    *out = NoiseModel::kAuto;
  } else if (text == "textbook") {
    *out = NoiseModel::kTextbook;
  } else if (text == "batched") {
    *out = NoiseModel::kBatched;
  } else if (text == "snapped") {
    *out = NoiseModel::kSnapped;
  } else if (text == "discrete") {
    *out = NoiseModel::kDiscrete;
  } else {
    return false;
  }
  return true;
}

NoiseModel ResolveNoiseModel(NoiseModel requested) {
  if (requested != NoiseModel::kAuto) {
    return requested;
  }
  NoiseModel model = NoiseModel::kTextbook;
  if (const auto env = GetEnv("DPHIST_NOISE_MODEL")) {
    NoiseModel parsed = NoiseModel::kAuto;
    if (ParseNoiseModel(*env, &parsed) && parsed != NoiseModel::kAuto) {
      model = parsed;
    }
  }
  return model;
}

SnappedLaplaceParams ComputeSnappedLaplaceParams(double scale, double bound) {
  SnappedLaplaceParams params;
  params.snapped_scale = NextPowerOfTwo(scale);
  params.bound = bound;
  params.granularity =
      NextPowerOfTwo(std::fmax(params.snapped_scale, bound)) * 0x1.0p-46;
  return params;
}

namespace noise_batch {

void AddContinuousNoise(NoiseModel model, double scale, const double* values,
                        double* out, std::size_t n, Rng& rng) {
  if (model == NoiseModel::kTextbook) {
    // The historical draw sequence, one scalar sample per element
    // (SampleLaplace counts its own draws).
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = values[i] + SampleLaplace(rng, scale);
    }
    return;
  }
  // All batch models: one parent word seeds the counter substream.
  const std::uint64_t seed = rng.NextUint64();
  obs::CountLaplaceDraws(n);
  BatchRecorder recorder(n);
  switch (model) {
    case NoiseModel::kBatched:
      noise_kernel::AddLaplaceBatch(values, out, n, seed, 0, scale);
      break;
    case NoiseModel::kSnapped: {
      const SnappedLaplaceParams params = ComputeSnappedLaplaceParams(scale);
      noise_kernel::AddSnappedLaplaceBatch(values, out, n, seed, 0,
                                           params.snapped_scale,
                                           params.granularity, params.bound);
      break;
    }
    case NoiseModel::kDiscrete: {
      // Integer-valued release: round the inputs, add exact discrete
      // Laplace noise with t = 1/scale, and publish the integers.
      const double t = 1.0 / scale;
      const double alpha = std::exp(-t);
      std::vector<std::int64_t> integral(n);
      for (std::size_t i = 0; i < n; ++i) {
        integral[i] = static_cast<std::int64_t>(std::llround(values[i]));
      }
      noise_kernel::AddDiscreteLaplaceBatch(integral.data(), integral.data(),
                                            n, seed, 0, alpha, -1.0 / t);
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<double>(integral[i]);
      }
      break;
    }
    case NoiseModel::kAuto:
    case NoiseModel::kTextbook:
      break;  // unreachable: resolved models only
  }
}

double AddContinuousNoiseScalar(NoiseModel model, double scale, double value,
                                Rng& rng) {
  double out = 0.0;
  AddContinuousNoise(model, scale, &value, &out, 1, rng);
  return out;
}

void AddIntegerNoise(NoiseModel model, double t, const std::int64_t* values,
                     std::int64_t* out, std::size_t n, Rng& rng) {
  if (model == NoiseModel::kTextbook) {
    const double alpha = std::exp(-t);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = values[i] + SampleTwoSidedGeometric(rng, alpha);
    }
    return;
  }
  // kBatched, kSnapped and kDiscrete all share the exact batched
  // CDF-inversion kernel: integer noise is already artifact-free, so
  // there is nothing for a snapping construction to add.
  const std::uint64_t seed = rng.NextUint64();
  obs::CountGeometricDraws(n);
  BatchRecorder recorder(n);
  noise_kernel::AddDiscreteLaplaceBatch(values, out, n, seed, 0,
                                        std::exp(-t), -1.0 / t);
}

std::int64_t AddIntegerNoiseScalar(NoiseModel model, double t,
                                   std::int64_t value, Rng& rng) {
  std::int64_t out = 0;
  AddIntegerNoise(model, t, &value, &out, 1, rng);
  return out;
}

}  // namespace noise_batch
}  // namespace dphist
