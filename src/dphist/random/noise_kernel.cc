#include "dphist/random/noise_kernel.h"

#include <cmath>

// Runtime multi-versioning, same rationale as hist/vopt_kernel.cc: the
// default clone keeps the portable baseline ABI while x86-64-v3/v4 clones
// use AVX2/AVX-512 where the CPU has them, and the IFUNC dispatch is
// disabled under the sanitizer runtimes.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define DPHIST_NOISE_KERNEL_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define DPHIST_NOISE_KERNEL_CLONES
#endif

namespace dphist {
namespace noise_kernel {
namespace {

// SplitMix64 (Steele, Lea & Flood): the golden-gamma counter increment and
// the two-round mixer. Statistically independent words for distinct
// counters under one seed — the standard seeding generator of the
// xoshiro family, reused here as a counter-based substream.
constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

inline std::uint64_t Mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// fdlibm-style log, restricted to normal x in (0, 2): decompose
// x = 2^k * m with m in [sqrt(2)/2, sqrt(2)) by mantissa offset, then a
// degree-14 odd polynomial in s = (m-1)/(m+1) with the ln2 split keeping
// the |result| < 1 ulp error bound. Every step is elementary IEEE
// arithmetic on one lane, so it vectorizes — unlike the libm call — and
// rounds identically everywhere (this TU bans FP contraction).
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kLg1 = 6.666666666666735130e-01;
constexpr double kLg2 = 3.999999999940941908e-01;
constexpr double kLg3 = 2.857142874366239149e-01;
constexpr double kLg4 = 2.222219843214978396e-01;
constexpr double kLg5 = 1.818357216161805012e-01;
constexpr double kLg6 = 1.531383769920937332e-01;
constexpr double kLg7 = 1.479819860511658591e-01;
constexpr std::uint64_t kLogOffset = 0x3fe6a09e00000000ULL;
constexpr std::uint64_t kMantMask = 0x000fffffffffffffULL;

inline double LogNormal(double x) {
  const std::uint64_t xb = __builtin_bit_cast(std::uint64_t, x);
  const std::uint64_t adj = xb - kLogOffset;
  const std::uint64_t mb = (adj & kMantMask) + kLogOffset;
  // Exponent k recovered from the high 32 bits alone: a 32-bit arithmetic
  // shift, which (unlike a 64-bit one) exists in AVX2.
  const std::int32_t k = static_cast<std::int32_t>(adj >> 32) >> 20;
  const double m = __builtin_bit_cast(double, mb);
  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
  const double t2 = z * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
  const double r = t1 + t2;
  const double hfsq = 0.5 * f * f;
  const double dk = static_cast<double>(k);
  return dk * kLn2Hi - ((hfsq - (s * (hfsq + r) + dk * kLn2Lo)) - f);
}

// (double)(bits >> 12) via the exponent-OR trick: for 0 <= x < 2^52,
// bit_cast(x | bits_of(2^52)) - 2^52 == (double)x exactly. The direct
// u64->f64 vector convert only exists from AVX-512DQ on; this form keeps
// the v3/AVX2 clone vectorized too.
inline double High52AsDouble(std::uint64_t bits) {
  return __builtin_bit_cast(double, (bits >> 12) | 0x4330000000000000ULL) -
         0x1.0p52;
}

// Exponential draw -log(u) >= 0 from a draw word (u = DrawUniform(bits)).
inline double NegLog(std::uint64_t bits) {
  const double u = (High52AsDouble(bits) + 0.5) * 0x1.0p-52;
  return -LogNormal(u);
}

// Applies the draw's sign bit (bit 0) to a non-negative magnitude by
// toggling the IEEE sign bit — branch- and select-free.
inline double ApplySign(double magnitude, std::uint64_t bits) {
  return __builtin_bit_cast(
      double, __builtin_bit_cast(std::uint64_t, magnitude) ^ (bits << 63));
}

}  // namespace

std::uint64_t DrawBits(std::uint64_t seed, std::uint64_t counter) {
  return Mix(seed + counter * kGamma);
}

double DrawUniform(std::uint64_t bits) {
  return (High52AsDouble(bits) + 0.5) * 0x1.0p-52;
}

DPHIST_NOISE_KERNEL_CLONES
void AddLaplaceBatch(const double* values, double* out, std::size_t n,
                     std::uint64_t seed, std::uint64_t base, double scale) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = Mix(seed + (base + i) * kGamma);
    const double noise = ApplySign(scale * NegLog(bits), bits);
    out[i] = values[i] + noise;
  }
}

DPHIST_NOISE_KERNEL_CLONES
void AddSnappedLaplaceBatch(const double* values, double* out, std::size_t n,
                            std::uint64_t seed, std::uint64_t base,
                            double snapped_scale, double granularity,
                            double bound) {
  const double inv_granularity = 1.0 / granularity;  // exact: power of two
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = Mix(seed + (base + i) * kGamma);
    const double noise = ApplySign(snapped_scale * NegLog(bits), bits);
    double v = values[i];
    v = v < -bound ? -bound : v;
    v = v > bound ? bound : v;
    double y = granularity * std::rint((v + noise) * inv_granularity);
    y = y < -bound ? -bound : y;
    y = y > bound ? bound : y;
    out[i] = y;
  }
}

DPHIST_NOISE_KERNEL_CLONES
void AddDiscreteLaplaceBatch(const std::int64_t* values, std::int64_t* out,
                             std::size_t n, std::uint64_t seed,
                             std::uint64_t base, double alpha,
                             double inv_log_alpha) {
  const double one_plus_alpha = 1.0 + alpha;
  // floor(log(W(1+a))/log(a)) <= 54*ln2 / -log(a); cap far above any real
  // magnitude but far below int64 range so the conversion stays defined.
  const double kMagnitudeCap = 0x1.0p62;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = Mix(seed + (base + i) * kGamma);
    // W in (0, 1/2): the half-line uniform; bit 0 picks the half-line.
    const double w = (High52AsDouble(bits) + 0.5) * 0x1.0p-53;
    double dm = std::floor(LogNormal(w * one_plus_alpha) * inv_log_alpha);
    dm = dm < kMagnitudeCap ? dm : kMagnitudeCap;
    const std::int64_t magnitude = static_cast<std::int64_t>(dm);
    // Branch-free sign: bit 0 selects m or -m (two's complement).
    const std::int64_t mask = -static_cast<std::int64_t>(bits & 1ULL);
    out[i] = values[i] + ((magnitude ^ mask) - mask);
  }
}

}  // namespace noise_kernel
}  // namespace dphist
