#include "dphist/random/distributions.h"

#include <cmath>
#include <limits>

#include "dphist/obs/obs.h"

namespace dphist {

double SampleUniformDouble(Rng& rng) {
  // 53 top bits scaled into [0, 1).
  return static_cast<double>(rng.NextUint64() >> 11) * 0x1.0p-53;
}

double SampleUniformDoublePositive(Rng& rng) {
  // (u + 1) / 2^53 lies in (0, 1].
  return (static_cast<double>(rng.NextUint64() >> 11) + 1.0) * 0x1.0p-53;
}

std::int64_t SampleUniformInt(Rng& rng, std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<std::int64_t>(rng.NextUint64());
  }
  // Rejection sampling to avoid modulo bias: accept only draws below the
  // largest multiple of `span`, where every residue is equally likely.
  const std::uint64_t bucket = (~0ULL) / span;
  const std::uint64_t limit = bucket * span;
  std::uint64_t draw = rng.NextUint64();
  while (draw >= limit) {
    draw = rng.NextUint64();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

std::size_t SampleIndex(Rng& rng, std::size_t n) {
  // Unsigned throughout: the old int64 round-trip was undefined for
  // n > 2^63, which 64-bit sparse domains can now reach. n == 0 keeps the
  // full-range convention of SampleUniformInt's span == 0 branch.
  const std::uint64_t span = static_cast<std::uint64_t>(n);
  if (span == 0) {
    return static_cast<std::size_t>(rng.NextUint64());
  }
  // Same rejection construction as SampleUniformInt: accept only draws
  // below the largest multiple of `span` so every residue is equally
  // likely.
  const std::uint64_t bucket = (~0ULL) / span;
  const std::uint64_t limit = bucket * span;
  std::uint64_t draw = rng.NextUint64();
  while (draw >= limit) {
    draw = rng.NextUint64();
  }
  return static_cast<std::size_t>(draw % span);
}

double SampleExponential(Rng& rng, double rate) {
  return -std::log(SampleUniformDoublePositive(rng)) / rate;
}

double SampleLaplace(Rng& rng, double scale) {
  // One branch when obs is disabled; attributes the draw to the publisher
  // whose decorator installed a DrawAttributionScope on this thread.
  obs::CountLaplaceDraws(1);
  // Difference of two exponentials: numerically stable in both tails and
  // symmetric by construction.
  const double e1 = -std::log(SampleUniformDoublePositive(rng));
  const double e2 = -std::log(SampleUniformDoublePositive(rng));
  return scale * (e1 - e2);
}

double SampleGumbel(Rng& rng) {
  return -std::log(-std::log(SampleUniformDoublePositive(rng)));
}

std::int64_t SampleGeometric(Rng& rng, double p) {
  if (p >= 1.0) {
    return 0;
  }
  // Inversion: floor(log(U) / log(1-p)).
  const double u = SampleUniformDoublePositive(rng);
  const double k = std::floor(std::log(u) / std::log1p(-p));
  if (k >= static_cast<double>(std::numeric_limits<std::int64_t>::max())) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return static_cast<std::int64_t>(k);
}

std::int64_t SampleTwoSidedGeometric(Rng& rng, double alpha) {
  obs::CountGeometricDraws(1);
  if (alpha <= 0.0) {
    return 0;
  }
  // Sample magnitude ~ Geometric(1 - alpha) conditioned via a sign flip;
  // k = 0 must not be double-counted, so draw sign and magnitude jointly:
  //   with prob (1-alpha)/(1+alpha) return 0;
  //   otherwise return +/- (1 + Geometric(1-alpha)) with equal probability.
  const double p_zero = (1.0 - alpha) / (1.0 + alpha);
  const double u = SampleUniformDouble(rng);
  if (u < p_zero) {
    return 0;
  }
  const std::int64_t magnitude = 1 + SampleGeometric(rng, 1.0 - alpha);
  const bool negative = (rng.NextUint64() & 1ULL) != 0;
  return negative ? -magnitude : magnitude;
}

std::size_t SampleFromLogWeights(Rng& rng,
                                 const std::vector<double>& log_weights) {
  std::size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < log_weights.size(); ++i) {
    if (log_weights[i] == -std::numeric_limits<double>::infinity()) {
      continue;
    }
    const double value = log_weights[i] + SampleGumbel(rng);
    if (value > best_value) {
      best_value = value;
      best = i;
    }
  }
  return best;
}

}  // namespace dphist
