#ifndef DPHIST_SERVE_RELEASE_SERVER_H_
#define DPHIST_SERVE_RELEASE_SERVER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "dphist/common/clock.h"
#include "dphist/common/parallel_defaults.h"
#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/common/thread_pool.h"
#include "dphist/hist/histogram.h"
#include "dphist/query/range_query.h"
#include "dphist/serve/budget_ledger.h"
#include "dphist/serve/journal.h"
#include "dphist/serve/release_cache.h"
#include "dphist/serve/tenant.h"
#include "dphist/sparse/sparse_histogram.h"

namespace dphist {
namespace serve {

/// \brief One serving request: which publisher to answer from, at what
/// epsilon, with which deterministic noise stream.
struct ServeRequest {
  std::string publisher = "noise_first";
  double epsilon = 0.1;
  std::uint64_t seed = 42;
};

/// \brief The result of answering one query batch.
struct BatchAnswer {
  /// One answer per query, in request order.
  std::vector<double> answers;
  /// True when the requested release could not be published (budget
  /// exhausted) and the batch was served from the newest cached release
  /// instead — the degradation contract: stale answers beat a failed
  /// batch, and they cost no additional privacy.
  bool stale = false;
  /// True when the release that answered was already cached (no publisher
  /// invocation, no budget charge).
  bool cache_hit = false;
  /// Key of the release that actually answered (differs from the request
  /// iff `stale`).
  ReleaseKey served;
};

/// \brief Retry policy for transient release failures inside `AnswerBatch`.
///
/// Only `kInternal` errors are retried — the transient class (an injected
/// or real publisher/infrastructure failure mid-flight). `kResourceExhausted`
/// is a deterministic refusal handled by degradation, and argument errors
/// are caller bugs; retrying either would just repeat the answer.
///
/// Backoff is deterministic (exponential, no jitter) and sleeps on the
/// server's injectable `Clock`, so a test with a `FakeClock` executes the
/// exact schedule instantly: attempt 1, sleep `initial_backoff`, attempt 2,
/// sleep `initial_backoff * backoff_multiplier`, ... capped at
/// `max_backoff`, never exceeding `max_attempts` attempts in total.
///
/// `deadline` bounds the whole batch: when sleeping the next backoff would
/// pass it, the batch fails with `kDeadlineExceeded` (carrying the last
/// underlying error) instead of sleeping. Zero means no deadline.
struct RetryPolicy {
  /// Total attempts including the first; 1 (the default) disables retry
  /// and keeps the historical single-shot behavior and cost.
  std::size_t max_attempts = 1;
  /// Sleep before the first retry.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(10);
  /// Backoff growth factor per retry (values < 1 are pinned to 1).
  double backoff_multiplier = 2.0;
  /// Upper bound for one backoff sleep.
  std::chrono::nanoseconds max_backoff = std::chrono::seconds(1);
  /// Per-batch time budget measured from AnswerBatch entry; zero = none.
  std::chrono::nanoseconds deadline = std::chrono::nanoseconds::zero();
};

/// \brief Execution knobs for the server.
struct ReleaseServerOptions {
  /// Pool for the batched-query fan-out; nullptr means ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// Batches smaller than this answer inline on the caller — each answer
  /// is one O(1) prefix-sum subtraction, so fork/join only pays for
  /// itself on large batches. Same documented cut-over constant as the
  /// solver stages.
  std::size_t min_parallel_batch = kDefaultMinParallelCandidates;
  /// Retry policy for transient failures in AnswerBatch (see RetryPolicy).
  RetryPolicy retry;
  /// Time source for backoff sleeps and the batch deadline; nullptr means
  /// Clock::Real(). Tests install a FakeClock so retries never sleep
  /// wall-clock.
  Clock* clock = nullptr;
  /// Release-cache shard count; 0 defers to DPHIST_SERVE_SHARDS, then the
  /// built-in default.
  std::size_t cache_shards = 0;
  /// Write-ahead journal (not owned; may be null for an in-memory server).
  /// When set, every accepted charge and every successful publication is
  /// durable before its caller is acknowledged, and `Recover` can rebuild
  /// ledger spend + cache contents after a crash.
  Journal* journal = nullptr;
};

/// \brief What `Recover` rebuilt from a journal replay.
struct RecoveryStats {
  /// Charges re-applied into their ledgers.
  std::size_t charges_replayed = 0;
  /// Publications re-inserted into the cache.
  std::size_t releases_replayed = 0;
  /// Replayed charges the accountant refused — only possible when a
  /// tenant's grant shrank across the restart; the refused spend does NOT
  /// re-enter the ledger, so inspect this before trusting
  /// `remaining_epsilon` of a reconfigured tenant.
  std::size_t refusals = 0;
  /// Records skipped: namespaces no longer registered, or publish records
  /// whose dataset fingerprint no longer matches the registered truth
  /// (the data changed — replaying the old release would serve answers
  /// about a histogram the server no longer holds).
  std::size_t skipped = 0;
  /// Torn/corrupt tail bytes the replay discarded (from ReplayResult).
  std::uint64_t truncated_bytes = 0;

  std::string ToString() const;
};

/// \brief The release-serving front-end: a registry of tenant-x-dataset
/// namespaces (each with its own true histogram and `BudgetLedger`), one
/// sharded `ReleaseCache`, and an optional write-ahead `Journal`, answering
/// batched range queries from cached releases.
///
/// Multi-tenancy: every dataset is registered under a `TenantKey` via
/// `AddDataset`, and every request names the namespace it targets. The
/// isolation contract is typed: a request for a dataset name that exists
/// only under OTHER tenants fails `kPermissionDenied` (the caller is
/// probing across the boundary); a name no tenant registered fails
/// `kNotFound`. Cached releases and the degraded "newest release" fallback
/// never cross a namespace boundary (the tenant and dataset are part of
/// the cache key).
///
/// Request flow for `AnswerBatch`:
///  1. Resolve the namespace; validate the batch against its domain.
///  2. Get the release for (publisher, epsilon, seed): a cache hit costs
///     zero privacy and zero publisher work; a miss charges the namespace
///     ledger (inside the cache's once-per-key publish slot, so racing
///     misses coalesce onto one charge + one publication) and publishes.
///  3. Budget refused? Degrade: serve the newest cached release in this
///     namespace (same publisher preferred, any publisher otherwise) with
///     `stale = true`. Only when *nothing* was ever released does the
///     batch fail, with the ledger's typed ResourceExhausted status.
///  4. Fan the answers across the pool (O(1) each off the release's
///     prefix array) when the batch is large enough.
///
/// Durability (when a journal is attached): a charge is journaled at the
/// ledger's commit point, and a publication is journaled AND fsynced
/// before the cache insert that acknowledges it — so after `Recover`,
/// every acknowledged release is present and replayed spend never exceeds
/// committed spend. Journal failures surface as the publish slot's error:
/// the epsilon stays spent (conservative) and nothing is released.
///
/// Transient (`kInternal`) release failures are retried per
/// `ReleaseServerOptions::retry` — bounded attempts, deterministic
/// exponential backoff on the injectable clock, per-batch deadline
/// (`kDeadlineExceeded` when it would be overrun). The degradation path
/// (step 3) is not retried: a budget refusal is deterministic.
///
/// Thread safety: all public methods may be called concurrently; the
/// registry is read-mostly under its own mutex, each ledger serializes its
/// charges, the cache serializes per-key publications, and releases are
/// immutable once cached. `AddDataset` and `Recover` are typically called
/// at startup but are themselves thread-safe.
///
/// Obs: `serve/batches`, `serve/batch/queries`, `serve/batches_stale`,
/// `serve/retries`, `serve/deadline_exceeded` counters and the
/// `serve/batch` wall-ms distribution, on top of the cache, ledger, and
/// journal metrics.
class ReleaseServer {
 public:
  /// Creates an empty server; register namespaces with `AddDataset`.
  explicit ReleaseServer(ReleaseServerOptions options = {});

  /// Single-tenant convenience: serves `truth` under a lifetime privacy
  /// budget of `total_epsilon`, registered as the default namespace
  /// (tenant "default", dataset "default"). The tenant-less overloads
  /// below target this namespace.
  ReleaseServer(Histogram truth, double total_epsilon,
                ReleaseServerOptions options = {});

  ReleaseServer(const ReleaseServer&) = delete;
  ReleaseServer& operator=(const ReleaseServer&) = delete;

  /// Registers `truth` under `key` with a lifetime budget of
  /// `total_epsilon`. Fails `kInvalidArgument` when the namespace is taken.
  Status AddDataset(const TenantKey& key, Histogram truth,
                    double total_epsilon);

  /// Registers a sparse dataset under `key`: its requests must name a
  /// sparse publisher (see `PublisherRegistry::SparseNames`), queries are
  /// validated against the 64-bit sparse domain, and publications are
  /// journaled as `kPublishSparse` records. Fails `kInvalidArgument` when
  /// the namespace is taken.
  Status AddSparseDataset(const TenantKey& key,
                          sparse::SparseHistogram truth,
                          double total_epsilon);

  /// Returns the (cached or newly published) release for `request` in
  /// `key`'s namespace. Errors: kPermissionDenied when `key.dataset`
  /// exists only under other tenants, kNotFound for an unknown dataset or
  /// publisher name, kResourceExhausted when the ledger refuses the
  /// charge, kInvalidArgument for bad publish arguments, and the journal's
  /// error when durability failed. Never degrades — that policy lives in
  /// AnswerBatch.
  Result<std::shared_ptr<const CachedRelease>> GetRelease(
      const TenantKey& key, const ServeRequest& request);

  /// Default-namespace convenience overload.
  Result<std::shared_ptr<const CachedRelease>> GetRelease(
      const ServeRequest& request);

  /// The already-sealed release for `request`, or null when it is not
  /// cached (or the namespace is unknown). Never publishes, never charges,
  /// never journals, never degrades — the serving fast lane: one
  /// shared-lock registry read plus one shard-mutex cache lookup, after
  /// which the caller holds an immutable snapshot and touches no server
  /// state at all. A non-null result counts as a `serve/cache/hits`.
  std::shared_ptr<const CachedRelease> TryGetCached(
      const TenantKey& key, const ServeRequest& request) const;

  /// Fast-lane batch answering: when the release for `request` is already
  /// sealed in the cache, validates `queries`, answers them, fills `*out`
  /// (with `cache_hit = true`), and returns Ok(true) — equivalent
  /// byte-for-byte to what `AnswerBatch` would return, minus the retry and
  /// degradation machinery that a cache hit never needs. Returns Ok(false)
  /// when the release is not cached (the caller falls through to
  /// `AnswerBatch`), and an error status only for caller bugs
  /// (out-of-domain queries, cross-tenant probes) — exactly the errors
  /// `AnswerBatch` would also report, so the fast lane never masks one.
  Result<bool> TryAnswerCached(const TenantKey& key,
                               const std::vector<RangeQuery>& queries,
                               const ServeRequest& request, BatchAnswer* out);

  /// Answers every query in `queries` against the release for `request`
  /// in `key`'s namespace, degrading to the newest cached release on
  /// budget refusal (see class comment). Fails if any query exceeds the
  /// domain, or on refusal with an empty namespace cache.
  Result<BatchAnswer> AnswerBatch(const TenantKey& key,
                                  const std::vector<RangeQuery>& queries,
                                  const ServeRequest& request);

  /// Default-namespace convenience overload.
  Result<BatchAnswer> AnswerBatch(const std::vector<RangeQuery>& queries,
                                  const ServeRequest& request);

  /// Replays a recovered journal into the registered namespaces: charges
  /// re-enter their ledgers (without re-journaling), publications re-enter
  /// the cache (idempotently). Call after registering every dataset and
  /// before serving. Records for unregistered namespaces and publish
  /// records whose fingerprint no longer matches the registered truth are
  /// counted in `skipped`, never applied.
  Result<RecoveryStats> Recover(const ReplayResult& replay);

  /// Number of registered namespaces.
  std::size_t dataset_count() const;

  /// The ledger for `key`'s namespace (spend/remaining introspection), or
  /// the same typed kPermissionDenied/kNotFound errors as GetRelease.
  Result<const BudgetLedger*> LedgerFor(const TenantKey& key) const;

  /// Fingerprint of the default-namespace dataset (0 when unregistered).
  std::uint64_t fingerprint() const;

  /// Domain size of the default-namespace dataset (0 when unregistered).
  std::size_t domain_size() const;

  /// The default-namespace budget ledger. Requires the default namespace
  /// to be registered (the single-tenant constructor does this).
  const BudgetLedger& ledger() const;

  /// The release cache (size/lookups introspection).
  const ReleaseCache& cache() const { return cache_; }

 private:
  /// One registered namespace: the truth (dense or sparse), its
  /// fingerprint, its ledger.
  struct Dataset {
    Dataset(TenantKey key, Histogram truth_in, double total_epsilon,
            Journal* journal);
    Dataset(TenantKey key, sparse::SparseHistogram sparse_in,
            double total_epsilon, Journal* journal);

    bool is_sparse() const { return sparse_truth.has_value(); }

    /// Domain size in unit bins (the sparse domain for sparse datasets).
    std::uint64_t domain() const {
      return is_sparse() ? sparse_truth->domain_size() : truth.size();
    }

    Histogram truth;  // empty for sparse datasets
    std::optional<sparse::SparseHistogram> sparse_truth;
    std::uint64_t fingerprint;
    BudgetLedger ledger;
  };

  /// Resolves `key` to its namespace, or the typed isolation error.
  Result<Dataset*> FindDataset(const TenantKey& key) const;

  /// FindDataset for the default namespace.
  Dataset* DefaultDataset() const;

  /// Answers `queries` against a resolved release (shared fan-out core of
  /// AnswerBatch and TryAnswerCached; identical parallelism cut-over, so
  /// both lanes produce bit-identical answers at any pool width).
  void AnswerInto(const CachedRelease& release,
                  const std::vector<RangeQuery>& queries,
                  std::vector<double>* answers) const;

  ReleaseServerOptions options_;
  ReleaseCache cache_;
  /// Read-mostly registry: serving takes shared locks; AddDataset /
  /// AddSparseDataset (startup-time) take the exclusive lock.
  mutable std::shared_mutex datasets_mutex_;
  std::map<TenantKey, std::unique_ptr<Dataset>, TenantKeyLess> datasets_;
};

}  // namespace serve
}  // namespace dphist

#endif  // DPHIST_SERVE_RELEASE_SERVER_H_
