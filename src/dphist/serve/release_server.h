#ifndef DPHIST_SERVE_RELEASE_SERVER_H_
#define DPHIST_SERVE_RELEASE_SERVER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dphist/common/clock.h"
#include "dphist/common/parallel_defaults.h"
#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/common/thread_pool.h"
#include "dphist/hist/histogram.h"
#include "dphist/query/range_query.h"
#include "dphist/serve/budget_ledger.h"
#include "dphist/serve/release_cache.h"

namespace dphist {
namespace serve {

/// \brief One serving request: which publisher to answer from, at what
/// epsilon, with which deterministic noise stream.
struct ServeRequest {
  std::string publisher = "noise_first";
  double epsilon = 0.1;
  std::uint64_t seed = 42;
};

/// \brief The result of answering one query batch.
struct BatchAnswer {
  /// One answer per query, in request order.
  std::vector<double> answers;
  /// True when the requested release could not be published (budget
  /// exhausted) and the batch was served from the newest cached release
  /// instead — the degradation contract: stale answers beat a failed
  /// batch, and they cost no additional privacy.
  bool stale = false;
  /// True when the release that answered was already cached (no publisher
  /// invocation, no budget charge).
  bool cache_hit = false;
  /// Key of the release that actually answered (differs from the request
  /// iff `stale`).
  ReleaseKey served;
};

/// \brief Retry policy for transient release failures inside `AnswerBatch`.
///
/// Only `kInternal` errors are retried — the transient class (an injected
/// or real publisher/infrastructure failure mid-flight). `kResourceExhausted`
/// is a deterministic refusal handled by degradation, and argument errors
/// are caller bugs; retrying either would just repeat the answer.
///
/// Backoff is deterministic (exponential, no jitter) and sleeps on the
/// server's injectable `Clock`, so a test with a `FakeClock` executes the
/// exact schedule instantly: attempt 1, sleep `initial_backoff`, attempt 2,
/// sleep `initial_backoff * backoff_multiplier`, ... capped at
/// `max_backoff`, never exceeding `max_attempts` attempts in total.
///
/// `deadline` bounds the whole batch: when sleeping the next backoff would
/// pass it, the batch fails with `kDeadlineExceeded` (carrying the last
/// underlying error) instead of sleeping. Zero means no deadline.
struct RetryPolicy {
  /// Total attempts including the first; 1 (the default) disables retry
  /// and keeps the historical single-shot behavior and cost.
  std::size_t max_attempts = 1;
  /// Sleep before the first retry.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(10);
  /// Backoff growth factor per retry (values < 1 are pinned to 1).
  double backoff_multiplier = 2.0;
  /// Upper bound for one backoff sleep.
  std::chrono::nanoseconds max_backoff = std::chrono::seconds(1);
  /// Per-batch time budget measured from AnswerBatch entry; zero = none.
  std::chrono::nanoseconds deadline = std::chrono::nanoseconds::zero();
};

/// \brief Execution knobs for the server.
struct ReleaseServerOptions {
  /// Pool for the batched-query fan-out; nullptr means ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// Batches smaller than this answer inline on the caller — each answer
  /// is one O(1) prefix-sum subtraction, so fork/join only pays for
  /// itself on large batches. Same documented cut-over constant as the
  /// solver stages.
  std::size_t min_parallel_batch = kDefaultMinParallelCandidates;
  /// Retry policy for transient failures in AnswerBatch (see RetryPolicy).
  RetryPolicy retry;
  /// Time source for backoff sleeps and the batch deadline; nullptr means
  /// Clock::Real(). Tests install a FakeClock so retries never sleep
  /// wall-clock.
  Clock* clock = nullptr;
};

/// \brief The release-serving front-end: owns the true histogram, a
/// per-dataset `BudgetLedger`, and a `ReleaseCache`, and answers batched
/// range queries from cached releases.
///
/// Request flow for `AnswerBatch`:
///  1. Validate the batch against the domain.
///  2. Get the release for (publisher, epsilon, seed): a cache hit costs
///     zero privacy and zero publisher work; a miss charges the ledger
///     (inside the cache's once-per-key publish slot, so racing misses
///     coalesce onto one charge + one publication) and publishes.
///  3. Budget refused? Degrade: serve the newest cached release for this
///     dataset (same publisher preferred, any publisher otherwise) with
///     `stale = true`. Only when *nothing* was ever released does the
///     batch fail, with the ledger's typed ResourceExhausted status.
///  4. Fan the answers across the pool (O(1) each off the release's
///     prefix array) when the batch is large enough.
///
/// Transient (`kInternal`) release failures are retried per
/// `ReleaseServerOptions::retry` — bounded attempts, deterministic
/// exponential backoff on the injectable clock, per-batch deadline
/// (`kDeadlineExceeded` when it would be overrun). The degradation path
/// (step 3) is not retried: a budget refusal is deterministic.
///
/// Thread safety: all public methods may be called concurrently; the
/// ledger serializes charges, the cache serializes per-key publications,
/// and releases are immutable once cached.
///
/// Obs: `serve/batches`, `serve/batch/queries`, `serve/batches_stale`,
/// `serve/retries`, `serve/deadline_exceeded` counters and the
/// `serve/batch` wall-ms distribution, on top of the cache and ledger
/// metrics.
class ReleaseServer {
 public:
  /// Serves `truth` under a lifetime privacy budget of `total_epsilon`.
  ReleaseServer(Histogram truth, double total_epsilon,
                ReleaseServerOptions options = {});

  ReleaseServer(const ReleaseServer&) = delete;
  ReleaseServer& operator=(const ReleaseServer&) = delete;

  /// Returns the (cached or newly published) release for `request`.
  /// Errors: NotFound for an unknown publisher name, ResourceExhausted
  /// when the ledger refuses the charge, InvalidArgument for bad publish
  /// arguments. Never degrades — that policy lives in AnswerBatch.
  Result<std::shared_ptr<const CachedRelease>> GetRelease(
      const ServeRequest& request);

  /// Answers every query in `queries` against the release for `request`,
  /// degrading to the newest cached release on budget refusal (see class
  /// comment). Fails if any query exceeds the domain, or on refusal with
  /// an empty cache.
  Result<BatchAnswer> AnswerBatch(const std::vector<RangeQuery>& queries,
                                  const ServeRequest& request);

  /// Fingerprint of the served dataset (the cache key component).
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Domain size of the served dataset.
  std::size_t domain_size() const { return truth_.size(); }

  /// The per-dataset budget ledger (spend/remaining introspection).
  const BudgetLedger& ledger() const { return ledger_; }

  /// The release cache (size/lookups introspection).
  const ReleaseCache& cache() const { return cache_; }

 private:
  Histogram truth_;
  std::uint64_t fingerprint_;
  BudgetLedger ledger_;
  ReleaseCache cache_;
  ReleaseServerOptions options_;
};

}  // namespace serve
}  // namespace dphist

#endif  // DPHIST_SERVE_RELEASE_SERVER_H_
