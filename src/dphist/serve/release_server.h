#ifndef DPHIST_SERVE_RELEASE_SERVER_H_
#define DPHIST_SERVE_RELEASE_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dphist/common/parallel_defaults.h"
#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/common/thread_pool.h"
#include "dphist/hist/histogram.h"
#include "dphist/query/range_query.h"
#include "dphist/serve/budget_ledger.h"
#include "dphist/serve/release_cache.h"

namespace dphist {
namespace serve {

/// \brief One serving request: which publisher to answer from, at what
/// epsilon, with which deterministic noise stream.
struct ServeRequest {
  std::string publisher = "noise_first";
  double epsilon = 0.1;
  std::uint64_t seed = 42;
};

/// \brief The result of answering one query batch.
struct BatchAnswer {
  /// One answer per query, in request order.
  std::vector<double> answers;
  /// True when the requested release could not be published (budget
  /// exhausted) and the batch was served from the newest cached release
  /// instead — the degradation contract: stale answers beat a failed
  /// batch, and they cost no additional privacy.
  bool stale = false;
  /// True when the release that answered was already cached (no publisher
  /// invocation, no budget charge).
  bool cache_hit = false;
  /// Key of the release that actually answered (differs from the request
  /// iff `stale`).
  ReleaseKey served;
};

/// \brief Execution knobs for the server.
struct ReleaseServerOptions {
  /// Pool for the batched-query fan-out; nullptr means ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// Batches smaller than this answer inline on the caller — each answer
  /// is one O(1) prefix-sum subtraction, so fork/join only pays for
  /// itself on large batches. Same documented cut-over constant as the
  /// solver stages.
  std::size_t min_parallel_batch = kDefaultMinParallelCandidates;
};

/// \brief The release-serving front-end: owns the true histogram, a
/// per-dataset `BudgetLedger`, and a `ReleaseCache`, and answers batched
/// range queries from cached releases.
///
/// Request flow for `AnswerBatch`:
///  1. Validate the batch against the domain.
///  2. Get the release for (publisher, epsilon, seed): a cache hit costs
///     zero privacy and zero publisher work; a miss charges the ledger
///     (inside the cache's once-per-key publish slot, so racing misses
///     coalesce onto one charge + one publication) and publishes.
///  3. Budget refused? Degrade: serve the newest cached release for this
///     dataset (same publisher preferred, any publisher otherwise) with
///     `stale = true`. Only when *nothing* was ever released does the
///     batch fail, with the ledger's typed ResourceExhausted status.
///  4. Fan the answers across the pool (O(1) each off the release's
///     prefix array) when the batch is large enough.
///
/// Thread safety: all public methods may be called concurrently; the
/// ledger serializes charges, the cache serializes per-key publications,
/// and releases are immutable once cached.
///
/// Obs: `serve/batches`, `serve/batch/queries`, `serve/batches_stale`
/// counters and the `serve/batch` wall-ms distribution, on top of the
/// cache and ledger metrics.
class ReleaseServer {
 public:
  /// Serves `truth` under a lifetime privacy budget of `total_epsilon`.
  ReleaseServer(Histogram truth, double total_epsilon,
                ReleaseServerOptions options = {});

  ReleaseServer(const ReleaseServer&) = delete;
  ReleaseServer& operator=(const ReleaseServer&) = delete;

  /// Returns the (cached or newly published) release for `request`.
  /// Errors: NotFound for an unknown publisher name, ResourceExhausted
  /// when the ledger refuses the charge, InvalidArgument for bad publish
  /// arguments. Never degrades — that policy lives in AnswerBatch.
  Result<std::shared_ptr<const CachedRelease>> GetRelease(
      const ServeRequest& request);

  /// Answers every query in `queries` against the release for `request`,
  /// degrading to the newest cached release on budget refusal (see class
  /// comment). Fails if any query exceeds the domain, or on refusal with
  /// an empty cache.
  Result<BatchAnswer> AnswerBatch(const std::vector<RangeQuery>& queries,
                                  const ServeRequest& request);

  /// Fingerprint of the served dataset (the cache key component).
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Domain size of the served dataset.
  std::size_t domain_size() const { return truth_.size(); }

  /// The per-dataset budget ledger (spend/remaining introspection).
  const BudgetLedger& ledger() const { return ledger_; }

  /// The release cache (size/lookups introspection).
  const ReleaseCache& cache() const { return cache_; }

 private:
  Histogram truth_;
  std::uint64_t fingerprint_;
  BudgetLedger ledger_;
  ReleaseCache cache_;
  ReleaseServerOptions options_;
};

}  // namespace serve
}  // namespace dphist

#endif  // DPHIST_SERVE_RELEASE_SERVER_H_
