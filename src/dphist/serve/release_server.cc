#include "dphist/serve/release_server.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "dphist/algorithms/registry.h"
#include "dphist/obs/obs.h"
#include "dphist/random/rng.h"
#include "dphist/testing/failpoint.h"

namespace dphist {
namespace serve {

namespace {

obs::Counter& BatchCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/batches");
  return counter;
}

obs::Counter& BatchQueryCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/batch/queries");
  return counter;
}

obs::Counter& StaleBatchCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/batches_stale");
  return counter;
}

obs::Counter& RetryCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/retries");
  return counter;
}

obs::Counter& DeadlineCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/deadline_exceeded");
  return counter;
}

// The retryable class: transient infrastructure/publisher failures.
// Refusals (kResourceExhausted) are deterministic and handled by
// degradation; everything else is a caller or configuration error.
bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kInternal;
}

std::chrono::nanoseconds NextBackoff(std::chrono::nanoseconds backoff,
                                     const RetryPolicy& retry) {
  const double multiplier = std::max(1.0, retry.backoff_multiplier);
  const auto grown = std::chrono::duration_cast<std::chrono::nanoseconds>(
      backoff * multiplier);
  return std::min(grown, retry.max_backoff);
}

}  // namespace

ReleaseServer::ReleaseServer(Histogram truth, double total_epsilon,
                             ReleaseServerOptions options)
    : truth_(std::move(truth)),
      fingerprint_(FingerprintHistogram(truth_)),
      ledger_(total_epsilon),
      options_(options) {}

Result<std::shared_ptr<const CachedRelease>> ReleaseServer::GetRelease(
    const ServeRequest& request) {
  ReleaseKey key{fingerprint_, request.publisher, request.epsilon,
                 request.seed};
  // The charge happens inside the cache's once-per-key publish slot:
  // racing cache misses for the same key coalesce onto a single ledger
  // charge and a single publication, so a popular release is paid for
  // exactly once no matter how many threads request it.
  return cache_.GetOrPublish(key, [&]() -> Result<Histogram> {
    auto publisher = PublisherRegistry::Make(request.publisher);
    if (!publisher.ok()) {
      return publisher.status();
    }
    DPHIST_RETURN_IF_ERROR(ledger_.Charge(
        request.epsilon, request.publisher + ":seed=" +
                             std::to_string(request.seed)));
    // A charge precedes its publication (never sample noise the budget
    // cannot cover); publish failures after a successful charge are
    // conservative — the epsilon stays spent.
    Rng rng(request.seed);
    return publisher.value()->Publish(truth_, request.epsilon, rng);
  });
}

Result<BatchAnswer> ReleaseServer::AnswerBatch(
    const std::vector<RangeQuery>& queries, const ServeRequest& request) {
  DPHIST_RETURN_IF_ERROR(ValidateQueries(queries, truth_.size()));
  obs::ScopedTimer batch_timer("serve/batch");
  BatchCounter().Increment();
  BatchQueryCounter().Add(queries.size());
  // Chaos hook: whole-batch latency at the front door.
  DPHIST_FAILPOINT("serve/answer_batch");

  BatchAnswer batch;
  std::shared_ptr<const CachedRelease> release;
  const bool was_cached =
      cache_.Lookup({fingerprint_, request.publisher, request.epsilon,
                     request.seed}) != nullptr;

  // Resolve the release with bounded retries on transient failure. The
  // deadline and every backoff sleep go through the injectable clock, so
  // the whole schedule is simulated time in tests — never a wall sleep.
  Clock& clock = options_.clock != nullptr ? *options_.clock : Clock::Real();
  const RetryPolicy& retry = options_.retry;
  const std::size_t max_attempts =
      std::max<std::size_t>(1, retry.max_attempts);
  const bool has_deadline =
      retry.deadline > std::chrono::nanoseconds::zero();
  const std::chrono::steady_clock::time_point deadline =
      has_deadline ? clock.Now() + retry.deadline
                   : std::chrono::steady_clock::time_point{};
  auto requested = GetRelease(request);
  std::chrono::nanoseconds backoff = retry.initial_backoff;
  for (std::size_t attempt = 1; !requested.ok() &&
                                IsTransient(requested.status()) &&
                                attempt < max_attempts;
       ++attempt) {
    if (has_deadline && clock.Now() + backoff > deadline) {
      // Sleeping the next backoff would overrun the batch budget: give up
      // now, typed, with the underlying error preserved for diagnosis.
      DeadlineCounter().Increment();
      return Status::DeadlineExceeded(
          "AnswerBatch gave up after " + std::to_string(attempt) +
          " attempt(s): retrying would exceed the batch deadline; last "
          "error: " +
          requested.status().ToString());
    }
    clock.SleepFor(backoff);
    backoff = NextBackoff(backoff, retry);
    RetryCounter().Increment();
    requested = GetRelease(request);
  }

  if (requested.ok()) {
    release = std::move(requested).value();
    batch.cache_hit = was_cached;
  } else if (requested.status().code() == StatusCode::kResourceExhausted) {
    // Degrade instead of failing the batch: newest release of the same
    // publisher if any, else the newest release of any publisher. The
    // answers are stale (older epsilon/seed) but cost no extra privacy.
    release = cache_.NewestFor(fingerprint_, request.publisher);
    if (release == nullptr) {
      release = cache_.NewestFor(fingerprint_, "");
    }
    if (release == nullptr) {
      return requested.status();
    }
    batch.stale = true;
    StaleBatchCounter().Increment();
  } else {
    return requested.status();
  }
  batch.served = release->key();

  batch.answers.resize(queries.size());
  auto answer_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // Chaos hook: per-query latency (a slow shard, a page fault). Pure
      // delay — answers are unaffected by construction.
      DPHIST_FAILPOINT("serve/answer_query");
      batch.answers[i] = release->RangeSum(queries[i].begin, queries[i].end);
    }
  };
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : ThreadPool::Global();
  // Chaos hook: induced pool-dispatch failure. The contract is graceful
  // degradation, not batch failure — the fan-out falls back to inline
  // answering, so only latency changes, never the answers.
  if (pool.thread_count() > 1 &&
      queries.size() >= options_.min_parallel_batch &&
      !testing::FailpointFires("serve/pool_dispatch")) {
    pool.ParallelForChunks(0, queries.size(), /*min_chunk=*/64, answer_range);
  } else {
    answer_range(0, queries.size());
  }
  return batch;
}

}  // namespace serve
}  // namespace dphist
